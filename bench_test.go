package diffcode

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Figures 6-10), plus ablation benchmarks for the design
// choices called out in DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem .
//
// The figure benchmarks operate on a reduced-scale corpus so a single
// iteration stays in the hundreds of milliseconds; cmd/evalrepro runs the
// same code paths at full scale.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/rules"
	"repro/internal/usage"
)

// benchCorpus is shared across figure benchmarks (generation excluded from
// timings via b.ResetTimer).
func benchCorpus() *Corpus {
	return GenerateCorpus(CorpusConfig{Seed: 1, Scale: 0.1, Projects: 60, ExtraProjects: 8})
}

const benchOld = `
class AESCipher {
    Cipher enc;
    final String algorithm = "AES";
    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
        } catch (Exception e) {}
    }
}
`

const benchNew = `
class AESCipher {
    Cipher enc;
    final String algorithm = "AES/CBC/PKCS5Padding";
    protected void setKeyAndIV(Secret key, String iv) {
        try {
            byte[] ivBytes = Hex.decodeHex(iv.toCharArray());
            IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
        } catch (Exception e) {}
    }
}
`

// BenchmarkFigure6Pipeline regenerates the per-class filtering table: mine
// the corpus, analyze every change, extract and filter per target class.
func BenchmarkFigure6Pipeline(b *testing.B) {
	c := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEvaluation(c, Options{})
		tbl := e.Figure6()
		if len(tbl.Rows) != 6 {
			b.Fatal("figure 6 incomplete")
		}
	}
}

// BenchmarkFigure7Classification regenerates the fix/bug/none table under
// the CryptoLint rules CL1-CL5.
func BenchmarkFigure7Classification(b *testing.B) {
	c := benchCorpus()
	e := NewEvaluation(c, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := e.Figure7Data()
		if len(rows) != 15 {
			b.Fatalf("figure 7 rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure8Clustering regenerates the Cipher dendrogram. A larger
// corpus than the other figure benches guarantees a non-trivial survivor
// set to cluster; the survivors/op metric reports its size.
func BenchmarkFigure8Clustering(b *testing.B) {
	c := GenerateCorpus(CorpusConfig{Seed: 1, Scale: 0.35, Projects: 140, ExtraProjects: 0})
	e := NewEvaluation(c, Options{})
	survivors := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f8 := e.Figure8()
		survivors = len(f8.Survivors)
	}
	if survivors == 0 {
		b.Fatal("no survivors to cluster at bench scale")
	}
	b.ReportMetric(float64(survivors), "survivors/op")
}

// BenchmarkFigure9Rules renders the rule registry (cheap; included for
// completeness so every figure has a bench target).
func BenchmarkFigure9Rules(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !strings.Contains(core.Figure9().String(), "R13") {
			b.Fatal("figure 9 incomplete")
		}
	}
}

// BenchmarkFigure10Checker runs CryptoChecker over every project snapshot.
func BenchmarkFigure10Checker(b *testing.B) {
	c := benchCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.CheckCorpus(c, Options{})
		if res.Projects == 0 {
			b.Fatal("no projects checked")
		}
	}
}

// BenchmarkDiffSources measures the end-to-end single-change path (parse →
// analyze → DAG → pair → diff) on the paper's Figure 2 example.
func BenchmarkDiffSources(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		changes := DiffSources(benchOld, benchNew, Cipher, Options{})
		if len(changes) != 1 {
			b.Fatal("unexpected change count")
		}
	}
}

// BenchmarkCheckSource measures single-file checking against all 13 rules.
func BenchmarkCheckSource(b *testing.B) {
	src := `
class T {
    void run(Key key) throws Exception {
        Cipher c = Cipher.getInstance("DES");
        c.init(Cipher.ENCRYPT_MODE, key);
        MessageDigest md = MessageDigest.getInstance("MD5");
        SecureRandom r = new SecureRandom();
        r.setSeed(new byte[]{1, 2, 3});
    }
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(CheckSource(src, RuleContext{}, Options{})) == 0 {
			b.Fatal("no violations found")
		}
	}
}

// ---------------------------------------------------------------------------
// Perf baseline (DESIGN.md §7): the three named hot paths. These are the
// benchmarks the bench-baseline runner snapshots into BENCH_baseline.json so
// later optimisation PRs have a fixed reference to diff against.
// ---------------------------------------------------------------------------

// benchSources is a small multi-file program exercising the parser and the
// interpreter together: field initialisers, branches, helper-method inlining.
func benchSources() map[string]string {
	return map[string]string{
		"A.java": benchOld,
		"B.java": benchNew,
		"C.java": `
class KeyTool {
    static final String DIGEST = "SHA-256";
    byte[] digest(byte[] in, int rounds) throws Exception {
        MessageDigest md = MessageDigest.getInstance(DIGEST);
        byte[] out = in;
        if (rounds > 1) { out = md.digest(out); }
        else { out = md.digest(in); }
        return out;
    }
    SecureRandom fresh() {
        SecureRandom r = new SecureRandom();
        r.setSeed(new byte[]{1, 2, 3});
        return r;
    }
}
`,
	}
}

// BenchmarkParser measures source → AST → indexed program, the first stage
// of every pipeline run (paper §4.1).
func BenchmarkParser(b *testing.B) {
	sources := benchSources()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog := analysis.ParseProgram(sources)
		if len(prog.Files) != len(sources) {
			b.Fatal("parse lost a file")
		}
	}
}

// BenchmarkInterpreterHotLoop measures the abstract interpreter's step loop
// (analysis §4.2) on a pre-parsed program, isolating interpretation cost
// from parsing.
func BenchmarkInterpreterHotLoop(b *testing.B) {
	prog := analysis.ParseProgram(benchSources())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.Analyze(prog, analysis.Options{})
		if len(res.Objs) == 0 {
			b.Fatal("no abstract objects")
		}
	}
}

// benchSurvivors mines a corpus once and returns every class's semantic
// survivors — the clustering benchmarks' shared input.
func benchSurvivors(b *testing.B) []UsageChange {
	c := GenerateCorpus(CorpusConfig{Seed: 1, Scale: 0.35, Projects: 140, ExtraProjects: 0})
	e := NewEvaluation(c, Options{})
	var all []UsageChange
	for _, class := range TargetClasses() {
		all = append(all, e.SortedSurvivors(class)...)
	}
	if len(all) < 4 {
		b.Skip("not enough survivors at bench scale")
	}
	return all
}

// BenchmarkClusteringDistMatrix measures the O(n²) pairwise usage-distance
// computation feeding agglomeration (paper §5).
func BenchmarkClusteringDistMatrix(b *testing.B) {
	all := benchSurvivors(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(cluster.DistMatrix(all)) != len(all) {
			b.Fatal("bad matrix")
		}
	}
}

// BenchmarkClusteringAgglomerate measures dendrogram construction under
// complete linkage given a precomputed distance matrix.
func BenchmarkClusteringAgglomerate(b *testing.B) {
	all := benchSurvivors(b)
	d := cluster.DistMatrix(all)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cluster.AgglomerateMatrix(d, cluster.Complete) == nil {
			b.Fatal("no dendrogram")
		}
	}
}

// ---------------------------------------------------------------------------
// Parallel pipeline (DESIGN.md §8): worker sweeps over the three pooled hot
// paths. Each sweep runs the identical workload at 1, 2, 4, and 8 workers —
// the -workers 1 sub-benchmark IS the serial pipeline (exact serial path),
// so the ratio between sub-benchmarks is the pool's speedup. The
// bench-compare runner (bench_parallel_test.go) snapshots the same helpers
// into BENCH_parallel.json.
// ---------------------------------------------------------------------------

var workerSweep = []int{1, 2, 4, 8}

// benchMineCorpusAt mines the shared bench corpus end to end (parse +
// analyze both versions of every change) at a fixed worker count.
func benchMineCorpusAt(workers int) func(*testing.B) {
	return func(b *testing.B) {
		c := benchCorpus()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := New(Options{Workers: workers})
			if len(d.MineCorpus(c)) == 0 {
				b.Fatal("no changes mined")
			}
		}
	}
}

// benchDistMatrixAt computes the pairwise distance matrix over every
// class's survivors at a fixed worker count.
func benchDistMatrixAt(workers int) func(*testing.B) {
	return func(b *testing.B) {
		all := benchSurvivors(b)
		p := parallel.New(workers, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(cluster.DistMatrixPool(all, nil, p)) != len(all) {
				b.Fatal("bad matrix")
			}
		}
	}
}

// benchCheckCorpusAt runs CryptoChecker over every project snapshot at a
// fixed worker count.
func benchCheckCorpusAt(workers int) func(*testing.B) {
	return func(b *testing.B) {
		c := benchCorpus()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := core.CheckCorpus(c, Options{Workers: workers})
			if res.Projects == 0 {
				b.Fatal("no projects checked")
			}
		}
	}
}

// BenchmarkMineCorpusWorkers sweeps corpus mining — the pipeline's dominant
// cost — across worker counts.
func BenchmarkMineCorpusWorkers(b *testing.B) {
	for _, w := range workerSweep {
		b.Run(fmt.Sprintf("workers%d", w), benchMineCorpusAt(w))
	}
}

// BenchmarkClusteringDistMatrixWorkers sweeps the O(n²) distance matrix.
func BenchmarkClusteringDistMatrixWorkers(b *testing.B) {
	for _, w := range workerSweep {
		b.Run(fmt.Sprintf("workers%d", w), benchDistMatrixAt(w))
	}
}

// BenchmarkCheckCorpusWorkers sweeps the held-out checker evaluation.
func BenchmarkCheckCorpusWorkers(b *testing.B) {
	for _, w := range workerSweep {
		b.Run(fmt.Sprintf("workers%d", w), benchCheckCorpusAt(w))
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4)
// ---------------------------------------------------------------------------

// BenchmarkAblationDAGDepth sweeps the DAG expansion bound (paper: n=5).
// The reported metric semantic/op is the number of semantic survivors —
// depth 1 under-abstracts (argument changes invisible), depth ≥3 converges
// for this workload.
func BenchmarkAblationDAGDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 3, 5, 7} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			semantic := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				changes := DiffSources(benchOld, benchNew, Cipher, Options{Depth: depth})
				kept, _ := Filter(changes)
				semantic = len(kept)
			}
			b.ReportMetric(float64(semantic), "semantic/op")
		})
	}
}

// BenchmarkAblationPairing compares minimum-distance DAG pairing (the
// paper's maximum matching) against naive order-based pairing on a change
// that reorders two cipher allocations. The match/op metric is 1 when the
// refactoring is recognized (all pairs at distance 0) and 0 when the
// pairing mismatches objects — naive pairing fails, IoU pairing succeeds.
func BenchmarkAblationPairing(b *testing.B) {
	oldSrc := `
class A {
    void m(Key k) throws Exception {
        Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding");
        a.init(Cipher.ENCRYPT_MODE, k);
        Cipher d = Cipher.getInstance("DES");
        d.init(Cipher.DECRYPT_MODE, k);
    }
}
`
	newSrc := `
class A {
    void m(Key k) throws Exception {
        Cipher d = Cipher.getInstance("DES");
        d.init(Cipher.DECRYPT_MODE, k);
        Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding");
        a.init(Cipher.ENCRYPT_MODE, k);
    }
}
`
	run := func(b *testing.B, pair func(old, new []*usage.Graph) int) {
		oldGs := BuildDAGs(oldSrc, Cipher, Options{})
		newGs := BuildDAGs(newSrc, Cipher, Options{})
		matched := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			matched = pair(oldGs, newGs)
		}
		b.ReportMetric(float64(matched), "match/op")
	}
	b.Run("iou-matching", func(b *testing.B) {
		run(b, func(old, new []*usage.Graph) int {
			for _, pr := range usage.Pair(old, new, Cipher) {
				if usage.Dist(pr.Old, pr.New) != 0 {
					return 0
				}
			}
			return 1
		})
	})
	b.Run("naive-order", func(b *testing.B) {
		run(b, func(old, new []*usage.Graph) int {
			for i := range old {
				if usage.Dist(old[i], new[i]) != 0 {
					return 0
				}
			}
			return 1
		})
	})
}

// BenchmarkAblationLinkage compares dendrogram construction under the
// three linkages; complete linkage (the paper's choice) avoids the chaining
// that single linkage exhibits.
func BenchmarkAblationLinkage(b *testing.B) {
	c := GenerateCorpus(CorpusConfig{Seed: 1, Scale: 0.35, Projects: 140, ExtraProjects: 0})
	e := NewEvaluation(c, Options{})
	var all []UsageChange
	for _, class := range TargetClasses() {
		all = append(all, e.SortedSurvivors(class)...)
	}
	if len(all) < 4 {
		b.Skip("not enough survivors at bench scale")
	}
	d := cluster.DistMatrix(all)
	for name, linkage := range map[string]cluster.Linkage{
		"complete": cluster.Complete,
		"single":   cluster.Single,
		"average":  cluster.Average,
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var root *cluster.Node
			for i := 0; i < b.N; i++ {
				root = cluster.AgglomerateMatrix(d, linkage)
			}
			b.ReportMetric(root.Height, "rootheight")
			// Cophenetic correlation: how faithfully this linkage's tree
			// preserves the usage distances (higher is better).
			b.ReportMetric(cluster.CopheneticCorrelation(d, root), "cophcorr")
		})
	}
}

// BenchmarkAblationShortestPaths compares the prefix-minimal feature sets
// (the paper's Removed/Added) against full path-set diffs: features/op
// counts the emitted feature paths — the minimal form stays compact.
func BenchmarkAblationShortestPaths(b *testing.B) {
	oldGs := BuildDAGs(benchOld, Cipher, Options{})
	newGs := BuildDAGs(benchNew, Cipher, Options{})
	if len(oldGs) != 1 || len(newGs) != 1 {
		b.Fatal("expected one DAG per version")
	}
	fullDiff := func() int {
		o := map[string]bool{}
		for _, p := range oldGs[0].Paths() {
			o[p.Key()] = true
		}
		n := 0
		for _, p := range newGs[0].Paths() {
			if !o[p.Key()] {
				n++
			}
		}
		return n
	}
	b.Run("shortest", func(b *testing.B) {
		count := 0
		for i := 0; i < b.N; i++ {
			changes := DiffSources(benchOld, benchNew, Cipher, Options{})
			count = len(changes[0].Added)
		}
		b.ReportMetric(float64(count), "features/op")
	})
	b.Run("full-paths", func(b *testing.B) {
		count := 0
		for i := 0; i < b.N; i++ {
			count = fullDiff()
		}
		b.ReportMetric(float64(count), "features/op")
	})
}

// BenchmarkRuleMatching measures per-rule evaluation over an analyzed
// program.
func BenchmarkRuleMatching(b *testing.B) {
	src := `
class T {
    void run(Key key, char[] pw) throws Exception {
        Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");
        Cipher r = Cipher.getInstance("RSA");
        MessageDigest md = MessageDigest.getInstance("SHA-1");
        PBEKeySpec p = new PBEKeySpec(pw, new byte[]{1,2}, 100, 256);
    }
}
`
	res := AnalyzeUsages(src, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(rules.Check(res, rules.Context{}, rules.All())) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkAblationForkBudget sweeps the analyzer's execution-fork cap
// (MaxStates). Low budgets join branch states early and can lose constants
// (the branched transformation test needs ≥2); large budgets cost time on
// branchy methods.
func BenchmarkAblationForkBudget(b *testing.B) {
	src := `
class C {
    void run(int mode, Key key) throws Exception {
        String t;
        if (mode == 0) { t = "AES/GCM/NoPadding"; }
        else if (mode == 1) { t = "AES/CBC/PKCS5Padding"; }
        else if (mode == 2) { t = "AES/CTR/NoPadding"; }
        else { t = "AES"; }
        Cipher c = Cipher.getInstance(t);
        c.init(Cipher.ENCRYPT_MODE, key);
    }
}
`
	for _, budget := range []int{1, 2, 4, 16, 64} {
		b.Run(fmt.Sprintf("maxstates%d", budget), func(b *testing.B) {
			opts := Options{}
			opts.Analysis.MaxStates = budget
			variants := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := diffAnalyze(src, opts)
				variants = res
			}
			b.ReportMetric(float64(variants), "transforms/op")
		})
	}
}

// diffAnalyze counts the distinct constant transformations observed on the
// single Cipher object (a precision proxy for the fork-budget ablation).
func diffAnalyze(src string, opts Options) int {
	gs := BuildDAGs(src, Cipher, opts)
	if len(gs) != 1 {
		return -1
	}
	n := 0
	for _, p := range gs[0].Paths() {
		if len(p) == 3 && strings.Contains(p[2], `arg1:"`) {
			n++
		}
	}
	return n
}
