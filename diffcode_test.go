package diffcode

import (
	"strings"
	"testing"
)

// TestPublicAPIPaperExample drives the whole public surface on the paper's
// Figure 2 running example.
func TestPublicAPIPaperExample(t *testing.T) {
	changes := DiffSources(benchOld, benchNew, Cipher, Options{})
	if len(changes) != 1 {
		t.Fatalf("changes = %d", len(changes))
	}
	kept, stats := Filter(changes)
	if len(kept) != 1 || stats.AfterDup != 1 {
		t.Fatalf("filtering lost the fix: %+v", stats)
	}
	c := kept[0]
	if c.Class != Cipher {
		t.Errorf("class = %s", c.Class)
	}
	var rendered []string
	for _, p := range c.Removed {
		rendered = append(rendered, "-"+p.String())
	}
	for _, p := range c.Added {
		rendered = append(rendered, "+"+p.String())
	}
	joined := strings.Join(rendered, "\n")
	if !strings.Contains(joined, `-Cipher → getInstance → arg1:"AES"`) {
		t.Errorf("missing removed feature:\n%s", joined)
	}
	if !strings.Contains(joined, "IvParameterSpec") {
		t.Errorf("missing IV feature:\n%s", joined)
	}

	// The suggested rule flags old code and accepts new code.
	rule := SuggestRule(c)
	oldRes := AnalyzeUsages(benchOld, Options{})
	newRes := AnalyzeUsages(benchNew, Options{})
	if ok, _ := rule.Matches(oldRes, RuleContext{}); !ok {
		t.Error("suggested rule misses the vulnerable version")
	}
	if ok, _ := rule.Matches(newRes, RuleContext{}); ok {
		t.Error("suggested rule flags the fixed version")
	}
}

func TestPublicChecker(t *testing.T) {
	vulnerable := `
class V {
    void go(Key k) throws Exception {
        Cipher c = Cipher.getInstance("AES");
        c.init(Cipher.ENCRYPT_MODE, k);
    }
}
`
	vs := CheckSource(vulnerable, RuleContext{}, Options{})
	ids := map[string]bool{}
	for _, v := range vs {
		ids[v.Rule.ID] = true
	}
	if !ids["R7"] {
		t.Errorf("R7 (ECB) not reported: %v", ids)
	}
	if !ids["R5"] {
		t.Errorf("R5 (provider) not reported: %v", ids)
	}
}

func TestPublicRuleRegistry(t *testing.T) {
	if len(Rules()) != 13 {
		t.Errorf("Rules() = %d", len(Rules()))
	}
	if len(CryptoLintRules()) != 5 {
		t.Errorf("CryptoLintRules() = %d", len(CryptoLintRules()))
	}
	if RuleByID("R7") == nil || RuleByID("CL1") == nil {
		t.Error("RuleByID lookup failed")
	}
	if got := TargetClasses(); len(got) != 6 || got[0] != Cipher {
		t.Errorf("TargetClasses = %v", got)
	}
}

func TestPublicCorpusAndMining(t *testing.T) {
	c := GenerateCorpus(CorpusConfig{Seed: 2, Scale: 0.05, Projects: 10, ExtraProjects: 2})
	if len(c.Projects) != 12 {
		t.Fatalf("projects = %d", len(c.Projects))
	}
	ccs := MineCorpus(c, 0)
	if len(ccs) == 0 {
		t.Fatal("no code changes mined")
	}
	// Unified diff of a change renders the -/+ patch.
	patch := UnifiedDiff(ccs[0].Old, ccs[0].New, 1)
	if !strings.Contains(patch, "- ") && !strings.Contains(patch, "+ ") {
		t.Errorf("diff has no changes:\n%s", patch)
	}
}

func TestPublicClusterRendering(t *testing.T) {
	a := DiffSources(benchOld, benchNew, Cipher, Options{})
	b := DiffSources(
		strings.ReplaceAll(benchOld, `"AES"`, `"DES"`),
		strings.ReplaceAll(benchNew, "AES/CBC/PKCS5Padding", "AES/GCM/NoPadding"),
		Cipher, Options{})
	all := append(a, b...)
	kept, _ := Filter(all)
	if len(kept) < 2 {
		t.Fatalf("kept = %d", len(kept))
	}
	root := Cluster(kept)
	out := RenderDendrogram(root, func(i int) string { return kept[i].Key() })
	if !strings.Contains(out, "h=") {
		t.Errorf("dendrogram:\n%s", out)
	}
}

func TestDefaultCorpusConfig(t *testing.T) {
	cfg := DefaultCorpusConfig()
	if cfg.Projects != 461 || cfg.ExtraProjects != 58 || cfg.Scale != 1.0 {
		t.Errorf("default config = %+v", cfg)
	}
}
