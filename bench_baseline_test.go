package diffcode

// Baseline runner for the named perf benchmarks. Not a test of behavior:
// when BENCH_BASELINE_OUT is set it runs each named benchmark once via
// testing.Benchmark and writes the results as a metrics snapshot (the same
// diffcode-metrics/v1 schema the CLIs emit with -metrics), so a future
// optimisation PR can diff its numbers against a committed baseline:
//
//	make bench-baseline        # writes BENCH_baseline.json
//
// Without the environment variable the test skips, keeping `go test ./...`
// fast and deterministic.

import (
	"os"
	"testing"

	"repro/internal/obs"
)

// baselineBenchmarks are the hot paths the perf trajectory tracks. Keep
// this list in sync with the named benchmarks in bench_test.go.
var baselineBenchmarks = []struct {
	name string
	fn   func(*testing.B)
}{
	{"parser", BenchmarkParser},
	{"interpreter_hot_loop", BenchmarkInterpreterHotLoop},
	{"clustering_dist_matrix", BenchmarkClusteringDistMatrix},
	{"clustering_agglomerate", BenchmarkClusteringAgglomerate},
	{"diff_sources", BenchmarkDiffSources},
	{"check_source", BenchmarkCheckSource},
}

func TestWriteBenchBaseline(t *testing.T) {
	out := os.Getenv("BENCH_BASELINE_OUT")
	if out == "" {
		t.Skip("set BENCH_BASELINE_OUT=<file> to write the benchmark baseline snapshot")
	}
	reg := obs.NewRegistry()
	for _, bb := range baselineBenchmarks {
		r := testing.Benchmark(bb.fn)
		if r.N == 0 {
			t.Fatalf("benchmark %s did not run", bb.name)
		}
		reg.Counter("bench." + bb.name + ".iterations").Add(int64(r.N))
		reg.Gauge("bench." + bb.name + ".ns_per_op").Set(r.NsPerOp())
		reg.Gauge("bench." + bb.name + ".allocs_per_op").Set(r.AllocsPerOp())
		reg.Gauge("bench." + bb.name + ".bytes_per_op").Set(r.AllocedBytesPerOp())
		t.Logf("%-28s %12d ns/op %8d B/op %6d allocs/op",
			bb.name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	if err := obs.WriteSnapshotFile(out, reg, false); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	t.Logf("baseline written to %s", out)
}
