package diffcode

// Benchmarks for the analysis server (DESIGN.md §11). The number that
// matters for a service is sustained throughput at bounded tail latency:
// requests per second through the full admission → guard → analyze →
// respond ladder, plus the p50/p99 of the server's own latency histogram.
//
//	make bench-serve           # writes BENCH_serve.json
//
// Without BENCH_SERVE_OUT the snapshot runner skips, keeping `go test .`
// fast; the named benchmark runs under `-bench` as usual.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// serveBenchBody is a representative /v1/check request: two files, one
// violating, exercising parse, interpret, rule evaluation, and JSON
// rendering per request.
const serveBenchBody = `{"sources":{
  "App.java":  "import javax.crypto.Cipher;\nclass App { void f() throws Exception { Cipher c = Cipher.getInstance(\"AES/ECB/PKCS5Padding\"); c.doFinal(new byte[16]); } }",
  "Util.java": "import javax.crypto.Cipher;\nclass Util { void g() throws Exception { Cipher c = Cipher.getInstance(\"AES/GCM/NoPadding\"); } }"
}}`

// BenchmarkServeCheck measures one /v1/check request through the full
// server handler stack, no network.
func BenchmarkServeCheck(b *testing.B) {
	s := serve.New(serve.Options{Checker: core.Options{Metrics: obs.NewRegistry()}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(serveBenchBody))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// TestWriteBenchServe snapshots the server's sustained throughput under
// concurrent load into BENCH_serve.json (diffcode-metrics/v1 schema, like
// the other snapshots): total requests, req/sec, and the p50/p99 of the
// server's own serve.check.latency_us histogram, over real HTTP. Skips
// unless BENCH_SERVE_OUT is set.
func TestWriteBenchServe(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_OUT")
	if out == "" {
		t.Skip("set BENCH_SERVE_OUT=<file> to write the server throughput snapshot")
	}
	reg := obs.NewRegistry()
	s := serve.New(serve.Options{Checker: core.Options{Metrics: reg}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		clients   = 8
		perClient = 40
		totalWant = clients * perClient
	)
	var failures sync.Map
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(serveBenchBody))
				if err != nil {
					failures.Store(c, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Store(c, resp.Status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	failures.Range(func(k, v any) bool {
		t.Errorf("client %v failed: %v", k, v)
		return true
	})
	if t.Failed() {
		t.FailNow()
	}

	// The quantiles come from the snapshot (HistSnapshot.P50/P99) rather
	// than re-deriving them from the live histogram: one estimator, shared
	// with every -metrics artifact.
	lat := obs.TakeSnapshot(reg, false).Histograms["serve.check.latency_us"]
	bench := obs.NewRegistry()
	bench.Gauge("bench.serve.requests").Set(int64(totalWant))
	bench.Gauge("bench.serve.clients").Set(clients)
	bench.Gauge("bench.serve.wall_us").Set(wall.Microseconds())
	if us := wall.Microseconds(); us > 0 {
		bench.Gauge("bench.serve.req_per_sec").Set(int64(totalWant) * 1_000_000 / us)
	}
	bench.Gauge("bench.serve.p50_us").Set(lat.P50)
	bench.Gauge("bench.serve.p99_us").Set(lat.P99)
	t.Logf("served %d requests in %v (%d req/s), p50 %dµs p99 %dµs",
		totalWant, wall.Round(time.Millisecond),
		int64(totalWant)*1_000_000/max64(wall.Microseconds(), 1),
		lat.P50, lat.P99)
	if err := obs.WriteSnapshotFile(out, bench, false); err != nil {
		t.Fatalf("writing serve snapshot: %v", err)
	}
	t.Logf("server throughput snapshot written to %s", out)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
