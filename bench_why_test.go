package diffcode

// Benchmarks for the provenance-tracking interpreter behind -why (DESIGN.md
// §10). Provenance is observation-only and off by default; the number that
// matters is the overhead it adds to the interpreter's step loop when a user
// asks for witness traces — the acceptance bound is <10% ns/op over the
// tracking-off hot loop on the same pre-parsed program.
//
//	make bench-why             # writes BENCH_why.json
//
// Without BENCH_WHY_OUT the snapshot runner skips, keeping `go test .` fast;
// the named benchmark runs under `-bench` as usual.

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/witness"
)

// benchInterpreterAt runs the interpreter step loop on the shared benchmark
// program with provenance tracking on or off.
func benchInterpreterAt(provenance bool) func(*testing.B) {
	return func(b *testing.B) {
		prog := analysis.ParseProgram(benchSources())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := analysis.Analyze(prog, analysis.Options{Provenance: provenance})
			if len(res.Objs) == 0 {
				b.Fatal("no abstract objects")
			}
		}
	}
}

// BenchmarkInterpreterProvenance compares the interpreter hot loop with
// provenance tracking off (the default every non--why run takes) and on (the
// -why path). The off variant is the same workload as
// BenchmarkInterpreterHotLoop; the spread between the two sub-benchmarks is
// the whole cost of def-site tagging.
func BenchmarkInterpreterProvenance(b *testing.B) {
	for _, prov := range []bool{false, true} {
		b.Run(fmt.Sprintf("prov=%t", prov), benchInterpreterAt(prov))
	}
}

// BenchmarkWitnessReconstruct measures the post-analysis witness layer:
// evidence location, provenance linearization, and rendering for every
// violation of the benchmark program. This cost is paid once per -why run,
// after the interpreter, and scales with violations rather than program size.
func BenchmarkWitnessReconstruct(b *testing.B) {
	res := analysis.Analyze(analysis.ParseProgram(benchSources()), analysis.Options{Provenance: true})
	ctx := rules.Context{}
	vs := rules.Check(res, ctx, rules.All())
	if len(vs) == 0 {
		b.Fatal("benchmark program has no violations")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traces := witness.Collect(vs, res, ctx)
		if len(traces) == 0 {
			b.Fatal("no witness traces")
		}
		if witness.Render(traces) == "" {
			b.Fatal("empty rendering")
		}
	}
}

// TestWriteBenchWhy snapshots the provenance-on/off interpreter timings and
// the witness reconstruction cost into BENCH_why.json (diffcode-metrics/v1
// schema, like the other snapshots). The overhead gauge is in thousandths:
// 1050 means provenance tracking costs 5% over the tracking-off loop — the
// acceptance bound for this knob is overhead_milli < 1100. Skips unless
// BENCH_WHY_OUT is set.
func TestWriteBenchWhy(t *testing.T) {
	out := os.Getenv("BENCH_WHY_OUT")
	if out == "" {
		t.Skip("set BENCH_WHY_OUT=<file> to write the provenance overhead snapshot")
	}
	reg := obs.NewRegistry()
	// Interleave off/on rounds and keep each variant's fastest round: the
	// two loops allocate identically from round to round, so min-of-N
	// cancels the machine's slow drift (GC phase, neighboring load) that a
	// single back-to-back pair would bake into the ratio.
	const rounds = 3
	var off, on testing.BenchmarkResult
	for i := 0; i < rounds; i++ {
		o := testing.Benchmark(benchInterpreterAt(false))
		p := testing.Benchmark(benchInterpreterAt(true))
		if o.N == 0 || p.N == 0 {
			t.Fatal("benchmark did not run")
		}
		if i == 0 || o.NsPerOp() < off.NsPerOp() {
			off = o
		}
		if i == 0 || p.NsPerOp() < on.NsPerOp() {
			on = p
		}
	}
	reg.Gauge("bench.interpreter_provenance.off_ns_per_op").Set(off.NsPerOp())
	reg.Gauge("bench.interpreter_provenance.on_ns_per_op").Set(on.NsPerOp())
	reg.Gauge("bench.interpreter_provenance.off_allocs_per_op").Set(off.AllocsPerOp())
	reg.Gauge("bench.interpreter_provenance.on_allocs_per_op").Set(on.AllocsPerOp())
	overhead := int64(0)
	if off.NsPerOp() > 0 {
		overhead = on.NsPerOp() * 1000 / off.NsPerOp()
	}
	reg.Gauge("bench.interpreter_provenance.overhead_milli").Set(overhead)
	t.Logf("interpreter  off %12d ns/op   on %12d ns/op   overhead %d.%03dx",
		off.NsPerOp(), on.NsPerOp(), overhead/1000, overhead%1000)
	wit := testing.Benchmark(BenchmarkWitnessReconstruct)
	if wit.N == 0 {
		t.Fatal("witness benchmark did not run")
	}
	reg.Gauge("bench.witness_reconstruct.ns_per_op").Set(wit.NsPerOp())
	reg.Gauge("bench.witness_reconstruct.allocs_per_op").Set(wit.AllocsPerOp())
	t.Logf("witness reconstruct %12d ns/op", wit.NsPerOp())
	if err := obs.WriteSnapshotFile(out, reg, false); err != nil {
		t.Fatalf("writing why snapshot: %v", err)
	}
	t.Logf("provenance overhead snapshot written to %s", out)
}
