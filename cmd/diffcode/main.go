// Command diffcode runs the DiffCode pipeline. Two modes:
//
// Single change — abstract and diff two versions of one Java file:
//
//	diffcode -old Old.java -new New.java [-class Cipher]
//
// Corpus mining — mine a corpus directory (from corpusgen), filter, and
// cluster the semantic usage changes of one target class:
//
//	diffcode -corpus /tmp/corpus -class Cipher
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/change"
	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/rules"
	"repro/internal/textdiff"
	"repro/internal/witness"
)

func main() {
	var (
		oldFile   = flag.String("old", "", "old version of a Java file")
		newFile   = flag.String("new", "", "new version of a Java file")
		corpusDir = flag.String("corpus", "", "corpus directory produced by corpusgen")
		class     = flag.String("class", "", "target API class (default: all six)")
		depth     = flag.Int("depth", 5, "usage-DAG expansion depth")
		showDiff  = flag.Bool("patch", false, "also print the textual patch (single-change mode)")
		dot       = flag.Bool("dot", false, "emit the usage DAGs of both versions in Graphviz dot format (single-change mode)")
		budget    = flag.Int64("budget", 0, "max abstract-interpretation steps per change (0 = unlimited)")
		maxErrors = flag.Int("max-errors", 0, "abort mining after this many skipped changes (0 = unlimited)")
		failFast  = flag.Bool("fail-fast", false, "abort mining at the first skipped change")
		metrics   = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		verbose   = flag.Bool("v", false, "print a stage-by-stage telemetry summary to stderr at exit")
		debugAddr = flag.String("debug-addr", "", "serve live metrics and pprof on this address (e.g. localhost:6060)")
		shards    = flag.Int("shards", 1, "analyze and filter the mined corpus in N contiguous shards (map-reduce over a shared -cache-dir; output is identical at any N)")
		std       = cliutil.StandardFlags("diffcode")
	)
	std.Parse()
	why := std.Why()
	if *shards < 1 {
		cliutil.UsageError("diffcode", "-shards must be at least 1 (got %d)", *shards)
	}

	run, err := obs.NewCLI("diffcode", *metrics, *debugAddr, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffcode: %v\n", err)
		os.Exit(1)
	}
	// -trace threads a span tree through the whole run and dumps it to
	// stderr at exit (stdout output is byte-identical either way).
	tctx, troot := std.Trace().Begin("diffcode")
	defer std.Trace().Dump(os.Stderr, troot)
	opts := core.Options{
		Depth:            *depth,
		BudgetSteps:      *budget,
		MaxErrors:        *maxErrors,
		FailFast:         *failFast,
		Metrics:          run.Reg,
		Workers:          std.Workers(),
		DisableDistCache: !std.DistCache(),
		DisableSummaries: !std.Summaries(),
		Artifacts:        std.Artifacts(run.Reg),
	}
	opts.Analysis.MaxInline = std.MaxInline()
	// The rule-pack gate: -rules packs must compile and lint before any
	// mode runs (exit 2 on error findings unless -rules-lax). The merged
	// set feeds the -why check path; mining itself evaluates no rules.
	activeRules := std.ActiveRules(run.Reg)
	classes := cryptoapi.TargetClasses
	if *class != "" {
		if !cryptoapi.IsTarget(*class) {
			cliutil.UsageError("diffcode", "unknown target class %q (want one of %v)",
				*class, cryptoapi.TargetClasses)
		}
		classes = []string{*class}
	}

	switch {
	case *oldFile != "" && *newFile != "":
		runSingle(tctx, run, *oldFile, *newFile, classes, opts, *showDiff, *dot, why, activeRules)
	case *corpusDir != "":
		if why.On() {
			cliutil.UsageError("diffcode", "-why applies to single-change mode (-old/-new) only")
		}
		runCorpus(tctx, run, *corpusDir, classes, opts, *shards)
	default:
		cliutil.UsageError("diffcode", "need either -old/-new or -corpus")
	}
}

func runSingle(tctx context.Context, run *obs.CLI, oldPath, newPath string, classes []string, opts core.Options, showDiff, dot bool, why cliutil.WhyMode, activeRules []*rules.Rule) {
	oldSrc := mustRead(oldPath)
	newSrc := mustRead(newPath)
	if showDiff {
		fmt.Println("--- patch ---")
		fmt.Print(textdiff.Unified(oldSrc, newSrc, 2))
		fmt.Println()
	}
	if dot {
		for _, cls := range classes {
			for i, g := range core.BuildDAGs(oldSrc, cls, opts) {
				fmt.Print(g.DOT(fmt.Sprintf("old_%s_%d", cls, i)))
			}
			for i, g := range core.BuildDAGs(newSrc, cls, opts) {
				fmt.Print(g.DOT(fmt.Sprintf("new_%s_%d", cls, i)))
			}
		}
	}
	d := core.New(opts)
	a, err := d.AnalyzeChangeCtx(tctx, mining.CodeChange{
		Old: oldSrc, New: newSrc,
		Meta: change.Meta{File: newPath},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffcode: %v\n", err)
		run.Flush(d.Ledger(), true)
		os.Exit(1)
	}
	any := false
	for _, cls := range classes {
		for _, c := range d.ExtractClass(a, cls) {
			if c.IsSame() {
				continue
			}
			any = true
			label := "semantic change"
			switch {
			case c.IsAddOnly():
				label = "new usage added"
			case c.IsRemoveOnly():
				label = "usage removed"
			}
			fmt.Printf("%s (%s):\n%s\n", cls, label, c.String())
		}
	}
	if !any {
		fmt.Println("no semantic usage changes (refactoring or unrelated change)")
	}
	if why.On() {
		printWhy(tctx, run, oldPath, oldSrc, newPath, newSrc, opts, why, activeRules)
	}
	run.Flush(d.Ledger(), false)
}

// printWhy checks both versions of the change against the active rule set
// (the built-ins, plus any -rules packs) and prints witness traces for the
// violations the change fixed (old version only) and introduced (new
// version only).
func printWhy(tctx context.Context, run *obs.CLI, oldPath, oldSrc, newPath, newSrc string, opts core.Options, why cliutil.WhyMode, activeRules []*rules.Rule) {
	checker := core.NewChecker(activeRules, opts)
	ctx := rules.Context{}
	oldVs, oldTraces := checker.CheckSourcesWhyCtx(tctx, map[string]string{oldPath: oldSrc}, ctx)
	newVs, newTraces := checker.CheckSourcesWhyCtx(tctx, map[string]string{newPath: newSrc}, ctx)
	oldIDs := ruleIDSet(oldVs)
	newIDs := ruleIDSet(newVs)
	fixed := filterTraces(oldTraces, func(id string) bool { return !newIDs[id] })
	introduced := filterTraces(newTraces, func(id string) bool { return !oldIDs[id] })
	if why == cliutil.WhyJSON {
		out := struct {
			Fixed      []witness.Trace `json:"fixed"`
			Introduced []witness.Trace `json:"introduced"`
		}{fixed, introduced}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "diffcode: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Printf("\n--- violations fixed by this change (%d) ---\n", countRules(fixed))
	fmt.Print(witness.Render(fixed))
	fmt.Printf("\n--- violations introduced by this change (%d) ---\n", countRules(introduced))
	fmt.Print(witness.Render(introduced))
}

func ruleIDSet(vs []rules.Violation) map[string]bool {
	out := map[string]bool{}
	for _, v := range vs {
		out[v.Rule.ID] = true
	}
	return out
}

func filterTraces(ts []witness.Trace, keep func(ruleID string) bool) []witness.Trace {
	var out []witness.Trace
	for _, t := range ts {
		if keep(t.Rule) {
			out = append(out, t)
		}
	}
	return out
}

func countRules(ts []witness.Trace) int {
	seen := map[string]bool{}
	for _, t := range ts {
		seen[t.Rule] = true
	}
	return len(seen)
}

func runCorpus(tctx context.Context, run *obs.CLI, dir string, classes []string, opts core.Options, shards int) {
	// One ledger spans the whole run: corpus loading and mining both record
	// the work they skipped into it.
	ledger := resilience.NewLedger()
	opts.Ledger = ledger
	loadOpts := []corpus.LoadOption{corpus.WithLedger(ledger), corpus.WithMetrics(run.Reg),
		corpus.WithArtifacts(opts.Artifacts)}
	if opts.FailFast {
		loadOpts = append(loadOpts, corpus.Strict())
	}
	c, err := corpus.Load(dir, loadOpts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffcode: %v\n", err)
		run.Flush(ledger, true)
		os.Exit(1)
	}
	d := core.New(opts)
	// -shards N analyzes and class-filters the mined corpus in N contiguous
	// shards, merging per-class results (core.MergeClassResults) into exactly
	// the monolithic output; -shards 1 is the classic single-pass path.
	var analyzed []*core.AnalyzedChange
	var shardAnalyzed [][]*core.AnalyzedChange
	if shards > 1 {
		shardAnalyzed = d.MineCorpusShardsCtx(tctx, c, shards)
		for _, sh := range shardAnalyzed {
			analyzed = append(analyzed, sh...)
		}
	} else {
		analyzed = d.MineCorpusCtx(tctx, c)
	}
	fmt.Printf("mined %d code changes from %d training projects\n\n",
		len(analyzed), len(c.TrainingProjects()))
	for _, cls := range classes {
		var r core.ClassPipelineResult
		if shards > 1 {
			parts := make([]core.ClassPipelineResult, len(shardAnalyzed))
			for i, sh := range shardAnalyzed {
				parts[i] = d.RunClassCtx(tctx, sh, cls)
			}
			r = core.MergeClassResults(cls, parts...)
		} else {
			r = d.RunClassCtx(tctx, analyzed, cls)
		}
		s := r.Stats
		fmt.Printf("%s: %d usage changes → fsame %d → fadd %d → frem %d → fdup %d\n",
			cls, s.Total, s.AfterSame, s.AfterAdd, s.AfterRem, s.AfterDup)
		if len(r.Survivors) == 0 {
			continue
		}
		fmt.Println("semantic usage changes:")
		for _, uc := range r.Survivors {
			fmt.Printf("  [%s %s] %s\n", uc.Meta.Project, uc.Meta.Commit, uc.Meta.Message)
		}
		if len(r.Survivors) > 1 {
			root := d.ClusterChangesCtx(tctx, r.Survivors)
			fmt.Println("dendrogram:")
			fmt.Print(indent(cluster.Render(root, func(i int) string {
				uc := r.Survivors[i]
				return fmt.Sprintf("[%s] %s", uc.Meta.Commit, uc.Meta.Message)
			}), "  "))
		}
		fmt.Println()
	}
	if ledger.Len() > 0 {
		fmt.Fprint(os.Stderr, ledger.Report())
		if opts.FailFast || (opts.MaxErrors > 0 && ledger.Len() >= opts.MaxErrors) {
			fmt.Fprintln(os.Stderr, "diffcode: mining aborted early (fail-fast/max-errors); results are partial")
			// The snapshot still lands on disk, flagged partial, so a
			// degraded run stays diagnosable.
			run.Flush(ledger, true)
			os.Exit(1)
		}
	}
	run.Flush(ledger, false)
}

func mustRead(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffcode: %v\n", err)
		os.Exit(1)
	}
	return string(b)
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += prefix + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
