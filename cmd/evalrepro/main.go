// Command evalrepro regenerates every table and figure of the paper's
// evaluation (§6) over the synthetic corpus:
//
//	evalrepro -fig 6          Figure 6 (filtering per target class)
//	evalrepro -fig 7          Figure 7 (fixes vs buggy changes, CL1-CL5)
//	evalrepro -fig 8          Figure 8 (Cipher dendrogram + ECB cluster)
//	evalrepro -fig 9          Figure 9 (the 13 elicited rules)
//	evalrepro -fig 10         Figure 10 (CryptoChecker over all projects)
//	evalrepro -fig all        everything plus the headline claims
//	evalrepro -headline       just the three headline numbers
//	evalrepro -elicit         add the automated rule elicitation
//	evalrepro -out artifacts  also write each section to artifacts/*.txt
//
// The corpus defaults to a reduced scale so a full run finishes in seconds;
// pass -scale 1 -projects 461 -extra 58 for the paper-scale run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/obs"
)

var outDir string

// section runs f with a writer that prints to stdout and, when -out is
// set, also captures the section into <out>/<name>.txt.
func section(name string, f func(w io.Writer)) {
	w := io.Writer(os.Stdout)
	var file *os.File
	if outDir != "" {
		var err error
		file, err = os.Create(filepath.Join(outDir, name+".txt"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
		} else {
			w = io.MultiWriter(os.Stdout, file)
		}
	}
	f(w)
	if file != nil {
		file.Close()
	}
}

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, 10, or all")
		elicit    = flag.Bool("elicit", false, "also run the automated rule elicitation over the mined clusters")
		trend     = flag.Bool("trend", false, "also compare rule violations at the first vs last commit of each history")
		headline  = flag.Bool("headline", false, "print only the headline claims")
		seed      = flag.Int64("seed", 1, "corpus generation seed")
		scale     = flag.Float64("scale", 0.5, "corpus scale (1.0 = paper scale)")
		projects  = flag.Int("projects", 230, "training projects (paper: 461)")
		extra     = flag.Int("extra", 29, "held-out projects (paper: 58)")
		depth     = flag.Int("depth", 5, "usage-DAG expansion depth")
		verbose   = flag.Bool("v", false, "print timing information")
		budget    = flag.Int64("budget", 0, "max abstract-interpretation steps per mined change (0 = unlimited)")
		maxErr    = flag.Int("max-errors", 0, "abort analysis after this many skipped changes (0 = unlimited)")
		failFast  = flag.Bool("fail-fast", false, "abort analysis at the first skipped change")
		metrics   = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		debugAddr = flag.String("debug-addr", "", "serve live metrics and pprof on this address (e.g. localhost:6060)")
		// -why is accepted for CLI parity; the evaluation harness prints
		// figures, not per-violation traces.
		std = cliutil.StandardFlags("evalrepro")
	)
	flag.StringVar(&outDir, "out", "", "also write each figure to <out>/figureN.txt")
	std.Parse()
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
			os.Exit(1)
		}
	}

	// -v doubles as the telemetry-summary switch: timing lines during the
	// run, the stage table at exit.
	run, err := obs.NewCLI("evalrepro", *metrics, *debugAddr, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evalrepro: %v\n", err)
		os.Exit(1)
	}
	// -trace threads a span tree through corpus generation and the mining
	// run; the deferred dump runs after the figure sections (defers are
	// LIFO, so it lands after the telemetry flush on stderr).
	tctx, troot := std.Trace().Begin("evalrepro")
	defer std.Trace().Dump(os.Stderr, troot)
	// The rule-pack gate: -rules packs must compile and lint cleanly before
	// the run (exit 2 on error findings unless -rules-lax). The evaluation
	// harness reproduces the paper's figures over the built-in rules, so
	// the merged set is validated and registered but not evaluated here.
	_ = std.ActiveRules(run.Reg)
	cfg := corpus.Config{Seed: *seed, Scale: *scale, Projects: *projects, ExtraProjects: *extra}
	opts := core.Options{
		Depth:            *depth,
		BudgetSteps:      *budget,
		MaxErrors:        *maxErr,
		FailFast:         *failFast,
		Metrics:          run.Reg,
		Workers:          std.Workers(),
		DisableDistCache: !std.DistCache(),
		DisableSummaries: !std.Summaries(),
		// -cache-dir wires the artifact store through the checker paths
		// (Figure 10, -trend); the evaluation harness itself strips it
		// (NewEvaluationCtx needs live analysis results for Figure 7).
		Artifacts: std.Artifacts(run.Reg),
	}
	opts.Analysis.MaxInline = std.MaxInline()

	start := time.Now()
	gsp := troot.Child("generate")
	c := corpus.Generate(cfg)
	gsp.End()
	if *verbose {
		fmt.Fprintf(os.Stderr, "corpus: %d projects, %d commits (%.2fs)\n",
			len(c.Projects), c.CommitCount(), time.Since(start).Seconds())
	}

	if *fig == "9" && !*headline && !*elicit && !*trend {
		section("figure9", func(w io.Writer) { fmt.Fprintln(w, core.Figure9()) })
		run.Flush(nil, false)
		return
	}

	start = time.Now()
	e := core.NewEvaluationCtx(tctx, c, opts)
	if *verbose {
		fmt.Fprintf(os.Stderr, "analysis: %d code changes (%.2fs)\n",
			len(e.Analyzed), time.Since(start).Seconds())
	}
	// Degraded-mode bookkeeping: whatever figures were requested, finish by
	// reporting any changes the resilience layer skipped (empty on an
	// intact corpus, so default output is unchanged). The telemetry flush
	// runs last (defers are LIFO) so the summary includes ledger counts.
	defer func() {
		l := e.DiffCode.Ledger()
		partial := l.Len() > 0 &&
			(opts.FailFast || (opts.MaxErrors > 0 && l.Len() >= opts.MaxErrors))
		run.Flush(l, partial)
	}()
	defer printFailures(e, *verbose)

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if *headline {
		section("headline", func(w io.Writer) { printHeadline(w, e) })
		return
	}
	if want("6") {
		section("figure6", func(w io.Writer) { fmt.Fprintln(w, e.Figure6()) })
	}
	if want("7") {
		section("figure7", func(w io.Writer) { fmt.Fprintln(w, e.Figure7()) })
	}
	if want("8") {
		section("figure8", func(w io.Writer) { printFigure8(w, e) })
	}
	if want("9") {
		section("figure9", func(w io.Writer) { fmt.Fprintln(w, core.Figure9()) })
	}
	if want("10") {
		section("figure10", func(w io.Writer) { fmt.Fprintln(w, e.Figure10().Table()) })
	}
	if *elicit {
		section("elicited", func(w io.Writer) { printElicited(w, e) })
	}
	if *trend {
		section("trend", func(w io.Writer) {
			fmt.Fprintln(w, core.Trend(e.Corpus, opts).Table())
		})
	}
	if *fig == "all" {
		section("headline", func(w io.Writer) { printHeadline(w, e) })
	}
}

// printFailures emits the failure summary of the run when any mined change
// was skipped by the resilience layer.
func printFailures(e *core.Evaluation, verbose bool) {
	l := e.DiffCode.Ledger()
	if l.Len() == 0 {
		if verbose {
			fmt.Fprintln(os.Stderr, "no analysis failures (ledger empty)")
		}
		return
	}
	section("failures", func(w io.Writer) { fmt.Fprint(w, l.Report()) })
}

func printElicited(w io.Writer, e *core.Evaluation) {
	elicited := e.ElicitRules()
	fmt.Fprintf(w, "Automated rule elicitation: %d fix clusters (buggy-direction clusters dropped)\n", len(elicited))
	fmt.Fprintln(w, "==============================================================================")
	for _, er := range elicited {
		fmt.Fprintf(w, "[%s] support=%d commits, reversals=%d, %d distinct change(s)\n",
			er.Class, er.Support, er.Reversals, len(er.Members))
		fmt.Fprintf(w, "  rule: %s\n", er.Rule.Formula)
	}
	fmt.Fprintln(w)
}

func printFigure8(w io.Writer, e *core.Evaluation) {
	f8 := e.Figure8()
	fmt.Fprintf(w, "Figure 8: hierarchical clustering of the %d semantic %s usage changes\n",
		len(f8.Survivors), cryptoapi.Cipher)
	fmt.Fprintln(w, "==========================================================================")
	fmt.Fprint(w, f8.Rendering)
	if len(f8.ECBCluster) > 0 {
		fmt.Fprintf(w, "\nECB cluster (elicits rule R7, \"do not use Cipher in ECB mode\"): ")
		fmt.Fprintf(w, "%d usage changes switching away from ECB:\n", len(f8.ECBCluster))
		for _, i := range f8.ECBCluster {
			c := f8.Survivors[i]
			fmt.Fprintf(w, "  [%s] %s\n", c.Meta.Commit, c.Meta.Message)
			fmt.Fprint(w, indent(c.String(), "    "))
		}
		// The inspection step: the concrete patch behind the cluster's
		// first member (what the analyst would read on GitHub).
		fmt.Fprintln(w, "\nConcrete patch behind the first cluster member:")
		fmt.Fprint(w, indent(e.RenderProvenance(f8.Survivors[f8.ECBCluster[0]], 2), "  "))
	} else {
		fmt.Fprintln(w, "\n(no ECB cluster at this scale — increase -scale)")
	}
	fmt.Fprintln(w)
}

func printHeadline(w io.Writer, e *core.Evaluation) {
	h := e.ComputeHeadline(e.Figure10())
	fmt.Fprintln(w, "Headline claims (paper §1/§6 vs this run)")
	fmt.Fprintln(w, "=========================================")
	fmt.Fprintf(w, "Non-semantic changes filtered:  paper >99%%   measured %.2f%% (%d of %d usage changes)\n",
		h.FilteredPct, h.TotalChanges-h.TotalSurviving, h.TotalChanges)
	fmt.Fprintf(w, "Semantic changes that are fixes: paper >80%%   measured %.1f%%\n", h.FixPct)
	fmt.Fprintf(w, "Projects violating ≥1 rule:      paper >57%%   measured %.1f%%\n", h.ViolatedPct)
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += prefix + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
