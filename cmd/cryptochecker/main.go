// Command cryptochecker checks Java sources against the 13 security rules
// elicited by DiffCode (paper Figure 9):
//
//	cryptochecker [flags] file.java [dir ...]
//
// All named .java files (directories are walked recursively) are analyzed
// together as one program. Android context for rule R6 comes from flags:
//
//	cryptochecker -android -minsdk 17 src/
//
// Exit status is 1 when at least one rule matches, 0 otherwise.
//
// Rule packs load through the uniform -rules flag (repeatable); packs are
// compiled and linted before anything runs, and error-level findings abort
// with exit 2 (-rules-lax loads what compiles instead). -lint-rules turns
// the tool into a standalone pack linter:
//
//	cryptochecker -lint-rules pack.rules [more.rules ...]
//
// printing the diagnostics (as JSON with -why=json) and exiting 2 on
// error findings, 1 on warnings, 0 on a clean pack.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/androidctx"
	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/resilience"
	"repro/internal/ruledsl"
	"repro/internal/rulelint"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/witness"
)

func main() {
	var (
		ruleList  = flag.String("only", "", "comma-separated rule IDs to check (default: the full active set)")
		ruleFile  = flag.String("rulefile", "", "load additional rules from a file ('id | description | formula' lines; unlinted legacy path — prefer -rules)")
		lintRules = flag.Bool("lint-rules", false, "lint the given rule pack files and exit (2 = errors, 1 = warnings, 0 = clean)")
		android   = flag.Bool("android", false, "treat the project as an Android app")
		minSDK    = flag.Int("minsdk", 0, "Android minSdkVersion (for rule R6)")
		lprng     = flag.Bool("lprng", false, "the Linux-PRNG SecureRandom fix is installed")
		list      = flag.Bool("list", false, "list available rules and exit")
		quiet     = flag.Bool("q", false, "print only rule IDs")
		verbose   = flag.Bool("v", false, "explain each violation with the matched abstract usages")
		budget    = flag.Int64("budget", 0, "max abstract-interpretation steps (0 = unlimited)")
		maxErr    = flag.Int("max-errors", 0, "abort after this many unreadable inputs (0 = unlimited)")
		failFast  = flag.Bool("fail-fast", false, "abort at the first unreadable input")
		metrics   = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		debugAddr = flag.String("debug-addr", "", "serve live metrics and pprof on this address (e.g. localhost:6060)")
		// -dist-cache is accepted for CLI parity; checking runs no
		// clustering, so there is no distance cache to toggle here.
		std = cliutil.StandardFlags("cryptochecker")
	)
	std.Parse()
	why := std.Why()
	workers := std.Workers()

	if *lintRules {
		// Standalone pack linter: -rules flags and positional arguments are
		// all pack files; the report is the product, on stdout.
		lintMode(std, why)
		return
	}
	if *list {
		for _, r := range rules.All() {
			fmt.Printf("%-4s %s\n     %s\n", r.ID, r.Description, r.Formula)
		}
		return
	}
	if flag.NArg() == 0 {
		cliutil.UsageError("cryptochecker", "no input files")
	}

	// -v doubles as the telemetry-summary switch (it goes to stderr, so
	// the violation report on stdout is unchanged).
	run, err := obs.NewCLI("cryptochecker", *metrics, *debugAddr, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cryptochecker: %v\n", err)
		os.Exit(1)
	}
	// -trace threads a span tree through parse → interpret → rules; the
	// dump goes to stderr right after the pipeline so it survives the
	// violation-dependent exit codes below.
	tctx, troot := std.Trace().Begin("cryptochecker")
	// The artifact store caches per-file parses and -rulefile compilations;
	// with -cache-dir the parses persist across runs.
	store := std.Artifacts(run.Reg)

	// The rule-pack gate: -rules packs compile, lint, and merge with the
	// built-ins (exit 2 on error findings unless -rules-lax); without the
	// flag the active set is exactly the built-in 13.
	ruleSet := rules.All()
	if active := std.ActiveRules(run.Reg); active != nil {
		ruleSet = active
	}
	if *ruleList != "" {
		byID := make(map[string]*rules.Rule, len(ruleSet))
		for _, r := range ruleSet {
			byID[r.ID] = r
		}
		filtered := []*rules.Rule(nil)
		for _, id := range strings.Split(*ruleList, ",") {
			id = strings.TrimSpace(id)
			r := byID[id]
			if r == nil {
				r = rules.ByID(id) // CL1–CL5 aliases stay addressable
			}
			if r == nil {
				cliutil.UsageError("cryptochecker", "unknown rule %q", id)
			}
			filtered = append(filtered, r)
		}
		ruleSet = filtered
	}
	if *ruleFile != "" {
		content, err := os.ReadFile(*ruleFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cryptochecker: %v\n", err)
			os.Exit(1)
		}
		extra, err := ruledsl.ParseFileCached(string(content), store)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cryptochecker: %s: %v\n", *ruleFile, err)
			os.Exit(1)
		}
		ruleSet = append(ruleSet, extra...)
	}

	// Unreadable inputs are skipped and recorded rather than aborting the
	// whole check; -fail-fast restores the old abort-on-first-error mode.
	ledger := resilience.NewLedger()
	sources := map[string]string{}
	for _, arg := range flag.Args() {
		if err := collect(arg, sources); err != nil {
			if *failFast {
				fmt.Fprintf(os.Stderr, "cryptochecker: %v\n", err)
				run.Flush(ledger, true)
				os.Exit(1)
			}
			ledger.Record(resilience.NewEntry(arg, resilience.PhaseLoad, err))
			if *maxErr > 0 && ledger.Len() >= *maxErr {
				fmt.Fprint(os.Stderr, ledger.Report())
				fmt.Fprintln(os.Stderr, "cryptochecker: too many unreadable inputs (-max-errors)")
				run.Flush(ledger, true)
				os.Exit(1)
			}
		}
	}
	if len(sources) == 0 {
		fmt.Fprint(os.Stderr, ledger.Report())
		fmt.Fprintln(os.Stderr, "cryptochecker: no .java files found")
		run.Flush(ledger, true)
		os.Exit(2)
	}

	ctx := rules.Context{Android: *android, MinSDKVersion: *minSDK, HasLPRNG: *lprng}
	if !*android && *minSDK == 0 && !*lprng {
		ctx = androidctx.Detect(sources)
		if ctx.Android && !*quiet {
			fmt.Fprintf(os.Stderr, "cryptochecker: detected Android project (minSdk %d, lprng fix %t)\n",
				ctx.MinSDKVersion, ctx.HasLPRNG)
		}
	}
	// The analysis runs under panic isolation and an optional step budget:
	// a pathological input degrades to a partial (or failed) check instead
	// of a crash.
	var res *analysis.Result
	pool := parallel.New(workers, run.Reg)
	sp := run.Reg.StartSpan("check")
	err = resilience.Guard("analyze", func() error {
		var aerr error
		aopts := analysis.Options{Budget: resilience.NewBudget(*budget, 0), Metrics: run.Reg,
			Provenance: why.On(), MaxInline: std.MaxInline()}
		if std.Summaries() {
			// Method summaries share the tool's artifact store, so a warm
			// -cache-dir re-check replays helpers instead of re-interpreting.
			aopts.Summaries = summary.NewTable(store, run.Reg)
		}
		res, aerr = analysis.AnalyzeBudgetedCtx(tctx, analysis.ParseProgramStoreCtx(tctx, sources, run.Reg, pool, store),
			aopts)
		return aerr
	})
	if err != nil {
		if errors.Is(err, resilience.ErrBudgetExhausted) && res != nil {
			fmt.Fprintln(os.Stderr, "cryptochecker: analysis budget exhausted; results may be partial")
		} else {
			ledger.Record(resilience.NewEntry("analyze", resilience.PhaseAnalyze, err))
			fmt.Fprint(os.Stderr, ledger.Report())
			fmt.Fprintf(os.Stderr, "cryptochecker: %v\n", err)
			run.Flush(ledger, true)
			os.Exit(1)
		}
	}
	violations := rules.CheckPoolCtx(tctx, res, ctx, ruleSet, pool)
	sp.End()
	std.Trace().Dump(os.Stderr, troot)
	run.Reg.Counter("checker.rules_evaluated").Add(int64(len(ruleSet)))
	run.Reg.Counter("checker.violations").Add(int64(len(violations)))

	if why.On() {
		// Witness mode: violations sort by source location and each carries
		// its reconstructed trace. Takes precedence over -q/-v rendering.
		sorted := report.SortViolations(violations, res)
		traces := witness.Collect(sorted, res, ctx)
		witness.Observe(run.Reg, traces)
		if why == cliutil.WhyJSON {
			fmt.Print(witness.JSON(traces))
		} else {
			fmt.Print(witness.Render(traces))
		}
	} else {
		for _, v := range violations {
			if *quiet {
				fmt.Println(v.Rule.ID)
				continue
			}
			if *verbose {
				fmt.Print(rules.Explain(v, res))
				continue
			}
			fmt.Printf("%s: %s\n", v.Rule.ID, v.Rule.Description)
			fmt.Printf("    rule: %s\n", v.Rule.Formula)
			for _, o := range v.Objs {
				fmt.Printf("    at %s (line %d)\n", o.SiteLabel(), o.Site.Line)
			}
		}
	}
	if ledger.Len() > 0 {
		fmt.Fprint(os.Stderr, ledger.Report())
	}
	run.Flush(ledger, false)
	if len(violations) > 0 {
		if !*quiet && why != cliutil.WhyJSON {
			fmt.Printf("\n%d rule(s) matched across %d file(s)\n", len(violations), len(sources))
		}
		os.Exit(1)
	}
	if !*quiet && why != cliutil.WhyJSON {
		fmt.Printf("no rule violations across %d file(s)\n", len(sources))
	}
}

// lintMode is the standalone pack linter behind -lint-rules: every -rules
// flag and positional argument names a pack file, the rendered report goes
// to stdout (JSON with -why=json), and the exit status grades the result —
// 2 on error findings, 1 on warnings only, 0 on a clean pack.
func lintMode(std *cliutil.Standard, why cliutil.WhyMode) {
	paths := append(std.RulePacks(), flag.Args()...)
	if len(paths) == 0 {
		cliutil.UsageError("cryptochecker", "-lint-rules needs rule pack files (-rules or positional arguments)")
	}
	res, err := rulelint.Load(paths)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cryptochecker: loading rule packs: %v\n", err)
		os.Exit(2)
	}
	if why == cliutil.WhyJSON {
		b, err := res.Report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cryptochecker: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(b))
	} else {
		fmt.Print(res.Report.Render())
	}
	switch {
	case res.Report.HasErrors():
		os.Exit(2)
	case res.Report.HasFindings():
		os.Exit(1)
	}
}

// collect gathers .java sources from a file or directory tree.
func collect(path string, into map[string]string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		into[path] = string(b)
		return nil
	}
	return filepath.WalkDir(path, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		base := filepath.Base(p)
		if !strings.HasSuffix(p, ".java") && base != "AndroidManifest.xml" &&
			!strings.HasSuffix(p, ".gradle") && !strings.HasSuffix(p, ".gradle.kts") {
			return nil
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		into[p] = string(b)
		return nil
	})
}
