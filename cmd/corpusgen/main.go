// Command corpusgen generates the synthetic Java project corpus (the
// substitute for the paper's mined GitHub dataset) and writes it to disk
// for inspection or for consumption by cmd/diffcode:
//
//	corpusgen -out /tmp/corpus -seed 1 -scale 0.2 -projects 50
//
// The layout is one directory per project with its final snapshot and the
// full commit history (old/new version of each change).
//
// Projects are written in isolation: a project that fails to write is
// skipped and recorded rather than aborting the whole corpus; -fail-fast
// and -max-errors restore the abort behavior, matching the other CLIs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"repro/internal/cliutil"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/trace"
)

func main() {
	var (
		out      = flag.String("out", "", "output directory (required)")
		seed     = flag.Int64("seed", 1, "generation seed")
		scale    = flag.Float64("scale", 0.2, "corpus scale (1.0 = paper scale)")
		projects = flag.Int("projects", 50, "training projects")
		extra    = flag.Int("extra", 6, "held-out projects")
		stats    = flag.Bool("stats", false, "print commit-kind statistics")
		// -budget exists for flag parity with the other three CLIs (scripts
		// pass a uniform flag set); generation performs no abstract
		// interpretation, so it has nothing to bound here.
		_         = flag.Int64("budget", 0, "accepted for CLI parity; corpusgen runs no analysis")
		maxErr    = flag.Int("max-errors", 0, "abort after this many unwritable projects (0 = unlimited)")
		failFast  = flag.Bool("fail-fast", false, "abort at the first unwritable project")
		metrics   = flag.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		verbose   = flag.Bool("v", false, "print a stage-by-stage telemetry summary to stderr at exit")
		debugAddr = flag.String("debug-addr", "", "serve live metrics and pprof on this address (e.g. localhost:6060)")
		// -why, -dist-cache, -cache-dir, -summaries, and -max-inline are
		// accepted for CLI parity; generation runs no analysis, clustering,
		// or checking, so there is nothing to cache, memoize, or inline —
		// scripts can still pass one uniform flag set.
		std = cliutil.StandardFlags("corpusgen")
	)
	std.Parse()
	if *out == "" {
		cliutil.UsageError("corpusgen", "-out is required")
	}
	run, err := obs.NewCLI("corpusgen", *metrics, *debugAddr, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
		os.Exit(1)
	}

	// The rule-pack gate: corpusgen evaluates no rules, but -rules still
	// validates (and exits 2 on error findings) so one uniform flag set
	// fails in the same place from every tool.
	_ = std.ActiveRules(run.Reg)

	// -trace spans both stages of the run (generate, then the per-project
	// save fan-out); the tree dumps to stderr before the final exit paths.
	tctx, troot := std.Trace().Begin("corpusgen")
	gsp := troot.Child("generate")
	sp := run.Reg.StartSpan("generate")
	c := corpus.Generate(corpus.Config{
		Seed: *seed, Scale: *scale, Projects: *projects, ExtraProjects: *extra,
	})
	sp.End()
	gsp.End()
	run.Reg.Counter("corpusgen.projects_generated").Add(int64(len(c.Projects)))
	run.Reg.Counter("corpusgen.commits_generated").Add(int64(c.CommitCount()))

	// Each project is saved in isolation so one unwritable directory
	// degrades the run instead of killing it. Saves for distinct projects
	// touch disjoint directories, so they fan out across the worker pool;
	// fail-fast/max-errors cancel further dispatch and the abort is
	// reported once the in-flight saves drain.
	ledger := resilience.NewLedger()
	var files, written atomic.Int64
	ctx, cancel := context.WithCancel(tctx)
	defer cancel()
	ssp := troot.Child("save")
	sp = run.Reg.StartSpan("save")
	parallel.New(std.Workers(), run.Reg).ForEachCtx(trace.NewContext(ctx, ssp), "project", len(c.Projects), func(fctx context.Context, i int) {
		p := c.Projects[i]
		task := "project " + p.Name
		trace.FromContext(fctx).SetAttr("name", p.Name)
		err := resilience.Guard(task, func() error {
			return corpus.Save(&corpus.Corpus{Projects: []*corpus.Project{p}}, *out)
		})
		if err != nil {
			trace.FromContext(fctx).Annotate(string(resilience.Categorize(err)))
			ledger.Record(resilience.NewEntry(task, resilience.PhaseLoad, err))
			if *failFast || (*maxErr > 0 && ledger.Len() >= *maxErr) {
				cancel()
			}
			return
		}
		written.Add(1)
		files.Add(int64(len(p.Files)))
	})
	sp.End()
	ssp.End()
	if ledger.Len() > 0 && (*failFast || (*maxErr > 0 && ledger.Len() >= *maxErr)) {
		fmt.Fprint(os.Stderr, ledger.Report())
		fmt.Fprintln(os.Stderr, "corpusgen: aborted early (fail-fast/max-errors); corpus is partial")
		std.Trace().Dump(os.Stderr, troot)
		run.Flush(ledger, true)
		os.Exit(1)
	}
	run.Reg.Counter("corpusgen.projects_written").Add(written.Load())
	run.Reg.Counter("corpusgen.files_written").Add(files.Load())

	fmt.Printf("wrote %d projects (%d files, %d commits) to %s\n",
		written.Load(), files.Load(), c.CommitCount(), *out)
	if *stats {
		kinds := map[corpus.CommitKind]int{}
		for _, p := range c.TrainingProjects() {
			for _, cm := range p.Commits {
				kinds[cm.Kind]++
			}
		}
		for _, k := range []corpus.CommitKind{corpus.KindRefactor, corpus.KindUnrelated,
			corpus.KindAdd, corpus.KindRemove, corpus.KindFix, corpus.KindBug} {
			fmt.Printf("  %-9s %6d\n", k, kinds[k])
		}
	}
	if ledger.Len() > 0 {
		fmt.Fprint(os.Stderr, ledger.Report())
	}
	std.Trace().Dump(os.Stderr, troot)
	run.Flush(ledger, false)
	if ledger.Len() > 0 {
		os.Exit(1)
	}
}
