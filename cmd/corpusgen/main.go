// Command corpusgen generates the synthetic Java project corpus (the
// substitute for the paper's mined GitHub dataset) and writes it to disk
// for inspection or for consumption by cmd/diffcode:
//
//	corpusgen -out /tmp/corpus -seed 1 -scale 0.2 -projects 50
//
// The layout is one directory per project with its final snapshot and the
// full commit history (old/new version of each change).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
)

func main() {
	var (
		out      = flag.String("out", "", "output directory (required)")
		seed     = flag.Int64("seed", 1, "generation seed")
		scale    = flag.Float64("scale", 0.2, "corpus scale (1.0 = paper scale)")
		projects = flag.Int("projects", 50, "training projects")
		extra    = flag.Int("extra", 6, "held-out projects")
		stats    = flag.Bool("stats", false, "print commit-kind statistics")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	c := corpus.Generate(corpus.Config{
		Seed: *seed, Scale: *scale, Projects: *projects, ExtraProjects: *extra,
	})
	if err := corpus.Save(c, *out); err != nil {
		fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
		os.Exit(1)
	}
	files := 0
	for _, p := range c.Projects {
		files += len(p.Files)
	}
	fmt.Printf("wrote %d projects (%d files, %d commits) to %s\n",
		len(c.Projects), files, c.CommitCount(), *out)
	if *stats {
		kinds := map[corpus.CommitKind]int{}
		for _, p := range c.TrainingProjects() {
			for _, cm := range p.Commits {
				kinds[cm.Kind]++
			}
		}
		for _, k := range []corpus.CommitKind{corpus.KindRefactor, corpus.KindUnrelated,
			corpus.KindAdd, corpus.KindRemove, corpus.KindFix, corpus.KindBug} {
			fmt.Printf("  %-9s %6d\n", k, kinds[k])
		}
	}
}
