// Command diffcoded is the checker-as-a-service daemon: a long-running
// HTTP/JSON analysis server over the DiffCode/CryptoChecker pipeline.
//
//	diffcoded -addr :8371
//
// Endpoints:
//
//	POST /v1/check    source snippets → rule violations (+ witness traces)
//	POST /v1/analyze  old/new change batches → semantic usage changes
//	GET  /healthz     liveness
//	GET  /readyz      readiness (503 while draining)
//	GET  /metrics     live metrics snapshot (diffcode-metrics/v1; ?format=prom
//	                  for Prometheus text exposition)
//	     /debug/      expvar-style vars + pprof
//	GET  /debug/traces  retained request traces (-trace only): JSON list,
//	                  per-trace detail, ?format=text waterfall
//
// With -trace, every API request gets a hierarchical span tree: an
// X-Trace-Id response header, a trace_id response field, and tail-based
// retention (failures and slow requests always kept, the healthy fast
// majority sampled) inspectable at /debug/traces; the retained traces are
// summarized on stderr at shutdown (-trace=json for full JSON records).
// Without it, responses are byte-identical to an untraced build.
//
// Every request runs under panic isolation and a per-request step/wall
// budget; overload sheds with 429 + Retry-After, sustained overload trips
// a degraded mode that disables witness provenance, and SIGTERM drains
// gracefully: stop accepting, finish in-flight requests within -drain,
// then flush a final metrics snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8371", "listen address (host:port; :0 picks a free port)")
		budget      = flag.Int64("budget", 2_000_000, "max abstract-interpretation steps per request (0 = unlimited)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request wall deadline (requests can only tighten it)")
		concurrency = flag.Int("concurrency", 0, "max concurrent analyses (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "max requests waiting for an analysis slot before shedding")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-drain budget for in-flight requests on SIGTERM")
		metrics     = flag.String("metrics", "", "write a final JSON metrics snapshot to this file on shutdown")
		verbose     = flag.Bool("v", false, "print a telemetry summary to stderr on shutdown")
		// -why and -dist-cache are accepted for CLI parity; witness traces
		// are a per-request option (the "why" request field) and the server
		// endpoints run no clustering.
		std = cliutil.StandardFlags("diffcoded")
	)
	std.Parse()

	// A server is always instrumented: serve.* telemetry is how an operator
	// sees shedding, degradation, and tail latency at all. Tracing stays
	// opt-in (-trace): with it off every response is byte-identical to an
	// untraced build.
	reg := obs.NewRegistry()
	var tracer *trace.Tracer
	if std.Trace().On() {
		tracer = trace.New()
	}
	copts := core.Options{
		BudgetSteps:      *budget,
		Workers:          std.Workers(),
		Metrics:          reg,
		DisableSummaries: !std.Summaries(),
	}
	copts.Analysis.MaxInline = std.MaxInline()
	// The rule-pack gate: -rules packs must lint before the server binds
	// (exit 2 on error findings unless -rules-lax). The pack paths stay
	// with the server for hot reload — SIGHUP or POST /v1/rules/reload
	// re-lints and atomically swaps the active set; a broken pack on
	// reload keeps the previous set live.
	activeRules := std.ActiveRules(reg)
	srv := serve.New(serve.Options{
		Checker:        copts,
		Rules:          activeRules,
		RulePacks:      std.RulePacks(),
		RulesLax:       std.RulesLax(),
		MaxConcurrent:  *concurrency,
		MaxQueue:       *queue,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
		Tracer:         tracer,
		// The process-lifetime artifact store: repeated identical requests
		// are served from cache; -cache-dir persists artifacts across
		// restarts (empty = in-memory only, the serve default either way).
		Artifacts: std.Artifacts(reg),
	})

	errc := make(chan error, 1)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	// SIGHUP hot-reloads the rule packs (the POST /v1/rules/reload of the
	// signal world): re-read, re-lint, swap atomically; a failed reload
	// logs the findings and keeps the running set.
	hupc := make(chan os.Signal, 1)
	signal.Notify(hupc, syscall.SIGHUP)
	go func() {
		for range hupc {
			out := srv.ReloadRules()
			if out.OK {
				fmt.Fprintf(os.Stderr, "diffcoded: SIGHUP: rules reloaded (epoch %d, %d rules)\n", out.Epoch, out.Rules)
				continue
			}
			if out.Report != nil {
				fmt.Fprint(os.Stderr, out.Report.Render())
			}
			if out.Err != "" {
				fmt.Fprintf(os.Stderr, "diffcoded: SIGHUP: %s\n", out.Err)
			}
			fmt.Fprintf(os.Stderr, "diffcoded: SIGHUP: reload failed, keeping rule set epoch %d\n", out.Epoch)
		}
	}()
	go func() { errc <- srv.ListenAndServe(*addr) }()

	// Wait for the listener to bind so the address line is accurate.
	for srv.Addr() == "" {
		select {
		case err := <-errc:
			fmt.Fprintf(os.Stderr, "diffcoded: %v\n", err)
			os.Exit(1)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	fmt.Fprintf(os.Stderr, "diffcoded: serving on http://%s (healthz, readyz, metrics, v1/check, v1/analyze)\n", srv.Addr())

	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintf(os.Stderr, "diffcoded: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "diffcoded: %v: draining (budget %s)\n", sig, *drain)
		rep := srv.Drain()
		fmt.Fprintf(os.Stderr, "diffcoded: drain complete: %d finished, %d dropped\n", rep.Finished, rep.Dropped)
		dumpTraces(srv.Traces(), std.Trace())
		flush(reg, *metrics, *verbose)
		if rep.Dropped > 0 {
			os.Exit(1)
		}
	}
	flush(reg, *metrics, *verbose)
}

// dumpTraces writes the retained-trace buffer to stderr at shutdown: one
// summary line per trace in text mode, the full records in JSON mode. No-op
// when tracing is off (st is nil).
func dumpTraces(st *trace.Store, mode cliutil.TraceMode) {
	if st == nil || !mode.On() {
		return
	}
	recs := st.List()
	if mode == cliutil.TraceJSON {
		b, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "diffcoded: rendering traces: %v\n", err)
			return
		}
		fmt.Fprintln(os.Stderr, string(b))
		return
	}
	fmt.Fprintf(os.Stderr, "diffcoded: %d retained trace(s), newest first:\n", len(recs))
	for _, r := range recs {
		line := fmt.Sprintf("  %s %s %dµs spans=%d retained=%s", r.ID, r.Name, r.DurUs, r.Spans, r.Retained)
		if r.Category != "" {
			line += " [" + r.Category + "]"
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

// flush writes the final metrics snapshot and summary; it is idempotent
// enough for the two exit paths (a second write of the same snapshot file
// is harmless).
func flush(reg *obs.Registry, path string, verbose bool) {
	if verbose {
		fmt.Fprint(os.Stderr, reg.Summary())
	}
	if path != "" {
		if err := obs.WriteSnapshotFile(path, reg, false); err != nil {
			fmt.Fprintf(os.Stderr, "diffcoded: writing metrics snapshot: %v\n", err)
		}
	}
}
