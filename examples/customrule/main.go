// Customrule: extending CryptoChecker with textual rules.
//
// The rule notation of the paper's Figure 9 is executable in this
// reproduction: this example writes three organization-specific rules in
// that notation, compiles them with ParseRule/ParseRuleFile, and checks a
// code base against the built-in 13 rules plus the custom ones.
//
// Run with: go run ./examples/customrule
package main

import (
	"fmt"
	"log"

	diffcode "repro"
)

const customRules = `
# Organization-specific rules, in the paper's Figure 9 notation.
ORG1 | Ban the RC4 stream cipher            | Cipher : getInstance(X) ∧ X=RC4
ORG2 | Require at least 65536 KDF rounds    | PBEKeySpec : <init>(_,_,X,_) ∧ X<65536
ORG3 | HMACs must not use SHA-1             | Mac : getInstance(X) ∧ startsWith(X,HmacSHA1)
`

const code = `
class LegacyTransport {
    void setup(Key key, char[] pw, byte[] salt) throws Exception {
        Cipher stream = Cipher.getInstance("RC4");
        stream.init(Cipher.ENCRYPT_MODE, key);

        PBEKeySpec spec = new PBEKeySpec(pw, salt, 10000, 256);

        Mac tag = Mac.getInstance("HmacSHA1");
        tag.init(key);
    }
}
`

func main() {
	custom, err := diffcode.ParseRuleFile(customRules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d custom rules:\n", len(custom))
	for _, r := range custom {
		fmt.Printf("  %-5s %s\n        %s\n", r.ID, r.Description, r.Formula)
	}

	// One more, built inline with ASCII operators.
	inline, err := diffcode.ParseRule("ORG4", "Blowfish is legacy",
		`Cipher : getInstance(X) && X=Blowfish`)
	if err != nil {
		log.Fatal(err)
	}

	ruleSet := append(diffcode.Rules(), custom...)
	ruleSet = append(ruleSet, inline)
	checker := diffcode.NewChecker(ruleSet, diffcode.Options{})

	fmt.Println("\n=== Findings ===")
	vs := checker.CheckSources(map[string]string{"LegacyTransport.java": code},
		diffcode.RuleContext{})
	for _, v := range vs {
		fmt.Printf("%-5s %s\n", v.Rule.ID, v.Rule.Description)
		for _, o := range v.Objs {
			fmt.Printf("      at %s\n", o.SiteLabel())
		}
	}
	fmt.Printf("\n%d rules matched (built-in + custom)\n", len(vs))
}
