// Rulemine: eliciting a brand-new rule from mined fixes.
//
// The paper's final step is manual: an analyst reads a cluster of similar
// fixes and writes a rule. This example walks that path mechanically for a
// fix family the 13 shipped rules do not cover — switching MessageDigest
// from MD5 to SHA-256 — and shows the two halves of elicitation:
//
//  1. cluster the mined MessageDigest fixes and inspect the dominant
//     cluster, and
//  2. turn one representative change into a checkable rule with
//     SuggestRule, then measure how many corpus projects the new rule
//     flags (the Figure 10 loop for a rule that did not exist before).
//
// Run with: go run ./examples/rulemine
package main

import (
	"fmt"
	"strings"

	diffcode "repro"
)

func main() {
	cfg := diffcode.CorpusConfig{Seed: 21, Scale: 0.6, Projects: 160, ExtraProjects: 0}
	corpus := diffcode.GenerateCorpus(cfg)
	eval := diffcode.NewEvaluation(corpus, diffcode.Options{})

	survivors := eval.SortedSurvivors(diffcode.MessageDigest)
	fmt.Printf("%d semantic MessageDigest changes mined\n\n", len(survivors))
	if len(survivors) == 0 {
		fmt.Println("no survivors at this scale; re-run with a larger corpus")
		return
	}

	fmt.Println("=== Dendrogram (what the analyst inspects) ===")
	root := diffcode.Cluster(survivors)
	fmt.Print(diffcode.RenderDendrogram(root, func(i int) string {
		c := survivors[i]
		return fmt.Sprintf("[%s] %s", c.Meta.Commit, strings.TrimSpace(c.Meta.Message))
	}))

	// Pick a representative MD5→SHA-256 change.
	var rep *diffcode.UsageChange
	for i := range survivors {
		if strings.Contains(survivors[i].String(), `"MD5"`) &&
			strings.Contains(survivors[i].String(), `"SHA-256"`) {
			rep = &survivors[i]
			break
		}
	}
	if rep == nil {
		rep = &survivors[0]
	}
	fmt.Println("\n=== Representative fix ===")
	fmt.Printf("[%s/%s] %q\n%s\n", rep.Meta.Project, rep.Meta.Commit, rep.Meta.Message, rep.String())

	rule := diffcode.SuggestRule(*rep)
	fmt.Println("=== Suggested rule ===")
	fmt.Println(rule.Formula)

	// Validate the new rule across all project snapshots.
	checker := diffcode.NewChecker([]*diffcode.Rule{rule}, diffcode.Options{})
	applicable, matching := 0, 0
	for _, p := range corpus.Projects {
		vs := checker.CheckProject(p)
		uses := false
		for _, src := range p.Files {
			if strings.Contains(src, diffcode.MessageDigest) {
				uses = true
			}
		}
		if uses {
			applicable++
		}
		if len(vs) > 0 {
			matching++
		}
	}
	fmt.Printf("\n=== New-rule evaluation (Figure 10 loop) ===\n")
	fmt.Printf("projects using %s: %d\n", diffcode.MessageDigest, applicable)
	fmt.Printf("projects the new rule flags: %d\n", matching)
}
