// Checker: CryptoChecker on a deliberately vulnerable application.
//
// A small "password vault" app misuses the Java Crypto API in six distinct
// ways. We run the 13 elicited rules over it, print the findings with
// their allocation sites, apply the fixes the mined data suggests, and
// show that the fixed version comes back clean (modulo the provider rule,
// which we fix too).
//
// Run with: go run ./examples/checker
package main

import (
	"fmt"

	diffcode "repro"
)

const vulnerable = `
class PasswordVault {
    private Cipher box;
    private SecretKeySpec master;

    void unlock(String password) throws Exception {
        byte[] salt = {1, 2, 3, 4, 5, 6, 7, 8};
        PBEKeySpec spec = new PBEKeySpec(password.toCharArray(), salt, 100, 256);
        byte[] keyBytes = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
        master = new SecretKeySpec(keyBytes, "AES");
        box = Cipher.getInstance("AES");
        box.init(Cipher.ENCRYPT_MODE, master);
        MessageDigest md = MessageDigest.getInstance("SHA-1");
        md.update(keyBytes);
        SecureRandom token = new SecureRandom();
        token.setSeed(42);
    }
}
`

const fixed = `
class PasswordVault {
    private Cipher box;
    private SecretKeySpec master;

    void unlock(String password, byte[] derivedKey) throws Exception {
        SecureRandom rng = SecureRandom.getInstance("SHA1PRNG");
        byte[] salt = new byte[8];
        rng.nextBytes(salt);
        PBEKeySpec spec = new PBEKeySpec(password.toCharArray(), salt, 10000, 256);
        master = new SecretKeySpec(derivedKey, "AES");
        byte[] iv = new byte[16];
        rng.nextBytes(iv);
        IvParameterSpec ivSpec = new IvParameterSpec(iv);
        box = Cipher.getInstance("AES/GCM/NoPadding", "BC");
        box.init(Cipher.ENCRYPT_MODE, master, ivSpec);
        MessageDigest md = MessageDigest.getInstance("SHA-256");
        md.update(derivedKey);
    }
}
`

func main() {
	ctx := diffcode.RuleContext{}
	opts := diffcode.Options{}

	fmt.Println("=== CryptoChecker on the vulnerable vault ===")
	violations := diffcode.CheckSource(vulnerable, ctx, opts)
	for _, v := range violations {
		fmt.Printf("%-4s %s\n", v.Rule.ID, v.Rule.Description)
		fmt.Printf("     %s\n", v.Rule.Formula)
		for _, o := range v.Objs {
			fmt.Printf("     at %s\n", o.SiteLabel())
		}
	}
	fmt.Printf("→ %d rules matched\n\n", len(violations))

	fmt.Println("=== After applying the mined fixes ===")
	after := diffcode.CheckSource(fixed, ctx, opts)
	if len(after) == 0 {
		fmt.Println("no rule violations — the vault now follows all 13 rules")
	}
	for _, v := range after {
		fmt.Printf("%-4s still matches: %s\n", v.Rule.ID, v.Rule.Description)
	}

	fmt.Println()
	fmt.Println("=== What changed, as DiffCode sees it ===")
	for _, class := range diffcode.TargetClasses() {
		for _, c := range diffcode.DiffSources(vulnerable, fixed, class, opts) {
			if c.IsSame() {
				continue
			}
			fmt.Printf("%s:\n%s", class, c.String())
		}
	}
}
