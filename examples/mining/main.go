// Mining: the full DiffCode pipeline over a generated corpus.
//
// This is the workload the paper's introduction motivates: thousands of
// commits in public repositories hide a handful of crypto security fixes.
// We generate a corpus of Java projects with realistic commit histories,
// mine every change touching a target API class, abstract and filter, then
// cluster the survivors into the dendrogram an analyst would read to
// elicit security rules (paper Figure 8).
//
// Run with: go run ./examples/mining
package main

import (
	"fmt"

	diffcode "repro"
)

func main() {
	cfg := diffcode.CorpusConfig{Seed: 7, Scale: 0.6, Projects: 150, ExtraProjects: 0}
	corpus := diffcode.GenerateCorpus(cfg)
	fmt.Printf("generated %d projects with %d commits\n\n",
		len(corpus.Projects), corpus.CommitCount())

	eval := diffcode.NewEvaluation(corpus, diffcode.Options{})
	fmt.Println(eval.Figure6())

	fmt.Println("=== Clustering the surviving Cipher changes ===")
	f8 := eval.Figure8()
	fmt.Printf("%d semantic Cipher usage changes survive the filters\n\n", len(f8.Survivors))
	fmt.Print(f8.Rendering)

	if len(f8.ECBCluster) > 0 {
		fmt.Println("\n=== The ECB cluster (elicits rule R7) ===")
		for _, i := range f8.ECBCluster {
			c := f8.Survivors[i]
			fmt.Printf("[%s/%s] %q\n%s\n", c.Meta.Project, c.Meta.Commit, c.Meta.Message, c.String())
		}
		fmt.Println("→ elicited rule:", diffcode.RuleByID("R7").Formula)
	}
}
