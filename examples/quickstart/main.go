// Quickstart: the paper's Figure 2 running example, end to end.
//
// We take the old and new version of AESCipher.java (a developer switching
// AES from implicit ECB mode to CBC with an initialization vector), show
// the textual patch, the usage DAGs the abstraction builds for the enc
// object, the derived usage change (F−, F+), and the security rule that
// can be auto-suggested from it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	diffcode "repro"
)

const oldVersion = `
class AESCipher {
    Cipher enc, dec;
    final String algorithm = "AES";

    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key);
        } catch (Exception e) {}
    }
}
`

const newVersion = `
class AESCipher {
    Cipher enc, dec;
    final String algorithm = "AES/CBC/PKCS5Padding";

    protected void setKeyAndIV(Secret key, String iv) {
        try {
            byte[] ivBytes = Hex.decodeHex(iv.toCharArray());
            IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key, ivSpec);
        } catch (Exception e) {}
    }
}
`

func main() {
	fmt.Println("=== The code change (paper Figure 2a) ===")
	fmt.Println(diffcode.UnifiedDiff(oldVersion, newVersion, 1))

	opts := diffcode.Options{}

	fmt.Println("=== Usage DAG paths of the first Cipher object, old version (Figure 2b) ===")
	for _, g := range diffcode.BuildDAGs(oldVersion, diffcode.Cipher, opts)[:1] {
		for _, p := range g.Paths() {
			fmt.Println("  " + p.String())
		}
	}
	fmt.Println()
	fmt.Println("=== Usage DAG paths, new version (Figure 2c) ===")
	for _, g := range diffcode.BuildDAGs(newVersion, diffcode.Cipher, opts)[:1] {
		for _, p := range g.Paths() {
			fmt.Println("  " + p.String())
		}
	}

	fmt.Println()
	fmt.Println("=== Usage changes after pairing and diffing (Figure 2d) ===")
	changes := diffcode.DiffSources(oldVersion, newVersion, diffcode.Cipher, opts)
	kept, stats := diffcode.Filter(changes)
	fmt.Printf("%d raw usage changes, %d after the filters (fsame/fadd/frem/fdup)\n\n",
		stats.Total, stats.AfterDup)
	for _, c := range kept {
		fmt.Print(c.String())
	}

	fmt.Println()
	fmt.Println("=== Auto-suggested rule (paper §6.3) ===")
	rule := diffcode.SuggestRule(kept[0])
	fmt.Println(rule.Formula)
	oldRes := diffcode.AnalyzeUsages(oldVersion, opts)
	newRes := diffcode.AnalyzeUsages(newVersion, opts)
	oldHit, _ := rule.Matches(oldRes, diffcode.RuleContext{})
	newHit, _ := rule.Matches(newRes, diffcode.RuleContext{})
	fmt.Printf("matches the vulnerable version: %t (want true)\n", oldHit)
	fmt.Printf("matches the fixed version:      %t (want false)\n", newHit)
}
