// Violates R8: DES keys fall to brute force.
import javax.crypto.Cipher;

class R8 {
    void run() throws Exception {
        Cipher c = Cipher.getInstance("DES/CBC/PKCS5Padding");
    }
}
