// Violates R12: seeding SecureRandom with a constant.
import java.security.SecureRandom;

class R12 {
    void run() {
        SecureRandom sr = new SecureRandom();
        sr.setSeed(42);
    }
}
