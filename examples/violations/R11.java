// Violates R11: the PBE salt is a compile-time constant.
import javax.crypto.spec.PBEKeySpec;

class R11 {
    void derive(char[] password) {
        byte[] salt = {8, 7, 6, 5, 4, 3, 2, 1};
        PBEKeySpec spec = new PBEKeySpec(password, salt, 65536, 256);
    }
}
