// Violates R9: the IV is a compile-time constant.
import javax.crypto.spec.IvParameterSpec;

class R9 {
    static final byte[] IV = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};

    void run() {
        IvParameterSpec spec = new IvParameterSpec(IV);
    }
}
