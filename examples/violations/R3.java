// Violates R3: SecureRandom without selecting SHA1PRNG.
import java.security.SecureRandom;

class R3 {
    void run() {
        SecureRandom sr = new SecureRandom();
        byte[] buf = new byte[16];
        sr.nextBytes(buf);
    }
}
