// Violates R10: the key bytes are hard-coded.
import javax.crypto.spec.SecretKeySpec;

class R10 {
    void run() {
        String key = "0123456789abcdef";
        SecretKeySpec ks = new SecretKeySpec(key.getBytes(), "AES");
    }
}
