// Violates R6 (with Android minSdk >= 16 and no LPRNG fix applied).
import java.security.SecureRandom;

class R6 {
    void run() {
        SecureRandom sr = new SecureRandom();
        sr.nextLong();
    }
}
