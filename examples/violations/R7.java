// Violates R7: ECB mode leaks plaintext structure.
import javax.crypto.Cipher;

class R7 {
    void run() throws Exception {
        String mode = "AES/ECB/PKCS5Padding";
        Cipher c = Cipher.getInstance(mode);
    }
}
