// Violates R4: getInstanceStrong can block on server-side code.
import java.security.SecureRandom;

class R4 {
    void run() throws Exception {
        SecureRandom sr = SecureRandom.getInstanceStrong();
        sr.nextInt();
    }
}
