// Violates R5: Cipher without the BouncyCastle provider.
import javax.crypto.Cipher;

class R5 {
    void run() throws Exception {
        Cipher c = Cipher.getInstance("AES/GCM/NoPadding");
    }
}
