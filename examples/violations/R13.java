// Violates R13: AES/CBC plus RSA key exchange with no HMAC anywhere.
import javax.crypto.Cipher;

class R13 {
    void exchange() throws Exception {
        Cipher wrap = Cipher.getInstance("RSA/ECB/PKCS1Padding");
        Cipher data = Cipher.getInstance("AES/CBC/PKCS5Padding");
    }
}
