// Violates R2: PBE iteration count below 1000.
import javax.crypto.spec.PBEKeySpec;

class R2 {
    void derive(char[] password, byte[] salt) {
        int iterations = 100;
        PBEKeySpec spec = new PBEKeySpec(password, salt, iterations, 128);
    }
}
