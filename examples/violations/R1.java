// Violates R1: SHA-1 is a weak digest.
import java.security.MessageDigest;

class R1 {
    byte[] hash(byte[] data) throws Exception {
        MessageDigest md = MessageDigest.getInstance("SHA-1");
        return md.digest(data);
    }
}
