package rulepacks

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ruledsl"
	"repro/internal/rulelint"
	"repro/internal/rules"
	"repro/internal/witness"
)

// parseShipped parses every embedded pack in name order.
func parseShipped(t *testing.T) []*ruledsl.Pack {
	t.Helper()
	files := Files()
	var packs []*ruledsl.Pack
	for _, name := range Names() {
		packs = append(packs, ruledsl.ParsePack(name, files[name]))
	}
	if len(packs) < 2 {
		t.Fatalf("expected at least 2 shipped packs, got %d", len(packs))
	}
	return packs
}

// TestShippedPacksLintClean is the shipped-quality gate: both packs must
// compile and produce zero linter findings (not even warnings) against the
// built-in rules, and all 12 rules must register.
func TestShippedPacksLintClean(t *testing.T) {
	res := rulelint.LoadParsed(parseShipped(t))
	if n := len(res.Report.Diags); n != 0 {
		t.Fatalf("shipped packs must lint clean, got %d finding(s):\n%s", n, res.Report.Render())
	}
	if res.Added != 12 {
		t.Fatalf("expected 12 pack rules registered, got %d", res.Added)
	}
	if want := len(rules.All()) + 12; len(res.Active) != want {
		t.Fatalf("active set: got %d rules, want %d", len(res.Active), want)
	}
}

// activeChecker builds a checker over built-ins + both shipped packs.
func activeChecker(t *testing.T) *core.CryptoChecker {
	t.Helper()
	res := rulelint.LoadParsed(parseShipped(t))
	return core.NewChecker(res.Active, core.Options{})
}

func loadExample(t *testing.T, name string) map[string]string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("example: %v", err)
	}
	return map[string]string{name: string(b)}
}

func violatedIDs(vs []rules.Violation) map[string]bool {
	out := map[string]bool{}
	for _, v := range vs {
		out[v.Rule.ID] = true
	}
	return out
}

// TestPackRuleExamples pins, for each of the 12 shipped rules, a positive
// example (testdata/<ID>.java fires the rule) and a negative one
// (testdata/<ID>_ok.java does not).
func TestPackRuleExamples(t *testing.T) {
	ids := []string{
		"P101", "P102", "P103", "P104", "P105", "P106",
		"P201", "P202", "P203", "P204", "P205", "P206",
	}
	checker := activeChecker(t)
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			pos := violatedIDs(checker.CheckSources(loadExample(t, id+".java"), rules.Context{}))
			if !pos[id] {
				t.Errorf("%s.java: rule %s did not fire (got %v)", id, id, keys(pos))
			}
			neg := violatedIDs(checker.CheckSources(loadExample(t, id+"_ok.java"), rules.Context{}))
			if neg[id] {
				t.Errorf("%s_ok.java: rule %s fired on the fixed example", id, id)
			}
		})
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestPackExamplesPackClean: every fixed example is clean of ALL pack
// rules, not just its own — the negatives double as cross-rule regression
// programs for the whole merged pack set. (Built-in rules are exempt:
// R5's "use BouncyCastle" predicate deliberately fires on any default-
// provider Cipher use, so full-set cleanliness is not achievable for
// cipher examples.)
func TestPackExamplesPackClean(t *testing.T) {
	checker := activeChecker(t)
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), "_ok.java") {
			continue
		}
		for id := range violatedIDs(checker.CheckSources(loadExample(t, e.Name()), rules.Context{})) {
			if strings.HasPrefix(id, "P") {
				t.Errorf("%s: fixed example still violates pack rule %s", e.Name(), id)
			}
		}
	}
}

// TestPackWitnessGolden pins the full witness trace for a pack rule: the
// -why provenance machinery must treat compiled pack rules exactly like
// built-ins, down to the rendered byte.
func TestPackWitnessGolden(t *testing.T) {
	checker := activeChecker(t)
	vs, traces := checker.CheckSourcesWhy(loadExample(t, "P104.java"), rules.Context{})
	ids := violatedIDs(vs)
	if !ids["P104"] {
		t.Fatalf("P104.java: P104 did not fire (got %v)", keys(ids))
	}
	var got strings.Builder
	for _, tr := range traces {
		if tr.Rule == "P104" {
			got.WriteString(witness.Render([]witness.Trace{tr}))
		}
	}
	want := packWitnessGolden
	if got.String() != want {
		t.Errorf("P104 witness drifted:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

// packWitnessGolden pins the two P104 witness traces byte-for-byte: the
// keystore-type literal flowing into getInstance, and the constant
// password flowing through toCharArray into load.
const packWitnessGolden = `P104: Do not load keystores with constant passwords [KeyStore@l7]
    literal: literal "PKCS12"  at P104.java:7:44
    sink: KeyStore.getInstance("PKCS12")  at P104.java:7:23
P104: Do not load keystores with constant passwords [KeyStore@l7]
    literal: literal "changeit"  at P104.java:8:21
    call: String.toCharArray(...)  at P104.java:8:21
    sink: KeyStore.load(InputStream, const_byte[])  at P104.java:8:9
`
