// Fixed: TLS 1.2 context.
import javax.net.ssl.SSLContext;

class P101 {
    void connect() throws Exception {
        SSLContext ctx = SSLContext.getInstance("TLSv1.2");
    }
}
