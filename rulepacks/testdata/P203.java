// Violates P203: HMAC over MD5.
import javax.crypto.Mac;

class P203 {
    void tag() throws Exception {
        Mac mac = Mac.getInstance("HmacMD5");
    }
}
