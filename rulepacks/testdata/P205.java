// Violates P205: key generation for a legacy cipher.
import javax.crypto.KeyGenerator;

class P205 {
    void gen() throws Exception {
        KeyGenerator kg = KeyGenerator.getInstance("DES");
    }
}
