// Violates P103: process-global hostname verifier override.
import javax.net.ssl.HttpsURLConnection;
import javax.net.ssl.HostnameVerifier;

class P103 {
    void install(HostnameVerifier v) {
        HttpsURLConnection.setDefaultHostnameVerifier(v);
    }
}
