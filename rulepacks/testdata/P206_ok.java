// Fixed: explicit 256-bit init before generateKey.
import javax.crypto.KeyGenerator;
import javax.crypto.SecretKey;

class P206 {
    void gen() throws Exception {
        KeyGenerator kg = KeyGenerator.getInstance("AES");
        kg.init(256);
        SecretKey key = kg.generateKey();
    }
}
