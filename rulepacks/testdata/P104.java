// Violates P104: keystore password is a compile-time constant.
import java.security.KeyStore;
import java.io.InputStream;

class P104 {
    void open(InputStream in) throws Exception {
        KeyStore ks = KeyStore.getInstance("PKCS12");
        ks.load(in, "changeit".toCharArray());
    }
}
