// Violates P206: generateKey without an explicit init.
import javax.crypto.KeyGenerator;
import javax.crypto.SecretKey;

class P206 {
    void gen() throws Exception {
        KeyGenerator kg = KeyGenerator.getInstance("AES");
        SecretKey key = kg.generateKey();
    }
}
