// Violates P106: legacy JKS keystore format.
import java.security.KeyStore;

class P106 {
    void open() throws Exception {
        KeyStore ks = KeyStore.getInstance("JKS");
    }
}
