// Fixed: OAEP padding.
import javax.crypto.Cipher;

class P105 {
    void wrap() throws Exception {
        Cipher c = Cipher.getInstance("RSA/ECB/OAEPWithSHA-256AndMGF1Padding");
    }
}
