// Fixed: TLS 1.3 context.
import javax.net.ssl.SSLContext;

class P102 {
    void connect() throws Exception {
        SSLContext ctx = SSLContext.getInstance("TLSv1.3");
    }
}
