// Fixed: no global verifier override; a plain TLS context instead.
import javax.net.ssl.SSLContext;

class P103 {
    void connect() throws Exception {
        SSLContext ctx = SSLContext.getInstance("TLSv1.3");
    }
}
