// Violates P204: 500 PBE iterations via the 3-argument spec.
import javax.crypto.spec.PBEKeySpec;

class P204 {
    void derive(char[] password, byte[] salt) {
        PBEKeySpec spec = new PBEKeySpec(password, salt, 500);
    }
}
