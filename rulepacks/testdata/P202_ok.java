// Fixed: 4096-bit RSA modulus.
import java.security.KeyPairGenerator;

class P202 {
    void gen() throws Exception {
        KeyPairGenerator kpg = KeyPairGenerator.getInstance("RSA");
        kpg.initialize(4096);
    }
}
