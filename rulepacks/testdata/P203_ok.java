// Fixed: HMAC over SHA-256.
import javax.crypto.Mac;

class P203 {
    void tag() throws Exception {
        Mac mac = Mac.getInstance("HmacSHA256");
    }
}
