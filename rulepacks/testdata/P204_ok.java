// Fixed: 10000 PBE iterations.
import javax.crypto.spec.PBEKeySpec;

class P204 {
    void derive(char[] password, byte[] salt) {
        PBEKeySpec spec = new PBEKeySpec(password, salt, 10000);
    }
}
