// Violates P201: 64-bit symmetric key.
import javax.crypto.KeyGenerator;

class P201 {
    void gen() throws Exception {
        KeyGenerator kg = KeyGenerator.getInstance("AES");
        kg.init(64);
    }
}
