// Fixed: password supplied by the caller.
import java.security.KeyStore;
import java.io.InputStream;

class P104 {
    void open(InputStream in, char[] password) throws Exception {
        KeyStore ks = KeyStore.getInstance("PKCS12");
        ks.load(in, password);
    }
}
