// Violates P105: RSA with PKCS#1 v1.5 padding.
import javax.crypto.Cipher;

class P105 {
    void wrap() throws Exception {
        Cipher c = Cipher.getInstance("RSA/ECB/PKCS1Padding");
    }
}
