// Violates P102: TLS pinned below 1.2.
import javax.net.ssl.SSLContext;

class P102 {
    void connect() throws Exception {
        SSLContext ctx = SSLContext.getInstance("TLSv1.1");
    }
}
