// Fixed: PKCS12 keystore format.
import java.security.KeyStore;

class P106 {
    void open() throws Exception {
        KeyStore ks = KeyStore.getInstance("PKCS12");
    }
}
