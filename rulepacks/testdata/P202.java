// Violates P202: 1024-bit RSA modulus.
import java.security.KeyPairGenerator;

class P202 {
    void gen() throws Exception {
        KeyPairGenerator kpg = KeyPairGenerator.getInstance("RSA");
        kpg.initialize(1024);
    }
}
