// Violates P101: SSL/SSLv2/SSLv3 contexts are broken.
import javax.net.ssl.SSLContext;

class P101 {
    void connect() throws Exception {
        SSLContext ctx = SSLContext.getInstance("SSLv3");
    }
}
