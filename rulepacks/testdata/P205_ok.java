// Fixed: AES key generation.
import javax.crypto.KeyGenerator;

class P205 {
    void gen() throws Exception {
        KeyGenerator kg = KeyGenerator.getInstance("AES");
        kg.init(256);
    }
}
