// Package rulepacks ships the curated rule packs that extend the built-in
// 13 rules with CryptoGuard/survey-taxonomy misuse classes: transport
// security and key storage (tls-keystore.rules) and key generation and MAC
// strength (keygen-prng.rules).
//
// The packs are plain data — loading them is always an explicit choice
// (the -rules flag, serve.Options.RulePacks); no tool evaluates them by
// default. The embedded copies exist so tests, the CI lint gate, and the
// fuzz corpora pin the exact shipped bytes.
package rulepacks

import (
	"embed"
	"sort"
)

//go:embed *.rules
var fs embed.FS

// Files returns pack name → content for every shipped pack, rebuilt on
// each call (callers may mutate the map).
func Files() map[string]string {
	out := map[string]string{}
	entries, err := fs.ReadDir(".")
	if err != nil {
		panic(err) // embedded FS: unreachable
	}
	for _, e := range entries {
		b, err := fs.ReadFile(e.Name())
		if err != nil {
			panic(err)
		}
		out[e.Name()] = string(b)
	}
	return out
}

// Names returns the shipped pack names in sorted order.
func Names() []string {
	files := Files()
	out := make([]string, 0, len(files))
	for name := range files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
