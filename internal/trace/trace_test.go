package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock returns a deterministic clock advancing stepUs per call.
// Injected clocks must be safe for concurrent use, like time.Now.
func fakeClock(stepUs int64) func() time.Time {
	base := time.Unix(1700000000, 0)
	var calls atomic.Int64
	return func() time.Time {
		return base.Add(time.Duration(calls.Add(1)*stepUs) * time.Microsecond)
	}
}

// fakeIDs returns a deterministic sequential ID source.
func fakeIDs() func() uint64 {
	var n uint64
	var mu sync.Mutex
	return func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		n++
		return n
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Root("x")
	if s != nil {
		t.Fatal("nil tracer minted a span")
	}
	// Every span operation must be a no-op on nil.
	s.End()
	s.SetAttr("k", "v")
	s.Annotate("panic")
	if s.Child("c") != nil || s.ChildOrd("c", 1) != nil {
		t.Error("nil span minted a child")
	}
	if s.TraceID() != "" || s.Category() != "" {
		t.Error("nil span has identity")
	}
	if Snapshot(s) != nil {
		t.Error("nil span snapshots to non-nil")
	}
	ctx, sp := Start(context.Background(), "stage")
	if sp != nil || FromContext(ctx) != nil {
		t.Error("untraced context produced a live span")
	}
	var st *Store
	if st.Offer(&Record{}) || st.Len() != 0 || st.Get("x") != nil || st.List() != nil {
		t.Error("nil store retained something")
	}
}

func TestHierarchyAndContext(t *testing.T) {
	tr := NewTracer(fakeIDs(), fakeClock(10))
	root := tr.Root("run")
	ctx := NewContext(context.Background(), root)
	ctx2, stage := Start(ctx, "mine")
	if FromContext(ctx2) != stage {
		t.Fatal("Start did not install the child span")
	}
	_, inner := Start(ctx2, "parse")
	inner.SetAttr("file", "A.java")
	inner.End()
	stage.End()
	root.End()

	d := Snapshot(root)
	if d.Name != "run" || len(d.Children) != 1 || d.Children[0].Name != "mine" {
		t.Fatalf("unexpected tree: %s", d.Render())
	}
	if got := d.Children[0].Children[0].Attrs[0]; got.Key != "file" || got.Value != "A.java" {
		t.Errorf("attr lost: %+v", got)
	}
	if root.TraceID() != fmt.Sprintf("%016x", 1) {
		t.Errorf("trace ID = %q", root.TraceID())
	}
}

func TestDetach(t *testing.T) {
	tr := NewTracer(fakeIDs(), fakeClock(1))
	root := tr.Root("run")
	ctx, cancel := context.WithCancel(NewContext(context.Background(), root))
	cancel()
	d := Detach(ctx)
	if d.Err() != nil {
		t.Error("Detach kept the cancellation")
	}
	if FromContext(d) != root {
		t.Error("Detach dropped the span")
	}
}

// TestDeterministicOrdering pins the central contract: children created
// concurrently with explicit ordinals snapshot in ordinal order, so the
// fingerprint is independent of scheduling.
func TestDeterministicOrdering(t *testing.T) {
	fingerprint := func() string {
		tr := NewTracer(fakeIDs(), fakeClock(3))
		root := tr.Root("batch")
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := root.ChildOrd(fmt.Sprintf("task[%d]", i), i)
				c.SetAttr("idx", fmt.Sprint(i))
				c.End()
			}(i)
		}
		wg.Wait()
		root.End()
		return Snapshot(root).Fingerprint()
	}
	want := fingerprint()
	for round := 0; round < 8; round++ {
		if got := fingerprint(); got != want {
			t.Fatalf("round %d: fingerprint %s != %s", round, got, want)
		}
	}
}

// TestFingerprintIgnoresTimesAndIDs: the same structure under different
// clocks and ID sources fingerprints identically, and a structural change
// (name, category, attr) changes it.
func TestFingerprintIgnoresTimesAndIDs(t *testing.T) {
	build := func(ids func() uint64, now func() time.Time, category string) string {
		tr := NewTracer(ids, now)
		root := tr.Root("check")
		c := root.Child("interpret")
		c.Annotate(category)
		c.End()
		root.End()
		return Snapshot(root).Fingerprint()
	}
	a := build(fakeIDs(), fakeClock(5), "")
	var wild uint64 = 1000
	b := build(func() uint64 { wild += 17; return wild }, fakeClock(999), "")
	if a != b {
		t.Errorf("fingerprint depends on IDs or clock: %s vs %s", a, b)
	}
	if c := build(fakeIDs(), fakeClock(5), "budget"); c == a {
		t.Error("fingerprint ignores the failure category")
	}
}

func TestRenderAndWaterfall(t *testing.T) {
	tr := NewTracer(fakeIDs(), fakeClock(100))
	root := tr.Root("check")
	p := root.Child("parse")
	p.End()
	i := root.Child("interpret")
	i.SetAttr("steps", "42")
	i.Annotate("budget")
	i.End()
	root.End()
	d := Snapshot(root)

	text := d.Render()
	for _, want := range []string{"check ", "  parse ", "  interpret ", "[budget]", "steps=42"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render missing %q:\n%s", want, text)
		}
	}
	wf := d.Waterfall()
	if !strings.Contains(wf, "█") || !strings.Contains(wf, "[budget]") {
		t.Errorf("waterfall missing bars or category:\n%s", wf)
	}
	if lines := strings.Count(wf, "\n"); lines != 3 {
		t.Errorf("waterfall has %d lines, want 3:\n%s", lines, wf)
	}
	if !strings.Contains(d.JSON(), `"name": "interpret"`) {
		t.Errorf("JSON missing span: %s", d.JSON())
	}
}

func TestSnapshotUnended(t *testing.T) {
	tr := NewTracer(fakeIDs(), fakeClock(10))
	root := tr.Root("run")
	root.Child("hung") // never ended
	root.End()
	d := Snapshot(root)
	if len(d.Children) != 1 || d.Children[0].DurUs != 0 {
		t.Errorf("unended child should snapshot with zero duration: %+v", d.Children[0])
	}
}

func record(id, category string, durUs int64) *Record {
	return &Record{ID: id, Name: "check", DurUs: durUs, Category: category,
		Root: &SpanData{Name: "check", DurUs: durUs, Category: category}}
}

func TestStoreTailPolicy(t *testing.T) {
	st := NewStore(StoreOptions{Capacity: 8, SlowUs: 1000, SampleEvery: 4}, nil)
	// Failures and slow traces are always retained.
	if !st.Offer(record("f1", "budget", 10)) {
		t.Error("failed trace dropped")
	}
	if !st.Offer(record("s1", "", 5000)) {
		t.Error("slow trace dropped")
	}
	if st.Get("f1").Retained != RetainFailure || st.Get("s1").Retained != RetainSlow {
		t.Error("retention reasons wrong")
	}
	// Fast healthy traces sample 1-in-4: the first of each window of four.
	kept := 0
	for i := 0; i < 8; i++ {
		if st.Offer(record(fmt.Sprintf("h%d", i), "", 10)) {
			kept++
		}
	}
	if kept != 2 {
		t.Errorf("sampled %d of 8 healthy traces, want 2", kept)
	}
	if st.Get("h0").Retained != RetainSampled {
		t.Error("sampled trace lost its reason")
	}
}

func TestStoreRingEviction(t *testing.T) {
	st := NewStore(StoreOptions{Capacity: 4, SlowUs: 1, SampleEvery: 1}, nil)
	for i := 0; i < 10; i++ {
		st.Offer(record(fmt.Sprintf("t%d", i), "", 100))
	}
	if st.Len() != 4 {
		t.Fatalf("Len = %d, want 4", st.Len())
	}
	list := st.List()
	if list[0].ID != "t9" || list[3].ID != "t6" {
		t.Errorf("List order wrong: %s .. %s", list[0].ID, list[3].ID)
	}
	if st.Get("t0") != nil {
		t.Error("evicted trace still retrievable")
	}
	if st.Get("t9") == nil {
		t.Error("newest trace missing")
	}
}

func TestStoreSampleEveryOne(t *testing.T) {
	st := NewStore(StoreOptions{Capacity: 8, SlowUs: 1 << 40, SampleEvery: 1}, nil)
	for i := 0; i < 5; i++ {
		if !st.Offer(record(fmt.Sprintf("t%d", i), "", 1)) {
			t.Fatal("SampleEvery=1 must keep everything")
		}
	}
}
