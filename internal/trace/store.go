package trace

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Retention reasons recorded on kept traces (the Record.Retained field).
const (
	RetainFailure = "failure" // the request failed — always kept
	RetainSlow    = "slow"    // latency above the tail threshold — always kept
	RetainSampled = "sampled" // fast and healthy — kept by the 1-in-N sampler
)

// Record is one finished, retained trace: the unit the ring buffer stores
// and /debug/traces serves.
type Record struct {
	// ID is the trace ID (the root span's ID).
	ID string `json:"trace_id"`
	// Name is the root span's name (the endpoint or pipeline it traced).
	Name string `json:"name"`
	// StartUnixUs is the trace start on the tracer's clock.
	StartUnixUs int64 `json:"start_unix_us"`
	// DurUs is the root span's duration.
	DurUs int64 `json:"dur_us"`
	// Category is the root failure category ("" for a healthy request).
	Category string `json:"category,omitempty"`
	// Retained says why tail-based sampling kept this trace.
	Retained string `json:"retained,omitempty"`
	// Spans counts the spans in the tree.
	Spans int `json:"spans"`
	// Root is the full span tree.
	Root *SpanData `json:"root"`
}

// Finish snapshots a finished root span into a Record (nil on a nil span).
// The caller must have ended the span.
func Finish(root *Span) *Record {
	if root == nil {
		return nil
	}
	data := Snapshot(root)
	return &Record{
		ID:          root.TraceID(),
		Name:        data.Name,
		StartUnixUs: root.start.UnixMicro(),
		DurUs:       data.DurUs,
		Category:    data.Category,
		Spans:       data.SpanCount(),
		Root:        data,
	}
}

// StoreOptions configures the retention policy of a Store.
type StoreOptions struct {
	// Capacity bounds the ring buffer (default 256). The newest retained
	// trace evicts the oldest once full — memory stays bounded no matter
	// how long the server runs.
	Capacity int
	// SlowUs is the tail-latency threshold: traces at or above it are
	// always retained (default 100ms). The operator tunes this to the
	// service's SLO.
	SlowUs int64
	// SampleEvery keeps one in N of the fast, healthy traces (default 16;
	// 1 keeps everything). The counter-based sampler is deterministic — no
	// randomness, so tests and replays retain identically.
	SampleEvery int
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.Capacity <= 0 {
		o.Capacity = 256
	}
	if o.SlowUs <= 0 {
		o.SlowUs = (100 * time.Millisecond).Microseconds()
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 16
	}
	return o
}

// Store is the tail-based trace retention buffer: a bounded ring that
// always keeps failed and slow traces and samples the healthy fast
// majority. "Tail-based" because the keep/drop decision happens at the end
// of the request, when its outcome and latency are known — head-based
// sampling would have to decide before knowing whether the trace matters.
type Store struct {
	opts StoreOptions
	reg  *obs.Registry

	mu      sync.Mutex
	ring    []*Record
	next    int
	total   int
	healthy uint64 // deterministic 1-in-N sampling counter
}

// NewStore builds a retention buffer; telemetry lands in reg under trace.*
// (nil reg disables it, as everywhere).
func NewStore(opts StoreOptions, reg *obs.Registry) *Store {
	o := opts.withDefaults()
	return &Store{opts: o, reg: reg, ring: make([]*Record, o.Capacity)}
}

// SlowUs returns the effective tail-latency threshold.
func (st *Store) SlowUs() int64 {
	if st == nil {
		return 0
	}
	return st.opts.SlowUs
}

// Offer applies the tail-based retention policy to a finished trace and
// reports whether it was kept. Nil-safe on both sides: a nil store or nil
// record keeps nothing.
func (st *Store) Offer(rec *Record) bool {
	if st == nil || rec == nil {
		return false
	}
	switch {
	case rec.Category != "":
		rec.Retained = RetainFailure
	case rec.DurUs >= st.opts.SlowUs:
		rec.Retained = RetainSlow
	default:
		st.mu.Lock()
		st.healthy++
		sampled := st.healthy%uint64(st.opts.SampleEvery) == 1 || st.opts.SampleEvery == 1
		st.mu.Unlock()
		if !sampled {
			st.reg.Counter("trace.sampled_out").Inc()
			return false
		}
		rec.Retained = RetainSampled
	}
	st.mu.Lock()
	st.ring[st.next] = rec
	st.next = (st.next + 1) % len(st.ring)
	if st.total < len(st.ring) {
		st.total++
	}
	st.mu.Unlock()
	st.reg.Counter("trace.retained").Inc()
	st.reg.Counter("trace.retained." + rec.Retained).Inc()
	st.reg.Gauge("trace.buffered").Set(int64(st.Len()))
	return true
}

// Len returns the number of buffered traces.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// List returns the buffered traces, newest first.
func (st *Store) List() []*Record {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Record, 0, st.total)
	for i := 1; i <= st.total; i++ {
		out = append(out, st.ring[(st.next-i+len(st.ring))%len(st.ring)])
	}
	return out
}

// Get returns the buffered trace with the given ID (nil when evicted or
// never retained).
func (st *Store) Get(id string) *Record {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := 1; i <= st.total; i++ {
		if r := st.ring[(st.next-i+len(st.ring))%len(st.ring)]; r.ID == id {
			return r
		}
	}
	return nil
}
