// Package trace is the request-tracing layer of the pipeline: hierarchical
// spans that turn the flat per-stage aggregates of internal/obs into a tree
// of timed, attributed units of work per request or per pipeline run. Where
// obs answers "how slow is the parse stage overall", a trace answers "which
// stage of *this* request was slow" — the per-request attribution the
// analysis server needs once aggregate counters say something is wrong.
//
// The design follows the conventions the rest of the codebase already
// relies on:
//
//   - Nil safety: a nil *Tracer and a nil *Span are valid everywhere and
//     turn every operation into a no-op costing one nil check, exactly like
//     obs.Registry and resilience.Budget. With tracing off the pipeline's
//     output is byte-identical to an untraced build.
//   - Determinism: the ID source and the clock are injectable, and the
//     canonical form of a finished trace (Snapshot → Fingerprint) depends
//     only on tree structure, span names, ordering keys, categories, and
//     attributes — never on IDs, wall-clock times, or goroutine scheduling.
//     The same request traced at -workers 1 and -workers 8 fingerprints
//     identically.
//   - Concurrency: spans from the same trace may be started and ended from
//     different worker goroutines; per-span state is mutex-guarded, and the
//     deterministic child ordering uses explicit ordinals (the worker pool
//     tags each task span with its task index).
//
// A trace is built top-down: Tracer.Root opens the root span, Span.Child /
// Span.ChildOrd open nested spans, and context propagation (NewContext /
// FromContext / Start) threads the current span through the pipeline without
// widening every call signature.
package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so the
// wire form is stable; numeric attributes are formatted by the caller.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Tracer mints spans. The zero Tracer is not usable; construct with New or
// NewTracer. A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	now func() time.Time
	ids func() uint64
	seq atomic.Uint64 // backing sequence for the default ID source
}

// New returns a tracer using the wall clock and a process-local sequential
// ID source (IDs are unique within the process; traces are scoped to one
// process, so that is all uniqueness the inspector needs).
func New() *Tracer { return NewTracer(nil, nil) }

// NewTracer returns a tracer with an injectable ID source and clock; nil
// selects the defaults. Golden tests inject both so trace IDs and rendered
// durations are byte-stable. Injected sources must be safe for concurrent
// use (spans are minted from worker goroutines), like the defaults.
func NewTracer(ids func() uint64, now func() time.Time) *Tracer {
	t := &Tracer{ids: ids, now: now}
	if t.now == nil {
		t.now = time.Now
	}
	if t.ids == nil {
		t.ids = func() uint64 { return t.seq.Add(1) }
	}
	return t
}

// Root opens a new trace: a parentless span whose ID doubles as the trace
// ID. Nil-safe: a nil tracer returns a nil (inert) span.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, name: name, id: t.ids(), start: t.now(), ord: -1}
}

// Span is one timed unit of work in a trace. All methods are safe on a nil
// span (no-ops), and safe for concurrent use on a shared span (the worker
// pool attaches child spans from many goroutines).
type Span struct {
	tracer *Tracer
	name   string
	id     uint64
	start  time.Time
	// ord is the deterministic ordering key among siblings: the task index
	// for pool fan-out spans, the serial creation ordinal otherwise.
	ord int

	mu       sync.Mutex
	end      time.Time
	ended    bool
	category string
	attrs    []Attr
	children []*Span
	nextOrd  int
}

// Child opens a child span. Sibling order is the serial creation order,
// which is deterministic exactly when the children are created from one
// goroutine; concurrent creators must use ChildOrd with an explicit
// ordinal (the worker pool does). Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	ord := s.nextOrd
	s.nextOrd++
	c := &Span{tracer: s.tracer, name: name, id: s.tracer.ids(), start: s.tracer.now(), ord: ord}
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildOrd opens a child span with an explicit sibling ordinal — the
// deterministic ordering key for spans created concurrently (the worker
// pool passes the task index). Nil-safe.
func (s *Span) ChildOrd(name string, ord int) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	c := &Span{tracer: s.tracer, name: name, id: s.tracer.ids(), start: s.tracer.now(), ord: ord}
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Ending twice keeps the first end time; ending a nil
// span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.now()
	s.mu.Lock()
	if !s.ended {
		s.end, s.ended = now, true
	}
	s.mu.Unlock()
}

// SetAttr appends one annotation. Attribute order is append order; for a
// deterministic trace, attach attributes from the goroutine that owns the
// span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Annotate marks the span with a failure category from the ledger taxonomy
// ("panic", "budget", "canceled", "shed", ...). The first annotation wins;
// an empty category is ignored. Nil-safe.
func (s *Span) Annotate(category string) {
	if s == nil || category == "" {
		return
	}
	s.mu.Lock()
	if s.category == "" {
		s.category = category
	}
	s.mu.Unlock()
}

// Category returns the span's failure category ("" when it succeeded or on
// a nil span).
func (s *Span) Category() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.category
}

// TraceID renders the span's ID as the 16-hex-digit trace identifier (the
// root span's ID is the trace ID). Empty on a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%016x", s.id)
}

// ---------------------------------------------------------------------------
// Context propagation
// ---------------------------------------------------------------------------

type ctxKey struct{}

// NewContext returns ctx carrying the span as the current span.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span of ctx (nil when ctx is untraced —
// the nil span is inert, so callers never need to check).
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child of ctx's current span and returns a context carrying
// it. On an untraced ctx both returns are inert (the original ctx and a nil
// span), so the traced and untraced paths share one call site.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.Child(name)
	return NewContext(ctx, c), c
}

// Detach returns a fresh background context carrying only ctx's current
// span: trace propagation without ctx's deadline or cancellation. The batch
// pipeline uses this where budgets must stay unbound from a batch's cancel
// context while task spans still attach to the right parent.
func Detach(ctx context.Context) context.Context {
	return NewContext(context.Background(), FromContext(ctx))
}
