package trace

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"
)

// SpanData is the immutable canonical form of one finished span: what the
// wire (JSON), the waterfall, and the fingerprint all consume. Children are
// in canonical sibling order (ordinal, then name), so two traces of the
// same work snapshot identically regardless of worker count or completion
// order. Times are offsets from the trace start, in microseconds, so the
// wire form is independent of the absolute clock.
type SpanData struct {
	Name     string      `json:"name"`
	ID       string      `json:"id"`
	StartUs  int64       `json:"start_us"`
	DurUs    int64       `json:"dur_us"`
	Category string      `json:"category,omitempty"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Children []*SpanData `json:"children,omitempty"`
}

// Snapshot converts a finished span tree into its canonical form. Unended
// spans snapshot with the trace's end as their end (a crash-truncated trace
// still renders). Nil-safe: a nil span snapshots to nil.
func Snapshot(root *Span) *SpanData {
	if root == nil {
		return nil
	}
	return snapshotAt(root, root.start)
}

func snapshotAt(s *Span, base time.Time) *SpanData {
	s.mu.Lock()
	end := s.end
	if !s.ended {
		end = s.start // zero-duration placeholder for an unended span
	}
	d := &SpanData{
		Name:     s.name,
		ID:       s.TraceID(),
		StartUs:  s.start.Sub(base).Microseconds(),
		DurUs:    end.Sub(s.start).Microseconds(),
		Category: s.category,
		Attrs:    append([]Attr(nil), s.attrs...),
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	// Canonical sibling order: explicit ordinal first (pool task index or
	// serial creation order), name as the tie-break. Start times are not
	// used — they are scheduling-dependent under concurrency.
	sort.SliceStable(kids, func(i, j int) bool {
		if kids[i].ord != kids[j].ord {
			return kids[i].ord < kids[j].ord
		}
		return kids[i].name < kids[j].name
	})
	for _, c := range kids {
		d.Children = append(d.Children, snapshotAt(c, base))
	}
	return d
}

// SpanCount returns the number of spans in the tree (0 on nil).
func (d *SpanData) SpanCount() int {
	if d == nil {
		return 0
	}
	n := 1
	for _, c := range d.Children {
		n += c.SpanCount()
	}
	return n
}

// Fingerprint hashes the structural identity of the trace — names,
// categories, attributes, and canonical child order — into a 16-hex-digit
// digest. IDs and times are excluded, so the fingerprint is identical for
// the same work at any worker count and under any clock; the determinism
// suites pin exactly this.
func (d *SpanData) Fingerprint() string {
	h := fnv.New64a()
	d.writeCanonical(h)
	return fmt.Sprintf("%016x", h.Sum64())
}

// writeCanonical streams the fingerprinted fields in a prefix-free framing.
func (d *SpanData) writeCanonical(w interface{ Write([]byte) (int, error) }) {
	if d == nil {
		return
	}
	fmt.Fprintf(w, "%d:%s|%d:%s|", len(d.Name), d.Name, len(d.Category), d.Category)
	for _, a := range d.Attrs {
		fmt.Fprintf(w, "a%d:%s=%d:%s|", len(a.Key), a.Key, len(a.Value), a.Value)
	}
	fmt.Fprintf(w, "(%d", len(d.Children))
	for _, c := range d.Children {
		c.writeCanonical(w)
	}
	fmt.Fprint(w, ")")
}

// Render returns the trace tree as indented text, one span per line:
//
//	check 412µs
//	  parse[0] 80µs file=App.java
//	  interpret 290µs steps=1042
//	  rules 31µs
//
// Durations come from the tracer's clock; with the injectable fake clock
// the rendering is byte-stable.
func (d *SpanData) Render() string {
	var sb strings.Builder
	d.render(&sb, 0)
	return sb.String()
}

func (d *SpanData) render(sb *strings.Builder, depth int) {
	if d == nil {
		return
	}
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(d.Name)
	fmt.Fprintf(sb, " %dµs", d.DurUs)
	if d.Category != "" {
		fmt.Fprintf(sb, " [%s]", d.Category)
	}
	for _, a := range d.Attrs {
		fmt.Fprintf(sb, " %s=%s", a.Key, a.Value)
	}
	sb.WriteByte('\n')
	for _, c := range d.Children {
		c.render(sb, depth+1)
	}
}

// waterfallWidth is the bar area of the text waterfall, in cells.
const waterfallWidth = 40

// Waterfall renders the trace as a text waterfall: each span on one line
// with a bar positioned and sized by its start offset and duration relative
// to the whole trace. The inspector's "where did the time go" view:
//
//	check                 412µs  |████████████████████████████████████████|
//	  parse[0]             80µs  |███████                                 |
//	  interpret           290µs  |        ████████████████████████████    |
func (d *SpanData) Waterfall() string {
	if d == nil {
		return ""
	}
	total := d.DurUs
	if total < 1 {
		total = 1
	}
	// First pass: measure the label column so bars align.
	labelW := 0
	d.walk(0, func(depth int, s *SpanData) {
		if w := 2*depth + len(s.Name); w > labelW {
			labelW = w
		}
	})
	var sb strings.Builder
	d.walk(0, func(depth int, s *SpanData) {
		label := strings.Repeat("  ", depth) + s.Name
		fmt.Fprintf(&sb, "%-*s %9dµs  |", labelW, label, s.DurUs)
		from := int(s.StartUs * waterfallWidth / total)
		cells := int(s.DurUs * waterfallWidth / total)
		if cells < 1 {
			cells = 1
		}
		if from >= waterfallWidth {
			from = waterfallWidth - 1
		}
		if from+cells > waterfallWidth {
			cells = waterfallWidth - from
		}
		sb.WriteString(strings.Repeat(" ", from))
		sb.WriteString(strings.Repeat("█", cells))
		sb.WriteString(strings.Repeat(" ", waterfallWidth-from-cells))
		sb.WriteString("|")
		if s.Category != "" {
			fmt.Fprintf(&sb, " [%s]", s.Category)
		}
		sb.WriteByte('\n')
	})
	return sb.String()
}

func (d *SpanData) walk(depth int, f func(depth int, s *SpanData)) {
	f(depth, d)
	for _, c := range d.Children {
		c.walk(depth+1, f)
	}
}

// JSON renders the span tree as indented JSON (the -trace=json CLI dump).
func (d *SpanData) JSON() string {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "{}" // unreachable: SpanData has no unmarshalable fields
	}
	return string(b) + "\n"
}
