package analysis

import (
	"testing"

	"repro/internal/absdom"
	"repro/internal/cryptoapi"
)

// TestFoldBinary covers the constant-folding arithmetic table.
func TestFoldBinary(t *testing.T) {
	i := absdom.IntConst
	cases := []struct {
		op   string
		l, r absdom.Value
		want absdom.Value
	}{
		{"+", i("2"), i("3"), i("5")},
		{"-", i("2"), i("3"), i("-1")},
		{"*", i("4"), i("3"), i("12")},
		{"/", i("9"), i("2"), i("4")},
		{"%", i("9"), i("2"), i("1")},
		{"/", i("9"), i("0"), absdom.TopInt()}, // division by zero degrades
		{"%", i("9"), i("0"), absdom.TopInt()},
		{"<<", i("1"), i("4"), i("16")},
		{">>", i("16"), i("2"), i("4")},
		{"&", i("6"), i("3"), i("2")},
		{"|", i("6"), i("3"), i("7")},
		{"^", i("6"), i("3"), i("5")},
		{"==", i("2"), i("2"), absdom.BoolConst(true)},
		{"!=", i("2"), i("2"), absdom.BoolConst(false)},
		{"<", i("1"), i("2"), absdom.BoolConst(true)},
		{"<=", i("2"), i("2"), absdom.BoolConst(true)},
		{">", i("1"), i("2"), absdom.BoolConst(false)},
		{">=", i("3"), i("2"), absdom.BoolConst(true)},
		{"+", absdom.StrConst("a"), absdom.StrConst("b"), absdom.StrConst("ab")},
		{"+", absdom.StrConst("n="), i("7"), absdom.StrConst("n=7")},
		{"+", i("7"), absdom.StrConst("!"), absdom.StrConst("7!")},
		{"+", absdom.StrConst("x"), absdom.TopStr(), absdom.TopStr()},
		{"+", absdom.TopStr(), i("1"), absdom.TopStr()},
		{"==", absdom.TopInt(), i("1"), absdom.TopInt()},
		{"&&", absdom.BoolConst(true), absdom.TopInt(), absdom.TopInt()},
		{"+", absdom.ConstByte(), absdom.TopByte(), absdom.TopByte()},
		{"<<", i("1"), i("99"), absdom.TopInt()}, // out-of-range shift
	}
	for _, c := range cases {
		got := foldBinary(c.op, c.l, c.r)
		if !got.Equal(c.want) {
			t.Errorf("fold(%s %s %s) = %s, want %s",
				c.l.Label(), c.op, c.r.Label(), got.Label(), c.want.Label())
		}
	}
}

func TestFoldUnary(t *testing.T) {
	i := absdom.IntConst
	cases := []struct {
		op   string
		x    absdom.Value
		want absdom.Value
	}{
		{"-", i("5"), i("-5")},
		{"-", absdom.TopInt(), absdom.TopInt()},
		{"+", i("5"), i("5")},
		{"!", absdom.BoolConst(true), absdom.BoolConst(false)},
		{"!", absdom.BoolConst(false), absdom.BoolConst(true)},
		{"!", absdom.TopInt(), absdom.TopInt()},
		{"~", i("0"), i("-1")},
		{"~", absdom.TopInt(), absdom.TopInt()},
		{"++", i("1"), absdom.TopInt()},
		{"--", i("1"), absdom.TopInt()},
	}
	for _, c := range cases {
		if got := foldUnary(c.op, c.x); !got.Equal(c.want) {
			t.Errorf("fold(%s%s) = %s, want %s", c.op, c.x.Label(), got.Label(), c.want.Label())
		}
	}
}

func TestLiteralValues(t *testing.T) {
	src := `
class C {
    void go() throws Exception {
        long big = 900000L;
        double d = 1.5;
        float f = 2.5f;
        char ch = 'x';
        boolean b = true;
        Object nil = null;
        PBEKeySpec s = new PBEKeySpec(pw(), salt(), 100, 256);
    }
}
`
	// Just exercise the literal kinds end-to-end; the PBE event anchors the
	// assertion that analysis ran.
	r := AnalyzeSource(src, Options{})
	if len(r.ObjsOfType(cryptoapi.PBEKeySpec)) != 1 {
		t.Fatal("analysis did not complete")
	}
}

func TestStringMethodEdgeCases(t *testing.T) {
	cases := []struct {
		expr string
		want string // expected arg label of getInstance
	}{
		{`"aes".toUpperCase()`, `"AES"`},
		{`"AES".toLowerCase()`, `"aes"`},
		{`"AES".intern()`, `"AES"`},
		{`"AES".toString()`, `"AES"`},
		{`"A".concat("ES")`, `"AES"`},
		{`"XAESX".substring(1, 4)`, `"AES"`},
		{`"AES".substring(9)`, "⊤obj"},    // out-of-range: degrade
		{`"AES".split("/")`, "⊤str[]"},    // array result
		{`"AES".unknownMethod()`, "⊤obj"}, // unmodeled method
	}
	for _, c := range cases {
		src := `
class C { void go() throws Exception { Cipher x = Cipher.getInstance(` + c.expr + `); } }`
		r := AnalyzeSource(src, Options{})
		objs := r.ObjsOfType(cryptoapi.Cipher)
		if len(objs) != 1 {
			t.Fatalf("%s: objs = %d", c.expr, len(objs))
		}
		if !findEvent(r, objs[0], c.want) {
			t.Errorf("%s: events %v, want arg %s", c.expr, evKeys(r, objs[0]), c.want)
		}
	}
}

func TestStringPredicatesFold(t *testing.T) {
	// equals/startsWith on constants fold to booleans, steering branches.
	src := `
class C {
    void go(Key k) throws Exception {
        String alg = "AES";
        int n = alg.length();
        boolean e = alg.equals("AES");
        boolean i = alg.equalsIgnoreCase("aes");
        boolean s = alg.startsWith("AE");
        boolean z = alg.isEmpty();
        Cipher c = Cipher.getInstance(alg + "/CBC/" + "PKCS5Padding");
    }
}
`
	r := AnalyzeSource(src, Options{})
	objs := r.ObjsOfType(cryptoapi.Cipher)
	if len(objs) != 1 || !findEvent(r, objs[0], `"AES/CBC/PKCS5Padding"`) {
		t.Fatalf("events: %v", evKeys(r, objs[0]))
	}
}

func TestIntAndStringArrays(t *testing.T) {
	src := `
class C {
    void go() throws Exception {
        int[] ints = {1, 2, 3};
        int[] zero = new int[4];
        String[] names = {"a", "b"};
        String[] empty = new String[2];
        int one = ints[0];
        String nm = names[1];
        SecureRandom r = new SecureRandom();
        r.setSeed(ints[0]);
    }
}
`
	r := AnalyzeSource(src, Options{})
	srs := r.ObjsOfType(cryptoapi.SecureRandom)
	if len(srs) != 1 {
		t.Fatal("analysis failed")
	}
	// ints[0] is ⊤int (element values are not tracked) → setSeed(⊤int).
	if !findEvent(r, srs[0], "SecureRandom.setSeed ⊤int") {
		t.Errorf("events: %v", evKeys(r, srs[0]))
	}
}

func TestCompoundAssignOnField(t *testing.T) {
	src := `
class C {
    String mode = "AES";
    void go() throws Exception {
        mode += "/GCM/NoPadding";
        Cipher c = Cipher.getInstance(mode);
    }
}
`
	r := AnalyzeSource(src, Options{})
	objs := r.ObjsOfType(cryptoapi.Cipher)
	if len(objs) != 1 || !findEvent(r, objs[0], `"AES/GCM/NoPadding"`) {
		t.Errorf("compound field assign: %v", evKeys(r, objs[0]))
	}
}

func TestConstArrayElementWrite(t *testing.T) {
	// Writing a non-constant element degrades a constant byte array.
	src := `
class C {
    void go() throws Exception {
        byte[] iv = {1, 2, 3, 4, 5, 6, 7, 8};
        iv[0] = entropy();
        IvParameterSpec spec = new IvParameterSpec(iv);
    }
}
`
	r := AnalyzeSource(src, Options{})
	ivs := r.ObjsOfType(cryptoapi.IvParameterSpec)
	if len(ivs) != 1 || !findEvent(r, ivs[0], "IvParameterSpec.<init> ⊤byte[]") {
		t.Errorf("element write did not degrade constness: %v", evKeys(r, ivs[0]))
	}
}

func TestNextBytesOnField(t *testing.T) {
	src := `
class C {
    byte[] nonce = new byte[12];
    void go() throws Exception {
        SecureRandom r = new SecureRandom();
        r.nextBytes(this.nonce);
        IvParameterSpec spec = new IvParameterSpec(nonce);
    }
}
`
	r := AnalyzeSource(src, Options{})
	ivs := r.ObjsOfType(cryptoapi.IvParameterSpec)
	if len(ivs) != 1 || !findEvent(r, ivs[0], "IvParameterSpec.<init> ⊤byte[]") {
		t.Errorf("nextBytes(this.field) effect missed: %v", evKeys(r, ivs[0]))
	}
}

func TestGenericSigForUnmodeledAPICall(t *testing.T) {
	// A call on a Cipher object not in the model still records an event
	// with an on-the-fly signature (paramTypeOf coverage).
	src := `
class C {
    void go(Key k) throws Exception {
        Cipher c = Cipher.getInstance("AES/GCM/NoPadding");
        c.updateAAD(new byte[]{1}, 0, "tag", k, c);
    }
}
`
	r := AnalyzeSource(src, Options{})
	objs := r.ObjsOfType(cryptoapi.Cipher)
	if len(objs) != 1 || !findEvent(r, objs[0], "Cipher.updateAAD") {
		t.Errorf("unmodeled call not recorded: %v", evKeys(r, objs[0]))
	}
}

func TestCastRefinement(t *testing.T) {
	src := `
class C {
    void go() throws Exception {
        Object raw = loadKeyMaterial();
        byte[] bytes = (byte[]) raw;
        SecretKeySpec k = new SecretKeySpec(bytes, "AES");
    }
}
`
	r := AnalyzeSource(src, Options{})
	ks := r.ObjsOfType(cryptoapi.SecretKeySpec)
	if len(ks) != 1 || !findEvent(r, ks[0], "SecretKeySpec.<init> ⊤byte[]") {
		t.Errorf("cast refinement: %v", evKeys(r, ks[0]))
	}
}

func TestLambdaAndMethodRefOpaque(t *testing.T) {
	src := `
class C {
    void go() throws Exception {
        Runnable r = () -> work();
        Runnable r2 = C::work2;
        MessageDigest md = MessageDigest.getInstance("SHA-256");
    }
    static void work2() {}
}
`
	r := AnalyzeSource(src, Options{})
	if len(r.ObjsOfType(cryptoapi.MessageDigest)) != 1 {
		t.Error("analysis derailed by lambda/method-ref")
	}
}

func TestFoldWellKnownStaticTable(t *testing.T) {
	cb := absdom.ConstByteArr()
	top := absdom.TopByteArr()
	cases := []struct {
		class, method string
		args          []absdom.Value
		want          absdom.Value
		ok            bool
	}{
		{"Base64", "decode", []absdom.Value{absdom.StrConst("AA==")}, cb, true},
		{"Base64", "decode", []absdom.Value{absdom.TopStr()}, top, true},
		{"Hex", "decodeHex", []absdom.Value{absdom.StrConst("ff")}, cb, true},
		{"DatatypeConverter", "parseBase64Binary", []absdom.Value{absdom.StrConst("x")}, cb, true},
		{"Base64", "encodeToString", []absdom.Value{cb}, absdom.StrConst("<encoded>"), true},
		{"Base64", "encode", []absdom.Value{top}, absdom.TopStr(), true},
		{"Integer", "parseInt", []absdom.Value{absdom.StrConst("42")}, absdom.IntConst("42"), true},
		{"Integer", "parseInt", []absdom.Value{absdom.TopStr()}, absdom.TopInt(), true},
		{"Long", "valueOf", []absdom.Value{absdom.StrConst("7")}, absdom.IntConst("7"), true},
		{"String", "valueOf", []absdom.Value{absdom.IntConst("3")}, absdom.StrConst("3"), true},
		{"String", "valueOf", []absdom.Value{absdom.TopInt()}, absdom.TopStr(), true},
		{"Arrays", "copyOf", []absdom.Value{cb, absdom.IntConst("4")}, cb, true},
		{"Arrays", "copyOfRange", []absdom.Value{top, absdom.IntConst("0")}, top, true},
		{"Files", "readAllBytes", []absdom.Value{absdom.TopStr()}, absdom.Value{}, false},
	}
	for _, c := range cases {
		got, ok := foldWellKnownStatic(c.class, c.method, c.args)
		if ok != c.ok {
			t.Errorf("%s.%s: ok = %t, want %t", c.class, c.method, ok, c.ok)
			continue
		}
		if ok && !got.Equal(c.want) {
			t.Errorf("%s.%s = %s, want %s", c.class, c.method, got.Label(), c.want.Label())
		}
	}
}

func TestAllCapsConstantConvention(t *testing.T) {
	// Unknown ALL_CAPS fields on class-like receivers become symbolic ints.
	src := `
class C {
    void go(Key k) throws Exception {
        Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");
        c.init(Settings.CUSTOM_MODE, k);
    }
}
`
	r := AnalyzeSource(src, Options{})
	objs := r.ObjsOfType(cryptoapi.Cipher)
	if len(objs) != 1 || !findEvent(r, objs[0], "CUSTOM_MODE") {
		t.Errorf("symbolic constant missed: %v", evKeys(r, objs[0]))
	}
}

func TestMaxStatesJoin(t *testing.T) {
	// With a fork budget of 1 the two branch constants join to ⊤str.
	src := `
class C {
    void go(boolean b) throws Exception {
        String t;
        if (b) { t = "AES"; } else { t = "DES"; }
        Cipher c = Cipher.getInstance(t);
    }
}
`
	r := AnalyzeSource(src, Options{MaxStates: 1})
	objs := r.ObjsOfType(cryptoapi.Cipher)
	if len(objs) != 1 {
		t.Fatal("no cipher")
	}
	if !findEvent(r, objs[0], "Cipher.getInstance ⊤str") {
		t.Errorf("budget-1 fork should join to ⊤str: %v", evKeys(r, objs[0]))
	}
}

func TestAPIReturnTypes(t *testing.T) {
	// digest() returns byte[] → ⊤byte[] flows into downstream key material.
	src := `
class C {
    void go() throws Exception {
        MessageDigest md = MessageDigest.getInstance("SHA-256");
        byte[] h = md.digest();
        SecretKeySpec k = new SecretKeySpec(h, "AES");
    }
}
`
	r := AnalyzeSource(src, Options{})
	ks := r.ObjsOfType(cryptoapi.SecretKeySpec)
	if len(ks) != 1 || !findEvent(r, ks[0], "SecretKeySpec.<init> ⊤byte[]") {
		t.Errorf("digest() return type mishandled: %v", evKeys(r, ks[0]))
	}
}
