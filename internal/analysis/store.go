package analysis

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/artifact"
	"repro/internal/javaast"
	"repro/internal/javaparser"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Normalized returns the options with the analyzer defaults applied — the
// canonical form artifact fingerprints hash, so a caller that spells out
// the defaults and one that leaves them zero address the same artifacts.
func (o Options) Normalized() Options { return o.withDefaults() }

// parseArtifact is the cached outcome of parsing one source file: the unit
// plus the recovered-error count, so the parse.* telemetry of a warm run is
// identical to a cold one.
type parseArtifact struct {
	Unit *javaast.CompilationUnit
	Errs int
}

func encodeParseArtifact(pa *parseArtifact) ([]byte, error) {
	javaast.GobRegister()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pa); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeParseArtifact(b []byte) (any, error) {
	javaast.GobRegister()
	var pa parseArtifact
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&pa); err != nil {
		return nil, err
	}
	if pa.Unit == nil {
		return nil, fmt.Errorf("parse artifact holds no unit")
	}
	return &pa, nil
}

// ParseProgramStoreCtx is ParseProgramPoolCtx backed by an artifact store:
// each file's parse is addressed by its content alone (option changes never
// invalidate parse artifacts), concurrent parses of identical content share
// one run (per-key single-flight), and cached units are shared read-only —
// the analyzer never mutates the AST. A nil store is exactly
// ParseProgramPoolCtx; the Program, its telemetry, and the span tree are
// identical either way.
func ParseProgramStoreCtx(ctx context.Context, sources map[string]string, reg *obs.Registry, pool *parallel.Pool, st *artifact.Store) *Program {
	if st == nil {
		return ParseProgramPoolCtx(ctx, sources, reg, pool)
	}
	names := make([]string, 0, len(sources))
	for n := range sources {
		if dot := strings.LastIndexByte(n, '.'); dot >= 0 && !strings.HasSuffix(n, ".java") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	pctx, psp := trace.Start(ctx, "parse")
	psp.SetAttr("files", strconv.Itoa(len(names)))
	defer psp.End()
	p := &Program{Files: make([]File, len(names)), SourceFP: sourceFingerprint(names, sources)}
	errCounts := make([]int64, len(names))
	var bytes, parseErrs int64
	pool.ForEachCtx(trace.Detach(pctx), "file", len(names), func(fctx context.Context, i int) {
		trace.FromContext(fctx).SetAttr("name", names[i])
		src := sources[names[i]]
		k := artifact.NewKey(artifact.KindParse, src)
		v, _ := st.Do(artifact.KindParse, k, func() (any, error) {
			if v, ok := st.Get(artifact.KindParse, k, decodeParseArtifact); ok {
				return v, nil
			}
			res := javaparser.Parse(src)
			pa := &parseArtifact{Unit: res.Unit, Errs: len(res.Errors)}
			st.Put(artifact.KindParse, k, pa, func() ([]byte, error) { return encodeParseArtifact(pa) })
			return pa, nil
		})
		pa := v.(*parseArtifact)
		p.Files[i] = File{Name: names[i], Unit: pa.Unit}
		errCounts[i] = int64(pa.Errs)
	})
	for i, n := range names {
		bytes += int64(len(sources[n]))
		parseErrs += errCounts[i]
	}
	if reg != nil {
		reg.Counter("parse.files").Add(int64(len(names)))
		reg.Counter("parse.bytes").Add(bytes)
		reg.Counter("parse.errors").Add(parseErrs)
	}
	return p
}
