package analysis

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/resilience"
)

// forkBombSource builds a legal Java method whose abstract execution visits
// a large number of statements/expressions: n sequential if-statements, each
// forking the state set (capped at MaxStates) and evaluating several
// expressions per surviving state.
func forkBombSource(n int) string {
	var sb strings.Builder
	sb.WriteString("class Bomb {\n  void go(int x) {\n    int acc = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "    if (x > %d) { acc = acc + %d * 2 + x; } else { acc = acc - %d; }\n", i, i, i)
	}
	sb.WriteString("  }\n}\n")
	return sb.String()
}

func TestBudgetExhaustedOnForkHeavySnippet(t *testing.T) {
	src := forkBombSource(400)
	b := resilience.NewBudget(5000, 0)
	res, err := AnalyzeSourceBudgeted(src, Options{Budget: b})
	if !errors.Is(err, resilience.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res == nil {
		t.Fatal("partial result is nil, want non-nil")
	}
	if !b.Exhausted() {
		t.Error("budget not marked exhausted")
	}
}

func TestBudgetLargeEnoughIsNoOp(t *testing.T) {
	src := forkBombSource(40)
	unbudgeted := AnalyzeSource(src, Options{})
	res, err := AnalyzeSourceBudgeted(src, Options{Budget: resilience.NewBudget(1<<30, 0)})
	if err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	if len(res.Objs) != len(unbudgeted.Objs) || len(res.Uses) != len(unbudgeted.Uses) {
		t.Errorf("budgeted result differs from unbudgeted: %d/%d objs, %d/%d uses",
			len(res.Objs), len(unbudgeted.Objs), len(res.Uses), len(unbudgeted.Uses))
	}
}

func TestNilBudgetMatchesAnalyze(t *testing.T) {
	src := `class A { void m() { javax.crypto.Cipher c = javax.crypto.Cipher.getInstance("AES"); c.doFinal(); } }`
	res, err := AnalyzeSourceBudgeted(src, Options{})
	if err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	plain := AnalyzeSource(src, Options{})
	if len(res.Objs) != len(plain.Objs) {
		t.Errorf("objs differ: %d vs %d", len(res.Objs), len(plain.Objs))
	}
}
