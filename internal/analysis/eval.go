package analysis

import (
	"strconv"
	"strings"

	"repro/internal/absdom"
	"repro/internal/cryptoapi"
	"repro/internal/javaast"
)

// eval computes the abstract value of an expression in state st, recording
// API usage events and allocating abstract objects as side effects.
func (an *analyzer) eval(e javaast.Expr, st *absdom.State, fr *frame, depth int) absdom.Value {
	an.step()
	switch x := e.(type) {
	case nil:
		return absdom.Value{}

	case *javaast.Literal:
		v := literalValue(x)
		if an.provOn {
			sh, name := v.LiteralShape()
			v.Prov = an.prov0(absdom.ProvLiteral, x, sh, name)
		}
		return v

	case *javaast.Name:
		if v, ok := st.LookupVar(x.Ident); ok {
			return v
		}
		if v, ok := an.lookupField(fr.ci, x.Ident, st); ok {
			return v
		}
		return absdom.TopObj("")

	case *javaast.FieldAccess:
		return an.evalFieldAccess(x, st, fr, depth)

	case *javaast.Call:
		return an.evalCall(x, st, fr, depth)

	case *javaast.New:
		return an.evalNew(x, st, fr, depth)

	case *javaast.NewArray:
		return an.evalNewArray(x, st, fr, depth)

	case *javaast.ArrayInit:
		// Bare initializer; element type comes from the declaration, which
		// refine() fixes afterward. Byte-ish is the common crypto case.
		allConst := true
		for _, el := range x.Elems {
			if !an.eval(el, st, fr, depth).IsConst() {
				allConst = false
			}
		}
		var v absdom.Value
		if allConst {
			v = absdom.ConstByteArr()
		} else {
			v = absdom.TopByteArr()
		}
		if an.provOn {
			v.Prov = an.prov0(absdom.ProvLiteral, x, nil, "array initializer {...}")
		}
		return v

	case *javaast.Index:
		v := an.eval(x.X, st, fr, depth)
		an.eval(x.I, st, fr, depth)
		var el absdom.Value
		switch v.Kind {
		case absdom.KConstByteArr:
			el = absdom.ConstByte()
		case absdom.KTopByteArr:
			el = absdom.TopByte()
		case absdom.KIntArrConst, absdom.KTopIntArr:
			el = absdom.TopInt()
		case absdom.KStrArrConst, absdom.KTopStrArr:
			el = absdom.TopStr()
		default:
			el = absdom.TopObj("")
		}
		if an.provOn && v.Prov != nil {
			el.Prov = an.prov1(absdom.ProvDerived, x, nil, "array element", v.Prov)
		}
		return el

	case *javaast.Binary:
		l := an.eval(x.L, st, fr, depth)
		r := an.eval(x.R, st, fr, depth)
		v := foldBinary(x.Op, l, r)
		if an.provOn && (l.Prov != nil || r.Prov != nil) {
			v.Prov = an.prov2(absdom.ProvDerived, x, shOperator, x.Op, l.Prov, r.Prov)
		}
		return v

	case *javaast.Unary:
		v := an.eval(x.X, st, fr, depth)
		u := foldUnary(x.Op, v)
		if an.provOn && v.Prov != nil {
			u.Prov = an.prov1(absdom.ProvDerived, x, shOperator, x.Op, v.Prov)
		}
		return u

	case *javaast.Assign:
		return an.evalAssign(x, st, fr, depth)

	case *javaast.Cond:
		an.eval(x.C, st, fr, depth)
		t := an.eval(x.T, st, fr, depth)
		f := an.eval(x.F, st, fr, depth)
		return absdom.JoinIn(&an.provArena, t, f)

	case *javaast.Cast:
		v := an.eval(x.X, st, fr, depth)
		// A cast asserts the value's runtime type: any unknown object value
		// refines to the ⊤ of the cast target (e.g. (byte[]) loaded()).
		if !v.IsValid() || v.Kind == absdom.KTopObj {
			c := absdom.TopOfType(x.Type.Base(), x.Type.Dims)
			if an.provOn && v.Prov != nil {
				c.Prov = an.prov1(absdom.ProvDerived, x, shCast, x.Type.Base(), v.Prov)
			}
			return c
		}
		return v

	case *javaast.InstanceOf:
		an.eval(x.X, st, fr, depth)
		return absdom.TopInt()

	case *javaast.This:
		return absdom.TopObj(fr.ci.decl.Name)
	case *javaast.Super:
		return absdom.TopObj("")

	case *javaast.ClassLit:
		return absdom.TopObj("Class")
	case *javaast.Lambda:
		return absdom.TopObj("")
	case *javaast.MethodRef:
		return absdom.TopObj("")

	default:
		return absdom.Value{}
	}
}

func literalValue(x *javaast.Literal) absdom.Value {
	switch x.Kind {
	case javaast.IntLit, javaast.LongLit, javaast.FloatLit, javaast.DoubleLit:
		return absdom.IntConst(x.Value)
	case javaast.CharLit:
		return absdom.ConstByte()
	case javaast.StringLit:
		return absdom.StrConst(x.Value)
	case javaast.BoolLit:
		return absdom.BoolConst(x.Value == "true")
	case javaast.NullLit:
		return absdom.Null()
	}
	return absdom.Value{}
}

// ---------------------------------------------------------------------------
// Field access
// ---------------------------------------------------------------------------

// lookupField resolves an unqualified field name in the current class,
// falling back to the declared-type ⊤ for unbound fields.
func (an *analyzer) lookupField(ci *classInfo, name string, st *absdom.State) (absdom.Value, bool) {
	fd, ok := ci.fields[name]
	if !ok {
		return absdom.Value{}, false
	}
	if v, bound := st.LookupField(ci.decl.Name + "." + name); bound {
		return v, true
	}
	v := absdom.TopOfType(fd.Type.Base(), fd.Type.Dims)
	if an.provOn {
		v.Prov = an.prov0x(absdom.ProvField, fd, shFieldUnbound, ci.decl.Name, name)
	}
	return v, true
}

func (an *analyzer) evalFieldAccess(x *javaast.FieldAccess, st *absdom.State, fr *frame, depth int) absdom.Value {
	// this.f
	if _, isThis := x.X.(*javaast.This); isThis {
		if v, ok := an.lookupField(fr.ci, x.Name, st); ok {
			return v
		}
		return absdom.TopObj("")
	}
	// Qualified constant (Cipher.ENCRYPT_MODE, Build.VERSION.SDK_INT, ...).
	if qual, ok := flattenName(x.X); ok {
		full := qual + "." + x.Name
		if sym, known := cryptoapi.LookupConstant(full); known {
			return absdom.IntConst(sym)
		}
		base := lastSegment(qual)
		// Static field of a program class: evaluate its initializer once.
		if ci2, isClass := an.classes[base]; isClass && !an.isShadowed(base, st, fr) {
			if fd, has := ci2.fields[x.Name]; has {
				return an.staticFieldValue(ci2, fd)
			}
		}
		// API-class or conventional ALL_CAPS constant: keep it symbolic.
		if isClassLike(base) && isAllCaps(x.Name) {
			return absdom.IntConst(x.Name)
		}
	}
	// Heap access through an object value.
	v := an.eval(x.X, st, fr, depth)
	if v.Kind == absdom.KObj {
		if fs, ok := st.Heap[v.Obj]; ok {
			if fv, ok := fs[x.Name]; ok {
				return fv
			}
		}
		return absdom.TopObj("")
	}
	if v.Kind == absdom.KStrConst || v.Kind == absdom.KTopStr {
		// String has no interesting fields; .length etc.
		return absdom.TopInt()
	}
	if isAllCaps(x.Name) {
		return absdom.IntConst(x.Name)
	}
	return absdom.TopObj("")
}

// staticFieldValue evaluates (and caches) the initializer of a static-ish
// field accessed cross-class. A cycle guard breaks mutual recursion.
func (an *analyzer) staticFieldValue(ci *classInfo, fd *javaast.FieldDecl) absdom.Value {
	if an.constCache == nil {
		an.constCache = map[*javaast.FieldDecl]absdom.Value{}
		an.constBusy = map[*javaast.FieldDecl]bool{}
	}
	if v, ok := an.constCache[fd]; ok {
		return v
	}
	if an.constBusy[fd] || fd.Init == nil {
		return absdom.TopOfType(fd.Type.Base(), fd.Type.Dims)
	}
	an.constBusy[fd] = true
	savedFile := an.curFile
	an.curFile = ci.file
	tmp := absdom.NewState()
	tmpFr := &frame{an: an, ci: ci, varTypes: map[string]*javaast.TypeRef{}}
	v := refine(an.eval(fd.Init, tmp, tmpFr, 0), fd.Type)
	if an.provOn {
		v.Prov = an.prov1x(absdom.ProvField, fd, shStaticField, ci.decl.Name, fd.Name, v.Prov)
	}
	an.curFile = savedFile
	an.constBusy[fd] = false
	an.constCache[fd] = v
	return v
}

// isShadowed reports whether a class-like name is shadowed by a local or
// field binding.
func (an *analyzer) isShadowed(name string, st *absdom.State, fr *frame) bool {
	if _, ok := st.LookupVar(name); ok {
		return true
	}
	_, ok := fr.ci.fields[name]
	return ok
}

// flattenName renders a Name/FieldAccess chain as a dotted string.
func flattenName(e javaast.Expr) (string, bool) {
	switch x := e.(type) {
	case *javaast.Name:
		return x.Ident, true
	case *javaast.FieldAccess:
		if base, ok := flattenName(x.X); ok {
			return base + "." + x.Name, true
		}
	}
	return "", false
}

func lastSegment(s string) string {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

func isClassLike(name string) bool {
	return name != "" && name[0] >= 'A' && name[0] <= 'Z'
}

func isAllCaps(name string) bool {
	hasLetter := false
	for _, r := range name {
		if r >= 'a' && r <= 'z' {
			return false
		}
		if r >= 'A' && r <= 'Z' {
			hasLetter = true
		}
	}
	return hasLetter
}

// ---------------------------------------------------------------------------
// Calls and allocations
// ---------------------------------------------------------------------------

func (an *analyzer) evalCall(c *javaast.Call, st *absdom.State, fr *frame, depth int) absdom.Value {
	args := make([]absdom.Value, len(c.Args))
	for i, a := range c.Args {
		args[i] = an.eval(a, st, fr, depth)
	}

	// Unqualified or this-qualified call: same-class method, inlined.
	_, recvIsThis := c.Recv.(*javaast.This)
	if c.Recv == nil || recvIsThis {
		if ms := an.pickMethod(fr.ci, c.Name, len(args)); ms != nil {
			ret := an.inlineCall(fr.ci, ms, args, st, depth)
			if an.provOn && ret.Prov != nil {
				ret.Prov = an.prov1(absdom.ProvCall, c, shInlined, c.Name, ret.Prov)
			}
			return ret
		}
		return absdom.TopObj("")
	}
	if _, isSuper := c.Recv.(*javaast.Super); isSuper {
		return absdom.TopObj("")
	}

	// Static call on a class reference (API class, program class, or
	// qualified name like javax.crypto.Cipher).
	if qual, ok := flattenName(c.Recv); ok {
		base := lastSegment(qual)
		if !an.isShadowed(base, st, fr) {
			if cryptoapi.IsAPIClass(base) {
				return an.apiStaticCall(base, c, args)
			}
			if ci2, isClass := an.classes[base]; isClass {
				if ms := an.pickMethod(ci2, c.Name, len(args)); ms != nil {
					ret := an.inlineCall(ci2, ms, args, st, depth)
					if an.provOn && ret.Prov != nil {
						ret.Prov = an.prov1x(absdom.ProvCall, c, shInlinedQual, base, c.Name, ret.Prov)
					}
					return ret
				}
				return absdom.TopObj("")
			}
			if v, ok := foldWellKnownStatic(base, c.Name, args); ok {
				if an.provOn {
					p0, p1 := argProvs(args)
					v.Prov = an.prov2x(absdom.ProvCall, c, shCallQual, base, c.Name, p0, p1)
				}
				return v
			}
		}
	}
	// Decoder-instance chains: Base64.getDecoder().decode("...").
	if v, ok := an.foldDecoderChain(c, args, st, fr, depth); ok {
		if an.provOn {
			p0, p1 := argProvs(args)
			v.Prov = an.prov2(absdom.ProvCall, c, shBase64, c.Name, p0, p1)
		}
		return v
	}

	// Instance call through an object value.
	recv := an.eval(c.Recv, st, fr, depth)
	if recv.Kind == absdom.KStrConst {
		v := foldStringMethod(recv.Payload, c.Name, args)
		if an.provOn {
			p0, _ := argProvs(args)
			v.Prov = an.prov2(absdom.ProvCall, c, shStringMethod, c.Name, recv.Prov, p0)
		}
		return v
	}
	if recv.Kind == absdom.KObj && cryptoapi.IsAPIClass(recv.Obj.Type) {
		sig, found := cryptoapi.LookupMethod(recv.Obj.Type, c.Name, len(args))
		if !found {
			sig = genericSig(recv.Obj.Type, c.Name, args)
		}
		an.record(recv.Obj, Event{Sig: sig, Args: args, File: an.fileName(), Pos: c.Pos()})
		an.applyCallEffects(recv.Obj.Type, c, st, fr)
		if sig.Ret != "" {
			v := topOfRetType(sig.Ret)
			if an.provOn {
				p0, p1 := argProvs(args)
				if p0 == nil {
					p0 = recv.Prov
				}
				v.Prov = an.prov2x(absdom.ProvCall, c, shCallResult, sig.Class, sig.Name, p0, p1)
			}
			return v
		}
		return absdom.Value{}
	}
	return absdom.TopObj("")
}

// apiStaticCall handles factory calls such as Cipher.getInstance("AES"):
// the result is a fresh abstract object at this call's allocation site with
// the factory invocation as its first event.
func (an *analyzer) apiStaticCall(class string, c *javaast.Call, args []absdom.Value) absdom.Value {
	sig, found := cryptoapi.LookupMethod(class, c.Name, len(args))
	if found && sig.Static && sig.Ret != "" {
		obj := an.allocObj(an.fileOf(c), c, sig.Ret)
		an.record(obj, Event{Sig: sig, Args: args, File: an.fileName(), Pos: c.Pos()})
		v := absdom.ObjRef(obj)
		if an.provOn {
			p0, p1 := argProvs(args)
			v.Prov = an.prov2x(absdom.ProvAlloc, c, shCallQual, class, c.Name, p0, p1)
		}
		return v
	}
	if found && sig.Static {
		// Static void configuration call (e.g. HttpsURLConnection.
		// setDefaultHostnameVerifier): no object flows out, but the call
		// is still an observable usage event — record it on a fresh
		// class-level object at this call site so rules can match it.
		obj := an.allocObj(an.fileOf(c), c, class)
		an.record(obj, Event{Sig: sig, Args: args, File: an.fileName(), Pos: c.Pos()})
		return absdom.Value{}
	}
	return absdom.TopObj("")
}

// topOfRetType maps a modeled return-type name ("byte[]", "Key", "Cipher")
// to its ⊤ abstract value, separating the array suffix from the base name.
func topOfRetType(ret string) absdom.Value {
	dims := 0
	for strings.HasSuffix(ret, "[]") {
		ret = strings.TrimSuffix(ret, "[]")
		dims++
	}
	return absdom.TopOfType(ret, dims)
}

// genericSig builds an on-the-fly signature for calls on API objects that
// the model does not list, so the feature language still captures them.
func genericSig(class, name string, args []absdom.Value) cryptoapi.MethodSig {
	params := make([]string, len(args))
	for i, a := range args {
		params[i] = paramTypeOf(a)
	}
	return cryptoapi.MethodSig{Class: class, Name: name, Params: params}
}

func paramTypeOf(v absdom.Value) string {
	switch v.Kind {
	case absdom.KIntConst, absdom.KTopInt, absdom.KBoolConst:
		return "int"
	case absdom.KStrConst, absdom.KTopStr:
		return "String"
	case absdom.KConstByteArr, absdom.KTopByteArr:
		return "byte[]"
	case absdom.KIntArrConst, absdom.KTopIntArr:
		return "int[]"
	case absdom.KStrArrConst, absdom.KTopStrArr:
		return "String[]"
	case absdom.KConstByte, absdom.KTopByte:
		return "byte"
	case absdom.KObj:
		return v.Obj.Type
	case absdom.KTopObj:
		if v.Type != "" {
			return v.Type
		}
	}
	return "Object"
}

// applyCallEffects models API methods that mutate their arguments; the one
// that matters for the abstraction is SecureRandom.nextBytes(buf), which
// fills the buffer with random bytes — the buffer stops being constant.
func (an *analyzer) applyCallEffects(class string, c *javaast.Call, st *absdom.State, fr *frame) {
	if class != cryptoapi.SecureRandom || c.Name != "nextBytes" || len(c.Args) != 1 {
		return
	}
	if n, ok := c.Args[0].(*javaast.Name); ok {
		if _, isVar := st.LookupVar(n.Ident); isVar {
			st.SetVar(n.Ident, absdom.TopByteArr())
		} else if _, isField := fr.ci.fields[n.Ident]; isField {
			st.SetField(fr.ci.decl.Name+"."+n.Ident, absdom.TopByteArr())
		}
	}
	if fa, ok := c.Args[0].(*javaast.FieldAccess); ok {
		if _, isThis := fa.X.(*javaast.This); isThis {
			if _, isField := fr.ci.fields[fa.Name]; isField {
				st.SetField(fr.ci.decl.Name+"."+fa.Name, absdom.TopByteArr())
			}
		}
	}
}

// pickMethod selects a same-name method, preferring an exact arity match.
func (an *analyzer) pickMethod(ci *classInfo, name string, arity int) *javaast.MethodDecl {
	cands := ci.methods[name]
	for _, m := range cands {
		if len(m.Params) == arity {
			return m
		}
	}
	if len(cands) > 0 {
		return cands[0]
	}
	return nil
}

// inlineCall executes a callee in the caller's state with the callee's own
// variable scope. Without summaries (Options.Summaries nil) this is the
// exact legacy interpreter: recursion-guarded and bounded by MaxInline.
// With summaries on, the depth cliff is lifted — reach is bounded by cycle
// detection (recursive SCCs widen to Top, counted as summary.cycles) plus a
// generous backstop — and, when memoization applies (provenance off,
// fingerprinted program), the summary table is consulted before executing.
func (an *analyzer) inlineCall(ci *classInfo, m *javaast.MethodDecl, args []absdom.Value, st *absdom.State, depth int) absdom.Value {
	if an.sums == nil {
		if depth >= an.opts.MaxInline {
			return returnTop(m)
		}
		for _, on := range an.inlineStack {
			if on == m {
				return returnTop(m)
			}
		}
		return an.inlineLive(ci, m, args, st, depth)
	}
	for i, on := range an.inlineStack {
		if on == m {
			an.noteCycle(i, m)
			return returnTop(m)
		}
	}
	// Summary replays do not consume stack depth, so near this backstop a
	// warm hit can stand in for a call a cold run would widen here — an
	// accepted divergence on degenerate >512-frame chains (summary.go header).
	if len(an.inlineStack) >= maxLiftedInline {
		return returnTop(m)
	}
	if !an.memoOK {
		return an.inlineLive(ci, m, args, st, depth)
	}
	return an.inlineMemo(ci, m, args, st, depth)
}

// inlineLive pushes the callee frame and executes its body in st.
func (an *analyzer) inlineLive(ci *classInfo, m *javaast.MethodDecl, args []absdom.Value, st *absdom.State, depth int) absdom.Value {
	an.inlineStack = append(an.inlineStack, m)
	savedFile := an.curFile
	an.curFile = ci.file
	defer func() {
		an.inlineStack = an.inlineStack[:len(an.inlineStack)-1]
		an.curFile = savedFile
	}()

	// Save the caller's locals; the callee gets a fresh local namespace over
	// the same field/heap state.
	saved := st.Vars
	st.Vars = map[string]absdom.Value{}
	ret := an.execMethod(ci, m, args, st, depth+1)
	st.Vars = saved
	return ret
}

func (an *analyzer) evalNew(x *javaast.New, st *absdom.State, fr *frame, depth int) absdom.Value {
	args := make([]absdom.Value, len(x.Args))
	for i, a := range x.Args {
		args[i] = an.eval(a, st, fr, depth)
	}
	typ := x.Type.Base()
	obj := an.allocObj(an.fileOf(x), x, typ)
	sig, found := cryptoapi.LookupMethod(typ, "<init>", len(args))
	if !found {
		sig = genericSig(typ, "<init>", args)
	}
	an.record(obj, Event{Sig: sig, Args: args, File: an.fileName(), Pos: x.Pos()})
	v := absdom.ObjRef(obj)
	if an.provOn {
		p0, p1 := argProvs(args)
		v.Prov = an.prov2(absdom.ProvAlloc, x, shNew, typ, p0, p1)
	}
	return v
}

func (an *analyzer) evalNewArray(x *javaast.NewArray, st *absdom.State, fr *frame, depth int) absdom.Value {
	for _, l := range x.Lens {
		an.eval(l, st, fr, depth)
	}
	elemConst := true
	var labels []string
	for _, el := range x.Elems {
		v := an.eval(el, st, fr, depth)
		if !v.IsConst() {
			elemConst = false
		}
		labels = append(labels, v.Label())
	}
	var v absdom.Value
	switch x.Type.Name {
	case "byte", "char":
		// Both "new byte[]{...}" with constant elements and "new byte[n]"
		// (an all-zero buffer until someone fills it) are constant arrays.
		if elemConst {
			v = absdom.ConstByteArr()
		} else {
			v = absdom.TopByteArr()
		}
	case "int", "long", "short":
		switch {
		case x.HasInit && elemConst:
			v = absdom.IntArrConst(strings.Join(labels, ","))
		case !x.HasInit:
			v = absdom.IntArrConst("zero")
		default:
			v = absdom.TopIntArr()
		}
	case "String":
		if x.HasInit && elemConst {
			v = absdom.StrArrConst(strings.Join(labels, ","))
		} else {
			v = absdom.TopStrArr()
		}
	default:
		v = absdom.TopObj(x.Type.Name + "[]")
	}
	if an.provOn {
		v.Prov = an.prov0(absdom.ProvLiteral, x, shNewArray, x.Type.Name)
	}
	return v
}

// evalAssign handles simple and compound assignment.
func (an *analyzer) evalAssign(x *javaast.Assign, st *absdom.State, fr *frame, depth int) absdom.Value {
	v := an.eval(x.R, st, fr, depth)
	if x.Op != "=" {
		cur := an.eval(x.L, st, fr, depth)
		v = foldBinary(strings.TrimSuffix(x.Op, "="), cur, v)
	}
	an.assignTo(x.L, v, st, fr, depth)
	return v
}

func (an *analyzer) assignTo(lhs javaast.Expr, v absdom.Value, st *absdom.State, fr *frame, depth int) {
	switch l := lhs.(type) {
	case *javaast.Name:
		if an.provOn && v.Prov != nil {
			v.Prov = an.prov1(absdom.ProvAssign, l, shAssigned, l.Ident, v.Prov)
		}
		if _, isVar := st.LookupVar(l.Ident); isVar {
			if t, ok := fr.varTypes[l.Ident]; ok {
				v = refine(v, t)
			}
			st.SetVar(l.Ident, v)
			return
		}
		if fd, isField := fr.ci.fields[l.Ident]; isField {
			st.SetField(fr.ci.decl.Name+"."+l.Ident, refine(v, fd.Type))
			return
		}
		st.SetVar(l.Ident, v)
	case *javaast.FieldAccess:
		if an.provOn && v.Prov != nil {
			v.Prov = an.prov1(absdom.ProvAssign, l, shAssignedField, l.Name, v.Prov)
		}
		if _, isThis := l.X.(*javaast.This); isThis {
			if fd, isField := fr.ci.fields[l.Name]; isField {
				st.SetField(fr.ci.decl.Name+"."+l.Name, refine(v, fd.Type))
				return
			}
		}
		recv := an.eval(l.X, st, fr, depth)
		if recv.Kind == absdom.KObj {
			fs := st.Heap[recv.Obj]
			if fs == nil {
				fs = map[string]absdom.Value{}
				st.Heap[recv.Obj] = fs
			}
			fs[l.Name] = v
		}
	case *javaast.Index:
		// Writing a non-constant element degrades a constant array.
		base := an.eval(l.X, st, fr, depth)
		if !v.IsConst() && base.Kind == absdom.KConstByteArr {
			if n, ok := l.X.(*javaast.Name); ok {
				if _, isVar := st.LookupVar(n.Ident); isVar {
					st.SetVar(n.Ident, absdom.TopByteArr())
				} else if _, isField := fr.ci.fields[n.Ident]; isField {
					st.SetField(fr.ci.decl.Name+"."+n.Ident, absdom.TopByteArr())
				}
			}
		}
	}
}

func (an *analyzer) fileOf(n javaast.Node) int {
	// Allocation sites are keyed by (file, offset); the analyzer currently
	// tracks the file via the class being executed. A single counter space
	// across files is preserved by including the file index in the key; we
	// recover it from the frame-less context by using 0 when unknown. The
	// executor always runs within one file at a time via curFile.
	return an.curFile
}

// foldWellKnownStatic models a handful of ubiquitous JDK/commons static
// helpers whose constness matters to the abstraction: decoding a *constant*
// string yields constant bytes (hard-coded keys and IVs are very often
// shipped base64- or hex-encoded), and numeric parses of constants stay
// constant.
func foldWellKnownStatic(class, method string, args []absdom.Value) (absdom.Value, bool) {
	firstIsConstStr := len(args) >= 1 && args[0].Kind == absdom.KStrConst
	firstConstData := len(args) >= 1 && args[0].IsConst()
	switch class {
	case "Base64", "Hex", "DatatypeConverter", "BaseEncoding":
		switch method {
		case "decode", "decodeHex", "decodeBase64", "parseBase64Binary", "parseHexBinary":
			if firstConstData {
				return absdom.ConstByteArr(), true
			}
			return absdom.TopByteArr(), true
		case "encode", "encodeHex", "encodeBase64", "printBase64Binary", "encodeToString":
			if firstConstData {
				return absdom.StrConst("<encoded>"), true
			}
			return absdom.TopStr(), true
		}
	case "Integer", "Long", "Short":
		if method == "parseInt" || method == "parseLong" || method == "valueOf" {
			if firstIsConstStr {
				return absdom.IntConst(args[0].Payload), true
			}
			return absdom.TopInt(), true
		}
	case "String":
		if method == "valueOf" && len(args) == 1 {
			if args[0].Kind == absdom.KIntConst || args[0].Kind == absdom.KBoolConst {
				return absdom.StrConst(args[0].Payload), true
			}
			return absdom.TopStr(), true
		}
	case "Arrays":
		switch method {
		case "copyOf", "copyOfRange", "clone":
			if firstConstData {
				return args[0], true
			}
			if len(args) >= 1 {
				return args[0], true // preserve the ⊤ family too
			}
		}
	}
	return absdom.Value{}, false
}

// foldDecoderChain handles Base64.getDecoder().decode(x) /
// Base64.getEncoder().encodeToString(x) — the decoder object itself is
// opaque, but the chain's constness is determined by x.
func (an *analyzer) foldDecoderChain(c *javaast.Call, args []absdom.Value, st *absdom.State, fr *frame, depth int) (absdom.Value, bool) {
	inner, ok := c.Recv.(*javaast.Call)
	if !ok {
		return absdom.Value{}, false
	}
	qual, ok := flattenName(inner.Recv)
	if !ok || lastSegment(qual) != "Base64" || an.isShadowed("Base64", st, fr) {
		return absdom.Value{}, false
	}
	switch inner.Name {
	case "getDecoder", "getUrlDecoder", "getMimeDecoder":
		if c.Name == "decode" {
			if len(args) >= 1 && args[0].IsConst() {
				return absdom.ConstByteArr(), true
			}
			return absdom.TopByteArr(), true
		}
	case "getEncoder", "getUrlEncoder", "getMimeEncoder":
		if c.Name == "encodeToString" || c.Name == "encode" {
			if len(args) >= 1 && args[0].IsConst() {
				return absdom.StrConst("<encoded>"), true
			}
			return absdom.TopStr(), true
		}
	}
	return absdom.Value{}, false
}

// foldStringMethod evaluates pure java.lang.String methods on constant
// receivers, keeping configuration strings precise through common
// manipulations like ("aes/" + mode).toUpperCase().
func foldStringMethod(s, method string, args []absdom.Value) absdom.Value {
	strArg := func(i int) (string, bool) {
		if i < len(args) && args[i].Kind == absdom.KStrConst {
			return args[i].Payload, true
		}
		return "", false
	}
	intArg := func(i int) (int64, bool) {
		if i < len(args) {
			return parseInt(args[i])
		}
		return 0, false
	}
	switch method {
	case "toUpperCase":
		if len(args) == 0 {
			return absdom.StrConst(strings.ToUpper(s))
		}
	case "toLowerCase":
		if len(args) == 0 {
			return absdom.StrConst(strings.ToLower(s))
		}
	case "trim", "strip":
		if len(args) == 0 {
			return absdom.StrConst(strings.TrimSpace(s))
		}
	case "intern", "toString":
		if len(args) == 0 {
			return absdom.StrConst(s)
		}
	case "concat":
		if a, ok := strArg(0); ok {
			return absdom.StrConst(s + a)
		}
	case "replace":
		if from, ok := strArg(0); ok {
			if to, ok2 := strArg(1); ok2 {
				return absdom.StrConst(strings.ReplaceAll(s, from, to))
			}
		}
	case "substring":
		if lo, ok := intArg(0); ok && lo >= 0 && lo <= int64(len(s)) {
			if len(args) == 1 {
				return absdom.StrConst(s[lo:])
			}
			if hi, ok2 := intArg(1); ok2 && hi >= lo && hi <= int64(len(s)) {
				return absdom.StrConst(s[lo:hi])
			}
		}
	case "length":
		if len(args) == 0 {
			return intVal(int64(len(s)))
		}
	case "isEmpty":
		if len(args) == 0 {
			return absdom.BoolConst(len(s) == 0)
		}
	case "equals", "equalsIgnoreCase":
		if a, ok := strArg(0); ok {
			if method == "equals" {
				return absdom.BoolConst(s == a)
			}
			return absdom.BoolConst(strings.EqualFold(s, a))
		}
		return absdom.TopInt()
	case "startsWith":
		if a, ok := strArg(0); ok {
			return absdom.BoolConst(strings.HasPrefix(s, a))
		}
		return absdom.TopInt()
	case "getBytes":
		return absdom.ConstByteArr() // bytes of a constant string are constant
	case "toCharArray":
		return absdom.ConstByteArr() // chars of a constant (e.g. a hard-coded password)
	case "split":
		return absdom.TopStrArr()
	}
	return absdom.TopObj("")
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

func foldBinary(op string, l, r absdom.Value) absdom.Value {
	if op == "+" {
		if l.Kind == absdom.KStrConst && r.Kind == absdom.KStrConst {
			return absdom.StrConst(l.Payload + r.Payload)
		}
		if l.Kind == absdom.KStrConst && (r.Kind == absdom.KIntConst || r.Kind == absdom.KBoolConst) {
			return absdom.StrConst(l.Payload + r.Payload)
		}
		if r.Kind == absdom.KStrConst && (l.Kind == absdom.KIntConst || l.Kind == absdom.KBoolConst) {
			return absdom.StrConst(l.Payload + r.Payload)
		}
		if isStringy(l) || isStringy(r) {
			return absdom.TopStr()
		}
	}
	li, lok := parseInt(l)
	ri, rok := parseInt(r)
	if lok && rok {
		switch op {
		case "+":
			return intVal(li + ri)
		case "-":
			return intVal(li - ri)
		case "*":
			return intVal(li * ri)
		case "/":
			if ri != 0 {
				return intVal(li / ri)
			}
		case "%":
			if ri != 0 {
				return intVal(li % ri)
			}
		case "<<":
			if ri >= 0 && ri < 64 {
				return intVal(li << uint(ri))
			}
		case ">>":
			if ri >= 0 && ri < 64 {
				return intVal(li >> uint(ri))
			}
		case "&":
			return intVal(li & ri)
		case "|":
			return intVal(li | ri)
		case "^":
			return intVal(li ^ ri)
		case "==":
			return absdom.BoolConst(li == ri)
		case "!=":
			return absdom.BoolConst(li != ri)
		case "<":
			return absdom.BoolConst(li < ri)
		case "<=":
			return absdom.BoolConst(li <= ri)
		case ">":
			return absdom.BoolConst(li > ri)
		case ">=":
			return absdom.BoolConst(li >= ri)
		}
	}
	switch op {
	case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
		return absdom.TopInt()
	}
	if isBytey(l) || isBytey(r) {
		return absdom.TopByte()
	}
	return absdom.TopInt()
}

func foldUnary(op string, v absdom.Value) absdom.Value {
	switch op {
	case "-":
		if i, ok := parseInt(v); ok {
			return intVal(-i)
		}
		return absdom.TopInt()
	case "+":
		return v
	case "!":
		if v.Kind == absdom.KBoolConst {
			return absdom.BoolConst(v.Payload != "true")
		}
		return absdom.TopInt()
	case "~":
		if i, ok := parseInt(v); ok {
			return intVal(^i)
		}
		return absdom.TopInt()
	case "++", "--":
		return absdom.TopInt()
	}
	return v
}

func isStringy(v absdom.Value) bool {
	return v.Kind == absdom.KStrConst || v.Kind == absdom.KTopStr
}

func isBytey(v absdom.Value) bool {
	return v.Kind == absdom.KConstByte || v.Kind == absdom.KTopByte
}

func parseInt(v absdom.Value) (int64, bool) {
	if v.Kind != absdom.KIntConst {
		return 0, false
	}
	s := v.Payload
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return i, true
	}
	return 0, false
}

func intVal(i int64) absdom.Value {
	return absdom.IntConst(strconv.FormatInt(i, 10))
}
