package analysis

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/summary"
)

// renderResult flattens a Result into a canonical string: every abstract
// object in discovery order with its ID, type, site, and deduplicated event
// keys. Two runs producing the same rendering made the same observations in
// the same order — the equivalence the summary layer must preserve.
func renderResult(r *Result) string {
	var sb strings.Builder
	for _, o := range r.Objs {
		fmt.Fprintf(&sb, "#%d %s @%d:%d\n", o.ID, o.Type, o.Site.Line, o.Site.Col)
		for _, e := range r.Uses[o] {
			fmt.Fprintf(&sb, "  %s\n", e.Key())
		}
	}
	return sb.String()
}

// analyzeWith runs src twice — summaries off and on (fresh table) — and
// fails the test unless the results are identical. It returns the
// summaries-on rendering and the registry that collected summary.* counters.
func analyzeWith(t *testing.T, src string) (string, *obs.Registry) {
	t.Helper()
	off := renderResult(AnalyzeSource(src, Options{}))
	reg := obs.NewRegistry()
	tbl := summary.NewTable(nil, reg)
	on := renderResult(AnalyzeSource(src, Options{Summaries: tbl}))
	if on != off {
		t.Errorf("summaries-on result diverges from summaries-off:\n--- off ---\n%s--- on ---\n%s", off, on)
	}
	return on, reg
}

const helperForkSrc = `
class C {
    void run(boolean flag) {
        Cipher a;
        if (flag) {
            a = make("AES/CBC/PKCS5Padding");
        } else {
            a = make("AES/CBC/PKCS5Padding");
        }
        a.init(Cipher.ENCRYPT_MODE, key);
    }
    Cipher make(String t) {
        return Cipher.getInstance(t);
    }
    void other() {
        Cipher b = make("AES/CBC/PKCS5Padding");
    }
}
`

// TestSummaryHitWithinAnalyzer checks the core memoization win: the same
// helper invoked with the same abstract arguments and field context is
// executed once and replayed afterwards, with identical results.
func TestSummaryHitWithinAnalyzer(t *testing.T) {
	_, reg := analyzeWith(t, helperForkSrc)
	hits := reg.Counter("summary.hits").Value()
	misses := reg.Counter("summary.misses").Value()
	if hits < 1 {
		t.Errorf("summary.hits = %d, want >= 1 (make is called three times with identical key)", hits)
	}
	if misses < 1 {
		t.Errorf("summary.misses = %d, want >= 1 (first call must record)", misses)
	}
}

// TestSummaryCrossAnalyzerSharing checks the mining-run tier: a table shared
// across analyses of the same program serves the second analysis from
// memory, and the replayed result is identical to the cold one.
func TestSummaryCrossAnalyzerSharing(t *testing.T) {
	reg := obs.NewRegistry()
	tbl := summary.NewTable(nil, reg)
	first := renderResult(AnalyzeSource(helperForkSrc, Options{Summaries: tbl}))
	h0 := reg.Counter("summary.hits").Value()
	second := renderResult(AnalyzeSource(helperForkSrc, Options{Summaries: tbl}))
	if second != first {
		t.Errorf("warm analysis diverges from cold:\n--- cold ---\n%s--- warm ---\n%s", first, second)
	}
	if h1 := reg.Counter("summary.hits").Value(); h1 <= h0 {
		t.Errorf("summary.hits after warm run = %d, want > %d (second analyzer must replay)", h1, h0)
	}
}

// TestSummaryPersistedThroughArtifactStore checks the disk tier: entries
// written through one table are found by a fresh table attached to the same
// artifact store, so warm corpus re-runs replay helpers recorded by earlier
// processes.
func TestSummaryPersistedThroughArtifactStore(t *testing.T) {
	store := artifact.New(artifact.Config{Dir: t.TempDir()})
	reg1 := obs.NewRegistry()
	first := renderResult(AnalyzeSource(helperForkSrc, Options{Summaries: summary.NewTable(store, reg1)}))

	reg2 := obs.NewRegistry()
	second := renderResult(AnalyzeSource(helperForkSrc, Options{Summaries: summary.NewTable(store, reg2)}))
	if second != first {
		t.Errorf("store-warmed analysis diverges:\n--- cold ---\n%s--- warm ---\n%s", first, second)
	}
	if hits := reg2.Counter("summary.hits").Value(); hits < 1 {
		t.Errorf("summary.hits with fresh table over shared store = %d, want >= 1", hits)
	}
}

// TestSummaryRecursionWidensToTop: a directly recursive helper must
// converge via the cycle guard (widening to the callee's declared-type Top)
// instead of looping, must count summary.cycles, and must produce exactly
// the summaries-off result.
func TestSummaryRecursionWidensToTop(t *testing.T) {
	src := `
class C {
    void run() {
        Cipher c = Cipher.getInstance(depth("AES", 3));
    }
    String depth(String s, int n) {
        if (n > 0) {
            return depth(s, n - 1);
        }
        return s;
    }
}
`
	_, reg := analyzeWith(t, src)
	if cy := reg.Counter("summary.cycles").Value(); cy < 1 {
		t.Errorf("summary.cycles = %d, want >= 1 (depth recurses)", cy)
	}
}

// TestSummaryMutualRecursion: a two-method recursive SCC converges the same
// way — each member's recursive re-entry widens, the pair still analyzes,
// and results match the summaries-off interpreter.
func TestSummaryMutualRecursion(t *testing.T) {
	src := `
class C {
    void run() {
        Cipher c = Cipher.getInstance(ping("AES"));
        c.init(Cipher.ENCRYPT_MODE, key);
    }
    String ping(String s) {
        return pong(s);
    }
    String pong(String s) {
        return ping(s);
    }
}
`
	_, reg := analyzeWith(t, src)
	if cy := reg.Counter("summary.cycles").Value(); cy < 1 {
		t.Errorf("summary.cycles = %d, want >= 1 (ping/pong form a recursive SCC)", cy)
	}
}

// deepChainSrc threads the weak algorithm constant "DES" through a six-deep
// helper chain before it reaches Cipher.getInstance. At the default
// MaxInline of 4 the legacy interpreter abandons the chain at h4, so the
// sink only ever runs in the unexecuted-method sweep with Top parameters —
// the misuse is invisible. Summaries replace the depth cliff with cycle
// detection, so the constant flows all the way down.
const deepChainSrc = `
class Deep {
    void entry() {
        h1("DES");
    }
    void h1(String a) { h2(a); }
    void h2(String a) { h3(a); }
    void h3(String a) { h4(a); }
    void h4(String a) { h5(a); }
    void h5(String a) { h6(a); }
    void h6(String a) {
        Cipher c = Cipher.getInstance(a);
    }
}
`

// TestSummaryLiftsDepthCliff pins the motivating behavior change: the
// depth-6 DES misuse is undetectable under the MaxInline=4 cliff and
// detected with summaries on.
func TestSummaryLiftsDepthCliff(t *testing.T) {
	off := AnalyzeSource(deepChainSrc, Options{})
	ciphers := off.ObjsOfType("Cipher")
	if len(ciphers) != 1 {
		t.Fatalf("summaries-off cipher objects = %d, want 1 (the sweep still reaches h6)", len(ciphers))
	}
	if findEvent(off, ciphers[0], `Cipher.getInstance "DES"`) {
		t.Fatalf("summaries-off unexpectedly sees the DES constant at depth 6: %v", evKeys(off, ciphers[0]))
	}

	on := AnalyzeSource(deepChainSrc, Options{Summaries: summary.NewTable(nil, obs.NewRegistry())})
	ciphers = on.ObjsOfType("Cipher")
	if len(ciphers) != 1 {
		t.Fatalf("summaries-on cipher objects = %d, want 1", len(ciphers))
	}
	if !findEvent(on, ciphers[0], `Cipher.getInstance "DES"`) {
		t.Errorf("summaries-on misses the DES constant at depth 6: %v", evKeys(on, ciphers[0]))
	}
}

// TestSummaryDepthCliffRespectsMaxInlineOff re-pins the legacy contract:
// with summaries off, raising -max-inline past the chain depth is the only
// way to see through it.
func TestSummaryDepthCliffRespectsMaxInlineOff(t *testing.T) {
	r := AnalyzeSource(deepChainSrc, Options{MaxInline: 8})
	ciphers := r.ObjsOfType("Cipher")
	if len(ciphers) != 1 {
		t.Fatalf("cipher objects = %d, want 1", len(ciphers))
	}
	if !findEvent(r, ciphers[0], `Cipher.getInstance "DES"`) {
		t.Errorf("MaxInline=8 without summaries misses the constant: %v", evKeys(r, ciphers[0]))
	}
}

// TestSummaryEquivalenceOnPaperExamples replays the package's existing
// fixture sources under summaries and requires byte-identical results —
// object IDs, discovery order, and deduplicated event streams.
func TestSummaryEquivalenceOnPaperExamples(t *testing.T) {
	for name, src := range map[string]string{
		"newVersion": newVersionSrc,
		"oldVersion": oldVersionSrc,
	} {
		t.Run(name, func(t *testing.T) { analyzeWith(t, src) })
	}
}

// TestSummaryProvenanceStillLiftsDepth: with provenance on, memoization is
// disabled (entries carry no provenance) but the depth lift must still
// apply, so -why and plain runs agree on which violations exist.
func TestSummaryProvenanceStillLiftsDepth(t *testing.T) {
	reg := obs.NewRegistry()
	r := AnalyzeSource(deepChainSrc, Options{
		Summaries:  summary.NewTable(nil, reg),
		Provenance: true,
	})
	ciphers := r.ObjsOfType("Cipher")
	if len(ciphers) != 1 {
		t.Fatalf("cipher objects = %d, want 1", len(ciphers))
	}
	if !findEvent(r, ciphers[0], `Cipher.getInstance "DES"`) {
		t.Errorf("provenance-on summaries mode misses the depth-6 constant: %v", evKeys(r, ciphers[0]))
	}
	if hits := reg.Counter("summary.hits").Value(); hits != 0 {
		t.Errorf("summary.hits = %d with provenance on, want 0 (memoization must be off)", hits)
	}
}

// outerGuardSrc builds the cycle-context replay chain the OuterGuard
// machinery exists for. Under entry's first call, x records h while x is on
// the stack, so h's summary embeds the x-recursion widening and carries
// OuterGuard=[x]; x then records g, whose execution *replays* h rather than
// running it. The replay must propagate h's guard into g's in-flight
// recording — otherwise g is memoized guard-free and entry's direct g()
// call replays the embedded widening where live execution runs x("Q")'s
// body (whose Cipher.getInstance("Q") event is the observable difference).
const outerGuardSrc = `
class C {
    void entry() {
        x("P");
        g();
    }
    void x(String s) {
        Cipher c = Cipher.getInstance(s);
        h();
        g();
    }
    String g() {
        return h();
    }
    String h() {
        x("Q");
        return "k";
    }
}
`

// TestSummaryOuterGuardPropagatesThroughReplay is the regression test for
// guard inheritance across replays: a summary recorded while replaying a
// cycle-dependent summary must itself be cycle-dependent, so calling the
// outer helper without the cycle on the stack executes live and matches the
// summaries-off interpreter exactly.
func TestSummaryOuterGuardPropagatesThroughReplay(t *testing.T) {
	_, reg := analyzeWith(t, outerGuardSrc)
	if cy := reg.Counter("summary.cycles").Value(); cy < 1 {
		t.Errorf("summary.cycles = %d, want >= 1 (h widens against x)", cy)
	}

	// The sharp end: the "Q" event only exists if entry's g() ran live.
	r := AnalyzeSource(outerGuardSrc, Options{Summaries: summary.NewTable(nil, obs.NewRegistry())})
	ciphers := r.ObjsOfType("Cipher")
	if len(ciphers) != 1 {
		t.Fatalf("cipher objects = %d, want 1", len(ciphers))
	}
	if !findEvent(r, ciphers[0], `Cipher.getInstance "Q"`) {
		t.Errorf("g() outside the x-cycle replayed the embedded widening instead of executing live: %v",
			evKeys(r, ciphers[0]))
	}
}

// TestResolveSummaryRejectsCorruptEntries: malformed disk artifacts must
// read as misses, including a negative step count that would otherwise
// corrupt the analyzer's budget accounting on replay.
func TestResolveSummaryRejectsCorruptEntries(t *testing.T) {
	prog := ParseProgram(map[string]string{"C.java": "class C { void run() {} }"})
	an := newAnalyzer(prog, Options{}.withDefaults())
	for name, e := range map[string]*summary.Entry{
		"negativeSteps": {Steps: -1},
		"negativeAlloc": {NAlloc: -1},
		"allocOverrun":  {NAlloc: 1},
		"badEventObj":   {Events: []summary.PEvent{{Obj: 2}}},
	} {
		if rs := an.resolveSummary(e); rs != nil {
			t.Errorf("%s: resolveSummary accepted corrupt entry %+v", name, e)
		}
	}
}

// TestEntryMethodArityOverload is the regression test for the entry-method
// heuristic: a 2-arg overload that no call resolves to must stay an entry
// method even though its 1-arg sibling is called — name-only matching used
// to demote it.
func TestEntryMethodArityOverload(t *testing.T) {
	src := `
class C {
    void run() {
        help("AES");
    }
    Cipher help(String t) {
        return Cipher.getInstance(t);
    }
    Cipher help(String t, String mode) {
        return Cipher.getInstance(t + "/" + mode);
    }
}
`
	prog := ParseProgram(map[string]string{"C.java": src})
	an := newAnalyzer(prog, Options{}.withDefaults())
	ci := an.classes["C"]
	if ci == nil {
		t.Fatal("class C not indexed")
	}
	var entries []string
	for _, m := range an.entryMethods(ci) {
		entries = append(entries, fmt.Sprintf("%s/%d", m.Name, len(m.Params)))
	}
	want := map[string]bool{"run/0": true, "help/2": true}
	if len(entries) != len(want) {
		t.Fatalf("entry methods = %v, want run/0 and help/2", entries)
	}
	for _, e := range entries {
		if !want[e] {
			t.Errorf("unexpected entry method %s (want run/0 and help/2)", e)
		}
	}
}
