package analysis

// Summary-based interprocedural analysis (DESIGN.md §14). With a summary
// table attached (Options.Summaries), inlineCall consults memoized
// per-method summaries before executing a callee. A summary captures one
// callee execution as a portable effect triple — return abstraction,
// field/heap post-state, ordered crypto-API event attempts — keyed by
// everything the execution could observe: the whole-program source
// fingerprint, the callee's identity, the abstract arguments, the
// field/heap context, and the execution-shaping options (MaxStates). The
// caller's locals are deliberately outside the key: branch forks that
// differ only in locals share one summary, which is where the re-inlining
// tax is paid today.
//
// Exactness argument: the key pins the program bytes and the full abstract
// input, and the interpreter is deterministic, so a recorded entry is a
// faithful log of exactly the execution a live call would perform. Replay
// re-runs the log through the same primitives the live interpreter uses
// (allocObjAt, record, markExecuted, stepN), so analyzer-global effects —
// allocation order, event attempt order, executed marks, step cost — land
// as if the callee had run, and nested recordings observe replays exactly
// as they observe live execution. Two divergences are accepted. First, step
// accounting around the static-field constant cache: a replay charges the
// recorded cost while a live re-call would hit the warm cache, which can
// shift budget-exhaustion boundaries (never results) under -budget. Second,
// the maxLiftedInline backstop: a replay does not consume inline-stack
// depth, so within maxLiftedInline frames of the backstop a warm hit can
// stand in for a call that a cold run would have widened to Top — reachable
// only on degenerate programs whose distinct-method call chains exceed 512
// frames (depth is deliberately outside the key; putting it in would
// fragment the table per call depth).
//
// Cycle policy: with summaries on, the MaxInline depth cliff is replaced by
// cycle detection — a recursive call (direct or through a SCC) widens to
// the callee's ⊤ return, which is a post-fixpoint of the recursive
// equation, so convergence is immediate. A recording whose execution hit
// the guard against a method *outside* its own frame records that method as
// an OuterGuard: the entry is replayed only under callers that still have
// it on the stack (and, dually, never while any method the recording
// executed as a fresh frame is on the stack).

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/absdom"
	"repro/internal/artifact"
	"repro/internal/javaast"
	"repro/internal/summary"
)

// maxLiftedInline is the backstop inlining bound with summaries on. Cycle
// detection already bounds the stack by the number of distinct methods;
// this only guards degenerate programs with thousands of distinct nested
// calls (the step budget remains the real safety valve).
const maxLiftedInline = 512

// recEvent is one teed pre-dedup event attempt.
type recEvent struct {
	obj *absdom.AObj
	ev  Event
}

// recActive is an in-flight summary recording. The analyzer's tee points
// (allocObjAt, record, markExecuted, noteCycle, the steps counter) feed
// every active recording, so nested recordings and nested replays compose
// without special cases.
type recActive struct {
	startIdx   int // inline stack depth when the recording began
	startSteps int64
	allocs     []*absdom.AObj
	events     []recEvent
	executed   []*javaast.MethodDecl
	executedIn map[*javaast.MethodDecl]bool
	outer      []*javaast.MethodDecl
	outerIn    map[*javaast.MethodDecl]bool
}

// resolvedSum is a summary entry rebound against this analyzer: methods and
// pre-existing objects resolved eagerly (side-effect free, so a validity
// miss costs nothing), values and events materialized on first apply.
type resolvedSum struct {
	entry   *summary.Entry
	execMs  []*javaast.MethodDecl
	outer   []*javaast.MethodDecl
	refObjs []*absdom.AObj // Sites[NAlloc:], resolved

	materialized bool
	objs         []*absdom.AObj
	events       []recEvent
	fields       map[string]absdom.Value
	heap         map[*absdom.AObj]map[string]absdom.Value
	ret          absdom.Value
}

// markExecuted marks a method executed and tees the mark into in-flight
// recordings (replays must reproduce it — the run() sweep phase skips
// executed methods).
func (an *analyzer) markExecuted(m *javaast.MethodDecl) {
	an.executed[m] = true
	for _, r := range an.recs {
		if !r.executedIn[m] {
			r.executedIn[m] = true
			r.executed = append(r.executed, m)
		}
	}
}

// noteCycle records that a call to m hit the recursion guard: summary.cycles
// telemetry, plus an OuterGuard mark on every recording that began after m
// was pushed (the widening depended on stack context outside that frame).
func (an *analyzer) noteCycle(stackIdx int, m *javaast.MethodDecl) {
	an.sums.Cycle()
	for _, r := range an.recs {
		if stackIdx < r.startIdx && !r.outerIn[m] {
			r.outerIn[m] = true
			r.outer = append(r.outer, m)
		}
	}
}

// inlineMemo is inlineCall's summaries path: consult the table, replay on a
// valid hit, otherwise execute live under a fresh recording and memoize the
// result.
func (an *analyzer) inlineMemo(ci *classInfo, m *javaast.MethodDecl, args []absdom.Value, st *absdom.State, depth int) absdom.Value {
	key, ok := an.summaryKey(ci, m, args, st)
	if !ok {
		return an.inlineLive(ci, m, args, st, depth)
	}
	if rs := an.lookupSummary(key); rs != nil && an.summaryValid(rs) {
		an.sums.Hit()
		return an.applySummary(rs, st)
	}
	an.sums.Miss()
	rec := &recActive{
		startIdx:   len(an.inlineStack),
		startSteps: an.steps,
		executedIn: map[*javaast.MethodDecl]bool{},
		outerIn:    map[*javaast.MethodDecl]bool{},
	}
	an.recs = append(an.recs, rec)
	ret := an.inlineLive(ci, m, args, st, depth)
	// On a budget panic the unwind abandons the partial recording with the
	// analyzer — entries are only ever inserted for completed executions.
	an.recs = an.recs[:len(an.recs)-1]
	an.finishRecording(rec, key, ret, st)
	return ret
}

// summaryKey renders the memoization key for calling m with args under st's
// field/heap context. ok is false when the call cannot be keyed portably
// (an object without a site, a method not reachable through the class
// index) — such calls fall back to live execution.
func (an *analyzer) summaryKey(ci *classInfo, m *javaast.MethodDecl, args []absdom.Value, st *absdom.State) (artifact.Key, bool) {
	pm, ok := an.methodPRef(m)
	if !ok {
		return artifact.Key{}, false
	}
	var sb strings.Builder
	for _, a := range args {
		if !an.renderValue(&sb, a) {
			return artifact.Key{}, false
		}
		sb.WriteByte(0x1e)
	}
	argsFP := sb.String()
	sb.Reset()

	names := make([]string, 0, len(st.Fields))
	for k := range st.Fields {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		sb.WriteString(k)
		sb.WriteByte(0x1f)
		if !an.renderValue(&sb, st.Fields[k]) {
			return artifact.Key{}, false
		}
		sb.WriteByte(0x1e)
	}
	sb.WriteByte(0x1d)
	type heapEnt struct {
		sk siteKey
		o  *absdom.AObj
	}
	hs := make([]heapEnt, 0, len(st.Heap))
	for o := range st.Heap {
		sk, ok := an.siteOf[o]
		if !ok {
			return artifact.Key{}, false
		}
		hs = append(hs, heapEnt{sk, o})
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].sk.file != hs[j].sk.file {
			return hs[i].sk.file < hs[j].sk.file
		}
		return hs[i].sk.offset < hs[j].sk.offset
	})
	for _, h := range hs {
		fmt.Fprintf(&sb, "@%d:%d", h.sk.file, h.sk.offset)
		sb.WriteByte(0x1f)
		fields := st.Heap[h.o]
		fnames := make([]string, 0, len(fields))
		for k := range fields {
			fnames = append(fnames, k)
		}
		sort.Strings(fnames)
		for _, k := range fnames {
			sb.WriteString(k)
			sb.WriteByte(0x1f)
			if !an.renderValue(&sb, fields[k]) {
				return artifact.Key{}, false
			}
			sb.WriteByte(0x1e)
		}
		sb.WriteByte(0x1d)
	}
	ctxFP := sb.String()
	return artifact.NewKey(artifact.KindSummary,
		an.prog.SourceFP, pm.Class, strconv.Itoa(pm.Index), argsFP, ctxFP, an.sumOptsFP), true
}

// renderValue appends a value's unambiguous fingerprint form (payloads are
// length-prefixed; objects render as their allocation site). Provenance is
// excluded by design — it is observation-only.
func (an *analyzer) renderValue(sb *strings.Builder, v absdom.Value) bool {
	fmt.Fprintf(sb, "%d\x1f%d:%s\x1f%s", int(v.Kind), len(v.Payload), v.Payload, v.Type)
	if v.Kind == absdom.KObj {
		sk, ok := an.siteOf[v.Obj]
		if !ok {
			return false
		}
		fmt.Fprintf(sb, "\x1f@%d:%d", sk.file, sk.offset)
	}
	return true
}

// methodPRef names a method portably: (declaring class name, index in its
// declaration list), built lazily from the class index.
func (an *analyzer) methodPRef(m *javaast.MethodDecl) (summary.PMethod, bool) {
	if an.methodRef == nil {
		an.methodRef = map[*javaast.MethodDecl]summary.PMethod{}
		for name, ci := range an.classes {
			for i, md := range ci.decl.Methods {
				an.methodRef[md] = summary.PMethod{Class: name, Index: i}
			}
		}
	}
	pm, ok := an.methodRef[m]
	return pm, ok
}

func (an *analyzer) resolveMethod(pm summary.PMethod) *javaast.MethodDecl {
	ci := an.classes[pm.Class]
	if ci == nil || pm.Index < 0 || pm.Index >= len(ci.decl.Methods) {
		return nil
	}
	return ci.decl.Methods[pm.Index]
}

// lookupSummary fetches and rebinds the entry for key, caching the resolved
// form per analyzer. The cache is keyed by the entry itself, not the lookup
// key: the table may replace a cycle-context entry with a guard-free
// recording under the same key, and the replacement must be picked up here
// rather than shadowed by a stale resolution. Resolution is side-effect
// free; an entry whose referenced sites or methods don't resolve here reads
// as a miss.
func (an *analyzer) lookupSummary(key artifact.Key) *resolvedSum {
	e := an.sums.Lookup(key)
	if e == nil {
		return nil
	}
	if rs, ok := an.localSums[e]; ok {
		return rs
	}
	rs := an.resolveSummary(e)
	if rs == nil {
		return nil
	}
	an.localSums[e] = rs
	an.sums.Instantiation()
	return rs
}

// resolveSummary rebinds an entry's method and pre-existing-object
// references against this analyzer and validates the entry's internal
// indices (a malformed disk artifact reads as a miss, never a panic).
func (an *analyzer) resolveSummary(e *summary.Entry) *resolvedSum {
	if e.Steps < 0 || e.NAlloc < 0 || e.NAlloc > len(e.Sites) {
		return nil
	}
	okIdx := func(i int) bool { return i >= 1 && i <= len(e.Sites) }
	okVal := func(pv summary.PValue) bool { return pv.Obj == 0 || okIdx(pv.Obj) }
	for _, pe := range e.Events {
		if !okIdx(pe.Obj) {
			return nil
		}
		for _, pa := range pe.Args {
			if !okVal(pa) {
				return nil
			}
		}
	}
	for _, pv := range e.Fields {
		if !okVal(pv) {
			return nil
		}
	}
	for _, h := range e.Heap {
		if !okIdx(h.Obj) {
			return nil
		}
		for _, pv := range h.Fields {
			if !okVal(pv) {
				return nil
			}
		}
	}
	if e.Ret != nil && !okVal(*e.Ret) {
		return nil
	}
	rs := &resolvedSum{entry: e}
	for _, pm := range e.Executed {
		m := an.resolveMethod(pm)
		if m == nil {
			return nil
		}
		rs.execMs = append(rs.execMs, m)
	}
	for _, pm := range e.OuterGuard {
		m := an.resolveMethod(pm)
		if m == nil {
			return nil
		}
		rs.outer = append(rs.outer, m)
	}
	for _, s := range e.Sites[e.NAlloc:] {
		o := an.sites[siteKey{file: s.File, offset: s.Pos.Offset}]
		if o == nil {
			return nil
		}
		rs.refObjs = append(rs.refObjs, o)
	}
	return rs
}

func (an *analyzer) onStack(m *javaast.MethodDecl) bool {
	for _, on := range an.inlineStack {
		if on == m {
			return true
		}
	}
	return false
}

// summaryValid checks the entry against the current inline stack: every
// OuterGuard method must still be on it (the recorded widening re-applies),
// and no method the recording executed as a fresh frame may be on it (live
// execution would widen where the recording recursed).
func (an *analyzer) summaryValid(rs *resolvedSum) bool {
	for _, m := range rs.outer {
		if !an.onStack(m) {
			return false
		}
	}
	for _, m := range rs.execMs {
		if an.onStack(m) {
			return false
		}
	}
	return true
}

// applySummary replays a resolved entry: bulk-charge the recorded step
// cost, re-run the allocation and event-attempt logs through the live
// primitives (which tee into any outer recording), mark executed methods,
// install the recorded field/heap post-state, and return the recorded
// return abstraction.
func (an *analyzer) applySummary(rs *resolvedSum, st *absdom.State) absdom.Value {
	e := rs.entry
	an.stepN(e.Steps)
	// The entry's outer guards replay too: a live execution here would hit
	// the recursion guard against each of them, so every in-flight recording
	// that began after the guard method was pushed must inherit the mark —
	// otherwise an enclosing summary would be memoized guard-free and later
	// replay its embedded widening under callers without the cycle.
	// summaryValid guarantees each guard is on the stack.
	for _, m := range rs.outer {
		for i, on := range an.inlineStack {
			if on == m {
				an.noteCycle(i, m)
				break
			}
		}
	}
	if !rs.materialized {
		an.materializeSummary(rs)
	} else {
		for i := 0; i < e.NAlloc; i++ {
			s := e.Sites[i]
			an.allocObjAt(s.File, s.Pos, s.Type)
		}
	}
	for _, re := range rs.events {
		an.record(re.obj, re.ev)
	}
	for _, m := range rs.execMs {
		an.markExecuted(m)
	}
	st.Fields = cloneFieldMap(rs.fields)
	st.Heap = cloneHeapMap(rs.heap)
	return rs.ret
}

// materializeSummary fills the resolved entry's value templates, allocating
// the recorded first-touch sites in order (idempotent on later applies).
func (an *analyzer) materializeSummary(rs *resolvedSum) {
	e := rs.entry
	rs.objs = make([]*absdom.AObj, len(e.Sites))
	for i := 0; i < e.NAlloc; i++ {
		s := e.Sites[i]
		rs.objs[i] = an.allocObjAt(s.File, s.Pos, s.Type)
	}
	copy(rs.objs[e.NAlloc:], rs.refObjs)
	for _, pe := range e.Events {
		ev := Event{Sig: pe.Sig, File: pe.File, Pos: pe.Pos}
		if len(pe.Args) > 0 {
			ev.Args = make([]absdom.Value, len(pe.Args))
			for i, pa := range pe.Args {
				ev.Args[i] = rs.value(pa)
			}
		}
		rs.events = append(rs.events, recEvent{obj: rs.objs[pe.Obj-1], ev: ev})
	}
	if len(e.Fields) > 0 {
		rs.fields = make(map[string]absdom.Value, len(e.Fields))
		for k, pv := range e.Fields {
			rs.fields[k] = rs.value(pv)
		}
	}
	if len(e.Heap) > 0 {
		rs.heap = make(map[*absdom.AObj]map[string]absdom.Value, len(e.Heap))
		for _, h := range e.Heap {
			fm := make(map[string]absdom.Value, len(h.Fields))
			for k, pv := range h.Fields {
				fm[k] = rs.value(pv)
			}
			rs.heap[rs.objs[h.Obj-1]] = fm
		}
	}
	if e.Ret != nil {
		rs.ret = rs.value(*e.Ret)
	}
	rs.materialized = true
}

func (rs *resolvedSum) value(pv summary.PValue) absdom.Value {
	v := absdom.Value{Kind: absdom.Kind(pv.Kind), Payload: pv.Payload, Type: pv.Type}
	if pv.Obj > 0 {
		v.Obj = rs.objs[pv.Obj-1]
	}
	return v
}

func cloneFieldMap(m map[string]absdom.Value) map[string]absdom.Value {
	c := make(map[string]absdom.Value, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func cloneHeapMap(m map[*absdom.AObj]map[string]absdom.Value) map[*absdom.AObj]map[string]absdom.Value {
	c := make(map[*absdom.AObj]map[string]absdom.Value, len(m))
	for o, fs := range m {
		c[o] = cloneFieldMap(fs)
	}
	return c
}

// entryBuilder renders a completed recording into a portable entry. ok
// drops to false if anything cannot be named portably (the entry is then
// simply not memoized).
type entryBuilder struct {
	an  *analyzer
	e   *summary.Entry
	idx map[*absdom.AObj]int // 1-based site indices
	ok  bool
}

func (b *entryBuilder) siteIndex(o *absdom.AObj) int {
	if i, ok := b.idx[o]; ok {
		return i
	}
	sk, ok := b.an.siteOf[o]
	if !ok {
		b.ok = false
		return 0
	}
	b.e.Sites = append(b.e.Sites, summary.PSite{File: sk.file, Pos: o.Site, Type: o.Type})
	i := len(b.e.Sites)
	b.idx[o] = i
	return i
}

func (b *entryBuilder) value(v absdom.Value) summary.PValue {
	pv := summary.PValue{Kind: int(v.Kind), Payload: v.Payload, Type: v.Type}
	if v.Kind == absdom.KObj {
		pv.Obj = b.siteIndex(v.Obj)
	}
	return pv
}

// finishRecording renders rec into a portable entry and inserts it into the
// shared table. The post-state is read from st (the caller's state after
// the live call returned); ret is the live return value.
func (an *analyzer) finishRecording(rec *recActive, key artifact.Key, ret absdom.Value, st *absdom.State) {
	b := &entryBuilder{
		an:  an,
		e:   &summary.Entry{Steps: an.steps - rec.startSteps},
		idx: map[*absdom.AObj]int{},
		ok:  true,
	}
	for _, o := range rec.allocs {
		b.siteIndex(o)
	}
	b.e.NAlloc = len(b.e.Sites)
	for _, re := range rec.events {
		pe := summary.PEvent{Obj: b.siteIndex(re.obj), Sig: re.ev.Sig, File: re.ev.File, Pos: re.ev.Pos}
		for _, a := range re.ev.Args {
			pe.Args = append(pe.Args, b.value(a))
		}
		b.e.Events = append(b.e.Events, pe)
	}
	for _, m := range rec.executed {
		pm, ok := an.methodPRef(m)
		if !ok {
			return
		}
		b.e.Executed = append(b.e.Executed, pm)
	}
	for _, m := range rec.outer {
		pm, ok := an.methodPRef(m)
		if !ok {
			return
		}
		b.e.OuterGuard = append(b.e.OuterGuard, pm)
	}
	if len(st.Fields) > 0 {
		b.e.Fields = make(map[string]summary.PValue, len(st.Fields))
		for k, v := range st.Fields {
			b.e.Fields[k] = b.value(v)
		}
	}
	if len(st.Heap) > 0 {
		// Sort by site for deterministic entry bytes (the JSON payload is
		// content-addressed on disk).
		objs := make([]*absdom.AObj, 0, len(st.Heap))
		for o := range st.Heap {
			objs = append(objs, o)
		}
		ord := func(o *absdom.AObj) siteKey { return an.siteOf[o] }
		sort.Slice(objs, func(i, j int) bool {
			a, z := ord(objs[i]), ord(objs[j])
			if a.file != z.file {
				return a.file < z.file
			}
			return a.offset < z.offset
		})
		for _, o := range objs {
			fs := st.Heap[o]
			h := summary.PHeapObj{Obj: b.siteIndex(o), Fields: make(map[string]summary.PValue, len(fs))}
			for k, v := range fs {
				h.Fields[k] = b.value(v)
			}
			b.e.Heap = append(b.e.Heap, h)
		}
	}
	if ret.IsValid() {
		pv := b.value(ret)
		b.e.Ret = &pv
	}
	if !b.ok {
		return
	}
	an.sums.Insert(key, b.e)
}
