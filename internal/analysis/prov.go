package analysis

import (
	"repro/internal/absdom"
	"repro/internal/javaast"
)

// Provenance attach helpers. All of them are no-ops returning nil when
// tracking is off, and none of them concatenate: each attach site declares
// its label's constant fragments once as a LabelShape below and passes the
// dynamic names through, so the tracking-on hot loop pays a fraction of an
// arena allocation per step and zero string building. The helpers are
// deliberately non-variadic: a variadic prev parameter would allocate its
// slice at every call site even with tracking disabled.

// Label shapes of the attach sites (What() = Pre + n1 + Mid + n2 + Suf).
var (
	shParamOf       = &absdom.LabelShape{Pre: "parameter ", Mid: " of "}
	shField         = &absdom.LabelShape{Pre: "field "}
	shFieldNoInit   = &absdom.LabelShape{Pre: "field ", Suf: " (no initializer)"}
	shFieldUnbound  = &absdom.LabelShape{Pre: "field ", Mid: ".", Suf: " (unbound)"}
	shStaticField   = &absdom.LabelShape{Pre: "static field ", Mid: "."}
	shAssigned      = &absdom.LabelShape{Pre: "assigned to "}
	shAssignedField = &absdom.LabelShape{Pre: "assigned to field "}
	shOperator      = &absdom.LabelShape{Pre: "operator "}
	shCast          = &absdom.LabelShape{Pre: "cast to "}
	shInlined       = &absdom.LabelShape{Pre: "returned from inlined ", Suf: "(...)"}
	shInlinedQual   = &absdom.LabelShape{Pre: "returned from inlined ", Mid: ".", Suf: "(...)"}
	shCallQual      = &absdom.LabelShape{Mid: ".", Suf: "(...)"}
	shCallResult    = &absdom.LabelShape{Mid: ".", Suf: "(...) result"}
	shBase64        = &absdom.LabelShape{Pre: "Base64 ", Suf: "(...)"}
	shStringMethod  = &absdom.LabelShape{Pre: "String.", Suf: "(...)"}
	shNew           = &absdom.LabelShape{Pre: "new ", Suf: "(...)"}
	shNewArray      = &absdom.LabelShape{Pre: "new ", Suf: "[...] array"}
)

// prov0 records a root definition step (no predecessor) at node n.
func (an *analyzer) prov0(kind absdom.ProvKind, n javaast.Node, shape *absdom.LabelShape, name string) *absdom.Prov {
	if !an.provOn {
		return nil
	}
	p := n.Pos()
	return an.provArena.NewShape(kind, an.filePtr(), p.Line, p.Col, shape, name, "", nil, nil)
}

// prov1 records a definition step consuming one input value's history.
func (an *analyzer) prov1(kind absdom.ProvKind, n javaast.Node, shape *absdom.LabelShape, name string, prev *absdom.Prov) *absdom.Prov {
	if !an.provOn {
		return nil
	}
	p := n.Pos()
	return an.provArena.NewShape(kind, an.filePtr(), p.Line, p.Col, shape, name, "", prev, nil)
}

// prov2 records a definition step consuming two input histories.
func (an *analyzer) prov2(kind absdom.ProvKind, n javaast.Node, shape *absdom.LabelShape, name string, p0, p1 *absdom.Prov) *absdom.Prov {
	if !an.provOn {
		return nil
	}
	p := n.Pos()
	return an.provArena.NewShape(kind, an.filePtr(), p.Line, p.Col, shape, name, "", p0, p1)
}

// prov0x, prov1x, and prov2x are the two-name variants for labels like
// "parameter <p> of <m>" or "<class>.<method>(...)".
func (an *analyzer) prov0x(kind absdom.ProvKind, n javaast.Node, shape *absdom.LabelShape, n1, n2 string) *absdom.Prov {
	if !an.provOn {
		return nil
	}
	p := n.Pos()
	return an.provArena.NewShape(kind, an.filePtr(), p.Line, p.Col, shape, n1, n2, nil, nil)
}

func (an *analyzer) prov1x(kind absdom.ProvKind, n javaast.Node, shape *absdom.LabelShape, n1, n2 string, prev *absdom.Prov) *absdom.Prov {
	if !an.provOn {
		return nil
	}
	p := n.Pos()
	return an.provArena.NewShape(kind, an.filePtr(), p.Line, p.Col, shape, n1, n2, prev, nil)
}

func (an *analyzer) prov2x(kind absdom.ProvKind, n javaast.Node, shape *absdom.LabelShape, n1, n2 string, p0, p1 *absdom.Prov) *absdom.Prov {
	if !an.provOn {
		return nil
	}
	p := n.Pos()
	return an.provArena.NewShape(kind, an.filePtr(), p.Line, p.Col, shape, n1, n2, p0, p1)
}

// fileName resolves the analyzer's current file index to its source name.
func (an *analyzer) fileName() string {
	if an.curFile >= 0 && an.curFile < len(an.prog.Files) {
		return an.prog.Files[an.curFile].Name
	}
	return ""
}

// filePtr is fileName as the interned pointer provenance nodes store (nil
// out of range). Handing the same pointer to every step of a file keeps
// Prov nodes at one word for the file, not a copied string header.
func (an *analyzer) filePtr() *string {
	if an.curFile >= 0 && an.curFile < len(an.prog.Files) {
		return &an.prog.Files[an.curFile].Name
	}
	return nil
}

// argProvs picks up to two non-nil argument histories as the predecessors
// of a call-result step (fan-in is capped at absdom.MaxProvFanIn anyway).
func argProvs(args []absdom.Value) (p0, p1 *absdom.Prov) {
	for _, a := range args {
		if a.Prov == nil {
			continue
		}
		if p0 == nil {
			p0 = a.Prov
			continue
		}
		if a.Prov != p0 {
			p1 = a.Prov
			break
		}
	}
	return p0, p1
}
