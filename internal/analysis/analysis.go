// Package analysis implements the lightweight AST-based abstract interpreter
// of the paper's §5.1. It discovers allocation sites of target API classes,
// determines entry methods via a reverse call graph, and performs a forward
// abstract execution from each entry — forking at branch points, inlining
// calls inter-procedurally with a depth bound — to compute the abstract
// usages AUses : AObjs → P(Methods × AStates).
//
// Like the paper's analyzer, it operates on partial programs (library code
// and snippets), and does not model deep inheritance hierarchies or virtual
// dispatch.
package analysis

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/absdom"
	"repro/internal/cryptoapi"
	"repro/internal/javaast"
	"repro/internal/javaparser"
	"repro/internal/javatok"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/summary"
	"repro/internal/trace"
)

// Options configures the analyzer.
type Options struct {
	// MaxStates caps the number of simultaneously tracked execution forks
	// per entry method; overflow states are joined. Default 16.
	MaxStates int
	// MaxInline bounds the call-inlining depth. Default 4.
	MaxInline int
	// Budget, when non-nil, bounds the abstract execution: one step is
	// consumed per statement and expression visited, and exhaustion abandons
	// the analysis with resilience.ErrBudgetExhausted. Budgets are single-use
	// and single-goroutine; callers create one per analyzed change.
	Budget *resilience.Budget
	// Metrics, when non-nil, receives interpreter telemetry (steps executed,
	// per-run step distribution, budget exhaustions).
	Metrics *obs.Registry
	// Provenance enables flow-provenance tracking: every abstract value
	// carries a capped def-site chain (literal → assignments → inlined
	// calls → joins) that the witness layer renders into violation traces.
	// Off by default; with tracking off the analysis allocates no
	// provenance and its result is bit-identical to a provenance-unaware
	// interpreter.
	Provenance bool
	// Summaries, when non-nil, enables memoized per-method summaries
	// (DESIGN.md §14): inlineCall consults the table before executing a
	// callee, replaying a recorded effect triple on a hit, and the MaxInline
	// depth cliff is replaced by cycle detection (recursive SCCs widen to
	// Top). The table may be shared across analyses — a mining run shares
	// one table across all changes, a server across all requests. Nil keeps
	// the exact legacy re-inlining interpreter. With Provenance on, lookups
	// are skipped (summaries carry no provenance) but the depth lift still
	// applies, so -why and plain runs agree on the violation set.
	Summaries *summary.Table
}

func (o Options) withDefaults() Options {
	if o.MaxStates <= 0 {
		o.MaxStates = 16
	}
	if o.MaxInline <= 0 {
		o.MaxInline = 4
	}
	return o
}

// File is one source file of the analyzed program version.
type File struct {
	Name string
	Unit *javaast.CompilationUnit
}

// Program is a (possibly partial) Java program: a set of parsed files.
type Program struct {
	Files []File
	// SourceFP fingerprints the program's full source text (sorted file
	// names and contents). It keys memoized method summaries: because the
	// whole program's identity is part of every summary key, a replayed
	// summary is by construction a log of a deterministic execution of
	// byte-identical input. Empty (a Program assembled by hand) disables
	// summary memoization for that program.
	SourceFP string
}

// sourceFingerprint hashes the sorted (name, content) pairs of a program's
// sources with length-prefixing (the same framing artifact keys use).
func sourceFingerprint(names []string, sources map[string]string) string {
	h := sha256.New()
	var lenBuf [8]byte
	w := func(s string) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		io.WriteString(h, s)
	}
	for _, n := range names {
		w(n)
		w(sources[n])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ParseProgram parses named sources into a Program, ignoring recoverable
// syntax errors (partial programs are expected). Files with a non-.java
// extension (manifests, build scripts) are skipped; names without any
// extension are treated as Java snippets.
func ParseProgram(sources map[string]string) *Program {
	return ParseProgramObs(sources, nil)
}

// ParseProgramObs is ParseProgram with parser telemetry: files, bytes, and
// recovered syntax errors are counted into reg (nil reg is a no-op, making
// this identical to ParseProgram).
func ParseProgramObs(sources map[string]string, reg *obs.Registry) *Program {
	return ParseProgramPool(sources, reg, nil)
}

// ParseProgramPool is ParseProgramObs over a worker pool: each file parses
// on its own worker, with results assembled into the sorted-name slot order
// the serial parser produces — so the Program (and all telemetry, which is
// sum-based) is identical at any worker count. A nil or one-worker pool is
// the exact serial path. The abstract interpretation downstream stays
// single-goroutine (budgets are single-goroutine by contract); only the
// per-file parse fans out.
func ParseProgramPool(sources map[string]string, reg *obs.Registry, pool *parallel.Pool) *Program {
	return ParseProgramPoolCtx(context.Background(), sources, reg, pool)
}

// ParseProgramPoolCtx is ParseProgramPool with trace propagation: when ctx
// carries a span, the parse runs under a "parse" child annotated with the
// file count, and each file's parse gets its own "file[i]" span carrying
// the file name. The span tree is deterministic at any worker count because
// files are sorted by name before fan-out and task spans order by index.
// On an untraced ctx this is exactly ParseProgramPool.
func ParseProgramPoolCtx(ctx context.Context, sources map[string]string, reg *obs.Registry, pool *parallel.Pool) *Program {
	names := make([]string, 0, len(sources))
	for n := range sources {
		if dot := strings.LastIndexByte(n, '.'); dot >= 0 && !strings.HasSuffix(n, ".java") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	pctx, psp := trace.Start(ctx, "parse")
	psp.SetAttr("files", strconv.Itoa(len(names)))
	defer psp.End()
	p := &Program{Files: make([]File, len(names)), SourceFP: sourceFingerprint(names, sources)}
	errCounts := make([]int64, len(names))
	var bytes, parseErrs int64
	// Detach: the fan-out keeps the pre-trace contract that parsing is never
	// canceled mid-file (it always ran under context.Background()); only the
	// span propagates.
	pool.ForEachCtx(trace.Detach(pctx), "file", len(names), func(fctx context.Context, i int) {
		trace.FromContext(fctx).SetAttr("name", names[i])
		res := javaparser.Parse(sources[names[i]])
		p.Files[i] = File{Name: names[i], Unit: res.Unit}
		errCounts[i] = int64(len(res.Errors))
	})
	for i, n := range names {
		bytes += int64(len(sources[n]))
		parseErrs += errCounts[i]
	}
	if reg != nil {
		reg.Counter("parse.files").Add(int64(len(names)))
		reg.Counter("parse.bytes").Add(bytes)
		reg.Counter("parse.errors").Add(parseErrs)
	}
	return p
}

// Event is one element of AUses(o): a method invocation observed on an
// abstract object together with the abstract values of its arguments (the
// projection of the abstract state the DAG construction consumes). File and
// Pos locate the call site of the first observation of the event (the sink
// position of witness traces); they do not participate in Key, so
// deduplication — and therefore every downstream result — is unchanged by
// their presence.
type Event struct {
	Sig  cryptoapi.MethodSig
	Args []absdom.Value
	File string
	Pos  javatok.Pos
}

// Key returns a deduplication key for the event (signature plus argument
// labels; object arguments key by allocation site identity).
func (e Event) Key() string {
	k := e.Sig.Key()
	for _, a := range e.Args {
		if a.Kind == absdom.KObj {
			k += "|@" + a.Obj.SiteLabel() + fmt.Sprintf("#%d", a.Obj.ID)
		} else {
			k += "|" + a.Label()
		}
	}
	return k
}

// Result holds the abstract usages of one program version.
type Result struct {
	// Objs lists all abstract objects in allocation-discovery order.
	Objs []*absdom.AObj
	// Uses maps each abstract object to its deduplicated events in
	// first-observation order (the paper's AUses).
	Uses map[*absdom.AObj][]Event
}

// ObjsOfType returns the abstract objects of the given class, in order.
func (r *Result) ObjsOfType(typ string) []*absdom.AObj {
	var out []*absdom.AObj
	for _, o := range r.Objs {
		if o.Type == typ {
			out = append(out, o)
		}
	}
	return out
}

// Analyze runs the abstract interpretation over prog and returns AUses.
// When Options.Budget trips mid-run, the partial result is returned; use
// AnalyzeBudgeted to observe the exhaustion.
func Analyze(prog *Program, opts Options) *Result {
	res, _ := AnalyzeBudgeted(prog, opts)
	return res
}

// AnalyzeBudgeted is Analyze with budget enforcement surfaced: when
// Options.Budget is exhausted the abstract execution is abandoned and the
// partial result is returned together with an error wrapping
// resilience.ErrBudgetExhausted. Without a budget (or within it) the error
// is nil and the result is identical to Analyze's.
func AnalyzeBudgeted(prog *Program, opts Options) (*Result, error) {
	res, err, _ := analyzeBudgeted(prog, opts)
	return res, err
}

// AnalyzeBudgetedCtx is AnalyzeBudgeted with trace propagation: when ctx
// carries a span, the run gets an "interpret" child annotated with the step
// count and — on exhaustion — the ledger's "budget" category. The step
// count is a function of the program alone (the interpreter is
// single-goroutine), so the attribute keeps trace fingerprints
// deterministic. On an untraced ctx this is exactly AnalyzeBudgeted.
func AnalyzeBudgetedCtx(ctx context.Context, prog *Program, opts Options) (*Result, error) {
	_, sp := trace.Start(ctx, "interpret")
	if sp == nil {
		return AnalyzeBudgeted(prog, opts)
	}
	defer sp.End()
	res, err, steps := analyzeBudgeted(prog, opts)
	sp.SetAttr("steps", strconv.FormatInt(steps, 10))
	if err != nil {
		sp.Annotate(string(resilience.Categorize(err)))
	}
	return res, err
}

func analyzeBudgeted(prog *Program, opts Options) (res *Result, err error, steps int64) {
	an := newAnalyzer(prog, opts.withDefaults())
	defer func() {
		if r := recover(); r != nil {
			stop, ok := r.(budgetStop)
			if !ok {
				panic(r)
			}
			res = an.result()
			err = stop.err
		}
		steps = an.steps
		an.flushMetrics(err)
	}()
	an.run()
	return an.result(), nil, an.steps
}

// AnalyzeSource is a convenience wrapper for single-file programs.
func AnalyzeSource(src string, opts Options) *Result {
	return Analyze(ParseProgram(map[string]string{"Main.java": src}), opts)
}

// AnalyzeSourceBudgeted is AnalyzeBudgeted for single-file programs.
func AnalyzeSourceBudgeted(src string, opts Options) (*Result, error) {
	return AnalyzeBudgeted(ParseProgram(map[string]string{"Main.java": src}), opts)
}

// ---------------------------------------------------------------------------
// Analyzer internals
// ---------------------------------------------------------------------------

type classInfo struct {
	decl    *javaast.TypeDecl
	file    int
	methods map[string][]*javaast.MethodDecl
	fields  map[string]*javaast.FieldDecl
	// fieldOrder preserves declaration order for initializer evaluation.
	fieldOrder []string
}

type siteKey struct {
	file   int
	offset int
}

type analyzer struct {
	prog    *Program
	opts    Options
	classes map[string]*classInfo
	// classOrder: deterministic iteration.
	classOrder []string

	sites  map[siteKey]*absdom.AObj
	nextID int

	events    map[*absdom.AObj][]Event
	eventKeys map[*absdom.AObj]map[string]bool
	objs      []*absdom.AObj
	// calledArity records every invoked method name together with the call
	// arities seen — the coarse reverse call graph behind entry detection.
	// Keying on arity as well as name keeps an uncalled overload (a 2-arg
	// variant of a helper only ever called with 1 argument) an entry method.
	calledArity map[string]map[int]bool
	executed    map[*javaast.MethodDecl]bool

	inlineStack []*javaast.MethodDecl
	constCache  map[*javaast.FieldDecl]absdom.Value
	constBusy   map[*javaast.FieldDecl]bool
	curFile     int
	budget      *resilience.Budget

	// Summary machinery (summary.go). sums is the shared table (nil =
	// summaries off, the exact legacy interpreter); memoOK gates lookups
	// (off under provenance or for fingerprint-less programs, where only
	// the depth lift applies). siteOf is the reverse of sites — it renders
	// abstract objects portably. recs is the stack of in-flight recordings
	// that the allocObj/record/markExecuted tee points feed; localSums
	// caches summaries already rebound into this analyzer's object table.
	sums      *summary.Table
	memoOK    bool
	sumOptsFP string
	siteOf    map[*absdom.AObj]siteKey
	recs      []*recActive
	localSums map[*summary.Entry]*resolvedSum
	methodRef map[*javaast.MethodDecl]summary.PMethod
	// provOn enables flow-provenance tracking (Options.Provenance). Every
	// attach site in the hot loop is gated on this one bool, so the
	// tracking-off interpreter pays a single predictable branch per site.
	provOn bool
	// provArena batch-allocates the Prov nodes of this analysis; with
	// tracking off it is never touched.
	provArena absdom.ProvArena
	// steps counts every statement and expression visited; unlike the
	// budget it is always on (one register increment in the hot loop).
	steps int64
}

// budgetStop is the panic payload that unwinds an over-budget execution
// back to AnalyzeBudgeted (the same recovery idiom the parser uses).
type budgetStop struct{ err error }

// step consumes one budget unit; it is called from the interpreter's hot
// loop (every statement and expression). Exhaustion aborts the whole
// analysis by unwinding to AnalyzeBudgeted.
func (an *analyzer) step() {
	an.steps++
	if an.budget == nil {
		return
	}
	if err := an.budget.Step(); err != nil {
		panic(budgetStop{err: err})
	}
}

// stepN bulk-charges n steps — a summary replay charging the recorded cost
// of the execution it stands in for.
func (an *analyzer) stepN(n int64) {
	an.steps += n
	if an.budget == nil {
		return
	}
	if err := an.budget.StepN(n); err != nil {
		panic(budgetStop{err: err})
	}
}

// flushMetrics records the run's interpreter telemetry once, at the end of
// AnalyzeBudgeted (normal or budget-exhausted exit).
func (an *analyzer) flushMetrics(err error) {
	reg := an.opts.Metrics
	if reg == nil {
		return
	}
	reg.Counter("analysis.runs").Inc()
	reg.Counter("analysis.steps").Add(an.steps)
	reg.Histogram("analysis.steps_per_run").Observe(an.steps)
	if errors.Is(err, resilience.ErrBudgetExhausted) {
		reg.Counter("analysis.budget_exhausted").Inc()
	}
}

func newAnalyzer(prog *Program, opts Options) *analyzer {
	an := &analyzer{
		prog:        prog,
		opts:        opts,
		classes:     map[string]*classInfo{},
		sites:       map[siteKey]*absdom.AObj{},
		events:      map[*absdom.AObj][]Event{},
		eventKeys:   map[*absdom.AObj]map[string]bool{},
		calledArity: map[string]map[int]bool{},
		executed:    map[*javaast.MethodDecl]bool{},
		budget:      opts.Budget,
		provOn:      opts.Provenance,
		sums:        opts.Summaries,
		siteOf:      map[*absdom.AObj]siteKey{},
	}
	// Memoization needs provenance off (entries carry none) and a program
	// fingerprint (the key's exactness anchor); otherwise only the depth
	// lift of the summaries mode applies.
	an.memoOK = an.sums != nil && !an.provOn && prog.SourceFP != ""
	if an.memoOK {
		an.localSums = map[*summary.Entry]*resolvedSum{}
		an.sumOptsFP = fmt.Sprintf("ms=%d", opts.MaxStates)
	}
	for fi, f := range prog.Files {
		for _, t := range f.Unit.Types {
			an.indexClass(t, fi)
		}
	}
	// Build the coarse reverse call graph: record every invoked method name
	// with the arity of each call.
	for _, f := range prog.Files {
		javaast.Walk(f.Unit, func(n javaast.Node) bool {
			if c, ok := n.(*javaast.Call); ok {
				ar := an.calledArity[c.Name]
				if ar == nil {
					ar = map[int]bool{}
					an.calledArity[c.Name] = ar
				}
				ar[len(c.Args)] = true
			}
			return true
		})
	}
	return an
}

func (an *analyzer) indexClass(t *javaast.TypeDecl, file int) {
	ci := &classInfo{
		decl:    t,
		file:    file,
		methods: map[string][]*javaast.MethodDecl{},
		fields:  map[string]*javaast.FieldDecl{},
	}
	for _, m := range t.Methods {
		ci.methods[m.Name] = append(ci.methods[m.Name], m)
	}
	for _, fd := range t.Fields {
		ci.fields[fd.Name] = fd
		ci.fieldOrder = append(ci.fieldOrder, fd.Name)
	}
	if _, exists := an.classes[t.Name]; !exists {
		an.classOrder = append(an.classOrder, t.Name)
	}
	an.classes[t.Name] = ci
	for _, nested := range t.Nested {
		an.indexClass(nested, file)
	}
}

// allocObj returns the abstract object for an allocation site, creating it
// on first use (per-allocation-site abstraction: one AObj per site across
// all executions and forks).
func (an *analyzer) allocObj(file int, pos javaast.Node, typ string) *absdom.AObj {
	return an.allocObjAt(file, pos.Pos(), typ)
}

// allocObjAt is allocObj on a raw position — the form summary replays use.
// Object creation tees into in-flight recordings as a first-touch
// allocation, so a recorded summary replays its callee's allocations in the
// order a live execution would have made them.
func (an *analyzer) allocObjAt(file int, pos javatok.Pos, typ string) *absdom.AObj {
	key := siteKey{file: file, offset: pos.Offset}
	if o, ok := an.sites[key]; ok {
		return o
	}
	an.nextID++
	o := &absdom.AObj{ID: an.nextID, Type: typ, Site: pos}
	an.sites[key] = o
	an.siteOf[o] = key
	an.objs = append(an.objs, o)
	for _, r := range an.recs {
		r.allocs = append(r.allocs, o)
	}
	return o
}

// record appends an event to AUses(o), deduplicating by event key. The
// pre-dedup attempt tees into in-flight recordings: an attempt that is a
// duplicate here can be the first observation in a different replay
// context, so summaries log attempts, not outcomes.
func (an *analyzer) record(o *absdom.AObj, ev Event) {
	for _, r := range an.recs {
		r.events = append(r.events, recEvent{obj: o, ev: ev})
	}
	keys := an.eventKeys[o]
	if keys == nil {
		keys = map[string]bool{}
		an.eventKeys[o] = keys
	}
	k := ev.Key()
	if keys[k] {
		return
	}
	keys[k] = true
	an.events[o] = append(an.events[o], ev)
}

// run executes every entry method of every class, then sweeps up any methods
// never executed (e.g. mutually recursive groups with no external entry) so
// every allocation site is covered.
func (an *analyzer) run() {
	for _, name := range an.classOrder {
		ci := an.classes[name]
		for _, m := range an.entryMethods(ci) {
			an.runEntry(ci, m)
		}
	}
	for _, name := range an.classOrder {
		ci := an.classes[name]
		for _, ms := range orderedMethods(ci) {
			if !an.executed[ms] && ms.Body != nil {
				an.runEntry(ci, ms)
			}
		}
	}
}

func orderedMethods(ci *classInfo) []*javaast.MethodDecl {
	return ci.decl.Methods
}

// entryMethods returns the methods of ci that no call in the program
// resolves to, plus main. These approximate the paper's "entry methods that
// can lead to executions that call method m". A method counts as called
// only if some observed (name, arity) pair resolves to it under the
// analyzer's own overload resolution (exact arity, else first candidate) —
// name-only matching would silently demote an uncalled 2-arg overload of a
// called 1-arg helper.
func (an *analyzer) entryMethods(ci *classInfo) []*javaast.MethodDecl {
	var out []*javaast.MethodDecl
	for _, m := range ci.decl.Methods {
		if m.Body == nil {
			continue
		}
		if m.Name == "main" || m.IsConstructor || !an.isCalled(ci, m) {
			out = append(out, m)
		}
	}
	return out
}

// isCalled reports whether any observed call (by name and arity) would
// resolve to m within ci, mirroring pickMethod's resolution.
func (an *analyzer) isCalled(ci *classInfo, m *javaast.MethodDecl) bool {
	for arity := range an.calledArity[m.Name] {
		if an.pickMethod(ci, m.Name, arity) == m {
			return true
		}
	}
	return false
}

// runEntry performs a forward abstract execution of one entry method over a
// fresh state with field initializers applied and parameters bound to ⊤
// values of their declared types.
func (an *analyzer) runEntry(ci *classInfo, m *javaast.MethodDecl) {
	an.curFile = ci.file
	st := absdom.NewState()
	fr := &frame{an: an, ci: ci, varTypes: map[string]*javaast.TypeRef{}}
	// Field initializers (and initializer blocks) run before the entry.
	an.initFields(ci, st, fr)
	for _, p := range m.Params {
		v := absdom.TopOfType(p.Type.Base(), p.Type.Dims)
		if an.provOn {
			v.Prov = an.prov0x(absdom.ProvParam, p, shParamOf, p.Name, m.Name)
		}
		st.SetVar(p.Name, v)
		fr.varTypes[p.Name] = p.Type
	}
	an.execMethod(ci, m, nil, st, 0)
}

// initFields evaluates field initializers and initializer blocks into st.
func (an *analyzer) initFields(ci *classInfo, st *absdom.State, fr *frame) {
	for _, name := range ci.fieldOrder {
		fd := ci.fields[name]
		key := ci.decl.Name + "." + name
		if fd.Init != nil {
			v := an.eval(fd.Init, st, fr, 0)
			v = refine(v, fd.Type)
			if an.provOn {
				v.Prov = an.prov1(absdom.ProvField, fd, shField, key, v.Prov)
			}
			st.SetField(key, v)
		} else {
			v := absdom.TopOfType(fd.Type.Base(), fd.Type.Dims)
			if an.provOn {
				v.Prov = an.prov0(absdom.ProvField, fd, shFieldNoInit, key)
			}
			st.SetField(key, v)
		}
	}
	for _, m := range ci.decl.Methods {
		if m.Name == "<static-init>" || m.Name == "<instance-init>" {
			an.execMethod(ci, m, nil, st, 0)
		}
	}
}

// refine upgrades a fully unknown value (untyped ⊤obj) to the ⊤ element of
// the declared type, preserving anything more precise. It also corrects the
// array family of bare initializers: `int[] xs = {1, 2}` evaluates the
// initializer without type context (byte-ish by default), and the declared
// type settles which constant-array domain it belongs to.
func refine(v absdom.Value, typ *javaast.TypeRef) absdom.Value {
	if typ == nil {
		return v
	}
	if !v.IsValid() || (v.Kind == absdom.KTopObj && v.Type == "") {
		return absdom.TopOfType(typ.Base(), typ.Dims).WithProv(v.Prov)
	}
	if typ.Dims > 0 {
		switch typ.Base() {
		case "int", "long", "short":
			if v.Kind == absdom.KConstByteArr {
				return absdom.IntArrConst("const").WithProv(v.Prov)
			}
			if v.Kind == absdom.KTopByteArr {
				return absdom.TopIntArr().WithProv(v.Prov)
			}
		case "String":
			if v.Kind == absdom.KConstByteArr {
				return absdom.StrArrConst("const").WithProv(v.Prov)
			}
			if v.Kind == absdom.KTopByteArr {
				return absdom.TopStrArr().WithProv(v.Prov)
			}
		}
	}
	return v
}

// execMethod runs a method body with the given argument values, mutating st
// to the join of all exit states, and returns the joined return value.
func (an *analyzer) execMethod(ci *classInfo, m *javaast.MethodDecl, args []absdom.Value, st *absdom.State, depth int) absdom.Value {
	if m.Body == nil {
		return returnTop(m)
	}
	an.markExecuted(m)
	fr := &frame{an: an, ci: ci, varTypes: map[string]*javaast.TypeRef{}}
	for i, p := range m.Params {
		var v absdom.Value
		if i < len(args) && args[i].IsValid() {
			v = refine(args[i], p.Type)
			if an.provOn {
				// The argument's history continues through the callee under
				// the parameter's name.
				v.Prov = an.prov1x(absdom.ProvParam, p, shParamOf, p.Name, m.Name, v.Prov)
			}
		} else {
			v = absdom.TopOfType(p.Type.Base(), p.Type.Dims)
			if an.provOn {
				v.Prov = an.prov0x(absdom.ProvParam, p, shParamOf, p.Name, m.Name)
			}
		}
		st.SetVar(p.Name, v)
		fr.varTypes[p.Name] = p.Type
	}
	live := fr.execStmts(m.Body.Stmts, []*absdom.State{st}, depth)
	// Join every surviving state (live and returned) back into st so field
	// effects are visible to the caller.
	for _, s := range append(live, fr.finished...) {
		if s != st {
			st.JoinIn(s, &an.provArena)
		}
	}
	if len(fr.retVals) > 0 {
		ret := fr.retVals[0]
		for _, v := range fr.retVals[1:] {
			ret = absdom.JoinIn(&an.provArena, ret, v)
		}
		return ret
	}
	return returnTop(m)
}

func returnTop(m *javaast.MethodDecl) absdom.Value {
	if m.ReturnType == nil || m.ReturnType.Name == "void" {
		return absdom.Value{}
	}
	return absdom.TopOfType(m.ReturnType.Base(), m.ReturnType.Dims)
}

// result snapshots the analyzer's usage map.
func (an *analyzer) result() *Result {
	res := &Result{Objs: an.objs, Uses: map[*absdom.AObj][]Event{}}
	for o, evs := range an.events {
		res.Uses[o] = evs
	}
	return res
}
