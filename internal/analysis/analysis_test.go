package analysis

import (
	"strings"
	"testing"

	"repro/internal/absdom"
	"repro/internal/cryptoapi"
)

// evKeys renders the events of an object compactly for assertions.
func evKeys(r *Result, o *absdom.AObj) []string {
	var out []string
	for _, e := range r.Uses[o] {
		parts := []string{e.Sig.Class + "." + e.Sig.Name}
		for _, a := range e.Args {
			parts = append(parts, a.Label())
		}
		out = append(out, strings.Join(parts, " "))
	}
	return out
}

func findEvent(r *Result, o *absdom.AObj, substr string) bool {
	for _, k := range evKeys(r, o) {
		if strings.Contains(k, substr) {
			return true
		}
	}
	return false
}

const newVersionSrc = `
class AESCipher {
    Cipher enc, dec;
    final String algorithm = "AES/CBC/PKCS5Padding";

    protected void setKeyAndIV(Secret key, String iv) {
        byte[] ivBytes;
        IvParameterSpec ivSpec;
        try {
            ivBytes = Hex.decodeHex(iv.toCharArray());
            ivSpec = new IvParameterSpec(ivBytes);
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key, ivSpec);
        } catch (Exception e) {
        }
    }
}
`

// TestPaperExampleNewVersion checks the analysis result of Figure 2(c): two
// Cipher objects, each with getInstance + init events, and an
// IvParameterSpec object constructed from a non-constant byte array.
func TestPaperExampleNewVersion(t *testing.T) {
	r := AnalyzeSource(newVersionSrc, Options{})
	ciphers := r.ObjsOfType(cryptoapi.Cipher)
	if len(ciphers) != 2 {
		t.Fatalf("cipher objects = %d, want 2 (enc and dec sites)", len(ciphers))
	}
	enc := ciphers[0]
	keys := evKeys(r, enc)
	if len(keys) != 2 {
		t.Fatalf("enc events = %v, want 2", keys)
	}
	if !findEvent(r, enc, `Cipher.getInstance "AES/CBC/PKCS5Padding"`) {
		t.Errorf("missing getInstance event with folded field constant: %v", keys)
	}
	if !findEvent(r, enc, "Cipher.init ENCRYPT_MODE Secret IvParameterSpec") {
		t.Errorf("missing init event: %v", keys)
	}
	ivs := r.ObjsOfType(cryptoapi.IvParameterSpec)
	if len(ivs) != 1 {
		t.Fatalf("iv objects = %d, want 1", len(ivs))
	}
	if !findEvent(r, ivs[0], "IvParameterSpec.<init> ⊤byte[]") {
		t.Errorf("iv ctor event wrong: %v", evKeys(r, ivs[0]))
	}
	// dec uses DECRYPT_MODE.
	if !findEvent(r, ciphers[1], "Cipher.init DECRYPT_MODE") {
		t.Errorf("dec events: %v", evKeys(r, ciphers[1]))
	}
}

const oldVersionSrc = `
class AESCipher {
    Cipher enc, dec;
    final String algorithm = "AES";

    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key);
        } catch (Exception e) {
        }
    }
}
`

func TestPaperExampleOldVersion(t *testing.T) {
	r := AnalyzeSource(oldVersionSrc, Options{})
	ciphers := r.ObjsOfType(cryptoapi.Cipher)
	if len(ciphers) != 2 {
		t.Fatalf("cipher objects = %d, want 2", len(ciphers))
	}
	if !findEvent(r, ciphers[0], `Cipher.getInstance "AES"`) {
		t.Errorf("events: %v", evKeys(r, ciphers[0]))
	}
	if !findEvent(r, ciphers[0], "Cipher.init ENCRYPT_MODE Secret") {
		t.Errorf("events: %v", evKeys(r, ciphers[0]))
	}
}

func TestConstantByteArrayIV(t *testing.T) {
	src := `
class C {
    void run(Key key) throws Exception {
        byte[] iv = new byte[]{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
        IvParameterSpec spec = new IvParameterSpec(iv);
        Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");
        c.init(Cipher.ENCRYPT_MODE, key, spec);
    }
}
`
	r := AnalyzeSource(src, Options{})
	ivs := r.ObjsOfType(cryptoapi.IvParameterSpec)
	if len(ivs) != 1 {
		t.Fatalf("iv objects = %d", len(ivs))
	}
	if !findEvent(r, ivs[0], "IvParameterSpec.<init> const_byte[]") {
		t.Errorf("static IV not detected as constant: %v", evKeys(r, ivs[0]))
	}
}

func TestRandomizedIVNotConstant(t *testing.T) {
	src := `
class C {
    void run(Key key) throws Exception {
        byte[] iv = new byte[16];
        SecureRandom sr = new SecureRandom();
        sr.nextBytes(iv);
        IvParameterSpec spec = new IvParameterSpec(iv);
    }
}
`
	r := AnalyzeSource(src, Options{})
	ivs := r.ObjsOfType(cryptoapi.IvParameterSpec)
	if len(ivs) != 1 {
		t.Fatalf("iv objects = %d", len(ivs))
	}
	if !findEvent(r, ivs[0], "IvParameterSpec.<init> ⊤byte[]") {
		t.Errorf("nextBytes effect missed; events: %v", evKeys(r, ivs[0]))
	}
}

func TestBranchForking(t *testing.T) {
	src := `
class C {
    void run(boolean gcm, Key key) throws Exception {
        String t;
        if (gcm) { t = "AES/GCM/NoPadding"; } else { t = "AES/CBC/PKCS5Padding"; }
        Cipher c = Cipher.getInstance(t);
    }
}
`
	r := AnalyzeSource(src, Options{})
	ciphers := r.ObjsOfType(cryptoapi.Cipher)
	if len(ciphers) != 1 {
		t.Fatalf("cipher objects = %d, want 1 (single allocation site)", len(ciphers))
	}
	// Both forked executions reach getInstance with their own constant.
	if !findEvent(r, ciphers[0], `"AES/GCM/NoPadding"`) {
		t.Errorf("missing GCM fork: %v", evKeys(r, ciphers[0]))
	}
	if !findEvent(r, ciphers[0], `"AES/CBC/PKCS5Padding"`) {
		t.Errorf("missing CBC fork: %v", evKeys(r, ciphers[0]))
	}
}

func TestInterproceduralInlining(t *testing.T) {
	src := `
class C {
    Cipher cipher;
    void setup(Key key) throws Exception {
        cipher = make(transform());
    }
    Cipher make(String t) throws Exception {
        return Cipher.getInstance(t);
    }
    String transform() { return "AES/GCM/NoPadding"; }
}
`
	r := AnalyzeSource(src, Options{})
	ciphers := r.ObjsOfType(cryptoapi.Cipher)
	if len(ciphers) != 1 {
		t.Fatalf("cipher objects = %d, want 1", len(ciphers))
	}
	if !findEvent(r, ciphers[0], `Cipher.getInstance "AES/GCM/NoPadding"`) {
		t.Errorf("constant did not flow through two inlined calls: %v", evKeys(r, ciphers[0]))
	}
}

func TestCrossClassStaticConstant(t *testing.T) {
	srcs := map[string]string{
		"Config.java": `
class Config {
    static final String ALGO = "DES/ECB/PKCS5Padding";
}
`,
		"Main.java": `
class Main {
    void go() throws Exception {
        Cipher c = Cipher.getInstance(Config.ALGO);
    }
}
`,
	}
	r := Analyze(ParseProgram(srcs), Options{})
	ciphers := r.ObjsOfType(cryptoapi.Cipher)
	if len(ciphers) != 1 {
		t.Fatalf("cipher objects = %d", len(ciphers))
	}
	if !findEvent(r, ciphers[0], `"DES/ECB/PKCS5Padding"`) {
		t.Errorf("cross-class constant not resolved: %v", evKeys(r, ciphers[0]))
	}
}

func TestStaticFactoryOnQualifiedName(t *testing.T) {
	src := `
class C {
    void go() throws Exception {
        MessageDigest md = javax.security.MessageDigest.getInstance("SHA-256");
        md.digest();
    }
}
`
	r := AnalyzeSource(src, Options{})
	mds := r.ObjsOfType(cryptoapi.MessageDigest)
	if len(mds) != 1 {
		t.Fatalf("digest objects = %d", len(mds))
	}
	if !findEvent(r, mds[0], `MessageDigest.getInstance "SHA-256"`) {
		t.Errorf("events: %v", evKeys(r, mds[0]))
	}
	if !findEvent(r, mds[0], "MessageDigest.digest") {
		t.Errorf("digest() call not recorded: %v", evKeys(r, mds[0]))
	}
}

func TestSecretKeySpecAndPBE(t *testing.T) {
	src := `
class K {
    SecretKeySpec hardcoded() {
        byte[] raw = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
        return new SecretKeySpec(raw, "AES");
    }
    PBEKeySpec weak(char[] pw) {
        byte[] salt = new byte[]{1, 2, 3, 4};
        return new PBEKeySpec(pw, salt, 100, 256);
    }
}
`
	r := AnalyzeSource(src, Options{})
	sks := r.ObjsOfType(cryptoapi.SecretKeySpec)
	if len(sks) != 1 || !findEvent(r, sks[0], `SecretKeySpec.<init> const_byte[] "AES"`) {
		t.Errorf("SecretKeySpec events: %v", evKeys(r, sks[0]))
	}
	pbs := r.ObjsOfType(cryptoapi.PBEKeySpec)
	if len(pbs) != 1 || !findEvent(r, pbs[0], "PBEKeySpec.<init> ⊤byte[] const_byte[] 100 256") {
		t.Errorf("PBEKeySpec events: %v", evKeys(r, pbs[0]))
	}
}

func TestSecureRandomVariants(t *testing.T) {
	src := `
class R {
    void a() throws Exception {
        SecureRandom r1 = new SecureRandom();
        SecureRandom r2 = SecureRandom.getInstance("SHA1PRNG");
        SecureRandom r3 = SecureRandom.getInstanceStrong();
        r1.setSeed(new byte[]{1, 2, 3});
    }
}
`
	r := AnalyzeSource(src, Options{})
	srs := r.ObjsOfType(cryptoapi.SecureRandom)
	if len(srs) != 3 {
		t.Fatalf("SecureRandom objects = %d, want 3", len(srs))
	}
	if !findEvent(r, srs[0], "SecureRandom.setSeed const_byte[]") {
		t.Errorf("r1 events: %v", evKeys(r, srs[0]))
	}
	if !findEvent(r, srs[1], `SecureRandom.getInstance "SHA1PRNG"`) {
		t.Errorf("r2 events: %v", evKeys(r, srs[1]))
	}
	if !findEvent(r, srs[2], "SecureRandom.getInstanceStrong") {
		t.Errorf("r3 events: %v", evKeys(r, srs[2]))
	}
}

func TestStringConcatFolding(t *testing.T) {
	src := `
class C {
    static final String MODE = "CBC";
    void go() throws Exception {
        Cipher c = Cipher.getInstance("AES" + "/" + MODE + "/PKCS5Padding");
    }
}
`
	r := AnalyzeSource(src, Options{})
	ciphers := r.ObjsOfType(cryptoapi.Cipher)
	if len(ciphers) != 1 || !findEvent(r, ciphers[0], `"AES/CBC/PKCS5Padding"`) {
		t.Errorf("concat folding failed: %v", evKeys(r, ciphers[0]))
	}
}

func TestLoopBodyAnalyzed(t *testing.T) {
	src := `
class C {
    void go(int n) throws Exception {
        for (int i = 0; i < n; i++) {
            MessageDigest md = MessageDigest.getInstance("MD5");
        }
    }
}
`
	r := AnalyzeSource(src, Options{})
	if len(r.ObjsOfType(cryptoapi.MessageDigest)) != 1 {
		t.Error("allocation inside loop body not discovered")
	}
}

func TestDedupAcrossForks(t *testing.T) {
	// The same call in both branches of downstream code must not duplicate
	// events (AUses is a set).
	src := `
class C {
    void go(boolean b, Key k) throws Exception {
        Cipher c = Cipher.getInstance("AES");
        if (b) { log(); } else { trace(); }
        c.init(Cipher.ENCRYPT_MODE, k);
    }
}
`
	r := AnalyzeSource(src, Options{})
	ciphers := r.ObjsOfType(cryptoapi.Cipher)
	if len(ciphers) != 1 {
		t.Fatalf("ciphers = %d", len(ciphers))
	}
	if n := len(r.Uses[ciphers[0]]); n != 2 {
		t.Errorf("events = %d (%v), want 2 (deduplicated)", n, evKeys(r, ciphers[0]))
	}
}

func TestEntryMethodDiscovery(t *testing.T) {
	// helper() is called by entry(); it must not be a separate entry, but
	// its allocation must still be found through inlining.
	src := `
class C {
    public void entry() throws Exception { helper(); }
    private void helper() throws Exception {
        Cipher c = Cipher.getInstance("AES");
    }
}
`
	r := AnalyzeSource(src, Options{})
	if len(r.ObjsOfType(cryptoapi.Cipher)) != 1 {
		t.Error("allocation in helper not reached from entry")
	}
}

func TestRecursionTerminates(t *testing.T) {
	src := `
class C {
    int f(int n) { return n <= 0 ? 0 : f(n - 1); }
    void go() throws Exception {
        f(10);
        Cipher c = Cipher.getInstance("AES");
    }
}
`
	r := AnalyzeSource(src, Options{})
	if len(r.ObjsOfType(cryptoapi.Cipher)) != 1 {
		t.Error("analysis lost allocation after recursive call")
	}
}

func TestMutualRecursionSweep(t *testing.T) {
	// a and b call each other; neither is an entry by the call-graph rule,
	// so the post-pass sweep must still execute them.
	src := `
class C {
    void a() throws Exception { b(); }
    void b() throws Exception { a(); Cipher c = Cipher.getInstance("DES"); }
}
`
	r := AnalyzeSource(src, Options{})
	if len(r.ObjsOfType(cryptoapi.Cipher)) != 1 {
		t.Error("mutually recursive methods never executed")
	}
}

func TestShadowingClassName(t *testing.T) {
	// A local variable named like an API class shadows the class.
	src := `
class C {
    void go(Cipher Cipher) throws Exception {
        MessageDigest md = MessageDigest.getInstance("SHA-256");
    }
}
`
	r := AnalyzeSource(src, Options{})
	if len(r.ObjsOfType(cryptoapi.Cipher)) != 0 {
		t.Error("shadowed class name treated as factory receiver")
	}
}

func TestMacForR13(t *testing.T) {
	src := `
class C {
    void go(Key k) throws Exception {
        Mac m = Mac.getInstance("HmacSHA256");
        m.init(k);
    }
}
`
	r := AnalyzeSource(src, Options{})
	macs := r.ObjsOfType(cryptoapi.Mac)
	if len(macs) != 1 || !findEvent(r, macs[0], `Mac.getInstance "HmacSHA256"`) {
		t.Errorf("Mac events: %v", evKeys(r, macs[0]))
	}
}

func TestTernaryJoin(t *testing.T) {
	src := `
class C {
    void go(boolean strong) throws Exception {
        MessageDigest md = MessageDigest.getInstance(strong ? "SHA-256" : "MD5");
    }
}
`
	r := AnalyzeSource(src, Options{})
	mds := r.ObjsOfType(cryptoapi.MessageDigest)
	if len(mds) != 1 {
		t.Fatalf("digests = %d", len(mds))
	}
	// The ternary joins to ⊤str (both constants differ).
	if !findEvent(r, mds[0], "MessageDigest.getInstance ⊤str") {
		t.Errorf("events: %v", evKeys(r, mds[0]))
	}
}

func TestDeterminism(t *testing.T) {
	render := func() string {
		r := AnalyzeSource(newVersionSrc, Options{})
		var sb strings.Builder
		for _, o := range r.Objs {
			sb.WriteString(o.SiteLabel())
			for _, k := range evKeys(r, o) {
				sb.WriteString("|" + k)
			}
			sb.WriteString("\n")
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("analysis output not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
}

func BenchmarkAnalyzePaperExample(b *testing.B) {
	prog := ParseProgram(map[string]string{"A.java": newVersionSrc})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(prog, Options{})
	}
}

func TestStringMethodFolding(t *testing.T) {
	src := `
class C {
    void go() throws Exception {
        String mode = "cbc";
        Cipher c = Cipher.getInstance(("aes/" + mode + "/pkcs5padding").toUpperCase());
        MessageDigest md = MessageDigest.getInstance("  SHA-256  ".trim());
        Cipher d = Cipher.getInstance("AES/ECB/X".replace("ECB", "GCM").replace("X", "NoPadding"));
        Cipher e = Cipher.getInstance("YAES".substring(1));
    }
}
`
	r := AnalyzeSource(src, Options{})
	ciphers := r.ObjsOfType(cryptoapi.Cipher)
	if len(ciphers) != 3 {
		t.Fatalf("ciphers = %d", len(ciphers))
	}
	if !findEvent(r, ciphers[0], `"AES/CBC/PKCS5PADDING"`) {
		t.Errorf("toUpperCase fold failed: %v", evKeys(r, ciphers[0]))
	}
	if !findEvent(r, ciphers[1], `"AES/GCM/NoPadding"`) {
		t.Errorf("replace fold failed: %v", evKeys(r, ciphers[1]))
	}
	if !findEvent(r, ciphers[2], `"AES"`) {
		t.Errorf("substring fold failed: %v", evKeys(r, ciphers[2]))
	}
	mds := r.ObjsOfType(cryptoapi.MessageDigest)
	if len(mds) != 1 || !findEvent(r, mds[0], `"SHA-256"`) {
		t.Errorf("trim fold failed: %v", evKeys(r, mds[0]))
	}
}

func TestHardcodedPasswordChars(t *testing.T) {
	// "secret".toCharArray() is constant data — the PBE password argument
	// must abstract to const_byte[] so hard-coded passwords are visible.
	src := `
class C {
    void go() throws Exception {
        PBEKeySpec s = new PBEKeySpec("hunter2".toCharArray(), salt(), 10000, 256);
    }
}
`
	r := AnalyzeSource(src, Options{})
	pbs := r.ObjsOfType(cryptoapi.PBEKeySpec)
	if len(pbs) != 1 || !findEvent(r, pbs[0], "PBEKeySpec.<init> const_byte[]") {
		t.Errorf("hard-coded password not constant: %v", evKeys(r, pbs[0]))
	}
}

func TestConstantStringGetBytesKey(t *testing.T) {
	src := `
class C {
    void go() throws Exception {
        SecretKeySpec k = new SecretKeySpec("0123456789abcdef".getBytes(), "AES");
    }
}
`
	r := AnalyzeSource(src, Options{})
	ks := r.ObjsOfType(cryptoapi.SecretKeySpec)
	if len(ks) != 1 || !findEvent(r, ks[0], "SecretKeySpec.<init> const_byte[]") {
		t.Errorf("string-literal key not constant: %v", evKeys(r, ks[0]))
	}
}

func TestSwitchForking(t *testing.T) {
	src := `
class C {
    void go(int mode, Key k) throws Exception {
        String t;
        switch (mode) {
        case 1: t = "AES/CBC/PKCS5Padding"; break;
        case 2: t = "AES/GCM/NoPadding"; break;
        default: t = "AES"; break;
        }
        Cipher c = Cipher.getInstance(t);
    }
}
`
	r := AnalyzeSource(src, Options{})
	cs := r.ObjsOfType(cryptoapi.Cipher)
	if len(cs) != 1 {
		t.Fatalf("ciphers = %d", len(cs))
	}
	for _, want := range []string{`"AES/CBC/PKCS5Padding"`, `"AES/GCM/NoPadding"`, `"AES"`} {
		if !findEvent(r, cs[0], want) {
			t.Errorf("switch fork lost %s: %v", want, evKeys(r, cs[0]))
		}
	}
}

func TestTryWithResources(t *testing.T) {
	src := `
class C {
    void go() throws Exception {
        try (AutoCloseable a = open()) {
            MessageDigest md = MessageDigest.getInstance("SHA-256");
        } catch (Exception e) {
            MessageDigest fallback = MessageDigest.getInstance("MD5");
        }
    }
}
`
	r := AnalyzeSource(src, Options{})
	if got := len(r.ObjsOfType(cryptoapi.MessageDigest)); got != 2 {
		t.Errorf("digest allocations = %d, want 2 (try body and catch)", got)
	}
}

func TestHeapFieldThroughObject(t *testing.T) {
	// Values stored in another object's fields flow back out.
	src := `
class Holder { String transform; }
class C {
    void go() throws Exception {
        Holder h = new Holder();
        h.transform = "AES/GCM/NoPadding";
        Cipher c = Cipher.getInstance(h.transform);
    }
}
`
	r := AnalyzeSource(src, Options{})
	cs := r.ObjsOfType(cryptoapi.Cipher)
	if len(cs) != 1 || !findEvent(r, cs[0], `"AES/GCM/NoPadding"`) {
		t.Errorf("heap round trip failed: %v", evKeys(r, cs[0]))
	}
}

func TestBase64HardcodedKey(t *testing.T) {
	// A very common real-world pattern: a hard-coded key shipped base64-
	// encoded. The abstraction must still see const_byte[].
	src := `
class C {
    void go() throws Exception {
        byte[] raw = Base64.getDecoder().decode("c2VjcmV0LWtleS0xMjM0NTY=");
        SecretKeySpec k = new SecretKeySpec(raw, "AES");
        byte[] iv = Hex.decodeHex("000102030405060708090a0b0c0d0e0f");
        IvParameterSpec spec = new IvParameterSpec(iv);
    }
}
`
	r := AnalyzeSource(src, Options{})
	ks := r.ObjsOfType(cryptoapi.SecretKeySpec)
	if len(ks) != 1 || !findEvent(r, ks[0], "SecretKeySpec.<init> const_byte[]") {
		t.Errorf("base64 hard-coded key missed: %v", evKeys(r, ks[0]))
	}
	ivs := r.ObjsOfType(cryptoapi.IvParameterSpec)
	if len(ivs) != 1 || !findEvent(r, ivs[0], "IvParameterSpec.<init> const_byte[]") {
		t.Errorf("hex hard-coded IV missed: %v", evKeys(r, ivs[0]))
	}
}

func TestBase64RuntimeDataStaysTop(t *testing.T) {
	src := `
class C {
    void go(String fromConfig) throws Exception {
        byte[] raw = Base64.getDecoder().decode(fromConfig);
        SecretKeySpec k = new SecretKeySpec(raw, "AES");
    }
}
`
	r := AnalyzeSource(src, Options{})
	ks := r.ObjsOfType(cryptoapi.SecretKeySpec)
	if len(ks) != 1 || !findEvent(r, ks[0], "SecretKeySpec.<init> ⊤byte[]") {
		t.Errorf("runtime-decoded key wrongly constant: %v", evKeys(r, ks[0]))
	}
}

func TestArraysCopyPreservesConstness(t *testing.T) {
	src := `
class C {
    void go() throws Exception {
        byte[] master = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
        byte[] sub = Arrays.copyOf(master, 16);
        SecretKeySpec k = new SecretKeySpec(sub, "AES");
    }
}
`
	r := AnalyzeSource(src, Options{})
	ks := r.ObjsOfType(cryptoapi.SecretKeySpec)
	if len(ks) != 1 || !findEvent(r, ks[0], "SecretKeySpec.<init> const_byte[]") {
		t.Errorf("Arrays.copyOf lost constness: %v", evKeys(r, ks[0]))
	}
}

func TestParseIntFolding(t *testing.T) {
	src := `
class C {
    void go(char[] pw, byte[] salt) throws Exception {
        PBEKeySpec s = new PBEKeySpec(pw, salt, Integer.parseInt("100"), 256);
    }
}
`
	r := AnalyzeSource(src, Options{})
	ps := r.ObjsOfType(cryptoapi.PBEKeySpec)
	if len(ps) != 1 || !findEvent(r, ps[0], "PBEKeySpec.<init> ⊤byte[] ⊤byte[] 100 256") {
		t.Errorf("parseInt fold missed: %v", evKeys(r, ps[0]))
	}
}
