package analysis

import (
	"repro/internal/absdom"
	"repro/internal/javaast"
)

// frame holds the per-method-invocation execution context: declared types of
// locals (for ⊤ refinement) and collected return values/states.
type frame struct {
	an       *analyzer
	ci       *classInfo
	varTypes map[string]*javaast.TypeRef
	retVals  []absdom.Value
	finished []*absdom.State // states that hit a return/throw
}

// execStmts flows the state set through a statement sequence, forking at
// branches and capping the fork count per Options.MaxStates.
func (f *frame) execStmts(stmts []javaast.Stmt, states []*absdom.State, depth int) []*absdom.State {
	for _, s := range stmts {
		states = f.execStmt(s, states, depth)
		if len(states) == 0 {
			return nil
		}
	}
	return states
}

// cap joins overflow states so the execution set stays bounded.
func (f *frame) cap(states []*absdom.State) []*absdom.State {
	max := f.an.opts.MaxStates
	if len(states) <= max {
		return states
	}
	base := states[max-1]
	for _, s := range states[max:] {
		base.JoinIn(s, &f.an.provArena)
	}
	return states[:max]
}

func (f *frame) execStmt(s javaast.Stmt, states []*absdom.State, depth int) []*absdom.State {
	f.an.step()
	switch x := s.(type) {
	case *javaast.Block:
		return f.execStmts(x.Stmts, states, depth)

	case *javaast.LocalVarDecl:
		f.varTypes[x.Name] = x.Type
		for _, st := range states {
			var v absdom.Value
			if x.Init != nil {
				v = f.an.eval(x.Init, st, f, depth)
			}
			v = refine(v, x.Type)
			if f.an.provOn && v.Prov != nil {
				v.Prov = f.an.prov1(absdom.ProvAssign, x, shAssigned, x.Name, v.Prov)
			}
			st.SetVar(x.Name, v)
		}
		return states

	case *javaast.ExprStmt:
		for _, st := range states {
			f.an.eval(x.X, st, f, depth)
		}
		return states

	case *javaast.IfStmt:
		var out []*absdom.State
		for _, st := range states {
			f.an.eval(x.Cond, st, f, depth)
			thenSt := st.Clone()
			thenLive := []*absdom.State{thenSt}
			if x.Then != nil {
				thenLive = f.execStmt(x.Then, thenLive, depth)
			}
			elseLive := []*absdom.State{st}
			if x.Else != nil {
				elseLive = f.execStmt(x.Else, elseLive, depth)
			}
			out = append(out, thenLive...)
			out = append(out, elseLive...)
		}
		return f.cap(out)

	case *javaast.WhileStmt:
		return f.execLoop(nil, x.Cond, nil, x.Body, states, depth)
	case *javaast.DoStmt:
		// The body runs at least once.
		states = f.execStmt(x.Body, states, depth)
		for _, st := range states {
			f.an.eval(x.Cond, st, f, depth)
		}
		return states
	case *javaast.ForStmt:
		states = f.execStmts(x.Init, states, depth)
		return f.execLoop(nil, x.Cond, x.Post, x.Body, states, depth)
	case *javaast.ForEachStmt:
		f.varTypes[x.Var.Name] = x.Var.Type
		for _, st := range states {
			f.an.eval(x.Expr, st, f, depth)
			st.SetVar(x.Var.Name, absdom.TopOfType(x.Var.Type.Base(), x.Var.Type.Dims))
		}
		return f.execLoop(nil, nil, nil, x.Body, states, depth)

	case *javaast.ReturnStmt:
		for _, st := range states {
			if x.X != nil {
				f.retVals = append(f.retVals, f.an.eval(x.X, st, f, depth))
			}
			f.finished = append(f.finished, st)
		}
		return nil
	case *javaast.ThrowStmt:
		for _, st := range states {
			f.an.eval(x.X, st, f, depth)
			f.finished = append(f.finished, st)
		}
		return nil

	case *javaast.TryStmt:
		for _, r := range x.Resources {
			f.varTypes[r.Name] = r.Type
			for _, st := range states {
				var v absdom.Value
				if r.Init != nil {
					v = f.an.eval(r.Init, st, f, depth)
				}
				st.SetVar(r.Name, refine(v, r.Type))
			}
		}
		// The try body may complete or be interrupted; catch bodies run on a
		// fork of the pre-body state (a sound over-approximation of "any
		// prefix ran").
		var preBody []*absdom.State
		for _, st := range states {
			preBody = append(preBody, st.Clone())
		}
		live := f.execStmts(x.Body.Stmts, states, depth)
		for _, c := range x.Catches {
			catchStates := preBody
			preBody = nil
			for _, st := range catchStates {
				if c.Param != nil && c.Param.Name != "" {
					st.SetVar(c.Param.Name, absdom.TopOfType(c.Param.Type.Base(), 0))
				}
			}
			live = append(live, f.execStmts(c.Body.Stmts, catchStates, depth)...)
			if len(x.Catches) > 1 {
				// Additional catches fork again from the same pre-state.
				preBody = nil
				for _, st := range catchStates {
					preBody = append(preBody, st.Clone())
				}
			}
		}
		live = f.cap(live)
		if x.Finally != nil {
			live = f.execStmts(x.Finally.Stmts, live, depth)
		}
		return live

	case *javaast.SwitchStmt:
		for _, st := range states {
			f.an.eval(x.Tag, st, f, depth)
		}
		var out []*absdom.State
		for _, st := range states {
			matched := false
			for _, cs := range x.Cases {
				if len(cs.Body) == 0 {
					continue
				}
				matched = true
				fork := st.Clone()
				out = append(out, f.execStmts(cs.Body, []*absdom.State{fork}, depth)...)
			}
			if !matched {
				out = append(out, st)
			} else {
				out = append(out, st) // fall-out path (no case taken)
			}
		}
		return f.cap(out)

	case *javaast.SyncStmt:
		for _, st := range states {
			f.an.eval(x.Lock, st, f, depth)
		}
		return f.execStmts(x.Body.Stmts, states, depth)

	case *javaast.LabeledStmt:
		if x.Stmt == nil {
			return states
		}
		return f.execStmt(x.Stmt, states, depth)

	case *javaast.AssertStmt:
		for _, st := range states {
			f.an.eval(x.Cond, st, f, depth)
			if x.Msg != nil {
				f.an.eval(x.Msg, st, f, depth)
			}
		}
		return states

	case *javaast.BreakStmt, *javaast.ContinueStmt, *javaast.EmptyStmt:
		return states

	default:
		return states
	}
}

// execLoop models a loop as "zero or one iteration": the post-loop state set
// is the union of skipping the body and executing it once. This covers the
// feature-extraction needs of the abstraction (events inside loop bodies are
// observed) without fixpoint iteration.
func (f *frame) execLoop(init []javaast.Stmt, cond javaast.Expr, post []javaast.Expr, body javaast.Stmt, states []*absdom.State, depth int) []*absdom.State {
	states = f.execStmts(init, states, depth)
	for _, st := range states {
		if cond != nil {
			f.an.eval(cond, st, f, depth)
		}
	}
	var out []*absdom.State
	for _, st := range states {
		skip := st.Clone()
		once := []*absdom.State{st}
		if body != nil {
			once = f.execStmt(body, once, depth)
		}
		for _, s := range once {
			for _, p := range post {
				f.an.eval(p, s, f, depth)
			}
		}
		out = append(out, skip)
		out = append(out, once...)
	}
	return f.cap(out)
}
