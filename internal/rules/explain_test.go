package rules

import (
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	res := analyze(t, wrap(`
        Cipher c = Cipher.getInstance("DES");
        c.init(Cipher.ENCRYPT_MODE, key);`))
	vs := Check(res, Context{}, []*Rule{R8})
	if len(vs) != 1 {
		t.Fatalf("violations = %d", len(vs))
	}
	out := Explain(vs[0], res)
	for _, want := range []string{
		"R8:", "Do not use Cipher with DES",
		"Cipher : getInstance(X) ∧ X=DES",
		"Cipher@l", `Cipher.getInstance("DES")`,
		"Cipher.init(ENCRYPT_MODE, Key)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestFormatEvent(t *testing.T) {
	res := analyze(t, wrap(`MessageDigest md = MessageDigest.getInstance("SHA-1");`))
	objs := res.ObjsOfType("MessageDigest")
	if len(objs) != 1 {
		t.Fatal("no digest object")
	}
	got := FormatEvent(res.Uses[objs[0]][0])
	if got != `MessageDigest.getInstance("SHA-1")` {
		t.Errorf("FormatEvent = %q", got)
	}
}
