package rules

import (
	"testing"

	"repro/internal/analysis"
)

func analyzeSrc(t *testing.T, src string) *analysis.Result {
	t.Helper()
	return analysis.Analyze(analysis.ParseProgram(map[string]string{"T.java": src}), analysis.Options{})
}

// TestExplanationCoverage walks both rule registries and requires a
// non-empty remediation note for every ID — new rules must register one.
func TestExplanationCoverage(t *testing.T) {
	for _, r := range append(All(), CryptoLint()...) {
		if Explanation(r.ID) == "" {
			t.Errorf("rule %s has no explanation", r.ID)
		}
	}
}

// TestEvidenceFindersCoverAllRules requires every positive clause of the
// registered rules to carry an exact evidence finder (no fallback).
func TestEvidenceFindersCoverAllRules(t *testing.T) {
	for _, r := range append(All(), CryptoLint()...) {
		for i, c := range r.Clauses {
			if c.Negated {
				continue
			}
			if c.Find == nil {
				t.Errorf("rule %s clause %d (%s) has no evidence finder", r.ID, i, c.Class)
			}
		}
	}
}

// TestEvidencePinpointsSinkArgument checks that evidence for an ECB
// violation names the getInstance call and its transformation argument.
func TestEvidencePinpointsSinkArgument(t *testing.T) {
	res := analyzeSrc(t, `
		import javax.crypto.Cipher;
		class T {
			void run() throws Exception {
				Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding");
				c.doFinal(new byte[16]);
			}
		}`)
	vs := Check(res, Context{}, []*Rule{R7})
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %d", len(vs))
	}
	ev := vs[0].Evidence(res, Context{})
	if len(ev) != len(vs[0].Objs) {
		t.Fatalf("evidence covers %d objects, want %d", len(ev), len(vs[0].Objs))
	}
	for obj, matches := range ev {
		if len(matches) == 0 {
			t.Fatalf("no evidence for object %s", obj.SiteLabel())
		}
		m := matches[0]
		got := res.Uses[obj][m.EventIndex]
		if got.Sig.Name != "getInstance" {
			t.Errorf("evidence event = %s, want getInstance", got.Sig.Name)
		}
		if len(m.Args) != 1 || m.Args[0] != 0 {
			t.Errorf("evidence args = %v, want [0]", m.Args)
		}
	}
}

// TestEvidenceFallbackForPredOnlyRules checks that a rule without finders
// (the DSL/custom-rule shape) still yields evidence for every witness.
func TestEvidenceFallbackForPredOnlyRules(t *testing.T) {
	res := analyzeSrc(t, `
		import javax.crypto.Cipher;
		class T {
			void run() throws Exception {
				Cipher c = Cipher.getInstance("DES");
			}
		}`)
	bare := &Rule{
		ID:          "X1",
		Description: "pred-only rule",
		Clauses:     []Clause{{Class: "Cipher", Pred: predDES}},
	}
	vs := Check(res, Context{}, []*Rule{bare})
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %d", len(vs))
	}
	for obj, matches := range vs[0].Evidence(res, Context{}) {
		if len(matches) == 0 {
			t.Fatalf("fallback produced no evidence for %s", obj.SiteLabel())
		}
	}
}
