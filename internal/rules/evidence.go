package rules

import (
	"sort"
	"strings"

	"repro/internal/absdom"
	"repro/internal/analysis"
	"repro/internal/cryptoapi"
)

// Evidence pinpoints, per witnessing object, which recorded usage events a
// rule actually matched on and which argument positions were decisive. The
// witness reconstruction uses it to start traces at the right sink call and
// the right sink arguments instead of dumping every event of the object.

// EventMatch identifies one matched usage event of an object.
type EventMatch struct {
	// EventIndex indexes into res.Uses[obj].
	EventIndex int
	// Args lists the argument positions the rule predicate inspected (the
	// "interesting" values whose provenance a witness trace should follow).
	// Empty means the event itself — not a particular argument — is the
	// evidence (e.g. R4's getInstanceStrong).
	Args []int
}

// EvidenceFn locates the events of one object that satisfy a clause.
type EvidenceFn func(res *analysis.Result, obj *absdom.AObj, ctx Context) []EventMatch

// Evidence maps each witnessing object of the violation to the events that
// made it match. Clauses that carry a Find function report exact matches;
// clauses without one (DSL-compiled and custom rules) fall back to every
// event of the object with its constant arguments marked. The result is
// deterministic: matches are ordered by event index with sorted, deduplicated
// argument lists.
func (v Violation) Evidence(res *analysis.Result, ctx Context) map[*absdom.AObj][]EventMatch {
	out := make(map[*absdom.AObj][]EventMatch, len(v.Objs))
	for _, obj := range v.Objs {
		var matches []EventMatch
		for _, c := range v.Rule.Clauses {
			if c.Negated || c.Class != obj.Type {
				continue
			}
			if c.Pred != nil && !c.Pred(res, obj, ctx) {
				continue
			}
			if c.Find != nil {
				matches = append(matches, c.Find(res, obj, ctx)...)
			}
		}
		if len(matches) == 0 {
			matches = fallbackEvidence(res, obj)
		}
		out[obj] = dedupeMatches(matches)
	}
	return out
}

// fallbackEvidence marks every event of the object, flagging its constant
// arguments — the best generic guess for rules compiled from the DSL or
// registered programmatically, which only expose an opaque predicate.
func fallbackEvidence(res *analysis.Result, obj *absdom.AObj) []EventMatch {
	evs := res.Uses[obj]
	matches := make([]EventMatch, 0, len(evs))
	for i, ev := range evs {
		var args []int
		for j, a := range ev.Args {
			if a.IsConst() {
				args = append(args, j)
			}
		}
		matches = append(matches, EventMatch{EventIndex: i, Args: args})
	}
	return matches
}

// dedupeMatches merges matches of the same event (several clauses can hit
// the same call) and canonicalizes ordering.
func dedupeMatches(matches []EventMatch) []EventMatch {
	if len(matches) == 0 {
		return nil
	}
	byEvent := map[int][]int{}
	for _, m := range matches {
		byEvent[m.EventIndex] = append(byEvent[m.EventIndex], m.Args...)
	}
	idxs := make([]int, 0, len(byEvent))
	for i := range byEvent {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]EventMatch, 0, len(idxs))
	for _, i := range idxs {
		args := byEvent[i]
		sort.Ints(args)
		uniq := args[:0]
		for _, a := range args {
			if len(uniq) == 0 || uniq[len(uniq)-1] != a {
				uniq = append(uniq, a)
			}
		}
		out = append(out, EventMatch{EventIndex: i, Args: uniq})
	}
	return out
}

// findEvents is the evidence twin of existsEvent: it returns every event
// with the given method name that test accepts, where test also names the
// decisive argument positions.
func findEvents(res *analysis.Result, obj *absdom.AObj, method string, test func(analysis.Event) (bool, []int)) []EventMatch {
	var out []EventMatch
	for i, ev := range res.Uses[obj] {
		if method != "" && ev.Sig.Name != method {
			continue
		}
		if test == nil {
			out = append(out, EventMatch{EventIndex: i})
			continue
		}
		if ok, args := test(ev); ok {
			out = append(out, EventMatch{EventIndex: i, Args: args})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Per-rule evidence finders (mirrors of the predicates in registry.go)
// ---------------------------------------------------------------------------

func findDigestWeak(res *analysis.Result, obj *absdom.AObj, _ Context) []EventMatch {
	return findEvents(res, obj, "getInstance", func(ev analysis.Event) (bool, []int) {
		s, ok := argStr(ev, 0)
		return ok && isWeakDigest(s), []int{0}
	})
}

func findPBEIterations(res *analysis.Result, obj *absdom.AObj, _ Context) []EventMatch {
	return findEvents(res, obj, "<init>", func(ev analysis.Event) (bool, []int) {
		if len(ev.Args) < 3 {
			return false, nil
		}
		return argIntLess(ev, 2, cryptoapi.MinPBEIterations), []int{2}
	})
}

func findNotSHA1PRNG(res *analysis.Result, obj *absdom.AObj, _ Context) []EventMatch {
	out := findEvents(res, obj, "<init>", nil)
	out = append(out, findEvents(res, obj, "getInstance", func(ev analysis.Event) (bool, []int) {
		s, ok := argStr(ev, 0)
		if !ok {
			return true, nil
		}
		return normalizeAlg(s) != cryptoapi.SHA1PRNG, []int{0}
	})...)
	return out
}

func findInstanceStrong(res *analysis.Result, obj *absdom.AObj, _ Context) []EventMatch {
	return findEvents(res, obj, "getInstanceStrong", nil)
}

func findNotBouncyCastle(res *analysis.Result, obj *absdom.AObj, _ Context) []EventMatch {
	return findEvents(res, obj, "getInstance", func(ev analysis.Event) (bool, []int) {
		if len(ev.Args) >= 2 {
			s, ok := argStr(ev, 1)
			return !ok || s != cryptoapi.ProviderBouncyCastle, []int{1}
		}
		return true, nil // the missing provider argument is the evidence
	})
}

func findAndroidPRNG(res *analysis.Result, obj *absdom.AObj, ctx Context) []EventMatch {
	if ctx.HasLPRNG || ctx.MinSDKVersion < 16 {
		return nil
	}
	out := findEvents(res, obj, "<init>", nil)
	out = append(out, findEvents(res, obj, "getInstance", nil)...)
	return out
}

func findECB(res *analysis.Result, obj *absdom.AObj, _ Context) []EventMatch {
	return findEvents(res, obj, "getInstance", func(ev analysis.Event) (bool, []int) {
		s, ok := argStr(ev, 0)
		return ok && isECBTransformation(s), []int{0}
	})
}

func findDES(res *analysis.Result, obj *absdom.AObj, _ Context) []EventMatch {
	return findEvents(res, obj, "getInstance", func(ev analysis.Event) (bool, []int) {
		s, ok := argStr(ev, 0)
		if !ok {
			return false, nil
		}
		return normalizeAlg(cryptoapi.ParseTransformation(s).Algorithm) == "DES", []int{0}
	})
}

func findCtorConstArg(i int) EvidenceFn {
	return func(res *analysis.Result, obj *absdom.AObj, _ Context) []EventMatch {
		return findEvents(res, obj, "<init>", func(ev analysis.Event) (bool, []int) {
			return argIsConstData(ev, i), []int{i}
		})
	}
}

func findStaticSeed(res *analysis.Result, obj *absdom.AObj, _ Context) []EventMatch {
	return findEvents(res, obj, "setSeed", func(ev analysis.Event) (bool, []int) {
		return argIsConstData(ev, 0), []int{0}
	})
}

func findTransformPrefix(prefix string) EvidenceFn {
	return func(res *analysis.Result, obj *absdom.AObj, _ Context) []EventMatch {
		return findEvents(res, obj, "getInstance", func(ev analysis.Event) (bool, []int) {
			s, ok := argStr(ev, 0)
			return ok && strings.HasPrefix(normalizeAlg(s), normalizeAlg(prefix)), []int{0}
		})
	}
}
