package rules

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
)

// Explain renders a human-readable account of one violation: for each
// witnessing object, its allocation site and the abstract usage events that
// the rule matched against, in the notation of the paper's examples. Its
// output is part of the stable -v CLI surface; the remediation notes of
// Explanation are rendered by the witness (-why) path instead.
func Explain(v Violation, res *analysis.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", v.Rule.ID, v.Rule.Description)
	fmt.Fprintf(&sb, "  rule: %s\n", v.Rule.Formula)
	for _, o := range v.Objs {
		fmt.Fprintf(&sb, "  object %s (line %d):\n", o.SiteLabel(), o.Site.Line)
		for _, ev := range res.Uses[o] {
			fmt.Fprintf(&sb, "    %s\n", FormatEvent(ev))
		}
	}
	return sb.String()
}

// explanations holds one remediation note per registered rule: what the
// weakness is and what to do instead. Keep every ID from All() and
// CryptoLint() covered — TestExplanationCoverage walks both registries.
var explanations = map[string]string{
	"R1": "SHA-1 collisions are practical (SHAttered, 2017); an attacker can forge " +
		"two inputs with the same digest. Use MessageDigest.getInstance(\"SHA-256\") or stronger.",
	"R2": "Few PBE iterations make offline password guessing cheap. Pass an iteration " +
		"count of at least 1000 (OWASP recommends far more) to PBEKeySpec.",
	"R3": "Relying on the platform-default PRNG binds you to whatever the provider ships, " +
		"which has been weak on some platforms. Request SecureRandom.getInstance(\"SHA1PRNG\") explicitly.",
	"R4": "getInstanceStrong may block on /dev/random and stall servers under entropy " +
		"starvation; the default SecureRandom constructor is already cryptographically strong.",
	"R5": "The default JCA provider historically enforced export-grade key-size limits. " +
		"Select the BouncyCastle provider: Cipher.getInstance(transformation, \"BC\").",
	"R6": "Android SDK 16-18 seeded the PRNG from too little entropy (the 2013 Bitcoin " +
		"wallet incident). Apply the Android PRNG fix before creating SecureRandom, or raise minSdkVersion.",
	"R7": "ECB encrypts equal plaintext blocks to equal ciphertext blocks, leaking " +
		"structure. Use an authenticated mode such as AES/GCM/NoPadding.",
	"R8": "A 56-bit DES key falls to brute force in hours. Use AES (128-bit or larger keys).",
	"R9": "A fixed IV makes CBC deterministic: equal prefixes produce equal ciphertexts. " +
		"Generate a fresh random IV per encryption with SecureRandom.",
	"R10": "A key compiled into the binary is recoverable by anyone who can read the " +
		"artifact. Derive or load keys at runtime (KeyGenerator, a keystore, or PBE).",
	"R11": "A constant salt lets one rainbow table cover every user. Generate a random " +
		"salt per password and store it alongside the hash.",
	"R12": "Seeding SecureRandom with a constant makes its output reproducible. Use the " +
		"self-seeding constructor; call setSeed only to add entropy, never with literals.",
	"R13": "CBC ciphertexts are malleable; without a MAC an attacker can flip plaintext " +
		"bits undetected. Add Mac.getInstance(\"HmacSHA256\") over the ciphertext (encrypt-then-MAC).",
	"CL1": "ECB encrypts equal plaintext blocks to equal ciphertext blocks, leaking " +
		"structure. Use an authenticated mode such as AES/GCM/NoPadding.",
	"CL2": "A fixed IV makes CBC deterministic: equal prefixes produce equal ciphertexts. " +
		"Generate a fresh random IV per encryption with SecureRandom.",
	"CL3": "A key compiled into the binary is recoverable by anyone who can read the " +
		"artifact. Derive or load keys at runtime (KeyGenerator, a keystore, or PBE).",
	"CL4": "Few PBE iterations make offline password guessing cheap. Pass an iteration " +
		"count of at least 1000 (OWASP recommends far more) to PBEKeySpec.",
	"CL5": "A constant salt lets one rainbow table cover every user. Generate a random " +
		"salt per password and store it alongside the hash.",
}

// Explanation returns the remediation note for a rule ID ("" when the rule
// is unknown, e.g. DSL-defined rules).
func Explanation(id string) string {
	return explanations[id]
}

// FormatEvent renders one abstract usage event, e.g.
// `Cipher.getInstance("AES", "BC")`.
func FormatEvent(ev analysis.Event) string {
	parts := make([]string, len(ev.Args))
	for i, a := range ev.Args {
		parts[i] = a.Label()
	}
	return fmt.Sprintf("%s.%s(%s)", ev.Sig.Class, ev.Sig.Name, strings.Join(parts, ", "))
}
