package rules

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
)

// Explain renders a human-readable account of one violation: for each
// witnessing object, its allocation site and the abstract usage events that
// the rule matched against, in the notation of the paper's examples.
func Explain(v Violation, res *analysis.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", v.Rule.ID, v.Rule.Description)
	fmt.Fprintf(&sb, "  rule: %s\n", v.Rule.Formula)
	for _, o := range v.Objs {
		fmt.Fprintf(&sb, "  object %s (line %d):\n", o.SiteLabel(), o.Site.Line)
		for _, ev := range res.Uses[o] {
			fmt.Fprintf(&sb, "    %s\n", FormatEvent(ev))
		}
	}
	return sb.String()
}

// FormatEvent renders one abstract usage event, e.g.
// `Cipher.getInstance("AES", "BC")`.
func FormatEvent(ev analysis.Event) string {
	parts := make([]string, len(ev.Args))
	for i, a := range ev.Args {
		parts[i] = a.Label()
	}
	return fmt.Sprintf("%s.%s(%s)", ev.Sig.Class, ev.Sig.Name, strings.Join(parts, ", "))
}
