package rules

import (
	"strings"

	"repro/internal/absdom"
	"repro/internal/analysis"
	"repro/internal/cryptoapi"
)

// The 13 security rules of the paper's Figure 9.
var (
	// R1: Use SHA-256 instead of SHA-1.
	R1 = &Rule{
		ID:          "R1",
		Description: "Use SHA-256 instead of SHA-1",
		Formula:     "MessageDigest : getInstance(X) ∧ X=SHA-1",
		Ref:         "Stevens et al., the first SHA-1 collision (2017)",
		Clauses:     []Clause{{Class: cryptoapi.MessageDigest, Pred: predDigestWeak, Find: findDigestWeak}},
	}

	// R2: PBE iteration count must be at least 1000.
	R2 = &Rule{
		ID:          "R2",
		Description: "Do not use password-based encryption with iteration count less than 1000",
		Formula:     "PBEKeySpec : <init>(_,_,X,_) ∧ X<1000",
		Ref:         "Abadi & Warinschi, Password-Based Encryption Analyzed (2005)",
		Clauses:     []Clause{{Class: cryptoapi.PBEKeySpec, Pred: predPBEIterations, Find: findPBEIterations}},
	}

	// R3: SecureRandom should be used with SHA1PRNG.
	R3 = &Rule{
		ID:          "R3",
		Description: "SecureRandom should be used with SHA1PRNG",
		Formula:     "SecureRandom : <init>(X) ∧ X≠SHA-1PRNG",
		Ref:         "The Right Way to Use SecureRandom (2015)",
		Clauses:     []Clause{{Class: cryptoapi.SecureRandom, Pred: predNotSHA1PRNG, Find: findNotSHA1PRNG}},
	}

	// R4: avoid getInstanceStrong on server-side code.
	R4 = &Rule{
		ID:          "R4",
		Description: "SecureRandom with getInstanceStrong should be avoided",
		Formula:     "SecureRandom : ¬getInstanceStrong",
		Ref:         "Proper use of Java SecureRandom (2016)",
		Clauses:     []Clause{{Class: cryptoapi.SecureRandom, Pred: predInstanceStrong, Find: findInstanceStrong}},
	}

	// R5: use the BouncyCastle provider for Cipher.
	R5 = &Rule{
		ID:          "R5",
		Description: "Use the BouncyCastle provider for Cipher",
		Formula:     "Cipher : getInstance(_,X) ∧ X≠BC",
		Ref:         "Bouncy Castle vs JCA key-size restrictions (2016)",
		Clauses:     []Clause{{Class: cryptoapi.Cipher, Pred: predNotBouncyCastle, Find: findNotBouncyCastle}},
	}

	// R6: Android SecureRandom PRNG vulnerability on SDK 16-18.
	R6 = &Rule{
		ID:            "R6",
		Description:   "The underlying PRNG is vulnerable on Android v16-18",
		Formula:       "SecureRandom : <init>(_) ∧ ¬LPRNG ∧ MIN_SDK_VERSION≥16",
		Ref:           "Kaplan et al., Attacking the Linux PRNG on Android (WOOT'14)",
		Clauses:       []Clause{{Class: cryptoapi.SecureRandom, Pred: predAndroidPRNG, Find: findAndroidPRNG}},
		ApplicableCtx: func(ctx Context) bool { return ctx.Android },
	}

	// R7: do not use Cipher in AES/ECB mode.
	R7 = &Rule{
		ID:          "R7",
		Description: "Do not use Cipher in AES/ECB mode",
		Formula:     "Cipher : getInstance(X) ∧ (X=AES ∨ X=AES/ECB)",
		Ref:         "Bellare & Rogaway, Introduction to Modern Cryptography",
		Clauses:     []Clause{{Class: cryptoapi.Cipher, Pred: predECB, Find: findECB}},
	}

	// R8: do not use DES.
	R8 = &Rule{
		ID:          "R8",
		Description: "Do not use Cipher with DES mode",
		Formula:     "Cipher : getInstance(X) ∧ X=DES",
		Ref:         "CERT MSC61-J: do not use insecure or weak cryptographic algorithms",
		Clauses:     []Clause{{Class: cryptoapi.Cipher, Pred: predDES, Find: findDES}},
	}

	// R9: IV must not be a static byte array.
	R9 = &Rule{
		ID:          "R9",
		Description: "IvParameterSpec should not be initialized with a static byte array",
		Formula:     "IvParameterSpec : <init>(X) ∧ X≠⊤byte[]",
		Ref:         "Bellare & Rogaway, Introduction to Modern Cryptography",
		Clauses:     []Clause{{Class: cryptoapi.IvParameterSpec, Pred: predCtorConstArg(0), Find: findCtorConstArg(0)}},
	}

	// R10: secret keys must not be static.
	R10 = &Rule{
		ID:          "R10",
		Description: "SecretKeySpec should not be static",
		Formula:     "SecretKeySpec : <init>(X) ∧ X≠⊤byte[]",
		Ref:         "CryptoLint rule 3 (Egele et al., CCS'13)",
		Clauses:     []Clause{{Class: cryptoapi.SecretKeySpec, Pred: predCtorConstArg(0), Find: findCtorConstArg(0)}},
	}

	// R11: PBE salt must not be static.
	R11 = &Rule{
		ID:          "R11",
		Description: "Do not use password-based encryption with static salt",
		Formula:     "PBEKeySpec : <init>(_,X,_,_) ∧ X≠⊤byte[]",
		Ref:         "CryptoLint rule 4 (Egele et al., CCS'13)",
		Clauses:     []Clause{{Class: cryptoapi.PBEKeySpec, Pred: predCtorConstArg(1), Find: findCtorConstArg(1)}},
	}

	// R12: SecureRandom seeds must not be static.
	R12 = &Rule{
		ID:          "R12",
		Description: "Do not use SecureRandom static seed",
		Formula:     "SecureRandom : setSeed(X) ∧ X≠⊤byte[]",
		Ref:         "CryptoLint rule 6 (Egele et al., CCS'13)",
		Clauses:     []Clause{{Class: cryptoapi.SecureRandom, Pred: predStaticSeed, Find: findStaticSeed}},
	}

	// R13: integrity is missing after an RSA-based symmetric key exchange.
	R13 = &Rule{
		ID:          "R13",
		Description: "Missing integrity check after symmetric key exchange",
		Formula: "(Cipher : getInstance(X) ∧ startsWith(X,AES/CBC)) ∧ " +
			"(Cipher : getInstance(Y) ∧ Y=RSA) ∧ ¬(Mac : getInstance(Z) ∧ startsWith(Z,Hmac))",
		Ref: "Top 10 developer crypto mistakes (2017)",
		Clauses: []Clause{
			{Class: cryptoapi.Cipher, Pred: predTransformPrefix("AES/CBC"), Find: findTransformPrefix("AES/CBC")},
			{Class: cryptoapi.Cipher, Pred: predTransformPrefix("RSA"), Find: findTransformPrefix("RSA")},
			{Class: cryptoapi.Mac, Negated: true, Pred: predMacHmac},
		},
	}
)

// All returns the 13 elicited rules of Figure 9, in order.
func All() []*Rule {
	return []*Rule{R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12, R13}
}

// The five CryptoLint reference rules of §6.2 (subset of Figure 9,
// re-labeled). CL1 = ECB, CL2 = static IV, CL3 = constant key,
// CL4 = low PBE iteration count, CL5 = static salt.
var (
	CL1 = &Rule{ID: "CL1", Description: "Do not use ECB mode for encryption",
		Formula: R7.Formula, Clauses: R7.Clauses}
	CL2 = &Rule{ID: "CL2", Description: "Do not use a static initialization vector",
		Formula: R9.Formula, Clauses: R9.Clauses}
	CL3 = &Rule{ID: "CL3", Description: "Do not use constant encryption keys",
		Formula: R10.Formula, Clauses: R10.Clauses}
	CL4 = &Rule{ID: "CL4", Description: "Do not use fewer than 1000 PBE iterations",
		Formula: R2.Formula, Clauses: R2.Clauses}
	CL5 = &Rule{ID: "CL5", Description: "Do not use static salts for PBE",
		Formula: R11.Formula, Clauses: R11.Clauses}
)

// CryptoLint returns the CL1–CL5 reference rules, in order.
func CryptoLint() []*Rule {
	return []*Rule{CL1, CL2, CL3, CL4, CL5}
}

// ByID resolves a rule identifier (R1..R13, CL1..CL5).
func ByID(id string) *Rule {
	for _, r := range append(All(), CryptoLint()...) {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Rule predicates
// ---------------------------------------------------------------------------

func predDigestWeak(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
	return existsEvent(res, obj, "getInstance", func(ev analysis.Event) bool {
		s, ok := argStr(ev, 0)
		return ok && isWeakDigest(s)
	})
}

func predPBEIterations(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
	return existsEvent(res, obj, "<init>", func(ev analysis.Event) bool {
		// <init>(pw, salt, iterations[, keyLen]): the count is argument 3.
		if len(ev.Args) < 3 {
			return false
		}
		return argIntLess(ev, 2, cryptoapi.MinPBEIterations)
	})
}

func predNotSHA1PRNG(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
	// Violated when the object is created without selecting SHA1PRNG:
	// plain constructors, or getInstance with a different algorithm.
	viaCtor := existsEvent(res, obj, "<init>", nil)
	viaGet := existsEvent(res, obj, "getInstance", func(ev analysis.Event) bool {
		s, ok := argStr(ev, 0)
		return !ok || normalizeAlg(s) != cryptoapi.SHA1PRNG
	})
	return viaCtor || viaGet
}

func predInstanceStrong(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
	return existsEvent(res, obj, "getInstanceStrong", nil)
}

func predNotBouncyCastle(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
	return existsEvent(res, obj, "getInstance", func(ev analysis.Event) bool {
		if len(ev.Args) >= 2 {
			s, ok := argStr(ev, 1)
			return !ok || s != cryptoapi.ProviderBouncyCastle
		}
		return true // no provider argument: the default (non-BC) provider
	})
}

func predAndroidPRNG(res *analysis.Result, obj *absdom.AObj, ctx Context) bool {
	if ctx.HasLPRNG || ctx.MinSDKVersion < 16 {
		return false
	}
	return existsEvent(res, obj, "<init>", nil) ||
		existsEvent(res, obj, "getInstance", nil)
}

func predECB(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
	return existsEvent(res, obj, "getInstance", func(ev analysis.Event) bool {
		s, ok := argStr(ev, 0)
		return ok && isECBTransformation(s)
	})
}

func predDES(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
	return existsEvent(res, obj, "getInstance", func(ev analysis.Event) bool {
		s, ok := argStr(ev, 0)
		if !ok {
			return false
		}
		return normalizeAlg(cryptoapi.ParseTransformation(s).Algorithm) == "DES"
	})
}

// predCtorConstArg flags constructors whose i-th argument is compile-time
// constant data (X ≠ ⊤byte[]).
func predCtorConstArg(i int) ObjPred {
	return func(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
		return existsEvent(res, obj, "<init>", func(ev analysis.Event) bool {
			return argIsConstData(ev, i)
		})
	}
}

func predStaticSeed(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
	return existsEvent(res, obj, "setSeed", func(ev analysis.Event) bool {
		return argIsConstData(ev, 0)
	})
}

// predTransformPrefix matches getInstance transformations by prefix.
func predTransformPrefix(prefix string) ObjPred {
	return func(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
		return existsEvent(res, obj, "getInstance", func(ev analysis.Event) bool {
			s, ok := argStr(ev, 0)
			return ok && strings.HasPrefix(normalizeAlg(s), normalizeAlg(prefix))
		})
	}
}

func predMacHmac(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
	return existsEvent(res, obj, "getInstance", func(ev analysis.Event) bool {
		s, ok := argStr(ev, 0)
		return ok && strings.HasPrefix(normalizeAlg(s), "HMAC")
	})
}
