package rules

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/change"
	"repro/internal/cryptoapi"
)

func analyze(t *testing.T, src string) *analysis.Result {
	t.Helper()
	return analysis.AnalyzeSource(src, analysis.Options{})
}

func wrap(body string) string {
	return "class T {\n    void run(Key key, char[] pw) throws Exception {\n" +
		body + "\n    }\n}\n"
}

// matchCase runs one rule against one snippet.
func matchCase(t *testing.T, r *Rule, body string, ctx Context, want bool) {
	t.Helper()
	res := analyze(t, wrap(body))
	got, _ := r.Matches(res, ctx)
	if got != want {
		t.Errorf("%s on %q: match = %v, want %v", r.ID, body, got, want)
	}
}

func TestR1WeakDigest(t *testing.T) {
	matchCase(t, R1, `MessageDigest md = MessageDigest.getInstance("SHA-1");`, Context{}, true)
	matchCase(t, R1, `MessageDigest md = MessageDigest.getInstance("MD5");`, Context{}, true)
	matchCase(t, R1, `MessageDigest md = MessageDigest.getInstance("SHA-256");`, Context{}, false)
	matchCase(t, R1, `MessageDigest md = MessageDigest.getInstance("sha1");`, Context{}, true)
}

func TestR2PBEIterations(t *testing.T) {
	matchCase(t, R2, `PBEKeySpec s = new PBEKeySpec(pw, salt(), 100, 256);`, Context{}, true)
	matchCase(t, R2, `PBEKeySpec s = new PBEKeySpec(pw, salt(), 10000, 256);`, Context{}, false)
	matchCase(t, R2, `PBEKeySpec s = new PBEKeySpec(pw, salt(), 999);`, Context{}, true)
	// Unknown iteration count: not provably below the bound.
	matchCase(t, R2, `PBEKeySpec s = new PBEKeySpec(pw, salt(), iter(), 256);`, Context{}, false)
}

func TestR3SHA1PRNG(t *testing.T) {
	matchCase(t, R3, `SecureRandom r = new SecureRandom();`, Context{}, true)
	matchCase(t, R3, `SecureRandom r = SecureRandom.getInstance("SHA1PRNG");`, Context{}, false)
	matchCase(t, R3, `SecureRandom r = SecureRandom.getInstance("NativePRNG");`, Context{}, true)
}

func TestR4InstanceStrong(t *testing.T) {
	matchCase(t, R4, `SecureRandom r = SecureRandom.getInstanceStrong();`, Context{}, true)
	matchCase(t, R4, `SecureRandom r = new SecureRandom();`, Context{}, false)
}

func TestR5BouncyCastle(t *testing.T) {
	matchCase(t, R5, `Cipher c = Cipher.getInstance("AES/GCM/NoPadding");`, Context{}, true)
	matchCase(t, R5, `Cipher c = Cipher.getInstance("AES/GCM/NoPadding", "BC");`, Context{}, false)
	matchCase(t, R5, `Cipher c = Cipher.getInstance("AES/GCM/NoPadding", "SunJCE");`, Context{}, true)
}

func TestR6AndroidPRNG(t *testing.T) {
	body := `SecureRandom r = new SecureRandom();`
	matchCase(t, R6, body, Context{Android: true, MinSDKVersion: 16}, true)
	matchCase(t, R6, body, Context{Android: true, MinSDKVersion: 16, HasLPRNG: true}, false)
	matchCase(t, R6, body, Context{Android: true, MinSDKVersion: 21}, true)
	matchCase(t, R6, body, Context{Android: true, MinSDKVersion: 15}, false)
	matchCase(t, R6, body, Context{}, false) // not Android at all
}

func TestR7ECB(t *testing.T) {
	matchCase(t, R7, `Cipher c = Cipher.getInstance("AES");`, Context{}, true)
	matchCase(t, R7, `Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding");`, Context{}, true)
	matchCase(t, R7, `Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");`, Context{}, false)
	matchCase(t, R7, `Cipher c = Cipher.getInstance("AES/GCM/NoPadding");`, Context{}, false)
	matchCase(t, R7, `Cipher c = Cipher.getInstance("RSA");`, Context{}, false)
}

func TestR8DES(t *testing.T) {
	matchCase(t, R8, `Cipher c = Cipher.getInstance("DES");`, Context{}, true)
	matchCase(t, R8, `Cipher c = Cipher.getInstance("DES/CBC/PKCS5Padding");`, Context{}, true)
	matchCase(t, R8, `Cipher c = Cipher.getInstance("DESede");`, Context{}, false)
	matchCase(t, R8, `Cipher c = Cipher.getInstance("AES");`, Context{}, false)
}

func TestR9StaticIV(t *testing.T) {
	matchCase(t, R9, `IvParameterSpec iv = new IvParameterSpec(new byte[]{1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16});`, Context{}, true)
	matchCase(t, R9, `byte[] b = new byte[16]; IvParameterSpec iv = new IvParameterSpec(b);`, Context{}, true)
	matchCase(t, R9, `byte[] b = new byte[16]; new SecureRandom().nextBytes(b); IvParameterSpec iv = new IvParameterSpec(b);`, Context{}, false)
	matchCase(t, R9, `IvParameterSpec iv = new IvParameterSpec(random());`, Context{}, false)
}

func TestR10StaticKey(t *testing.T) {
	matchCase(t, R10, `SecretKeySpec k = new SecretKeySpec(new byte[]{1,2,3,4}, "AES");`, Context{}, true)
	matchCase(t, R10, `SecretKeySpec k = new SecretKeySpec(derive(), "AES");`, Context{}, false)
}

func TestR11StaticSalt(t *testing.T) {
	matchCase(t, R11, `PBEKeySpec s = new PBEKeySpec(pw, new byte[]{9,9,9,9}, 10000, 256);`, Context{}, true)
	matchCase(t, R11, `PBEKeySpec s = new PBEKeySpec(pw, randomSalt(), 10000, 256);`, Context{}, false)
}

func TestR12StaticSeed(t *testing.T) {
	matchCase(t, R12, `SecureRandom r = new SecureRandom(); r.setSeed(new byte[]{1,2,3});`, Context{}, true)
	matchCase(t, R12, `SecureRandom r = new SecureRandom(); r.setSeed(42);`, Context{}, true)
	matchCase(t, R12, `SecureRandom r = new SecureRandom(); r.setSeed(r.generateSeed(16));`, Context{}, false)
	matchCase(t, R12, `SecureRandom r = new SecureRandom();`, Context{}, false)
}

func TestR13Composite(t *testing.T) {
	vulnerable := `
        Cipher data = Cipher.getInstance("AES/CBC/PKCS5Padding");
        Cipher keyex = Cipher.getInstance("RSA/ECB/OAEPPadding");`
	fixed := vulnerable + `
        Mac mac = Mac.getInstance("HmacSHA256");`
	matchCase(t, R13, vulnerable, Context{}, true)
	matchCase(t, R13, fixed, Context{}, false)
	// Only one of the two cipher roles present: not a key-exchange pattern.
	matchCase(t, R13, `Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");`, Context{}, false)
}

func TestApplicable(t *testing.T) {
	res := analyze(t, wrap(`MessageDigest md = MessageDigest.getInstance("SHA-256");`))
	if !R1.Applicable(res, Context{}) {
		t.Error("R1 should be applicable to any MessageDigest user")
	}
	if R7.Applicable(res, Context{}) {
		t.Error("R7 applicable without any Cipher object")
	}
	// R13 applicability needs both positive clauses to match.
	res2 := analyze(t, wrap(`Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");`))
	if R13.Applicable(res2, Context{}) {
		t.Error("R13 applicable with only one cipher role")
	}
	res3 := analyze(t, wrap(`
        Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding");
        Cipher b = Cipher.getInstance("RSA");
        Mac m = Mac.getInstance("HmacSHA256");`))
	if !R13.Applicable(res3, Context{}) {
		t.Error("R13 not applicable although both cipher roles present")
	}
	if ok, _ := R13.Matches(res3, Context{}); ok {
		t.Error("R13 matches although HMAC is present")
	}
}

func TestCheckAggregates(t *testing.T) {
	res := analyze(t, wrap(`
        Cipher c = Cipher.getInstance("DES");
        MessageDigest md = MessageDigest.getInstance("MD5");`))
	vs := Check(res, Context{}, All())
	ids := map[string]bool{}
	for _, v := range vs {
		ids[v.Rule.ID] = true
		if len(v.Objs) == 0 {
			t.Errorf("%s: no witnesses", v.Rule.ID)
		}
	}
	for _, want := range []string{"R1", "R5", "R7", "R8"} {
		if !ids[want] {
			t.Errorf("expected violation %s, got %v", want, ids)
		}
	}
	if ids["R2"] || ids["R13"] {
		t.Errorf("unexpected violations: %v", ids)
	}
}

func TestClassify(t *testing.T) {
	oldRes := analyze(t, wrap(`Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding"); c.init(Cipher.ENCRYPT_MODE, key);`))
	newRes := analyze(t, wrap(`Cipher c = Cipher.getInstance("AES/GCM/NoPadding"); c.init(Cipher.ENCRYPT_MODE, key);`))
	if got := Classify(CL1, oldRes, newRes, Context{}); got != SecurityFix {
		t.Errorf("fix classified as %v", got)
	}
	if got := Classify(CL1, newRes, oldRes, Context{}); got != BuggyChange {
		t.Errorf("bug classified as %v", got)
	}
	if got := Classify(CL1, oldRes, oldRes, Context{}); got != NonSemantic {
		t.Errorf("no-op classified as %v", got)
	}
	if SecurityFix.String() != "fix" || BuggyChange.String() != "bug" || NonSemantic.String() != "none" {
		t.Error("ChangeType renderings wrong")
	}
}

func TestByID(t *testing.T) {
	if ByID("R7") != R7 || ByID("CL3") != CL3 {
		t.Error("ByID lookup failed")
	}
	if ByID("R99") != nil {
		t.Error("unknown ID should return nil")
	}
	if len(All()) != 13 {
		t.Errorf("All() = %d rules, want 13", len(All()))
	}
	if len(CryptoLint()) != 5 {
		t.Errorf("CryptoLint() = %d rules, want 5", len(CryptoLint()))
	}
	seen := map[string]bool{}
	for _, r := range append(All(), CryptoLint()...) {
		if seen[r.ID] {
			t.Errorf("duplicate rule ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Description == "" || r.Formula == "" {
			t.Errorf("%s missing description or formula", r.ID)
		}
	}
}

func TestSuggestFromPaperExample(t *testing.T) {
	oldRes := analyze(t, `
class AESCipher {
    Cipher enc;
    final String algorithm = "AES";
    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
        } catch (Exception e) {}
    }
}`)
	newRes := analyze(t, `
class AESCipher {
    Cipher enc;
    final String algorithm = "AES/CBC/PKCS5Padding";
    protected void setKeyAndIV(Secret key, String iv) {
        try {
            IvParameterSpec ivSpec = new IvParameterSpec(Hex.decodeHex(iv.toCharArray()));
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
        } catch (Exception e) {}
    }
}`)
	changes := change.Extract(oldRes, newRes, cryptoapi.Cipher, 0, change.Meta{})
	kept, _ := change.Filter(changes)
	if len(kept) != 1 {
		t.Fatalf("changes = %d", len(kept))
	}
	rule := Suggest(kept[0])
	// The suggested rule flags the unfixed (old) code...
	if ok, _ := rule.Matches(oldRes, Context{}); !ok {
		t.Errorf("suggested rule does not match the old version\n%s", rule.Formula)
	}
	// ...and accepts the fixed (new) code.
	if ok, _ := rule.Matches(newRes, Context{}); ok {
		t.Errorf("suggested rule still matches the fixed version\n%s", rule.Formula)
	}
	if rule.ID == "" || rule.Formula == "" {
		t.Error("suggested rule missing metadata")
	}
	// Stable ID for identical changes.
	if Suggest(kept[0]).ID != rule.ID {
		t.Error("suggested rule ID not deterministic")
	}
}
