package rules

import (
	"strings"

	"repro/internal/absdom"
	"repro/internal/analysis"
	"repro/internal/change"
	"repro/internal/usage"
)

// Suggest implements the automatic rule construction of §6.3: from a usage
// change (F−, F+) it builds a rule matching any usage that still has the
// removed features and has not adopted the added ones — i.e. any usage the
// mined fixes say must be fixed.
//
// For the paper's Figure 2(d) example the generated rule reads
//
//	Cipher : (getInstance(X) ∧ X = AES)
//	       ∧ (getInstance(Y) ⇒ Y ≠ AES/CBC/PKCS5Padding)
//	       ∧ (init(...) ⇒ no IvParameterSpec argument)
//
// expressed here as feature-path containment over the usage DAG.
func Suggest(c change.UsageChange) *Rule {
	removed := append([]usage.Path{}, c.Removed...)
	added := append([]usage.Path{}, c.Added...)
	formula := suggestFormula(c)
	pred := func(res *analysis.Result, obj *absdom.AObj, _ Context) bool {
		g := usage.Build(res, obj, usage.DefaultDepth)
		have := map[string]bool{}
		for _, p := range g.Paths() {
			have[p.Key()] = true
		}
		for _, p := range removed {
			if !have[p.Key()] {
				return false
			}
		}
		for _, p := range added {
			if have[p.Key()] {
				return false
			}
		}
		return true
	}
	return &Rule{
		ID:          "S-" + shortHash(c.Key()),
		Description: "Auto-suggested from a mined fix: usages retaining the removed features must be updated",
		Formula:     formula,
		Clauses:     []Clause{{Class: c.Class, Pred: pred}},
	}
}

func suggestFormula(c change.UsageChange) string {
	var parts []string
	for _, p := range c.Removed {
		parts = append(parts, "has("+strings.Join(p, " ")+")")
	}
	for _, p := range c.Added {
		parts = append(parts, "¬has("+strings.Join(p, " ")+")")
	}
	return c.Class + " : " + strings.Join(parts, " ∧ ")
}

// shortHash produces a stable 8-hex-digit tag (FNV-1a) for suggested rule
// identifiers.
func shortHash(s string) string {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	const hex = "0123456789abcdef"
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = hex[h&0xf]
		h >>= 4
	}
	return string(b[:])
}
