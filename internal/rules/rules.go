// Package rules implements the security-rule language of the paper's §6.3 —
// rules of the form t : φ where φ is a formula over a set of
// (method, abstract state) pairs — together with the registry of the 13
// elicited rules R1–R13 (Figure 9), the five CryptoLint reference rules
// CL1–CL5 used for the fix/bug classification of Figure 7, and the
// automatic rule suggestion of §6.3. The CryptoChecker evaluation of
// Figure 10 is the Check entry point.
package rules

import (
	"context"
	"strings"

	"repro/internal/absdom"
	"repro/internal/analysis"
	"repro/internal/cryptoapi"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Context carries project-level facts that some rules depend on. For rule
// R6 these are the Android minSdkVersion and whether the Linux-PRNG fix
// (the SecureRandom workaround described in the Android advisory) is
// installed.
type Context struct {
	Android       bool
	MinSDKVersion int
	HasLPRNG      bool
}

// ObjPred is a predicate over one abstract object's usages.
type ObjPred func(res *analysis.Result, obj *absdom.AObj, ctx Context) bool

// Clause is one conjunct of a rule: an existential (or, when Negated, a
// negated existential) over abstract objects of a class.
type Clause struct {
	Class   string
	Negated bool
	Pred    ObjPred
	// Find, when set, locates the events (and argument positions) the
	// predicate matched on, for witness-trace evidence. It must accept
	// exactly the events Pred accepts; clauses without one get fallback
	// evidence. Negated clauses never produce evidence.
	Find EvidenceFn
}

// Rule is a security rule t : φ (possibly composite, conjoining clauses
// over distinct objects, like R13).
type Rule struct {
	ID          string
	Description string
	Formula     string // rendering of φ in the paper's notation
	Ref         string // documentation reference
	Clauses     []Clause
	// ApplicableCtx further gates applicability on project context (R6).
	ApplicableCtx func(ctx Context) bool
}

// clauseMatch reports whether some object of the clause's class satisfies
// the predicate, and returns the witnesses.
func clauseMatch(c Clause, res *analysis.Result, ctx Context) []*absdom.AObj {
	var hits []*absdom.AObj
	for _, o := range res.ObjsOfType(c.Class) {
		if c.Pred == nil || c.Pred(res, o, ctx) {
			hits = append(hits, o)
		}
	}
	return hits
}

// Applicable reports whether the rule is applicable to the program: for a
// simple rule, an object of its class exists; for a composite rule, every
// positive clause matches (the negated clause decides Matches, not
// applicability — this is the reading under which the paper's Figure 10
// reports 8 applicable projects for R13).
func (r *Rule) Applicable(res *analysis.Result, ctx Context) bool {
	if r.ApplicableCtx != nil && !r.ApplicableCtx(ctx) {
		return false
	}
	positives := 0
	for _, c := range r.Clauses {
		if c.Negated {
			continue
		}
		positives++
	}
	if positives > 1 {
		for _, c := range r.Clauses {
			if c.Negated {
				continue
			}
			if len(clauseMatch(c, res, ctx)) == 0 {
				return false
			}
		}
		return true
	}
	for _, c := range r.Clauses {
		if c.Negated {
			continue
		}
		if len(res.ObjsOfType(c.Class)) > 0 {
			return true
		}
	}
	return false
}

// Matches reports whether the program violates the rule, returning the
// witnessing objects of the positive clauses.
func (r *Rule) Matches(res *analysis.Result, ctx Context) (bool, []*absdom.AObj) {
	if r.ApplicableCtx != nil && !r.ApplicableCtx(ctx) {
		return false, nil
	}
	var witnesses []*absdom.AObj
	for _, c := range r.Clauses {
		hits := clauseMatch(c, res, ctx)
		if c.Negated {
			if len(hits) > 0 {
				return false, nil
			}
			continue
		}
		if len(hits) == 0 {
			return false, nil
		}
		witnesses = append(witnesses, hits...)
	}
	return true, witnesses
}

// Violation is one matched rule with its witnesses.
type Violation struct {
	Rule *Rule
	Objs []*absdom.AObj
}

// Check runs a rule set over a program (CryptoChecker).
func Check(res *analysis.Result, ctx Context, ruleSet []*Rule) []Violation {
	return CheckPool(res, ctx, ruleSet, nil)
}

// CheckPool is Check over a worker pool: each rule evaluates concurrently
// (Matches only reads the analysis result), and the matches fan back in by
// rule index, so the violation list keeps Check's stable rule-set order at
// any worker count. A nil or one-worker pool is the exact serial path.
func CheckPool(res *analysis.Result, ctx Context, ruleSet []*Rule, p *parallel.Pool) []Violation {
	return CheckPoolCtx(context.Background(), res, ctx, ruleSet, p)
}

// CheckPoolCtx is CheckPool with trace propagation: under a traced tctx the
// evaluation runs as a "rules" child span with one "rule[i]" span per rule
// carrying the rule ID, ordered by rule-set index at any worker count. Rule
// evaluation keeps its pre-trace contract of never being canceled mid-set
// (the fan-out always ran under context.Background()); only the span
// propagates. On an untraced tctx this is exactly CheckPool.
func CheckPoolCtx(tctx context.Context, res *analysis.Result, ctx Context, ruleSet []*Rule, p *parallel.Pool) []Violation {
	rctx, rsp := trace.Start(tctx, "rules")
	defer rsp.End()
	type outcome struct {
		ok   bool
		objs []*absdom.AObj
	}
	outcomes := parallel.MapCtx(p, trace.Detach(rctx), "rule", len(ruleSet), func(c context.Context, i int) outcome {
		trace.FromContext(c).SetAttr("id", ruleSet[i].ID)
		ok, objs := ruleSet[i].Matches(res, ctx)
		return outcome{ok: ok, objs: objs}
	})
	var out []Violation
	for i, o := range outcomes {
		if o.ok {
			out = append(out, Violation{Rule: ruleSet[i], Objs: o.objs})
		}
	}
	return out
}

// ChangeType classifies a code change against one rule (paper §6.2).
type ChangeType int

// Classification outcomes.
const (
	// NonSemantic: the rule triggers identically in both versions.
	NonSemantic ChangeType = iota
	// SecurityFix: the rule triggers in the old version only.
	SecurityFix
	// BuggyChange: the rule triggers in the new version only.
	BuggyChange
)

// String renders the classification.
func (t ChangeType) String() string {
	switch t {
	case SecurityFix:
		return "fix"
	case BuggyChange:
		return "bug"
	default:
		return "none"
	}
}

// Classify compares rule triggering across the two versions of a change.
func Classify(r *Rule, oldRes, newRes *analysis.Result, ctx Context) ChangeType {
	oldM, _ := r.Matches(oldRes, ctx)
	newM, _ := r.Matches(newRes, ctx)
	switch {
	case oldM && !newM:
		return SecurityFix
	case !oldM && newM:
		return BuggyChange
	default:
		return NonSemantic
	}
}

// ---------------------------------------------------------------------------
// Predicate helpers
// ---------------------------------------------------------------------------

// existsEvent reports whether AUses(obj) contains an event with the given
// method name satisfying test (nil test = any).
func existsEvent(res *analysis.Result, obj *absdom.AObj, method string, test func(analysis.Event) bool) bool {
	for _, ev := range res.Uses[obj] {
		if method != "" && ev.Sig.Name != method {
			continue
		}
		if test == nil || test(ev) {
			return true
		}
	}
	return false
}

func argStr(ev analysis.Event, i int) (string, bool) {
	if i >= len(ev.Args) {
		return "", false
	}
	a := ev.Args[i]
	if a.Kind == absdom.KStrConst {
		return a.Payload, true
	}
	return "", false
}

func argIntLess(ev analysis.Event, i int, bound int64) bool {
	if i >= len(ev.Args) {
		return false
	}
	a := ev.Args[i]
	if a.Kind != absdom.KIntConst {
		return false
	}
	var n int64
	var neg bool
	s := a.Payload
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
		n = n*10 + int64(r-'0')
	}
	if neg {
		n = -n
	}
	return n < bound
}

// argIsConstData reports whether argument i is a compile-time constant
// (byte/int/string array constants, or a numeric constant for long seeds) —
// the X ≠ ⊤byte[] condition of rules R9–R12.
func argIsConstData(ev analysis.Event, i int) bool {
	if i >= len(ev.Args) {
		return false
	}
	switch ev.Args[i].Kind {
	case absdom.KConstByteArr, absdom.KIntArrConst, absdom.KStrArrConst,
		absdom.KIntConst, absdom.KStrConst:
		return true
	}
	return false
}

func normalizeAlg(s string) string {
	return strings.ToUpper(strings.TrimSpace(s))
}

// isWeakDigest matches SHA-1 and MD5-family digests.
func isWeakDigest(alg string) bool {
	return cryptoapi.WeakDigests[normalizeAlg(alg)]
}

// isECBTransformation reports whether the transformation string runs a
// block cipher in (possibly implicit) ECB mode — rule R7 / CL1.
func isECBTransformation(s string) bool {
	return cryptoapi.ParseTransformation(s).EffectiveMode() == "ECB"
}
