package distcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/obs"
	"repro/internal/textdist"
	"repro/internal/usage"
)

// labelVocab is a corpus-shaped vocabulary: root types, methods, constant
// args, string-payload args (similar and dissimilar), and degenerate forms.
var labelVocab = []string{
	"Cipher", "MessageDigest", "SecureRandom",
	"getInstance", "init", "doFinal", "setSeed", "<init>",
	"arg1:ENCRYPT_MODE", "arg2:Secret", "arg3:IvParameterSpec",
	`arg1:"AES"`, `arg1:"DES"`, `arg1:"AES/ECB"`, `arg1:"AES/CBC"`,
	`arg1:"AES/CBC/PKCS5Padding"`, `arg1:"AES/GCM/NoPadding"`,
	`arg2:"AES/CBC"`, `arg1:"SHA1PRNG"`, `arg1:"MD5"`, `arg1:""`,
	`arg1:"日本語"`, `x:"`, "",
}

// randPath builds a bounded random path over the vocabulary.
func randPath(r *rand.Rand) usage.Path {
	n := 1 + r.Intn(5)
	p := make(usage.Path, n)
	for i := range p {
		p[i] = labelVocab[r.Intn(len(labelVocab))]
	}
	return p
}

func randPaths(r *rand.Rand) []usage.Path {
	n := r.Intn(4)
	out := make([]usage.Path, n)
	for i := range out {
		out[i] = randPath(r)
	}
	return out
}

func TestInternMemoizesLabel(t *testing.T) {
	e := New(nil)
	a := e.Intern(`arg1:"AES/CBC"`)
	b := e.Intern(`arg1:"AES/CBC"`)
	if a != b {
		t.Fatal("same string interned twice")
	}
	if a.ID != 0 || a.Str != `arg1:"AES/CBC"` {
		t.Fatalf("bad record: %+v", a)
	}
	if want := textdist.LabelLen(a.Str); a.Len != want {
		t.Fatalf("memoized Len = %d, want %d", a.Len, want)
	}
	if !a.isStr || a.prefix != "arg1" || string(a.payload) != "AES/CBC" {
		t.Fatalf("payload not decoded: %+v", a)
	}
	if c := e.Intern("init"); c.ID != 1 || c.Len != 1 || c.isStr {
		t.Fatalf("plain label record wrong: %+v", c)
	}
}

// TestInternLenMatchesLabelLen sweeps the vocabulary (degenerate labels
// included): the memoized Len must equal textdist.LabelLen exactly.
func TestInternLenMatchesLabelLen(t *testing.T) {
	e := New(nil)
	for _, l := range labelVocab {
		if got, want := e.Intern(l).Len, textdist.LabelLen(l); got != want {
			t.Errorf("Intern(%q).Len = %d, want %d", l, got, want)
		}
	}
}

// TestDifferentialKernels quick-checks every engine kernel against its
// uncached textdist reference. Equality is exact (==, not tolerance): the
// cached path must be bit-identical, which is what lets the dendrogram
// stay byte-identical with the cache on.
func TestDifferentialKernels(t *testing.T) {
	e := New(nil)
	pick := func(i uint16) string { return labelVocab[int(i)%len(labelVocab)] }
	labelDist := func(i, j uint16) bool {
		a, b := pick(i), pick(j)
		return e.LabelDist(a, b) == textdist.LabelDist(a, b)
	}
	lsr := func(i, j uint16) bool {
		a, b := pick(i), pick(j)
		return e.LSR(a, b) == textdist.LSR(a, b)
	}
	if err := quick.Check(labelDist, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("LabelDist: %v", err)
	}
	if err := quick.Check(lsr, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("LSR: %v", err)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		p1, p2 := randPath(r), randPath(r)
		if got, want := e.PathDist(p1, p2), textdist.PathDist(p1, p2); got != want {
			t.Fatalf("PathDist(%v, %v) = %v, want %v", p1, p2, got, want)
		}
	}
	for i := 0; i < 500; i++ {
		f1, f2 := randPaths(r), randPaths(r)
		if got, want := e.PathsDist(f1, f2), textdist.PathsDist(f1, f2); got != want {
			t.Fatalf("PathsDist(%v, %v) = %v, want %v", f1, f2, got, want)
		}
		rem1, add1 := randPaths(r), randPaths(r)
		rem2, add2 := randPaths(r), randPaths(r)
		got := e.UsageDist(rem1, add1, rem2, add2)
		want := textdist.UsageDist(rem1, add1, rem2, add2)
		if got != want {
			t.Fatalf("UsageDist = %v, want %v", got, want)
		}
	}
}

// TestNilEngineFallsBack pins the nil-is-off contract.
func TestNilEngineFallsBack(t *testing.T) {
	var e *Engine
	p1 := usage.Path{"Cipher", "getInstance", `arg1:"AES"`}
	p2 := usage.Path{"Cipher", "getInstance", `arg1:"DES"`}
	if got, want := e.PathDist(p1, p2), textdist.PathDist(p1, p2); got != want {
		t.Fatalf("nil engine PathDist = %v, want %v", got, want)
	}
	if got, want := e.LabelDist("a", "b"), textdist.LabelDist("a", "b"); got != want {
		t.Fatalf("nil engine LabelDist = %v, want %v", got, want)
	}
	if e.InternPaths([]usage.Path{p1}) != nil {
		t.Fatal("nil engine interned")
	}
	if got, want := e.UsageDist([]usage.Path{p1}, nil, []usage.Path{p2}, nil),
		textdist.UsageDist([]usage.Path{p1}, nil, []usage.Path{p2}, nil); got != want {
		t.Fatalf("nil engine UsageDist = %v, want %v", got, want)
	}
}

// TestCacheTelemetry checks the hit/miss/intern counters land in the
// registry — and only once real traffic happens (lazy registration keeps
// cache.* out of snapshots of runs that never cluster).
func TestCacheTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(reg)
	if s := obs.TakeSnapshot(reg, false); len(s.Counters) != 0 {
		t.Fatalf("engine construction registered counters: %v", s.Counters)
	}
	a, b := `arg1:"AES/CBC"`, `arg1:"AES/GCM"`
	e.LabelDist(a, b) // miss
	e.LabelDist(a, b) // hit
	e.LabelDist(b, a) // hit (symmetric key)
	s := obs.TakeSnapshot(reg, false)
	if s.Counters["cache.label_dist.misses"] != 1 {
		t.Errorf("misses = %d, want 1", s.Counters["cache.label_dist.misses"])
	}
	if s.Counters["cache.label_dist.hits"] != 2 {
		t.Errorf("hits = %d, want 2", s.Counters["cache.label_dist.hits"])
	}
	if s.Counters["cache.labels.interned"] != 2 {
		t.Errorf("labels interned = %d, want 2", s.Counters["cache.labels.interned"])
	}
	p1 := usage.Path{"Cipher", "getInstance", a}
	p2 := usage.Path{"Cipher", "getInstance", b}
	e.PathDist(p1, p2)
	e.PathDist(p1, p2)
	s = obs.TakeSnapshot(reg, false)
	if s.Counters["cache.path_dist.misses"] != 1 || s.Counters["cache.path_dist.hits"] != 1 {
		t.Errorf("path counters wrong: %v", s.Counters)
	}
	if s.Counters["cache.paths.interned"] != 2 {
		t.Errorf("paths interned = %d, want 2", s.Counters["cache.paths.interned"])
	}
}

// TestEviction fills a tiny cache past its shard cap: results stay exact
// and evictions are counted.
func TestEviction(t *testing.T) {
	reg := obs.NewRegistry()
	e := newWithCap(reg, 2)
	labels := make([]string, 40)
	for i := range labels {
		labels[i] = fmt.Sprintf("arg1:%q", string(rune('a'+i%26))+fmt.Sprint(i))
	}
	for i := range labels {
		for j := range labels {
			if got, want := e.LabelDist(labels[i], labels[j]), textdist.LabelDist(labels[i], labels[j]); got != want {
				t.Fatalf("post-eviction LabelDist(%q, %q) = %d, want %d", labels[i], labels[j], got, want)
			}
		}
	}
	s := obs.TakeSnapshot(reg, false)
	if s.Counters["cache.evictions"] == 0 {
		t.Fatalf("no evictions at cap 2 over %d pairs: %v", len(labels)*len(labels), s.Counters)
	}
	// Every cap-triggered wipe bumps cache.eviction.resets exactly once, and
	// each reset drops at least cap entries — so the two counters bound each
	// other: 0 < resets and cap*resets <= evictions.
	resets := s.Counters["cache.eviction.resets"]
	if resets == 0 {
		t.Fatalf("evictions counted but no eviction resets: %v", s.Counters)
	}
	if ev := s.Counters["cache.evictions"]; ev < 2*resets {
		t.Errorf("cache.evictions = %d < cap(2) * resets(%d) — a reset dropped fewer entries than the cap", ev, resets)
	}
}

// TestConcurrentEngine hammers one engine from many goroutines (run under
// -race in CI): all results must agree with the serial reference.
func TestConcurrentEngine(t *testing.T) {
	e := New(obs.NewRegistry())
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				p1, p2 := randPath(r), randPath(r)
				if got, want := e.PathDist(p1, p2), textdist.PathDist(p1, p2); got != want {
					errs <- fmt.Sprintf("PathDist(%v, %v) = %v, want %v", p1, p2, got, want)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestInternPathsSharesRecords: identical paths intern to the same record,
// which is what makes the matrix-level fingerprint fan-out and the a == b
// early exit exact.
func TestInternPathsSharesRecords(t *testing.T) {
	e := New(nil)
	p := usage.Path{"Cipher", "getInstance", `arg1:"AES"`}
	q := usage.Path{"Cipher", "getInstance", `arg1:"AES"`}
	refs := e.InternPaths([]usage.Path{p, q})
	if refs[0] != refs[1] {
		t.Fatal("identical paths interned to distinct records")
	}
	if d := e.UsageDistRefs(refs[:1], nil, refs[1:], nil); d != 0 {
		t.Fatalf("identical interned changes at distance %v", d)
	}
}
