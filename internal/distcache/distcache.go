// Package distcache is the memoized distance engine behind the clustering
// hot path (paper §4.3). The quadratic distance matrix bottoms out in
// Levenshtein comparisons over a small, heavily repeated label vocabulary —
// abstracted usage changes reuse the same `arg1:"AES/CBC"`-style labels
// thousands of times — so the engine deduplicates that work at three
// levels:
//
//   - Label interning: every path-element label is canonicalized into an
//     intern table once, carrying its ID, the pre-decoded payload runes,
//     and the memoized paper-unit length (LabelLen). Label equality becomes
//     a pointer compare and the per-comparison []rune conversion of the
//     naive path disappears.
//   - Memoized kernels: concurrency-safe sharded caches keyed on interned
//     ID pairs memoize the label-payload edit distance and the full path
//     distance. The kernels mirror the textdist formulas expression by
//     expression, so cached values are bit-identical to the uncached path.
//   - The banded early-exit Levenshtein itself lives in textdist (both the
//     cached and uncached pipelines share it); the engine only adds the
//     memoization layers on top.
//
// A nil *Engine is valid everywhere and falls back to the uncached textdist
// functions — the same nil-is-off convention as obs.Registry and
// resilience.Budget, which is what the -dist-cache CLI toggle switches.
//
// Exactness: the engine never approximates. Caches store exact kernel
// results; eviction (a full shard reset once a shard exceeds its cap) only
// costs recomputation, never precision. Intern IDs depend on first-touch
// order and therefore on scheduling, but IDs only feed cache keys and
// equality checks — no numeric result depends on them — so concurrent runs
// stay deterministic.
package distcache

import (
	"sync"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/textdist"
	"repro/internal/usage"
)

const (
	// nShards spreads cache keys over independently locked maps so pool
	// workers filling a distance matrix rarely contend. Must be a power of
	// two.
	nShards = 64
	// defaultShardCap bounds one shard's entry count; on overflow the shard
	// is reset (counted under cache.evictions). ~2M entries total at the
	// default — far above any per-class clustering run, so eviction is a
	// memory backstop, not a steady state.
	defaultShardCap = 1 << 15
)

// Label is one interned path-element label.
type Label struct {
	// ID is the dense intern identity (first-touch order).
	ID int32
	// Str is the canonical label string.
	Str string
	// Len is the label's length in paper units, memoized at intern time so
	// PathDist inner loops never recompute it (LabelLen used to be
	// re-derived — rune count included — on every comparison).
	Len int

	prefix  string // argument prefix when the label carries a string constant
	payload []rune // pre-decoded payload runes (string-constant labels only)
	isStr   bool
}

// pathRec is one interned feature path: its identity plus the interned
// labels, so prefix scans compare pointers instead of strings.
type pathRec struct {
	id     int32
	labels []*Label
}

// PathRef is a handle to an interned path, produced by InternPaths and
// consumed by the *Refs distance kernels.
type PathRef = *pathRec

// lazyCounter registers its obs counter on first use, so constructing an
// Engine never materializes cache.* metrics — a pipeline that ends up not
// clustering leaves the -v summary and -metrics snapshot untouched.
type lazyCounter struct {
	once sync.Once
	c    *obs.Counter
}

func (l *lazyCounter) add(reg *obs.Registry, name string, n int64) {
	l.once.Do(func() { l.c = reg.Counter(name) })
	l.c.Add(n)
}

// shard is one lock-striped slice of a pair cache.
type shard[V any] struct {
	mu sync.RWMutex
	m  map[uint64]V
}

// pairCache memoizes a symmetric function of two intern IDs.
type pairCache[V any] struct {
	shards [nShards]shard[V]
	cap    int
}

// pairKey packs two intern IDs order-independently (the kernels are
// symmetric, so (a,b) and (b,a) share one entry).
func pairKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// shardOf mixes the key so consecutive IDs spread across shards.
func shardOf(k uint64) int {
	k *= 0x9E3779B97F4A7C15
	return int(k >> 58 & (nShards - 1))
}

func (c *pairCache[V]) get(k uint64) (V, bool) {
	s := &c.shards[shardOf(k)]
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// put stores v, resetting the shard first when it is full; it returns the
// number of entries evicted (0 almost always).
func (c *pairCache[V]) put(k uint64, v V) int {
	s := &c.shards[shardOf(k)]
	s.mu.Lock()
	defer s.mu.Unlock()
	evicted := 0
	if s.m == nil {
		s.m = make(map[uint64]V)
	} else if len(s.m) >= c.cap {
		evicted = len(s.m)
		s.m = make(map[uint64]V, c.cap/4)
	}
	s.m[k] = v
	return evicted
}

// Engine is the memoized distance engine. All methods are safe for
// concurrent use; all methods are valid on a nil receiver, where they fall
// back to the uncached textdist implementations.
type Engine struct {
	reg *obs.Registry

	mu     sync.RWMutex
	labels map[string]*Label
	paths  map[string]*pathRec

	labelDists pairCache[int]
	pathDists  pairCache[float64]

	labelHits, labelMisses lazyCounter
	pathHits, pathMisses   lazyCounter
	evictions              lazyCounter
	// resets counts shard resets (one bump per cap-triggered wipe), next to
	// cache.evictions' per-entry tally: evictions says how much was dropped,
	// resets says how often the cap was actually hit.
	resets                lazyCounter
	labelCount, pathCount lazyCounter
}

// New returns an engine recording cache telemetry into reg (nil reg
// disables telemetry but not caching).
func New(reg *obs.Registry) *Engine { return newWithCap(reg, defaultShardCap) }

// newWithCap is New with a custom shard capacity (eviction tests shrink it).
func newWithCap(reg *obs.Registry, shardCap int) *Engine {
	e := &Engine{
		reg:    reg,
		labels: map[string]*Label{},
		paths:  map[string]*pathRec{},
	}
	e.labelDists.cap = shardCap
	e.pathDists.cap = shardCap
	return e
}

// Intern canonicalizes a label, decoding its payload and memoizing its
// paper-unit length exactly once per distinct label string.
func (e *Engine) Intern(label string) *Label {
	e.mu.RLock()
	l, ok := e.labels[label]
	e.mu.RUnlock()
	if ok {
		return l
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if l, ok := e.labels[label]; ok {
		return l
	}
	l = &Label{ID: int32(len(e.labels)), Str: label, Len: 1}
	if prefix, payload, ok := labelPayload(label); ok {
		l.isStr = true
		l.prefix = prefix
		l.payload = []rune(payload)
		l.Len = len(l.payload) + 1
	}
	e.labels[label] = l
	e.labelCount.add(e.reg, "cache.labels.interned", 1)
	return l
}

// labelPayload mirrors textdist's parse of `argN:"..."` labels (prefix,
// quoted payload, validity).
func labelPayload(l string) (prefix, payload string, isString bool) {
	for i := 0; i+1 < len(l); i++ {
		if l[i] == ':' && l[i+1] == '"' {
			if i+2 > len(l)-1 || l[len(l)-1] != '"' {
				return "", "", false
			}
			return l[:i], l[i+2 : len(l)-1], true
		}
	}
	return "", "", false
}

// internPath canonicalizes one path, interning every element label.
func (e *Engine) internPath(p usage.Path, keyBuf []byte) (*pathRec, []byte) {
	keyBuf = p.AppendKey(keyBuf[:0])
	e.mu.RLock()
	r, ok := e.paths[string(keyBuf)] // no-alloc map lookup
	e.mu.RUnlock()
	if ok {
		return r, keyBuf
	}
	labels := make([]*Label, len(p))
	for i, el := range p {
		labels[i] = e.Intern(el)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.paths[string(keyBuf)]; ok {
		return r, keyBuf
	}
	r = &pathRec{id: int32(len(e.paths)), labels: labels}
	e.paths[string(keyBuf)] = r
	e.pathCount.add(e.reg, "cache.paths.interned", 1)
	return r, keyBuf
}

// InternPaths interns a feature set, returning handles for the *Refs
// kernels. Callers batching many distance queries (the distance matrix)
// intern each change's paths once up front.
func (e *Engine) InternPaths(ps []usage.Path) []PathRef {
	if e == nil {
		return nil
	}
	out := make([]PathRef, len(ps))
	var buf []byte
	for i, p := range ps {
		out[i], buf = e.internPath(p, buf)
	}
	return out
}

// AppendFingerprint appends an order-sensitive identity of an interned usage
// change — the removed refs in order, then the added refs in order — to dst
// and returns the extended slice. Two changes share a fingerprint iff their
// path sequences are identical element for element, which means the distance
// kernels see byte-identical inputs for them: the distance matrix can compute
// one representative per fingerprint and fan the row out to duplicates
// without perturbing a single bit. (Deliberately NOT the sorted change.Key()
// signature: a permuted path order would feed the assignment solver a
// permuted cost matrix, and only identical inputs guarantee identical IEEE
// results.)
func AppendFingerprint(dst []byte, rem, add []PathRef) []byte {
	appendID := func(dst []byte, id int32) []byte {
		return append(dst, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	dst = appendID(dst, int32(len(rem)))
	for _, r := range rem {
		dst = appendID(dst, r.id)
	}
	for _, r := range add {
		dst = appendID(dst, r.id)
	}
	return dst
}

// labelLev returns the memoized payload edit distance between two interned
// string-constant labels (callers guarantee la != lb, both string-valued,
// same argument prefix).
func (e *Engine) labelLev(la, lb *Label) int {
	k := pairKey(la.ID, lb.ID)
	if d, ok := e.labelDists.get(k); ok {
		e.labelHits.add(e.reg, "cache.label_dist.hits", 1)
		return d
	}
	e.labelMisses.add(e.reg, "cache.label_dist.misses", 1)
	d := textdist.Levenshtein(la.payload, lb.payload)
	if ev := e.labelDists.put(k, d); ev > 0 {
		e.evictions.add(e.reg, "cache.evictions", int64(ev))
		e.resets.add(e.reg, "cache.eviction.resets", 1)
	}
	return d
}

// lsrLabels mirrors textdist.LSR over interned labels: same expressions,
// same IEEE operation order, so the result is bit-identical.
func (e *Engine) lsrLabels(la, lb *Label) float64 {
	if la == lb {
		return 1
	}
	if la.isStr && lb.isStr && la.prefix == lb.prefix {
		return 1 - float64(e.labelLev(la, lb))/float64(max(la.Len, lb.Len))
	}
	return 0
}

// pathDistRefs mirrors textdist.PathDist over interned paths, memoizing the
// result per ID pair.
func (e *Engine) pathDistRefs(a, b PathRef) float64 {
	if a == b {
		return 0
	}
	k := pairKey(a.id, b.id)
	if d, ok := e.pathDists.get(k); ok {
		e.pathHits.add(e.reg, "cache.path_dist.hits", 1)
		return d
	}
	e.pathMisses.add(e.reg, "cache.path_dist.misses", 1)
	n := min(len(a.labels), len(b.labels))
	j := 0
	for j < n && a.labels[j] == b.labels[j] {
		j++
	}
	var d float64
	mx := max(len(a.labels), len(b.labels))
	if mx > 0 {
		lsr := 0.0
		if j < len(a.labels) && j < len(b.labels) {
			lsr = e.lsrLabels(a.labels[j], b.labels[j])
		}
		d = 1 - (float64(j)+lsr)/float64(mx)
	}
	if ev := e.pathDists.put(k, d); ev > 0 {
		e.evictions.add(e.reg, "cache.evictions", int64(ev))
		e.resets.add(e.reg, "cache.eviction.resets", 1)
	}
	return d
}

// pathsDistRefs mirrors textdist.PathsDist: minimum-cost assignment over
// the cached path distances, unmatched paths costing 1.
func (e *Engine) pathsDistRefs(f1, f2 []PathRef) float64 {
	return match.MinCostSum(len(f1), len(f2), func(i, j int) float64 {
		return e.pathDistRefs(f1[i], f2[j])
	}, 1)
}

// UsageDistRefs is textdist.UsageDist over interned feature sets.
func (e *Engine) UsageDistRefs(rem1, add1, rem2, add2 []PathRef) float64 {
	return (e.pathsDistRefs(rem1, rem2) + e.pathsDistRefs(add1, add2)) / 2
}

// ---------------------------------------------------------------------------
// Uninterned convenience API (nil-safe: a nil engine is the uncached path).
// ---------------------------------------------------------------------------

// LabelDist is the memoized textdist.LabelDist.
func (e *Engine) LabelDist(a, b string) int {
	if e == nil {
		return textdist.LabelDist(a, b)
	}
	la, lb := e.Intern(a), e.Intern(b)
	if la == lb {
		return 0
	}
	if la.isStr && lb.isStr && la.prefix == lb.prefix {
		return e.labelLev(la, lb)
	}
	return max(la.Len, lb.Len)
}

// LSR is the memoized textdist.LSR.
func (e *Engine) LSR(a, b string) float64 {
	if e == nil {
		return textdist.LSR(a, b)
	}
	return e.lsrLabels(e.Intern(a), e.Intern(b))
}

// PathDist is the memoized textdist.PathDist.
func (e *Engine) PathDist(p1, p2 usage.Path) float64 {
	if e == nil {
		return textdist.PathDist(p1, p2)
	}
	var buf []byte
	a, buf := e.internPath(p1, buf)
	b, _ := e.internPath(p2, buf)
	return e.pathDistRefs(a, b)
}

// PathsDist is the memoized textdist.PathsDist.
func (e *Engine) PathsDist(f1, f2 []usage.Path) float64 {
	if e == nil {
		return textdist.PathsDist(f1, f2)
	}
	return e.pathsDistRefs(e.InternPaths(f1), e.InternPaths(f2))
}

// UsageDist is the memoized textdist.UsageDist.
func (e *Engine) UsageDist(rem1, add1, rem2, add2 []usage.Path) float64 {
	if e == nil {
		return textdist.UsageDist(rem1, add1, rem2, add2)
	}
	return e.UsageDistRefs(e.InternPaths(rem1), e.InternPaths(add1),
		e.InternPaths(rem2), e.InternPaths(add2))
}
