package usage

import (
	"math"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cryptoapi"
)

const oldSrc = `
class AESCipher {
    Cipher enc;
    final String algorithm = "AES";
    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
        } catch (Exception e) {}
    }
}
`

const newSrc = `
class AESCipher {
    Cipher enc;
    final String algorithm = "AES/CBC/PKCS5Padding";
    protected void setKeyAndIV(Secret key, String iv) {
        try {
            byte[] ivBytes = Hex.decodeHex(iv.toCharArray());
            IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
        } catch (Exception e) {}
    }
}
`

func buildOne(t *testing.T, src string) *Graph {
	t.Helper()
	res := analysis.AnalyzeSource(src, analysis.Options{})
	objs := res.ObjsOfType(cryptoapi.Cipher)
	if len(objs) != 1 {
		t.Fatalf("cipher objects = %d, want 1", len(objs))
	}
	return Build(res, objs[0], DefaultDepth)
}

// TestPaperFigure2DAGs reconstructs Figures 2(b) and 2(c) and checks the
// node sets and the 1/2 distance computed in §3.5.
func TestPaperFigure2DAGs(t *testing.T) {
	g1 := buildOne(t, oldSrc)
	g2 := buildOne(t, newSrc)

	// Figure 2(b): 6 nodes.
	wantOld := []string{
		"T|Cipher",
		"M|Cipher.getInstance",
		"M|Cipher.init",
		`A|1|"AES"`,
		"A|1|ENCRYPT_MODE",
		"A|2|Secret",
	}
	if g1.NodeCount() != len(wantOld) {
		t.Errorf("old DAG nodes = %d, want %d: %v", g1.NodeCount(), len(wantOld), keys(g1))
	}
	for _, k := range wantOld {
		if !g1.NodeSet()[k] {
			t.Errorf("old DAG missing node %q (have %v)", k, keys(g1))
		}
	}

	// Figure 2(c): 9 nodes, including the expanded IvParameterSpec ctor.
	wantNew := []string{
		"T|Cipher",
		"M|Cipher.getInstance",
		"M|Cipher.init",
		`A|1|"AES/CBC/PKCS5Padding"`,
		"A|1|ENCRYPT_MODE",
		"A|2|Secret",
		"A|3|IvParameterSpec",
		"M|IvParameterSpec.<init>",
		"A|1|⊤byte[]",
	}
	if g2.NodeCount() != len(wantNew) {
		t.Errorf("new DAG nodes = %d, want %d: %v", g2.NodeCount(), len(wantNew), keys(g2))
	}
	for _, k := range wantNew {
		if !g2.NodeSet()[k] {
			t.Errorf("new DAG missing node %q (have %v)", k, keys(g2))
		}
	}

	// §3.5: dist(G1, G2) = 1/2 for this pair.
	if d := Dist(g1, g2); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("Dist = %v, want 0.5 (the paper's worked example)", d)
	}
}

func keys(g *Graph) []string {
	var out []string
	for k := range g.NodeSet() {
		out = append(out, k)
	}
	return out
}

func TestPathsEnumeration(t *testing.T) {
	g := buildOne(t, newSrc)
	paths := map[string]bool{}
	for _, p := range g.Paths() {
		paths[p.String()] = true
	}
	want := []string{
		"Cipher",
		"Cipher → getInstance",
		`Cipher → getInstance → arg1:"AES/CBC/PKCS5Padding"`,
		"Cipher → init",
		"Cipher → init → arg1:ENCRYPT_MODE",
		"Cipher → init → arg2:Secret",
		"Cipher → init → arg3:IvParameterSpec",
		"Cipher → init → arg3:IvParameterSpec → <init>",
		"Cipher → init → arg3:IvParameterSpec → <init> → arg1:⊤byte[]",
	}
	if len(paths) != len(want) {
		t.Errorf("paths = %d, want %d:\n%s", len(paths), len(want), renderPaths(g))
	}
	for _, w := range want {
		if !paths[w] {
			t.Errorf("missing path %q\nhave:\n%s", w, renderPaths(g))
		}
	}
}

func renderPaths(g *Graph) string {
	var sb strings.Builder
	for _, p := range g.Paths() {
		sb.WriteString("  " + p.String() + "\n")
	}
	return sb.String()
}

func TestDepthBound(t *testing.T) {
	// Depth 1 keeps only the root and method nodes; depth 3 stops before
	// the nested <init> argument.
	res := analysis.AnalyzeSource(newSrc, analysis.Options{})
	obj := res.ObjsOfType(cryptoapi.Cipher)[0]
	g1 := Build(res, obj, 1)
	for k := range g1.NodeSet() {
		if strings.HasPrefix(k, "A|") {
			t.Errorf("depth-1 DAG contains argument node %q", k)
		}
	}
	g3 := Build(res, obj, 3)
	if g3.NodeSet()["A|1|⊤byte[]"] {
		t.Error("depth-3 DAG contains depth-4 node")
	}
	if !g3.NodeSet()["M|IvParameterSpec.<init>"] {
		t.Error("depth-3 DAG lost the depth-3 method node")
	}
}

func TestRootOnly(t *testing.T) {
	g := NewRootOnly("Cipher")
	if g.NodeCount() != 1 || !g.NodeSet()["T|Cipher"] {
		t.Fatalf("root-only graph wrong: %v", keys(g))
	}
	if len(g.Paths()) != 1 {
		t.Errorf("paths = %d", len(g.Paths()))
	}
	full := buildOne(t, oldSrc)
	d := Dist(g, full)
	// Intersection = {root}, union = 6 → 1 - 1/6.
	if math.Abs(d-(1-1.0/6)) > 1e-12 {
		t.Errorf("dist to root-only = %v", d)
	}
}

func TestDistProperties(t *testing.T) {
	g1 := buildOne(t, oldSrc)
	g2 := buildOne(t, newSrc)
	if Dist(g1, g1) != 0 {
		t.Error("self distance not 0")
	}
	if Dist(g1, g2) != Dist(g2, g1) {
		t.Error("distance not symmetric")
	}
	if d := Dist(g1, g2); d < 0 || d > 1 {
		t.Errorf("distance out of range: %v", d)
	}
}

func TestPairBySimilarity(t *testing.T) {
	// Old has [AES-cipher, DES-cipher]; new has [DES-cipher, AES-cipher]
	// (reordered). Pairing must match by content, not order.
	oldRes := analysis.AnalyzeSource(`
class A {
    void m(Key k) throws Exception {
        Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding");
        a.init(Cipher.ENCRYPT_MODE, k);
        Cipher d = Cipher.getInstance("DES");
        d.init(Cipher.DECRYPT_MODE, k);
    }
}
`, analysis.Options{})
	newRes := analysis.AnalyzeSource(`
class A {
    void m(Key k) throws Exception {
        Cipher d = Cipher.getInstance("DES");
        d.init(Cipher.DECRYPT_MODE, k);
        Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding");
        a.init(Cipher.ENCRYPT_MODE, k);
    }
}
`, analysis.Options{})
	oldGs := BuildAll(oldRes, cryptoapi.Cipher, DefaultDepth)
	newGs := BuildAll(newRes, cryptoapi.Cipher, DefaultDepth)
	pairs := Pair(oldGs, newGs, cryptoapi.Cipher)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, pr := range pairs {
		if d := Dist(pr.Old, pr.New); d != 0 {
			t.Errorf("pairing not content-based: dist = %v", d)
		}
	}
}

func TestPairUnequalCounts(t *testing.T) {
	res := analysis.AnalyzeSource(oldSrc, analysis.Options{})
	gs := BuildAll(res, cryptoapi.Cipher, DefaultDepth)
	pairs := Pair(nil, gs, cryptoapi.Cipher)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if pairs[0].Old.NodeCount() != 1 {
		t.Error("old side not padded with root-only graph")
	}
	pairs = Pair(gs, nil, cryptoapi.Cipher)
	if len(pairs) != 1 || pairs[0].New.NodeCount() != 1 {
		t.Error("new side not padded with root-only graph")
	}
	if Pair(nil, nil, cryptoapi.Cipher) != nil {
		t.Error("empty pairing should be nil")
	}
}

func TestCycleGuard(t *testing.T) {
	// Two objects that reference each other through method arguments must
	// not loop the builder.
	src := `
class A {
    void m() throws Exception {
        Mac m1 = Mac.getInstance("HmacSHA256");
        Mac m2 = Mac.getInstance("HmacSHA1");
        m1.verify(m2);
        m2.verify(m1);
    }
}
`
	res := analysis.AnalyzeSource(src, analysis.Options{})
	objs := res.ObjsOfType(cryptoapi.Mac)
	if len(objs) != 2 {
		t.Fatalf("mac objects = %d", len(objs))
	}
	g := Build(res, objs[0], DefaultDepth)
	if g.NodeCount() == 0 {
		t.Fatal("empty graph")
	}
	for _, p := range g.Paths() {
		if len(p) > DefaultDepth+1 {
			t.Errorf("path exceeds depth bound: %v", p)
		}
	}
}

func TestPathPrefix(t *testing.T) {
	p := Path{"a", "b"}
	q := Path{"a", "b", "c"}
	if !p.IsPrefixOf(q) {
		t.Error("prefix not detected")
	}
	if q.IsPrefixOf(p) {
		t.Error("longer path cannot be prefix of shorter")
	}
	if !p.IsPrefixOf(p) {
		t.Error("path is a (non-strict) prefix of itself")
	}
	if (Path{"a", "x"}).IsPrefixOf(q) {
		t.Error("mismatching path detected as prefix")
	}
}

func BenchmarkBuildDAG(b *testing.B) {
	res := analysis.AnalyzeSource(newSrc, analysis.Options{})
	obj := res.ObjsOfType(cryptoapi.Cipher)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(res, obj, DefaultDepth)
	}
}

func TestDOTExport(t *testing.T) {
	g := buildOne(t, newSrc)
	dot := g.DOT("enc")
	for _, want := range []string{
		"digraph \"enc\"", "doublecircle", "shape=box",
		`label="Cipher"`, `label="getInstance"`, "->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Every edge references declared nodes.
	lines := strings.Split(dot, "\n")
	declared := map[string]bool{}
	for _, l := range lines {
		l = strings.TrimSpace(l)
		if strings.HasPrefix(l, "n") && strings.Contains(l, "[label=") {
			declared[strings.Fields(l)[0]] = true
		}
	}
	for _, l := range lines {
		l = strings.TrimSpace(l)
		if strings.Contains(l, "->") {
			parts := strings.Split(strings.TrimSuffix(l, ";"), "->")
			for _, p := range parts {
				if p = strings.TrimSpace(p); !declared[p] {
					t.Errorf("edge references undeclared node %q", p)
				}
			}
		}
	}
	// Deterministic output.
	if g.DOT("enc") != dot {
		t.Error("DOT rendering not deterministic")
	}
}
