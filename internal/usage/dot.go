package usage

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the usage DAG in Graphviz dot format, in the visual style of
// the paper's Figure 2(b)/(c): the root carries the object's type, method
// nodes are boxes, argument nodes are plain labels.
func (g *Graph) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")
	ids := map[string]string{}
	keys := make([]string, 0, len(g.nodes))
	for k := range g.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		id := fmt.Sprintf("n%d", i)
		ids[k] = id
		shape := "plaintext"
		switch {
		case strings.HasPrefix(k, "T|"):
			shape = "doublecircle"
		case strings.HasPrefix(k, "M|"):
			shape = "box"
		}
		fmt.Fprintf(&sb, "  %s [label=%q, shape=%s];\n", id, g.labels[k], shape)
	}
	for _, from := range keys {
		for _, to := range g.edges[from] {
			fmt.Fprintf(&sb, "  %s -> %s;\n", ids[from], ids[to])
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
