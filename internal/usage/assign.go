package usage

import "repro/internal/match"

func defaultAssign(cost [][]float64) []int {
	return match.Assign(cost)
}
