// Package usage builds the rooted directed acyclic graphs of the paper's
// §3.4 from abstract usages, and provides the node-set distance (§3.5) used
// to pair DAGs between program versions.
//
// Node identity follows the paper's Figure 2 arithmetic: the root is
// identified by the object's type, method nodes by their declaring class
// and name, and argument nodes by (index, abstract-value label) — object
// arguments label by their type. Two calls to the same method with
// different arguments therefore share the method node, and the argument
// nodes fan out beneath it, which is what makes the structure a DAG.
package usage

import (
	"fmt"
	"strings"

	"repro/internal/absdom"
	"repro/internal/analysis"
)

// DefaultDepth is the expansion bound n of the paper (§3.4: "we set n=5").
const DefaultDepth = 5

// Graph is a rooted DAG over content-identified nodes.
type Graph struct {
	// Root is the key of the root node ("T|<type>").
	Root string
	// Type is the API class of the root object.
	Type string
	// Obj is the abstract object the graph was built for (nil for padding
	// graphs used during pairing).
	Obj *absdom.AObj

	nodes  map[string]bool
	labels map[string]string   // node key → path-element label
	edges  map[string][]string // parent key → ordered child keys
	edgeIn map[string]map[string]bool
}

// NewRootOnly returns the padding graph G = ({r}, ∅, r) whose root is
// labeled with the type t (paper §3.5, pairing versions with unequal DAG
// counts).
func NewRootOnly(typ string) *Graph {
	g := newGraph(typ)
	return g
}

func newGraph(typ string) *Graph {
	g := &Graph{
		Root:   "T|" + typ,
		Type:   typ,
		nodes:  map[string]bool{},
		labels: map[string]string{},
		edges:  map[string][]string{},
		edgeIn: map[string]map[string]bool{},
	}
	g.addNode(g.Root, typ)
	return g
}

func (g *Graph) addNode(key, label string) {
	if !g.nodes[key] {
		g.nodes[key] = true
		g.labels[key] = label
	}
}

func (g *Graph) addEdge(from, to string) {
	in := g.edgeIn[from]
	if in == nil {
		in = map[string]bool{}
		g.edgeIn[from] = in
	}
	if in[to] {
		return
	}
	if g.reaches(to, from) {
		return // would introduce a cycle (paper §3.4 step 2)
	}
	in[to] = true
	g.edges[from] = append(g.edges[from], to)
}

// reaches reports whether a path from → ... → to exists.
func (g *Graph) reaches(from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.edges[n]...)
	}
	return false
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// NodeSet returns the set of node keys.
func (g *Graph) NodeSet() map[string]bool { return g.nodes }

// Children returns the ordered child keys of a node.
func (g *Graph) Children(key string) []string { return g.edges[key] }

// Label returns the path-element label of a node key.
func (g *Graph) Label(key string) string { return g.labels[key] }

// Build constructs the usage DAG for abstract object obj from the analysis
// result, expanding object-valued arguments breadth-first to maxDepth.
func Build(res *analysis.Result, obj *absdom.AObj, maxDepth int) *Graph {
	if maxDepth <= 0 {
		maxDepth = DefaultDepth
	}
	g := newGraph(obj.Type)
	g.Obj = obj

	type work struct {
		nodeKey string
		obj     *absdom.AObj
		depth   int
		chain   map[int]bool // object IDs on the expansion chain
	}
	queue := []work{{nodeKey: g.Root, obj: obj, depth: 0, chain: map[int]bool{obj.ID: true}}}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if w.depth+1 > maxDepth {
			continue
		}
		for _, ev := range res.Uses[w.obj] {
			mKey := "M|" + ev.Sig.Class + "." + ev.Sig.Name
			g.addNode(mKey, ev.Sig.Name)
			g.addEdge(w.nodeKey, mKey)
			if w.depth+2 > maxDepth {
				continue
			}
			for i, a := range ev.Args {
				lbl := argLabel(i+1, a)
				aKey := "A|" + fmt.Sprint(i+1) + "|" + argValueLabel(a)
				g.addNode(aKey, lbl)
				g.addEdge(mKey, aKey)
				// Recursively expand known abstract objects (not ⊤obj).
				if a.Kind == absdom.KObj && !w.chain[a.Obj.ID] {
					chain := map[int]bool{}
					for id := range w.chain {
						chain[id] = true
					}
					chain[a.Obj.ID] = true
					queue = append(queue, work{nodeKey: aKey, obj: a.Obj,
						depth: w.depth + 2, chain: chain})
				}
			}
		}
	}
	return g
}

// BuildAll constructs the DAGs for all abstract objects of the given type.
func BuildAll(res *analysis.Result, typ string, maxDepth int) []*Graph {
	var out []*Graph
	for _, o := range res.ObjsOfType(typ) {
		out = append(out, Build(res, o, maxDepth))
	}
	return out
}

// argValueLabel renders the identity part of an argument node: object
// arguments identify by type, everything else by its abstract-value label.
func argValueLabel(a absdom.Value) string {
	switch a.Kind {
	case absdom.KObj:
		return a.Obj.Type
	case absdom.KTopObj:
		if a.Type == "" {
			return "⊤obj"
		}
		return a.Type
	default:
		return a.Label()
	}
}

// argLabel renders an argument node's path-element label, e.g.
// `arg1:"AES"` or `arg3:IvParameterSpec`.
func argLabel(i int, a absdom.Value) string {
	return fmt.Sprintf("arg%d:%s", i, argValueLabel(a))
}

// ---------------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------------

// Path is a root-originating label sequence, e.g.
// ["Cipher", "getInstance", `arg1:"AES"`].
type Path []string

// String joins the path with " → " arrows for display.
func (p Path) String() string { return strings.Join(p, " → ") }

// Key returns a canonical identity string.
func (p Path) Key() string { return strings.Join(p, "\x00") }

// AppendKey appends the canonical identity of p (the same NUL-separated
// scheme as Key) to dst and returns the extended slice. Interners and
// fingerprinting loops use it with a reused buffer so building a lookup key
// does not allocate per path.
func (p Path) AppendKey(dst []byte) []byte {
	for i, el := range p {
		if i > 0 {
			dst = append(dst, 0)
		}
		dst = append(dst, el...)
	}
	return dst
}

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether p is a (non-strict) prefix of q.
func (p Path) IsPrefixOf(q Path) bool {
	if len(p) > len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Paths enumerates every root-originating path of the graph (to every node,
// not only maximal ones), deduplicated, in deterministic order.
func (g *Graph) Paths() []Path {
	var out []Path
	seen := map[string]bool{}
	var walk func(key string, cur Path)
	walk = func(key string, cur Path) {
		next := append(append(Path{}, cur...), g.labels[key])
		if k := next.Key(); !seen[k] {
			seen[k] = true
			out = append(out, next)
		}
		for _, c := range g.edges[key] {
			walk(c, next)
		}
	}
	walk(g.Root, nil)
	return out
}

// ---------------------------------------------------------------------------
// Distance and pairing (paper §3.5)
// ---------------------------------------------------------------------------

// Dist is the intersection-over-union node-set distance between two DAGs:
// dist(G1, G2) = 1 − |N1 ∩ N2| / |N1 ∪ N2|.
func Dist(g1, g2 *Graph) float64 {
	inter := 0
	for k := range g1.nodes {
		if g2.nodes[k] {
			inter++
		}
	}
	union := len(g1.nodes) + len(g2.nodes) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// Pair matches the DAGs of the old version with those of the new version,
// minimizing the summed distance (maximum matching, paper §3.5). Version
// sets of unequal size are padded with root-only graphs. The result pairs
// are returned in old-graph order (padding first where the old side is
// smaller).
type PairResult struct {
	Old *Graph // root-only padding when the usage was added
	New *Graph // root-only padding when the usage was removed
}

// Pair computes the minimum-distance bijection between old and new DAGs.
func Pair(old, new []*Graph, typ string) []PairResult {
	n := len(old)
	if len(new) > n {
		n = len(new)
	}
	if n == 0 {
		return nil
	}
	padded := func(gs []*Graph) []*Graph {
		out := append([]*Graph{}, gs...)
		for len(out) < n {
			out = append(out, NewRootOnly(typ))
		}
		return out
	}
	po, pn := padded(old), padded(new)
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = Dist(po[i], pn[j])
		}
	}
	assign := assignFn(cost)
	out := make([]PairResult, n)
	for i, j := range assign {
		out[i] = PairResult{Old: po[i], New: pn[j]}
	}
	return out
}

// assignFn is indirected for testing.
var assignFn = defaultAssign
