package absdom

// Flow provenance. Every abstract value can carry a compact, immutable
// def-site chain recording where it came from: the literal it started as,
// the assignments and inlined calls it flowed through, and the joins that
// merged it with other paths. Provenance is observation-only — it never
// participates in Equal, Join's lattice result, or event deduplication — so
// an analysis with tracking disabled (every Prov nil) is bit-identical to
// one that never heard of provenance.
//
// Nodes are shared, immutable, and capped: a chain deeper than MaxProvDepth
// is cut back to its origin with a truncation marker, so provenance can
// never blow up state size however long the abstract execution runs.
//
// Recording a step is cheap by construction: the label's constant fragments
// live in a per-site LabelShape the node points at, the dynamic names are
// stored without concatenating, and nodes come out of a chunked arena — so
// the tracking-on interpreter pays a fraction of an allocation and zero
// string building per step. What assembles the label lazily; witness
// rendering is the only consumer, and it runs once per trace, not once per
// abstract step.

// ProvKind classifies one definition step in a provenance chain.
type ProvKind uint8

// Definition-step kinds, ordered roughly source-to-sink.
const (
	ProvInvalid ProvKind = iota
	ProvLiteral          // a source literal (or constant array initializer)
	ProvParam            // bound as a method parameter
	ProvField            // read from / initialized as a field
	ProvCall             // produced by a call (API result, folded helper, inlined return)
	ProvAlloc            // an allocation (new T(...) or an API factory)
	ProvAssign           // stored into a variable or field
	ProvDerived          // derived by an operator (concat, arithmetic, index, cast)
	ProvJoin             // merged with another path at a control-flow join
)

// String renders the step kind for traces and JSON.
func (k ProvKind) String() string {
	switch k {
	case ProvLiteral:
		return "literal"
	case ProvParam:
		return "param"
	case ProvField:
		return "field"
	case ProvCall:
		return "call"
	case ProvAlloc:
		return "alloc"
	case ProvAssign:
		return "assign"
	case ProvDerived:
		return "derived"
	case ProvJoin:
		return "join"
	default:
		return "invalid"
	}
}

// Caps on the provenance structure. Chains are cut back to their origin
// once they exceed MaxProvDepth definition steps, and a single step links
// at most MaxProvFanIn predecessors (a join keeps its two sides; wider
// derivations keep the first two interesting inputs).
const (
	MaxProvDepth = 48
	MaxProvFanIn = 2
)

// LabelShape holds the constant fragments of a provenance label — the
// operation text around the dynamic names, e.g. {Pre: "assigned to "} or
// {Mid: ".", Suf: "(...)"}. Attach sites declare one shape each, so a node
// stores a single pointer instead of copies of the fragments.
type LabelShape struct {
	Pre, Mid, Suf string
}

// Prov is one definition step. Nodes are immutable after construction and
// shared freely between values and states; a Value carries provenance as a
// single pointer, so cloning and joining states stays cheap.
type Prov struct {
	Kind ProvKind
	// Truncated marks a step whose history was cut to enforce MaxProvDepth;
	// the surviving Prev0 points at the chain's origin.
	Truncated bool
	// Line/Col locate the definition site (with File). A zero Line means
	// the step has no concrete source position (synthetic joins).
	Line  int32
	Col   int32
	depth int32
	// file points at the interned source-file name (nil for synthetic
	// steps); all steps of one file share the analyzer's one string header.
	file *string
	// The step label is shape.Pre + n1 + shape.Mid + n2 + shape.Suf, joined
	// on demand by What. A nil shape renders the names alone.
	shape *LabelShape
	n1    string
	n2    string
	// Prev0/Prev1 link the provenance of the value(s) this definition
	// consumed (the structural form of the MaxProvFanIn cap). Prev0 is
	// always set before Prev1.
	Prev0 *Prov
	Prev1 *Prov
}

// File names the step's source file ("" for synthetic steps).
func (p *Prov) File() string {
	if p.file == nil {
		return ""
	}
	return *p.file
}

// What renders the step's label: the literal text, the variable or field
// name, the callee, the operator.
func (p *Prov) What() string {
	if p.shape == nil {
		return p.n1 + p.n2
	}
	return p.shape.Pre + p.n1 + p.shape.Mid + p.n2 + p.shape.Suf
}

// Depth reports the longest definition chain ending at this step.
func (p *Prov) Depth() int {
	if p == nil {
		return 0
	}
	return int(p.depth)
}

// Origin returns the origin-most step of this chain (itself for roots),
// walking the deepest predecessor at each hop. The walk is bounded by the
// depth cap and runs only at render time and at cap cuts, so nodes need not
// cache the pointer.
func (p *Prov) Origin() *Prov {
	if p == nil {
		return nil
	}
	for {
		next := p.Prev0
		if next == nil {
			return p
		}
		if p.Prev1 != nil && p.Prev1.depth > next.depth {
			next = p.Prev1
		}
		p = next
	}
}

// NewProv builds one definition step with a one-piece label on top of up to
// two predecessors (nil predecessors are dropped). Chains that would exceed
// MaxProvDepth are cut back to their origin with the Truncated marker set.
func NewProv(kind ProvKind, file string, line, col int, what string, p0, p1 *Prov) *Prov {
	return NewProvShape(kind, file, line, col, nil, what, "", p0, p1)
}

// internFile boxes a file name for the heap constructors; "" stays nil, the
// shared spelling of "no source position".
func internFile(file string) *string {
	if file == "" {
		return nil
	}
	return &file
}

// NewProvShape is NewProv with the label as a constant shape plus up to two
// dynamic names, letting callers record a step without concatenating.
func NewProvShape(kind ProvKind, file string, line, col int, shape *LabelShape, n1, n2 string, p0, p1 *Prov) *Prov {
	return initProv(&Prov{}, kind, internFile(file), line, col, shape, n1, n2, p0, p1)
}

// provChunk sizes the arena batches: large enough to amortize allocation
// over a small program's worth of steps, small enough that a mostly-unused
// chunk costs little. 39 nodes ≈ 3.1KB lands the batch — plus the
// allocator's scan-object header — exactly in the 3.2KB size class; one
// node more would round the batch up to 3.5KB.
const provChunk = 39

// ProvArena batch-allocates Prov nodes in chunks, so a tracking-on analysis
// pays one allocation per provChunk definition steps instead of one per
// step. Nodes stay individually immutable and shared; the arena only changes
// where they live (a chunk is retained as long as any node in it). Not safe
// for concurrent use — each analyzer owns one.
type ProvArena struct {
	free []Prov
}

// NewShape is NewProvShape backed by the arena, with the file name passed
// as the caller's interned pointer (one shared string header per file).
func (a *ProvArena) NewShape(kind ProvKind, file *string, line, col int, shape *LabelShape, n1, n2 string, p0, p1 *Prov) *Prov {
	if len(a.free) == 0 {
		a.free = make([]Prov, provChunk)
	}
	p := &a.free[0]
	a.free = a.free[1:]
	return initProv(p, kind, file, line, col, shape, n1, n2, p0, p1)
}

// initProv fills one freshly zeroed node: cap fan-in nils, compute the
// cached depth, and apply the MaxProvDepth cut.
func initProv(p *Prov, kind ProvKind, file *string, line, col int, shape *LabelShape, n1, n2 string, p0, p1 *Prov) *Prov {
	if p0 == nil {
		p0, p1 = p1, nil
	}
	p.Kind = kind
	p.Line = int32(line)
	p.Col = int32(col)
	p.file = file
	p.shape = shape
	p.n1, p.n2 = n1, n2
	p.Prev0, p.Prev1 = p0, p1
	deepest := p0
	if p1 != nil && p1.depth > deepest.depth {
		deepest = p1
	}
	if deepest == nil {
		p.depth = 1
		return p
	}
	if int(deepest.depth) >= MaxProvDepth {
		// Cut the middle of the chain: keep the origin (the literal or
		// parameter the trace must start at) and mark the cut.
		o := deepest.Origin()
		p.Prev0, p.Prev1 = o, nil
		p.Truncated = true
		p.depth = o.depth + 1
		return p
	}
	p.depth = deepest.depth + 1
	return p
}

// JoinProv merges the provenance of two values that met at a control-flow
// join. Nil sides and identical chains merge without allocating, so the
// tracking-off path (both nil) costs two pointer compares.
func JoinProv(a, b *Prov) *Prov {
	if a == b {
		return a
	}
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return NewProv(ProvJoin, "", 0, 0, "control-flow join", a, b)
}

// JoinProv is the arena-backed form of the package-level JoinProv: any new
// join node comes out of the arena's current chunk.
func (ar *ProvArena) JoinProv(a, b *Prov) *Prov {
	if a == b {
		return a
	}
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return ar.NewShape(ProvJoin, nil, 0, 0, nil, "control-flow join", "", a, b)
}
