package absdom

import "sort"

// State is an abstract program state σa = (objs, η, ∆): allocated abstract
// objects, an abstract heap mapping object fields to values, and the local
// variable store. States are cloned cheaply at branch forks (maps are
// copied; AObj identities are shared, which is what the per-allocation-site
// abstraction requires).
type State struct {
	Vars   map[string]Value           // ∆: locals and parameters
	Fields map[string]Value           // η restricted to this-fields: name → value
	Heap   map[*AObj]map[string]Value // η for other abstract objects
}

// NewState returns an empty abstract state.
func NewState() *State {
	return &State{
		Vars:   map[string]Value{},
		Fields: map[string]Value{},
		Heap:   map[*AObj]map[string]Value{},
	}
}

// Clone deep-copies the state's maps (object identities are shared).
func (s *State) Clone() *State {
	c := NewState()
	for k, v := range s.Vars {
		c.Vars[k] = v
	}
	for k, v := range s.Fields {
		c.Fields[k] = v
	}
	for o, fs := range s.Heap {
		m := make(map[string]Value, len(fs))
		for k, v := range fs {
			m[k] = v
		}
		c.Heap[o] = m
	}
	return c
}

// LookupVar returns the abstract value of a local, or invalid if unbound.
func (s *State) LookupVar(name string) (Value, bool) {
	v, ok := s.Vars[name]
	return v, ok
}

// LookupField returns the abstract value of a this-field.
func (s *State) LookupField(name string) (Value, bool) {
	v, ok := s.Fields[name]
	return v, ok
}

// SetVar binds a local variable.
func (s *State) SetVar(name string, v Value) { s.Vars[name] = v }

// SetField binds a this-field.
func (s *State) SetField(name string, v Value) { s.Fields[name] = v }

// Join merges another state into this one pointwise (used when joining
// branch forks is preferred over path explosion; the analyzer joins only
// when the fork budget is exhausted). Unbound-on-one-side names degrade to
// the bound value (the paper's analysis is a may-analysis over features).
func (s *State) Join(o *State) { s.JoinIn(o, nil) }

// JoinIn is Join with any new provenance join nodes drawn from ar (nil ar
// falls back to the heap); the lattice result is identical to Join's.
func (s *State) JoinIn(o *State, ar *ProvArena) {
	for k, v := range o.Vars {
		if cur, ok := s.Vars[k]; ok {
			s.Vars[k] = JoinIn(ar, cur, v)
		} else {
			s.Vars[k] = v
		}
	}
	for k, v := range o.Fields {
		if cur, ok := s.Fields[k]; ok {
			s.Fields[k] = JoinIn(ar, cur, v)
		} else {
			s.Fields[k] = v
		}
	}
	for obj, fs := range o.Heap {
		cur, ok := s.Heap[obj]
		if !ok {
			cur = map[string]Value{}
			s.Heap[obj] = cur
		}
		for k, v := range fs {
			if cv, ok := cur[k]; ok {
				cur[k] = JoinIn(ar, cv, v)
			} else {
				cur[k] = v
			}
		}
	}
}

// VarNames returns the bound local names in sorted order (deterministic
// iteration for tests and rendering).
func (s *State) VarNames() []string {
	names := make([]string, 0, len(s.Vars))
	for k := range s.Vars {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
