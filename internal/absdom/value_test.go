package absdom

import (
	"testing"
	"testing/quick"

	"repro/internal/javatok"
)

func TestLabels(t *testing.T) {
	obj := &AObj{ID: 1, Type: "Cipher", Site: javatok.Pos{Line: 13}}
	cases := []struct {
		v    Value
		want string
	}{
		{IntConst("42"), "42"},
		{IntConst("ENCRYPT_MODE"), "ENCRYPT_MODE"},
		{TopInt(), "⊤int"},
		{StrConst("AES/CBC"), `"AES/CBC"`},
		{TopStr(), "⊤str"},
		{ConstByte(), "const_byte"},
		{TopByte(), "⊤byte"},
		{ConstByteArr(), "const_byte[]"},
		{TopByteArr(), "⊤byte[]"},
		{BoolConst(true), "true"},
		{Null(), "null"},
		{ObjRef(obj), "Cipher"},
		{TopObj("Secret"), "Secret"},
		{TopObj(""), "⊤obj"},
		{IntArrConst("1,2"), "int[]{1,2}"},
		{TopIntArr(), "⊤int[]"},
	}
	for _, c := range cases {
		if got := c.v.Label(); got != c.want {
			t.Errorf("Label(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	o1 := &AObj{ID: 1, Type: "Cipher"}
	o2 := &AObj{ID: 2, Type: "Cipher"}
	if !StrConst("AES").Equal(StrConst("AES")) {
		t.Error("equal string constants not equal")
	}
	if StrConst("AES").Equal(StrConst("DES")) {
		t.Error("different string constants equal")
	}
	if StrConst("AES").Equal(TopStr()) {
		t.Error("const equal to top")
	}
	if !ObjRef(o1).Equal(ObjRef(o1)) {
		t.Error("same object not equal")
	}
	if ObjRef(o1).Equal(ObjRef(o2)) {
		t.Error("distinct allocation sites compare equal")
	}
	if !TopObj("Cipher").Equal(TopObj("Cipher")) {
		t.Error("same-typed top objects not equal")
	}
}

func TestJoinFlatLattice(t *testing.T) {
	cases := []struct {
		a, b, want Value
	}{
		{StrConst("AES"), StrConst("AES"), StrConst("AES")},
		{StrConst("AES"), StrConst("DES"), TopStr()},
		{StrConst("AES"), TopStr(), TopStr()},
		{IntConst("1"), IntConst("2"), TopInt()},
		{ConstByteArr(), TopByteArr(), TopByteArr()},
		{ConstByteArr(), ConstByteArr(), ConstByteArr()},
		{TopObj("Cipher"), TopObj("Cipher"), TopObj("Cipher")},
		{TopObj("Cipher"), TopObj("Mac"), TopObj("")},
	}
	for _, c := range cases {
		if got := Join(c.a, c.b); !got.Equal(c.want) {
			t.Errorf("Join(%s, %s) = %s, want %s",
				c.a.Label(), c.b.Label(), got.Label(), c.want.Label())
		}
	}
}

// Property: Join is commutative and idempotent on a generated value space.
func TestQuickJoinLaws(t *testing.T) {
	vals := []Value{
		IntConst("1"), IntConst("2"), TopInt(),
		StrConst("a"), StrConst("b"), TopStr(),
		ConstByte(), TopByte(), ConstByteArr(), TopByteArr(),
		BoolConst(true), Null(), TopObj("Cipher"), TopObj(""),
		IntArrConst("1"), TopIntArr(), StrArrConst("x"), TopStrArr(),
	}
	pick := func(i uint8) Value { return vals[int(i)%len(vals)] }
	comm := func(i, j uint8) bool {
		a, b := pick(i), pick(j)
		return Join(a, b).Equal(Join(b, a))
	}
	idem := func(i uint8) bool {
		a := pick(i)
		return Join(a, a).Equal(a)
	}
	assoc := func(i, j, k uint8) bool {
		a, b, c := pick(i), pick(j), pick(k)
		return Join(Join(a, b), c).Equal(Join(a, Join(b, c)))
	}
	upper := func(i, j uint8) bool {
		a, b := pick(i), pick(j)
		j1 := Join(a, b)
		// joining an operand into the join is a no-op (absorption)
		return Join(j1, a).Equal(j1) && Join(j1, b).Equal(j1)
	}
	for name, f := range map[string]any{
		"commutative": comm, "idempotent": idem, "associative": assoc,
		"upper-bound": upper,
	} {
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTopOfType(t *testing.T) {
	cases := []struct {
		typ  string
		dims int
		want Kind
	}{
		{"byte", 1, KTopByteArr},
		{"byte", 0, KTopByte},
		{"int", 0, KTopInt},
		{"int", 1, KTopIntArr},
		{"String", 0, KTopStr},
		{"String", 1, KTopStrArr},
		{"char", 1, KTopByteArr},
		{"Cipher", 0, KTopObj},
		{"Key", 1, KTopObj},
		{"", 0, KTopObj},
	}
	for _, c := range cases {
		got := TopOfType(c.typ, c.dims)
		if got.Kind != c.want {
			t.Errorf("TopOfType(%q, %d).Kind = %v, want %v", c.typ, c.dims, got.Kind, c.want)
		}
	}
	if TopOfType("Cipher", 0).Type != "Cipher" {
		t.Error("object top lost its type")
	}
}

func TestStateCloneIsolation(t *testing.T) {
	s := NewState()
	obj := &AObj{ID: 1, Type: "Cipher"}
	s.SetVar("x", StrConst("AES"))
	s.SetField("f", ObjRef(obj))
	s.Heap[obj] = map[string]Value{"iv": ConstByteArr()}

	c := s.Clone()
	c.SetVar("x", StrConst("DES"))
	c.SetField("f", Null())
	c.Heap[obj]["iv"] = TopByteArr()

	if v, _ := s.LookupVar("x"); !v.Equal(StrConst("AES")) {
		t.Error("clone mutated original var")
	}
	if v, _ := s.LookupField("f"); !v.Equal(ObjRef(obj)) {
		t.Error("clone mutated original field")
	}
	if !s.Heap[obj]["iv"].Equal(ConstByteArr()) {
		t.Error("clone mutated original heap")
	}
}

func TestStateJoin(t *testing.T) {
	a := NewState()
	b := NewState()
	a.SetVar("mode", StrConst("AES"))
	b.SetVar("mode", StrConst("AES/CBC"))
	a.SetVar("onlyA", IntConst("1"))
	b.SetVar("onlyB", IntConst("2"))
	a.Join(b)
	if v, _ := a.LookupVar("mode"); !v.Equal(TopStr()) {
		t.Errorf("joined mode = %s, want ⊤str", v.Label())
	}
	if v, _ := a.LookupVar("onlyA"); !v.Equal(IntConst("1")) {
		t.Error("one-sided binding lost")
	}
	if v, _ := a.LookupVar("onlyB"); !v.Equal(IntConst("2")) {
		t.Error("other-side binding not imported")
	}
}

func TestVarNamesSorted(t *testing.T) {
	s := NewState()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		s.SetVar(n, TopInt())
	}
	got := s.VarNames()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VarNames = %v, want %v", got, want)
		}
	}
}

func TestIsTopIsConstPartition(t *testing.T) {
	// Every non-object value is exactly one of: top, const (booleans and
	// null count as constants); object values are neither const nor (for
	// allocation-site refs) top.
	obj := &AObj{ID: 1, Type: "Cipher"}
	vals := []Value{
		IntConst("1"), TopInt(), StrConst("a"), TopStr(),
		IntArrConst("1"), TopIntArr(), StrArrConst("x"), TopStrArr(),
		ConstByte(), TopByte(), ConstByteArr(), TopByteArr(),
		BoolConst(true), Null(), ObjRef(obj), TopObj("T"), TopObj(""),
	}
	for _, v := range vals {
		if v.IsTop() && v.IsConst() {
			t.Errorf("%s is both top and const", v.Label())
		}
	}
	if ObjRef(obj).IsTop() || ObjRef(obj).IsConst() {
		t.Error("object refs are neither top nor const")
	}
	if !TopObj("T").IsTop() {
		t.Error("⊤obj must be top")
	}
	if (Value{}).IsValid() {
		t.Error("zero value must be invalid")
	}
	if got := (Value{}).Label(); got != "<invalid>" {
		t.Errorf("invalid label = %q", got)
	}
}

func TestSiteLabel(t *testing.T) {
	o := &AObj{ID: 3, Type: "Cipher", Site: javatok.Pos{Line: 13}}
	if got := o.SiteLabel(); got != "Cipher@l13" {
		t.Errorf("SiteLabel = %q", got)
	}
}

func TestJoinWithInvalid(t *testing.T) {
	v := StrConst("AES")
	if got := Join(Value{}, v); !got.Equal(v) {
		t.Error("join with invalid (left) should keep the valid side")
	}
	if got := Join(v, Value{}); !got.Equal(v) {
		t.Error("join with invalid (right) should keep the valid side")
	}
}

func TestJoinObjWithBase(t *testing.T) {
	obj := &AObj{ID: 1, Type: "Cipher"}
	got := Join(ObjRef(obj), StrConst("AES"))
	if got.Kind != KTopObj {
		t.Errorf("obj ⊔ string = %v, want ⊤obj", got.Kind)
	}
	got = Join(ObjRef(obj), ObjRef(&AObj{ID: 2, Type: "Cipher"}))
	if !got.Equal(TopObj("Cipher")) {
		t.Errorf("two ciphers join to %s, want Cipher ⊤obj", got.Label())
	}
}
