// Package absdom implements the program abstraction of the paper's §3.3:
// a per-allocation-site heap abstraction for objects and the base-type
// abstraction of Figure 3 (integer/string constants kept, byte values and
// byte arrays collapsed to const/⊤). Abstract values label the argument
// nodes of usage DAGs, so their Label strings are part of the feature
// language the filters and the clustering metric operate on.
package absdom

import (
	"fmt"

	"repro/internal/javatok"
)

// Kind discriminates abstract values.
type Kind int

// Abstract value kinds, mirroring Figure 3 of the paper plus object values.
const (
	KInvalid Kind = iota

	KIntConst // an element of Ints(P), possibly symbolic (ENCRYPT_MODE)
	KTopInt   // ⊤int

	KStrConst // an element of Strs(P)
	KTopStr   // ⊤str

	KIntArrConst // an element of IntArrays(P)
	KTopIntArr   // ⊤int[]

	KStrArrConst // an element of StrArrays(P)
	KTopStrArr   // ⊤str[]

	KConstByte // const_byte
	KTopByte   // ⊤byte

	KConstByteArr // const_byte[]
	KTopByteArr   // ⊤byte[]

	KBoolConst // true / false (kept, they often gate API configuration)
	KNull      // null literal

	KObj    // reference to an abstract object (allocation site known)
	KTopObj // ⊤obj: object of (statically) known type, unknown allocation
)

// AObj is an abstract object identified by its allocation site (the paper's
// per-allocation-site heap abstraction; objects are labeled by the
// statement's label, here the source position). Events are attached by the
// analyzer and consumed by the DAG builder.
type AObj struct {
	ID   int         // unique within one analyzed program version
	Type string      // simple class name, e.g. "Cipher"
	Site javatok.Pos // allocation site
}

// SiteLabel renders the allocation-site identity, e.g. "Cipher@l13".
func (o *AObj) SiteLabel() string {
	return fmt.Sprintf("%s@l%d", o.Type, o.Site.Line)
}

// Value is an abstract value. The zero Value is invalid.
type Value struct {
	Kind Kind
	// Payload holds the constant for KIntConst/KStrConst/KBoolConst
	// (source form, e.g. "42", "AES/CBC", "ENCRYPT_MODE", "true"),
	// or a canonical rendering for array constants.
	Payload string
	// Obj is set for KObj.
	Obj *AObj
	// Type is the static type name for KObj/KTopObj when known.
	Type string
	// Prov is the value's flow provenance (nil when tracking is off).
	// It is observation-only: Equal, Label, and event keys ignore it.
	Prov *Prov
}

// WithProv returns the value carrying the given provenance.
func (v Value) WithProv(p *Prov) Value {
	v.Prov = p
	return v
}

// Constructors.

// IntConst returns the abstract value for an integer constant; payload may
// be symbolic (an API constant name).
func IntConst(v string) Value { return Value{Kind: KIntConst, Payload: v} }

// TopInt returns ⊤int.
func TopInt() Value { return Value{Kind: KTopInt} }

// StrConst returns the abstract value for a string constant.
func StrConst(s string) Value { return Value{Kind: KStrConst, Payload: s} }

// TopStr returns ⊤str.
func TopStr() Value { return Value{Kind: KTopStr} }

// IntArrConst returns a constant int-array value with a canonical payload.
func IntArrConst(payload string) Value { return Value{Kind: KIntArrConst, Payload: payload} }

// TopIntArr returns ⊤int[].
func TopIntArr() Value { return Value{Kind: KTopIntArr} }

// StrArrConst returns a constant String-array value.
func StrArrConst(payload string) Value { return Value{Kind: KStrArrConst, Payload: payload} }

// TopStrArr returns ⊤str[].
func TopStrArr() Value { return Value{Kind: KTopStrArr} }

// ConstByte returns const_byte.
func ConstByte() Value { return Value{Kind: KConstByte} }

// TopByte returns ⊤byte.
func TopByte() Value { return Value{Kind: KTopByte} }

// ConstByteArr returns const_byte[] — the abstraction of hard-coded keys,
// IVs, salts and seeds that rules R9–R12 match on.
func ConstByteArr() Value { return Value{Kind: KConstByteArr} }

// TopByteArr returns ⊤byte[].
func TopByteArr() Value { return Value{Kind: KTopByteArr} }

// BoolConst returns an abstract boolean constant.
func BoolConst(v bool) Value {
	if v {
		return Value{Kind: KBoolConst, Payload: "true"}
	}
	return Value{Kind: KBoolConst, Payload: "false"}
}

// Null returns the abstract null.
func Null() Value { return Value{Kind: KNull} }

// ObjRef returns a reference to an abstract object.
func ObjRef(o *AObj) Value { return Value{Kind: KObj, Obj: o, Type: o.Type} }

// TopObj returns ⊤obj of the given static type ("" when unknown).
func TopObj(typ string) Value { return Value{Kind: KTopObj, Type: typ} }

// IsValid reports whether the value carries a kind.
func (v Value) IsValid() bool { return v.Kind != KInvalid }

// IsTop reports whether the value is one of the ⊤ elements.
func (v Value) IsTop() bool {
	switch v.Kind {
	case KTopInt, KTopStr, KTopIntArr, KTopStrArr, KTopByte, KTopByteArr, KTopObj:
		return true
	}
	return false
}

// IsConst reports whether the value is a (possibly collapsed) constant.
func (v Value) IsConst() bool {
	switch v.Kind {
	case KIntConst, KStrConst, KIntArrConst, KStrArrConst, KConstByte,
		KConstByteArr, KBoolConst, KNull:
		return true
	}
	return false
}

// Label renders the value as it appears in DAG node labels and rule
// predicates. Constants render their payload; ⊤ values render as the
// paper's ⊤-with-type notation.
func (v Value) Label() string {
	switch v.Kind {
	case KIntConst:
		return v.Payload
	case KTopInt:
		return "⊤int"
	case KStrConst:
		return "\"" + v.Payload + "\""
	case KTopStr:
		return "⊤str"
	case KIntArrConst:
		return "int[]{" + v.Payload + "}"
	case KTopIntArr:
		return "⊤int[]"
	case KStrArrConst:
		return "String[]{" + v.Payload + "}"
	case KTopStrArr:
		return "⊤str[]"
	case KConstByte:
		return "const_byte"
	case KTopByte:
		return "⊤byte"
	case KConstByteArr:
		return "const_byte[]"
	case KTopByteArr:
		return "⊤byte[]"
	case KBoolConst:
		return v.Payload
	case KNull:
		return "null"
	case KObj:
		return v.Obj.Type
	case KTopObj:
		if v.Type == "" {
			return "⊤obj"
		}
		return v.Type
	default:
		return "<invalid>"
	}
}

// Literal label shapes: "literal " + Label(), with the quoting fragments
// hoisted into the shape so recording never concatenates.
var (
	litShapePlain  = &LabelShape{Pre: "literal "}
	litShapeStr    = &LabelShape{Pre: "literal \"", Suf: "\""}
	litShapeIntArr = &LabelShape{Pre: "literal int[]{", Suf: "}"}
	litShapeStrArr = &LabelShape{Pre: "literal String[]{", Suf: "}"}
)

// LiteralShape returns the provenance label of the value as a literal
// definition: a constant shape plus the dynamic payload, rendering exactly
// "literal " + Label().
func (v Value) LiteralShape() (*LabelShape, string) {
	switch v.Kind {
	case KStrConst:
		return litShapeStr, v.Payload
	case KIntArrConst:
		return litShapeIntArr, v.Payload
	case KStrArrConst:
		return litShapeStrArr, v.Payload
	default:
		// Every other case of Label returns a constant or the payload
		// itself — no concatenation to avoid.
		return litShapePlain, v.Label()
	}
}

// Equal reports semantic equality of two abstract values. Object references
// compare by allocation site identity.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KObj:
		return v.Obj == w.Obj
	case KTopObj:
		return v.Type == w.Type
	default:
		return v.Payload == w.Payload
	}
}

// Join computes the least upper bound of two values in the flat lattices of
// Figure 3: equal values join to themselves, differing values of the same
// base family join to that family's ⊤, and anything else joins to a typed
// or untyped ⊤obj. Provenance of the two sides merges into a join step;
// when neither side carries provenance the result carries none, so the
// lattice result is untouched by tracking.
func Join(v, w Value) Value {
	out := joinLattice(v, w)
	if v.Prov != nil || w.Prov != nil {
		out.Prov = JoinProv(v.Prov, w.Prov)
	}
	return out
}

// JoinIn is Join with any new join-step node drawn from ar (nil ar falls
// back to the heap). The lattice result is identical to Join's.
func JoinIn(ar *ProvArena, v, w Value) Value {
	out := joinLattice(v, w)
	if v.Prov != nil || w.Prov != nil {
		if ar != nil {
			out.Prov = ar.JoinProv(v.Prov, w.Prov)
		} else {
			out.Prov = JoinProv(v.Prov, w.Prov)
		}
	}
	return out
}

func joinLattice(v, w Value) Value {
	if v.Equal(w) {
		return v
	}
	if !v.IsValid() {
		return w
	}
	if !w.IsValid() {
		return v
	}
	if fam, ok := sameFamilyTop(v, w); ok {
		return fam
	}
	if v.Kind == KObj || v.Kind == KTopObj || w.Kind == KObj || w.Kind == KTopObj {
		vt, wt := v.Type, w.Type
		if vt == wt {
			return TopObj(vt)
		}
		return TopObj("")
	}
	return TopObj("")
}

func sameFamilyTop(v, w Value) (Value, bool) {
	fam := func(k Kind) Kind {
		switch k {
		case KIntConst, KTopInt:
			return KTopInt
		case KStrConst, KTopStr:
			return KTopStr
		case KIntArrConst, KTopIntArr:
			return KTopIntArr
		case KStrArrConst, KTopStrArr:
			return KTopStrArr
		case KConstByte, KTopByte:
			return KTopByte
		case KConstByteArr, KTopByteArr:
			return KTopByteArr
		case KBoolConst:
			return KTopInt // booleans fold into the int lattice at joins
		}
		return KInvalid
	}
	fv, fw := fam(v.Kind), fam(w.Kind)
	if fv != KInvalid && fv == fw {
		return Value{Kind: fv}, true
	}
	return Value{}, false
}

// TopOfType returns the ⊤ element matching a declared Java type, used when
// an unanalyzable expression (unknown call, parameter, ...) is assigned to a
// variable of known declared type. Object types map to ⊤obj of that type.
func TopOfType(typeName string, dims int) Value {
	if dims > 0 {
		switch typeName {
		case "byte":
			return TopByteArr()
		case "int", "long", "short":
			return TopIntArr()
		case "String":
			return TopStrArr()
		case "char":
			// char[] carries passwords (PBEKeySpec); abstracted like byte[].
			return TopByteArr()
		default:
			return TopObj(typeName + "[]")
		}
	}
	switch typeName {
	case "byte":
		return TopByte()
	case "int", "long", "short", "char", "boolean":
		return TopInt()
	case "String":
		return TopStr()
	case "float", "double":
		return TopInt()
	case "", "var", "void":
		return TopObj("")
	default:
		return TopObj(typeName)
	}
}
