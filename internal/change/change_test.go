package change

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/cryptoapi"
	"repro/internal/usage"
)

func analyze(t *testing.T, src string) *analysis.Result {
	t.Helper()
	return analysis.AnalyzeSource(src, analysis.Options{})
}

const oldSrc = `
class AESCipher {
    Cipher enc;
    final String algorithm = "AES";
    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
        } catch (Exception e) {}
    }
}
`

const newSrc = `
class AESCipher {
    Cipher enc;
    final String algorithm = "AES/CBC/PKCS5Padding";
    protected void setKeyAndIV(Secret key, String iv) {
        try {
            byte[] ivBytes = Hex.decodeHex(iv.toCharArray());
            IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
        } catch (Exception e) {}
    }
}
`

// TestPaperFigure2d reproduces the removed/added features of Figure 2(d).
func TestPaperFigure2d(t *testing.T) {
	changes := Extract(analyze(t, oldSrc), analyze(t, newSrc), cryptoapi.Cipher, 0, Meta{})
	if len(changes) != 1 {
		t.Fatalf("changes = %d, want 1", len(changes))
	}
	c := changes[0]
	wantRemoved := []string{
		`Cipher getInstance arg1:"AES"`,
	}
	wantAdded := []string{
		`Cipher getInstance arg1:"AES/CBC/PKCS5Padding"`,
		`Cipher init arg3:IvParameterSpec`,
	}
	if got := renderPaths(c.Removed); !sameSet(got, wantRemoved) {
		t.Errorf("removed = %v, want %v", got, wantRemoved)
	}
	if got := renderPaths(c.Added); !sameSet(got, wantAdded) {
		t.Errorf("added = %v, want %v", got, wantAdded)
	}
}

func renderPaths(ps []usage.Path) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = strings.Join(p, " ")
	}
	return out
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func TestRefactoringIsSame(t *testing.T) {
	// Pure renames must produce an fsame-filterable (empty) usage change.
	refactored := `
class RenamedCipher {
    Cipher cipherInstance;
    final String transformName = "AES";
    protected void configureKey(Secret secretKey) {
        try {
            cipherInstance = Cipher.getInstance(transformName);
            cipherInstance.init(Cipher.ENCRYPT_MODE, secretKey);
        } catch (Exception e) {}
    }
}
`
	changes := Extract(analyze(t, oldSrc), analyze(t, refactored), cryptoapi.Cipher, 0, Meta{})
	if len(changes) != 1 {
		t.Fatalf("changes = %d", len(changes))
	}
	if !changes[0].IsSame() {
		t.Errorf("refactoring produced semantic change:\n%s", changes[0].String())
	}
}

func TestAddOnlyAndRemoveOnly(t *testing.T) {
	empty := `class A { void m() {} }`
	added := Extract(analyze(t, empty), analyze(t, oldSrc), cryptoapi.Cipher, 0, Meta{})
	if len(added) != 1 || !added[0].IsAddOnly() {
		t.Errorf("new usage not classified add-only: %+v", added)
	}
	removed := Extract(analyze(t, oldSrc), analyze(t, empty), cryptoapi.Cipher, 0, Meta{})
	if len(removed) != 1 || !removed[0].IsRemoveOnly() {
		t.Errorf("deleted usage not classified remove-only: %+v", removed)
	}
}

func TestShortest(t *testing.T) {
	paths := []usage.Path{
		{"a", "b"},
		{"a", "b", "c"},
		{"b", "c"},
		{"a"},
		{"a", "x"},
	}
	got := renderPaths(Shortest(paths))
	want := []string{"b c", "a"}
	if !sameSet(got, want) {
		t.Errorf("Shortest = %v, want %v", got, want)
	}
}

func TestShortestPaperExample(t *testing.T) {
	// §3.5: Shortest({a→b, a→b→c, b→c}) = {a→b, b→c}.
	paths := []usage.Path{{"a", "b"}, {"a", "b", "c"}, {"b", "c"}}
	got := renderPaths(Shortest(paths))
	want := []string{"a b", "b c"}
	if !sameSet(got, want) {
		t.Errorf("Shortest = %v, want %v", got, want)
	}
}

// Property: Shortest is idempotent, output is a subset of input, and no
// output path is a strict prefix of another.
func TestQuickShortestProperties(t *testing.T) {
	gen := func(raw [][]byte) []usage.Path {
		var ps []usage.Path
		for _, r := range raw {
			var p usage.Path
			for _, b := range r {
				p = append(p, string(rune('a'+b%4)))
				if len(p) >= 4 {
					break
				}
			}
			if len(p) > 0 {
				ps = append(ps, p)
			}
		}
		return ps
	}
	f := func(raw [][]byte) bool {
		ps := gen(raw)
		s := Shortest(ps)
		// subset
		in := map[string]bool{}
		for _, p := range ps {
			in[p.Key()] = true
		}
		for _, p := range s {
			if !in[p.Key()] {
				return false
			}
		}
		// no strict prefixes among output
		for i, p := range s {
			for j, q := range s {
				if i != j && len(q) < len(p) && q.IsPrefixOf(p) {
					return false
				}
			}
		}
		// idempotent
		return len(Shortest(s)) == len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFilterPipeline(t *testing.T) {
	mk := func(rem, add []string) UsageChange {
		c := UsageChange{Class: "Cipher"}
		for _, r := range rem {
			c.Removed = append(c.Removed, usage.Path{r})
		}
		for _, a := range add {
			c.Added = append(c.Added, usage.Path{a})
		}
		return c
	}
	changes := []UsageChange{
		mk(nil, nil),                     // fsame
		mk(nil, nil),                     // fsame
		mk(nil, []string{"x"}),           // fadd
		mk([]string{"y"}, nil),           // frem
		mk([]string{"a"}, []string{"b"}), // kept
		mk([]string{"a"}, []string{"b"}), // fdup
		mk([]string{"c"}, []string{"d"}), // kept
	}
	out, stats := Filter(changes)
	if stats.Total != 7 || stats.AfterSame != 5 || stats.AfterAdd != 4 ||
		stats.AfterRem != 3 || stats.AfterDup != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if len(out) != 2 {
		t.Errorf("survivors = %d", len(out))
	}
}

func TestFilterKeepsSemanticFix(t *testing.T) {
	// The end-to-end paper example must survive all filters.
	changes := Extract(analyze(t, oldSrc), analyze(t, newSrc), cryptoapi.Cipher, 0, Meta{})
	out, _ := Filter(changes)
	if len(out) != 1 {
		t.Fatalf("the ECB→CBC fix was filtered out (%d survivors)", len(out))
	}
}

func TestKeyCanonical(t *testing.T) {
	a := UsageChange{Class: "Cipher",
		Removed: []usage.Path{{"x"}, {"y"}},
		Added:   []usage.Path{{"z"}}}
	b := UsageChange{Class: "Cipher",
		Removed: []usage.Path{{"y"}, {"x"}}, // different order
		Added:   []usage.Path{{"z"}}}
	if a.Key() != b.Key() {
		t.Error("Key is order-sensitive; duplicates will slip through fdup")
	}
	c := UsageChange{Class: "MessageDigest",
		Removed: []usage.Path{{"x"}, {"y"}},
		Added:   []usage.Path{{"z"}}}
	if a.Key() == c.Key() {
		t.Error("Key ignores the target class")
	}
}

func TestMultiObjectChange(t *testing.T) {
	// Both enc and dec change: two usage changes result (one per object).
	oldTwo := `
class A {
    void m(Key k) throws Exception {
        Cipher enc = Cipher.getInstance("AES");
        enc.init(Cipher.ENCRYPT_MODE, k);
        Cipher dec = Cipher.getInstance("AES");
        dec.init(Cipher.DECRYPT_MODE, k);
    }
}
`
	newTwo := strings.ReplaceAll(oldTwo, `"AES"`, `"AES/GCM/NoPadding"`)
	changes := Extract(analyze(t, oldTwo), analyze(t, newTwo), cryptoapi.Cipher, 0, Meta{})
	if len(changes) != 2 {
		t.Fatalf("changes = %d, want 2", len(changes))
	}
	for _, c := range changes {
		if c.IsSame() {
			t.Error("semantic change classified as same")
		}
	}
	// The two changes are textually identical → fdup leaves one.
	out, stats := Filter(changes)
	if len(out) != 1 || stats.AfterDup != 1 {
		t.Errorf("dedup failed: %d survivors", len(out))
	}
}
