// Package change derives usage changes from paired usage DAGs (paper §3.5)
// and implements the filtering pipeline of §4.2 that distills semantic
// security fixes out of tens of thousands of syntactic code changes.
package change

import (
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/usage"
)

// Meta records the provenance of a usage change (which commit of which
// project produced it).
type Meta struct {
	Project string
	Commit  string
	File    string
	Message string
}

// UsageChange is the paper's Diff(G1, G2) = (F−, F+): the shortest feature
// paths removed from the old version and added to the new version, for one
// paired object of the target class.
type UsageChange struct {
	Class   string
	Removed []usage.Path // F−
	Added   []usage.Path // F+
	Meta    Meta
}

// IsSame reports the fsame condition: both F− and F+ empty (a refactoring
// or a change not touching the target class).
func (c *UsageChange) IsSame() bool { return len(c.Removed) == 0 && len(c.Added) == 0 }

// IsAddOnly reports the fadd condition: nothing removed (a new API usage
// was introduced rather than fixed).
func (c *UsageChange) IsAddOnly() bool { return len(c.Removed) == 0 && len(c.Added) > 0 }

// IsRemoveOnly reports the frem condition: nothing added (an API usage was
// deleted).
func (c *UsageChange) IsRemoveOnly() bool { return len(c.Added) == 0 && len(c.Removed) > 0 }

// Key returns a canonical identity for duplicate detection (fdup): the
// sorted F− and F+ path sets.
func (c *UsageChange) Key() string {
	render := func(ps []usage.Path) string {
		keys := make([]string, len(ps))
		for i, p := range ps {
			keys[i] = p.Key()
		}
		sort.Strings(keys)
		return strings.Join(keys, "\x01")
	}
	return c.Class + "\x02-" + render(c.Removed) + "\x02+" + render(c.Added)
}

// String renders the change in the style of Figure 2(d).
func (c *UsageChange) String() string {
	var sb strings.Builder
	for _, p := range c.Removed {
		sb.WriteString("- " + strings.Join(p, " ") + "\n")
	}
	for _, p := range c.Added {
		sb.WriteString("+ " + strings.Join(p, " ") + "\n")
	}
	return sb.String()
}

// Shortest returns the prefix-minimal subset of paths: p is kept iff no
// other path in the set is a strict prefix of p (paper §3.5).
func Shortest(paths []usage.Path) []usage.Path {
	var out []usage.Path
	for i, p := range paths {
		minimal := true
		for j, q := range paths {
			if i == j {
				continue
			}
			if len(q) < len(p) && q.IsPrefixOf(p) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, p)
		}
	}
	return out
}

// Diff computes the usage change between two DAGs:
// F− = Shortest(Paths(G1) \ Paths(G2)), F+ = Shortest(Paths(G2) \ Paths(G1)).
func Diff(g1, g2 *usage.Graph) (removed, added []usage.Path) {
	p1, p2 := g1.Paths(), g2.Paths()
	set1 := map[string]bool{}
	for _, p := range p1 {
		set1[p.Key()] = true
	}
	set2 := map[string]bool{}
	for _, p := range p2 {
		set2[p.Key()] = true
	}
	var only1, only2 []usage.Path
	for _, p := range p1 {
		if !set2[p.Key()] {
			only1 = append(only1, p)
		}
	}
	for _, p := range p2 {
		if !set1[p.Key()] {
			only2 = append(only2, p)
		}
	}
	return Shortest(only1), Shortest(only2)
}

// Extract derives all usage changes of one target class between two program
// versions: build the DAGs of both versions, pair them by minimum summed
// distance, and diff each pair (Figure 4).
func Extract(oldRes, newRes *analysis.Result, class string, depth int, meta Meta) []UsageChange {
	oldGs := usage.BuildAll(oldRes, class, depth)
	newGs := usage.BuildAll(newRes, class, depth)
	pairs := usage.Pair(oldGs, newGs, class)
	out := make([]UsageChange, 0, len(pairs))
	for _, pr := range pairs {
		rem, add := Diff(pr.Old, pr.New)
		out = append(out, UsageChange{Class: class, Removed: rem, Added: add, Meta: meta})
	}
	return out
}

// ---------------------------------------------------------------------------
// Filtering (paper §4.2)
// ---------------------------------------------------------------------------

// FilterStats reports the number of usage changes remaining after each
// filter stage, in the paper's order (Figure 6 columns).
type FilterStats struct {
	Total     int // before filtering
	AfterSame int // after fsame
	AfterAdd  int // after fadd
	AfterRem  int // after frem
	AfterDup  int // after fdup
}

// Filter applies the four filters in order — fsame, fadd, frem, fdup — and
// returns the surviving semantic usage changes plus per-stage counts.
func Filter(changes []UsageChange) ([]UsageChange, FilterStats) {
	stats := FilterStats{Total: len(changes)}
	var stage []UsageChange
	for _, c := range changes {
		if !c.IsSame() {
			stage = append(stage, c)
		}
	}
	stats.AfterSame = len(stage)

	var stage2 []UsageChange
	for _, c := range stage {
		if !c.IsAddOnly() {
			stage2 = append(stage2, c)
		}
	}
	stats.AfterAdd = len(stage2)

	var stage3 []UsageChange
	for _, c := range stage2 {
		if !c.IsRemoveOnly() {
			stage3 = append(stage3, c)
		}
	}
	stats.AfterRem = len(stage3)

	seen := map[string]bool{}
	var out []UsageChange
	for _, c := range stage3 {
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	stats.AfterDup = len(out)
	return out, stats
}
