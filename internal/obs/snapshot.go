package obs

import (
	"encoding/json"
	"os"
)

// SchemaVersion identifies the snapshot wire format; bump on breaking
// changes so downstream tooling (benchmark diffing, CI artifacts) can
// reject snapshots it does not understand.
const SchemaVersion = "diffcode-metrics/v1"

// Snapshot is a point-in-time, versioned copy of a registry, the JSON
// artifact the -metrics flag emits at process exit. Map keys marshal in
// sorted order (encoding/json guarantees this), so snapshots of identical
// runs are byte-identical.
type Snapshot struct {
	Schema string `json:"schema"`
	// Partial marks a run that aborted early (fail-fast/max-errors); the
	// numbers cover only the work done before the abort.
	Partial    bool                    `json:"partial"`
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	Slowest    map[string]SlowSnapshot `json:"slowest,omitempty"`
}

// HistSnapshot is one histogram: summary statistics plus the non-empty
// buckets (Le is the inclusive upper bound of each bucket). P50/P90/P99 are
// conservative quantile estimates derived from the bucket counts (see
// Histogram.Quantile) — additive fields, so pre-quantile consumers of the
// v1 schema keep parsing. Exemplar, when present, is the label (trace ID)
// of the slowest observation.
type HistSnapshot struct {
	Count    int64        `json:"count"`
	Sum      int64        `json:"sum"`
	Min      int64        `json:"min"`
	Max      int64        `json:"max"`
	P50      int64        `json:"p50,omitempty"`
	P90      int64        `json:"p90,omitempty"`
	P99      int64        `json:"p99,omitempty"`
	Exemplar string       `json:"exemplar,omitempty"`
	Buckets  []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one non-empty histogram bucket.
type HistBucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// SlowSnapshot names the slowest task observed in one span stage.
type SlowSnapshot struct {
	Task string `json:"task"`
	Us   int64  `json:"us"`
}

// TakeSnapshot copies the registry into a Snapshot. On a nil registry it
// returns an empty (but valid and marshalable) snapshot.
func TakeSnapshot(r *Registry, partial bool) *Snapshot {
	s := &Snapshot{Schema: SchemaVersion, Partial: partial}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = map[string]int64{}
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = map[string]int64{}
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = map[string]HistSnapshot{}
		for name, h := range r.hists {
			s.Histograms[name] = snapshotHist(h)
		}
	}
	if len(r.slowest) > 0 {
		s.Slowest = map[string]SlowSnapshot{}
		for stage, st := range r.slowest {
			s.Slowest[stage] = SlowSnapshot{Task: st.label, Us: st.dur.Microseconds()}
		}
	}
	return s
}

func snapshotHist(h *Histogram) HistSnapshot {
	out := HistSnapshot{Count: h.Count(), Sum: h.Sum()}
	if out.Count > 0 {
		out.Min = h.min.Load()
		out.Max = h.max.Load()
		out.P50 = h.Quantile(0.5)
		out.P90 = h.Quantile(0.9)
		out.P99 = h.Quantile(0.99)
		out.Exemplar = h.Exemplar()
	}
	for i := 0; i <= numBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			out.Buckets = append(out.Buckets, HistBucket{Le: BucketBound(i), N: n})
		}
	}
	return out
}

// MarshalJSON renders the snapshot with stable indentation for diffable
// artifacts.
func (s *Snapshot) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteSnapshotFile snapshots the registry and writes it to path. A nil
// registry writes an empty snapshot, so degraded runs always leave an
// artifact behind.
func WriteSnapshotFile(path string, r *Registry, partial bool) error {
	b, err := TakeSnapshot(r, partial).Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
