package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version 0.0.4, which WriteProm emits.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name into a legal Prometheus metric
// name: the dotted names this codebase uses ("serve.check.latency_us")
// become underscore-joined ("serve_check_latency_us"). Any byte outside
// [a-zA-Z0-9_:] maps to '_'; a leading digit gets a '_' prefix.
func promName(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// WriteProm renders the full registry in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges as-is, and
// histograms with cumulative le-labeled buckets plus _sum and _count.
// Output is sorted by metric name, so scrapes of identical registries are
// byte-identical. A nil registry writes nothing.
func WriteProm(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistSnapshot, len(r.hists))
	histNames := make([]string, 0, len(r.hists))
	for name, h := range r.hists {
		hists[name] = snapshotHist(h)
		histNames = append(histNames, name)
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[name]); err != nil {
			return err
		}
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		if err := writePromHist(w, promName(name), hists[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHist(w io.Writer, pn string, h HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	// The snapshot's buckets are per-bucket counts; Prometheus wants
	// cumulative counts per upper bound, closed by the +Inf bucket. The
	// overflow bucket reports the same bound as the last regular bucket, so
	// fold it into the preceding line rather than emit a duplicate le label.
	var cum int64
	for i, b := range h.Buckets {
		cum += b.N
		if i+1 < len(h.Buckets) && h.Buckets[i+1].Le == b.Le {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pn, h.Count, pn, h.Sum, pn, h.Count)
	return err
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
