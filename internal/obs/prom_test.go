package obs

import (
	"strings"
	"testing"
)

func TestSnapshotQuantilesAndExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket le=16
	}
	for i := 0; i < 10; i++ {
		h.ObserveExemplar(5000, "deadbeef00000001") // bucket le=8192
	}
	s := TakeSnapshot(r, false)
	hs := s.Histograms["lat"]
	if hs.P50 != 16 || hs.P90 != 16 {
		t.Errorf("P50/P90 = %d/%d, want 16/16", hs.P50, hs.P90)
	}
	if hs.P99 != 8192 {
		t.Errorf("P99 = %d, want 8192", hs.P99)
	}
	if hs.Exemplar != "deadbeef00000001" {
		t.Errorf("Exemplar = %q", hs.Exemplar)
	}
	// Quantiles agree with the live accessor the snapshot derives from.
	if hs.P99 != h.Quantile(0.99) {
		t.Errorf("snapshot P99 %d != live %d", hs.P99, h.Quantile(0.99))
	}
}

func TestExemplarKeepsSlowest(t *testing.T) {
	h := newHistogram()
	h.ObserveExemplar(100, "slow")
	h.ObserveExemplar(10, "fast")
	if h.Exemplar() != "slow" {
		t.Errorf("Exemplar = %q, want the slowest observation's label", h.Exemplar())
	}
	h.ObserveExemplar(200, "slower")
	if h.Exemplar() != "slower" {
		t.Errorf("Exemplar = %q after a larger observation", h.Exemplar())
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x") // must not panic
	if nilH.Exemplar() != "" {
		t.Error("nil histogram has an exemplar")
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.check.latency_us": "serve_check_latency_us",
		"pool.tasks":             "pool_tasks",
		"9lives":                 "_9lives",
		"a-b c":                  "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(7)
	r.Gauge("pool.workers").Set(4)
	h := r.Histogram("serve.check.latency_us")
	h.Observe(3)  // le=4
	h.Observe(3)  // le=4
	h.Observe(90) // le=128

	var sb strings.Builder
	if err := WriteProm(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE serve_requests_total counter
serve_requests_total 7
# TYPE pool_workers gauge
pool_workers 4
# TYPE serve_check_latency_us histogram
serve_check_latency_us_bucket{le="4"} 2
serve_check_latency_us_bucket{le="128"} 3
serve_check_latency_us_bucket{le="+Inf"} 3
serve_check_latency_us_sum 96
serve_check_latency_us_count 3
`
	if sb.String() != want {
		t.Errorf("prom output:\n%s\nwant:\n%s", sb.String(), want)
	}
	// Byte-stable across scrapes.
	var sb2 strings.Builder
	WriteProm(&sb2, r)
	if sb.String() != sb2.String() {
		t.Error("prom output not deterministic")
	}
}

func TestWritePromNilRegistry(t *testing.T) {
	var sb strings.Builder
	if err := WriteProm(&sb, nil); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry: err=%v out=%q", err, sb.String())
	}
}
