package obs

import (
	"fmt"
	"os"

	"repro/internal/resilience"
)

// CLI bundles the per-process observability state shared by the four
// command-line tools: the registry (created only when an observability
// flag is set, so an unflagged run stays on the nil no-op path end to
// end), the -metrics snapshot destination, and the -v summary toggle.
type CLI struct {
	Name        string
	Reg         *Registry
	MetricsPath string
	Verbose     bool
	flushed     bool
}

// NewCLI builds the observability state from the common flag values. The
// registry exists only if at least one of -metrics, -v, or -debug-addr was
// given; -debug-addr additionally starts the live introspection endpoint
// and logs its address to stderr.
func NewCLI(name, metricsPath, debugAddr string, verbose bool) (*CLI, error) {
	c := &CLI{Name: name, MetricsPath: metricsPath, Verbose: verbose}
	if metricsPath != "" || debugAddr != "" || verbose {
		c.Reg = NewRegistry()
	}
	if debugAddr != "" {
		addr, err := StartDebugServer(debugAddr, c.Reg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "%s: debug endpoint on http://%s/debug/vars (pprof under /debug/pprof/)\n",
			name, addr)
	}
	return c, nil
}

// Flush folds the ledger's failures into the registry, prints the -v
// stage summary to stderr, and writes the -metrics snapshot (flagged
// partial when the run aborted early). It is idempotent so every exit
// path of a CLI can call it; only the first call does work. A snapshot
// write failure is reported but does not change the exit status — the
// telemetry must never fail a run that otherwise succeeded.
func (c *CLI) Flush(l *resilience.Ledger, partial bool) {
	if c == nil || c.Reg == nil || c.flushed {
		return
	}
	c.flushed = true
	FoldLedger(c.Reg, l)
	if c.Verbose {
		fmt.Fprint(os.Stderr, c.Reg.Summary())
	}
	if c.MetricsPath != "" {
		if err := WriteSnapshotFile(c.MetricsPath, c.Reg, partial); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing metrics snapshot: %v\n", c.Name, err)
		}
	}
}
