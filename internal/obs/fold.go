package obs

import "repro/internal/resilience"

// FoldLedger folds the resilience ledger's failure record into the
// registry as first-class metrics, so skipped work and stage latencies
// appear in one report:
//
//	failures.total              all recorded skips
//	failures.phase.<phase>      per pipeline phase (parse, analyze, ...)
//	failures.category.<cat>     per category (panic, budget, io)
//
// Call it once, after the run, before snapshotting. Nil registry or nil
// ledger are no-ops.
func FoldLedger(r *Registry, l *resilience.Ledger) {
	if r == nil || l.Len() == 0 {
		return
	}
	r.Counter("failures.total").Add(int64(l.Len()))
	for phase, n := range l.ByPhase() {
		r.Counter("failures.phase." + string(phase)).Add(int64(n))
	}
	for cat, n := range l.ByCategory() {
		r.Counter("failures.category." + string(cat)).Add(int64(n))
	}
}
