package obs

import "time"

// Span measures the wall time of one unit of work within a pipeline stage.
// Spans are value types (no allocation) created by Registry.StartSpan and
// closed by End; the duration aggregates into the stage's histogram
// `span.<stage>.us` and counter `span.<stage>.count`, and the slowest task
// per stage is remembered with its provenance label.
//
// A span from a nil registry is inert: End does nothing and no clock is
// consulted.
type Span struct {
	reg   *Registry
	stage string
	label string
	start time.Time
}

// StartSpan opens a span for the named pipeline stage. Nil-safe.
func (r *Registry) StartSpan(stage string) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, stage: stage, start: r.now()}
}

// StartSpanTask opens a span carrying a provenance label (project, commit,
// file) used for slowest-task attribution. Nil-safe.
func (r *Registry) StartSpanTask(stage, label string) Span {
	s := r.StartSpan(stage)
	s.label = label
	return s
}

// End closes the span, recording its duration (in microseconds) into the
// stage histogram. Ending an inert span is a no-op.
func (s Span) End() {
	if s.reg == nil {
		return
	}
	d := s.reg.now().Sub(s.start)
	if d < 0 {
		d = 0
	}
	s.reg.Histogram("span." + s.stage + ".us").Observe(d.Microseconds())
	s.reg.Counter("span." + s.stage + ".count").Inc()
	s.reg.recordSlowest(s.stage, s.label, d)
}
