package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Summary renders the human-readable stage-by-stage report behind the
// CLIs' -v flag: one row per span stage with latency statistics, followed
// by every non-span counter, gauge, and value histogram. An empty or nil
// registry renders the empty string.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	var stages []string
	for name := range r.hists {
		if s, ok := spanStage(name); ok {
			stages = append(stages, s)
		}
	}
	sort.Strings(stages)

	var sb strings.Builder
	if len(stages) > 0 {
		fmt.Fprintf(&sb, "%-12s %8s %10s %10s %10s %10s %10s  %s\n",
			"stage", "runs", "total", "mean", "p50", "p90", "max", "slowest")
		for _, stage := range stages {
			h := r.hists["span."+stage+".us"]
			n := h.Count()
			if n == 0 {
				continue
			}
			slow := ""
			if st, ok := r.slowest[stage]; ok {
				slow = st.label
			}
			fmt.Fprintf(&sb, "%-12s %8d %10s %10s %10s %10s %10s  %s\n",
				stage, n, fmtUs(h.Sum()), fmtUs(h.Sum()/n),
				fmtUs(h.Quantile(0.5)), fmtUs(h.Quantile(0.9)),
				fmtUs(h.max.Load()), slow)
		}
	}

	var counterNames []string
	for name := range r.counters {
		if _, ok := spanStage(name); ok {
			continue // rendered as the runs column above
		}
		counterNames = append(counterNames, name)
	}
	sort.Strings(counterNames)
	if len(counterNames) > 0 {
		fmt.Fprintln(&sb, "counters")
		for _, name := range counterNames {
			fmt.Fprintf(&sb, "  %-38s %12d\n", name, r.counters[name].Value())
		}
	}

	var gaugeNames []string
	for name := range r.gauges {
		gaugeNames = append(gaugeNames, name)
	}
	sort.Strings(gaugeNames)
	if len(gaugeNames) > 0 {
		fmt.Fprintln(&sb, "gauges")
		for _, name := range gaugeNames {
			fmt.Fprintf(&sb, "  %-38s %12d\n", name, r.gauges[name].Value())
		}
	}

	var histNames []string
	for name := range r.hists {
		if _, ok := spanStage(name); !ok {
			histNames = append(histNames, name)
		}
	}
	sort.Strings(histNames)
	if len(histNames) > 0 {
		fmt.Fprintln(&sb, "distributions")
		for _, name := range histNames {
			h := r.hists[name]
			n := h.Count()
			if n == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  %-38s n=%d sum=%d min=%d p50=%d p90=%d max=%d\n",
				name, n, h.Sum(), h.min.Load(), h.Quantile(0.5), h.Quantile(0.9), h.max.Load())
		}
	}
	return sb.String()
}

// spanStage extracts the stage name from a span metric name
// ("span.<stage>.us" or "span.<stage>.count").
func spanStage(name string) (string, bool) {
	if !strings.HasPrefix(name, "span.") {
		return "", false
	}
	rest := strings.TrimPrefix(name, "span.")
	for _, suffix := range []string{".us", ".count"} {
		if strings.HasSuffix(rest, suffix) {
			return strings.TrimSuffix(rest, suffix), true
		}
	}
	return "", false
}

// fmtUs renders a microsecond quantity as a compact duration.
func fmtUs(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}
