package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the introspection mux behind the -debug-addr flag:
//
//	/debug/vars     the live metrics snapshot as expvar-style JSON
//	/debug/metrics  the registry in Prometheus text exposition format
//	/debug/pprof    the standard pprof profiles for live profiling
//
// The pprof handlers are registered explicitly rather than via the
// net/http/pprof side-effect import so nothing leaks into
// http.DefaultServeMux.
func NewDebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		b, err := TakeSnapshot(r, false).Marshal()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		WriteProm(w, r) //nolint:errcheck — a broken scrape conn is the scraper's problem
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer binds addr and serves the debug mux from a background
// goroutine, returning the bound address (useful with ":0"). The server
// lives for the remainder of the process; mining runs are batch jobs, so
// there is no graceful-shutdown dance.
func StartDebugServer(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, NewDebugMux(r)) //nolint:errcheck — dies with the process
	return ln.Addr().String(), nil
}
