// Package obs is the observability layer of the pipeline: a stdlib-only
// metrics and tracing substrate sized for mining runs of the paper's scale
// (§6.1: 114,940 commits over 2,711 projects), where the only way to
// diagnose a slow or degraded batch is telemetry from the analyzer itself.
//
// The primitives are deliberately small:
//
//   - Counter / Gauge: atomic int64s registered by name.
//   - Histogram: fixed power-of-two buckets with atomic per-bucket counts,
//     used for per-change latencies and step distributions.
//   - Span: a start/stop pair that aggregates wall time per pipeline stage
//     into a histogram and tracks the slowest task per stage with its
//     provenance label.
//
// A nil *Registry is valid everywhere and turns every operation into a
// no-op costing one nil check, so the uninstrumented happy path of the
// pipeline is unchanged (the same convention resilience.Budget and
// resilience.Ledger use). All operations on a non-nil Registry are safe
// for concurrent use by the mining worker pool.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds the named metrics of one pipeline run.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	slowest  map[string]*slowTask
	// now is the clock used by spans; replaceable for deterministic tests.
	now func() time.Time
}

// slowTask tracks the worst-case task of one span stage.
type slowTask struct {
	label string
	dur   time.Duration
}

// NewRegistry returns an empty registry using the wall clock.
func NewRegistry() *Registry { return NewRegistryClock(time.Now) }

// NewRegistryClock returns a registry with a custom clock (tests use a
// deterministic fake so span durations are reproducible).
func NewRegistryClock(now func() time.Time) *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		slowest:  map[string]*slowTask{},
		now:      now,
	}
}

// Now reads the registry's clock (the wall clock on a nil registry). The
// parallel worker pool times tasks through this accessor so per-task
// latencies honor the injectable test clock exactly like spans do.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Now()
	}
	return r.now()
}

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns nil, which is a valid no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// recordSlowest keeps the per-stage maximum span duration with its label.
func (r *Registry) recordSlowest(stage, label string, d time.Duration) {
	if r == nil || label == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.slowest[stage]
	if !ok {
		r.slowest[stage] = &slowTask{label: label, dur: d}
		return
	}
	if d > s.dur {
		s.label, s.dur = label, d
	}
}

// counterNames returns the registered counter names, sorted.
func (r *Registry) counterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// a valid no-op.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is a valid no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// numBuckets is the fixed bucket count: bucket i holds observations with
// value <= 2^i, plus one overflow bucket. 2^40 covers ~12 days in
// microseconds and ~10^12 interpreter steps — beyond any per-change span.
const numBuckets = 41

// Histogram is a fixed-bucket histogram with power-of-two bucket bounds
// (bucket i counts observations <= 2^i; the last bucket is the overflow).
// Negative observations clamp to zero. A nil *Histogram is a valid no-op.
type Histogram struct {
	buckets [numBuckets + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64

	// exemplar labels the largest observation seen so far (the slowest
	// request's trace ID); the lock is off the Observe fast path entirely —
	// only ObserveExemplar takes it.
	exMu sync.Mutex
	exV  int64
	ex   string
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 sentinel
	return h
}

// bucketOf returns the index of the smallest bucket bound >= v.
func bucketOf(v int64) int {
	for i := 0; i < numBuckets; i++ {
		if v <= 1<<uint(i) {
			return i
		}
	}
	return numBuckets
}

// BucketBound returns the upper bound of bucket i (the overflow bucket
// reports the largest regular bound; quantiles saturate there).
func BucketBound(i int) int64 {
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return 1 << uint(i)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveExemplar records one value and, when label is non-empty, keeps it
// as the histogram's exemplar if this is the largest observation so far.
// The server links its slowest trace ID to each latency histogram this way,
// so an operator can jump from "p99 is bad" straight to a retained trace.
func (h *Histogram) ObserveExemplar(v int64, label string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if label == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	h.exMu.Lock()
	if v >= h.exV || h.ex == "" {
		h.exV, h.ex = v, label
	}
	h.exMu.Unlock()
}

// Exemplar returns the label of the largest observation recorded through
// ObserveExemplar ("" when none, or on nil).
func (h *Histogram) Exemplar() string {
	if h == nil {
		return ""
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.ex
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the upper bucket bound at or below which at least
// q (0..1) of the observations fall — a conservative estimate with
// power-of-two resolution. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return BucketBound(i)
		}
	}
	return BucketBound(numBuckets)
}
