package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
)

// fakeClock is a deterministic clock advancing one millisecond per read.
type fakeClock struct{ ticks atomic.Int64 }

func (c *fakeClock) now() time.Time {
	t := c.ticks.Add(1)
	return time.Unix(0, t*int64(time.Millisecond))
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(5)
	r.Histogram("x").Observe(3)
	sp := r.StartSpan("stage")
	sp.End()
	if got := r.Summary(); got != "" {
		t.Fatalf("nil registry summary = %q, want empty", got)
	}
	s := TakeSnapshot(r, false)
	if s.Schema != SchemaVersion || len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("steps").Inc()
				r.Gauge("inflight").Set(int64(w))
				r.Histogram("latency").Observe(int64(i))
				sp := r.StartSpanTask("analyze", "task")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("steps").Value(); got != workers*perWorker {
		t.Fatalf("steps = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("latency")
	if h.Count() != workers*perWorker {
		t.Fatalf("latency count = %d", h.Count())
	}
	if h.min.Load() != 0 || h.max.Load() != perWorker-1 {
		t.Fatalf("min/max = %d/%d", h.min.Load(), h.max.Load())
	}
	if got := r.Counter("span.analyze.count").Value(); got != workers*perWorker {
		t.Fatalf("span count = %d", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	// Conservative power-of-two bounds: p50 of 1..100 falls in the <=64
	// bucket, p90+ in <=128.
	if got := h.Quantile(0.5); got != 64 {
		t.Errorf("p50 = %d, want 64", got)
	}
	if got := h.Quantile(0.99); got != 128 {
		t.Errorf("p99 = %d, want 128", got)
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %d", h.Sum())
	}
	h.Observe(-7) // clamps to zero
	if h.min.Load() != 0 {
		t.Errorf("min after negative observe = %d", h.min.Load())
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	clock := &fakeClock{}
	r := NewRegistryClock(clock.now)
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("z.gauge").Set(9)
	r.Histogram("steps").Observe(100)
	sp := r.StartSpanTask("parse", "Main.java")
	sp.End()

	b1, err := TakeSnapshot(r, false).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := TakeSnapshot(r, false).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", b1, b2)
	}
	// Stable (sorted) key order in the JSON text itself.
	if strings.Index(string(b1), `"a.count"`) > strings.Index(string(b1), `"b.count"`) {
		t.Fatalf("counter keys not sorted:\n%s", b1)
	}
	var decoded Snapshot
	if err := json.Unmarshal(b1, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != SchemaVersion {
		t.Fatalf("schema = %q", decoded.Schema)
	}
	if decoded.Counters["b.count"] != 2 {
		t.Fatalf("counters = %v", decoded.Counters)
	}
	if decoded.Slowest["parse"].Task != "Main.java" {
		t.Fatalf("slowest = %v", decoded.Slowest)
	}
}

func TestSummaryGolden(t *testing.T) {
	clock := &fakeClock{}
	r := NewRegistryClock(clock.now)
	// A fixed two-change run: each analyze span is opened and closed with
	// one clock read apiece, so the fake clock gives every span exactly
	// 1ms of wall time.
	for _, task := range []string{"change p@c1:A.java", "change p@c2:B.java"} {
		sp := r.StartSpanTask("analyze", task)
		r.Counter("analysis.steps").Add(500)
		r.Histogram("analysis.steps_per_change").Observe(500)
		sp.End()
	}
	r.Counter("mining.changes_mined").Add(2)
	r.Gauge("workers").Set(1)

	want := strings.Join([]string{
		"stage            runs      total       mean        p50        p90        max  slowest",
		"analyze             2        2ms        1ms    1.024ms    1.024ms        1ms  change p@c1:A.java",
		"counters",
		"  analysis.steps                                 1000",
		"  mining.changes_mined                              2",
		"gauges",
		"  workers                                           1",
		"distributions",
		"  analysis.steps_per_change              n=2 sum=1000 min=500 p50=512 p90=512 max=500",
		"",
	}, "\n")
	if got := r.Summary(); got != want {
		t.Fatalf("summary mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestFoldLedger(t *testing.T) {
	l := resilience.NewLedger()
	l.Record(resilience.NewEntry("t1", resilience.PhaseParse, errors.New("boom")))
	l.Record(resilience.NewEntry("t2", resilience.PhaseAnalyze,
		resilience.ErrBudgetExhausted))
	r := NewRegistry()
	FoldLedger(r, l)
	if got := r.Counter("failures.total").Value(); got != 2 {
		t.Fatalf("failures.total = %d", got)
	}
	if got := r.Counter("failures.phase.parse").Value(); got != 1 {
		t.Fatalf("failures.phase.parse = %d", got)
	}
	if got := r.Counter("failures.category.budget").Value(); got != 1 {
		t.Fatalf("failures.category.budget = %d", got)
	}
	// Nil combinations are no-ops, not crashes.
	FoldLedger(nil, l)
	FoldLedger(r, nil)
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(7)
	addr, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("bad /debug/vars JSON: %v\n%s", err, body)
	}
	if s.Counters["hits"] != 7 {
		t.Fatalf("hits = %d", s.Counters["hits"])
	}
	resp2, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp2.StatusCode)
	}
	resp3, err := http.Get("http://" + addr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if ct := resp3.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("/debug/metrics Content-Type = %q", ct)
	}
	prom, _ := io.ReadAll(resp3.Body)
	if !strings.Contains(string(prom), "hits_total 7") {
		t.Fatalf("/debug/metrics missing counter:\n%s", prom)
	}
}
