// Package artifact is the content-addressed artifact store behind the
// incremental pipeline (-cache-dir): parsed ASTs, per-change analysis
// results, compiled rule sets, and check outcomes are stored under keys
// derived from their *inputs* — source content, rule-set identity, and an
// options fingerprint — so a warm run re-derives only what actually changed
// and a second request for the same snippet is a lookup, not an analysis.
//
// The store has three tiers:
//
//   - an object tier: decoded artifacts (shared read-only — *javaast
//     CompilationUnits, compiled rules) kept in memory, capped with
//     reset-on-cap eviction like the distcache shards;
//   - a byte tier: encoded payloads in memory, same cap discipline;
//   - an optional disk tier (Config.Dir): versioned, self-validating
//     entries in a 256-way sharded layout, written atomically.
//
// The store can only ever miss, never fail: a corrupt, truncated, stale, or
// cross-linked disk entry is counted (artifact.corrupt) and treated as a
// miss; an unwritable directory is counted (artifact.disk_errors) and the
// store degrades to memory-only. A nil *Store disables caching entirely —
// the same nil-is-off convention as obs.Registry and distcache.Engine.
//
// Do gives per-key single-flight: concurrent requests for the same key run
// the compute once and share the result, so a duplicate-heavy batch never
// analyzes the same content hash twice at any worker count.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"sync"

	"repro/internal/obs"
)

// Kind names one artifact class. The kind participates in key derivation
// (domain separation) and names the on-disk subdirectory.
type Kind string

// The artifact classes of the pipeline.
const (
	// KindParse: per-file parse results (gob-encoded javaast units), keyed
	// by source content alone — parse artifacts survive option changes.
	KindParse Kind = "parse"
	// KindAnalysis: per-change analysis artifacts (the per-class usage-
	// change extractions of both versions), keyed by both sources plus the
	// pipeline options fingerprint.
	KindAnalysis Kind = "analysis"
	// KindRules: compiled rule sets (memory tiers only — compiled rules
	// hold closures, which no byte encoding can round-trip).
	KindRules Kind = "rules"
	// KindCheck: whole check outcomes (violations + witness traces), keyed
	// by sources, rule-set identity, rule context, and options.
	KindCheck Kind = "check"
	// KindManifest: per-project corpus manifests recorded at load time; a
	// warm hit means the project's content is byte-identical to a prior run.
	KindManifest Kind = "manifest"
	// KindSummary: memoized per-method summaries of the abstract
	// interpreter, keyed by the whole-program source fingerprint plus the
	// callee's identity, abstract arguments, heap/field context, and the
	// analysis options that shape execution. A warm hit replays the callee's
	// recorded effect instead of re-interpreting its body.
	KindSummary Kind = "summary"
)

// FormatVersion versions every entry (key derivation and disk format).
// Bumping it orphans all previously written artifacts — they become stale
// entries that read as misses, never as wrong answers.
const FormatVersion = 1

// Key is a content address: sha256 over the kind, the format version, and
// the caller's length-prefixed parts.
type Key [sha256.Size]byte

// NewKey derives the content address for an artifact from its inputs. Parts
// are length-prefixed before hashing, so ("ab","c") and ("a","bc") cannot
// collide, and the kind and format version are mixed in first.
func NewKey(kind Kind, parts ...string) Key {
	h := sha256.New()
	var lenBuf [8]byte
	write := func(s string) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		io.WriteString(h, s)
	}
	write(string(kind))
	binary.LittleEndian.PutUint64(lenBuf[:], FormatVersion)
	h.Write(lenBuf[:])
	for _, p := range parts {
		write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// String renders the key as lowercase hex (the on-disk file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Config configures a store.
type Config struct {
	// Dir is the disk tier's root directory; empty keeps the store
	// memory-only (the -cache-dir default).
	Dir string
	// Metrics receives artifact.* telemetry; nil disables instrumentation.
	Metrics *obs.Registry
	// MemEntries caps the in-memory byte tier (entries, not bytes); at the
	// cap the tier resets and the dropped entries count as evictions.
	// Default 1<<14.
	MemEntries int
	// ObjEntries caps the decoded-object tier the same way. Default 1<<13.
	ObjEntries int
}

// Store is one artifact store instance. All methods are safe for concurrent
// use and safe on a nil receiver (nil = caching off).
type Store struct {
	cfg Config
	reg *obs.Registry

	mu    sync.RWMutex
	bytes map[mkey][]byte
	objs  map[mkey]any

	flightMu sync.Mutex
	flight   map[mkey]*flightCall
}

type mkey struct {
	kind Kind
	key  Key
}

// New builds a store. A non-empty cfg.Dir enables the disk tier lazily: the
// directory tree is created on first write, and any I/O failure downgrades
// the store to memory-only behavior for that entry (counted, never fatal).
func New(cfg Config) *Store {
	if cfg.MemEntries <= 0 {
		cfg.MemEntries = 1 << 14
	}
	if cfg.ObjEntries <= 0 {
		cfg.ObjEntries = 1 << 13
	}
	return &Store{
		cfg:    cfg,
		reg:    cfg.Metrics,
		bytes:  map[mkey][]byte{},
		objs:   map[mkey]any{},
		flight: map[mkey]*flightCall{},
	}
}

// Dir returns the disk tier's root ("" for a memory-only store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.cfg.Dir
}

// hit/miss book one *logical* lookup: Get, GetBytes, and Do's cache consult
// each count exactly once, which is what makes the counters usable as an
// invalidation oracle (mutate one input, expect exactly one recompute).
func (s *Store) hit(kind Kind, tier string) {
	s.reg.Counter("artifact.hits").Inc()
	s.reg.Counter("artifact." + string(kind) + ".hits").Inc()
	s.reg.Counter("artifact." + tier + "_hits").Inc()
}

func (s *Store) miss(kind Kind) {
	s.reg.Counter("artifact.misses").Inc()
	s.reg.Counter("artifact." + string(kind) + ".misses").Inc()
}

// Get returns the decoded artifact for key: object tier first, then the
// byte/disk tiers through decode (promoting the decoded value to the object
// tier on the way up). A nil decode restricts the lookup to the object tier
// (artifacts that cannot be serialized, like compiled rules). Exactly one
// hit or one miss is counted per call.
func (s *Store) Get(kind Kind, k Key, decode func([]byte) (any, error)) (any, bool) {
	if s == nil {
		return nil, false
	}
	mk := mkey{kind, k}
	s.mu.RLock()
	v, ok := s.objs[mk]
	s.mu.RUnlock()
	if ok {
		s.hit(kind, "mem")
		return v, true
	}
	if decode == nil {
		s.miss(kind)
		return nil, false
	}
	payload, tier, ok := s.getBytesUncounted(mk)
	if !ok {
		s.miss(kind)
		return nil, false
	}
	v, err := decode(payload)
	if err != nil {
		// A payload that fails to decode is as good as corrupt, whatever
		// tier it came from: count it and miss.
		s.reg.Counter("artifact.corrupt").Inc()
		s.miss(kind)
		return nil, false
	}
	s.putObj(mk, v)
	s.hit(kind, tier)
	return v, true
}

// Put stores the decoded artifact, and — when encode is non-nil — its
// serialized payload in the byte and disk tiers. An encode error skips the
// byte tiers silently (the object tier still serves this process).
func (s *Store) Put(kind Kind, k Key, v any, encode func() ([]byte, error)) {
	if s == nil {
		return
	}
	mk := mkey{kind, k}
	s.putObj(mk, v)
	if encode == nil {
		return
	}
	payload, err := encode()
	if err != nil {
		s.reg.Counter("artifact.encode_errors").Inc()
		return
	}
	s.putBytes(mk, payload)
}

// GetBytes returns the raw payload for key from the byte or disk tier,
// counting one hit or miss.
func (s *Store) GetBytes(kind Kind, k Key) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	payload, tier, ok := s.getBytesUncounted(mkey{kind, k})
	if !ok {
		s.miss(kind)
		return nil, false
	}
	s.hit(kind, tier)
	return payload, true
}

// PutBytes stores a raw payload in the byte and disk tiers.
func (s *Store) PutBytes(kind Kind, k Key, payload []byte) {
	if s == nil {
		return
	}
	s.putBytes(mkey{kind, k}, payload)
}

// getBytesUncounted consults the in-memory byte tier, then the disk tier
// (promoting a disk hit into memory). It reports which tier answered and
// performs no hit/miss accounting — callers count the logical lookup.
func (s *Store) getBytesUncounted(mk mkey) (payload []byte, tier string, ok bool) {
	s.mu.RLock()
	payload, ok = s.bytes[mk]
	s.mu.RUnlock()
	if ok {
		return payload, "mem", true
	}
	if s.cfg.Dir == "" {
		return nil, "", false
	}
	payload, ok = s.diskRead(mk)
	if !ok {
		return nil, "", false
	}
	s.reg.Counter("artifact.bytes_read").Add(int64(len(payload)))
	s.memPutBytes(mk, payload)
	return payload, "disk", true
}

func (s *Store) putBytes(mk mkey, payload []byte) {
	s.memPutBytes(mk, payload)
	if s.cfg.Dir != "" {
		if s.diskWrite(mk, payload) {
			s.reg.Counter("artifact.bytes_written").Add(int64(len(payload)))
		}
	}
}

// memPutBytes inserts into the byte tier, resetting it at the cap (the
// distcache eviction discipline: O(1) bookkeeping, dropped entries are
// recomputed or re-read on demand).
func (s *Store) memPutBytes(mk mkey, payload []byte) {
	s.mu.Lock()
	if len(s.bytes) >= s.cfg.MemEntries {
		s.reg.Counter("artifact.evictions").Add(int64(len(s.bytes)))
		s.reg.Counter("artifact.eviction.resets").Inc()
		s.bytes = map[mkey][]byte{}
	}
	s.bytes[mk] = payload
	s.mu.Unlock()
}

func (s *Store) putObj(mk mkey, v any) {
	s.mu.Lock()
	if len(s.objs) >= s.cfg.ObjEntries {
		s.reg.Counter("artifact.evictions").Add(int64(len(s.objs)))
		s.reg.Counter("artifact.eviction.resets").Inc()
		s.objs = map[mkey]any{}
	}
	s.objs[mk] = v
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Per-key single-flight
// ---------------------------------------------------------------------------

type flightCall struct {
	done chan struct{}
	v    any
	err  error
	// finished distinguishes a normal completion from a leader that
	// panicked out of fn: waiters of an aborted call rerun fn themselves
	// rather than inheriting a zero result.
	finished bool
}

// Do runs fn under per-key single-flight: if another goroutine is already
// computing the same (kind, key), the call waits and shares that result
// instead of computing again. Sequential calls each run fn — fn is expected
// to consult the store first, so a second sequential call is a cache hit
// inside fn, not a duplicate compute. On a nil store Do is exactly fn().
//
// If the leader panics, the panic propagates from the leader's Do and
// waiters rerun fn themselves (correctness over dedup in the rare case).
func (s *Store) Do(kind Kind, k Key, fn func() (any, error)) (any, error) {
	if s == nil {
		return fn()
	}
	mk := mkey{kind, k}
	s.flightMu.Lock()
	if c, ok := s.flight[mk]; ok {
		s.flightMu.Unlock()
		s.reg.Counter("artifact.singleflight.shared").Inc()
		<-c.done
		if !c.finished {
			return fn()
		}
		return c.v, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[mk] = c
	s.flightMu.Unlock()
	defer func() {
		s.flightMu.Lock()
		delete(s.flight, mk)
		s.flightMu.Unlock()
		close(c.done)
	}()
	v, err := fn()
	c.v, c.err, c.finished = v, err, true
	return v, err
}
