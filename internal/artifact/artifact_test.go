package artifact

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func counters(reg *obs.Registry) map[string]int64 {
	return obs.TakeSnapshot(reg, false).Counters
}

// TestKeyDerivation pins the properties the content addressing relies on:
// determinism, kind/part sensitivity, and length-prefix non-collision.
func TestKeyDerivation(t *testing.T) {
	if NewKey(KindParse, "a", "b") != NewKey(KindParse, "a", "b") {
		t.Fatal("same inputs, different keys")
	}
	if NewKey(KindParse, "a") == NewKey(KindAnalysis, "a") {
		t.Fatal("kind does not separate key domains")
	}
	if NewKey(KindParse, "ab", "c") == NewKey(KindParse, "a", "bc") {
		t.Fatal("length prefixing failed: part boundaries collide")
	}
	if NewKey(KindParse, "a") == NewKey(KindParse, "b") {
		t.Fatal("content does not change the key")
	}
	if got := len(NewKey(KindParse).String()); got != 64 {
		t.Fatalf("key hex length = %d, want 64", got)
	}
}

// TestMemoryRoundTrip exercises the object and byte tiers of a memory-only
// store, asserting the exact hit/miss accounting the invalidation oracle
// depends on.
func TestMemoryRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg})
	k := NewKey(KindAnalysis, "content")

	if _, ok := s.Get(KindAnalysis, k, nil); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(KindAnalysis, k, "decoded", func() ([]byte, error) { return []byte("payload"), nil })
	v, ok := s.Get(KindAnalysis, k, nil)
	if !ok || v.(string) != "decoded" {
		t.Fatalf("object tier: got %v, %v", v, ok)
	}
	b, ok := s.GetBytes(KindAnalysis, k)
	if !ok || string(b) != "payload" {
		t.Fatalf("byte tier: got %q, %v", b, ok)
	}
	c := counters(reg)
	if c["artifact.hits"] != 2 || c["artifact.misses"] != 1 {
		t.Fatalf("hit/miss accounting: %v", c)
	}
	if c["artifact.analysis.hits"] != 2 || c["artifact.analysis.misses"] != 1 {
		t.Fatalf("per-kind accounting: %v", c)
	}
}

// TestGetDecodesByteTier covers the promote path: an entry present only as
// bytes decodes into the object tier on first Get and serves from the
// object tier afterwards.
func TestGetDecodesByteTier(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg})
	k := NewKey(KindAnalysis, "x")
	s.PutBytes(KindAnalysis, k, []byte("7"))
	decodes := 0
	decode := func(b []byte) (any, error) { decodes++; return string(b) + "!", nil }
	for i := 0; i < 3; i++ {
		v, ok := s.Get(KindAnalysis, k, decode)
		if !ok || v.(string) != "7!" {
			t.Fatalf("round %d: got %v, %v", i, v, ok)
		}
	}
	if decodes != 1 {
		t.Fatalf("decode ran %d times, want 1 (promotion failed)", decodes)
	}
	// A decode error must read as a miss, not an error.
	k2 := NewKey(KindAnalysis, "y")
	s.PutBytes(KindAnalysis, k2, []byte("bad"))
	if _, ok := s.Get(KindAnalysis, k2, func([]byte) (any, error) { return nil, errors.New("no") }); ok {
		t.Fatal("decode error surfaced as a hit")
	}
	if counters(reg)["artifact.corrupt"] == 0 {
		t.Fatal("decode error not counted as corrupt")
	}
}

// TestDiskRoundTrip writes through one store and reads through a fresh one
// rooted at the same directory — the warm-run scenario.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	k := NewKey(KindParse, "class A {}")
	cold := New(Config{Dir: dir})
	cold.PutBytes(KindParse, k, []byte("ast-bytes"))

	reg := obs.NewRegistry()
	warm := New(Config{Dir: dir, Metrics: reg})
	b, ok := warm.GetBytes(KindParse, k)
	if !ok || string(b) != "ast-bytes" {
		t.Fatalf("warm read: got %q, %v", b, ok)
	}
	c := counters(reg)
	if c["artifact.disk_hits"] != 1 || c["artifact.bytes_read"] == 0 {
		t.Fatalf("disk telemetry: %v", c)
	}
	// Promotion: the second read serves from memory.
	if _, ok := warm.GetBytes(KindParse, k); !ok {
		t.Fatal("promoted read missed")
	}
	if counters(reg)["artifact.mem_hits"] != 1 {
		t.Fatalf("promotion telemetry: %v", counters(reg))
	}
	// Layout: v1/<kind>/<2-hex shard>/<hex>.
	hex := k.String()
	if _, err := os.Stat(filepath.Join(dir, "v1", "parse", hex[:2], hex)); err != nil {
		t.Fatalf("sharded layout missing: %v", err)
	}
}

// TestDiskSelfValidation corrupts entries every way the format defends
// against; each defect must read as a counted miss, never an error or a
// wrong payload.
func TestDiskSelfValidation(t *testing.T) {
	corruptions := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte { b[len(b)-40] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }},
		{"stale magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"flipped key byte", func(b []byte) []byte { b[10] ^= 0x01; return b }},
		{"empty file", func([]byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			k := NewKey(KindAnalysis, "v")
			New(Config{Dir: dir}).PutBytes(KindAnalysis, k, []byte("payload"))
			hex := k.String()
			path := filepath.Join(dir, "v1", "analysis", hex[:2], hex)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			s := New(Config{Dir: dir, Metrics: reg})
			if _, ok := s.GetBytes(KindAnalysis, k); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			c := counters(reg)
			if c["artifact.corrupt"] != 1 || c["artifact.misses"] != 1 {
				t.Fatalf("corrupt entry accounting: %v", c)
			}
		})
	}
}

// TestKindCrossLink ensures an entry cannot answer for a different kind
// even if the file lands on the matching path (the header binds both kind
// and key).
func TestKindCrossLink(t *testing.T) {
	dir := t.TempDir()
	// The same parts under two kinds produce two different keys, so to
	// simulate a cross-link, copy the parse entry onto the analysis path.
	kp := NewKey(KindParse, "src")
	ka := NewKey(KindAnalysis, "src")
	s := New(Config{Dir: dir})
	s.PutBytes(KindParse, kp, []byte("parse-payload"))
	src := filepath.Join(dir, "v1", "parse", kp.String()[:2], kp.String())
	dst := filepath.Join(dir, "v1", "analysis", ka.String()[:2], ka.String())
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := New(Config{Dir: dir})
	if _, ok := fresh.GetBytes(KindAnalysis, ka); ok {
		t.Fatal("cross-linked entry served under the wrong kind/key")
	}
}

// TestEviction fills tiny tiers past their caps: lookups stay correct
// (recompute-on-miss is the contract) and evictions are counted.
func TestEviction(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg, MemEntries: 4, ObjEntries: 4})
	for i := 0; i < 20; i++ {
		k := NewKey(KindParse, fmt.Sprint(i))
		s.PutBytes(KindParse, k, []byte{byte(i)})
		s.Put(KindParse, k, i, nil)
	}
	c := counters(reg)
	if c["artifact.evictions"] == 0 || c["artifact.eviction.resets"] == 0 {
		t.Fatalf("no evictions counted at cap 4 over 20 entries: %v", c)
	}
	// The most recent entry survives the last reset.
	k := NewKey(KindParse, "19")
	if b, ok := s.GetBytes(KindParse, k); !ok || b[0] != 19 {
		t.Fatalf("latest entry lost: %v, %v", b, ok)
	}
}

// TestSingleFlight hammers Do with concurrent callers on a small key space:
// per key, at most one compute may be in flight, and once a key is cached
// (fn consults the store), no further computes run for it.
func TestSingleFlight(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg})
	const keys, callers = 4, 32
	var computes atomic.Int64
	inflight := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ki := c % keys
			k := NewKey(KindAnalysis, fmt.Sprint(ki))
			v, err := s.Do(KindAnalysis, k, func() (any, error) {
				if v, ok := s.Get(KindAnalysis, k, nil); ok {
					return v, nil
				}
				if inflight[ki].Add(1) > 1 {
					t.Errorf("two computes in flight for key %d", ki)
				}
				computes.Add(1)
				v := fmt.Sprintf("value-%d", ki)
				s.Put(KindAnalysis, k, v, nil)
				inflight[ki].Add(-1)
				return v, nil
			})
			if err != nil || v.(string) != fmt.Sprintf("value-%d", ki) {
				t.Errorf("caller %d: got %v, %v", c, v, err)
			}
		}(c)
	}
	wg.Wait()
	// Between 1 (all callers shared one flight) and `callers` computes per
	// key are possible without caching; with fn consulting the store, the
	// only duplicates are flights that raced the very first Put — the
	// in-flight assertion above is the real invariant. Sanity-bound anyway:
	if n := computes.Load(); n < keys || n > callers {
		t.Fatalf("computes = %d, want within [%d, %d]", n, keys, callers)
	}
}

// TestSingleFlightError asserts errors are shared with waiters but never
// cached: a later call retries.
func TestSingleFlightError(t *testing.T) {
	s := New(Config{})
	k := NewKey(KindAnalysis, "bad")
	calls := 0
	fn := func() (any, error) { calls++; return nil, errors.New("boom") }
	if _, err := s.Do(KindAnalysis, k, fn); err == nil {
		t.Fatal("error swallowed")
	}
	if _, err := s.Do(KindAnalysis, k, fn); err == nil {
		t.Fatal("error cached as success")
	}
	if calls != 2 {
		t.Fatalf("sequential failing calls = %d computes, want 2 (errors are not cached)", calls)
	}
}

// TestNilStore pins the nil-is-off convention for every entry point.
func TestNilStore(t *testing.T) {
	var s *Store
	k := NewKey(KindParse, "x")
	if _, ok := s.Get(KindParse, k, nil); ok {
		t.Fatal("nil store hit")
	}
	if _, ok := s.GetBytes(KindParse, k); ok {
		t.Fatal("nil store byte hit")
	}
	s.Put(KindParse, k, 1, nil)
	s.PutBytes(KindParse, k, []byte("x"))
	if s.Dir() != "" {
		t.Fatal("nil store has a dir")
	}
	v, err := s.Do(KindParse, k, func() (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("nil store Do: %v, %v", v, err)
	}
}

// TestUnwritableDir asserts a broken disk tier degrades to memory-only
// behavior: writes are counted as disk errors, reads still work in-process.
func TestUnwritableDir(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	// A regular file where the cache root should be makes every MkdirAll fail.
	if err := os.WriteFile(blocked, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(Config{Dir: blocked, Metrics: reg})
	k := NewKey(KindParse, "x")
	s.PutBytes(KindParse, k, []byte("payload"))
	if counters(reg)["artifact.disk_errors"] == 0 {
		t.Fatalf("disk failure not counted: %v", counters(reg))
	}
	if b, ok := s.GetBytes(KindParse, k); !ok || string(b) != "payload" {
		t.Fatalf("memory tier lost the entry behind a broken disk: %q, %v", b, ok)
	}
}
