package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
)

// Disk tier: one file per artifact under a 256-way sharded layout,
//
//	<dir>/v<FormatVersion>/<kind>/<hex[0:2]>/<hex>
//
// so no single directory accumulates an unbounded entry count and shards of
// the corpus artifact space can be synced, pruned, or distributed
// independently (the map-reduce shard format of DESIGN.md §13).
//
// Every entry is self-validating:
//
//	magic "dcart1\n" | kind | '\n' | key (32 B) | payload len (8 B LE)
//	| payload | sha256(payload) (32 B)
//
// A reader rejects anything that does not check out — wrong magic (a stale
// format), wrong kind or key (a cross-linked or renamed file), wrong length
// (truncation), wrong checksum (corruption) — and treats it as a miss,
// never an error. Writes go through a temp file + rename, so a crashed
// writer leaves either the old entry or no entry, never a torn one.

var diskMagic = []byte("dcart1\n")

// diskPath returns the entry path for a key.
func (s *Store) diskPath(mk mkey) string {
	hex := mk.key.String()
	return filepath.Join(s.cfg.Dir, "v1", string(mk.kind), hex[:2], hex)
}

// diskRead loads and validates one entry; any defect is a miss.
func (s *Store) diskRead(mk mkey) ([]byte, bool) {
	b, err := os.ReadFile(s.diskPath(mk))
	if err != nil {
		// Absent is the normal miss; any other read error means the disk
		// tier is unhealthy for this entry — same answer either way.
		if !os.IsNotExist(err) {
			s.reg.Counter("artifact.disk_errors").Inc()
		}
		return nil, false
	}
	payload, ok := decodeEntry(b, mk)
	if !ok {
		s.reg.Counter("artifact.corrupt").Inc()
		return nil, false
	}
	return payload, true
}

// decodeEntry validates the header, identity, length, and checksum of one
// raw entry and returns its payload.
func decodeEntry(b []byte, mk mkey) ([]byte, bool) {
	if !bytes.HasPrefix(b, diskMagic) {
		return nil, false
	}
	b = b[len(diskMagic):]
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 || string(b[:nl]) != string(mk.kind) {
		return nil, false
	}
	b = b[nl+1:]
	if len(b) < len(mk.key)+8 {
		return nil, false
	}
	if !bytes.Equal(b[:len(mk.key)], mk.key[:]) {
		return nil, false
	}
	b = b[len(mk.key):]
	n := binary.LittleEndian.Uint64(b[:8])
	b = b[8:]
	if uint64(len(b)) != n+sha256.Size {
		return nil, false
	}
	payload, sum := b[:n], b[n:]
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], sum) {
		return nil, false
	}
	return payload, true
}

// encodeEntry renders the on-disk form of one entry.
func encodeEntry(mk mkey, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(payload)))
	out := make([]byte, 0, len(diskMagic)+len(mk.kind)+1+len(mk.key)+8+len(payload)+len(sum))
	out = append(out, diskMagic...)
	out = append(out, mk.kind...)
	out = append(out, '\n')
	out = append(out, mk.key[:]...)
	out = append(out, lenBuf[:]...)
	out = append(out, payload...)
	out = append(out, sum[:]...)
	return out
}

// diskWrite persists one entry atomically; failures are counted and
// swallowed (the memory tier still has the artifact).
func (s *Store) diskWrite(mk mkey, payload []byte) bool {
	path := s.diskPath(mk)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.reg.Counter("artifact.disk_errors").Inc()
		return false
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		s.reg.Counter("artifact.disk_errors").Inc()
		return false
	}
	_, werr := tmp.Write(encodeEntry(mk, payload))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.reg.Counter("artifact.disk_errors").Inc()
		return false
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.reg.Counter("artifact.disk_errors").Inc()
		return false
	}
	return true
}
