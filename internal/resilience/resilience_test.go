package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGuardPassesThrough(t *testing.T) {
	if err := Guard("ok", func() error { return nil }); err != nil {
		t.Fatalf("Guard returned %v, want nil", err)
	}
	sentinel := errors.New("boom")
	if err := Guard("err", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Guard returned %v, want %v", err, sentinel)
	}
}

func TestGuardRecoversPanic(t *testing.T) {
	err := Guard("change 7", func() error {
		panic("index out of range")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Guard returned %T, want *PanicError", err)
	}
	if pe.Task != "change 7" {
		t.Errorf("Task = %q, want %q", pe.Task, "change 7")
	}
	if !strings.Contains(pe.Error(), "index out of range") {
		t.Errorf("Error() = %q, want panic value included", pe.Error())
	}
	if pe.Stack == "" {
		t.Error("PanicError.Stack is empty, want a stack snippet")
	}
	if len(pe.Stack) > maxStackBytes+64 {
		t.Errorf("stack snippet is %d bytes, want <= %d", len(pe.Stack), maxStackBytes+64)
	}
	if Categorize(err) != CatPanic {
		t.Errorf("Categorize = %q, want %q", Categorize(err), CatPanic)
	}
}

func TestGuardRecoversRuntimePanic(t *testing.T) {
	var xs []int
	err := Guard("oob", func() error {
		_ = xs[3]
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Guard returned %T (%v), want *PanicError", err, err)
	}
}

func TestBudgetSteps(t *testing.T) {
	b := NewBudget(10, 0)
	for i := 0; i < 10; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("step %d: unexpected error %v", i, err)
		}
	}
	err := b.Step()
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Step after limit returned %v, want ErrBudgetExhausted", err)
	}
	if !b.Exhausted() {
		t.Error("Exhausted() = false after trip")
	}
	// Sticky: later steps keep failing.
	if err := b.Step(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("sticky Step returned %v", err)
	}
	if Categorize(err) != CatBudget {
		t.Errorf("Categorize = %q, want %q", Categorize(err), CatBudget)
	}
}

func TestBudgetWallClock(t *testing.T) {
	b := NewBudget(0, time.Nanosecond)
	time.Sleep(time.Millisecond)
	var err error
	// The wall clock is only consulted every wallCheckMask+1 steps.
	for i := 0; i <= wallCheckMask+1; i++ {
		if err = b.Step(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("wall-clock budget did not trip: %v", err)
	}
}

func TestBudgetDeadline(t *testing.T) {
	b := NewBudgetDeadline(0, time.Now().Add(-time.Second))
	var err error
	for i := 0; i <= wallCheckMask+1; i++ {
		if err = b.Step(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("expired deadline did not trip: %v", err)
	}
	if NewBudgetDeadline(0, time.Time{}) != nil {
		t.Fatal("NewBudgetDeadline with no limits != nil, want the nil no-op budget")
	}
}

func TestBudgetContextDeadline(t *testing.T) {
	// The context deadline tightens an unlimited wall budget; hitting it
	// reports budget exhaustion, not cancellation, so a timed-out server
	// request maps to 504.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	b := NewBudgetContext(ctx, 0, 0)
	if b == nil {
		t.Fatal("NewBudgetContext with a deadline returned nil")
	}
	var err error
	for i := 0; i <= wallCheckMask+1; i++ {
		if err = b.Step(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("context deadline did not trip as budget exhaustion: %v", err)
	}
	if Categorize(err) != CatBudget {
		t.Errorf("Categorize = %q, want %q", Categorize(err), CatBudget)
	}
}

func TestBudgetContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBudgetContext(ctx, 0, 0)
	if b == nil {
		t.Fatal("NewBudgetContext with a cancelable context returned nil")
	}
	for i := 0; i < 10; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("step before cancel: %v", err)
		}
	}
	cancel()
	var err error
	for i := 0; i <= wallCheckMask+1; i++ {
		if err = b.Step(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled context did not trip: %v", err)
	}
	if Categorize(err) != CatCanceled {
		t.Errorf("Categorize = %q, want %q", Categorize(err), CatCanceled)
	}
	// Sticky like every other exhaustion.
	if err := b.Step(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("sticky Step returned %v", err)
	}
}

func TestBudgetContextNoop(t *testing.T) {
	// Background can never cancel and carries no deadline: with no explicit
	// limits there is nothing to enforce, so the nil no-op budget comes back.
	if b := NewBudgetContext(context.Background(), 0, 0); b != nil {
		t.Fatalf("NewBudgetContext(Background, 0, 0) = %v, want nil", b)
	}
	if b := NewBudgetContext(nil, 0, 0); b != nil {
		t.Fatalf("NewBudgetContext(nil, 0, 0) = %v, want nil", b)
	}
	if b := NewBudgetContext(context.Background(), 5, 0); b == nil {
		t.Fatal("step-limited context budget is nil")
	}
}

func TestNilBudgetNeverExhausts(t *testing.T) {
	var b *Budget
	if b := NewBudget(0, 0); b != nil {
		t.Fatal("NewBudget(0,0) != nil, want the nil no-op budget")
	}
	for i := 0; i < 1000; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("nil budget returned %v", err)
		}
	}
	if b.Exhausted() || b.Used() != 0 || b.Err() != nil {
		t.Error("nil budget reports non-zero state")
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Record(NewEntry(fmt.Sprintf("task-%d", i), PhaseAnalyze, errors.New("x")))
		}(i)
	}
	wg.Wait()
	if l.Len() != 50 {
		t.Fatalf("Len = %d, want 50", l.Len())
	}
	if got := l.ByCategory()[CatIO]; got != 50 {
		t.Fatalf("ByCategory[io] = %d, want 50", got)
	}
	if got := l.ByPhase()[PhaseAnalyze]; got != 50 {
		t.Fatalf("ByPhase[analyze] = %d, want 50", got)
	}
}

func TestLedgerReport(t *testing.T) {
	var nilLedger *Ledger
	if nilLedger.Report() != "" || nilLedger.Len() != 0 {
		t.Error("nil ledger is not empty")
	}
	nilLedger.Record(Entry{}) // must not panic

	l := NewLedger()
	if l.Report() != "" {
		t.Errorf("empty ledger Report = %q, want empty", l.Report())
	}
	l.Record(NewEntry("p1/c3", PhaseAnalyze, &PanicError{Task: "p1/c3", Value: "nil deref"}))
	l.Record(NewEntry("p2", PhaseLoad, fmt.Errorf("read info.txt: %w", errors.New("no such file"))))
	l.Record(NewEntry("p4/c1", PhaseAnalyze, fmt.Errorf("%w after 100 steps", ErrBudgetExhausted)))
	r := l.Report()
	for _, want := range []string{
		"failure summary: 3 task(s) skipped (budget: 1, io: 1, panic: 1)",
		"[analyze/panic] p1/c3",
		"[load/io] p2",
		"[analyze/budget] p4/c1",
	} {
		if !strings.Contains(r, want) {
			t.Errorf("Report missing %q:\n%s", want, r)
		}
	}
}

func TestLedgerEntriesIsACopy(t *testing.T) {
	l := NewLedger()
	l.Record(Entry{Task: "a"})
	es := l.Entries()
	es[0].Task = "mutated"
	if l.Entries()[0].Task != "a" {
		t.Error("Entries() exposed internal storage")
	}
}

func TestInjectFault(t *testing.T) {
	defer ClearFaultInjector()
	if err := InjectFault("anything"); err != nil {
		t.Fatalf("no injector installed, got %v", err)
	}
	SetFaultInjector(func(task string) error {
		switch task {
		case "bad":
			return errors.New("injected io")
		case "kaboom":
			panic("injected panic")
		}
		return nil
	})
	if err := InjectFault("fine"); err != nil {
		t.Fatalf("uninjected task got %v", err)
	}
	if err := Guard("bad", func() error { return nil }); err == nil {
		t.Fatal("injected error not surfaced through Guard")
	}
	err := Guard("kaboom", func() error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic returned %T, want *PanicError", err)
	}
	ClearFaultInjector()
	if err := InjectFault("bad"); err != nil {
		t.Fatalf("cleared injector still fired: %v", err)
	}
}
