package resilience

import "sync/atomic"

// injector holds the installed fault-injection hook. The double pointer
// lets ClearFaultInjector store a typed nil through atomic.Value (which
// rejects inconsistent concrete types and plain nil).
var injector atomic.Value // of *func(task string) error

// SetFaultInjector installs fn as the process-wide fault-injection hook.
// It is test-only: chaos suites install a hook that panics or returns
// budget/I/O errors for selected tasks, then assert the pipeline completes
// with exactly those failures recorded. Production code never calls this.
func SetFaultInjector(fn func(task string) error) {
	injector.Store(&fn)
}

// ClearFaultInjector removes the hook.
func ClearFaultInjector() {
	var fn func(task string) error
	injector.Store(&fn)
}

// InjectFault consults the installed hook at a named fault point (Guard
// calls it with the task name before running the guarded work). Without an
// installed hook it is a single atomic load returning nil. A hook that
// panics simulates a panic inside the task itself; Guard recovers it.
func InjectFault(task string) error {
	p, _ := injector.Load().(*func(task string) error)
	if p == nil || *p == nil {
		return nil
	}
	return (*p)(task)
}
