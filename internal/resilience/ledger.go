package resilience

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Entry is one recorded failure: a task the pipeline skipped instead of
// dying on.
type Entry struct {
	// Task identifies the skipped unit of work (change or project).
	Task string
	// Phase is the pipeline stage that failed.
	Phase Phase
	// Category classifies the failure.
	Category Category
	// Err is the rendered error message.
	Err string
	// Stack holds the trimmed stack snippet for panic failures.
	Stack string
	// Meta carries optional provenance (project, commit, file).
	Meta map[string]string
}

// Categorize maps an error to its ledger category: recovered panics are
// CatPanic, budget exhaustion is CatBudget, context cancellation is
// CatCanceled, and everything else (I/O, malformed inputs) is CatIO.
func Categorize(err error) Category {
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		return CatPanic
	case errors.Is(err, ErrBudgetExhausted):
		return CatBudget
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return CatCanceled
	default:
		return CatIO
	}
}

// NewEntry builds an Entry from an error, filling Category (via Categorize)
// and, for panics, the stack snippet.
func NewEntry(task string, phase Phase, err error) Entry {
	e := Entry{Task: task, Phase: phase, Category: Categorize(err), Err: err.Error()}
	var pe *PanicError
	if errors.As(err, &pe) {
		e.Stack = pe.Stack
	}
	return e
}

// Ledger is a concurrency-safe record of skipped work. A nil *Ledger is
// valid: Record on it drops the entry, queries report emptiness.
type Ledger struct {
	mu      sync.Mutex
	entries []Entry
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Record appends an entry.
func (l *Ledger) Record(e Entry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
}

// Len reports the number of recorded failures.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries returns a copy of the recorded failures in record order.
func (l *Ledger) Entries() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// ByCategory tallies entries per category.
func (l *Ledger) ByCategory() map[Category]int {
	out := map[Category]int{}
	for _, e := range l.Entries() {
		out[e.Category]++
	}
	return out
}

// ByPhase tallies entries per phase.
func (l *Ledger) ByPhase() map[Phase]int {
	out := map[Phase]int{}
	for _, e := range l.Entries() {
		out[e.Phase]++
	}
	return out
}

// Report renders the degraded-mode failure report: a summary line followed
// by one line per skipped task. An empty ledger renders the empty string.
func (l *Ledger) Report() string {
	entries := l.Entries()
	if len(entries) == 0 {
		return ""
	}
	var sb strings.Builder
	cats := l.ByCategory()
	keys := make([]string, 0, len(cats))
	for c := range cats {
		keys = append(keys, string(c))
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s: %d", k, cats[Category(k)]))
	}
	fmt.Fprintf(&sb, "failure summary: %d task(s) skipped (%s)\n",
		len(entries), strings.Join(parts, ", "))
	for _, e := range entries {
		fmt.Fprintf(&sb, "  [%s/%s] %s: %s\n", e.Phase, e.Category, e.Task, e.Err)
	}
	return sb.String()
}
