// Package resilience is the fault-tolerance layer of the mining pipeline.
// The paper's DiffCode mines tens of thousands of commits of arbitrary,
// often non-compilable Java; at that scale individual pathological snippets
// are a certainty, and the pipeline must degrade by skipping and recording
// rather than dying. This package provides the three primitives the rest of
// the pipeline threads through:
//
//   - Guard: per-task panic isolation. A recovered panic becomes a
//     categorized *PanicError carrying a trimmed stack snippet.
//   - Budget: a cooperative step/wall-clock budget checked inside the
//     abstract interpreter's hot loop, so a fork-heavy change is abandoned
//     with ErrBudgetExhausted instead of stalling a worker forever.
//   - Ledger: a concurrency-safe record of every skipped change or project,
//     rendered as a degraded-mode failure report.
//
// InjectFault is a test-only hook used by the chaos test suites to inject
// panics and stalls into live mining runs.
package resilience

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// Phase names the pipeline stage in which a failure occurred.
type Phase string

// Pipeline phases recorded in ledger entries.
const (
	PhaseParse   Phase = "parse"
	PhaseAnalyze Phase = "analyze"
	PhaseExtract Phase = "extract"
	PhaseLoad    Phase = "load"
)

// Category classifies a recorded failure.
type Category string

// Failure categories recorded in ledger entries.
const (
	CatPanic    Category = "panic"
	CatBudget   Category = "budget"
	CatIO       Category = "io"
	CatCanceled Category = "canceled"
)

// maxStackBytes bounds the stack snippet kept in a PanicError so ledgers
// over large runs stay small.
const maxStackBytes = 2048

// PanicError is a panic recovered by Guard, converted into an error.
type PanicError struct {
	// Task identifies the guarded unit of work that panicked.
	Task string
	// Value is the recovered panic value.
	Value any
	// Stack is a trimmed snippet of the panicking goroutine's stack.
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Task, e.Value)
}

// Guard runs fn with panic isolation: a panic inside fn (or inside an
// injected fault) is recovered and returned as a *PanicError naming the
// task. All other errors pass through unchanged.
func Guard(task string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Task: task, Value: r, Stack: stackSnippet()}
		}
	}()
	if err := InjectFault(task); err != nil {
		return err
	}
	return fn()
}

// stackSnippet captures the current stack, dropping the recover plumbing
// frames and truncating to maxStackBytes.
func stackSnippet() string {
	s := string(debug.Stack())
	// Drop the panic/recover machinery at the top: keep from the first frame
	// past debug.Stack and this package's deferred closure.
	if i := strings.Index(s, "panic("); i > 0 {
		if j := strings.IndexByte(s[i:], '\n'); j > 0 {
			// Skip the "panic(...)" line and its file line.
			rest := s[i+j+1:]
			if k := strings.IndexByte(rest, '\n'); k > 0 {
				s = rest[k+1:]
			}
		}
	}
	if len(s) > maxStackBytes {
		s = s[:maxStackBytes] + "\n\t... (stack truncated)"
	}
	return s
}
