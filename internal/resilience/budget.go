package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrBudgetExhausted is returned (wrapped) when an analysis exceeds its
// per-change step or wall-clock budget.
var ErrBudgetExhausted = errors.New("analysis budget exhausted")

// ErrCanceled is returned (wrapped) when an analysis is abandoned because
// the context it runs on behalf of was canceled — a server request whose
// client disconnected, or a batch whose remaining work was called off.
var ErrCanceled = errors.New("analysis canceled")

// wallCheckMask amortizes the time.Now syscall and the cancellation poll:
// the wall clock and the done channel are consulted once every
// wallCheckMask+1 steps.
const wallCheckMask = 0x3ff

// Budget is a cooperative per-task execution budget. The abstract
// interpreter calls Step on every statement and expression it touches; once
// the step or wall-clock limit is exceeded (or the owning context is
// canceled) every subsequent Step returns a sticky error wrapping
// ErrBudgetExhausted (or ErrCanceled).
//
// A Budget belongs to a single task (one mined code change, one server
// request) and is not safe for concurrent use; each worker creates its own.
// A nil *Budget is valid and never exhausts, so the unbudgeted happy path
// costs one nil check.
type Budget struct {
	maxSteps int64
	used     int64
	deadline time.Time
	done     <-chan struct{}
	err      error
}

// NewBudget returns a budget allowing maxSteps interpreter steps and wall
// of elapsed time. A zero (or negative) limit means unlimited; if both are
// unlimited, NewBudget returns nil — the no-op budget.
func NewBudget(maxSteps int64, wall time.Duration) *Budget {
	var deadline time.Time
	if wall > 0 {
		deadline = time.Now().Add(wall)
	}
	return NewBudgetDeadline(maxSteps, deadline)
}

// NewBudgetDeadline is NewBudget with an absolute wall deadline instead of
// a relative duration (a zero deadline means no wall limit). This is the
// shared constructor behind the CLIs' -budget flag and the server's
// per-request deadlines.
func NewBudgetDeadline(maxSteps int64, deadline time.Time) *Budget {
	if maxSteps <= 0 && deadline.IsZero() {
		return nil
	}
	return &Budget{maxSteps: maxSteps, deadline: deadline}
}

// NewBudgetContext builds the budget for work running on behalf of ctx:
// at most maxSteps interpreter steps and wall of elapsed time, tightened by
// ctx's deadline if that is sooner, and aborted early (ErrCanceled) once
// ctx is canceled. This is how per-request timeouts and client disconnects
// propagate into the analysis hot loop without the interpreter knowing
// about contexts. Returns the nil no-op budget only when there is nothing
// to enforce: no limits, no deadline, and a context that can never cancel.
func NewBudgetContext(ctx context.Context, maxSteps int64, wall time.Duration) *Budget {
	var deadline time.Time
	if wall > 0 {
		deadline = time.Now().Add(wall)
	}
	var done <-chan struct{}
	if ctx != nil {
		if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
			deadline = d
		}
		done = ctx.Done()
	}
	if maxSteps <= 0 && deadline.IsZero() && done == nil {
		return nil
	}
	return &Budget{maxSteps: maxSteps, deadline: deadline, done: done}
}

// Step consumes one unit of budget, returning a sticky non-nil error once
// the budget is exhausted or its context canceled.
func (b *Budget) Step() error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.used++
	if b.maxSteps > 0 && b.used > b.maxSteps {
		b.err = fmt.Errorf("%w after %d steps", ErrBudgetExhausted, b.maxSteps)
		return b.err
	}
	if b.used&wallCheckMask == 0 {
		// The deadline is checked before the done channel so a request that
		// ran out of time reports budget exhaustion (a 504 at the server)
		// rather than cancellation, even though a context deadline fires
		// both.
		if !b.deadline.IsZero() && time.Now().After(b.deadline) {
			b.err = fmt.Errorf("%w: wall clock limit hit after %d steps", ErrBudgetExhausted, b.used)
			return b.err
		}
		if b.done != nil {
			select {
			case <-b.done:
				b.err = fmt.Errorf("%w after %d steps", ErrCanceled, b.used)
				return b.err
			default:
			}
		}
	}
	return nil
}

// StepN consumes n units of budget at once — the bulk form Step used when a
// memoized method summary replays a callee's recorded step cost instead of
// re-executing it. The accounting matches n consecutive Step calls: the same
// sticky error once the step limit is crossed, and the same amortized wall
// clock/cancellation poll whenever the bulk charge crosses a poll boundary.
func (b *Budget) StepN(n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	before := b.used
	b.used += n
	if b.maxSteps > 0 && b.used > b.maxSteps {
		b.err = fmt.Errorf("%w after %d steps", ErrBudgetExhausted, b.maxSteps)
		return b.err
	}
	if b.used&^wallCheckMask != before&^wallCheckMask {
		if !b.deadline.IsZero() && time.Now().After(b.deadline) {
			b.err = fmt.Errorf("%w: wall clock limit hit after %d steps", ErrBudgetExhausted, b.used)
			return b.err
		}
		if b.done != nil {
			select {
			case <-b.done:
				b.err = fmt.Errorf("%w after %d steps", ErrCanceled, b.used)
				return b.err
			default:
			}
		}
	}
	return nil
}

// Used reports the steps consumed so far.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used
}

// Exhausted reports whether the budget has tripped.
func (b *Budget) Exhausted() bool {
	return b != nil && b.err != nil
}

// Err returns the sticky exhaustion error, or nil.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	return b.err
}
