package resilience

import (
	"errors"
	"fmt"
	"time"
)

// ErrBudgetExhausted is returned (wrapped) when an analysis exceeds its
// per-change step or wall-clock budget.
var ErrBudgetExhausted = errors.New("analysis budget exhausted")

// wallCheckMask amortizes the time.Now syscall: the wall clock is consulted
// once every wallCheckMask+1 steps.
const wallCheckMask = 0x3ff

// Budget is a cooperative per-task execution budget. The abstract
// interpreter calls Step on every statement and expression it touches; once
// the step or wall-clock limit is exceeded every subsequent Step returns a
// sticky error wrapping ErrBudgetExhausted.
//
// A Budget belongs to a single task (one mined code change) and is not safe
// for concurrent use; each worker creates its own. A nil *Budget is valid
// and never exhausts, so the unbudgeted happy path costs one nil check.
type Budget struct {
	maxSteps int64
	used     int64
	deadline time.Time
	err      error
}

// NewBudget returns a budget allowing maxSteps interpreter steps and wall
// of elapsed time. A zero (or negative) limit means unlimited; if both are
// unlimited, NewBudget returns nil — the no-op budget.
func NewBudget(maxSteps int64, wall time.Duration) *Budget {
	if maxSteps <= 0 && wall <= 0 {
		return nil
	}
	b := &Budget{maxSteps: maxSteps}
	if wall > 0 {
		b.deadline = time.Now().Add(wall)
	}
	return b
}

// Step consumes one unit of budget, returning a sticky non-nil error once
// the budget is exhausted.
func (b *Budget) Step() error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.used++
	if b.maxSteps > 0 && b.used > b.maxSteps {
		b.err = fmt.Errorf("%w after %d steps", ErrBudgetExhausted, b.maxSteps)
		return b.err
	}
	if !b.deadline.IsZero() && b.used&wallCheckMask == 0 && time.Now().After(b.deadline) {
		b.err = fmt.Errorf("%w: wall clock limit hit after %d steps", ErrBudgetExhausted, b.used)
		return b.err
	}
	return nil
}

// Used reports the steps consumed so far.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used
}

// Exhausted reports whether the budget has tripped.
func (b *Budget) Exhausted() bool {
	return b != nil && b.err != nil
}

// Err returns the sticky exhaustion error, or nil.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	return b.err
}
