package parallel

import (
	"fmt"
	"testing"
)

// TestChunksPartition: chunks exactly tile [0, n) in order, with no empty
// or overlapping ranges, for a sweep of (n, k).
func TestChunksPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 16, 100, 101} {
		for _, k := range []int{0, 1, 2, 4, 8, 100, 200} {
			chunks := Chunks(n, k)
			if n == 0 {
				if chunks != nil {
					t.Errorf("Chunks(0, %d) = %v, want nil", k, chunks)
				}
				continue
			}
			lo := 0
			for _, c := range chunks {
				if c.Lo != lo || c.Hi <= c.Lo {
					t.Fatalf("Chunks(%d, %d): bad range %+v at lo=%d", n, k, c, lo)
				}
				lo = c.Hi
			}
			if lo != n {
				t.Errorf("Chunks(%d, %d) covers [0, %d), want [0, %d)", n, k, lo, n)
			}
			wantLen := k
			if k < 1 {
				wantLen = 1
			}
			if k > n {
				wantLen = n
			}
			if len(chunks) != wantLen {
				t.Errorf("Chunks(%d, %d) has %d chunks, want %d", n, k, len(chunks), wantLen)
			}
			// Near-equal: sizes differ by at most one.
			min, max := n, 0
			for _, c := range chunks {
				if c.Len() < min {
					min = c.Len()
				}
				if c.Len() > max {
					max = c.Len()
				}
			}
			if max-min > 1 {
				t.Errorf("Chunks(%d, %d) sizes span [%d, %d], want near-equal", n, k, min, max)
			}
		}
	}
}

// TestTriangleChunksPartitionAndBalance: row ranges tile [0, n), and the
// per-chunk pair counts are balanced (every chunk within 2× of the ideal
// share plus one row's worth of slack — row granularity bounds precision).
func TestTriangleChunksPartitionAndBalance(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 10, 64, 257} {
		for _, k := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("n%d_k%d", n, k), func(t *testing.T) {
				chunks := TriangleChunks(n, k)
				if n == 0 {
					if chunks != nil {
						t.Fatalf("want nil for n=0, got %v", chunks)
					}
					return
				}
				lo := 0
				totalPairs := 0
				for _, c := range chunks {
					if c.Lo != lo || c.Hi <= c.Lo {
						t.Fatalf("bad range %+v at lo=%d", c, lo)
					}
					pairs := 0
					for i := c.Lo; i < c.Hi; i++ {
						pairs += n - 1 - i
					}
					// No chunk may hoard: its share stays within the ideal
					// share plus the largest single row (row granularity).
					ideal := n * (n - 1) / 2 / k
					if pairs > ideal+n {
						t.Errorf("chunk %+v owns %d pairs; ideal share %d (+%d row slack)", c, pairs, ideal, n)
					}
					totalPairs += pairs
					lo = c.Hi
				}
				if lo != n {
					t.Errorf("chunks cover [0, %d), want [0, %d)", lo, n)
				}
				if want := n * (n - 1) / 2; totalPairs != want {
					t.Errorf("chunks own %d pairs total, want %d", totalPairs, want)
				}
			})
		}
	}
}

// TestTriangleChunksDeterministic: the same (n, k) always yields the same
// split — the property the clustering determinism suite leans on.
func TestTriangleChunksDeterministic(t *testing.T) {
	a := TriangleChunks(101, 7)
	b := TriangleChunks(101, 7)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic chunk count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("chunk %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
