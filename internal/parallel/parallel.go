// Package parallel is the execution layer of the mining pipeline: a
// stdlib-only bounded worker pool with cooperative context cancellation,
// deterministic ordered fan-in, and chunked range splitting for 2-D
// (triangular) workloads. The paper's DiffCode mines ~72k code changes and
// clusters their usage changes per class (§5–6); every hot path it feeds —
// per-change analysis, the O(n²) clustering distance matrix, per-project
// rule checking — is embarrassingly parallel, and this package scales them
// across cores while keeping output byte-identical to the serial pipeline.
//
// Determinism contract: tasks are indexed 0..n-1 and results land at their
// index (ordered fan-in), so the observable output of ForEach/Map never
// depends on completion order or worker count. A pool with one worker (or a
// nil *Pool) runs tasks inline on the calling goroutine — the exact serial
// path, with no goroutines spawned and no pool telemetry recorded.
//
// Failure contract: tasks that can panic must guard themselves (the
// pipeline wraps per-change work in resilience.Guard, which converts panics
// into ledger entries). A panic that escapes a task anyway does not crash
// or deadlock the pool: the workers drain, and the first escaped panic
// value is re-raised on the calling goroutine, matching what the serial
// loop would have done.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Pool is a bounded worker pool. The zero value and the nil pool are valid
// and run everything serially; construct with New for real parallelism.
type Pool struct {
	workers int
	reg     *obs.Registry
}

// New returns a pool with the given worker count, recording pool telemetry
// into reg (nil reg disables it). workers < 1 defaults to GOMAXPROCS.
func New(workers int, reg *obs.Registry) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, reg: reg}
}

// Workers returns the pool's worker count (1 for a nil or zero pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Serial reports whether the pool runs tasks inline on the calling
// goroutine (the exact serial path).
func (p *Pool) Serial() bool { return p.Workers() == 1 }

// ForEach runs fn(i) for every i in [0, n), distributing indices across the
// pool's workers. Dispatch order is 0, 1, 2, ... on every worker count.
//
// Cancellation is cooperative: once ctx is done no new index is dispatched,
// but in-flight tasks run to completion (a task that must stop early checks
// its own budget — see resilience.Budget). A nil ctx never cancels.
//
// With one worker the loop runs inline on the calling goroutine with no
// goroutines, channels, or telemetry — byte-identical to a hand-written
// serial loop. With more, per-task latency, per-worker busy time, and queue
// depth are recorded into the pool's registry under pool.*.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.Serial() {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	reg := p.pReg()
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	reg.Gauge("pool.workers").Set(int64(p.Workers()))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[panicValue]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var busy time.Duration
			for {
				if ctx != nil && ctx.Err() != nil {
					break
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				reg.Gauge("pool.queue_depth").Set(int64(n - i - 1))
				busy += p.runTask(fn, i, &panicked)
			}
			if reg != nil {
				reg.Histogram("pool.busy.us").Observe(busy.Microseconds())
			}
		}()
	}
	wg.Wait()
	reg.Gauge("pool.queue_depth").Set(0)
	if pv := panicked.Load(); pv != nil {
		panic(pv.v)
	}
}

// panicValue boxes a recovered panic so an atomic.Pointer can carry it.
type panicValue struct{ v any }

// runTask executes one task, timing it and capturing an escaped panic (the
// first one wins; the rest are dropped so the pool always drains).
func (p *Pool) runTask(fn func(int), i int, panicked *atomic.Pointer[panicValue]) (busy time.Duration) {
	defer func() {
		if r := recover(); r != nil {
			panicked.CompareAndSwap(nil, &panicValue{v: r})
		}
	}()
	reg := p.pReg()
	if reg == nil {
		fn(i)
		return 0
	}
	start := reg.Now()
	defer func() {
		busy = reg.Now().Sub(start)
		reg.Histogram("pool.task.us").Observe(busy.Microseconds())
		reg.Counter("pool.tasks").Inc()
	}()
	fn(i)
	return busy
}

// pReg returns the pool's registry (nil on a nil pool).
func (p *Pool) pReg() *obs.Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// Map runs fn over [0, n) on the pool and returns the results in index
// order — the deterministic ordered fan-in primitive. Slots whose task was
// never dispatched (cancellation) hold the zero value of T.
func Map[T any](p *Pool, ctx context.Context, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(ctx, n, func(i int) { out[i] = fn(i) })
	return out
}

// ForEachCtx is ForEach with trace propagation: when ctx carries a span,
// each task runs under a child span named "<name>[i]" whose sibling ordinal
// is the task index — so the snapshot of the parent orders task spans by
// index, not by completion, and the trace fingerprint is identical at every
// worker count. On an untraced ctx the tasks see ctx unchanged and the only
// extra cost is one nil check, preserving the byte-identical serial path.
func (p *Pool) ForEachCtx(ctx context.Context, name string, n int, fn func(ctx context.Context, i int)) {
	parent := trace.FromContext(ctx)
	if parent == nil {
		p.ForEach(ctx, n, func(i int) { fn(ctx, i) })
		return
	}
	p.ForEach(ctx, n, func(i int) {
		sp := parent.ChildOrd(fmt.Sprintf("%s[%d]", name, i), i)
		defer sp.End()
		fn(trace.NewContext(ctx, sp), i)
	})
}

// MapCtx is Map with the same per-task trace propagation as ForEachCtx.
func MapCtx[T any](p *Pool, ctx context.Context, name string, n int, fn func(ctx context.Context, i int) T) []T {
	out := make([]T, n)
	p.ForEachCtx(ctx, name, n, func(c context.Context, i int) { out[i] = fn(c, i) })
	return out
}
