package parallel

// Range is a half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Chunks splits [0, n) into at most k contiguous ranges of near-equal
// length (the first n%k chunks are one longer). It returns nil for n <= 0
// and never returns empty ranges, so len(result) == min(k, n). The split
// depends only on (n, k): the same inputs always produce the same chunks.
func Chunks(n, k int) []Range {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]Range, 0, k)
	size, rem := n/k, n%k
	lo := 0
	for c := 0; c < k; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// TriangleChunks splits the rows of the strict upper triangle of an n×n
// symmetric matrix into at most k contiguous row ranges of near-equal pair
// count. Row i owns the pairs (i, i+1..n-1) — n-1-i of them — so equal row
// counts would concentrate almost all work in the first chunk; this
// splitter balances by pairs instead, which is what makes row-chunked
// distance-matrix construction scale. Deterministic in (n, k).
func TriangleChunks(n, k int) []Range {
	if n <= 1 {
		if n == 1 {
			return []Range{{Lo: 0, Hi: 1}}
		}
		return nil
	}
	if k < 1 {
		k = 1
	}
	total := n * (n - 1) / 2
	out := make([]Range, 0, k)
	lo, done := 0, 0
	for c := 0; c < k && lo < n; c++ {
		// Aim for an even split of the remaining pairs over the remaining
		// chunks, so rounding error doesn't pile onto the last chunk.
		target := (total - done + (k - c - 1)) / (k - c)
		hi, pairs := lo, 0
		for hi < n && (pairs < target || hi == lo) {
			pairs += n - 1 - hi
			hi++
		}
		// The final chunk sweeps up whatever rows remain.
		if c == k-1 {
			pairs += triPairs(n, hi)
			hi = n
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo, done = hi, done+pairs
	}
	return out
}

// triPairs counts the upper-triangle pairs owned by rows [from, n).
func triPairs(n, from int) int {
	rows := n - from
	if rows <= 0 {
		return 0
	}
	// Row i owns n-1-i pairs; summed over i in [from, n).
	return rows * (n - 1 - from) - rows*(rows-1)/2
}
