package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// TestSerialPathInline: a one-worker pool (and the nil pool) runs every
// task inline, in order, on the calling goroutine.
func TestSerialPathInline(t *testing.T) {
	for _, p := range []*Pool{nil, New(1, nil), {}} {
		var order []int
		p.ForEach(context.Background(), 5, func(i int) { order = append(order, i) })
		if len(order) != 5 {
			t.Fatalf("ran %d tasks, want 5", len(order))
		}
		for i, got := range order {
			if got != i {
				t.Errorf("task %d ran at position %d; serial path must be in order", got, i)
			}
		}
		if !p.Serial() {
			t.Error("pool with one worker must report Serial()")
		}
	}
}

// TestOrderedFanIn: Map returns results at their index even when tasks
// complete wildly out of order (early tasks sleep longest).
func TestOrderedFanIn(t *testing.T) {
	p := New(4, nil)
	const n = 16
	out := Map(p, context.Background(), n, func(i int) int {
		time.Sleep(time.Duration(n-i) * time.Millisecond)
		return i * i
	})
	if len(out) != n {
		t.Fatalf("Map returned %d results, want %d", len(out), n)
	}
	for i, got := range out {
		if got != i*i {
			t.Errorf("slot %d = %d, want %d (fan-in not ordered)", i, got, i*i)
		}
	}
}

// TestCancellationMidQueue: once ctx is cancelled, no new index is
// dispatched. All four workers rendezvous on their first task, the context
// is cancelled while they are parked, and exactly those four tasks run.
func TestCancellationMidQueue(t *testing.T) {
	const workers, n = 4, 100
	ctx, cancel := context.WithCancel(context.Background())
	var ran [n]atomic.Bool
	var barrier sync.WaitGroup
	barrier.Add(workers)
	release := make(chan struct{})
	var once sync.Once
	go func() {
		barrier.Wait() // all workers hold a task
		cancel()
		once.Do(func() { close(release) })
	}()
	New(workers, nil).ForEach(ctx, n, func(i int) {
		ran[i].Store(true)
		barrier.Done()
		<-release
	})
	got := 0
	for i := range ran {
		if ran[i].Load() {
			got++
		}
	}
	if got != workers {
		t.Errorf("%d tasks ran after mid-queue cancel, want exactly %d (the in-flight window)", got, workers)
	}
	for i := workers; i < n; i++ {
		if ran[i].Load() {
			t.Errorf("task %d dispatched after cancellation", i)
		}
	}
}

// TestSerialCancellation: the inline path honors cancellation between
// tasks with the same no-new-dispatch semantics.
func TestSerialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran []int
	New(1, nil).ForEach(ctx, 10, func(i int) {
		ran = append(ran, i)
		if i == 3 {
			cancel()
		}
	})
	if len(ran) != 4 {
		t.Errorf("serial cancel ran %v, want [0 1 2 3]", ran)
	}
}

// TestGuardedPanicReachesLedger: the pipeline's panic-isolation contract
// composes with the pool — a panicking task wrapped in resilience.Guard
// records a ledger entry and the pool completes every other task.
func TestGuardedPanicReachesLedger(t *testing.T) {
	ledger := resilience.NewLedger()
	const n = 20
	var done atomic.Int64
	New(4, nil).ForEach(context.Background(), n, func(i int) {
		err := resilience.Guard("task", func() error {
			if i == 7 {
				panic("worker chaos")
			}
			return nil
		})
		if err != nil {
			ledger.Record(resilience.NewEntry("task", resilience.PhaseAnalyze, err))
			return
		}
		done.Add(1)
	})
	if got := done.Load(); got != n-1 {
		t.Errorf("completed %d tasks, want %d", got, n-1)
	}
	if ledger.Len() != 1 {
		t.Fatalf("ledger has %d entries, want 1:\n%s", ledger.Len(), ledger.Report())
	}
	if e := ledger.Entries()[0]; e.Category != resilience.CatPanic {
		t.Errorf("entry category %q, want panic", e.Category)
	}
}

// TestUnguardedPanicRethrown: a panic that escapes a task does not crash
// the worker goroutine or deadlock the pool — it drains and re-raises the
// panic on the caller, matching serial-loop semantics.
func TestUnguardedPanicRethrown(t *testing.T) {
	var completed atomic.Int64
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("escaped panic was swallowed by the pool")
		}
		if r != "unguarded" {
			t.Errorf("recovered %v, want \"unguarded\"", r)
		}
		if got := completed.Load(); got != 11 {
			t.Errorf("pool completed %d other tasks before re-raising, want 11 (it must drain)", got)
		}
	}()
	New(4, nil).ForEach(context.Background(), 12, func(i int) {
		if i == 2 {
			panic("unguarded")
		}
		completed.Add(1)
	})
}

// TestPoolMetrics: a multi-worker run records pool.* telemetry (task
// latencies, busy time, worker gauge); the serial path records none.
func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	New(3, reg).ForEach(context.Background(), 9, func(i int) {})
	if got := reg.Counter("pool.tasks").Value(); got != 9 {
		t.Errorf("pool.tasks = %d, want 9", got)
	}
	if got := reg.Gauge("pool.workers").Value(); got != 3 {
		t.Errorf("pool.workers = %d, want 3", got)
	}
	if got := reg.Histogram("pool.task.us").Count(); got != 9 {
		t.Errorf("pool.task.us count = %d, want 9", got)
	}
	if got := reg.Histogram("pool.busy.us").Count(); got != 3 {
		t.Errorf("pool.busy.us count = %d, want one observation per worker, 3", got)
	}
	if got := reg.Gauge("pool.queue_depth").Value(); got != 0 {
		t.Errorf("pool.queue_depth = %d at drain, want 0", got)
	}

	serial := obs.NewRegistry()
	New(1, serial).ForEach(context.Background(), 9, func(i int) {})
	if got := serial.Counter("pool.tasks").Value(); got != 0 {
		t.Errorf("serial path recorded %d pool tasks, want 0 (exact serial path)", got)
	}
}

// TestMapZeroAndNegative: degenerate sizes are no-ops.
func TestMapZeroAndNegative(t *testing.T) {
	p := New(4, nil)
	if out := Map(p, context.Background(), 0, func(i int) int { return 1 }); len(out) != 0 {
		t.Errorf("Map over 0 items returned %d results", len(out))
	}
	p.ForEach(context.Background(), -3, func(i int) { t.Error("task ran for negative n") })
}
