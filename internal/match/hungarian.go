// Package match provides a minimum-cost bipartite assignment solver (the
// Hungarian algorithm). DiffCode uses it twice: to pair usage DAGs between
// the old and new program version (paper §3.5) and to match feature paths
// inside the usage-change distance metric (paper §4.3).
package match

import "math"

// Assign solves the square assignment problem for the given cost matrix:
// cost[i][j] is the cost of assigning row i to column j. It returns, for
// each row, the assigned column, minimizing the total cost. The matrix must
// be square and non-empty; callers pad rectangular problems (see Pad).
//
// The implementation is the O(n³) potential-based shortest augmenting path
// variant (Jonker-Volgenant style with dual potentials).
func Assign(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	const inf = math.MaxFloat64
	// 1-based arrays per the classic formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row assigned to column j
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	res := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			res[p[j]-1] = j - 1
		}
	}
	return res
}

// Pad extends a rectangular cost matrix to a square one, filling new cells
// with padCost. It returns the padded matrix and the original dimensions.
func Pad(cost [][]float64, padCost float64) [][]float64 {
	rows := len(cost)
	cols := 0
	for _, r := range cost {
		if len(r) > cols {
			cols = len(r)
		}
	}
	n := rows
	if cols > n {
		n = cols
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i < rows && j < len(cost[i]) {
				out[i][j] = cost[i][j]
			} else {
				out[i][j] = padCost
			}
		}
	}
	return out
}

// TotalCost sums the cost of an assignment.
func TotalCost(cost [][]float64, assign []int) float64 {
	var sum float64
	for i, j := range assign {
		sum += cost[i][j]
	}
	return sum
}

// MinCostSum solves a (possibly rectangular) matching problem with rows×cols
// costs given by cost(i, j), where unmatched rows/columns incur padCost
// each. It returns the minimal total. This is the paper's pathsDist
// primitive (and the DAG-pairing objective with root-only padding).
func MinCostSum(rows, cols int, cost func(i, j int) float64, padCost float64) float64 {
	if rows == 0 {
		return float64(cols) * padCost
	}
	if cols == 0 {
		return float64(rows) * padCost
	}
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = cost(i, j)
		}
	}
	padded := Pad(m, padCost)
	assign := Assign(padded)
	return TotalCost(padded, assign)
}
