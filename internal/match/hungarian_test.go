package match

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAssignIdentity(t *testing.T) {
	cost := [][]float64{
		{0, 1, 1},
		{1, 0, 1},
		{1, 1, 0},
	}
	got := Assign(cost)
	for i, j := range got {
		if i != j {
			t.Errorf("row %d assigned to %d, want identity", i, j)
		}
	}
}

func TestAssignAntiIdentity(t *testing.T) {
	cost := [][]float64{
		{9, 9, 0},
		{9, 0, 9},
		{0, 9, 9},
	}
	got := Assign(cost)
	want := []int{2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assign = %v, want %v", got, want)
		}
	}
}

func TestAssignClassic(t *testing.T) {
	// Known instance: optimal cost is 5 (0→1:2, 1→0:2? compute by brute
	// force below and compare).
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	got := Assign(cost)
	if tc := TotalCost(cost, got); tc != bruteForce(cost) {
		t.Errorf("total = %v, brute force = %v", tc, bruteForce(cost))
	}
}

// bruteForce finds the optimal assignment cost by permutation enumeration.
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.MaxFloat64
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var s float64
			for i, j := range perm {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// Property: Hungarian matches brute force on random matrices up to 6×6.
func TestQuickAssignOptimal(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(100))
			}
		}
		got := Assign(cost)
		// Validity: a permutation.
		seen := make([]bool, n)
		for _, j := range got {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return TotalCost(cost, got) == bruteForce(cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPadRectangular(t *testing.T) {
	cost := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
	}
	p := Pad(cost, 7)
	if len(p) != 3 || len(p[0]) != 3 {
		t.Fatalf("padded dims = %dx%d", len(p), len(p[0]))
	}
	if p[2][0] != 7 || p[2][2] != 7 {
		t.Error("pad cost not applied")
	}
	if p[1][2] != 6 {
		t.Error("original cells changed")
	}
}

func TestMinCostSum(t *testing.T) {
	// 2 rows, 3 cols: best = match row0→col0 (0), row1→col1 (0), one
	// unmatched column at padCost 1 → total 1.
	cost := func(i, j int) float64 {
		if i == j {
			return 0
		}
		return 0.9
	}
	if got := MinCostSum(2, 3, cost, 1); got != 1 {
		t.Errorf("MinCostSum = %v, want 1", got)
	}
	if got := MinCostSum(0, 4, nil, 0.5); got != 2 {
		t.Errorf("empty rows: %v, want 2", got)
	}
	if got := MinCostSum(3, 0, nil, 1); got != 3 {
		t.Errorf("empty cols: %v, want 3", got)
	}
	if got := MinCostSum(0, 0, nil, 1); got != 0 {
		t.Errorf("both empty: %v, want 0", got)
	}
}

func TestMinCostSumPrefersCheapMatch(t *testing.T) {
	// Matching both rows beats leaving one unmatched when pad is expensive.
	cost := func(i, j int) float64 { return 0.2 }
	if got := MinCostSum(2, 2, cost, 1); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("got %v, want 0.4", got)
	}
}

func BenchmarkAssign20(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 20
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64()
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Assign(cost)
	}
}
