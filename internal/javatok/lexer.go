package javatok

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer scans Java source text into tokens. It never fails: unexpected
// characters yield Illegal tokens and scanning continues, which lets the
// parser recover on partial programs.
type Lexer struct {
	src  string
	off  int // current byte offset
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans all of src and returns the token stream, terminated by an
// EOF token.
func Tokenize(src string) []Token {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{Offset: lx.off, Line: lx.line, Col: lx.col} }

// peek returns the rune at the current offset without consuming it.
func (lx *Lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off:])
	return r
}

// peekAt returns the rune n bytes ahead (only valid for ASCII lookahead).
func (lx *Lexer) peekAt(n int) rune {
	if lx.off+n >= len(lx.src) {
		return -1
	}
	return rune(lx.src[lx.off+n])
}

// advance consumes one rune, maintaining line/col bookkeeping.
func (lx *Lexer) advance() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	lx.off += w
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *Lexer) skipSpaceAndComments() {
	for {
		r := lx.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n' || r == '\f':
			lx.advance()
		case r == '/' && lx.peekAt(1) == '/':
			for lx.peek() != '\n' && lx.peek() != -1 {
				lx.advance()
			}
		case r == '/' && lx.peekAt(1) == '*':
			lx.advance()
			lx.advance()
			for {
				c := lx.advance()
				if c == -1 {
					return
				}
				if c == '*' && lx.peek() == '/' {
					lx.advance()
					break
				}
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}

// Next scans and returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	start := lx.pos()
	r := lx.peek()
	switch {
	case r == -1:
		return Token{Kind: EOF, Pos: start}
	case isIdentStart(r):
		return lx.scanIdent(start)
	case unicode.IsDigit(r):
		return lx.scanNumber(start)
	case r == '"':
		return lx.scanString(start)
	case r == '\'':
		return lx.scanChar(start)
	case r == '.' && unicode.IsDigit(lx.peekAt(1)):
		return lx.scanNumber(start)
	}
	return lx.scanOperator(start)
}

func (lx *Lexer) scanIdent(start Pos) Token {
	var sb strings.Builder
	for isIdentPart(lx.peek()) {
		sb.WriteRune(lx.advance())
	}
	text := sb.String()
	kind := Ident
	if keywords[text] {
		kind = Keyword
	}
	return Token{Kind: kind, Text: text, Pos: start}
}

func (lx *Lexer) scanNumber(start Pos) Token {
	var sb strings.Builder
	kind := IntLit
	isHex := false
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		isHex = true
		sb.WriteRune(lx.advance())
		sb.WriteRune(lx.advance())
		for isHexDigit(lx.peek()) || lx.peek() == '_' {
			sb.WriteRune(lx.advance())
		}
	} else if lx.peek() == '0' && (lx.peekAt(1) == 'b' || lx.peekAt(1) == 'B') {
		sb.WriteRune(lx.advance())
		sb.WriteRune(lx.advance())
		for lx.peek() == '0' || lx.peek() == '1' || lx.peek() == '_' {
			sb.WriteRune(lx.advance())
		}
	} else {
		for unicode.IsDigit(lx.peek()) || lx.peek() == '_' {
			sb.WriteRune(lx.advance())
		}
		if lx.peek() == '.' && unicode.IsDigit(lx.peekAt(1)) {
			kind = DoubleLit
			sb.WriteRune(lx.advance())
			for unicode.IsDigit(lx.peek()) || lx.peek() == '_' {
				sb.WriteRune(lx.advance())
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			if unicode.IsDigit(lx.peekAt(1)) ||
				((lx.peekAt(1) == '+' || lx.peekAt(1) == '-') && unicode.IsDigit(lx.peekAt(2))) {
				kind = DoubleLit
				sb.WriteRune(lx.advance())
				if lx.peek() == '+' || lx.peek() == '-' {
					sb.WriteRune(lx.advance())
				}
				for unicode.IsDigit(lx.peek()) {
					sb.WriteRune(lx.advance())
				}
			}
		}
	}
	// Suffixes.
	switch lx.peek() {
	case 'l', 'L':
		if !isHex || kind == IntLit {
			lx.advance()
			kind = LongLit
		}
	case 'f', 'F':
		if !isHex {
			lx.advance()
			kind = FloatLit
		}
	case 'd', 'D':
		if !isHex {
			lx.advance()
			kind = DoubleLit
		}
	}
	text := strings.ReplaceAll(sb.String(), "_", "")
	return Token{Kind: kind, Text: text, Pos: start}
}

func isHexDigit(r rune) bool {
	return unicode.IsDigit(r) || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}

// scanEscape decodes one escape sequence after the backslash has been
// consumed, returning the decoded rune.
func (lx *Lexer) scanEscape() rune {
	c := lx.advance()
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case 'b':
		return '\b'
	case 'f':
		return '\f'
	case '0', '1', '2', '3', '4', '5', '6', '7':
		v := c - '0'
		for i := 0; i < 2 && lx.peek() >= '0' && lx.peek() <= '7'; i++ {
			v = v*8 + (lx.advance() - '0')
		}
		return v
	case 'u':
		for lx.peek() == 'u' {
			lx.advance()
		}
		var v rune
		for i := 0; i < 4 && isHexDigit(lx.peek()); i++ {
			d := lx.advance()
			switch {
			case d >= '0' && d <= '9':
				v = v*16 + (d - '0')
			case d >= 'a' && d <= 'f':
				v = v*16 + (d - 'a' + 10)
			default:
				v = v*16 + (d - 'A' + 10)
			}
		}
		return v
	default:
		return c // \\, \', \", and anything unknown maps to itself
	}
}

func (lx *Lexer) scanString(start Pos) Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		c := lx.peek()
		if c == -1 || c == '\n' {
			return Token{Kind: Illegal, Text: sb.String(), Pos: start}
		}
		lx.advance()
		if c == '"' {
			return Token{Kind: StringLit, Text: sb.String(), Pos: start}
		}
		if c == '\\' {
			sb.WriteRune(lx.scanEscape())
			continue
		}
		sb.WriteRune(c)
	}
}

func (lx *Lexer) scanChar(start Pos) Token {
	lx.advance() // opening quote
	c := lx.peek()
	if c == -1 || c == '\n' {
		return Token{Kind: Illegal, Pos: start}
	}
	lx.advance()
	if c == '\\' {
		c = lx.scanEscape()
	}
	if lx.peek() == '\'' {
		lx.advance()
		return Token{Kind: CharLit, Text: string(c), Pos: start}
	}
	// Unterminated char literal: consume up to the closing quote or EOL.
	for lx.peek() != '\'' && lx.peek() != '\n' && lx.peek() != -1 {
		lx.advance()
	}
	if lx.peek() == '\'' {
		lx.advance()
	}
	return Token{Kind: Illegal, Text: string(c), Pos: start}
}

// opTable maps operator spellings to kinds, tried longest-first.
var opTable = []struct {
	text string
	kind Kind
}{
	{">>>=", UshrEq},
	{">>>", Ushr}, {"<<=", ShlEq}, {">>=", ShrEq}, {"...", Ellipsis},
	{"==", Eq}, {"<=", Le}, {">=", Ge}, {"!=", Ne},
	{"&&", AndAnd}, {"||", OrOr}, {"++", Inc}, {"--", Dec},
	{"+=", PlusEq}, {"-=", MinusEq}, {"*=", StarEq}, {"/=", SlashEq},
	{"&=", AndEq}, {"|=", OrEq}, {"^=", CaretEq}, {"%=", PercentEq},
	{"<<", Shl}, {">>", Shr}, {"->", Arrow}, {"::", ColonCln},
	{"(", LParen}, {")", RParen}, {"{", LBrace}, {"}", RBrace},
	{"[", LBracket}, {"]", RBracket}, {";", Semi}, {",", Comma},
	{".", Dot}, {"@", At}, {"=", Assign}, {">", Gt}, {"<", Lt},
	{"!", Not}, {"~", Tilde}, {"?", Question}, {":", Colon},
	{"+", Plus}, {"-", Minus}, {"*", Star}, {"/", Slash},
	{"&", And}, {"|", Or}, {"^", Caret}, {"%", Percent},
}

func (lx *Lexer) scanOperator(start Pos) Token {
	rest := lx.src[lx.off:]
	for _, op := range opTable {
		if strings.HasPrefix(rest, op.text) {
			for range op.text {
				lx.advance()
			}
			return Token{Kind: op.kind, Text: op.text, Pos: start}
		}
	}
	r := lx.advance()
	return Token{Kind: Illegal, Text: string(r), Pos: start}
}
