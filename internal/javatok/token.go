// Package javatok implements a tokenizer for the subset of Java that the
// DiffCode analyzer consumes. It is position-aware, skips comments and
// whitespace, decodes unicode escapes in identifiers and literals, and is
// tolerant of partial programs: malformed input produces an Illegal token
// rather than aborting the scan.
package javatok

import "fmt"

// Kind classifies a lexical token.
type Kind int

// Token kinds. Operators and separators each have a dedicated kind so the
// parser can switch on them without string comparisons.
const (
	EOF Kind = iota
	Illegal

	Ident
	Keyword

	IntLit    // 123, 0x1F, 0b101, 017, 1_000
	LongLit   // 123L
	FloatLit  // 1.5f
	DoubleLit // 1.5, 1e9
	CharLit   // 'a', '\n'
	StringLit // "abc"

	// Separators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Dot      // .
	Ellipsis // ...
	At       // @
	ColonCln // ::

	// Operators.
	Assign     // =
	Gt         // >
	Lt         // <
	Not        // !
	Tilde      // ~
	Question   // ?
	Colon      // :
	Arrow      // ->
	Eq         // ==
	Le         // <=
	Ge         // >=
	Ne         // !=
	AndAnd     // &&
	OrOr       // ||
	Inc        // ++
	Dec        // --
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	And        // &
	Or         // |
	Caret      // ^
	Percent    // %
	Shl        // <<
	Shr        // >>
	Ushr       // >>>
	PlusEq     // +=
	MinusEq    // -=
	StarEq     // *=
	SlashEq    // /=
	AndEq      // &=
	OrEq       // |=
	CaretEq    // ^=
	PercentEq  // %=
	ShlEq      // <<=
	ShrEq      // >>=
	UshrEq     // >>>=
	numOfKinds // sentinel; keep last
)

var kindNames = map[Kind]string{
	EOF: "EOF", Illegal: "Illegal", Ident: "Ident", Keyword: "Keyword",
	IntLit: "IntLit", LongLit: "LongLit", FloatLit: "FloatLit",
	DoubleLit: "DoubleLit", CharLit: "CharLit", StringLit: "StringLit",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", Dot: ".",
	Ellipsis: "...", At: "@", ColonCln: "::",
	Assign: "=", Gt: ">", Lt: "<", Not: "!", Tilde: "~",
	Question: "?", Colon: ":", Arrow: "->",
	Eq: "==", Le: "<=", Ge: ">=", Ne: "!=", AndAnd: "&&", OrOr: "||",
	Inc: "++", Dec: "--", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	And: "&", Or: "|", Caret: "^", Percent: "%",
	Shl: "<<", Shr: ">>", Ushr: ">>>",
	PlusEq: "+=", MinusEq: "-=", StarEq: "*=", SlashEq: "/=",
	AndEq: "&=", OrEq: "|=", CaretEq: "^=", PercentEq: "%=",
	ShlEq: "<<=", ShrEq: ">>=", UshrEq: ">>>=",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position. Line and Col are 1-based; Offset is a 0-based
// byte offset into the input.
type Pos struct {
	Offset int
	Line   int
	Col    int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token. Text holds the token's source text; for
// string and char literals it is the decoded value (without quotes).
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Keyword, IntLit, LongLit, FloatLit, DoubleLit:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Text)
	case StringLit:
		return fmt.Sprintf("String(%q)", t.Text)
	case CharLit:
		return fmt.Sprintf("Char(%q)", t.Text)
	default:
		return t.Kind.String()
	}
}

// Is reports whether the token is the given keyword.
func (t Token) Is(kw string) bool { return t.Kind == Keyword && t.Text == kw }

// keywords is the Java keyword set (JLS §3.9) plus the three literal words,
// which the lexer also classifies as keywords for simplicity.
var keywords = map[string]bool{
	"abstract": true, "assert": true, "boolean": true, "break": true,
	"byte": true, "case": true, "catch": true, "char": true,
	"class": true, "const": true, "continue": true, "default": true,
	"do": true, "double": true, "else": true, "enum": true,
	"extends": true, "final": true, "finally": true, "float": true,
	"for": true, "goto": true, "if": true, "implements": true,
	"import": true, "instanceof": true, "int": true, "interface": true,
	"long": true, "native": true, "new": true, "package": true,
	"private": true, "protected": true, "public": true, "return": true,
	"short": true, "static": true, "strictfp": true, "super": true,
	"switch": true, "synchronized": true, "this": true, "throw": true,
	"throws": true, "transient": true, "try": true, "void": true,
	"volatile": true, "while": true,
	"true": true, "false": true, "null": true,
}

// IsKeyword reports whether s is a Java keyword (or boolean/null literal).
func IsKeyword(s string) bool { return keywords[s] }
