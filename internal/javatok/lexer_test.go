package javatok

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeSimpleClass(t *testing.T) {
	src := `class A { int x = 42; }`
	toks := Tokenize(src)
	want := []Kind{Keyword, Ident, LBrace, Keyword, Ident, Assign, IntLit, Semi, RBrace, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordVsIdent(t *testing.T) {
	toks := Tokenize("class classy if iffy new newer")
	wantKinds := []Kind{Keyword, Ident, Keyword, Ident, Keyword, Ident, EOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q): kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestStringLiteralEscapes(t *testing.T) {
	cases := []struct{ src, want string }{
		{`"AES/CBC/PKCS5Padding"`, "AES/CBC/PKCS5Padding"},
		{`"a\nb"`, "a\nb"},
		{`"tab\there"`, "tab\there"},
		{`"quote\"inside"`, `quote"inside`},
		{`"back\\slash"`, `back\slash`},
		{`"ABC"`, "ABC"},
		{`"\101"`, "A"}, // octal
		{`""`, ""},
	}
	for _, c := range cases {
		toks := Tokenize(c.src)
		if toks[0].Kind != StringLit {
			t.Errorf("%s: kind = %v, want StringLit", c.src, toks[0].Kind)
			continue
		}
		if toks[0].Text != c.want {
			t.Errorf("%s: text = %q, want %q", c.src, toks[0].Text, c.want)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	toks := Tokenize("\"abc\nint x;")
	if toks[0].Kind != Illegal {
		t.Errorf("unterminated string: kind = %v, want Illegal", toks[0].Kind)
	}
	// Scanning continues after the bad literal.
	var sawInt bool
	for _, tok := range toks {
		if tok.Is("int") {
			sawInt = true
		}
	}
	if !sawInt {
		t.Error("lexer did not recover after unterminated string")
	}
}

func TestCharLiterals(t *testing.T) {
	cases := []struct{ src, want string }{
		{`'a'`, "a"},
		{`'\n'`, "\n"},
		{`'\''`, "'"},
		{`'\\'`, `\`},
		{`'A'`, "A"},
	}
	for _, c := range cases {
		toks := Tokenize(c.src)
		if toks[0].Kind != CharLit || toks[0].Text != c.want {
			t.Errorf("%s: got %v(%q), want CharLit(%q)", c.src, toks[0].Kind, toks[0].Text, c.want)
		}
	}
}

func TestNumberLiterals(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		text string
	}{
		{"0", IntLit, "0"},
		{"42", IntLit, "42"},
		{"1_000_000", IntLit, "1000000"},
		{"0x1F", IntLit, "0x1F"},
		{"0b1010", IntLit, "0b1010"},
		{"123L", LongLit, "123"},
		{"1.5", DoubleLit, "1.5"},
		{"1.5f", FloatLit, "1.5"},
		{"2e10", DoubleLit, "2e10"},
		{"3.14d", DoubleLit, "3.14"},
		{"017", IntLit, "017"},
	}
	for _, c := range cases {
		toks := Tokenize(c.src)
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("%s: got %v(%q), want %v(%q)", c.src, toks[0].Kind, toks[0].Text, c.kind, c.text)
		}
	}
}

func TestOperatorsLongestMatch(t *testing.T) {
	cases := []struct {
		src  string
		want []Kind
	}{
		{">>>=", []Kind{UshrEq, EOF}},
		{">>>", []Kind{Ushr, EOF}},
		{">>", []Kind{Shr, EOF}},
		{">=", []Kind{Ge, EOF}},
		{"->", []Kind{Arrow, EOF}},
		{"::", []Kind{ColonCln, EOF}},
		{"...", []Kind{Ellipsis, EOF}},
		{"a++ + ++b", []Kind{Ident, Inc, Plus, Inc, Ident, EOF}},
		{"x<<=2", []Kind{Ident, ShlEq, IntLit, EOF}},
	}
	for _, c := range cases {
		got := kinds(Tokenize(c.src))
		if len(got) != len(c.want) {
			t.Errorf("%q: got %v, want %v", c.src, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%q token %d: got %v, want %v", c.src, i, got[i], c.want[i])
			}
		}
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment with "string" and 'char'
/* block
   comment */ int /* inline */ x; /** javadoc */
`
	got := kinds(Tokenize(src))
	want := []Kind{Keyword, Ident, Semi, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	toks := Tokenize("int x; /* never closed")
	if toks[len(toks)-1].Kind != EOF {
		t.Fatal("expected EOF termination")
	}
	if len(toks) != 4 { // int x ; EOF
		t.Errorf("got %d tokens: %v", len(toks), toks)
	}
}

func TestPositions(t *testing.T) {
	src := "int x;\n  y = 2;"
	toks := Tokenize(src)
	checks := []struct {
		idx       int
		line, col int
	}{
		{0, 1, 1}, // int
		{1, 1, 5}, // x
		{2, 1, 6}, // ;
		{3, 2, 3}, // y
		{4, 2, 5}, // =
	}
	for _, c := range checks {
		p := toks[c.idx].Pos
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("token %d (%s): pos = %d:%d, want %d:%d",
				c.idx, toks[c.idx], p.Line, p.Col, c.line, c.col)
		}
	}
}

func TestDollarAndUnderscoreIdents(t *testing.T) {
	toks := Tokenize("$var _x a$b x_1")
	for i := 0; i < 4; i++ {
		if toks[i].Kind != Ident {
			t.Errorf("token %d = %v, want Ident", i, toks[i])
		}
	}
}

func TestDotVsDoubleLiteral(t *testing.T) {
	// ".5" is a double; "a.b" is field access.
	toks := Tokenize(".5 a.b")
	if toks[0].Kind != DoubleLit {
		t.Errorf(".5: got %v, want DoubleLit", toks[0].Kind)
	}
	if toks[2].Kind != Dot {
		t.Errorf("a.b dot: got %v, want Dot", toks[2].Kind)
	}
}

func TestIllegalRune(t *testing.T) {
	toks := Tokenize("int x # y")
	var sawIllegal bool
	for _, tok := range toks {
		if tok.Kind == Illegal {
			sawIllegal = true
		}
	}
	if !sawIllegal {
		t.Error("expected an Illegal token for '#'")
	}
	if toks[len(toks)-1].Kind != EOF {
		t.Error("lexer did not reach EOF after illegal rune")
	}
}

// Property: tokenizing always terminates with exactly one EOF, and every
// token's offset is within bounds and non-decreasing.
func TestQuickTokenizeTotal(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		if len(toks) == 0 || toks[len(toks)-1].Kind != EOF {
			return false
		}
		prev := -1
		for _, tok := range toks {
			if tok.Pos.Offset < prev || tok.Pos.Offset > len(s) {
				return false
			}
			prev = tok.Pos.Offset
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: identifiers made of letters survive a tokenize round trip.
func TestQuickIdentRoundTrip(t *testing.T) {
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			w = strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' {
					return r
				}
				return -1
			}, w)
			if w != "" && !IsKeyword(w) {
				clean = append(clean, w)
			}
		}
		toks := Tokenize(strings.Join(clean, " "))
		if len(toks) != len(clean)+1 {
			return false
		}
		for i, w := range clean {
			if toks[i].Kind != Ident || toks[i].Text != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	src := strings.Repeat(`
class AESCipher {
    Cipher enc, dec;
    final String algorithm = "AES/CBC/PKCS5Padding";
    protected void setKeyAndIV(Secret key, String iv) throws Exception {
        byte[] ivBytes = Hex.decodeHex(iv.toCharArray());
        IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
        enc = Cipher.getInstance(algorithm);
        enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
    }
}
`, 20)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(src)
	}
}

func TestKindAndTokenStrings(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: Ident, Text: "x"}, "Ident(x)"},
		{Token{Kind: Keyword, Text: "class"}, "Keyword(class)"},
		{Token{Kind: IntLit, Text: "42"}, "IntLit(42)"},
		{Token{Kind: StringLit, Text: "a\"b"}, `String("a\"b")`},
		{Token{Kind: CharLit, Text: "c"}, `Char("c")`},
		{Token{Kind: LBrace}, "{"},
		{Token{Kind: Ellipsis}, "..."},
		{Token{Kind: UshrEq}, ">>>="},
		{Token{Kind: EOF}, "EOF"},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("Token.String() = %q, want %q", got, c.want)
		}
	}
	if got := Kind(9999).String(); got != "Kind(9999)" {
		t.Errorf("unknown kind = %q", got)
	}
	if got := (Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Errorf("Pos.String() = %q", got)
	}
}

func TestUnicodeEscapesInStrings(t *testing.T) {
	toks := Tokenize("\"\\u0041B\"")
	if toks[0].Kind != StringLit || toks[0].Text != "AB" {
		t.Errorf("unicode escape: %v", toks[0])
	}
	// Multiple u's are legal: \uu0041.
	toks = Tokenize(`"\uu0043"`)
	if toks[0].Text != "C" {
		t.Errorf("multi-u escape: %v", toks[0])
	}
}

func TestIsKeywordTable(t *testing.T) {
	for _, kw := range []string{"class", "if", "true", "null", "instanceof", "strictfp"} {
		if !IsKeyword(kw) {
			t.Errorf("IsKeyword(%q) = false", kw)
		}
	}
	for _, id := range []string{"Class", "classes", "var", ""} {
		if IsKeyword(id) {
			t.Errorf("IsKeyword(%q) = true", id)
		}
	}
}
