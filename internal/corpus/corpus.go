// Package corpus generates the synthetic Java project corpus that stands in
// for the paper's mined GitHub dataset (461 training projects + 58 held-out
// projects, 11.5k code changes). Every commit is a real pair of Java source
// versions: refactorings are genuine semantics-preserving rewrites, security
// fixes genuinely change how the crypto API is configured, and duplicate
// fixes recur across projects — so the downstream pipeline (parse → analyze
// → abstract → diff → filter → cluster) does the same work it would do on
// mined code. Commit-kind frequencies and initial-configuration
// probabilities are calibrated to the marginals of the paper's Figures 6, 7
// and 10 (see DESIGN.md §3 for the substitution argument).
package corpus

import (
	"fmt"
	"math/rand"
)

// Config controls corpus generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Scale multiplies the per-file commit volume; 1.0 approximates the
	// paper's data-set size (tens of thousands of usage changes).
	Scale float64
	// Projects is the number of training projects (paper: 461).
	Projects int
	// ExtraProjects are held-out projects added for the checker evaluation
	// (paper: 58, for 519 total).
	ExtraProjects int
	// ForkFraction is the share of training projects that additionally
	// appear as forks (same history prefix under a new name, possibly with
	// a few extra commits). The paper's selection step de-duplicates such
	// forks (§6.1); mining.Collect does the same. Default 0.04.
	ForkFraction float64
}

// Default returns the paper-scale configuration.
func Default() Config {
	return Config{Seed: 1, Scale: 1.0, Projects: 461, ExtraProjects: 58}
}

// WithScale returns a copy with the given scale (and proportionally fewer
// projects below scale 0.25 so small corpora stay diverse but quick).
func (c Config) WithScale(s float64) Config {
	c.Scale = s
	return c
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Projects <= 0 {
		c.Projects = 461
	}
	if c.ExtraProjects < 0 {
		c.ExtraProjects = 0
	}
	if c.ForkFraction < 0 {
		c.ForkFraction = 0
	}
	if c.ForkFraction == 0 {
		c.ForkFraction = 0.04
	}
	return c
}

// ProjectInfo carries project-level facts consumed by context-sensitive
// rules (R6).
type ProjectInfo struct {
	Android       bool
	MinSDKVersion int
	HasLPRNG      bool
}

// Commit is one code change: the old and new version of one file.
type Commit struct {
	ID      string
	Message string
	File    string
	Old     string
	New     string
	// Kind records the generator's intent (useful for evaluating filter
	// precision; the pipeline itself never reads it).
	Kind CommitKind
}

// Project is a repository with a commit history and a final snapshot.
type Project struct {
	Name     string
	Info     ProjectInfo
	Files    map[string]string // final snapshot: path → content
	Commits  []Commit
	Training bool   // part of the training set (mined for changes)
	ForkOf   string // original project name when this is a fork, "" otherwise
}

// Corpus is the full generated data set.
type Corpus struct {
	Projects []*Project
}

// TrainingProjects returns the projects whose histories are mined.
func (c *Corpus) TrainingProjects() []*Project {
	var out []*Project
	for _, p := range c.Projects {
		if p.Training {
			out = append(out, p)
		}
	}
	return out
}

// CommitCount sums commits across training projects.
func (c *Corpus) CommitCount() int {
	n := 0
	for _, p := range c.TrainingProjects() {
		n += len(p.Commits)
	}
	return n
}

// CommitKind labels the generator's intent for a commit.
type CommitKind int

// Commit kinds.
const (
	KindRefactor  CommitKind = iota // rename identifiers, reorder members
	KindUnrelated                   // touch decoy code only
	KindAdd                         // introduce a new API usage
	KindRemove                      // delete an existing API usage
	KindFix                         // security fix (spec transition)
	KindBug                         // reverse of a fix
)

// String names the kind.
func (k CommitKind) String() string {
	switch k {
	case KindRefactor:
		return "refactor"
	case KindUnrelated:
		return "unrelated"
	case KindAdd:
		return "add"
	case KindRemove:
		return "remove"
	case KindFix:
		return "fix"
	case KindBug:
		return "bug"
	}
	return "?"
}

// Generate builds the corpus for the given configuration.
func Generate(cfg Config) *Corpus {
	cfg = cfg.withDefaults()
	master := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.Projects + cfg.ExtraProjects
	corpus := &Corpus{}
	for i := 0; i < total; i++ {
		seed := master.Int63()
		p := generateProject(i, seed, cfg, i < cfg.Projects)
		corpus.Projects = append(corpus.Projects, p)
	}
	// Forks: a slice of training projects reappears under new names with
	// the same commit-history prefix (GitHub reality the paper's selection
	// step has to undo).
	forkRng := rand.New(rand.NewSource(master.Int63()))
	var forks []*Project
	for _, p := range corpus.TrainingProjects() {
		if len(p.Commits) < 2 || forkRng.Float64() >= cfg.ForkFraction {
			continue
		}
		forks = append(forks, forkProject(forkRng, p, len(corpus.Projects)+len(forks)))
	}
	corpus.Projects = append(corpus.Projects, forks...)
	return corpus
}

// forkProject clones a project under a new name, keeping a prefix of its
// commit history (as a Git fork would).
func forkProject(rng *rand.Rand, orig *Project, idx int) *Project {
	keep := 1 + rng.Intn(len(orig.Commits))
	fork := &Project{
		Name:     fmt.Sprintf("%s-fork-%03d", orig.Name, idx),
		Info:     orig.Info,
		Files:    map[string]string{},
		Training: orig.Training,
		ForkOf:   orig.Name,
	}
	for _, cm := range orig.Commits[:keep] {
		cm.ID = fmt.Sprintf("%s-%04d", fork.Name, len(fork.Commits)+1)
		fork.Commits = append(fork.Commits, cm)
	}
	// Snapshot: original files, with forked files rewound to the kept tip.
	for path, content := range orig.Files {
		fork.Files[path] = content
	}
	for _, cm := range fork.Commits {
		fork.Files[cm.File] = cm.New
	}
	return fork
}

// generateProject builds one project: its files (with initial specs), the
// per-file commit histories, and the final snapshot.
func generateProject(idx int, seed int64, cfg Config, training bool) *Project {
	rng := rand.New(rand.NewSource(seed))
	p := &Project{
		Name:     projectName(rng, idx),
		Files:    map[string]string{},
		Training: training,
	}
	// ~11.4% of projects are Android apps (Figure 10, R6 applicability).
	if rng.Float64() < 0.114 {
		p.Info.Android = true
		p.Info.MinSDKVersion = []int{15, 16, 16, 17, 18, 19, 21, 22, 23, 19}[rng.Intn(10)]
		p.Info.HasLPRNG = rng.Float64() < 0.08
	}

	for _, arch := range projectArchetypes(rng, p.Info.Android) {
		spec := newFileSpec(rng, arch)
		path := spec.Path()
		if _, dup := p.Files[path]; dup {
			continue
		}
		final := generateHistory(rng, p, spec, cfg, training)
		p.Files[path] = final
	}
	if p.Info.Android {
		p.Files["AndroidManifest.xml"] = renderManifest(p.Info.MinSDKVersion)
		if p.Info.HasLPRNG {
			p.Files["src/security/PRNGFixes.java"] = prngFixesStub
		}
	}
	return p
}

// renderManifest emits the AndroidManifest.xml matching the project info,
// so context detection from files agrees with the generator's metadata.
func renderManifest(minSDK int) string {
	return fmt.Sprintf(`<?xml version="1.0" encoding="utf-8"?>
<manifest xmlns:android="http://schemas.android.com/apk/res/android"
    package="com.generated.app">
    <uses-sdk android:minSdkVersion="%d" android:targetSdkVersion="23" />
    <application android:label="Generated" />
</manifest>
`, minSDK)
}

// prngFixesStub is a minimal stand-in for the advisory's PRNGFixes class.
const prngFixesStub = `package security;

public final class PRNGFixes {
    private PRNGFixes() {}

    public static void apply() {
        applyOpenSSLFix();
        installLinuxPRNGSecureRandom();
    }

    private static void applyOpenSSLFix() {
    }

    private static void installLinuxPRNGSecureRandom() {
    }
}
`

// projectArchetypes draws which file archetypes a project contains. The
// inclusion probabilities are calibrated to the per-class applicability
// rates of Figure 10 (e.g. 58.8% of projects use SecureRandom, 40.7% use
// Cipher, 12.3% use PBEKeySpec).
func projectArchetypes(rng *rand.Rand, android bool) []Archetype {
	var out []Archetype
	if rng.Float64() < 0.31 {
		out = append(out, ArchEnc)
	}
	if rng.Float64() < 0.41 {
		out = append(out, ArchDigest)
	}
	if rng.Float64() < 0.26 || android {
		// Android apps in the mined data set invariably touch SecureRandom
		// (token generation); this keeps R6's applicability at the android
		// project fraction, as in Figure 10.
		out = append(out, ArchToken)
	}
	if rng.Float64() < 0.123 {
		out = append(out, ArchPBE)
	}
	if rng.Float64() < 0.14 {
		out = append(out, ArchKey)
	}
	if rng.Float64() < 0.09 {
		out = append(out, ArchMixed)
	}
	if len(out) == 0 {
		// Every selected project uses the crypto API somewhere.
		all := []Archetype{ArchEnc, ArchDigest, ArchToken, ArchKey}
		out = append(out, all[rng.Intn(len(all))])
	}
	return out
}

// commitsPerFile is the expected history length of a file at scale 1.0,
// chosen so that per-class usage-change volumes land near Figure 6.
var commitsPerFile = map[Archetype]float64{
	ArchEnc:    22,
	ArchDigest: 12,
	ArchToken:  24,
	ArchPBE:    14,
	ArchKey:    14,
	ArchMixed:  18,
}

// kind mix per commit: the overwhelming majority of commits touching a
// crypto-using file do not change how the API is used (Figure 6: fsame
// removes >96% of usage changes).
func drawKind(rng *rand.Rand) CommitKind {
	r := rng.Float64()
	switch {
	case r < 0.545:
		return KindRefactor
	case r < 0.938:
		return KindUnrelated
	case r < 0.966:
		return KindAdd
	case r < 0.979:
		return KindRemove
	case r < 0.998:
		return KindFix
	default:
		return KindBug
	}
}

// generateHistory evolves one file through its commit sequence, appending
// the commits to the project, and returns the file's final content.
func generateHistory(rng *rand.Rand, p *Project, spec *FileSpec, cfg Config, training bool) string {
	cur := spec.Render()
	if !training {
		// Held-out projects contribute only their snapshot.
		return cur
	}
	n := int(commitsPerFile[spec.Arch]*cfg.Scale + 0.5)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		kind := drawKind(rng)
		msg, effective := spec.apply(rng, kind)
		kind = effective
		next := spec.Render()
		if next == cur {
			// A degenerate no-text-change commit cannot exist in a VCS;
			// force a decoy touch.
			spec.DecoySeed++
			msg = "Tweak internal constants"
			kind = KindUnrelated
			next = spec.Render()
		}
		p.Commits = append(p.Commits, Commit{
			ID:      fmt.Sprintf("%s-%04d", p.Name, len(p.Commits)+1),
			Message: msg,
			File:    spec.Path(),
			Old:     cur,
			New:     next,
			Kind:    kind,
		})
		cur = next
	}
	return cur
}
