package corpus

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/artifact"
	"repro/internal/obs"
)

// manifestCounters loads dir against a fresh disk-backed store and returns
// the manifest hit/miss counters of that load alone.
func manifestCounters(t *testing.T, dir, cacheDir string) (hits, misses int) {
	t.Helper()
	reg := obs.NewRegistry()
	st := artifact.New(artifact.Config{Dir: cacheDir, Metrics: reg})
	if _, err := Load(dir, WithArtifacts(st)); err != nil {
		t.Fatalf("Load: %v", err)
	}
	s := obs.TakeSnapshot(reg, false)
	return int(s.Counters["artifact.manifest.hits"]), int(s.Counters["artifact.manifest.misses"])
}

// TestManifestDetectsUnchangedProjects pins the incremental-load signal: the
// first load of a corpus misses every project manifest, a reload over the
// same artifact directory hits every one, and mutating a single project's
// snapshot misses exactly that project.
func TestManifestDetectsUnchangedProjects(t *testing.T) {
	dir := t.TempDir()
	cacheDir := t.TempDir()
	c := Generate(Config{Seed: 5, Scale: 0.3, Projects: 6, ExtraProjects: 1})
	if err := Save(c, dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	n := len(c.Projects)

	hits, misses := manifestCounters(t, dir, cacheDir)
	if hits != 0 || misses != n {
		t.Fatalf("first load hits/misses = %d/%d, want 0/%d", hits, misses, n)
	}
	hits, misses = manifestCounters(t, dir, cacheDir)
	if hits != n || misses != 0 {
		t.Errorf("reload hits/misses = %d/%d, want %d/0", hits, misses, n)
	}

	// Mutate one project's snapshot on disk: that project's fingerprint
	// changes, the other n-1 stay warm.
	p := c.Projects[0]
	var victim string
	for path := range p.Files {
		victim = filepath.Join(dir, p.Name, "snapshot", filepath.FromSlash(path))
		break
	}
	if victim == "" {
		t.Fatalf("project %s has no snapshot files to mutate", p.Name)
	}
	if err := os.WriteFile(victim, []byte("class Mutated {}\n"), 0o644); err != nil {
		t.Fatalf("mutating snapshot: %v", err)
	}
	hits, misses = manifestCounters(t, dir, cacheDir)
	if hits != n-1 || misses != 1 {
		t.Errorf("post-mutation hits/misses = %d/%d, want %d/1", hits, misses, n-1)
	}
}

// TestManifestNilStoreIsNoOp guards the default path: Load without
// WithArtifacts behaves exactly as before the manifest existed.
func TestManifestNilStoreIsNoOp(t *testing.T) {
	dir := t.TempDir()
	c := Generate(Config{Seed: 5, Scale: 0.3, Projects: 2, ExtraProjects: 0})
	if err := Save(c, dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got.Projects) != len(c.Projects) {
		t.Fatalf("loaded %d projects, want %d", len(got.Projects), len(c.Projects))
	}
}
