package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Archetype classifies the crypto workload of a generated file. Each
// archetype exercises a characteristic subset of the six target classes,
// chosen so that per-class usage volumes and co-occurrence reflect the
// paper's dataset (SecureRandom everywhere, Cipher together with
// SecretKeySpec and IvParameterSpec, PBEKeySpec rare).
type Archetype int

// File archetypes.
const (
	ArchEnc    Archetype = iota // symmetric encryption helper
	ArchDigest                  // hashing utility
	ArchToken                   // token/nonce generation
	ArchPBE                     // password-based key derivation
	ArchKey                     // key registry
	ArchMixed                   // cipher + digest + random in one class
)

// String names the archetype.
func (a Archetype) String() string {
	return [...]string{"enc", "digest", "token", "pbe", "key", "mixed"}[a]
}

// FileSpec is the semantic configuration of one generated file. Rendering
// is a pure function of the spec, so commits are spec transitions: a
// refactor bumps NameSeed, an unrelated change bumps DecoySeed, and
// security fixes/bugs flip the crypto flags.
type FileSpec struct {
	Arch      Archetype
	Package   string
	ClassName string
	NameSeed  int64
	DecoySeed int64

	// Cipher configuration.
	Transform      string // "AES", "AES/CBC/PKCS5Padding", "DES", ...
	Provider       string // "" (default provider) or "BC"
	TwoCiphers     bool
	UseIV          bool
	IVConst        bool
	KeyConst       bool
	RSAKeyExchange bool
	HasMac         bool

	// Digest configuration.
	DigestAlg  string
	TwoDigests bool

	// SecureRandom configuration. RandomAlg: "" = plain constructor,
	// "STRONG" = getInstanceStrong(), otherwise getInstance(RandomAlg).
	RandomAlg   string
	CtorSeed    bool // new SecureRandom(constantBytes)
	SeedConst   bool // setSeed(constant)
	ExtraRandom bool

	// PBE configuration.
	PBEIter   int
	SaltConst bool
	TwoKeys   bool
}

// Path returns the stable repository path of the file.
func (s *FileSpec) Path() string {
	return "src/" + strings.ReplaceAll(s.Package, ".", "/") + "/" + s.ClassName + ".java"
}

// newFileSpec draws an initial configuration. The "insecure" probabilities
// approximate the matching rates of Figure 10 (most projects don't pick
// SHA1PRNG or BouncyCastle; about a third of cipher users sit in ECB; weak
// digests abound; hard-coded IVs/keys/salts are a small but real fraction).
func newFileSpec(rng *rand.Rand, arch Archetype) *FileSpec {
	s := &FileSpec{
		Arch:      arch,
		Package:   pkgName(rng),
		ClassName: className(rng, arch),
		NameSeed:  rng.Int63(),
		DecoySeed: rng.Int63n(1 << 30),
	}
	pickCipher := func() {
		r := rng.Float64()
		switch {
		case r < 0.17:
			s.Transform = "AES" // implicit ECB
		case r < 0.27:
			s.Transform = "AES/ECB/PKCS5Padding"
		case r < 0.37:
			s.Transform = "DES/CBC/PKCS5Padding"
			if rng.Float64() < 0.4 {
				s.Transform = "DES"
			}
		case r < 0.80:
			s.Transform = "AES/CBC/PKCS5Padding"
		default:
			s.Transform = "AES/GCM/NoPadding"
		}
		pr := rng.Float64()
		if pr < 0.025 {
			s.Provider = "BC"
		} else if pr < 0.065 {
			s.Provider = "SunJCE"
		}
		mode := s.Transform
		s.UseIV = strings.Contains(mode, "CBC") || strings.Contains(mode, "GCM")
		s.IVConst = s.UseIV && rng.Float64() < 0.10
		s.KeyConst = rng.Float64() < 0.055
	}
	switch arch {
	case ArchEnc:
		pickCipher()
		s.TwoCiphers = rng.Float64() < 0.45
		s.RSAKeyExchange = rng.Float64() < 0.045
		s.HasMac = s.RSAKeyExchange && rng.Float64() < 0.5
	case ArchDigest:
		r := rng.Float64()
		switch {
		case r < 0.20:
			s.DigestAlg = "MD5"
		case r < 0.37:
			s.DigestAlg = "SHA-1"
		case r < 0.42:
			s.DigestAlg = "SHA1"
		default:
			s.DigestAlg = "SHA-256"
		}
		s.TwoDigests = rng.Float64() < 0.3
	case ArchToken:
		r := rng.Float64()
		switch {
		case r < 0.055:
			s.RandomAlg = "SHA1PRNG"
		case r < 0.075:
			s.RandomAlg = "NativePRNG"
		case r < 0.095:
			s.RandomAlg = "STRONG"
		default:
			s.RandomAlg = ""
		}
		s.CtorSeed = s.RandomAlg == "" && rng.Float64() < 0.01
		s.SeedConst = !s.CtorSeed && rng.Float64() < 0.004
		s.ExtraRandom = rng.Float64() < 0.45
	case ArchPBE:
		r := rng.Float64()
		switch {
		case r < 0.16:
			s.PBEIter = 100
		case r < 0.25:
			s.PBEIter = [3]int{1, 20, 500}[rng.Intn(3)]
		default:
			s.PBEIter = [4]int{1000, 4096, 10000, 65536}[rng.Intn(4)]
		}
		s.SaltConst = rng.Float64() < 0.25
	case ArchKey:
		s.KeyConst = rng.Float64() < 0.05
		s.TwoKeys = rng.Float64() < 0.4
	case ArchMixed:
		pickCipher()
		s.DigestAlg = "SHA-256"
		if rng.Float64() < 0.3 {
			s.DigestAlg = "MD5"
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// Commit-kind application (spec transitions)
// ---------------------------------------------------------------------------

// apply mutates the spec according to the commit kind and returns a commit
// message plus the kind that was actually applied: kinds that are
// inapplicable to the current spec (e.g. a fix on an already-secure file)
// degrade to a refactor/unrelated change so the history never stalls, and
// the returned kind reflects that.
func (s *FileSpec) apply(rng *rand.Rand, kind CommitKind) (string, CommitKind) {
	switch kind {
	case KindRefactor:
		s.NameSeed++
		return pick(rng, []string{
			"Rename internals for clarity",
			"Clean up method naming",
			"Refactor: no functional change",
			"Polish identifier names",
		}), KindRefactor
	case KindUnrelated:
		s.DecoySeed++
		return pick(rng, []string{
			"Bump buffer size",
			"Update description strings",
			"Adjust helper constants",
			"Minor housekeeping",
		}), KindUnrelated
	case KindAdd:
		if msg, ok := s.applyGrow(rng); ok {
			return msg, KindAdd
		}
		s.NameSeed++
		return "Simplify helper structure", KindRefactor
	case KindRemove:
		if msg, ok := s.applyShrink(); ok {
			return msg, KindRemove
		}
		s.DecoySeed++
		return "Drop unused constant", KindUnrelated
	case KindFix:
		if msg, ok := s.applyFix(rng); ok {
			return msg, KindFix
		}
		s.NameSeed++
		return "Tidy up crypto helper", KindRefactor
	case KindBug:
		if msg, ok := s.applyBug(rng); ok {
			return msg, KindBug
		}
		s.DecoySeed++
		return "Rework constants", KindUnrelated
	}
	return "", kind
}

func (s *FileSpec) applyGrow(rng *rand.Rand) (string, bool) {
	switch s.Arch {
	case ArchEnc, ArchMixed:
		if !s.TwoCiphers {
			s.TwoCiphers = true
			return "Add decryption support", true
		}
		if !s.HasMac && rng.Float64() < 0.5 {
			s.HasMac = true
			return "Add HMAC authentication", true
		}
	case ArchDigest:
		if !s.TwoDigests {
			s.TwoDigests = true
			return "Add secondary checksum digest", true
		}
	case ArchToken:
		if !s.ExtraRandom {
			s.ExtraRandom = true
			return "Add session nonce generator", true
		}
	case ArchKey:
		if !s.TwoKeys {
			s.TwoKeys = true
			return "Add MAC key slot", true
		}
	}
	return "", false
}

func (s *FileSpec) applyShrink() (string, bool) {
	switch s.Arch {
	case ArchEnc, ArchMixed:
		if s.HasMac && !s.RSAKeyExchange {
			s.HasMac = false
			return "Remove unused MAC path", true
		}
		if s.TwoCiphers {
			s.TwoCiphers = false
			return "Remove legacy decryption path", true
		}
	case ArchDigest:
		if s.TwoDigests {
			s.TwoDigests = false
			return "Remove redundant checksum digest", true
		}
	case ArchToken:
		if s.ExtraRandom {
			s.ExtraRandom = false
			return "Drop session nonce generator", true
		}
	case ArchKey:
		if s.TwoKeys {
			s.TwoKeys = false
			return "Remove MAC key slot", true
		}
	}
	return "", false
}

// applyFix applies one applicable security fix, mirroring the fix families
// the paper mined from GitHub (Figure 8 and §6.3).
func (s *FileSpec) applyFix(rng *rand.Rand) (string, bool) {
	type fix struct {
		ok  bool
		msg string
		do  func()
	}
	ecb := strings.HasPrefix(s.Transform, "AES") &&
		(!strings.Contains(s.Transform, "/") || strings.Contains(s.Transform, "/ECB"))
	des := strings.HasPrefix(s.Transform, "DES") && !strings.HasPrefix(s.Transform, "DESede")
	cbcVariants := []string{"AES/CBC/PKCS5Padding", "AES/CBC/PKCS7Padding", "AES/CBC/ISO10126Padding"}
	fixes := []fix{
		{ecb && rng.Float64() < 0.5, "Use CBC mode instead of ECB", func() {
			s.Transform = cbcVariants[rng.Intn(len(cbcVariants))]
			s.UseIV = true
		}},
		{ecb, "Switch AES to authenticated GCM mode", func() {
			s.Transform = "AES/GCM/NoPadding"
			s.UseIV = true
		}},
		{des, "Replace broken DES with AES", func() {
			s.Transform = cbcVariants[rng.Intn(len(cbcVariants))]
			s.UseIV = true
		}},
		{s.IVConst, "Use a random IV per message", func() { s.IVConst = false }},
		{s.KeyConst, "Stop hard-coding the secret key", func() { s.KeyConst = false }},
		{(s.Arch == ArchEnc || s.Arch == ArchMixed) && s.Provider == "" &&
			s.Transform != "" && rng.Float64() < 0.18,
			"Use the BouncyCastle provider", func() { s.Provider = "BC" }},
		{s.RSAKeyExchange && !s.HasMac, "Add integrity check after key exchange",
			func() { s.HasMac = true }},
		{WeakDigest(s.DigestAlg), "Upgrade hash to SHA-256", func() { s.DigestAlg = "SHA-256" }},
		// Pinning an algorithm replaces the constructor expression; a seeded
		// constructor is a different defect with its own fix below.
		{s.RandomAlg == "" && !s.CtorSeed && s.Arch == ArchToken && rng.Float64() < 0.35,
			"Pin SecureRandom to SHA1PRNG", func() { s.RandomAlg = "SHA1PRNG" }},
		{s.RandomAlg == "NativePRNG", "Use SHA1PRNG for portability",
			func() { s.RandomAlg = "SHA1PRNG" }},
		{s.RandomAlg == "STRONG", "Avoid blocking getInstanceStrong",
			func() { s.RandomAlg = "" }},
		{s.CtorSeed, "Let SecureRandom self-seed", func() { s.CtorSeed = false }},
		{s.SeedConst, "Remove static PRNG seed", func() { s.SeedConst = false }},
		{s.PBEIter > 0 && s.PBEIter < 1000, "Raise PBE iteration count", func() { s.PBEIter = 10000 }},
		{s.SaltConst, "Randomize the PBE salt", func() { s.SaltConst = false }},
	}
	var applicable []fix
	for _, f := range fixes {
		if f.ok {
			applicable = append(applicable, f)
		}
	}
	if len(applicable) == 0 {
		return "", false
	}
	chosen := applicable[rng.Intn(len(applicable))]
	chosen.do()
	return chosen.msg, true
}

// applyBug introduces a vulnerability (the rare reverse direction; the
// paper found fixes outnumber buggy changes by more than 4:1).
func (s *FileSpec) applyBug(rng *rand.Rand) (string, bool) {
	type bug struct {
		ok  bool
		msg string
		do  func()
	}
	bugs := []bug{
		{s.Arch == ArchEnc && strings.Contains(s.Transform, "CBC") && rng.Float64() < 0.3,
			"Simplify cipher setup", func() {
				s.Transform = "AES"
				s.UseIV = false
				s.IVConst = false
			}},
		{s.DigestAlg == "SHA-256" && rng.Float64() < 0.35,
			"Use faster MD5 hash", func() { s.DigestAlg = "MD5" }},
		{s.Arch == ArchToken && !s.SeedConst && !s.CtorSeed && rng.Float64() < 0.25,
			"Seed PRNG for reproducible tests", func() { s.SeedConst = true }},
		{s.PBEIter >= 1000 && rng.Float64() < 0.35, "Speed up key derivation", func() { s.PBEIter = 100 }},
		{s.Arch == ArchPBE && !s.SaltConst && rng.Float64() < 0.35, "Inline fixed salt", func() { s.SaltConst = true }},
		{(s.Arch == ArchEnc || s.Arch == ArchKey) && !s.KeyConst && rng.Float64() < 0.25,
			"Embed default key for tests", func() { s.KeyConst = true }},
		{s.UseIV && !s.IVConst && rng.Float64() < 0.25,
			"Use fixed IV to simplify protocol", func() { s.IVConst = true }},
	}
	var applicable []bug
	for _, b := range bugs {
		if b.ok {
			applicable = append(applicable, b)
		}
	}
	if len(applicable) == 0 {
		return "", false
	}
	chosen := applicable[rng.Intn(len(applicable))]
	chosen.do()
	return chosen.msg, true
}

// WeakDigest reports whether the digest algorithm has known collisions.
func WeakDigest(alg string) bool {
	switch strings.ToUpper(alg) {
	case "MD2", "MD4", "MD5", "SHA1", "SHA-1", "SHA":
		return true
	}
	return false
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func fmtInt(i int) string { return fmt.Sprintf("%d", i) }
