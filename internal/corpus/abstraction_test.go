package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/cryptoapi"
	"repro/internal/usage"
)

// abstractionFingerprint canonically renders all target-class usage DAGs of
// a source file.
func abstractionFingerprint(src string) string {
	res := analysis.AnalyzeSource(src, analysis.Options{})
	var lines []string
	for _, class := range cryptoapi.TargetClasses {
		for _, g := range usage.BuildAll(res, class, usage.DefaultDepth) {
			var paths []string
			for _, p := range g.Paths() {
				paths = append(paths, p.String())
			}
			sort.Strings(paths)
			lines = append(lines, class+"{"+strings.Join(paths, ";")+"}")
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestQuickRenameInvariance is the central promise of the paper's
// abstraction, checked property-style: for ANY generated file spec, a
// refactor (different identifier names) and an unrelated change (different
// decoy content) must leave the crypto abstraction bit-for-bit identical.
func TestQuickRenameInvariance(t *testing.T) {
	f := func(seed int64, archRaw uint8, bump uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		arch := Archetype(int(archRaw) % 6)
		spec := newFileSpec(rng, arch)
		base := abstractionFingerprint(spec.Render())

		renamed := *spec
		renamed.NameSeed += int64(bump%7) + 1
		if got := abstractionFingerprint(renamed.Render()); got != base {
			t.Logf("rename changed abstraction for %s spec (seed %d):\n%s\nvs\n%s",
				arch, seed, base, got)
			return false
		}
		retooled := *spec
		retooled.DecoySeed += int64(bump%5) + 1
		if got := abstractionFingerprint(retooled.Render()); got != base {
			t.Logf("decoy change altered abstraction for %s spec (seed %d)", arch, seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickFixChangesAbstraction: dually, every applicable security fix
// must change the abstraction of at least one target class (otherwise the
// pipeline could never see it).
func TestQuickFixChangesAbstraction(t *testing.T) {
	f := func(seed int64, archRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		arch := Archetype(int(archRaw) % 6)
		spec := newFileSpec(rng, arch)
		before := abstractionFingerprint(spec.Render())
		msg, ok := spec.applyFix(rng)
		if !ok {
			return true // nothing to fix on this spec
		}
		after := abstractionFingerprint(spec.Render())
		if before == after {
			// Purely additive fixes (provider-from-default, add-Mac) change
			// the Cipher DAG too, except the Mac-only R13 fix whose class
			// is not a clustering target.
			if strings.Contains(msg, "integrity check") {
				return true
			}
			t.Logf("fix %q left the abstraction unchanged (seed %d, arch %s)",
				msg, seed, arch)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestRenderGolden spot-checks one deterministic render per archetype so
// template drift is visible in reviews.
func TestRenderStable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for arch := ArchEnc; arch <= ArchMixed; arch++ {
		spec := newFileSpec(rng, arch)
		a, b := spec.Render(), spec.Render()
		if a != b {
			t.Errorf("%s: Render is not a pure function of the spec", arch)
		}
		if !strings.Contains(a, "package "+spec.Package+";") {
			t.Errorf("%s: package header missing", arch)
		}
		if !strings.Contains(a, "class "+spec.ClassName) {
			t.Errorf("%s: class name missing", arch)
		}
	}
}

// TestArchetypeClassCoverage: each archetype must exercise its signature
// target classes.
func TestArchetypeClassCoverage(t *testing.T) {
	wants := map[Archetype][]string{
		ArchEnc:    {cryptoapi.Cipher, cryptoapi.SecretKeySpec},
		ArchDigest: {cryptoapi.MessageDigest},
		ArchToken:  {cryptoapi.SecureRandom},
		ArchPBE:    {cryptoapi.PBEKeySpec, cryptoapi.SecretKeySpec},
		ArchKey:    {cryptoapi.SecretKeySpec},
		ArchMixed:  {cryptoapi.Cipher, cryptoapi.MessageDigest, cryptoapi.SecureRandom},
	}
	rng := rand.New(rand.NewSource(4))
	for arch, classes := range wants {
		spec := newFileSpec(rng, arch)
		res := analysis.AnalyzeSource(spec.Render(), analysis.Options{})
		for _, class := range classes {
			if len(res.ObjsOfType(class)) == 0 {
				t.Errorf("%s: no %s objects in rendered file\n%s",
					arch, class, spec.Render())
			}
		}
	}
	_ = fmt.Sprint() // keep fmt import if assertions change
}
