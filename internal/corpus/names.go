package corpus

import (
	"fmt"
	"math/rand"
)

var pkgFirst = []string{
	"io", "com", "org", "net", "dev",
}

var pkgMid = []string{
	"acmesoft", "bluefin", "cryptoworks", "datakit", "everpay", "fastlane",
	"gridbase", "hexagon", "ironclad", "jetstream", "keystone", "lumina",
	"meshworks", "nimbus", "orbital", "polaris", "quantum", "redwood",
	"starling", "tidewater", "umbra", "vertex", "willow", "zephyr",
}

var pkgLast = []string{
	"security", "crypto", "auth", "core", "util", "keys", "vault",
}

func pkgName(rng *rand.Rand) string {
	return pick(rng, pkgFirst) + "." + pick(rng, pkgMid) + "." + pick(rng, pkgLast)
}

func projectName(rng *rand.Rand, idx int) string {
	return fmt.Sprintf("%s-%s-%03d", pick(rng, pkgMid), pick(rng, pkgLast), idx)
}

var classFirst = map[Archetype][]string{
	ArchEnc:    {"Aes", "Secure", "Crypto", "Payload", "Stream", "Message", "File"},
	ArchDigest: {"Password", "Checksum", "Content", "Integrity", "File", "Block"},
	ArchToken:  {"Token", "Session", "Nonce", "Otp", "Csrf", "ApiKey"},
	ArchPBE:    {"Password", "Passphrase", "Credential", "Login"},
	ArchKey:    {"Key", "Secret", "Credential", "Master"},
	ArchMixed:  {"Crypto", "Security", "Envelope", "Packet"},
}

var classSecond = map[Archetype][]string{
	ArchEnc:    {"Cipher", "Encryptor", "Codec", "Protector", "Sealer"},
	ArchDigest: {"Hasher", "Digester", "Fingerprint", "Verifier"},
	ArchToken:  {"Issuer", "Generator", "Factory", "Minter"},
	ArchPBE:    {"KeyDeriver", "Stretcher", "Kdf", "Hardener"},
	ArchKey:    {"Registry", "Store", "Loader", "Keeper"},
	ArchMixed:  {"Suite", "Toolkit", "Engine", "Facade"},
}

func className(rng *rand.Rand, arch Archetype) string {
	return pick(rng, classFirst[arch]) + pick(rng, classSecond[arch])
}

// identSet hands out distinct identifiers for one render, drawn
// deterministically from NameSeed.
type identSet struct {
	rng  *rand.Rand
	used map[string]bool
}

func newIdentSet(seed int64) *identSet {
	return &identSet{rng: rand.New(rand.NewSource(seed)), used: map[string]bool{}}
}

// pick returns an unused name from the pool, suffixing on exhaustion.
func (s *identSet) pick(pool []string) string {
	for attempt := 0; attempt < 8; attempt++ {
		n := pool[s.rng.Intn(len(pool))]
		if !s.used[n] {
			s.used[n] = true
			return n
		}
	}
	base := pool[s.rng.Intn(len(pool))]
	for i := 2; ; i++ {
		n := fmt.Sprintf("%s%d", base, i)
		if !s.used[n] {
			s.used[n] = true
			return n
		}
	}
}

var varCipher = []string{"enc", "cipher", "engine", "sealer", "box", "crypt", "worker"}
var varCipher2 = []string{"dec", "reverse", "opener", "unsealer", "decoder"}
var varKey = []string{"keySpec", "secretKey", "aesKey", "dataKey", "sessionKey"}
var varIV = []string{"ivSpec", "vector", "ivParam", "nonceSpec"}
var varBytes = []string{"raw", "material", "buf", "bytes", "payload", "blob"}
var varRandom = []string{"rnd", "random", "rng", "prng", "entropy"}
var varDigest = []string{"md", "digest", "hasher", "summer"}
var varMac = []string{"mac", "authTag", "hmac", "sealTag"}
var varMisc = []string{"tmp", "out", "holder", "scratch", "work"}

var methodInit = []string{"setup", "configure", "initialize", "prepare", "install"}
var methodWork = []string{"protect", "process", "transform", "run", "execute", "apply"}
var methodAux = []string{"refresh", "rotate", "renew", "derive", "compute"}
