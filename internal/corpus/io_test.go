package corpus

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/resilience"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c := Generate(Config{Seed: 9, Scale: 0.05, Projects: 6, ExtraProjects: 2})
	dir := t.TempDir()
	if err := Save(c, dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got.Projects) != len(c.Projects) {
		t.Fatalf("projects = %d, want %d", len(got.Projects), len(c.Projects))
	}
	// Index originals by name (Load sorts alphabetically).
	orig := map[string]*Project{}
	for _, p := range c.Projects {
		orig[p.Name] = p
	}
	for _, p := range got.Projects {
		o, ok := orig[p.Name]
		if !ok {
			t.Fatalf("unknown project %s", p.Name)
		}
		if p.Training != o.Training || p.Info != o.Info {
			t.Errorf("%s: metadata mismatch: %+v vs %+v", p.Name, p.Info, o.Info)
		}
		if len(p.Files) != len(o.Files) {
			t.Errorf("%s: files = %d, want %d", p.Name, len(p.Files), len(o.Files))
		}
		for path, content := range o.Files {
			if p.Files[path] != content {
				t.Errorf("%s: snapshot %s differs", p.Name, path)
			}
		}
		if len(p.Commits) != len(o.Commits) {
			t.Fatalf("%s: commits = %d, want %d", p.Name, len(p.Commits), len(o.Commits))
		}
		for i := range o.Commits {
			a, b := p.Commits[i], o.Commits[i]
			if a.ID != b.ID || a.File != b.File || a.Kind != b.Kind ||
				a.Message != b.Message || a.Old != b.Old || a.New != b.New {
				t.Errorf("%s commit %d differs: %q vs %q", p.Name, i, a.ID, b.ID)
			}
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("expected error for missing directory")
	}
}

// corruptOneProject saves a small corpus and deletes one project's
// info.txt, returning the corpus, the directory, and the corrupt name.
func corruptOneProject(t *testing.T) (*Corpus, string, string) {
	t.Helper()
	c := Generate(Config{Seed: 3, Scale: 0.05, Projects: 5, ExtraProjects: 1})
	dir := t.TempDir()
	if err := Save(c, dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	bad := c.Projects[2].Name
	if err := os.Remove(filepath.Join(dir, bad, "info.txt")); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	return c, dir, bad
}

func TestLoadSkipsMalformedProject(t *testing.T) {
	c, dir, bad := corruptOneProject(t)
	ledger := resilience.NewLedger()
	got, err := Load(dir, WithLedger(ledger))
	if err != nil {
		t.Fatalf("lenient load failed: %v", err)
	}
	if len(got.Projects) != len(c.Projects)-1 {
		t.Errorf("loaded %d projects, want %d (one skipped)", len(got.Projects), len(c.Projects)-1)
	}
	for _, p := range got.Projects {
		if p.Name == bad {
			t.Errorf("malformed project %s was loaded", bad)
		}
	}
	entries := ledger.Entries()
	if len(entries) != 1 {
		t.Fatalf("ledger has %d entries, want 1:\n%s", len(entries), ledger.Report())
	}
	e := entries[0]
	if e.Task != "project "+bad || e.Phase != resilience.PhaseLoad || e.Category != resilience.CatIO {
		t.Errorf("entry = %+v, want task %q phase load category io", e, "project "+bad)
	}
}

func TestLoadWithoutLedgerStillSkips(t *testing.T) {
	c, dir, _ := corruptOneProject(t)
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("lenient load failed: %v", err)
	}
	if len(got.Projects) != len(c.Projects)-1 {
		t.Errorf("loaded %d projects, want %d", len(got.Projects), len(c.Projects)-1)
	}
}

func TestLoadStrictFailsOnMalformedProject(t *testing.T) {
	_, dir, _ := corruptOneProject(t)
	if _, err := LoadStrict(dir); err == nil {
		t.Error("LoadStrict succeeded on a corpus with a malformed project")
	}
	if _, err := Load(dir, Strict()); err == nil {
		t.Error("Load(Strict()) succeeded on a corpus with a malformed project")
	}
}

func TestKindFromString(t *testing.T) {
	for _, k := range []CommitKind{KindRefactor, KindUnrelated, KindAdd,
		KindRemove, KindFix, KindBug} {
		if got := kindFromString(k.String()); got != k {
			t.Errorf("round trip %v → %v", k, got)
		}
	}
	if kindFromString("garbage") != KindUnrelated {
		t.Error("unknown kind should default to unrelated")
	}
}
