package corpus

import (
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c := Generate(Config{Seed: 9, Scale: 0.05, Projects: 6, ExtraProjects: 2})
	dir := t.TempDir()
	if err := Save(c, dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got.Projects) != len(c.Projects) {
		t.Fatalf("projects = %d, want %d", len(got.Projects), len(c.Projects))
	}
	// Index originals by name (Load sorts alphabetically).
	orig := map[string]*Project{}
	for _, p := range c.Projects {
		orig[p.Name] = p
	}
	for _, p := range got.Projects {
		o, ok := orig[p.Name]
		if !ok {
			t.Fatalf("unknown project %s", p.Name)
		}
		if p.Training != o.Training || p.Info != o.Info {
			t.Errorf("%s: metadata mismatch: %+v vs %+v", p.Name, p.Info, o.Info)
		}
		if len(p.Files) != len(o.Files) {
			t.Errorf("%s: files = %d, want %d", p.Name, len(p.Files), len(o.Files))
		}
		for path, content := range o.Files {
			if p.Files[path] != content {
				t.Errorf("%s: snapshot %s differs", p.Name, path)
			}
		}
		if len(p.Commits) != len(o.Commits) {
			t.Fatalf("%s: commits = %d, want %d", p.Name, len(p.Commits), len(o.Commits))
		}
		for i := range o.Commits {
			a, b := p.Commits[i], o.Commits[i]
			if a.ID != b.ID || a.File != b.File || a.Kind != b.Kind ||
				a.Message != b.Message || a.Old != b.Old || a.New != b.New {
				t.Errorf("%s commit %d differs: %q vs %q", p.Name, i, a.ID, b.ID)
			}
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("expected error for missing directory")
	}
}

func TestKindFromString(t *testing.T) {
	for _, k := range []CommitKind{KindRefactor, KindUnrelated, KindAdd,
		KindRemove, KindFix, KindBug} {
		if got := kindFromString(k.String()); got != k {
			t.Errorf("round trip %v → %v", k, got)
		}
	}
	if kindFromString("garbage") != KindUnrelated {
		t.Error("unknown kind should default to unrelated")
	}
}
