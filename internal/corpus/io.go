package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Save writes a corpus to a directory tree:
//
//	dir/<project>/info.txt             project metadata (key=value)
//	dir/<project>/snapshot/<path>      final file snapshots
//	dir/<project>/commits/NNNN/        one directory per commit with
//	    meta.txt  old.java  new.java   metadata and the two versions
func Save(c *Corpus, dir string) error {
	for _, p := range c.Projects {
		pdir := filepath.Join(dir, p.Name)
		if err := os.MkdirAll(pdir, 0o755); err != nil {
			return err
		}
		info := fmt.Sprintf("training=%t\nandroid=%t\nminsdk=%d\nlprng=%t\n",
			p.Training, p.Info.Android, p.Info.MinSDKVersion, p.Info.HasLPRNG)
		if err := os.WriteFile(filepath.Join(pdir, "info.txt"), []byte(info), 0o644); err != nil {
			return err
		}
		for path, content := range p.Files {
			full := filepath.Join(pdir, "snapshot", filepath.FromSlash(path))
			if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
				return err
			}
		}
		for i, cm := range p.Commits {
			cdir := filepath.Join(pdir, "commits", fmt.Sprintf("%04d", i))
			if err := os.MkdirAll(cdir, 0o755); err != nil {
				return err
			}
			meta := fmt.Sprintf("id=%s\nfile=%s\nkind=%s\nmessage=%s\n",
				cm.ID, cm.File, cm.Kind, cm.Message)
			files := map[string]string{
				"meta.txt": meta, "old.java": cm.Old, "new.java": cm.New,
			}
			for name, content := range files {
				if err := os.WriteFile(filepath.Join(cdir, name), []byte(content), 0o644); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// LoadOption configures Load.
type LoadOption func(*loadConfig)

type loadConfig struct {
	strict    bool
	ledger    *resilience.Ledger
	metrics   *obs.Registry
	artifacts *artifact.Store
}

// WithLedger records the projects Load skipped (malformed directories,
// unreadable metadata, panics during loading) into l.
func WithLedger(l *resilience.Ledger) LoadOption {
	return func(c *loadConfig) { c.ledger = l }
}

// Strict makes Load return the first per-project error instead of skipping
// the project.
func Strict() LoadOption {
	return func(c *loadConfig) { c.strict = true }
}

// WithMetrics counts loaded projects, commits, files, and bytes into reg.
func WithMetrics(reg *obs.Registry) LoadOption {
	return func(c *loadConfig) { c.metrics = reg }
}

// Load reads a corpus previously written by Save. Each project directory is
// loaded in isolation: a malformed project is skipped and recorded in the
// WithLedger ledger (if any) rather than failing the whole corpus, unless
// the Strict option is set. Only a top-level read failure of dir itself is
// a corpus-wide error.
func Load(dir string, opts ...LoadOption) (*Corpus, error) {
	var cfg loadConfig
	for _, o := range opts {
		o(&cfg)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := &Corpus{}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		name := name
		task := "project " + name
		var p *Project
		err := resilience.Guard(task, func() error {
			var err error
			p, err = loadProject(filepath.Join(dir, name), name)
			return err
		})
		if err != nil {
			if cfg.strict {
				return nil, err
			}
			cfg.ledger.Record(resilience.NewEntry(task, resilience.PhaseLoad, err))
			continue
		}
		c.Projects = append(c.Projects, p)
		recordManifest(cfg.artifacts, p)
		if reg := cfg.metrics; reg != nil {
			reg.Counter("corpus.projects_loaded").Inc()
			reg.Counter("corpus.commits_loaded").Add(int64(len(p.Commits)))
			reg.Counter("corpus.files_loaded").Add(int64(len(p.Files)))
			var bytes int64
			for _, content := range p.Files {
				bytes += int64(len(content))
			}
			for _, cm := range p.Commits {
				bytes += int64(len(cm.Old) + len(cm.New))
			}
			reg.Counter("corpus.bytes_loaded").Add(bytes)
		}
	}
	return c, nil
}

// LoadStrict is Load with the Strict option: the pre-resilience behavior
// where the first malformed project aborts the load.
func LoadStrict(dir string) (*Corpus, error) {
	return Load(dir, Strict())
}

func loadProject(pdir, name string) (*Project, error) {
	p := &Project{Name: name, Files: map[string]string{}}
	info, err := os.ReadFile(filepath.Join(pdir, "info.txt"))
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(info), "\n") {
		k, v, ok := strings.Cut(strings.TrimSpace(line), "=")
		if !ok {
			continue
		}
		switch k {
		case "training":
			p.Training = v == "true"
		case "android":
			p.Info.Android = v == "true"
		case "minsdk":
			p.Info.MinSDKVersion, _ = strconv.Atoi(v)
		case "lprng":
			p.Info.HasLPRNG = v == "true"
		}
	}
	snapDir := filepath.Join(pdir, "snapshot")
	err = filepath.WalkDir(snapDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(snapDir, path)
		if err != nil {
			return err
		}
		content, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		p.Files[filepath.ToSlash(rel)] = string(content)
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	commitsDir := filepath.Join(pdir, "commits")
	entries, err := os.ReadDir(commitsDir)
	if os.IsNotExist(err) {
		return p, nil
	}
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		cdir := filepath.Join(commitsDir, d)
		cm := Commit{}
		meta, err := os.ReadFile(filepath.Join(cdir, "meta.txt"))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(meta), "\n") {
			k, v, ok := strings.Cut(line, "=")
			if !ok {
				continue
			}
			switch k {
			case "id":
				cm.ID = v
			case "file":
				cm.File = v
			case "kind":
				cm.Kind = kindFromString(v)
			case "message":
				cm.Message = v
			}
		}
		if old, err := os.ReadFile(filepath.Join(cdir, "old.java")); err == nil {
			cm.Old = string(old)
		}
		if new, err := os.ReadFile(filepath.Join(cdir, "new.java")); err == nil {
			cm.New = string(new)
		}
		p.Commits = append(p.Commits, cm)
	}
	return p, nil
}

func kindFromString(s string) CommitKind {
	for _, k := range []CommitKind{KindRefactor, KindUnrelated, KindAdd,
		KindRemove, KindFix, KindBug} {
		if k.String() == s {
			return k
		}
	}
	return KindUnrelated
}
