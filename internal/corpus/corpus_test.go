package corpus

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/javaparser"
)

func smallConfig() Config {
	return Config{Seed: 7, Scale: 0.05, Projects: 40, ExtraProjects: 5}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Projects) != len(b.Projects) {
		t.Fatalf("project counts differ: %d vs %d", len(a.Projects), len(b.Projects))
	}
	for i := range a.Projects {
		pa, pb := a.Projects[i], b.Projects[i]
		if pa.Name != pb.Name || len(pa.Commits) != len(pb.Commits) {
			t.Fatalf("project %d differs: %s/%d vs %s/%d",
				i, pa.Name, len(pa.Commits), pb.Name, len(pb.Commits))
		}
		for j := range pa.Commits {
			if pa.Commits[j].Old != pb.Commits[j].Old || pa.Commits[j].New != pb.Commits[j].New {
				t.Fatalf("commit %s not deterministic", pa.Commits[j].ID)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 8
	a := Generate(smallConfig())
	b := Generate(cfg2)
	same := 0
	for i := range a.Projects {
		if i < len(b.Projects) && a.Projects[i].Name == b.Projects[i].Name {
			same++
		}
	}
	if same == len(a.Projects) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestAllVersionsParse(t *testing.T) {
	c := Generate(smallConfig())
	checked := 0
	for _, p := range c.Projects {
		for f, src := range p.Files {
			if !strings.HasSuffix(f, ".java") {
				continue
			}
			if errs := javaparser.Parse(src).Errors; len(errs) > 0 {
				t.Fatalf("%s %s: parse errors %v\n%s", p.Name, f, errs, src)
			}
			checked++
		}
		for _, cm := range p.Commits {
			for _, src := range []string{cm.Old, cm.New} {
				if errs := javaparser.Parse(src).Errors; len(errs) > 0 {
					t.Fatalf("%s: parse errors %v\n%s", cm.ID, errs, src)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no files generated")
	}
}

func TestCommitsNeverDegenerate(t *testing.T) {
	c := Generate(smallConfig())
	for _, p := range c.TrainingProjects() {
		for _, cm := range p.Commits {
			if cm.Old == cm.New {
				t.Errorf("%s: old == new (degenerate commit, kind=%s)", cm.ID, cm.Kind)
			}
		}
	}
}

func TestHistoryIsContiguous(t *testing.T) {
	c := Generate(smallConfig())
	for _, p := range c.TrainingProjects() {
		last := map[string]string{}
		for _, cm := range p.Commits {
			if prev, ok := last[cm.File]; ok && prev != cm.Old {
				t.Fatalf("%s: commit chain broken for %s", cm.ID, cm.File)
			}
			last[cm.File] = cm.New
		}
		// Final snapshot matches the last commit of each file.
		for f, snapshot := range p.Files {
			if fin, ok := last[f]; ok && fin != snapshot {
				t.Errorf("%s: snapshot of %s diverges from history tail", p.Name, f)
			}
		}
	}
}

func TestCommitKindMix(t *testing.T) {
	cfg := Config{Seed: 3, Scale: 0.4, Projects: 120, ExtraProjects: 0}
	c := Generate(cfg)
	counts := map[CommitKind]int{}
	total := 0
	for _, p := range c.TrainingProjects() {
		for _, cm := range p.Commits {
			counts[cm.Kind]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no commits")
	}
	frac := func(k CommitKind) float64 { return float64(counts[k]) / float64(total) }
	// The corpus must be dominated by non-semantic changes (paper: >96%
	// filtered by fsame) with a thin band of semantic ones.
	if f := frac(KindRefactor) + frac(KindUnrelated); f < 0.93 {
		t.Errorf("non-semantic commit fraction = %.3f, want >= 0.93", f)
	}
	if counts[KindFix] == 0 {
		t.Error("no security-fix commits generated")
	}
	if counts[KindBug] >= counts[KindFix] {
		t.Errorf("bugs (%d) should be rarer than fixes (%d)",
			counts[KindBug], counts[KindFix])
	}
	if counts[KindAdd] == 0 || counts[KindRemove] == 0 {
		t.Error("missing add/remove commits")
	}
}

func TestProjectInfoDistribution(t *testing.T) {
	c := Generate(Config{Seed: 5, Scale: 0.02, Projects: 500, ExtraProjects: 0})
	android := 0
	for _, p := range c.Projects {
		if p.Info.Android {
			android++
			if p.Info.MinSDKVersion == 0 {
				t.Error("android project without minSdkVersion")
			}
		}
	}
	f := float64(android) / float64(len(c.Projects))
	if f < 0.06 || f > 0.18 {
		t.Errorf("android fraction = %.3f, want ≈ 0.114", f)
	}
}

func TestRefactorPreservesCryptoLines(t *testing.T) {
	// A refactor commit must keep every crypto-relevant literal intact
	// (transformations, algorithms, providers) while renaming identifiers.
	c := Generate(smallConfig())
	cryptoLiterals := []string{"getInstance", "Cipher", "SecureRandom"}
	inspected := 0
	for _, p := range c.TrainingProjects() {
		for _, cm := range p.Commits {
			if cm.Kind != KindRefactor {
				continue
			}
			inspected++
			for _, lit := range cryptoLiterals {
				if strings.Contains(cm.Old, lit) != strings.Contains(cm.New, lit) {
					t.Errorf("%s: refactor changed crypto surface (%s)", cm.ID, lit)
				}
			}
		}
	}
	if inspected == 0 {
		t.Error("no refactor commits to inspect")
	}
}

func TestFixCommitsChangeSemantics(t *testing.T) {
	c := Generate(Config{Seed: 11, Scale: 0.6, Projects: 80, ExtraProjects: 0})
	fixes := 0
	for _, p := range c.TrainingProjects() {
		for _, cm := range p.Commits {
			if cm.Kind == KindFix {
				fixes++
			}
		}
	}
	if fixes < 3 {
		t.Fatalf("only %d fix commits; generator mix too thin for the test", fixes)
	}
}

func TestSpecPathStable(t *testing.T) {
	cfg := smallConfig()
	c := Generate(cfg)
	for _, p := range c.TrainingProjects() {
		perFile := map[string]bool{}
		for _, cm := range p.Commits {
			perFile[cm.File] = true
		}
		for f := range perFile {
			if !strings.HasSuffix(f, ".java") || !strings.HasPrefix(f, "src/") {
				t.Errorf("unexpected path %q", f)
			}
		}
	}
}

func TestWeakDigest(t *testing.T) {
	for _, alg := range []string{"MD5", "SHA-1", "SHA1", "md5"} {
		if !WeakDigest(alg) {
			t.Errorf("WeakDigest(%q) = false", alg)
		}
	}
	for _, alg := range []string{"SHA-256", "SHA-512", ""} {
		if WeakDigest(alg) {
			t.Errorf("WeakDigest(%q) = true", alg)
		}
	}
}

func TestAndroidProjectsCarryManifest(t *testing.T) {
	c := Generate(Config{Seed: 5, Scale: 0.02, Projects: 300, ExtraProjects: 0})
	android := 0
	for _, p := range c.Projects {
		if !p.Info.Android {
			if _, has := p.Files["AndroidManifest.xml"]; has {
				t.Errorf("%s: non-android project has a manifest", p.Name)
			}
			continue
		}
		android++
		m, has := p.Files["AndroidManifest.xml"]
		if !has {
			t.Fatalf("%s: android project missing manifest", p.Name)
		}
		if !strings.Contains(m, fmt.Sprintf("minSdkVersion=\"%d\"", p.Info.MinSDKVersion)) {
			t.Errorf("%s: manifest does not carry minSdk %d:\n%s",
				p.Name, p.Info.MinSDKVersion, m)
		}
		_, hasFix := p.Files["src/security/PRNGFixes.java"]
		if hasFix != p.Info.HasLPRNG {
			t.Errorf("%s: PRNGFixes presence (%t) != Info.HasLPRNG (%t)",
				p.Name, hasFix, p.Info.HasLPRNG)
		}
	}
	if android == 0 {
		t.Fatal("no android projects generated")
	}
}
