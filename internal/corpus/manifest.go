package corpus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/artifact"
)

// WithArtifacts records a per-project manifest into the artifact store as
// Load appends each project: the manifest is keyed by a fingerprint of the
// project's entire content (info, snapshot files, commits), so a warm hit
// on the next load means the project is byte-identical to a previously
// loaded one — the signal incremental drivers use to tell "corpus grew by
// two commits" from "corpus rebuilt from scratch" without diffing a file.
func WithArtifacts(st *artifact.Store) LoadOption {
	return func(c *loadConfig) { c.artifacts = st }
}

// projectFingerprint renders the full content identity of one project in a
// stable order (sorted file paths; commits in load order, which Load sorts
// by directory name).
func projectFingerprint(p *Project) artifact.Key {
	var sb strings.Builder
	fmt.Fprintf(&sb, "project=%s;training=%t;android=%t;minsdk=%d;lprng=%t\n",
		p.Name, p.Training, p.Info.Android, p.Info.MinSDKVersion, p.Info.HasLPRNG)
	paths := make([]string, 0, len(p.Files))
	for path := range p.Files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	parts := make([]string, 0, 1+2*len(paths)+5*len(p.Commits))
	parts = append(parts, sb.String())
	for _, path := range paths {
		parts = append(parts, path, p.Files[path])
	}
	for _, cm := range p.Commits {
		parts = append(parts, cm.ID, cm.File, cm.Kind.String(), cm.Old, cm.New)
	}
	return artifact.NewKey(artifact.KindManifest, parts...)
}

// recordManifest books one loaded project against the store: a hit means
// an identical project was seen before (this run or — with a disk-backed
// store — any prior run); a miss writes the manifest for the next one. The
// manifest payload is informational (name + commit count); the key carries
// the identity.
func recordManifest(st *artifact.Store, p *Project) {
	if st == nil {
		return
	}
	k := projectFingerprint(p)
	if _, ok := st.GetBytes(artifact.KindManifest, k); ok {
		return
	}
	st.PutBytes(artifact.KindManifest, k,
		[]byte(fmt.Sprintf("project=%s\ncommits=%d\nfiles=%d\n", p.Name, len(p.Commits), len(p.Files))))
}
