package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Render produces the Java source of the file for the current spec. The
// output is a pure function of the spec: refactors (NameSeed) rename
// identifiers without touching the crypto semantics, unrelated changes
// (DecoySeed) vary non-crypto helper code, and crypto flags decide what the
// abstraction ultimately sees.
func (s *FileSpec) Render() string {
	ids := newIdentSet(s.NameSeed)
	w := &javaWriter{}
	w.line("package %s;", s.Package)
	w.line("")
	for _, imp := range s.imports() {
		w.line("import %s;", imp)
	}
	w.line("")
	w.line("public class %s {", s.ClassName)
	switch s.Arch {
	case ArchEnc:
		s.renderEnc(w, ids)
	case ArchDigest:
		s.renderDigest(w, ids)
	case ArchToken:
		s.renderToken(w, ids)
	case ArchPBE:
		s.renderPBE(w, ids)
	case ArchKey:
		s.renderKey(w, ids)
	case ArchMixed:
		s.renderMixed(w, ids)
	}
	s.renderDecoys(w, ids)
	w.line("}")
	return w.String()
}

func (s *FileSpec) imports() []string {
	set := map[string]bool{}
	add := func(xs ...string) {
		for _, x := range xs {
			set[x] = true
		}
	}
	switch s.Arch {
	case ArchEnc:
		add("javax.crypto.Cipher", "javax.crypto.spec.SecretKeySpec")
		if s.UseIV {
			add("javax.crypto.spec.IvParameterSpec")
		}
		if s.UseIV && !s.IVConst {
			add("java.security.SecureRandom")
		}
		if s.HasMac {
			add("javax.crypto.Mac")
		}
	case ArchDigest:
		add("java.security.MessageDigest")
	case ArchToken:
		add("java.security.SecureRandom")
	case ArchPBE:
		add("javax.crypto.spec.PBEKeySpec", "javax.crypto.SecretKeyFactory",
			"javax.crypto.spec.SecretKeySpec")
		if !s.SaltConst {
			add("java.security.SecureRandom")
		}
	case ArchKey:
		add("javax.crypto.spec.SecretKeySpec")
	case ArchMixed:
		add("javax.crypto.Cipher", "java.security.MessageDigest",
			"java.security.SecureRandom", "javax.crypto.spec.SecretKeySpec")
		if s.UseIV {
			add("javax.crypto.spec.IvParameterSpec")
		}
	}
	var out []string
	for k := range set {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// javaWriter is a tiny indented source writer.
type javaWriter struct {
	sb strings.Builder
}

func (w *javaWriter) line(format string, args ...any) {
	fmt.Fprintf(&w.sb, format, args...)
	w.sb.WriteByte('\n')
}

func (w *javaWriter) String() string { return w.sb.String() }

// constBytes renders a fixed byte-array literal of the given length; the
// values are stable so the same spec always renders identically.
func constBytes(n int) string {
	vals := make([]string, n)
	seq := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4,
		6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5}
	for i := range vals {
		vals[i] = fmt.Sprint(seq[i%len(seq)])
	}
	return "{" + strings.Join(vals, ", ") + "}"
}

// getInstanceArgs renders the transformation (and optional provider) args.
func (s *FileSpec) getInstanceArgs() string {
	if s.Provider != "" {
		return fmt.Sprintf("%q, %q", s.Transform, s.Provider)
	}
	return fmt.Sprintf("%q", s.Transform)
}

// ---------------------------------------------------------------------------
// Archetype renderers
// ---------------------------------------------------------------------------

func (s *FileSpec) renderEnc(w *javaWriter, ids *identSet) {
	enc := ids.pick(varCipher)
	dec := ids.pick(varCipher2)
	key := ids.pick(varKey)
	mat := ids.pick(varBytes)
	setup := ids.pick(methodInit)
	work := ids.pick(methodWork)

	w.line("    private Cipher %s;", enc)
	if s.TwoCiphers {
		w.line("    private Cipher %s;", dec)
	}
	w.line("")
	w.line("    public void %s(byte[] %s) {", setup, mat)
	w.line("        try {")
	keyExpr := mat
	if s.KeyConst {
		keyBytes := ids.pick(varBytes)
		w.line("            byte[] %s = %s;", keyBytes, constBytes(16))
		keyExpr = keyBytes
	}
	w.line("            SecretKeySpec %s = new SecretKeySpec(%s, \"AES\");", key, keyExpr)
	iv := ""
	if s.UseIV {
		iv = ids.pick(varIV)
		ivRaw := ids.pick(varBytes)
		if s.IVConst {
			w.line("            byte[] %s = %s;", ivRaw, constBytes(16))
		} else {
			rnd := ids.pick(varRandom)
			w.line("            byte[] %s = new byte[16];", ivRaw)
			w.line("            SecureRandom %s = new SecureRandom();", rnd)
			w.line("            %s.nextBytes(%s);", rnd, ivRaw)
		}
		w.line("            IvParameterSpec %s = new IvParameterSpec(%s);", iv, ivRaw)
	}
	initArgs := func(mode string) string {
		if iv != "" {
			return fmt.Sprintf("Cipher.%s, %s, %s", mode, key, iv)
		}
		return fmt.Sprintf("Cipher.%s, %s", mode, key)
	}
	w.line("            %s = Cipher.getInstance(%s);", enc, s.getInstanceArgs())
	w.line("            %s.init(%s);", enc, initArgs("ENCRYPT_MODE"))
	if s.TwoCiphers {
		w.line("            %s = Cipher.getInstance(%s);", dec, s.getInstanceArgs())
		w.line("            %s.init(%s);", dec, initArgs("DECRYPT_MODE"))
	}
	if s.RSAKeyExchange {
		wrap := ids.pick(varCipher)
		w.line("            Cipher %s = Cipher.getInstance(\"RSA/ECB/PKCS1Padding\");", wrap)
		w.line("            %s.init(Cipher.WRAP_MODE, %s);", wrap, key)
	}
	if s.HasMac {
		mac := ids.pick(varMac)
		w.line("            Mac %s = Mac.getInstance(\"HmacSHA256\");", mac)
		w.line("            %s.init(%s);", mac, key)
	}
	w.line("        } catch (Exception ex) {")
	w.line("            throw new IllegalStateException(ex);")
	w.line("        }")
	w.line("    }")
	w.line("")
	w.line("    public byte[] %s(byte[] data) throws Exception {", work)
	w.line("        return %s.doFinal(data);", enc)
	w.line("    }")
}

func (s *FileSpec) renderDigest(w *javaWriter, ids *identSet) {
	md := ids.pick(varDigest)
	work := ids.pick(methodWork)
	w.line("    public byte[] %s(byte[] input) throws Exception {", work)
	w.line("        MessageDigest %s = MessageDigest.getInstance(%q);", md, s.DigestAlg)
	w.line("        %s.update(input);", md)
	w.line("        return %s.digest();", md)
	w.line("    }")
	if s.TwoDigests {
		md2 := ids.pick(varDigest)
		aux := ids.pick(methodAux)
		w.line("")
		w.line("    public byte[] %s(byte[] left, byte[] right) throws Exception {", aux)
		w.line("        MessageDigest %s = MessageDigest.getInstance(%q);", md2, s.DigestAlg)
		w.line("        %s.update(left);", md2)
		w.line("        %s.update(right);", md2)
		w.line("        return %s.digest();", md2)
		w.line("    }")
	}
}

// randomCtor renders the SecureRandom creation expression for the spec.
func (s *FileSpec) randomCtor() string {
	switch {
	case s.CtorSeed:
		return fmt.Sprintf("new SecureRandom(new byte[]%s)", constBytes(8))
	case s.RandomAlg == "STRONG":
		return "SecureRandom.getInstanceStrong()"
	case s.RandomAlg != "":
		return fmt.Sprintf("SecureRandom.getInstance(%q)", s.RandomAlg)
	default:
		return "new SecureRandom()"
	}
}

func (s *FileSpec) renderToken(w *javaWriter, ids *identSet) {
	rnd := ids.pick(varRandom)
	buf := ids.pick(varBytes)
	work := ids.pick(methodWork)
	throwsClause := ""
	if s.RandomAlg != "" {
		throwsClause = " throws Exception"
	}
	w.line("    public byte[] %s()%s {", work, throwsClause)
	w.line("        SecureRandom %s = %s;", rnd, s.randomCtor())
	if s.SeedConst {
		w.line("        %s.setSeed(new byte[]%s);", rnd, constBytes(8))
	}
	w.line("        byte[] %s = new byte[32];", buf)
	w.line("        %s.nextBytes(%s);", rnd, buf)
	w.line("        return %s;", buf)
	w.line("    }")
	if s.ExtraRandom {
		rnd2 := ids.pick(varRandom)
		aux := ids.pick(methodAux)
		w.line("")
		w.line("    public long %s() {", aux)
		w.line("        SecureRandom %s = new SecureRandom();", rnd2)
		w.line("        return %s.nextLong();", rnd2)
		w.line("    }")
	}
}

func (s *FileSpec) renderPBE(w *javaWriter, ids *identSet) {
	salt := ids.pick(varBytes)
	spec := ids.pick(varMisc)
	kb := ids.pick(varBytes)
	work := ids.pick(methodAux)
	w.line("    public SecretKeySpec %s(String password) throws Exception {", work)
	if s.SaltConst {
		w.line("        byte[] %s = %s;", salt, constBytes(8))
	} else {
		rnd := ids.pick(varRandom)
		w.line("        byte[] %s = new byte[8];", salt)
		w.line("        SecureRandom %s = new SecureRandom();", rnd)
		w.line("        %s.nextBytes(%s);", rnd, salt)
	}
	w.line("        PBEKeySpec %s = new PBEKeySpec(password.toCharArray(), %s, %d, 256);",
		spec, salt, s.PBEIter)
	w.line("        SecretKeyFactory factory = SecretKeyFactory.getInstance(\"PBKDF2WithHmacSHA1\");")
	w.line("        byte[] %s = factory.generateSecret(%s).getEncoded();", kb, spec)
	w.line("        return new SecretKeySpec(%s, \"AES\");", kb)
	w.line("    }")
}

func (s *FileSpec) renderKey(w *javaWriter, ids *identSet) {
	key := ids.pick(varKey)
	key2 := ""
	setup := ids.pick(methodInit)
	mat := ids.pick(varBytes)
	w.line("    private SecretKeySpec %s;", key)
	if s.TwoKeys {
		key2 = ids.pick(varKey)
		w.line("    private SecretKeySpec %s;", key2)
	}
	w.line("")
	w.line("    public void %s(byte[] %s) {", setup, mat)
	keyExpr := mat
	if s.KeyConst {
		kb := ids.pick(varBytes)
		w.line("        byte[] %s = %s;", kb, constBytes(16))
		keyExpr = kb
	}
	w.line("        %s = new SecretKeySpec(%s, \"AES\");", key, keyExpr)
	if s.TwoKeys {
		mac := ids.pick(varBytes)
		w.line("        byte[] %s = stretch(%s);", mac, mat)
		w.line("        %s = new SecretKeySpec(%s, \"HmacSHA256\");", key2, mac)
	}
	w.line("    }")
	w.line("")
	w.line("    private byte[] stretch(byte[] in) {")
	w.line("        byte[] out = new byte[in.length];")
	w.line("        for (int i = 0; i < in.length; i++) { out[i] = in[i]; }")
	w.line("        return out;")
	w.line("    }")
}

func (s *FileSpec) renderMixed(w *javaWriter, ids *identSet) {
	enc := ids.pick(varCipher)
	key := ids.pick(varKey)
	md := ids.pick(varDigest)
	rnd := ids.pick(varRandom)
	work := ids.pick(methodWork)
	w.line("    public byte[] %s(byte[] material, byte[] data) throws Exception {", work)
	w.line("        MessageDigest %s = MessageDigest.getInstance(%q);", md, s.DigestAlg)
	w.line("        byte[] fingerprint = %s.digest(material);", md)
	keyExpr := "material"
	if s.KeyConst {
		kb := ids.pick(varBytes)
		w.line("        byte[] %s = %s;", kb, constBytes(16))
		keyExpr = kb
	}
	w.line("        SecretKeySpec %s = new SecretKeySpec(%s, \"AES\");", key, keyExpr)
	if s.UseIV {
		iv := ids.pick(varIV)
		ivRaw := ids.pick(varBytes)
		if s.IVConst {
			w.line("        byte[] %s = %s;", ivRaw, constBytes(16))
		} else {
			w.line("        byte[] %s = new byte[16];", ivRaw)
			w.line("        SecureRandom %s = new SecureRandom();", rnd)
			w.line("        %s.nextBytes(%s);", rnd, ivRaw)
		}
		w.line("        IvParameterSpec %s = new IvParameterSpec(%s);", iv, ivRaw)
		w.line("        Cipher %s = Cipher.getInstance(%s);", enc, s.getInstanceArgs())
		w.line("        %s.init(Cipher.ENCRYPT_MODE, %s, %s);", enc, key, iv)
	} else {
		w.line("        SecureRandom %s = new SecureRandom();", rnd)
		w.line("        %s.nextBytes(new byte[4]);", rnd)
		w.line("        Cipher %s = Cipher.getInstance(%s);", enc, s.getInstanceArgs())
		w.line("        %s.init(Cipher.ENCRYPT_MODE, %s);", enc, key)
	}
	w.line("        return %s.doFinal(data);", enc)
	w.line("    }")
}

// renderDecoys emits non-crypto helper code whose content varies with
// DecoySeed; unrelated commits touch only this section.
func (s *FileSpec) renderDecoys(w *javaWriter, ids *identSet) {
	rng := rand.New(rand.NewSource(s.DecoySeed))
	w.line("")
	bufSizes := []int{1024, 2048, 4096, 8192, 16384}
	w.line("    private static final int CHUNK = %d;", bufSizes[rng.Intn(len(bufSizes))])
	versions := []string{"v1", "v2", "2.0", "beta", "stable", "3.1", "legacy"}
	w.line("    private static final String BUILD_TAG = %q;", versions[rng.Intn(len(versions))])
	w.line("")
	helper := ids.pick(varMisc)
	mult := []int{29, 31, 33, 37}[rng.Intn(4)]
	add := []int{3, 7, 11, 13}[rng.Intn(4)]
	w.line("    private int %sChecksum(int value) {", helper)
	w.line("        return value * %d + %d;", mult, add)
	w.line("    }")
	if rng.Intn(2) == 0 {
		w.line("")
		w.line("    private String describe() {")
		w.line("        return \"%s \" + BUILD_TAG + \" chunk=\" + CHUNK;", s.ClassName)
		w.line("    }")
	}
}
