package cluster

// Silhouette analysis for choosing the dendrogram cut automatically. The
// paper's analyst picks clusters by eye; CutAuto mechanizes the choice by
// scanning the merge heights and keeping the partition with the highest
// mean silhouette width.

// Silhouette computes the mean silhouette width of a partition (clusters of
// item indices) under the given distance matrix. Singleton clusters
// contribute 0 (the standard convention). Returns 0 for degenerate
// partitions (one cluster or all singletons).
func Silhouette(dist [][]float64, clusters [][]int) float64 {
	if len(clusters) < 2 {
		return 0
	}
	owner := map[int]int{}
	for ci, cl := range clusters {
		for _, i := range cl {
			owner[i] = ci
		}
	}
	total, n := 0.0, 0
	for ci, cl := range clusters {
		for _, i := range cl {
			n++
			if len(cl) == 1 {
				continue // silhouette 0 for singletons
			}
			// a = mean intra-cluster distance.
			a := 0.0
			for _, j := range cl {
				if j != i {
					a += dist[i][j]
				}
			}
			a /= float64(len(cl) - 1)
			// b = smallest mean distance to another cluster.
			b := -1.0
			for cj, other := range clusters {
				if cj == ci || len(other) == 0 {
					continue
				}
				d := 0.0
				for _, j := range other {
					d += dist[i][j]
				}
				d /= float64(len(other))
				if b < 0 || d < b {
					b = d
				}
			}
			if b < 0 {
				continue
			}
			max := a
			if b > max {
				max = b
			}
			if max > 0 {
				total += (b - a) / max
			}
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// CutAuto scans the dendrogram's merge heights as candidate cut thresholds
// and returns the partition with the highest mean silhouette width,
// together with the chosen threshold. When every candidate ties at 0 (e.g.
// two items), it falls back to cutting just below the root.
func CutAuto(root *Node, dist [][]float64) ([][]int, float64) {
	if root == nil {
		return nil, 0
	}
	if root.IsLeaf() {
		return [][]int{{root.Item}}, 0
	}
	heights := collectHeights(root)
	bestScore := -2.0
	var best [][]int
	bestTh := 0.0
	for _, h := range heights {
		th := h - 1e-9 // cut just below each merge
		clusters := root.Cut(th)
		if len(clusters) < 2 {
			continue
		}
		s := Silhouette(dist, clusters)
		if s > bestScore {
			bestScore = s
			best = clusters
			bestTh = th
		}
	}
	if best == nil {
		best = root.Cut(root.Height - 1e-9)
		bestTh = root.Height - 1e-9
	}
	return best, bestTh
}

func collectHeights(root *Node) []float64 {
	seen := map[float64]bool{}
	var out []float64
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		if !seen[n.Height] {
			seen[n.Height] = true
			out = append(out, n.Height)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(root)
	// insertion sort (tiny slices)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
