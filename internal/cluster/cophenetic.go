package cluster

import "math"

// CopheneticMatrix computes the cophenetic distance between every pair of
// leaves: the merge height at which the two leaves first join the same
// cluster. It is the standard device for judging how faithfully a
// dendrogram represents the underlying distances.
func CopheneticMatrix(root *Node, n int) [][]float64 {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	var walk func(x *Node)
	walk = func(x *Node) {
		if x == nil || x.IsLeaf() {
			return
		}
		walk(x.Left)
		walk(x.Right)
		for _, i := range x.Left.Items() {
			for _, j := range x.Right.Items() {
				d[i][j] = x.Height
				d[j][i] = x.Height
			}
		}
	}
	walk(root)
	return d
}

// CopheneticCorrelation is the Pearson correlation between the original
// pairwise distances and the cophenetic distances of the dendrogram built
// from them — 1.0 means the tree reproduces the metric perfectly. Returns 0
// for degenerate inputs (fewer than two leaves or zero variance).
func CopheneticCorrelation(dist [][]float64, root *Node) float64 {
	n := len(dist)
	if n < 2 || root == nil {
		return 0
	}
	coph := CopheneticMatrix(root, n)
	var xs, ys []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			xs = append(xs, dist[i][j])
			ys = append(ys, coph[i][j])
		}
	}
	return pearson(xs, ys)
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
