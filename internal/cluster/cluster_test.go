package cluster

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/change"
	"repro/internal/usage"
)

// mkChange builds a usage change switching getInstance from one
// transformation to another — the shape of the paper's Figure 8 leaves.
func mkChange(from, to string, extraAdd ...string) change.UsageChange {
	c := change.UsageChange{Class: "Cipher"}
	c.Removed = []usage.Path{{"Cipher", "getInstance", `arg1:"` + from + `"`}}
	c.Added = []usage.Path{{"Cipher", "getInstance", `arg1:"` + to + `"`}}
	for _, e := range extraAdd {
		c.Added = append(c.Added, usage.Path{"Cipher", "init", e})
	}
	return c
}

// figure8Changes are the three ECB→CBC/GCM fixes of Figure 8 plus two
// unrelated changes.
func figure8Changes() []change.UsageChange {
	return []change.UsageChange{
		mkChange("AES/ECB", "AES/GCM", "arg3:IvParameterSpec"),
		mkChange("AES/ECB", "AES/CBC", "arg3:IvParameterSpec"),
		mkChange("AES", "AES/CBC", "arg3:IvParameterSpec"),
		mkChange("DES", "AES/GCM/NoPadding"),
		{
			Class:   "Cipher",
			Removed: []usage.Path{{"Cipher", "getInstance", `arg2:"SunJCE"`}},
			Added:   []usage.Path{{"Cipher", "getInstance", `arg2:"BC"`}},
		},
	}
}

func TestDistMatrixSymmetry(t *testing.T) {
	d := DistMatrix(figure8Changes())
	for i := range d {
		if d[i][i] != 0 {
			t.Errorf("d[%d][%d] = %v, want 0", i, i, d[i][i])
		}
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
			if d[i][j] < 0 {
				t.Errorf("negative distance at (%d,%d)", i, j)
			}
		}
	}
}

func TestFigure8ECBClusterForms(t *testing.T) {
	changes := figure8Changes()
	root := Agglomerate(changes, Complete)
	if root == nil || root.Size() != len(changes) {
		t.Fatalf("dendrogram size = %v", root)
	}
	// Cutting at a moderate threshold must group the three ECB fixes
	// (indices 0-2) into one cluster, separate from the provider switch.
	clusters := root.Cut(0.6)
	var ecb []int
	for _, cl := range clusters {
		for _, i := range cl {
			if i == 0 {
				ecb = cl
			}
		}
	}
	if len(ecb) < 3 {
		t.Fatalf("ECB cluster = %v, want the three mode fixes together\n%s",
			ecb, Render(root, func(i int) string { return changes[i].String() }))
	}
	has := map[int]bool{}
	for _, i := range ecb {
		has[i] = true
	}
	for i := 0; i < 3; i++ {
		if !has[i] {
			t.Errorf("ECB cluster %v missing change %d", ecb, i)
		}
	}
	if has[4] {
		t.Error("provider switch merged into the ECB cluster")
	}
}

func TestCutExtremes(t *testing.T) {
	changes := figure8Changes()
	root := Agglomerate(changes, Complete)
	// Threshold below every merge: all singletons.
	singles := root.Cut(-1)
	if len(singles) != len(changes) {
		t.Errorf("cut(-1) clusters = %d, want %d", len(singles), len(changes))
	}
	// Threshold above the root: one cluster with everything.
	all := root.Cut(math.MaxFloat64)
	if len(all) != 1 || len(all[0]) != len(changes) {
		t.Errorf("cut(inf) = %v", all)
	}
}

func TestSingleVsCompleteLinkage(t *testing.T) {
	// A chain a-b-c-d where consecutive distances are small but end-to-end
	// is large: single linkage merges the chain at a low height, complete
	// linkage does not.
	d := [][]float64{
		{0.0, 0.1, 0.5, 0.9},
		{0.1, 0.0, 0.1, 0.5},
		{0.5, 0.1, 0.0, 0.1},
		{0.9, 0.5, 0.1, 0.0},
	}
	single := AgglomerateMatrix(d, Single)
	complete := AgglomerateMatrix(d, Complete)
	if single.Height >= complete.Height {
		t.Errorf("single root height %v should be below complete %v",
			single.Height, complete.Height)
	}
	if math.Abs(single.Height-0.1) > 1e-12 {
		t.Errorf("single linkage root height = %v, want 0.1 (chaining)", single.Height)
	}
	if math.Abs(complete.Height-0.9) > 1e-12 {
		t.Errorf("complete linkage root height = %v, want 0.9", complete.Height)
	}
}

func TestAverageLinkage(t *testing.T) {
	d := [][]float64{
		{0, 0.2, 1.0},
		{0.2, 0, 0.6},
		{1.0, 0.6, 0},
	}
	root := AgglomerateMatrix(d, Average)
	// First merge {0,1} at 0.2; then cluster to 2 at (1.0+0.6)/2 = 0.8.
	if math.Abs(root.Height-0.8) > 1e-12 {
		t.Errorf("UPGMA root height = %v, want 0.8", root.Height)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Agglomerate(nil, Complete) != nil {
		t.Error("empty input should give nil dendrogram")
	}
	one := []change.UsageChange{mkChange("AES", "AES/GCM")}
	root := Agglomerate(one, Complete)
	if root == nil || !root.IsLeaf() || root.Item != 0 {
		t.Errorf("singleton root = %+v", root)
	}
	if got := root.Cut(0.5); len(got) != 1 || got[0][0] != 0 {
		t.Errorf("singleton cut = %v", got)
	}
}

func TestItemsCoverAllLeaves(t *testing.T) {
	changes := figure8Changes()
	root := Agglomerate(changes, Complete)
	items := root.Items()
	if len(items) != len(changes) {
		t.Fatalf("items = %v", items)
	}
	seen := map[int]bool{}
	for _, i := range items {
		if seen[i] {
			t.Errorf("duplicate leaf %d", i)
		}
		seen[i] = true
	}
}

func TestDeterminism(t *testing.T) {
	changes := figure8Changes()
	r1 := Render(Agglomerate(changes, Complete), func(i int) string { return changes[i].Key() })
	for k := 0; k < 5; k++ {
		r2 := Render(Agglomerate(changes, Complete), func(i int) string { return changes[i].Key() })
		if r1 != r2 {
			t.Fatal("clustering not deterministic")
		}
	}
}

func TestRenderShape(t *testing.T) {
	changes := figure8Changes()
	out := Render(Agglomerate(changes, Complete), func(i int) string {
		return changes[i].String()
	})
	if !strings.Contains(out, "└─") || !strings.Contains(out, "[h=") {
		t.Errorf("render missing tree glyphs:\n%s", out)
	}
	// Every leaf label appears.
	if strings.Count(out, "AES/ECB") < 2 {
		t.Errorf("leaf labels missing:\n%s", out)
	}
}

// Property: monotonicity of merge heights along root-to-leaf paths for
// complete and average linkage (heights never decrease upward).
func TestQuickMonotoneHeights(t *testing.T) {
	f := func(seed []uint8) bool {
		n := len(seed)%6 + 2
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
		}
		k := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := 0.1
				if len(seed) > 0 {
					v = float64(seed[k%len(seed)]%100)/100 + 0.01
				}
				k++
				d[i][j], d[j][i] = v, v
			}
		}
		root := AgglomerateMatrix(d, Complete)
		ok := true
		var walk func(*Node)
		walk = func(x *Node) {
			if x == nil || x.IsLeaf() {
				return
			}
			for _, ch := range []*Node{x.Left, x.Right} {
				if !ch.IsLeaf() && ch.Height > x.Height+1e-12 {
					ok = false
				}
			}
			walk(x.Left)
			walk(x.Right)
		}
		walk(root)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAgglomerate100(b *testing.B) {
	var changes []change.UsageChange
	modes := []string{"AES", "AES/ECB", "DES", "AES/CBC", "AES/GCM", "RSA"}
	for i := 0; i < 100; i++ {
		changes = append(changes, mkChange(modes[i%len(modes)], modes[(i+1)%len(modes)]))
	}
	d := DistMatrix(changes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AgglomerateMatrix(d, Complete)
	}
}
