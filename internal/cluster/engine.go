package cluster

import (
	"context"

	"repro/internal/change"
	"repro/internal/distcache"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// internedChange is one usage change with both feature sets interned.
type internedChange struct {
	rem, add []distcache.PathRef
}

// DistMatrixEngine is DistMatrixPool routed through a memoized distance
// engine. On top of the engine's label- and path-level caches it adds
// matrix-level deduplication: changes are fingerprinted (order-sensitive, see
// distcache.AppendFingerprint), one representative per distinct fingerprint
// enters the pairwise loop, and representative rows fan out to duplicate
// slots. Duplicates are byte-identical inputs, so the fan-out copies exactly
// the values the full loop would have produced (identical-pair distances are
// exactly 0.0: every summand of the assignment objective is a non-negative
// float and the zero matching is optimal). A nil engine is the uncached path.
func DistMatrixEngine(changes []change.UsageChange, reg *obs.Registry, p *parallel.Pool, eng *distcache.Engine) [][]float64 {
	if eng == nil {
		return DistMatrixPool(changes, reg, p)
	}
	n := len(changes)
	ic := make([]internedChange, n)
	repOf := make([]int, n) // slot → representative index
	var reps []int          // representative index → slot of first occurrence
	seen := map[string]int{}
	var fp []byte
	for i, c := range changes {
		ic[i] = internedChange{rem: eng.InternPaths(c.Removed), add: eng.InternPaths(c.Added)}
		fp = distcache.AppendFingerprint(fp[:0], ic[i].rem, ic[i].add)
		r, ok := seen[string(fp)]
		if !ok {
			r = len(reps)
			seen[string(fp)] = r
			reps = append(reps, i)
		}
		repOf[i] = r
	}
	m := len(reps)
	rd := make([][]float64, m)
	for i := range rd {
		rd[i] = make([]float64, m)
	}
	fillRows := func(r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			a := ic[reps[i]]
			for j := i + 1; j < m; j++ {
				b := ic[reps[j]]
				dist := eng.UsageDistRefs(a.rem, a.add, b.rem, b.add)
				rd[i][j] = dist
				rd[j][i] = dist
			}
		}
	}
	if !p.Serial() && m >= minParallelMatrixRows {
		chunks := parallel.TriangleChunks(m, p.Workers()*4)
		p.ForEach(context.Background(), len(chunks), func(ci int) { fillRows(chunks[ci]) })
	} else {
		fillRows(parallel.Range{Lo: 0, Hi: m})
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		ri := repOf[i]
		for j := range d[i] {
			if j != i {
				d[i][j] = rd[ri][repOf[j]]
			}
		}
	}
	reg.Counter("cluster.dist_computations").Add(int64(m) * int64(m-1) / 2)
	reg.Counter("cache.matrix.pairs_total").Add(int64(n) * int64(n-1) / 2)
	reg.Counter("cache.matrix.pairs_computed").Add(int64(m) * int64(m-1) / 2)
	reg.Counter("cache.matrix.duplicate_slots").Add(int64(n - m))
	return d
}

// AgglomerateEngine is AgglomeratePool with the distance matrix routed
// through a memoized engine. The merge phase is untouched — it consumes a
// matrix that is byte-identical to the uncached one — so the dendrogram is
// identical with the cache on or off, at any worker count.
func AgglomerateEngine(changes []change.UsageChange, linkage Linkage, reg *obs.Registry, p *parallel.Pool, eng *distcache.Engine) *Node {
	return AgglomerateMatrixPool(DistMatrixEngine(changes, reg, p, eng), linkage, reg, p)
}
