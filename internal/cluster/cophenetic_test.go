package cluster

import (
	"math"
	"testing"
)

func TestCopheneticMatrixTwoBlobs(t *testing.T) {
	d := twoBlobs()
	root := AgglomerateMatrix(d, Complete)
	coph := CopheneticMatrix(root, 6)
	// Within a blob, leaves merge at 0.1; across blobs at 0.9.
	if math.Abs(coph[0][1]-0.1) > 1e-12 {
		t.Errorf("intra-blob cophenetic = %v, want 0.1", coph[0][1])
	}
	if math.Abs(coph[0][4]-0.9) > 1e-12 {
		t.Errorf("inter-blob cophenetic = %v, want 0.9", coph[0][4])
	}
	// Symmetry, zero diagonal.
	for i := 0; i < 6; i++ {
		if coph[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %v", i, i, coph[i][i])
		}
		for j := 0; j < 6; j++ {
			if coph[i][j] != coph[j][i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestCopheneticCorrelationPerfect(t *testing.T) {
	// An ultrametric input (two clean blobs) is represented exactly:
	// correlation 1.
	d := twoBlobs()
	root := AgglomerateMatrix(d, Complete)
	if c := CopheneticCorrelation(d, root); math.Abs(c-1) > 1e-9 {
		t.Errorf("correlation on ultrametric data = %v, want 1", c)
	}
}

func TestCopheneticCorrelationLinkages(t *testing.T) {
	// On a chain (non-ultrametric), complete and average linkage preserve
	// the metric at least as well as single linkage, which chains.
	d := [][]float64{
		{0.0, 0.1, 0.5, 0.9},
		{0.1, 0.0, 0.1, 0.5},
		{0.5, 0.1, 0.0, 0.1},
		{0.9, 0.5, 0.1, 0.0},
	}
	corr := map[Linkage]float64{}
	for _, l := range []Linkage{Complete, Single, Average} {
		corr[l] = CopheneticCorrelation(d, AgglomerateMatrix(d, l))
	}
	if corr[Single] > corr[Complete]+1e-9 {
		t.Errorf("single (%v) should not beat complete (%v) on a chain",
			corr[Single], corr[Complete])
	}
	for l, c := range corr {
		if c < -1-1e-9 || c > 1+1e-9 {
			t.Errorf("linkage %d: correlation %v out of range", l, c)
		}
	}
}

func TestCopheneticDegenerate(t *testing.T) {
	if c := CopheneticCorrelation(nil, nil); c != 0 {
		t.Errorf("nil input = %v", c)
	}
	one := [][]float64{{0}}
	if c := CopheneticCorrelation(one, &Node{Item: 0, size: 1}); c != 0 {
		t.Errorf("single leaf = %v", c)
	}
	// Zero-variance distances.
	flat := [][]float64{{0, 0.5, 0.5}, {0.5, 0, 0.5}, {0.5, 0.5, 0}}
	root := AgglomerateMatrix(flat, Complete)
	if c := CopheneticCorrelation(flat, root); c != 0 {
		t.Errorf("flat metric = %v, want 0 (zero variance)", c)
	}
}
