package cluster

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/change"
	"repro/internal/distcache"
	"repro/internal/parallel"
	"repro/internal/usage"
)

// genChanges builds n distinct usage changes with a varied, collision-rich
// distance structure: many pairs tie, so the suite actually exercises the
// row-major tie-break of the min-pair scan, not just distinct minima.
func genChanges(n int) []change.UsageChange {
	algs := []string{"AES/ECB", "AES/CBC", "AES/GCM", "DES", "RC4", "AES", "DESede/ECB"}
	extras := []string{"", "arg3:IvParameterSpec", "arg2:SecureRandom"}
	out := make([]change.UsageChange, n)
	for i := range out {
		from := algs[i%len(algs)]
		to := algs[(i+3)%len(algs)]
		c := change.UsageChange{Class: "Cipher"}
		c.Removed = []usage.Path{{"Cipher", "getInstance", `arg1:"` + from + `"`}}
		c.Added = []usage.Path{{"Cipher", "getInstance", `arg1:"` + to + `"`}}
		if e := extras[i%len(extras)]; e != "" {
			c.Added = append(c.Added, usage.Path{"Cipher", "init", e})
		}
		out[i] = c
	}
	return out
}

// dendroFingerprint serializes a dendrogram completely: nesting (merge
// structure), heights, and leaf order. Two identical fingerprints mean the
// same merges happened in the same order at the same heights.
func dendroFingerprint(n *Node) string {
	var sb strings.Builder
	var walk func(*Node)
	walk = func(x *Node) {
		if x == nil {
			sb.WriteString("nil")
			return
		}
		if x.IsLeaf() {
			fmt.Fprintf(&sb, "%d", x.Item)
			return
		}
		fmt.Fprintf(&sb, "(h=%.17g ", x.Height)
		walk(x.Left)
		sb.WriteString(" ")
		walk(x.Right)
		sb.WriteString(")")
	}
	walk(n)
	return sb.String()
}

// TestDeterminismDistMatrixPool asserts every matrix cell is bitwise equal
// to the serial matrix at several worker counts, at a size above the
// parallel threshold.
func TestDeterminismDistMatrixPool(t *testing.T) {
	changes := genChanges(80)
	want := DistMatrixPool(changes, nil, nil)
	for _, w := range []int{1, 2, 8} {
		got := DistMatrixPool(changes, nil, parallel.New(w, nil))
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: d[%d][%d] = %v, want %v", w, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestDeterminismAgglomeratePool asserts the dendrogram — shape, merge
// order, and heights — is identical to the serial clustering at several
// worker counts, for every linkage. n=80 exceeds minParallelScan, so the
// early merge iterations take the chunked scan-and-reduce path.
func TestDeterminismAgglomeratePool(t *testing.T) {
	changes := genChanges(80)
	if len(changes) < minParallelScan {
		t.Fatalf("test corpus too small to exercise the parallel scan path")
	}
	for _, linkage := range []Linkage{Complete, Single, Average} {
		want := dendroFingerprint(AgglomeratePool(changes, linkage, nil, nil))
		for _, w := range []int{1, 2, 8} {
			got := dendroFingerprint(AgglomeratePool(changes, linkage, nil, parallel.New(w, nil)))
			if got != want {
				t.Errorf("linkage=%v workers=%d: dendrogram differs from serial\n got: %.120s\nwant: %.120s",
					linkage, w, got, want)
			}
		}
	}
}

// TestDeterminismDistMatrixEngine asserts the memoized engine's matrix is
// bitwise equal to the uncached serial matrix at several worker counts.
// genChanges repeats with period 21, so the 80-change corpus contains
// duplicate changes and the representative fan-out path is exercised, not
// just the cache hits.
func TestDeterminismDistMatrixEngine(t *testing.T) {
	changes := genChanges(80)
	want := DistMatrixPool(changes, nil, nil)
	for _, w := range []int{1, 2, 8} {
		got := DistMatrixEngine(changes, nil, parallel.New(w, nil), distcache.New(nil))
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: d[%d][%d] = %v, want %v", w, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestDeterminismAgglomerateEngine asserts the dendrogram is identical with
// the distance cache on and off, for every linkage and several worker
// counts — the acceptance contract behind the -dist-cache toggle.
func TestDeterminismAgglomerateEngine(t *testing.T) {
	changes := genChanges(80)
	for _, linkage := range []Linkage{Complete, Single, Average} {
		want := dendroFingerprint(AgglomeratePool(changes, linkage, nil, nil))
		for _, w := range []int{1, 2, 8} {
			got := dendroFingerprint(AgglomerateEngine(changes, linkage, nil, parallel.New(w, nil), distcache.New(nil)))
			if got != want {
				t.Errorf("linkage=%v workers=%d: cached dendrogram differs from uncached\n got: %.120s\nwant: %.120s",
					linkage, w, got, want)
			}
		}
	}
}

// TestDeterminismEngineReuse asserts a warm engine (reused across matrices,
// as the pipeline does per class) still reproduces the cold uncached matrix.
func TestDeterminismEngineReuse(t *testing.T) {
	eng := distcache.New(nil)
	for _, n := range []int{10, 40, 80} {
		changes := genChanges(n)
		want := DistMatrixPool(changes, nil, nil)
		got := DistMatrixEngine(changes, nil, nil, eng)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("n=%d: d[%d][%d] = %v, want %v", n, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestDeterminismRenderAcrossWorkers asserts the user-facing rendering is
// byte-identical — the property the CLIs rely on.
func TestDeterminismRenderAcrossWorkers(t *testing.T) {
	changes := genChanges(70)
	label := func(i int) string { return fmt.Sprintf("c%d", i) }
	want := Render(Agglomerate(changes, Complete), label)
	for _, w := range []int{2, 8} {
		got := Render(AgglomeratePool(changes, Complete, nil, parallel.New(w, nil)), label)
		if got != want {
			t.Errorf("workers=%d: rendering differs from serial", w)
		}
	}
}
