// Package cluster implements the agglomerative hierarchical clustering of
// the paper's §4.3: usage changes are leaves, the distance metric is
// usageDist, and clusters merge bottom-up under a configurable linkage
// (complete linkage in the paper; single linkage is provided for the
// ablation benchmarks). The resulting dendrogram is what the analyst
// inspects to elicit security rules (Figure 8).
package cluster

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/change"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/textdist"
)

// Parallelization thresholds: below these sizes the chunked fan-out costs
// more than the loop it splits, so the serial path runs regardless of the
// pool's worker count. Output is identical either way (the parallel paths
// are deterministic), so the cutoffs are pure tuning knobs.
const (
	// minParallelMatrixRows gates row-chunked distance-matrix construction.
	minParallelMatrixRows = 8
	// minParallelScan gates the chunked min-pair scan and row updates of
	// one agglomeration step (an O(active²) and O(active) loop of cheap
	// float compares; only large fronts amortize the fan-out).
	minParallelScan = 64
)

// Linkage selects how inter-cluster distance is computed.
type Linkage int

// Supported linkages.
const (
	// Complete linkage: clusterDist(X, Y) = max usageDist over pairs.
	Complete Linkage = iota
	// Single linkage: min over pairs (chains clusters; ablation only).
	Single
	// Average linkage (UPGMA).
	Average
)

// Node is a dendrogram node. Leaves carry Item >= 0 (index into the input
// slice); internal nodes carry the merge Height (the linkage distance at
// which their children merged).
type Node struct {
	Item        int // leaf index, -1 for internal nodes
	Left, Right *Node
	Height      float64
	size        int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Item >= 0 }

// Size returns the number of leaves under the node.
func (n *Node) Size() int { return n.size }

// Items returns the leaf indices under the node in left-to-right order.
func (n *Node) Items() []int {
	var out []int
	var walk func(*Node)
	walk = func(x *Node) {
		if x == nil {
			return
		}
		if x.IsLeaf() {
			out = append(out, x.Item)
			return
		}
		walk(x.Left)
		walk(x.Right)
	}
	walk(n)
	return out
}

// DistMatrix computes the symmetric usageDist matrix over usage changes.
func DistMatrix(changes []change.UsageChange) [][]float64 {
	return DistMatrixObs(changes, nil)
}

// DistMatrixObs is DistMatrix with telemetry: every pairwise UsageDist
// evaluation is counted into reg (nil reg is a no-op).
func DistMatrixObs(changes []change.UsageChange, reg *obs.Registry) [][]float64 {
	return DistMatrixPool(changes, reg, nil)
}

// DistMatrixPool is DistMatrixObs over a worker pool: the strict upper
// triangle is split into row chunks balanced by pair count (row i owns
// n-1-i pairs) and computed concurrently. Each pair (i, j) is owned by
// exactly one chunk, which writes both d[i][j] and d[j][i], so chunks
// never touch the same cell and the result is identical to the serial
// matrix at any worker count. A nil or one-worker pool runs serially.
func DistMatrixPool(changes []change.UsageChange, reg *obs.Registry, p *parallel.Pool) [][]float64 {
	n := len(changes)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	fillRows := func(r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			for j := i + 1; j < n; j++ {
				dist := textdist.UsageDist(
					changes[i].Removed, changes[i].Added,
					changes[j].Removed, changes[j].Added)
				d[i][j] = dist
				d[j][i] = dist
			}
		}
	}
	if !p.Serial() && n >= minParallelMatrixRows {
		// More chunks than workers so a stray expensive row doesn't leave
		// the other workers idle at the tail.
		chunks := parallel.TriangleChunks(n, p.Workers()*4)
		p.ForEach(context.Background(), len(chunks), func(ci int) { fillRows(chunks[ci]) })
	} else {
		fillRows(parallel.Range{Lo: 0, Hi: n})
	}
	reg.Counter("cluster.dist_computations").Add(int64(n) * int64(n-1) / 2)
	return d
}

// Agglomerate builds the dendrogram over the given usage changes. It
// returns nil for empty input; a single change yields a lone leaf.
func Agglomerate(changes []change.UsageChange, linkage Linkage) *Node {
	return AgglomerateObs(changes, linkage, nil)
}

// AgglomerateObs is Agglomerate with telemetry: distance computations,
// merge iterations, and candidate-pair scans are counted into reg.
func AgglomerateObs(changes []change.UsageChange, linkage Linkage, reg *obs.Registry) *Node {
	return AgglomeratePool(changes, linkage, reg, nil)
}

// AgglomeratePool is AgglomerateObs over a worker pool: both the distance
// matrix and the per-merge scans/updates run row-chunked. The dendrogram is
// identical at any worker count (see AgglomerateMatrixPool).
func AgglomeratePool(changes []change.UsageChange, linkage Linkage, reg *obs.Registry, p *parallel.Pool) *Node {
	return AgglomerateMatrixPool(DistMatrixPool(changes, reg, p), linkage, reg, p)
}

// AgglomerateMatrix clusters from a precomputed distance matrix.
// Ties break deterministically on the smallest (i, j) pair.
func AgglomerateMatrix(dist [][]float64, linkage Linkage) *Node {
	return AgglomerateMatrixObs(dist, linkage, nil)
}

// AgglomerateMatrixObs is AgglomerateMatrix with merge-iteration telemetry.
func AgglomerateMatrixObs(dist [][]float64, linkage Linkage, reg *obs.Registry) *Node {
	return AgglomerateMatrixPool(dist, linkage, reg, nil)
}

// minCand is one chunk's best merge candidate: the smallest distance seen,
// tie-broken on the smallest (i, j) in row-major order — the same rule the
// serial scan applies, which is what makes the parallel reduction exact.
type minCand struct {
	best   float64
	bi, bj int
}

// better reports whether c beats cur under the serial scan's ordering:
// strictly smaller distance wins; an equal distance never displaces an
// earlier (row-major smaller) pair.
func (c minCand) better(cur minCand) bool { return c.bi >= 0 && c.best < cur.best }

// scanRows finds the minimum active pair with i in [r.Lo, r.Hi), scanning
// in the serial loop's row-major order.
func scanRows(d [][]float64, active []bool, r parallel.Range) minCand {
	n := len(d)
	c := minCand{best: math.MaxFloat64, bi: -1, bj: -1}
	for i := r.Lo; i < r.Hi; i++ {
		if !active[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if !active[j] {
				continue
			}
			if d[i][j] < c.best {
				c.best = d[i][j]
				c.bi, c.bj = i, j
			}
		}
	}
	return c
}

// AgglomerateMatrixPool is AgglomerateMatrixObs over a worker pool. Each
// merge iteration splits the candidate-pair scan and the Lance-Williams
// row update into row chunks. Determinism: every chunk applies the serial
// scan's strict-< tie-break, chunk results are reduced in row order (an
// equal minimum never displaces an earlier chunk's candidate), and the row
// update writes disjoint cells per k — so the merge order, heights, and
// dendrogram shape are byte-identical to the serial algorithm at any
// worker count. A nil or one-worker pool (or a small active front) runs
// the serial loops unchanged.
func AgglomerateMatrixPool(dist [][]float64, linkage Linkage, reg *obs.Registry, p *parallel.Pool) *Node {
	n := len(dist)
	if n == 0 {
		return nil
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{Item: i, size: 1}
	}
	// Working copy of the distance matrix between active clusters.
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64{}, dist[i]...)
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	par := !p.Serial() && n >= minParallelScan
	ctx := context.Background()
	remaining := n
	for remaining > 1 {
		// Find the closest active pair: chunked local minima reduced in row
		// order, or the plain serial scan below the parallel threshold.
		cand := minCand{best: math.MaxFloat64, bi: -1, bj: -1}
		if par && remaining >= minParallelScan {
			chunks := parallel.TriangleChunks(n, p.Workers()*4)
			for _, c := range parallel.Map(p, ctx, len(chunks), func(ci int) minCand {
				return scanRows(d, active, chunks[ci])
			}) {
				if c.better(cand) {
					cand = c
				}
			}
		} else {
			cand = scanRows(d, active, parallel.Range{Lo: 0, Hi: n})
		}
		bi, bj, best := cand.bi, cand.bj, cand.best
		merged := &Node{Item: -1, Left: nodes[bi], Right: nodes[bj],
			Height: best, size: nodes[bi].size + nodes[bj].size}
		// Lance-Williams update into slot bi; retire bj. Every k writes only
		// d[k][bi] and d[bi][k] — disjoint cells across k — so the chunked
		// update is race-free and order-independent.
		update := func(r parallel.Range) {
			for k := r.Lo; k < r.Hi; k++ {
				if !active[k] || k == bi || k == bj {
					continue
				}
				var nd float64
				switch linkage {
				case Complete:
					nd = math.Max(d[k][bi], d[k][bj])
				case Single:
					nd = math.Min(d[k][bi], d[k][bj])
				case Average:
					si := float64(nodes[bi].size)
					sj := float64(nodes[bj].size)
					nd = (si*d[k][bi] + sj*d[k][bj]) / (si + sj)
				}
				d[k][bi] = nd
				d[bi][k] = nd
			}
		}
		if par && remaining >= minParallelScan {
			chunks := parallel.Chunks(n, p.Workers()*2)
			p.ForEach(ctx, len(chunks), func(ci int) { update(chunks[ci]) })
		} else {
			update(parallel.Range{Lo: 0, Hi: n})
		}
		nodes[bi] = merged
		active[bj] = false
		remaining--
		reg.Counter("cluster.merges").Inc()
	}
	for i := 0; i < n; i++ {
		if active[i] {
			return nodes[i]
		}
	}
	return nil
}

// Cut slices the dendrogram at a height threshold: every maximal subtree
// whose merge height is <= threshold becomes one cluster. Clusters are
// returned largest-first (ties by smallest member index).
func (n *Node) Cut(threshold float64) [][]int {
	if n == nil {
		return nil
	}
	var clusters [][]int
	var walk func(*Node)
	walk = func(x *Node) {
		if x.IsLeaf() || x.Height <= threshold {
			clusters = append(clusters, x.Items())
			return
		}
		walk(x.Left)
		walk(x.Right)
	}
	walk(n)
	sort.SliceStable(clusters, func(i, j int) bool {
		if len(clusters[i]) != len(clusters[j]) {
			return len(clusters[i]) > len(clusters[j])
		}
		return clusters[i][0] < clusters[j][0]
	})
	return clusters
}

// Render draws an ASCII dendrogram with one leaf per line, in the style of
// the paper's Figure 8. labelFn supplies the leaf captions.
func Render(root *Node, labelFn func(i int) string) string {
	if root == nil {
		return ""
	}
	var sb strings.Builder
	var walk func(n *Node, prefix string, isLast bool)
	walk = func(n *Node, prefix string, isLast bool) {
		connector := "├─"
		childPrefix := prefix + "│ "
		if isLast {
			connector = "└─"
			childPrefix = prefix + "  "
		}
		if n.IsLeaf() {
			fmt.Fprintf(&sb, "%s%s %s\n", prefix, connector, labelFn(n.Item))
			return
		}
		fmt.Fprintf(&sb, "%s%s [h=%.3f]\n", prefix, connector, n.Height)
		walk(n.Left, childPrefix, false)
		walk(n.Right, childPrefix, true)
	}
	if root.IsLeaf() {
		return labelFn(root.Item) + "\n"
	}
	fmt.Fprintf(&sb, "[h=%.3f]\n", root.Height)
	walk(root.Left, "", false)
	walk(root.Right, "", true)
	return sb.String()
}
