package cluster

import (
	"math"
	"testing"
)

// twoBlobs builds a distance matrix with two tight groups far apart:
// items 0-2 and items 3-5.
func twoBlobs() [][]float64 {
	n := 6
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	same := func(i, j int) bool { return (i < 3) == (j < 3) }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if same(i, j) {
				d[i][j] = 0.1
			} else {
				d[i][j] = 0.9
			}
		}
	}
	return d
}

func TestSilhouetteTwoBlobs(t *testing.T) {
	d := twoBlobs()
	good := [][]int{{0, 1, 2}, {3, 4, 5}}
	bad := [][]int{{0, 1, 3}, {2, 4, 5}}
	sg := Silhouette(d, good)
	sb := Silhouette(d, bad)
	if sg <= sb {
		t.Errorf("correct partition (%v) should score above mixed (%v)", sg, sb)
	}
	if sg < 0.7 {
		t.Errorf("clean partition silhouette = %v, want high", sg)
	}
	// Expected value: a=0.1, b=0.9 → (0.9-0.1)/0.9 ≈ 0.888...
	if math.Abs(sg-8.0/9.0) > 1e-9 {
		t.Errorf("silhouette = %v, want %v", sg, 8.0/9.0)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	d := twoBlobs()
	if s := Silhouette(d, [][]int{{0, 1, 2, 3, 4, 5}}); s != 0 {
		t.Errorf("single cluster silhouette = %v", s)
	}
	allSingles := [][]int{{0}, {1}, {2}, {3}, {4}, {5}}
	if s := Silhouette(d, allSingles); s != 0 {
		t.Errorf("all-singleton silhouette = %v", s)
	}
}

func TestCutAutoFindsBlobs(t *testing.T) {
	d := twoBlobs()
	root := AgglomerateMatrix(d, Complete)
	clusters, th := CutAuto(root, d)
	if len(clusters) != 2 {
		t.Fatalf("auto cut found %d clusters (th=%v): %v", len(clusters), th, clusters)
	}
	for _, cl := range clusters {
		if len(cl) != 3 {
			t.Errorf("cluster sizes wrong: %v", clusters)
		}
		first := cl[0] < 3
		for _, i := range cl {
			if (i < 3) != first {
				t.Errorf("mixed cluster: %v", cl)
			}
		}
	}
}

func TestCutAutoThreeGroups(t *testing.T) {
	// Three groups of two with clear separation.
	n := 6
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	group := func(i int) int { return i / 2 }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if group(i) == group(j) {
				d[i][j] = 0.05
			} else {
				d[i][j] = 1.0
			}
		}
	}
	root := AgglomerateMatrix(d, Complete)
	clusters, _ := CutAuto(root, d)
	if len(clusters) != 3 {
		t.Fatalf("auto cut = %v, want 3 pairs", clusters)
	}
}

func TestCutAutoTrivialInputs(t *testing.T) {
	if cl, _ := CutAuto(nil, nil); cl != nil {
		t.Error("nil root should give nil")
	}
	leaf := &Node{Item: 0, size: 1}
	cl, _ := CutAuto(leaf, [][]float64{{0}})
	if len(cl) != 1 || cl[0][0] != 0 {
		t.Errorf("leaf cut = %v", cl)
	}
	// Two items: falls back to the sub-root cut.
	d := [][]float64{{0, 0.5}, {0.5, 0}}
	root := AgglomerateMatrix(d, Complete)
	cl, _ = CutAuto(root, d)
	if len(cl) != 2 {
		t.Errorf("two-item cut = %v", cl)
	}
}
