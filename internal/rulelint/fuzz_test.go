package rulelint

import (
	"testing"

	"repro/internal/ruledsl"
	"repro/internal/rules"
	"repro/rulepacks"
)

// FuzzRuleLint asserts the full pack pipeline is total: for any input,
// parse → compile → lint (all four passes, with the built-in and reserved
// universes loaded) never panics and always yields a well-formed report.
// Seeded from the shipped packs plus inputs aimed at each pass: unknown
// APIs (conformance), contradictions (satisfiability), built-in overlaps
// (subsumption/collision), and redundant atoms (dead constraints).
func FuzzRuleLint(f *testing.F) {
	for _, name := range rulepacks.Names() {
		f.Add(rulepacks.Files()[name])
	}
	for _, seed := range []string{
		// One defect per pass.
		`C1 | conformance | Cpher : getInstance(X) ∧ X=AES`,
		`C2 | conformance | Cipher : getInstnce(X)`,
		`S1 | unsat | Cipher : getInstance(X) ∧ X=AES ∧ X=DES`,
		`S2 | unsat | KeyGenerator : init(X) ∧ X<128 ∧ X>256`,
		`R7 | collision | Cipher : getInstance(X) ∧ X=AES`,
		`CL1 | collision | Cipher : getInstance(X) ∧ X=AES`,
		`V1 | subsumed | Cipher : getInstance(X) ∧ X=AES/ECB`,
		`D1 | dead | Cipher : getInstance(X) ∧ (X=AES ∨ X=AES)`,
		// Parse failures still lint (RL001 diagnostics).
		`B1 | broken | Cipher : getInstance(X ∧`,
		"not a pack line at all\n\x00\xff",
		"",
		// Two packs' worth of text in one input: duplicate IDs inside one
		// pack exercise the same-pack collision path.
		"A1 | a | Cipher : getInstance(X) ∧ X=AES\nA1 | a again | Cipher : getInstance(X) ∧ X=DES",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, content string) {
		pack := ruledsl.ParsePack("fuzz.rules", content)
		report := Lint([]*ruledsl.Pack{pack}, Options{
			Builtins: rules.All(),
			Reserved: rules.CryptoLint(),
		}) // any panic fails the run
		if report == nil {
			t.Fatal("Lint returned nil report")
		}
		for _, d := range report.Diags {
			if d.Code == "" || d.Pack == "" {
				t.Errorf("malformed diagnostic: %+v", d)
			}
		}
		// The load pipeline must be total too: merged sets never contain a
		// nil rule or a duplicate ID.
		res := LoadParsed([]*ruledsl.Pack{pack})
		seen := map[string]bool{}
		for _, r := range res.Active {
			if r == nil {
				t.Fatal("MergeActive produced a nil rule")
			}
			if seen[r.ID] {
				t.Errorf("MergeActive produced duplicate ID %s", r.ID)
			}
			seen[r.ID] = true
		}
	})
}
