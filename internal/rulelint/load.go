package rulelint

import (
	"os"

	"repro/internal/obs"
	"repro/internal/ruledsl"
	"repro/internal/rules"
)

// Loading is the compile → lint → register pipeline behind the -rules flag
// and the server's hot reload: read the pack files, lint everything as one
// universe against the built-ins, and merge the survivors into the active
// rule set. I/O failures are returned as errors (there is nothing to
// report against); everything semantic lands in the Report, so callers —
// CLI gate and server reload alike — decide what error findings mean.

// LoadResult is the outcome of loading a set of rule packs.
type LoadResult struct {
	// Packs are the parsed packs, in argument order.
	Packs []*ruledsl.Pack
	// Report carries the lint findings across all packs.
	Report *Report
	// Active is the merged rule set: the built-ins followed by every
	// cleanly compiled pack rule whose ID is free. Nil when no packs were
	// given — callers keep their default rule set, byte-identical.
	Active []*rules.Rule
	// Added counts the pack rules that made it into Active.
	Added int
}

// Load reads, parses, and lints rule pack files. The built-in universe is
// the 13 elicited rules; the CL1–CL5 aliases reserve their IDs but do not
// join the subsumption universe (they duplicate R-rule triggers by
// construction). Only I/O failures return an error.
func Load(paths []string) (*LoadResult, error) {
	packs := make([]*ruledsl.Pack, 0, len(paths))
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		packs = append(packs, ruledsl.ParsePack(path, string(b)))
	}
	return LoadParsed(packs), nil
}

// LoadParsed lints already-parsed packs and merges the active set; it is
// Load without the file system (tests and embedded packs).
func LoadParsed(packs []*ruledsl.Pack) *LoadResult {
	res := &LoadResult{
		Packs:  packs,
		Report: Lint(packs, Options{Builtins: rules.All(), Reserved: rules.CryptoLint()}),
	}
	if len(packs) > 0 {
		res.Active = MergeActive(rules.All(), rules.CryptoLint(), packs)
		res.Added = len(res.Active) - len(rules.All())
	}
	return res
}

// MergeActive merges pack rules into the built-in set with deterministic
// collision resolution: built-in (and reserved) IDs always win, and across
// packs the first definition of an ID wins. Rules that failed to compile
// are skipped — under -rules-lax this is how a defective pack loads "under
// protest": its broken rules drop out, the rest register.
func MergeActive(builtins, reserved []*rules.Rule, packs []*ruledsl.Pack) []*rules.Rule {
	out := make([]*rules.Rule, 0, len(builtins))
	seen := make(map[string]bool, len(builtins)+len(reserved))
	for _, b := range builtins {
		out = append(out, b)
		seen[b.ID] = true
	}
	for _, r := range reserved {
		seen[r.ID] = true
	}
	for _, p := range packs {
		for i := range p.Rules {
			pr := &p.Rules[i]
			if pr.Err != nil || pr.Rule == nil || seen[pr.ID] {
				continue
			}
			seen[pr.ID] = true
			out = append(out, pr.Rule)
		}
	}
	return out
}

// Observe folds the load into telemetry: the rulelint.* finding counters
// plus the rulepack.* registration counters.
func (r *LoadResult) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.Report.Fold(reg)
	reg.Counter("rulepack.packs").Add(int64(len(r.Packs)))
	reg.Counter("rulepack.rules").Add(int64(r.Report.Rules))
	reg.Counter("rulepack.registered").Add(int64(r.Added))
}
