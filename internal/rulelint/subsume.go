package rulelint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ruledsl"
	"repro/internal/rules"
)

// Pass 3: duplicate-ID collisions and trigger subsumption across the
// active universe (built-ins plus all loaded packs). Findings anchor at
// pack rules — built-ins are context; for pack/pack pairs the
// later-defined rule is the finding site.

// ruleAt identifies one rule in the universe.
type ruleAt struct {
	id     string
	origin string // "built-in" or pack name
	pack   *ruledsl.Pack
	pr     *ruledsl.PackRule // nil for built-ins
	syntax *ruledsl.Syntax
}

func (r ruleAt) describe() string {
	if r.pr == nil {
		return fmt.Sprintf("built-in rule %s", r.id)
	}
	return fmt.Sprintf("rule %s (%s line %d)", r.id, r.origin, r.pr.Line)
}

// universe flattens built-ins and pack rules in definition order. Built-in
// formulas are written in the DSL, so they parse into the same syntax the
// packs use; a built-in that does not parse is skipped (hand-written
// closures without DSL notation have no syntactic trigger to compare).
func universe(packs []*ruledsl.Pack, builtins []*rules.Rule) []ruleAt {
	var out []ruleAt
	for _, b := range builtins {
		ra := ruleAt{id: b.ID, origin: "built-in"}
		if syn, err := ruledsl.ParseSyntax(b.Formula); err == nil {
			ra.syntax = syn
		}
		out = append(out, ra)
	}
	for _, p := range packs {
		for i := range p.Rules {
			pr := &p.Rules[i]
			out = append(out, ruleAt{id: pr.ID, origin: p.Name, pack: p, pr: pr, syntax: pr.Syntax})
		}
	}
	return out
}

// lintCollisions reports RL010 for every rule whose ID an earlier rule
// (built-in, reserved alias, or pack) already claimed.
func (l *linter) lintCollisions(packs []*ruledsl.Pack, builtins, reserved []*rules.Rule) {
	uni := universe(packs, builtins)
	first := map[string]ruleAt{}
	for _, r := range reserved {
		first[r.ID] = ruleAt{id: r.ID, origin: "built-in"}
	}
	for _, ra := range uni {
		prev, taken := first[ra.id]
		if !taken {
			first[ra.id] = ra
			continue
		}
		if ra.pr == nil {
			continue // built-ins never collide with each other
		}
		l.add(ra.pack, ra.pr, ruledsl.Pos{Line: 1, Col: 1}, CodeIDCollision, SevError,
			"rule id %s collides with %s", ra.id, prev.describe())
	}
}

// lintSubsumption reports RL301/RL302 for pack rules whose trigger
// duplicates or implies another rule's in the universe.
func (l *linter) lintSubsumption(packs []*ruledsl.Pack, builtins []*rules.Rule) {
	uni := universe(packs, builtins)
	for i, a := range uni {
		if a.pr == nil || a.syntax == nil {
			continue // findings only anchor at parseable pack rules
		}
		for j, b := range uni {
			if i == j || b.syntax == nil || a.id == b.id {
				continue // same rule, or collision already reported
			}
			if b.pr != nil && j > i {
				continue // pack/pack pairs report at the later rule only
			}
			ab := ruleImplies(a.syntax, b.syntax)
			ba := ruleImplies(b.syntax, a.syntax)
			switch {
			case ab && ba:
				l.add(a.pack, a.pr, a.syntax.Clauses[0].Pos, CodeDuplicate, SevWarn,
					"duplicate of %s: identical trigger", b.describe())
			case ab:
				l.add(a.pack, a.pr, a.syntax.Clauses[0].Pos, CodeSubsumed, SevWarn,
					"every match of this rule is already matched by %s", b.describe())
			case ba:
				l.add(a.pack, a.pr, a.syntax.Clauses[0].Pos, CodeSubsumed, SevWarn,
					"this rule shadows %s: every match of that rule also matches this one", b.describe())
			}
		}
	}
}

// ruleImplies reports whether rule A's trigger implies rule B's: whenever
// A matches, B matches. Conservative and purely syntactic — false
// negatives are fine (no finding), false positives are not.
func ruleImplies(a, b *ruledsl.Syntax) bool {
	for _, bc := range b.Clauses {
		ok := false
		for _, ac := range a.Clauses {
			if ac.Negated != bc.Negated || ac.Class != bc.Class {
				continue
			}
			if !bc.Negated && implies(ac.Formula, bc.Formula) {
				ok = true
				break
			}
			// ¬f_a ⇒ ¬f_b iff f_b ⇒ f_a.
			if bc.Negated && implies(bc.Formula, ac.Formula) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// implies reports a ⇒ b for clause formulas, by structural rules:
// conjunctions are stronger than their parts, disjunctions weaker, plus
// atom-level implication for calls, comparisons, and prefixes.
func implies(a, b ruledsl.Formula) bool {
	if canon(a) == canon(b) {
		return true
	}
	switch bb := b.(type) {
	case ruledsl.OrExpr:
		for _, k := range bb.Kids {
			if implies(a, k) {
				return true
			}
		}
	case ruledsl.AndExpr:
		all := true
		for _, k := range bb.Kids {
			if !implies(a, k) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	switch aa := a.(type) {
	case ruledsl.AndExpr:
		for _, k := range aa.Kids {
			if implies(k, b) {
				return true
			}
		}
	case ruledsl.OrExpr:
		all := len(aa.Kids) > 0
		for _, k := range aa.Kids {
			if !implies(k, b) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return atomImplies(a, b)
}

// atomImplies covers implication between single atoms.
func atomImplies(a, b ruledsl.Formula) bool {
	switch bb := b.(type) {
	case ruledsl.CallAtom:
		aa, ok := a.(ruledsl.CallAtom)
		if !ok || aa.Method != bb.Method {
			return false
		}
		if !bb.HasArgs {
			return true // constrained call implies bare call
		}
		if !aa.HasArgs || len(aa.Args) != len(bb.Args) {
			return false
		}
		for i := range bb.Args {
			bp, ap := bb.Args[i], aa.Args[i]
			switch bp.Kind {
			case ruledsl.ArgAny:
				// matches anything
			case ruledsl.ArgVar:
				if ap.Kind != ruledsl.ArgVar || ap.Name != bp.Name {
					return false
				}
			case ruledsl.ArgLit:
				if ap.Kind != ruledsl.ArgLit ||
					ruledsl.NormLiteral(ap.Name) != ruledsl.NormLiteral(bp.Name) {
					return false
				}
			}
		}
		return true
	case ruledsl.CmpAtom:
		aa, ok := a.(ruledsl.CmpAtom)
		if !ok || aa.Var != bb.Var {
			return false
		}
		return cmpImplies(aa, bb)
	case ruledsl.StartsAtom:
		switch aa := a.(type) {
		case ruledsl.StartsAtom:
			// A longer required prefix implies a shorter one.
			return aa.Var == bb.Var &&
				strings.HasPrefix(ruledsl.NormLiteral(aa.Value), ruledsl.NormLiteral(bb.Value))
		case ruledsl.CmpAtom:
			// X=lit implies startsWith(X,p) when lit starts with p.
			return aa.Var == bb.Var && aa.Op == ruledsl.OpEq &&
				!ruledsl.IsTopLit(aa.Value) &&
				strings.HasPrefix(ruledsl.NormLiteral(aa.Value), ruledsl.NormLiteral(bb.Value))
		}
	}
	return false
}

// cmpImplies decides a ⇒ b for two comparisons on the same variable.
func cmpImplies(a, b ruledsl.CmpAtom) bool {
	an, aNum := parseNum(a.Value)
	bn, bNum := parseNum(b.Value)
	if a.Op == ruledsl.OpEq {
		switch b.Op {
		case ruledsl.OpNe:
			return ruledsl.NormLiteral(a.Value) != ruledsl.NormLiteral(b.Value) &&
				!ruledsl.IsTopLit(a.Value) && !ruledsl.IsTopLit(b.Value)
		case ruledsl.OpLt:
			return aNum && bNum && an < bn
		case ruledsl.OpLe:
			return aNum && bNum && an <= bn
		case ruledsl.OpGt:
			return aNum && bNum && an > bn
		case ruledsl.OpGe:
			return aNum && bNum && an >= bn
		}
		return false
	}
	if !aNum || !bNum {
		return false
	}
	// Normalize to inclusive bounds: X<n ≡ X≤n-1, X>n ≡ X≥n+1.
	switch {
	case (a.Op == ruledsl.OpLt || a.Op == ruledsl.OpLe) &&
		(b.Op == ruledsl.OpLt || b.Op == ruledsl.OpLe):
		aHi, bHi := an, bn
		if a.Op == ruledsl.OpLt {
			aHi--
		}
		if b.Op == ruledsl.OpLt {
			bHi--
		}
		return aHi <= bHi
	case (a.Op == ruledsl.OpGt || a.Op == ruledsl.OpGe) &&
		(b.Op == ruledsl.OpGt || b.Op == ruledsl.OpGe):
		aLo, bLo := an, bn
		if a.Op == ruledsl.OpGt {
			aLo++
		}
		if b.Op == ruledsl.OpGt {
			bLo++
		}
		return aLo >= bLo
	}
	return false
}

func parseNum(s string) (int64, bool) {
	n, err := strconv.ParseInt(s, 10, 64)
	return n, err == nil
}

// canon renders a formula to a canonical string: normalized literals,
// sorted AND/OR operand lists. Equal canons ⇒ equivalent formulas (the
// converse does not hold, which is fine for a conservative check).
func canon(f ruledsl.Formula) string {
	switch x := f.(type) {
	case ruledsl.AndExpr:
		return "and(" + canonKids(x.Kids) + ")"
	case ruledsl.OrExpr:
		return "or(" + canonKids(x.Kids) + ")"
	case ruledsl.NotExpr:
		return "not(" + canon(x.Kid) + ")"
	case ruledsl.CallAtom:
		if !x.HasArgs {
			return "call(" + x.Method + ")"
		}
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			switch a.Kind {
			case ruledsl.ArgAny:
				parts[i] = "_"
			case ruledsl.ArgVar:
				parts[i] = "$" + a.Name
			case ruledsl.ArgLit:
				parts[i] = "'" + ruledsl.NormLiteral(a.Name)
			}
		}
		return "call(" + x.Method + ";" + strings.Join(parts, ",") + ")"
	case ruledsl.CmpAtom:
		return "cmp(" + x.Var + ";" + x.Op.String() + ";" + ruledsl.NormLiteral(x.Value) + ")"
	case ruledsl.StartsAtom:
		return "sw(" + x.Var + ";" + ruledsl.NormLiteral(x.Value) + ")"
	case ruledsl.CtxAtom:
		if x.HasOp {
			return fmt.Sprintf("ctx(%s;%s;%d)", x.Name, x.Op, x.Num)
		}
		return "ctx(" + x.Name + ")"
	}
	return "?"
}

func canonKids(kids []ruledsl.Formula) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = canon(k)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
