// Package rulelint is a semantic analyzer for compiled rule packs. User
// rule packs are untrusted input: a typo'd method name or a contradictory
// constraint produces a rule that silently checks nothing. rulelint
// validates every rule against the internal/cryptoapi model and against
// the other rules in scope, in four passes:
//
//  1. API conformance — call atoms must name a known class/method with a
//     modeled arity, and argument constraints must be type-compatible
//     with the modeled parameter ("did you mean" suggestions via
//     textdist).
//  2. Satisfiability — per-clause constraint conjunctions that can never
//     hold (contradictory equalities, empty numeric ranges, prefix tests
//     excluding all modeled algorithm strings), via a small abstract
//     constraint evaluator over the base domains.
//  3. Subsumption/overlap — pairwise trigger implication across
//     built-ins and loaded packs, plus duplicate rule-ID collisions.
//  4. Dead constraints — constraints on variables no call atom binds.
//
// Diagnostics carry stable RLxxx codes, error/warn severity, and
// pack-absolute line:col positions, and render as text or JSON.
package rulelint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Severity of a finding. Errors block rule registration; warnings load
// under protest (and fail CI for the shipped packs).
type Severity string

// The two severities.
const (
	SevError Severity = "error"
	SevWarn  Severity = "warn"
)

// Diagnostic codes. Codes are stable across releases: tooling may match
// on them, so numbers are never reused.
const (
	CodeParse        = "RL001" // formula does not parse/compile
	CodeMalformed    = "RL002" // structurally malformed pack line
	CodeIDCollision  = "RL010" // rule id collides with built-in or pack rule
	CodeUnknownClass = "RL101" // clause names an unmodeled class
	CodeUnknownMeth  = "RL102" // call atom names an unmodeled method
	CodeWrongArity   = "RL103" // no overload with the atom's arity
	CodeTypeMismatch = "RL104" // constraint type-incompatible with parameter
	CodeContradict   = "RL201" // contradictory constraint conjunction
	CodeEmptyRange   = "RL202" // empty numeric range
	CodeBadPrefix    = "RL203" // prefix excludes all modeled algorithm strings
	CodeDeadBranch   = "RL204" // unsatisfiable disjunct
	CodeDuplicate    = "RL301" // duplicate of another rule
	CodeSubsumed     = "RL302" // trigger implies another rule's
	CodeUnboundVar   = "RL401" // constraint on a variable no atom binds
	CodeDeadLiteral  = "RL402" // literal arg pattern no parameter can match
)

// Diag is one finding, positioned against the pack source.
type Diag struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Pack     string   `json:"pack,omitempty"`
	RuleID   string   `json:"rule,omitempty"`
	Line     int      `json:"line,omitempty"`
	Col      int      `json:"col,omitempty"`
	Msg      string   `json:"msg"`
}

// String renders the conventional compiler-diagnostic form:
//
//	pack.rules:4:31: error RL102: rule P101: unknown method "getInstnce"
func (d Diag) String() string {
	var b strings.Builder
	if d.Pack != "" {
		fmt.Fprintf(&b, "%s:", d.Pack)
	}
	if d.Line > 0 {
		fmt.Fprintf(&b, "%d:", d.Line)
		if d.Col > 0 {
			fmt.Fprintf(&b, "%d:", d.Col)
		}
	}
	if b.Len() > 0 {
		b.WriteByte(' ')
	}
	fmt.Fprintf(&b, "%s %s: ", d.Severity, d.Code)
	if d.RuleID != "" {
		fmt.Fprintf(&b, "rule %s: ", d.RuleID)
	}
	b.WriteString(d.Msg)
	return b.String()
}

// Report is the result of linting a set of packs.
type Report struct {
	Packs int    `json:"packs"`
	Rules int    `json:"rules"`
	Diags []Diag `json:"diagnostics"`
}

// Errors counts error-level findings.
func (r *Report) Errors() int { return r.count(SevError) }

// Warnings counts warn-level findings.
func (r *Report) Warnings() int { return r.count(SevWarn) }

func (r *Report) count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether any finding is error-level.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

// HasFindings reports whether anything at all was found.
func (r *Report) HasFindings() bool { return len(r.Diags) > 0 }

// Render produces the text form: one diagnostic per line followed by a
// summary line. Deterministic: diagnostics are sorted.
func (r *Report) Render() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "rulelint: %d pack(s), %d rule(s): %d error(s), %d warning(s)\n",
		r.Packs, r.Rules, r.Errors(), r.Warnings())
	return b.String()
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Fold records the report into rulelint.* telemetry counters.
func (r *Report) Fold(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("rulelint.packs").Add(int64(r.Packs))
	reg.Counter("rulelint.rules").Add(int64(r.Rules))
	reg.Counter("rulelint.findings").Add(int64(len(r.Diags)))
	reg.Counter("rulelint.errors").Add(int64(r.Errors()))
	reg.Counter("rulelint.warnings").Add(int64(r.Warnings()))
	for _, d := range r.Diags {
		reg.Counter("rulelint.findings." + d.Code).Inc()
	}
}

// sortDiags orders findings for deterministic output: by pack, position,
// code, then message.
func (r *Report) sortDiags() {
	sort.Slice(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Pack != b.Pack {
			return a.Pack < b.Pack
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}
