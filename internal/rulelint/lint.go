package rulelint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cryptoapi"
	"repro/internal/ruledsl"
	"repro/internal/rules"
	"repro/internal/textdist"
)

// Options configures a lint run.
type Options struct {
	// Builtins is the active built-in rule universe: the target of
	// ID-collision checks and part of the subsumption universe. Usually
	// rules.All().
	Builtins []*rules.Rule
	// Reserved holds additional rules whose IDs a pack may not claim but
	// which stay out of the subsumption universe — the CL1–CL5 aliases,
	// which duplicate R-rule triggers by construction and would otherwise
	// double every subsumption finding.
	Reserved []*rules.Rule
}

// Lint analyzes rule packs. Diagnostics are anchored at pack rules only —
// built-ins are trusted context, never findings.
func Lint(packs []*ruledsl.Pack, opts Options) *Report {
	rep := &Report{Packs: len(packs)}
	l := &linter{rep: rep}

	// Structural and per-rule passes.
	for _, p := range packs {
		for _, le := range p.LineErrs {
			rep.Diags = append(rep.Diags, Diag{
				Code: CodeMalformed, Severity: SevError,
				Pack: p.Name, Line: le.Line, Msg: le.Msg,
			})
		}
		for i := range p.Rules {
			pr := &p.Rules[i]
			rep.Rules++
			if pr.Err != nil {
				rep.Diags = append(rep.Diags, l.parseDiag(p, pr))
				continue
			}
			l.lintRule(p, pr)
		}
	}

	// Cross-rule passes: ID collisions, then subsumption/overlap.
	l.lintCollisions(packs, opts.Builtins, opts.Reserved)
	l.lintSubsumption(packs, opts.Builtins)

	rep.sortDiags()
	return rep
}

type linter struct {
	rep *Report
}

// add appends a finding positioned at a formula-relative Pos of a pack
// rule, translating it to a pack-absolute line:col.
func (l *linter) add(p *ruledsl.Pack, pr *ruledsl.PackRule, pos ruledsl.Pos, code string, sev Severity, format string, args ...any) {
	line, col := packPos(pr, pos)
	l.rep.Diags = append(l.rep.Diags, Diag{
		Code: code, Severity: sev, Pack: p.Name, RuleID: pr.ID,
		Line: line, Col: col, Msg: fmt.Sprintf(format, args...),
	})
}

// packPos translates a position within a rule formula into the pack file:
// formulas are single-line, so the pack line is the rule's and the column
// shifts by where the formula starts.
func packPos(pr *ruledsl.PackRule, pos ruledsl.Pos) (line, col int) {
	if pos.Line <= 1 {
		return pr.Line, pr.FormulaCol + pos.Col - 1
	}
	return pr.Line + pos.Line - 1, pos.Col
}

// parseDiag converts a PackRule parse/compile error into an RL001 finding
// at the offending token.
func (l *linter) parseDiag(p *ruledsl.Pack, pr *ruledsl.PackRule) Diag {
	d := Diag{
		Code: CodeParse, Severity: SevError, Pack: p.Name, RuleID: pr.ID,
		Line: pr.Line, Col: pr.FormulaCol,
		Msg: pr.Err.Error(),
	}
	var pe *ruledsl.ParseError
	if asParseError(pr.Err, &pe) {
		d.Line, d.Col = packPos(pr, ruledsl.Pos{Line: pe.Line, Col: pe.Col})
		d.Msg = pe.Msg
	}
	return d
}

func asParseError(err error, target **ruledsl.ParseError) bool {
	for err != nil {
		if pe, ok := err.(*ruledsl.ParseError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// ---------------------------------------------------------------------------
// Pass 1+4: API conformance and dead constraints, per rule
// ---------------------------------------------------------------------------

// varInfo accumulates what the rule does with one variable across all its
// clauses: the modeled parameter types it binds at, and the constraints
// applied to it.
type varInfo struct {
	bindTypes map[string]bool // modeled param types at ArgVar positions
	bindPos   ruledsl.Pos     // first binding site
	cmps      []ruledsl.CmpAtom
	starts    []ruledsl.StartsAtom
}

func (l *linter) lintRule(p *ruledsl.Pack, pr *ruledsl.PackRule) {
	vars := map[string]*varInfo{}
	varOf := func(name string) *varInfo {
		vi := vars[name]
		if vi == nil {
			vi = &varInfo{bindTypes: map[string]bool{}}
			vars[name] = vi
		}
		return vi
	}

	for _, cl := range pr.Syntax.Clauses {
		classKnown := l.checkClass(p, pr, cl)
		walkFormula(cl.Formula, func(f ruledsl.Formula) {
			switch a := f.(type) {
			case ruledsl.CallAtom:
				l.checkCall(p, pr, cl, a, classKnown, varOf)
			case ruledsl.CmpAtom:
				varOf(a.Var).cmps = append(varOf(a.Var).cmps, a)
			case ruledsl.StartsAtom:
				varOf(a.Var).starts = append(varOf(a.Var).starts, a)
			}
		})
	}

	// Pass 4: constraints on variables no call atom binds, and constraint
	// kinds no binding position can produce.
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		l.checkVar(p, pr, name, vars[name])
	}

	// Pass 2: satisfiability of the rule's positive trigger.
	l.lintSat(p, pr)
}

// checkClass validates the clause's class name; returns whether it is
// modeled (method checks are skipped for unknown classes).
func (l *linter) checkClass(p *ruledsl.Pack, pr *ruledsl.PackRule, cl ruledsl.ClauseSyntax) bool {
	if cryptoapi.IsAPIClass(cl.Class) {
		return true
	}
	msg := fmt.Sprintf("unknown API class %q", cl.Class)
	if s := suggest(cl.Class, cryptoapi.AllClasses()); s != "" {
		msg += fmt.Sprintf(" (did you mean %q?)", s)
	}
	l.add(p, pr, cl.Pos, CodeUnknownClass, SevError, "%s", msg)
	return false
}

// checkCall validates one call atom against the modeled API and records
// variable bindings.
func (l *linter) checkCall(p *ruledsl.Pack, pr *ruledsl.PackRule, cl ruledsl.ClauseSyntax, a ruledsl.CallAtom, classKnown bool, varOf func(string) *varInfo) {
	if !classKnown {
		return
	}
	var named []cryptoapi.MethodSig
	for _, m := range cryptoapi.MethodsOf(cl.Class) {
		if m.Name == a.Method {
			named = append(named, m)
		}
	}
	if len(named) == 0 {
		msg := fmt.Sprintf("class %s has no modeled method %q", cl.Class, a.Method)
		var names []string
		seen := map[string]bool{}
		for _, m := range cryptoapi.MethodsOf(cl.Class) {
			if !seen[m.Name] {
				seen[m.Name] = true
				names = append(names, m.Name)
			}
		}
		if s := suggest(a.Method, names); s != "" {
			msg += fmt.Sprintf(" (did you mean %q?)", s)
		}
		l.add(p, pr, a.Pos, CodeUnknownMeth, SevError, "%s", msg)
		return
	}
	if !a.HasArgs {
		return // bare atom matches any overload
	}
	var sig cryptoapi.MethodSig
	found := false
	for _, m := range named {
		if len(m.Params) == len(a.Args) {
			sig, found = m, true
			break
		}
	}
	if !found {
		arities := make([]string, 0, len(named))
		seen := map[int]bool{}
		for _, m := range named {
			if !seen[len(m.Params)] {
				seen[len(m.Params)] = true
				arities = append(arities, fmt.Sprint(len(m.Params)))
			}
		}
		sort.Strings(arities)
		l.add(p, pr, a.Pos, CodeWrongArity, SevError,
			"%s.%s has no %d-argument overload (modeled arities: %s)",
			cl.Class, a.Method, len(a.Args), strings.Join(arities, ", "))
		return
	}
	for i, ap := range a.Args {
		pt := sig.Params[i]
		switch ap.Kind {
		case ruledsl.ArgVar:
			vi := varOf(ap.Name)
			if len(vi.bindTypes) == 0 {
				vi.bindPos = ap.Pos
			}
			vi.bindTypes[pt] = true
		case ruledsl.ArgLit:
			if !literalMatchesType(ap.Name, pt) {
				l.add(p, pr, ap.Pos, CodeDeadLiteral, SevWarn,
					"literal %q can never match parameter %d of %s.%s (type %s)",
					ap.Name, i+1, cl.Class, a.Method, pt)
			}
		}
	}
}

// checkVar applies pass-4 dead-constraint detection and the pass-1
// constraint/parameter type-compatibility check for one variable.
func (l *linter) checkVar(p *ruledsl.Pack, pr *ruledsl.PackRule, name string, vi *varInfo) {
	if len(vi.cmps) == 0 && len(vi.starts) == 0 {
		return // pure binding, nothing to check
	}
	if len(vi.bindTypes) == 0 {
		pos := firstConstraintPos(vi)
		l.add(p, pr, pos, CodeUnboundVar, SevError,
			"variable %s is constrained but never bound by a call atom", name)
		return
	}
	for _, c := range vi.cmps {
		if c.Op.IsOrdered() {
			if !isNumericLiteral(c.Value) {
				l.add(p, pr, c.Pos, CodeTypeMismatch, SevError,
					"ordered comparison %s%s%s against non-numeric literal", name, c.Op, c.Value)
				continue
			}
			if !anyType(vi.bindTypes, isNumericParam) {
				l.add(p, pr, c.Pos, CodeTypeMismatch, SevError,
					"numeric comparison %s%s%s but %s only binds at %s parameters",
					name, c.Op, c.Value, name, typeList(vi.bindTypes))
			}
			continue
		}
		// Equality/inequality: a ⊤-literal tests constancy and fits any
		// type; numeric literals fit numeric parameters and Strings
		// (algorithm strings can be numerals); symbolic int constants fit
		// int parameters. A plain string literal can only ever equal a
		// String-typed constant.
		if ruledsl.IsTopLit(c.Value) {
			continue
		}
		ok := anyType(vi.bindTypes, func(t string) bool {
			return literalMatchesType(c.Value, t)
		})
		if !ok {
			l.add(p, pr, c.Pos, CodeTypeMismatch, SevError,
				"constraint %s%s%s can never hold: %s only binds at %s parameters",
				name, c.Op, c.Value, name, typeList(vi.bindTypes))
		}
	}
	for _, s := range vi.starts {
		if !anyType(vi.bindTypes, isStringParam) {
			l.add(p, pr, s.Pos, CodeTypeMismatch, SevError,
				"startsWith(%s,%s) but %s only binds at %s parameters",
				name, s.Value, name, typeList(vi.bindTypes))
		}
	}
}

func firstConstraintPos(vi *varInfo) ruledsl.Pos {
	pos := ruledsl.Pos{Line: 1 << 30}
	for _, c := range vi.cmps {
		if less(c.Pos, pos) {
			pos = c.Pos
		}
	}
	for _, s := range vi.starts {
		if less(s.Pos, pos) {
			pos = s.Pos
		}
	}
	return pos
}

func less(a, b ruledsl.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// literalMatchesType reports whether a rule literal could equal a
// constant of the modeled parameter type.
func literalMatchesType(lit, paramType string) bool {
	if ruledsl.IsTopLit(lit) {
		return true
	}
	if isNumericLiteral(lit) {
		// Numbers compare against int-like params and algorithm strings.
		return isNumericParam(paramType) || isStringParam(paramType)
	}
	if cryptoapi.IsSymbolicIntConstant(lit) {
		return isNumericParam(paramType) || isStringParam(paramType)
	}
	return isStringParam(paramType)
}

func isNumericParam(t string) bool { return t == "int" || t == "long" }
func isStringParam(t string) bool  { return t == "String" }

func isNumericLiteral(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func anyType(types map[string]bool, pred func(string) bool) bool {
	for t := range types {
		if pred(t) {
			return true
		}
	}
	return false
}

func typeList(types map[string]bool) string {
	out := make([]string, 0, len(types))
	for t := range types {
		out = append(out, t)
	}
	sort.Strings(out)
	return strings.Join(out, "/")
}

// suggest returns the nearest candidate within an edit distance budget —
// the "did you mean" half of pass 1.
func suggest(got string, candidates []string) string {
	best, bestDist := "", 4
	for _, c := range candidates {
		if c == got {
			continue
		}
		d := textdist.Levenshtein([]rune(got), []rune(c))
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	if bestDist > 3 || bestDist >= len([]rune(got)) {
		return ""
	}
	return best
}

// walkFormula visits every node of a formula tree, atoms included.
func walkFormula(f ruledsl.Formula, visit func(ruledsl.Formula)) {
	if f == nil {
		return
	}
	visit(f)
	switch x := f.(type) {
	case ruledsl.AndExpr:
		for _, k := range x.Kids {
			walkFormula(k, visit)
		}
	case ruledsl.OrExpr:
		for _, k := range x.Kids {
			walkFormula(k, visit)
		}
	case ruledsl.NotExpr:
		walkFormula(x.Kid, visit)
	}
}
