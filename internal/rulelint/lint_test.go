package rulelint

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/ruledsl"
	"repro/internal/rules"
)

func lintSrc(t *testing.T, name, src string) *Report {
	t.Helper()
	pack := ruledsl.ParsePack(name, src)
	return Lint([]*ruledsl.Pack{pack}, Options{Builtins: rules.All()})
}

// TestDefectivePackGolden pins the full rendered diagnostics — codes,
// severities, and pack-absolute line:col positions — for the seeded
// defect taxonomy: unknown class/method, wrong arity, type mismatch,
// unsatisfiable conjunction, subsumed/duplicate rules, ID collision,
// unbound variables, and structural/parse failures.
func TestDefectivePackGolden(t *testing.T) {
	src := `# defective pack
D1 | unknown class | Ciphr : getInstance(X)
D2 | unknown method | Cipher : getInstnce(X)
D3 | wrong arity | Cipher : init(X)
D4 | type mismatch | Cipher : init(X,_) ∧ startsWith(X,AES)
D5 | unsat | SecretKeySpec : <init>(X,Y) ∧ Y=AES ∧ Y=DES
D6 | empty range | PBEKeySpec : <init>(_,_,_,X) ∧ X>256 ∧ X<128
D7 | bad prefix | Cipher : getInstance(X) ∧ startsWith(X,ZES)
D8 | dead disjunct | Cipher : getInstance(X) ∧ (X=RC5 ∨ (X=DES ∧ X=RC2))
R7 | collision | Mac : init(_)
D9 | duplicate | MessageDigest : getInstance(X) ∧ X=SHA-1
D10 | subsumed | Cipher : getInstance(X) ∧ X=AES/ECB
D11 | unbound | Cipher : getInstance(_) ∧ Y=AES
D12 | dead literal | Cipher : init(AES,_)
bad line
D13 | parse error | Cipher : getInstance(X) ∧ X=
`
	rep := lintSrc(t, "defective.rules", src)
	want := `defective.rules:2:22: error RL101: rule D1: unknown API class "Ciphr" (did you mean "Cipher"?)
defective.rules:3:32: error RL102: rule D2: class Cipher has no modeled method "getInstnce" (did you mean "getInstance"?)
defective.rules:4:29: error RL103: rule D3: Cipher.init has no 1-argument overload (modeled arities: 2, 3, 4)
defective.rules:5:43: error RL104: rule D4: startsWith(X,AES) but X only binds at int parameters
defective.rules:6:52: error RL201: rule D5: clause SecretKeySpec can never match: Y=DES contradicts Y=AES
defective.rules:7:59: error RL202: rule D6: clause PBEKeySpec can never match: numeric range for X is empty (257 ≤ X ≤ 127)
defective.rules:8:45: warn RL203: rule D7: prefix "ZES" matches no modeled algorithm string
defective.rules:9:66: warn RL204: rule D8: disjunct {X=DES ∧ X=RC2} can never match: X=RC2 contradicts X=DES
defective.rules:10:18: error RL010: rule R7: rule id R7 collides with built-in rule R7
defective.rules:11:18: warn RL301: rule D9: duplicate of built-in rule R1: identical trigger
defective.rules:12:18: warn RL302: rule D10: every match of this rule is already matched by built-in rule R7
defective.rules:13:43: error RL401: rule D11: variable Y is constrained but never bound by a call atom
defective.rules:14:36: warn RL402: rule D12: literal "AES" can never match parameter 1 of Cipher.init (type int)
defective.rules:15: error RL002: want 'id | description | formula', got "bad line"
defective.rules:16:49: error RL001: rule D13: expected literal, found EOF
rulelint: 1 pack(s), 14 rule(s): 10 error(s), 5 warning(s)
`
	if got := rep.Render(); got != want {
		t.Errorf("rendered diagnostics mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if !rep.HasErrors() {
		t.Error("HasErrors = false")
	}
}

// TestDiagJSONGolden pins the JSON rendering of a single finding.
func TestDiagJSONGolden(t *testing.T) {
	rep := lintSrc(t, "p.rules", "B1 | bad | Cipher : getInstnce(X)\n")
	j, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "packs": 1,
  "rules": 1,
  "diagnostics": [
    {
      "code": "RL102",
      "severity": "error",
      "pack": "p.rules",
      "rule": "B1",
      "line": 1,
      "col": 21,
      "msg": "class Cipher has no modeled method \"getInstnce\" (did you mean \"getInstance\"?)"
    }
  ]
}`
	if string(j) != want {
		t.Errorf("JSON mismatch:\n--- got ---\n%s\n--- want ---\n%s", j, want)
	}
}

// TestCleanPack: a well-formed pack over the extended surface produces no
// findings at all.
func TestCleanPack(t *testing.T) {
	src := `T1 | weak TLS | SSLContext : getInstance(X) ∧ (X=SSL ∨ X=SSLv3)
T2 | short sym key | KeyGenerator : init(X) ∧ X<128
T3 | hostname off | HttpsURLConnection : setDefaultHostnameVerifier(_)
T4 | const store pw | KeyStore : load(_,X) ∧ X≠⊤char[]
`
	rep := lintSrc(t, "good.rules", src)
	if rep.HasFindings() {
		t.Errorf("clean pack produced findings:\n%s", rep.Render())
	}
	if rep.Rules != 4 || rep.Packs != 1 {
		t.Errorf("Rules=%d Packs=%d", rep.Rules, rep.Packs)
	}
}

// TestBuiltinsSelfConsistent: linting zero packs against the built-ins
// finds nothing (built-ins are never findings), and every built-in
// formula parses into the syntax the subsumption pass compares.
func TestBuiltinsSelfConsistent(t *testing.T) {
	rep := Lint(nil, Options{Builtins: rules.All()})
	if rep.HasFindings() {
		t.Errorf("findings with no packs:\n%s", rep.Render())
	}
	for _, r := range rules.All() {
		if _, err := ruledsl.ParseSyntax(r.Formula); err != nil {
			t.Errorf("built-in %s formula does not parse: %v", r.ID, err)
		}
	}
}

func TestImplication(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		// Conjunction stronger than its parts.
		{"Cipher : getInstance(X) ∧ X=AES", "Cipher : getInstance(X)", true},
		{"Cipher : getInstance(X)", "Cipher : getInstance(X) ∧ X=AES", false},
		// Disjunction weaker.
		{"Cipher : getInstance(X) ∧ X=AES", "Cipher : getInstance(X) ∧ (X=AES ∨ X=DES)", true},
		{"Cipher : getInstance(X) ∧ (X=AES ∨ X=DES)", "Cipher : getInstance(X) ∧ X=AES", false},
		// Numeric bound widening.
		{"PBEKeySpec : <init>(_,_,X,_) ∧ X<500", "PBEKeySpec : <init>(_,_,X,_) ∧ X<1000", true},
		{"PBEKeySpec : <init>(_,_,X,_) ∧ X<1000", "PBEKeySpec : <init>(_,_,X,_) ∧ X<500", false},
		{"PBEKeySpec : <init>(_,_,X,_) ∧ X≤999", "PBEKeySpec : <init>(_,_,X,_) ∧ X<1000", true},
		// Equality implies prefix.
		{"Cipher : getInstance(X) ∧ X=AES/ECB", "Cipher : getInstance(X) ∧ startsWith(X,AES)", true},
		// Longer prefix implies shorter.
		{"Cipher : getInstance(X) ∧ startsWith(X,AES/ECB)", "Cipher : getInstance(X) ∧ startsWith(X,AES)", true},
		{"Cipher : getInstance(X) ∧ startsWith(X,AES)", "Cipher : getInstance(X) ∧ startsWith(X,AES/ECB)", false},
		// Constrained call implies bare call.
		{"SecureRandom : setSeed(X)", "SecureRandom : setSeed", true},
		// Different classes never imply.
		{"Cipher : getInstance(X) ∧ X=DES", "Mac : getInstance(X) ∧ X=DES", false},
		// Normalized literals: SHA-1 == SHA1.
		{"MessageDigest : getInstance(X) ∧ X=SHA1", "MessageDigest : getInstance(X) ∧ X=SHA-1", true},
	}
	for _, c := range cases {
		sa, err := ruledsl.ParseSyntax(c.a)
		if err != nil {
			t.Fatalf("parse %q: %v", c.a, err)
		}
		sb, err := ruledsl.ParseSyntax(c.b)
		if err != nil {
			t.Fatalf("parse %q: %v", c.b, err)
		}
		if got := ruleImplies(sa, sb); got != c.want {
			t.Errorf("implies(%q, %q) = %t, want %t", c.a, c.b, got, c.want)
		}
	}
}

func TestTelemetryFold(t *testing.T) {
	rep := lintSrc(t, "p.rules", "B1 | bad | Cipher : getInstnce(X)\nB2 | ok | Cipher : getInstance(X) ∧ startsWith(X,QQQ)\n")
	reg := obs.NewRegistry()
	rep.Fold(reg)
	checks := map[string]int64{
		"rulelint.packs":          1,
		"rulelint.rules":          2,
		"rulelint.findings":       2,
		"rulelint.errors":         1,
		"rulelint.warnings":       1,
		"rulelint.findings.RL102": 1,
		"rulelint.findings.RL203": 1,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestLaxDowngrade-adjacent helper behavior: the report distinguishes
// errors from warnings so the loader can downgrade.
func TestSeverityCounts(t *testing.T) {
	rep := lintSrc(t, "p.rules", "B1 | warn only | Cipher : getInstance(X) ∧ startsWith(X,QQQ)\n")
	if rep.HasErrors() || rep.Warnings() != 1 {
		t.Errorf("errors=%d warnings=%d, want 0/1", rep.Errors(), rep.Warnings())
	}
	if !strings.Contains(rep.Render(), "warn RL203") {
		t.Errorf("render missing warn RL203:\n%s", rep.Render())
	}
}
