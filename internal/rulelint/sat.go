package rulelint

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/cryptoapi"
	"repro/internal/ruledsl"
)

// Pass 2: satisfiability. Each clause formula is expanded to disjunctive
// normal form over its comparison/startsWith literals (call and context
// atoms are abstracted to ⊤ — satisfiability of the constraint part is
// what is decidable statically). Each disjunct's conjunction is fed to an
// abstract evaluator that tracks, per variable, the base-domain facts the
// constraints pin: an exact string/symbol, excluded values, a numeric
// interval, and required prefixes. An empty meet is a contradiction.

// cLit is one constraint literal of a DNF disjunct.
type cLit struct {
	isStarts bool
	negated  bool // only for startsWith under ¬
	v        ruledsl.CmpAtom
	s        ruledsl.StartsAtom
}

func (c cLit) String() string {
	if c.isStarts {
		if c.negated {
			return fmt.Sprintf("¬startsWith(%s,%s)", c.s.Var, c.s.Value)
		}
		return fmt.Sprintf("startsWith(%s,%s)", c.s.Var, c.s.Value)
	}
	return fmt.Sprintf("%s%s%s", c.v.Var, c.v.Op, c.v.Value)
}

// lintSat runs the satisfiability pass over one rule.
func (l *linter) lintSat(p *ruledsl.Pack, pr *ruledsl.PackRule) {
	for _, cl := range pr.Syntax.Clauses {
		if cl.Negated {
			continue // the trigger is the positive part
		}
		// RL203: prefix tests no modeled algorithm string can pass are
		// suspicious whatever the rest of the formula does.
		walkFormula(cl.Formula, func(f ruledsl.Formula) {
			if s, ok := f.(ruledsl.StartsAtom); ok {
				if !cryptoapi.SomeKnownStringHasPrefix(s.Value) {
					l.add(p, pr, s.Pos, CodeBadPrefix, SevWarn,
						"prefix %q matches no modeled algorithm string", s.Value)
				}
			}
		})

		disjuncts := dnf(cl.Formula, false)
		if len(disjuncts) == 0 {
			continue
		}
		type deadDisjunct struct {
			conj   []cLit
			reason satReason
		}
		var dead []deadDisjunct
		for _, conj := range disjuncts {
			if r := unsat(conj); r.why != "" {
				dead = append(dead, deadDisjunct{conj, r})
			}
		}
		if len(dead) == len(disjuncts) {
			// Whole clause unsatisfiable: error. Empty numeric ranges get
			// their own code — they are overwhelmingly threshold typos.
			r := dead[0].reason
			code := CodeContradict
			if r.emptyRange {
				code = CodeEmptyRange
			}
			l.add(p, pr, r.pos, code, SevError,
				"clause %s can never match: %s", cl.Class, r.why)
			continue
		}
		for _, d := range dead {
			l.add(p, pr, d.reason.pos, CodeDeadBranch, SevWarn,
				"disjunct {%s} can never match: %s", renderConj(d.conj), d.reason.why)
		}
	}
}

func renderConj(conj []cLit) string {
	parts := make([]string, len(conj))
	for i, c := range conj {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}

// dnf expands a formula into disjuncts of constraint literals. Call and
// context atoms contribute no constraints (they are ⊤ for this analysis);
// negation distributes by De Morgan and flips comparison operators.
func dnf(f ruledsl.Formula, neg bool) [][]cLit {
	switch x := f.(type) {
	case ruledsl.AndExpr:
		if neg { // ¬(a ∧ b) = ¬a ∨ ¬b
			var out [][]cLit
			for _, k := range x.Kids {
				out = append(out, dnf(k, true)...)
			}
			return out
		}
		out := [][]cLit{{}}
		for _, k := range x.Kids {
			out = cross(out, dnf(k, false))
		}
		return out
	case ruledsl.OrExpr:
		if neg { // ¬(a ∨ b) = ¬a ∧ ¬b
			out := [][]cLit{{}}
			for _, k := range x.Kids {
				out = cross(out, dnf(k, true))
			}
			return out
		}
		var out [][]cLit
		for _, k := range x.Kids {
			out = append(out, dnf(k, false)...)
		}
		return out
	case ruledsl.NotExpr:
		return dnf(x.Kid, !neg)
	case ruledsl.CmpAtom:
		if neg {
			x = negateCmp(x)
		}
		return [][]cLit{{{v: x}}}
	case ruledsl.StartsAtom:
		return [][]cLit{{{isStarts: true, negated: neg, s: x}}}
	}
	// CallAtom, CtxAtom, nil: unconstrained.
	return [][]cLit{{}}
}

func cross(a, b [][]cLit) [][]cLit {
	out := make([][]cLit, 0, len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			conj := make([]cLit, 0, len(x)+len(y))
			conj = append(conj, x...)
			conj = append(conj, y...)
			out = append(out, conj)
		}
	}
	return out
}

func negateCmp(c ruledsl.CmpAtom) ruledsl.CmpAtom {
	switch c.Op {
	case ruledsl.OpEq:
		c.Op = ruledsl.OpNe
	case ruledsl.OpNe:
		c.Op = ruledsl.OpEq
	case ruledsl.OpLt:
		c.Op = ruledsl.OpGe
	case ruledsl.OpLe:
		c.Op = ruledsl.OpGt
	case ruledsl.OpGt:
		c.Op = ruledsl.OpLe
	case ruledsl.OpGe:
		c.Op = ruledsl.OpLt
	}
	return c
}

// satReason explains why a conjunction is unsatisfiable.
type satReason struct {
	why        string
	pos        ruledsl.Pos
	emptyRange bool
}

// varFacts is the abstract value of one variable under a conjunction: the
// meet of everything the constraints assert, over the base domains the
// interpreter uses (string/symbol constants and integer constants).
type varFacts struct {
	eq       string // normalized pinned value, "" if unpinned
	eqRaw    string
	eqPos    ruledsl.Pos
	ne       map[string]bool // normalized excluded values
	lo, hi   int64           // inclusive numeric interval
	loSet    bool
	hiSet    bool
	rangePos ruledsl.Pos
	prefixes []ruledsl.StartsAtom
}

// unsat evaluates a conjunction of constraint literals, returning a
// non-empty reason when the meet is empty.
func unsat(conj []cLit) satReason {
	vars := map[string]*varFacts{}
	get := func(name string) *varFacts {
		vf := vars[name]
		if vf == nil {
			vf = &varFacts{lo: math.MinInt64, hi: math.MaxInt64, ne: map[string]bool{}}
			vars[name] = vf
		}
		return vf
	}

	for _, c := range conj {
		if c.isStarts {
			if !c.negated {
				get(c.s.Var).prefixes = append(get(c.s.Var).prefixes, c.s)
			}
			// ¬startsWith excludes a set we cannot enumerate; ignored.
			continue
		}
		a := c.v
		if ruledsl.IsTopLit(a.Value) {
			continue // constancy tests never conflict statically
		}
		vf := get(a.Var)
		nv := ruledsl.NormLiteral(a.Value)
		switch a.Op {
		case ruledsl.OpEq:
			if vf.eq != "" && vf.eq != nv {
				return satReason{
					why: fmt.Sprintf("%s=%s contradicts %s=%s", a.Var, a.Value, a.Var, vf.eqRaw),
					pos: a.Pos,
				}
			}
			vf.eq, vf.eqRaw, vf.eqPos = nv, a.Value, a.Pos
		case ruledsl.OpNe:
			vf.ne[nv] = true
		default: // ordered
			n, err := strconv.ParseInt(a.Value, 10, 64)
			if err != nil {
				continue // RL104 already reported non-numeric ordered cmp
			}
			switch a.Op {
			case ruledsl.OpLt:
				vf.narrowHi(n-1, a.Pos)
			case ruledsl.OpLe:
				vf.narrowHi(n, a.Pos)
			case ruledsl.OpGt:
				vf.narrowLo(n+1, a.Pos)
			case ruledsl.OpGe:
				vf.narrowLo(n, a.Pos)
			}
		}
	}

	for name, vf := range vars {
		if vf.lo > vf.hi {
			return satReason{
				why:        fmt.Sprintf("numeric range for %s is empty (%s)", name, vf.rangeString(name)),
				pos:        vf.rangePos,
				emptyRange: true,
			}
		}
		if vf.eq == "" {
			continue
		}
		if vf.ne[vf.eq] {
			return satReason{
				why: fmt.Sprintf("%s=%s contradicts %s≠%s", name, vf.eqRaw, name, vf.eqRaw),
				pos: vf.eqPos,
			}
		}
		if n, err := strconv.ParseInt(vf.eqRaw, 10, 64); err == nil {
			if (vf.loSet && n < vf.lo) || (vf.hiSet && n > vf.hi) {
				return satReason{
					why: fmt.Sprintf("%s=%s is outside the range %s", name, vf.eqRaw, vf.rangeString(name)),
					pos: vf.eqPos,
				}
			}
		} else if vf.loSet || vf.hiSet {
			// Ordered constraints require an integer constant at eval
			// time; pinning the variable to a non-numeric value while
			// also range-constraining it can never both hold.
			return satReason{
				why: fmt.Sprintf("%s=%s cannot satisfy the numeric constraint %s", name, vf.eqRaw, vf.rangeString(name)),
				pos: vf.eqPos,
			}
		}
		for _, s := range vf.prefixes {
			if !strings.HasPrefix(vf.eq, ruledsl.NormLiteral(s.Value)) {
				return satReason{
					why: fmt.Sprintf("%s=%s does not start with %q", name, vf.eqRaw, s.Value),
					pos: s.Pos,
				}
			}
		}
	}
	return satReason{}
}

func (vf *varFacts) narrowHi(n int64, pos ruledsl.Pos) {
	if n < vf.hi {
		vf.hi = n
		vf.hiSet = true
		vf.rangePos = pos
	} else if !vf.hiSet {
		vf.hiSet = true
		if vf.rangePos == (ruledsl.Pos{}) {
			vf.rangePos = pos
		}
	}
}

func (vf *varFacts) narrowLo(n int64, pos ruledsl.Pos) {
	if n > vf.lo {
		vf.lo = n
		vf.loSet = true
		vf.rangePos = pos
	} else if !vf.loSet {
		vf.loSet = true
		if vf.rangePos == (ruledsl.Pos{}) {
			vf.rangePos = pos
		}
	}
}

func (vf *varFacts) rangeString(name string) string {
	switch {
	case vf.loSet && vf.hiSet:
		return fmt.Sprintf("%d ≤ %s ≤ %d", vf.lo, name, vf.hi)
	case vf.loSet:
		return fmt.Sprintf("%s ≥ %d", name, vf.lo)
	case vf.hiSet:
		return fmt.Sprintf("%s ≤ %d", name, vf.hi)
	}
	return "unconstrained"
}
