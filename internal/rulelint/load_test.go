package rulelint

import (
	"fmt"
	"testing"

	"repro/internal/ruledsl"
	"repro/internal/rules"
)

func packOf(t *testing.T, name, content string) *ruledsl.Pack {
	t.Helper()
	return ruledsl.ParsePack(name, content)
}

// TestBuiltinIDCollisions pins the reserved-ID universe: a pack that
// redefines ANY built-in (R1–R13) or reserved CryptoLint alias (CL1–CL5)
// ID is an RL010 error finding, every time.
func TestBuiltinIDCollisions(t *testing.T) {
	var ids []string
	for _, r := range rules.All() {
		ids = append(ids, r.ID)
	}
	for _, r := range rules.CryptoLint() {
		ids = append(ids, r.ID)
	}
	if len(ids) != 18 {
		t.Fatalf("expected 18 reserved IDs, got %d", len(ids))
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			content := fmt.Sprintf("%s | shadow | Cipher : getInstance(X) ∧ X=AES/ECB", id)
			report := Lint([]*ruledsl.Pack{packOf(t, "shadow.rules", content)}, Options{
				Builtins: rules.All(),
				Reserved: rules.CryptoLint(),
			})
			var hit *Diag
			for i, d := range report.Diags {
				if d.Code == CodeIDCollision && d.RuleID == id {
					hit = &report.Diags[i]
				}
			}
			if hit == nil {
				t.Fatalf("redefining %s produced no RL010 finding:\n%s", id, report.Render())
			}
			if hit.Severity != SevError {
				t.Fatalf("RL010 for %s: got severity %s, want error", id, hit.Severity)
			}
		})
	}
}

// TestLaxPrefersBuiltin pins the -rules-lax merge order: when a pack rule
// collides with a built-in or reserved ID, MergeActive keeps the built-in
// (pointer-identical to the registry's rule) and never the pack's.
func TestLaxPrefersBuiltin(t *testing.T) {
	pack := packOf(t, "shadow.rules",
		"R7 | shadow | Cipher : getInstance(X) ∧ X=DES\n"+
			"CL1 | shadow | Cipher : getInstance(X) ∧ X=DES\n"+
			"P900 | fresh | KeyGenerator : init(X) ∧ X<64\n")
	active := MergeActive(rules.All(), rules.CryptoLint(), []*ruledsl.Pack{pack})
	byID := map[string]*rules.Rule{}
	for _, r := range active {
		if byID[r.ID] != nil {
			t.Fatalf("duplicate ID %s in merged set", r.ID)
		}
		byID[r.ID] = r
	}
	if byID["R7"] != rules.R7 {
		t.Errorf("R7 in merged set is not the built-in (description %q)", byID["R7"].Description)
	}
	// Reserved aliases keep their ID claimed without joining the set.
	if byID["CL1"] != nil {
		t.Errorf("CL1 joined the merged set; reserved aliases must only block the ID")
	}
	if byID["P900"] == nil || byID["P900"].Description != "fresh" {
		t.Errorf("non-colliding pack rule P900 missing or wrong: %+v", byID["P900"])
	}
	if want := len(rules.All()) + 1; len(active) != want {
		t.Errorf("merged set size: got %d, want %d", len(active), want)
	}
}

// TestFirstPackWins pins cross-pack determinism: when two packs define the
// same ID, the earlier pack (command-line order) wins, deterministically.
func TestFirstPackWins(t *testing.T) {
	a := packOf(t, "a.rules", "P900 | from-a | KeyGenerator : init(X) ∧ X<64")
	b := packOf(t, "b.rules", "P900 | from-b | KeyGenerator : init(X) ∧ X<96")
	active := MergeActive(rules.All(), rules.CryptoLint(), []*ruledsl.Pack{a, b})
	var got *rules.Rule
	for _, r := range active {
		if r.ID == "P900" {
			if got != nil {
				t.Fatal("P900 appears twice in merged set")
			}
			got = r
		}
	}
	if got == nil || got.Description != "from-a" {
		t.Fatalf("cross-pack collision: got %+v, want the first pack's rule", got)
	}
	// And the collision is still an error finding, lax or not.
	report := Lint([]*ruledsl.Pack{a, b}, Options{Builtins: rules.All(), Reserved: rules.CryptoLint()})
	found := false
	for _, d := range report.Diags {
		if d.Code == CodeIDCollision && d.Pack == "b.rules" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-pack duplicate produced no RL010 at the later pack:\n%s", report.Render())
	}
}

// TestUncompiledRulesSkipped: a pack rule that fails to compile never
// reaches the merged set (the -rules-lax "load what compiles" contract).
func TestUncompiledRulesSkipped(t *testing.T) {
	pack := packOf(t, "mixed.rules",
		"P900 | ok | KeyGenerator : init(X) ∧ X<64\n"+
			"P901 | broken | KeyGenerator : init(X ∧\n")
	active := MergeActive(rules.All(), rules.CryptoLint(), []*ruledsl.Pack{pack})
	for _, r := range active {
		if r.ID == "P901" {
			t.Fatal("uncompiled rule P901 reached the merged set")
		}
	}
	if want := len(rules.All()) + 1; len(active) != want {
		t.Fatalf("merged set size: got %d, want %d", len(active), want)
	}
}
