// Package summary implements memoized per-method summaries for the abstract
// interpreter (DESIGN.md §14) — the ROADMAP's "summary-based interprocedural
// analysis" item.
//
// The paper's §5.1 interpreter inlines every callee body at every call site,
// in every branch fork, for every change, and gives up past MaxInline. A
// summary captures one such execution as a reusable, *portable* effect
// triple — the return abstraction, the field/heap post-state, and the
// ordered crypto-API events the callee attempted — keyed by everything the
// execution could have observed:
//
//	(program fingerprint, class, method index,
//	 abstract-argument fingerprint, field/heap-context fingerprint,
//	 analysis-options fingerprint)
//
// The program fingerprint covers every source file of the analyzed program,
// which is the load-bearing design decision: a looked-up entry is by
// construction a faithful log of a deterministic execution of byte-identical
// input, so replay is exact without any class-level dependency tracking.
// Keys exclude the caller's locals (forks that differ only in locals share
// one summary — the hot-loop win) and exclude the inlining depth (a summary
// is depth-independent, which is what lifts the MaxInline cliff).
//
// Entries are portable: abstract objects are referenced by allocation site
// (file index + byte offset), methods by (class name, declaration index),
// and values by (kind, payload, type, site). Instantiation rebinds those
// references against the consuming analyzer's own object table, replaying
// allocations, event attempts, and step cost as if the callee had run.
// The same portable form serves three tiers — within-analyzer memoization,
// cross-change sharing inside a mining run (duplicate snapshots are common
// in the corpus), and disk persistence through internal/artifact as the
// `summary` kind for warm re-runs.
package summary

import (
	"repro/internal/cryptoapi"
	"repro/internal/javatok"
)

// PValue is a portable abstract value: Kind/Payload/Type mirror
// absdom.Value, and object references are by allocation-site index into the
// owning Entry's Sites table (1-based; 0 means no object). Provenance is
// never captured — summaries are recorded only with provenance off.
type PValue struct {
	Kind    int    `json:"k"`
	Payload string `json:"p,omitempty"`
	Type    string `json:"t,omitempty"`
	Obj     int    `json:"o,omitempty"`
}

// PSite is a portable allocation site: the file index within the program's
// sorted file list plus the site's source position, and the abstract
// object's type. Because the program fingerprint pins every file's content,
// (file, offset) names the same allocation across runs.
type PSite struct {
	File int         `json:"f"`
	Pos  javatok.Pos `json:"pos"`
	Type string      `json:"t"`
}

// PEvent is one recorded crypto-API event *attempt* in callee order. The
// log is pre-deduplication on purpose: an attempt that was a duplicate when
// recorded can be the first observation in a different replay context, so
// replay re-issues every attempt and lets the analyzer's own dedup decide.
type PEvent struct {
	Obj  int                 `json:"obj"` // receiver: 1-based Sites index
	Sig  cryptoapi.MethodSig `json:"sig"`
	Args []PValue            `json:"args,omitempty"`
	File string              `json:"file"`
	Pos  javatok.Pos         `json:"pos"`
}

// PMethod names a method declaration portably: the declaring class and the
// index of the declaration within that class's method list.
type PMethod struct {
	Class string `json:"c"`
	Index int    `json:"i"`
}

// PHeapObj is the recorded post-state of one abstract object's fields.
type PHeapObj struct {
	Obj    int               `json:"obj"`
	Fields map[string]PValue `json:"fields"`
}

// Entry is one memoized callee execution. Sites[:NAlloc] are the abstract
// objects the callee allocated, in first-touch order (replay re-allocates
// them); Sites[NAlloc:] are pre-existing objects the entry references (replay
// resolves them and falls back to live execution if any is missing).
type Entry struct {
	Sites  []PSite `json:"sites,omitempty"`
	NAlloc int     `json:"nalloc,omitempty"`
	// Events is the ordered pre-dedup crypto-API attempt log.
	Events []PEvent `json:"events,omitempty"`
	// Executed lists every method the callee (transitively) executed. A
	// replay marks them executed; validity requires none is currently on the
	// caller's inline stack (the recording saw them as fresh frames).
	Executed []PMethod `json:"exec,omitempty"`
	// OuterGuard lists methods whose presence on the inline stack *outside*
	// the recorded frame shaped the execution (a recursive call hit the
	// cycle guard against them). The entry is valid only under callers that
	// still have every one of them on the stack.
	OuterGuard []PMethod `json:"outer,omitempty"`
	// Fields/Heap are the callee's full field and heap post-state; replay
	// installs them wholesale (the context fingerprint covers the full
	// pre-state, so the post-state is a function of the key).
	Fields map[string]PValue `json:"fields,omitempty"`
	Heap   []PHeapObj        `json:"heap,omitempty"`
	// Ret is the portable return abstraction (nil for an invalid value).
	Ret *PValue `json:"ret,omitempty"`
	// Steps is the interpreter step cost of the recorded execution; replay
	// bulk-charges it against the run's budget.
	Steps int64 `json:"steps"`
}
