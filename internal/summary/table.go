package summary

import (
	"encoding/json"
	"sync"

	"repro/internal/artifact"
	"repro/internal/obs"
)

// Table is the shared summary store of one run: an in-memory map shared by
// every analyzer in the process (all changes of a mining run, all requests
// of a server), with optional write-through persistence into an artifact
// store (KindSummary) so warm corpus re-runs skip helper re-analysis
// entirely. In-memory entries are shared read-only across goroutines; the
// map itself is guarded.
//
// The summary.* telemetry lives here so every consumer reports uniformly:
// hits/misses count table consultations, instantiations count summaries
// rebound into a new analyzer's object table, cycles counts recursive calls
// widened to Top by the cycle guard.
type Table struct {
	mu    sync.RWMutex
	mem   map[artifact.Key]*Entry
	store *artifact.Store

	hits           *obs.Counter
	misses         *obs.Counter
	instantiations *obs.Counter
	cycles         *obs.Counter
}

// NewTable builds a summary table backed by store (nil keeps summaries
// memory-only) and registers the summary.* counters eagerly on reg, so a
// metrics snapshot or Prometheus scrape carries the series even before the
// first lookup. A nil registry is valid (counters become no-ops).
func NewTable(store *artifact.Store, reg *obs.Registry) *Table {
	return &Table{
		mem:            map[artifact.Key]*Entry{},
		store:          store,
		hits:           reg.Counter("summary.hits"),
		misses:         reg.Counter("summary.misses"),
		instantiations: reg.Counter("summary.instantiations"),
		cycles:         reg.Counter("summary.cycles"),
	}
}

func decodeEntry(b []byte) (any, error) {
	var e Entry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// Lookup returns the entry for key, consulting the in-memory map first and
// the artifact store second (a disk hit is promoted into the map). The
// returned entry is shared and must be treated as read-only.
func (t *Table) Lookup(key artifact.Key) *Entry {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	e := t.mem[key]
	t.mu.RUnlock()
	if e != nil {
		return e
	}
	if t.store == nil {
		return nil
	}
	v, ok := t.store.Get(artifact.KindSummary, key, decodeEntry)
	if !ok {
		return nil
	}
	e = v.(*Entry)
	t.mu.Lock()
	if prior := t.mem[key]; prior != nil {
		e = prior
	} else {
		t.mem[key] = e
	}
	t.mu.Unlock()
	return e
}

// Insert records a freshly recorded entry under key and writes it through
// to the artifact store when one is attached. The key pins the whole
// program and abstract input but not the caller's inline stack, so entries
// with a non-empty OuterGuard are stack-context variants of the same key:
// concurrent inserts keep the first entry, except that a guard-free
// recording replaces a cycle-context one — the guard-free entry is valid
// under every caller, while the guarded one would leave the common
// no-cycle context a permanent miss.
func (t *Table) Insert(key artifact.Key, e *Entry) {
	if t == nil || e == nil {
		return
	}
	t.mu.Lock()
	if prior, ok := t.mem[key]; ok {
		if len(prior.OuterGuard) == 0 || len(e.OuterGuard) > 0 {
			t.mu.Unlock()
			return
		}
	}
	t.mem[key] = e
	t.mu.Unlock()
	if t.store != nil {
		t.store.Put(artifact.KindSummary, key, e, func() ([]byte, error) { return json.Marshal(e) })
	}
}

// Len reports the number of in-memory entries (tests and telemetry).
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.mem)
}

// Hit/Miss/Instantiation/Cycle bump the summary.* telemetry; all are valid
// on a nil table (the summaries-off path never reports).

func (t *Table) Hit() {
	if t != nil {
		t.hits.Inc()
	}
}

func (t *Table) Miss() {
	if t != nil {
		t.misses.Inc()
	}
}

func (t *Table) Instantiation() {
	if t != nil {
		t.instantiations.Inc()
	}
}

func (t *Table) Cycle() {
	if t != nil {
		t.cycles.Inc()
	}
}
