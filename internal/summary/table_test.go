package summary

import (
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/obs"
)

func testKey(parts ...string) artifact.Key {
	return artifact.NewKey(artifact.KindSummary, parts...)
}

func TestTableInsertLookup(t *testing.T) {
	tbl := NewTable(nil, nil)
	k := testKey("prog", "C", "0")
	if tbl.Lookup(k) != nil {
		t.Fatal("lookup on empty table returned an entry")
	}
	e := &Entry{Steps: 7, Ret: &PValue{Kind: 1, Payload: "AES"}}
	tbl.Insert(k, e)
	got := tbl.Lookup(k)
	if got != e {
		t.Fatalf("lookup = %v, want the inserted entry", got)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d, want 1", tbl.Len())
	}
}

func TestTableFirstInsertWins(t *testing.T) {
	tbl := NewTable(nil, nil)
	k := testKey("prog", "C", "0")
	first := &Entry{Steps: 1}
	second := &Entry{Steps: 2}
	tbl.Insert(k, first)
	tbl.Insert(k, second)
	if got := tbl.Lookup(k); got != first {
		t.Fatalf("lookup = %+v, want the first insert (steps=1)", got)
	}
}

// TestTableGuardFreeReplacesGuarded: the key excludes the caller's inline
// stack, so a cycle-context entry (non-empty OuterGuard) and a guard-free
// one can share a key. The guard-free entry must win regardless of insert
// order — otherwise the common no-cycle context re-records forever.
func TestTableGuardFreeReplacesGuarded(t *testing.T) {
	guarded := func(steps int64) *Entry {
		return &Entry{Steps: steps, OuterGuard: []PMethod{{Class: "C", Index: 0}}}
	}
	free := func(steps int64) *Entry { return &Entry{Steps: steps} }

	t.Run("guardFreeReplaces", func(t *testing.T) {
		tbl := NewTable(nil, nil)
		k := testKey("prog", "C", "0")
		g, f := guarded(1), free(2)
		tbl.Insert(k, g)
		tbl.Insert(k, f)
		if got := tbl.Lookup(k); got != f {
			t.Fatalf("lookup = %+v, want the guard-free replacement", got)
		}
	})
	t.Run("guardedNeverReplaces", func(t *testing.T) {
		tbl := NewTable(nil, nil)
		k := testKey("prog", "C", "0")
		f, g := free(1), guarded(2)
		tbl.Insert(k, f)
		tbl.Insert(k, g)
		if got := tbl.Lookup(k); got != f {
			t.Fatalf("lookup = %+v, want the original guard-free entry", got)
		}
	})
	t.Run("guardedKeepsFirst", func(t *testing.T) {
		tbl := NewTable(nil, nil)
		k := testKey("prog", "C", "0")
		g1, g2 := guarded(1), guarded(2)
		tbl.Insert(k, g1)
		tbl.Insert(k, g2)
		if got := tbl.Lookup(k); got != g1 {
			t.Fatalf("lookup = %+v, want the first guarded entry", got)
		}
	})
	t.Run("replacementWritesThrough", func(t *testing.T) {
		store := artifact.New(artifact.Config{Dir: t.TempDir()})
		k := testKey("prog", "C", "0")
		NewTable(store, nil).Insert(k, guarded(1))
		warm := NewTable(store, nil)
		if got := warm.Lookup(k); got == nil || len(got.OuterGuard) != 1 {
			t.Fatalf("warm lookup = %+v, want the persisted guarded entry", got)
		}
		warm.Insert(k, free(2))
		got := NewTable(store, nil).Lookup(k)
		if got == nil || got.Steps != 2 || len(got.OuterGuard) != 0 {
			t.Fatalf("persisted entry = %+v, want the guard-free replacement (steps=2)", got)
		}
	})
}

func TestTableNilSafety(t *testing.T) {
	var tbl *Table
	k := testKey("prog")
	if tbl.Lookup(k) != nil {
		t.Error("nil table lookup returned an entry")
	}
	tbl.Insert(k, &Entry{})
	if tbl.Len() != 0 {
		t.Error("nil table has nonzero length")
	}
	// Telemetry on a nil table must be a no-op, not a panic.
	tbl.Hit()
	tbl.Miss()
	tbl.Instantiation()
	tbl.Cycle()
}

func TestTableWriteThroughStore(t *testing.T) {
	store := artifact.New(artifact.Config{Dir: t.TempDir()})
	k := testKey("prog", "C", "1")
	e := &Entry{
		Sites:  []PSite{{File: 0, Type: "Cipher"}},
		NAlloc: 1,
		Events: []PEvent{{Obj: 1, File: "C.java"}},
		Fields: map[string]PValue{"f": {Kind: 1, Payload: "AES"}},
		Steps:  42,
	}
	NewTable(store, nil).Insert(k, e)

	// A fresh table over the same store must decode the persisted entry.
	warm := NewTable(store, nil)
	got := warm.Lookup(k)
	if got == nil {
		t.Fatal("persisted entry not found by a fresh table")
	}
	if got.Steps != 42 || got.NAlloc != 1 || len(got.Sites) != 1 || got.Sites[0].Type != "Cipher" {
		t.Fatalf("decoded entry = %+v, want the persisted one", got)
	}
	if got.Fields["f"].Payload != "AES" {
		t.Fatalf("decoded fields = %+v", got.Fields)
	}
	// The disk hit is promoted: a second lookup returns the same pointer.
	if again := warm.Lookup(k); again != got {
		t.Error("disk hit was not promoted into the in-memory map")
	}
}

func TestCountersRegisteredEagerly(t *testing.T) {
	reg := obs.NewRegistry()
	NewTable(nil, reg)
	// The series must exist (at zero) before any lookup, so scrapes and
	// snapshots carry them from process start.
	var sb strings.Builder
	if err := obs.WriteProm(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, series := range []string{
		"summary_hits_total 0",
		"summary_misses_total 0",
		"summary_instantiations_total 0",
		"summary_cycles_total 0",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("prom exposition missing %q:\n%s", series, out)
		}
	}
}

func TestCountersCount(t *testing.T) {
	reg := obs.NewRegistry()
	tbl := NewTable(nil, reg)
	tbl.Hit()
	tbl.Hit()
	tbl.Miss()
	tbl.Instantiation()
	tbl.Cycle()
	for name, want := range map[string]int64{
		"summary.hits":           2,
		"summary.misses":         1,
		"summary.instantiations": 1,
		"summary.cycles":         1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
