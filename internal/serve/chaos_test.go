package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
)

// heavySource builds a snippet whose analysis takes well over one
// wall-check interval (1024 interpreter steps), so deadline and
// cancellation polls — amortized in the hot loop — are guaranteed to fire.
func heavySource() string {
	var sb strings.Builder
	sb.WriteString("import javax.crypto.Cipher;\nclass Heavy {\n  void f() throws Exception {\n")
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&sb, "    int a%d = %d;\n", i, i)
	}
	sb.WriteString("    Cipher c = Cipher.getInstance(\"AES/ECB/PKCS5Padding\");\n  }\n}\n")
	return sb.String()
}

// TestHammerByteIdenticalResponses is the determinism contract of the
// service: identical request bodies produce byte-identical responses, at
// any worker-pool size, under concurrent load. Run with -race in CI.
func TestHammerByteIdenticalResponses(t *testing.T) {
	bodies := []string{
		checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource, "B.java": gcmSource}}),
		checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}, Why: true}),
	}
	var reference []string
	for _, workers := range []int{1, 4} {
		s := newTestServer(t, Options{Checker: core.Options{Workers: workers}})
		for bi, body := range bodies {
			want := post(t, s, "/v1/check", body).Body.String()
			if workers == 1 {
				reference = append(reference, want)
			} else if want != reference[bi] {
				// The same body answers identically across pool sizes too.
				t.Fatalf("workers=%d diverged from workers=1:\n got: %s\nwant: %s", workers, want, reference[bi])
			}
			var wg sync.WaitGroup
			results := make([]string, 24)
			for i := range results {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(body))
					w := httptest.NewRecorder()
					s.Handler().ServeHTTP(w, req)
					results[i] = w.Body.String()
				}(i)
			}
			wg.Wait()
			for i, got := range results {
				if got != want {
					t.Fatalf("workers=%d: concurrent response %d diverged:\n got: %s\nwant: %s", workers, i, got, want)
				}
			}
		}
	}
}

// TestChaosPanicsIsolatedFromConcurrentTraffic injects a panic into every
// other admitted analysis and hammers the server: each panicking request
// gets its structured 422, each healthy one its normal 200, and the
// process never dies.
func TestChaosPanicsIsolatedFromConcurrentTraffic(t *testing.T) {
	var calls atomic.Int64
	resilience.SetFaultInjector(func(task string) error {
		if task == "check" && calls.Add(1)%2 == 0 {
			panic("chaos")
		}
		return nil
	})
	defer resilience.ClearFaultInjector()

	// DisableArtifacts: the test's contract is one live analysis per request
	// (the injector panics every other Guard("check")); the default store
	// would coalesce the 20 identical bodies into one flight.
	s := newTestServer(t, Options{MaxConcurrent: 4, DegradeThreshold: -1, DisableArtifacts: true})
	body := checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}})

	const n = 20
	codes := make([]int, n)
	panics := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(body))
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			codes[i] = w.Code
			panics[i] = strings.Contains(w.Body.String(), `"category":"panic"`)
		}(i)
	}
	wg.Wait()

	ok, failed := 0, 0
	for i := 0; i < n; i++ {
		switch codes[i] {
		case http.StatusOK:
			ok++
		case http.StatusUnprocessableEntity:
			failed++
			if !panics[i] {
				t.Errorf("request %d: 422 without panic category", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, codes[i])
		}
	}
	if ok != n/2 || failed != n/2 {
		t.Errorf("ok=%d failed=%d, want %d/%d — a panic leaked beyond its request", ok, failed, n/2, n/2)
	}
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz after chaos = %d", w.Code)
	}
	if got := s.Metrics().Counter("serve.check.failures").Value(); got != int64(n/2) {
		t.Errorf("serve.check.failures = %d, want %d", got, n/2)
	}
}

// TestChaosStalledAnalysisBecomes504 stalls the analysis past the
// per-request deadline: the budget's wall check trips inside the
// interpreter loop and the request surfaces as a 504 with the ledger
// category "budget" instead of hanging.
func TestChaosStalledAnalysisBecomes504(t *testing.T) {
	resilience.SetFaultInjector(func(task string) error {
		if task == "check" {
			time.Sleep(80 * time.Millisecond)
		}
		return nil
	})
	defer resilience.ClearFaultInjector()

	s := newTestServer(t, Options{RequestTimeout: 30 * time.Millisecond})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{
		Sources: map[string]string{"Heavy.java": heavySource()},
	}))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("stalled request = %d, body %s; want 504", w.Code, w.Body.String())
	}
	var eb ErrorBody
	decodeResp(t, w, &eb)
	if eb.Error.Category != "budget" {
		t.Errorf("category = %q, want budget", eb.Error.Category)
	}
	if !strings.Contains(eb.Error.Message, "wall clock limit") {
		t.Errorf("message = %q, want the wall-clock budget message", eb.Error.Message)
	}
}

// TestChaosClientDisconnectBecomesCanceled cancels the request context
// while the analysis stalls: the budget aborts with the "canceled"
// category (not "budget" — the distinction keeps disconnect noise out of
// the timeout alerts).
func TestChaosClientDisconnectBecomesCanceled(t *testing.T) {
	resilience.SetFaultInjector(func(task string) error {
		if task == "check" {
			time.Sleep(50 * time.Millisecond)
		}
		return nil
	})
	defer resilience.ClearFaultInjector()

	s := newTestServer(t, Options{RequestTimeout: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/check",
		strings.NewReader(checkBody(t, CheckRequest{Sources: map[string]string{"Heavy.java": heavySource()}})))
	req = req.WithContext(ctx)
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(w, req)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond) // let the request pass admission
	cancel()
	<-done
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("disconnected request = %d, body %s; want 408", w.Code, w.Body.String())
	}
	var eb ErrorBody
	decodeResp(t, w, &eb)
	if eb.Error.Category != "canceled" {
		t.Errorf("category = %q, want canceled", eb.Error.Category)
	}
	if s.Metrics().Counter("serve.errors.canceled").Value() != 1 {
		t.Error("serve.errors.canceled not counted")
	}
}

// TestChaosFloodShedsAndSurvives floods a tiny server far past its
// capacity: every request gets a prompt, well-formed answer (200 or 429,
// never a hang or a crash) and the telemetry accounts for each shed.
func TestChaosFloodShedsAndSurvives(t *testing.T) {
	resilience.SetFaultInjector(func(task string) error {
		if task == "check" {
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	})
	defer resilience.ClearFaultInjector()

	s := newTestServer(t, Options{MaxConcurrent: 2, MaxQueue: 2, DegradeThreshold: -1})
	body := checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}})

	const n = 30
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(body))
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			switch w.Code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				if w.Header().Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			default:
				other.Add(1)
				t.Errorf("unexpected status %d: %s", w.Code, w.Body.String())
			}
		}()
	}
	wg.Wait()
	if ok.Load()+shed.Load() != n || other.Load() != 0 {
		t.Fatalf("ok=%d shed=%d other=%d, want them to sum to %d", ok.Load(), shed.Load(), other.Load(), n)
	}
	if ok.Load() == 0 {
		t.Error("flood starved every request; admission should keep serving at capacity")
	}
	if shed.Load() == 0 {
		t.Error("30 requests against 2+2 capacity shed nothing")
	}
	if got := s.Metrics().Counter("serve.shed").Value(); got != shed.Load() {
		t.Errorf("serve.shed = %d, want %d", got, shed.Load())
	}
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz after flood = %d", w.Code)
	}
}

// TestChaosDrainUnderLoadZeroDropped is the SIGTERM contract: requests in
// flight when the drain begins all get their responses, new requests are
// refused, and the report says zero dropped.
func TestChaosDrainUnderLoadZeroDropped(t *testing.T) {
	release := make(chan struct{})
	resilience.SetFaultInjector(func(task string) error {
		if task == "check" {
			<-release
		}
		return nil
	})
	defer resilience.ClearFaultInjector()

	s := newTestServer(t, Options{MaxConcurrent: 8, DrainTimeout: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}})

	const n = 5
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	waitFor(t, func() bool { return s.inflight.Load() == n })

	// Unblock the stalled analyses just after the drain starts waiting.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	rep := s.Drain()
	if rep.Dropped != 0 || rep.Finished != n {
		t.Errorf("drain report = %+v, want %d finished, 0 dropped", rep, n)
	}
	for i := 0; i < n; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("in-flight request finished with %d, want 200", code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain request = %d, want 503", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error.Category != "draining" {
		t.Errorf("post-drain body category = %q (err %v), want draining", eb.Error.Category, err)
	}
}

// TestChaosAnalyzeBatchFaultContainment panics one change of a batch: its
// siblings analyze normally and the response carries the failure inline.
func TestChaosAnalyzeBatchFaultContainment(t *testing.T) {
	resilience.SetFaultInjector(func(task string) error {
		// Exactly the second change's analyze guard (not its parse guard).
		if task == "change p@c2:F.java" {
			panic("bad change")
		}
		return nil
	})
	defer resilience.ClearFaultInjector()

	// DisableArtifacts: the three changes are content-identical, and the
	// default store would serve c2 from c1's artifact — the injected panic
	// only fires on a live analysis of the second change.
	s := newTestServer(t, Options{DisableArtifacts: true})
	body, _ := json.Marshal(AnalyzeRequest{Changes: []ChangeSpec{
		{Old: ecbSource, New: gcmSource, Project: "p", Commit: "c1", File: "F.java"},
		{Old: ecbSource, New: gcmSource, Project: "p", Commit: "c2", File: "F.java"},
		{Old: ecbSource, New: gcmSource, Project: "p", Commit: "c3", File: "F.java"},
	}})
	w := post(t, s, "/v1/analyze", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("batch = %d, body %s", w.Code, w.Body.String())
	}
	var resp AnalyzeResponse
	decodeResp(t, w, &resp)
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Category != "panic" {
		t.Errorf("poisoned change error = %+v, want inline panic", resp.Results[1].Error)
	}
	for _, i := range []int{0, 2} {
		if resp.Results[i].Error != nil {
			t.Errorf("healthy change %d failed: %+v", i, resp.Results[i].Error)
		}
		if len(resp.Results[i].UsageChanges) == 0 {
			t.Errorf("healthy change %d lost its usage changes", i)
		}
	}
}
