package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// fakeTracer builds a tracer with a deterministic ID source and clock, both
// safe for concurrent use (spans end on worker goroutines).
func fakeTracer() *trace.Tracer {
	var seq atomic.Uint64
	var tick atomic.Int64
	return trace.NewTracer(
		func() uint64 { return seq.Add(1) },
		func() time.Time { return time.Unix(0, tick.Add(1)*1000) },
	)
}

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestTracedCheckCarriesTraceID(t *testing.T) {
	s := newTestServer(t, Options{Tracer: fakeTracer(), TraceStore: trace.StoreOptions{SampleEvery: 1}})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}}))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	id := w.Header().Get("X-Trace-Id")
	if !traceIDRe.MatchString(id) {
		t.Fatalf("X-Trace-Id = %q, want 16 hex digits", id)
	}
	var resp CheckResponse
	decodeResp(t, w, &resp)
	if resp.TraceID != id {
		t.Errorf("trace_id field %q != X-Trace-Id header %q", resp.TraceID, id)
	}

	// The healthy fast request was retained (SampleEvery 1) and is
	// inspectable through every /debug/traces surface.
	lw := get(t, s, "/debug/traces")
	var list TraceList
	decodeResp(t, lw, &list)
	if list.Count != 1 || list.Traces[0].TraceID != id {
		t.Fatalf("/debug/traces = %+v, want the one retained trace %s", list, id)
	}
	if list.Traces[0].Retained != trace.RetainSampled {
		t.Errorf("retained = %q, want %q", list.Traces[0].Retained, trace.RetainSampled)
	}

	dw := get(t, s, "/debug/traces/"+id)
	if ct := dw.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("detail Content-Type = %q", ct)
	}
	var rec trace.Record
	decodeResp(t, dw, &rec)
	if rec.ID != id || rec.Root == nil || rec.Root.Name != "check" {
		t.Fatalf("trace detail = %+v", rec)
	}
	names := spanNames(rec.Root)
	for _, want := range []string{"queue", "parse", "interpret", "rules"} {
		if !names[want] {
			t.Errorf("trace tree missing %q span; have %v", want, names)
		}
	}

	tx := get(t, s, "/debug/traces/"+id+"?format=text")
	if ct := tx.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("text Content-Type = %q", ct)
	}
	body := tx.Body.String()
	if !strings.HasPrefix(body, "trace "+id+" check ") || !strings.Contains(body, "█") {
		t.Errorf("text waterfall = %q", body)
	}

	// The slow-trace exemplar links the latency histogram to this trace.
	if ex := s.Metrics().Histogram("serve.check.latency_us").Exemplar(); ex != id {
		t.Errorf("latency exemplar = %q, want %q", ex, id)
	}
}

func spanNames(d *trace.SpanData) map[string]bool {
	out := map[string]bool{}
	var walk func(*trace.SpanData)
	walk = func(s *trace.SpanData) {
		out[s.Name] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(d)
	return out
}

func TestTracedFailureAlwaysRetained(t *testing.T) {
	// A budget failure must be retained as a failure (not sampled) with the
	// ledger category on the root span, and the error body must name the
	// trace so the operator can jump from the 504 straight to the waterfall.
	s := newTestServer(t, Options{Tracer: fakeTracer(), TraceStore: trace.StoreOptions{SampleEvery: 1 << 30}})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{
		Sources: map[string]string{"App.java": ecbSource}, BudgetSteps: 1,
	}))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", w.Code)
	}
	var eb ErrorBody
	decodeResp(t, w, &eb)
	if eb.Error.TraceID == "" || eb.Error.TraceID != w.Header().Get("X-Trace-Id") {
		t.Fatalf("error trace_id = %q, header %q", eb.Error.TraceID, w.Header().Get("X-Trace-Id"))
	}
	rec := s.Traces().Get(eb.Error.TraceID)
	if rec == nil {
		t.Fatal("failed trace was not retained")
	}
	if rec.Retained != trace.RetainFailure || rec.Category != "budget" {
		t.Errorf("retained=%q category=%q, want failure/budget", rec.Retained, rec.Category)
	}
}

func TestUntracedServerSurfaceUnchanged(t *testing.T) {
	// Tracing off is the default, and its absence must be invisible: no
	// X-Trace-Id header, no trace_id field anywhere in the body, and no
	// /debug/traces route (the URL space is exactly PR 6's).
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}}))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if h := w.Header().Get("X-Trace-Id"); h != "" {
		t.Errorf("untraced response has X-Trace-Id %q", h)
	}
	if strings.Contains(w.Body.String(), "trace_id") {
		t.Errorf("untraced body mentions trace_id: %s", w.Body.String())
	}
	if ew := post(t, s, "/v1/check", "{nope"); strings.Contains(ew.Body.String(), "trace_id") {
		t.Errorf("untraced error body mentions trace_id: %s", ew.Body.String())
	}
	if lw := get(t, s, "/debug/traces"); lw.Code != http.StatusNotFound {
		t.Errorf("/debug/traces on untraced server = %d, want 404", lw.Code)
	}
	if s.Traces() != nil {
		t.Error("Traces() != nil on untraced server")
	}
}

// hammerFingerprints fires concurrent traced /v1/check requests — one
// distinct source file per request — and returns file → trace fingerprint
// for every retained trace, failing on any cross-request span leakage.
func hammerFingerprints(t *testing.T, workers int) map[string]string {
	t.Helper()
	const requests = 12
	s := newTestServer(t, Options{
		Checker:       core.Options{Workers: workers, Metrics: obs.NewRegistry()},
		Tracer:        fakeTracer(),
		TraceStore:    trace.StoreOptions{Capacity: 64, SampleEvery: 1},
		MaxConcurrent: 4,
		MaxQueue:      requests,
	})
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			file := fmt.Sprintf("App%02d.java", i)
			w := post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: map[string]string{file: ecbSource}}))
			if w.Code != http.StatusOK {
				t.Errorf("request %d: status = %d, body %s", i, w.Code, w.Body.String())
			}
		}(i)
	}
	wg.Wait()

	out := map[string]string{}
	for _, rec := range s.Traces().List() {
		files := attrValues(rec.Root, "name")
		if len(files) != 1 {
			t.Errorf("trace %s touches files %v — cross-request span leakage", rec.ID, files)
			continue
		}
		var file string
		for f := range files {
			file = f
		}
		out[file] = rec.Root.Fingerprint()
	}
	if len(out) != requests {
		t.Errorf("retained %d distinct request traces, want %d", len(out), requests)
	}
	return out
}

// attrValues collects the distinct values of one attribute key across the
// whole span tree.
func attrValues(d *trace.SpanData, key string) map[string]bool {
	out := map[string]bool{}
	var walk func(*trace.SpanData)
	walk = func(s *trace.SpanData) {
		for _, a := range s.Attrs {
			if a.Key == key {
				out[a.Value] = true
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(d)
	return out
}

// TestDeterminismTracedRequestHammer is the race-hammer of the tracing PR:
// concurrent traced requests against servers at Workers 1 and 4 must yield
// correctly-parented span trees (every trace sees exactly its own request's
// file) and per-request trace fingerprints that are identical across worker
// counts. CI runs it under -race at -cpu=1,4 (the name matches -run
// 'Determinism').
func TestDeterminismTracedRequestHammer(t *testing.T) {
	want := hammerFingerprints(t, 1)
	got := hammerFingerprints(t, 4)
	if len(want) != len(got) {
		t.Fatalf("retained sets differ: %d vs %d", len(want), len(got))
	}
	for file, fp := range want {
		if got[file] != fp {
			t.Errorf("%s: fingerprint %s at workers=4, want %s (workers=1)", file, got[file], fp)
		}
	}
}

func TestGoldenMetricsUnknownFormat(t *testing.T) {
	// Satellite contract: /metrics content negotiation answers an unknown
	// format with 406 and the uniform ledger-style error body, byte-exact.
	s := newTestServer(t, Options{})
	req := get(t, s, "/metrics?format=xml")
	assertGolden(t, req, http.StatusNotAcceptable, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   406,
		Category: "request",
		Message:  `unknown metrics format "xml" (want json or prom)`,
	}}))
	if ct := req.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("406 Content-Type = %q", ct)
	}
}

func TestGoldenTraceDetailNotFoundAndBadFormat(t *testing.T) {
	s := newTestServer(t, Options{Tracer: fakeTracer()})
	w := get(t, s, "/debug/traces/00000000000000ff")
	assertGolden(t, w, http.StatusNotFound, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   404,
		Category: "request",
		Message:  `no retained trace "00000000000000ff"`,
	}}))

	// Retain one trace, then ask for it in an unknown format.
	post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}}))
	id := s.Traces().List()[0].ID
	fw := get(t, s, "/debug/traces/"+id+"?format=yaml")
	assertGolden(t, fw, http.StatusNotAcceptable, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   406,
		Category: "request",
		Message:  `unknown trace format "yaml" (want json or text)`,
	}}))
}

func TestMetricsPromExposition(t *testing.T) {
	s := newTestServer(t, Options{})
	post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}}))
	w := get(t, s, "/metrics?format=prom")
	if w.Code != http.StatusOK {
		t.Fatalf("prom scrape = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body := w.Body.String()
	for _, want := range []string{
		"serve_check_requests_total 1",
		"# TYPE serve_check_latency_us histogram",
		"serve_check_latency_us_bucket{le=\"+Inf\"} 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q:\n%.800s", want, body)
		}
	}
	// JSON stays the default — the content negotiation is additive.
	jw := get(t, s, "/metrics?format=json")
	if jw.Code != http.StatusOK || !json.Valid(jw.Body.Bytes()) {
		t.Errorf("format=json = %d, valid JSON = %t", jw.Code, json.Valid(jw.Body.Bytes()))
	}
}

func TestTracedAnalyzeCarriesTraceID(t *testing.T) {
	s := newTestServer(t, Options{Tracer: fakeTracer(), TraceStore: trace.StoreOptions{SampleEvery: 1}})
	body, _ := json.Marshal(AnalyzeRequest{Changes: []ChangeSpec{{Old: ecbSource, New: gcmSource}}})
	w := post(t, s, "/v1/analyze", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp AnalyzeResponse
	decodeResp(t, w, &resp)
	if resp.TraceID == "" || resp.TraceID != w.Header().Get("X-Trace-Id") {
		t.Fatalf("trace_id = %q, header = %q", resp.TraceID, w.Header().Get("X-Trace-Id"))
	}
	rec := s.Traces().Get(resp.TraceID)
	if rec == nil {
		t.Fatal("analyze trace not retained")
	}
	if names := spanNames(rec.Root); !names["change[0]"] {
		t.Errorf("analyze trace missing change[0] span: %v", names)
	}
}
