// Package serve is the checker-as-a-service boundary: a long-running
// HTTP/JSON front-end over the request-scoped entry points of
// internal/core, hardened for the ROADMAP's "millions of users, heavy
// traffic" deployment shape. Every request flows through the same ladder:
//
//		admission → guard → analyze → respond
//
//	  - admission: a concurrency limiter sized off the analysis worker pool
//	    plus a bounded queue with deadline-aware load shedding (429 +
//	    Retry-After once the predicted queue wait exceeds the request's
//	    deadline). Overload turns into fast, honest rejections instead of a
//	    convoy of timeouts.
//	  - guard: each admitted request runs under resilience.Guard with a
//	    per-request step/wall budget derived from its context deadline, so a
//	    pathological snippet — a panic, an interpreter stall — returns a
//	    structured 422/504 and the process survives. One request can never
//	    take down the fleet member.
//	  - degradation: sustained shedding trips a circuit-style degraded mode
//	    that disables expensive options (witness provenance) until the queue
//	    drains; degraded responses advertise it.
//	  - drain: on SIGTERM the server stops admitting (503 + /readyz down),
//	    finishes in-flight requests within a drain budget, and reports any
//	    it had to drop.
//
// Everything is observable under serve.* in the shared obs registry:
// request/shed/degraded/failure counters, queue depth and inflight gauges,
// per-endpoint latency and queue-wait histograms.
package serve

import (
	"context"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trace"

	"repro/internal/core"
)

// Options configures the analysis server.
type Options struct {
	// Checker carries the per-request pipeline configuration (workers,
	// default step/wall budgets, metrics). Checker.Workers sizes the pool
	// *inside* one request; cross-request parallelism comes from
	// MaxConcurrent. The default (1) maximizes sustained throughput —
	// admission-level concurrency already saturates the cores.
	Checker core.Options
	// Rules is the rule set /v1/check evaluates (default: all).
	Rules []*rules.Rule
	// RulePacks are the rule-pack file paths behind the active set, kept
	// for hot reload: SIGHUP or POST /v1/rules/reload re-reads, re-lints,
	// and atomically swaps them in. Empty disables reload (and the
	// rules_epoch field, keeping responses byte-identical to a build
	// without pack support).
	RulePacks []string
	// RulesLax mirrors -rules-lax for reloads: a pack with error-level
	// lint findings still swaps in (broken rules skipped). Off, a failed
	// lint keeps the previous rule set live.
	RulesLax bool
	// MaxConcurrent bounds concurrently running analyses (default:
	// GOMAXPROCS, matching the worker pool the batch CLIs would use).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; one more is shed with
	// 429 (default 64).
	MaxQueue int
	// RequestTimeout is the per-request wall deadline (default 10s); a
	// request's timeout_ms can only tighten it.
	RequestTimeout time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight requests
	// (default 15s).
	DrainTimeout time.Duration
	// DegradeThreshold sheds within DegradeWindow trip degraded mode for
	// DegradeCooldown (defaults 8 / 2s / 5s; threshold <= 0 disables).
	DegradeThreshold int
	DegradeWindow    time.Duration
	DegradeCooldown  time.Duration
	// MaxBodyBytes bounds a request body (default 8 MiB).
	MaxBodyBytes int64
	// Now is the degrader's clock (tests inject a fake; default wall clock).
	Now func() time.Time
	// Tracer enables per-request hierarchical tracing: every API request
	// gets a root span (X-Trace-Id header, trace_id response field) with the
	// pipeline's stages as children, retained by tail-based sampling and
	// inspectable at /debug/traces. Nil keeps tracing off — every response
	// is then byte-identical to an untraced build.
	Tracer *trace.Tracer
	// TraceStore tunes the tail-based retention buffer behind /debug/traces
	// (zero values take the trace.StoreOptions defaults). Only consulted
	// when Tracer is set.
	TraceStore trace.StoreOptions
	// Artifacts is the server's process-lifetime artifact store: repeated
	// /v1/check and /v1/analyze requests over identical snippets resolve
	// from cache, and concurrent identical requests share one analysis
	// (per-key single-flight). Nil makes New build a private in-memory
	// store — server-side caching is on by default because responses are
	// byte-identical either way; pass a disk-backed store (-cache-dir) to
	// persist artifacts across restarts.
	Artifacts *artifact.Store
	// DisableArtifacts turns server-side artifact caching off entirely
	// (every request analyzes live). Chaos/fault-injection harnesses that
	// count analysis executions per request need this; production callers
	// should not.
	DisableArtifacts bool
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 15 * time.Second
	}
	if o.DegradeThreshold == 0 {
		o.DegradeThreshold = 8
	}
	if o.DegradeWindow <= 0 {
		o.DegradeWindow = 2 * time.Second
	}
	if o.DegradeCooldown <= 0 {
		o.DegradeCooldown = 5 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if len(o.Rules) == 0 {
		o.Rules = rules.All()
	}
	if o.Checker.Workers == 0 {
		o.Checker.Workers = 1
	}
	return o
}

// Server is one fault-contained analysis service instance.
type Server struct {
	opts   Options
	reg    *obs.Registry
	adm    *admission
	deg    *degrader
	mux    *http.ServeMux
	tracer *trace.Tracer
	traces *trace.Store

	// rstate is the live rule set, swapped atomically by ReloadRules so
	// in-flight requests keep the set they started with.
	rstate   atomic.Pointer[ruleState]
	reloadMu sync.Mutex // serializes reloads (epoch bumps are strictly ordered)

	draining atomic.Bool
	inflight atomic.Int64
	done     sync.WaitGroup // in-flight API requests, for drain accounting

	httpMu  sync.Mutex
	httpSrv *http.Server
	addr    string
}

// New builds a server; it serves nothing until Serve/ListenAndServe (or a
// test drives Handler directly).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	reg := opts.Checker.Metrics
	if opts.DisableArtifacts {
		opts.Artifacts = nil
	} else if opts.Artifacts == nil {
		opts.Artifacts = artifact.New(artifact.Config{Metrics: reg})
	}
	// The checker owns the cache lookups; every request-scoped checker and
	// DiffCode the handlers build inherits this store.
	opts.Checker.Artifacts = opts.Artifacts
	// One process-lifetime summary table: the per-request checkers the
	// handlers build all share it, so method summaries recorded for one
	// request serve every later request over the same sources (and persist
	// through the artifact store when one is disk-backed).
	if !opts.Checker.DisableSummaries && opts.Checker.Summaries == nil {
		opts.Checker.Summaries = summary.NewTable(opts.Artifacts, reg)
	}
	s := &Server{
		opts:   opts,
		reg:    reg,
		adm:    newAdmission(opts.MaxConcurrent, opts.MaxQueue, reg),
		deg:    newDegrader(opts.DegradeThreshold, opts.DegradeWindow, opts.DegradeCooldown, opts.Now, reg),
		tracer: opts.Tracer,
	}
	// Epoch 0 means "no packs configured": the rules_epoch field stays off
	// the wire and every response is byte-identical to a pack-less build.
	// With packs, the set loaded at startup is epoch 1.
	epoch := int64(0)
	if len(opts.RulePacks) > 0 {
		epoch = 1
	}
	s.rstate.Store(newRuleState(opts.Rules, epoch))
	if s.tracer != nil {
		s.traces = trace.NewStore(opts.TraceStore, reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", s.api("check", s.handleCheck))
	mux.HandleFunc("/v1/analyze", s.api("analyze", s.handleAnalyze))
	mux.HandleFunc("/v1/rules/reload", s.handleRulesReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.traces != nil {
		// Registered only when tracing is on, so an untraced server's URL
		// space (and its 404 surface) stays exactly what it was.
		mux.HandleFunc("/debug/traces", s.handleTraceList)
		mux.HandleFunc("/debug/traces/", s.handleTraceDetail)
	}
	if reg != nil {
		mux.Handle("/debug/", obs.NewDebugMux(reg))
	}
	s.mux = mux
	return s
}

// Traces returns the server's retained-trace buffer (nil when tracing is
// off); the CLI dumps it at shutdown.
func (s *Server) Traces() *trace.Store { return s.traces }

// Handler returns the server's HTTP handler (tests mount it directly).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's registry (nil when uninstrumented).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// ListenAndServe binds addr and serves until Drain or a listener error.
// The bound address is reachable via Addr (useful with ":0").
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Drain or a listener error.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.addr = ln.Addr().String()
	s.httpMu.Unlock()
	err := srv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Addr returns the bound listen address ("" before Serve).
func (s *Server) Addr() string {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	return s.addr
}

// DrainReport is the outcome of a graceful drain.
type DrainReport struct {
	// Finished counts API requests that were in flight when the drain
	// began and completed within the budget.
	Finished int64
	// Dropped counts API requests still running when the budget expired.
	Dropped int64
}

// Drain executes the graceful-shutdown sequence: stop admitting (new API
// requests get 503, /readyz goes down), wait for in-flight requests up to
// the drain budget, then close the listener. The report says whether every
// in-flight request got its response — the SIGTERM contract is zero
// dropped within the budget.
func (s *Server) Drain() DrainReport {
	s.draining.Store(true)
	s.reg.Gauge("serve.draining").Set(1)
	atStart := s.inflight.Load()

	finished := make(chan struct{})
	go func() {
		s.done.Wait()
		close(finished)
	}()
	budget := time.NewTimer(s.opts.DrainTimeout)
	defer budget.Stop()
	var report DrainReport
	select {
	case <-finished:
		report.Finished = atStart
	case <-budget.C:
		report.Dropped = s.inflight.Load()
		report.Finished = atStart - report.Dropped
	}

	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		// In-flight work is already accounted for; give lingering
		// connections a moment to flush and then cut them off.
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	s.reg.Counter("serve.drain.finished").Add(report.Finished)
	s.reg.Counter("serve.drain.dropped").Add(report.Dropped)
	return report
}

// Draining reports whether the server has begun its drain sequence.
func (s *Server) Draining() bool { return s.draining.Load() }
