package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
)

// The golden tests pin the exact bytes of every error surface of the HTTP
// API. The bodies are part of the service contract: clients branch on
// status + category, operators grep logs for these messages, and the CI
// smoke test curls them verbatim. Any change here is a wire-format change
// and must be deliberate.

func mustCompact(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

func assertGolden(t *testing.T, w *httptest.ResponseRecorder, wantStatus int, want string) {
	t.Helper()
	if w.Code != wantStatus {
		t.Errorf("status = %d, want %d", w.Code, wantStatus)
	}
	if got := w.Body.String(); got != want {
		t.Errorf("body mismatch:\n got: %s\nwant: %s", got, want)
	}
}

func TestGoldenMalformedJSON(t *testing.T) {
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", "{nope")
	assertGolden(t, w, http.StatusBadRequest, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   400,
		Category: "request",
		Message:  "decoding request body: invalid character 'n' looking for beginning of object key string",
	}}))
	if s.Metrics().Counter("serve.errors.request").Value() != 1 {
		t.Error("serve.errors.request not counted")
	}
}

func TestGoldenEmptySources(t *testing.T) {
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", `{"sources":{}}`)
	assertGolden(t, w, http.StatusUnprocessableEntity, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   422,
		Category: "io",
		Message:  "no sources in request",
	}}))
}

func TestGoldenUnknownRule(t *testing.T) {
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{
		Sources: map[string]string{"App.java": ecbSource}, Rules: []string{"R99"},
	}))
	assertGolden(t, w, http.StatusUnprocessableEntity, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   422,
		Category: "io",
		Message:  `unknown rule "R99"`,
	}}))
}

func TestGoldenUnknownTargetClass(t *testing.T) {
	s := newTestServer(t, Options{})
	body, _ := json.Marshal(AnalyzeRequest{
		Changes: []ChangeSpec{{Old: ecbSource, New: gcmSource}},
		Classes: []string{"NotACryptoClass"},
	})
	w := post(t, s, "/v1/analyze", string(body))
	assertGolden(t, w, http.StatusUnprocessableEntity, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   422,
		Category: "io",
		Message:  `unknown target class "NotACryptoClass"`,
	}}))
}

func TestGoldenBudgetExhausted(t *testing.T) {
	// A one-step budget trips on the first interpreter step: the ledger
	// category is "budget" and the server surfaces it as a 504 — the
	// gateway-timeout of a one-process fleet.
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{
		Sources: map[string]string{"App.java": ecbSource}, BudgetSteps: 1,
	}))
	assertGolden(t, w, http.StatusGatewayTimeout, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   504,
		Category: "budget",
		Message:  "analysis budget exhausted after 1 steps",
	}}))
	if s.Metrics().Counter("serve.check.failures").Value() != 1 {
		t.Error("serve.check.failures not counted")
	}
}

func TestGoldenInjectedPanic(t *testing.T) {
	// A panic on a pathological snippet is recovered by resilience.Guard
	// and surfaces as a structured 422 naming the task — the process, and
	// every concurrent request, survives.
	resilience.SetFaultInjector(func(task string) error {
		if task == "check" {
			panic("boom")
		}
		return nil
	})
	defer resilience.ClearFaultInjector()
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{
		Sources: map[string]string{"App.java": ecbSource},
	}))
	assertGolden(t, w, http.StatusUnprocessableEntity, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   422,
		Category: "panic",
		Message:  "panic in check: boom",
	}}))

	// The same server answers normally once the fault is gone.
	resilience.ClearFaultInjector()
	if w := post(t, s, "/v1/check", checkBody(t, CheckRequest{
		Sources: map[string]string{"App.java": ecbSource},
	})); w.Code != http.StatusOK {
		t.Errorf("post-panic request = %d, want 200", w.Code)
	}
}

func TestGoldenLoadShed(t *testing.T) {
	// One slot, one queue seat. A stalled request holds the slot, a second
	// waits, and the third is shed with the full 429 contract: Retry-After
	// header, category "shed", machine-readable retry_after_sec. No request
	// has completed yet, so the EWMA is cold and the backoff is its 1s floor
	// — the body is exact.
	stall := make(chan struct{})
	resilience.SetFaultInjector(func(task string) error {
		if task == "check" {
			<-stall
		}
		return nil
	})
	defer resilience.ClearFaultInjector()

	s := newTestServer(t, Options{MaxConcurrent: 1, MaxQueue: 1, DegradeThreshold: -1})
	body := checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if w := post(t, s, "/v1/check", body); w.Code != http.StatusOK {
				t.Errorf("stalled request finished with %d, want 200", w.Code)
			}
		}()
		if i == 0 {
			// The first request must own the slot before the second queues.
			waitFor(t, func() bool { return len(s.adm.slots) == 1 })
		}
	}
	waitFor(t, func() bool { return s.adm.waiting.Load() == 1 })

	w := post(t, s, "/v1/check", body)
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	assertGolden(t, w, http.StatusTooManyRequests, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:        429,
		Category:      "shed",
		Message:       "overloaded: queue_full",
		RetryAfterSec: 1,
	}}))
	if s.Metrics().Counter("serve.shed.queue_full").Value() != 1 {
		t.Error("serve.shed.queue_full not counted")
	}

	close(stall)
	wg.Wait()
}

func TestGoldenDegradedMarker(t *testing.T) {
	// Under degraded mode a why request still answers — same violations —
	// but the traces are withheld and the response says so. Clients learn
	// their traces were dropped by policy, not absent from the analysis.
	cur := time.Unix(1700000000, 0)
	s := newTestServer(t, Options{
		DegradeThreshold: 1,
		DegradeWindow:    time.Second,
		DegradeCooldown:  time.Minute,
		Now:              func() time.Time { return cur },
	})
	s.deg.noteShed() // threshold 1: one shed trips the circuit

	body := checkBody(t, CheckRequest{
		Sources: map[string]string{"App.java": ecbSource}, Rules: []string{"R7"}, Why: true,
	})
	w := post(t, s, "/v1/check", body)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded check = %d, body %s", w.Code, w.Body.String())
	}
	var resp CheckResponse
	decodeResp(t, w, &resp)
	if !resp.Degraded || len(resp.Disabled) != 1 || resp.Disabled[0] != "why" {
		t.Errorf("degraded marker missing: %+v", resp)
	}
	if len(resp.Traces) != 0 {
		t.Error("degraded response still carries traces")
	}
	if len(resp.Violations) != 1 || resp.Violations[0].Rule != "R7" {
		t.Errorf("degraded response lost violations: %+v", resp.Violations)
	}
	if !strings.Contains(w.Body.String(), `"degraded":true,"disabled":["why"]`) {
		t.Errorf("wire form of the degraded marker changed: %s", w.Body.String())
	}
	if s.Metrics().Counter("serve.degraded.requests").Value() != 1 {
		t.Error("serve.degraded.requests not counted")
	}
	// readyz advertises degradation but stays ready: degraded still serves.
	if rw := get(t, s, "/readyz"); !strings.Contains(rw.Body.String(), `"degraded":true`) {
		t.Errorf("readyz does not advertise degradation: %s", rw.Body.String())
	}

	// The cooldown elapses: traces come back without operator action.
	cur = cur.Add(2 * time.Minute)
	w = post(t, s, "/v1/check", body)
	var healed CheckResponse
	decodeResp(t, w, &healed)
	if healed.Degraded || len(healed.Traces) == 0 {
		t.Errorf("circuit did not close after cooldown: %+v", healed)
	}
}

func TestGoldenMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Options{})
	w := get(t, s, "/v1/check")
	assertGolden(t, w, http.StatusMethodNotAllowed, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   405,
		Category: "request",
		Message:  "use POST",
	}}))
}

func TestGoldenDraining(t *testing.T) {
	s := newTestServer(t, Options{DrainTimeout: time.Second})
	s.Drain()
	w := post(t, s, "/v1/check", "{}")
	assertGolden(t, w, http.StatusServiceUnavailable, mustCompact(t, ErrorBody{Error: ErrorInfo{
		Status:   503,
		Category: "draining",
		Message:  "server is draining",
	}}))
}
