package serve

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
)

// deepChainDES hides a DES misuse six helper calls deep — past the default
// MaxInline=4 cliff of the summaries-off interpreter.
const deepChainDES = `class Deep {
    void entry() {
        h1("DES");
    }
    void h1(String a) { h2(a); }
    void h2(String a) { h3(a); }
    void h3(String a) { h4(a); }
    void h4(String a) { h5(a); }
    void h5(String a) { h6(a); }
    void h6(String a) {
        Cipher c = Cipher.getInstance(a);
    }
}
`

func checkViolationIDs(resp CheckResponse) []string {
	var ids []string
	for _, v := range resp.Violations {
		ids = append(ids, v.Rule)
	}
	return ids
}

// TestCheckMaxInlineNegative pins the request-validation contract: a
// negative max_inline is a 422 before any analysis runs.
func TestCheckMaxInlineNegative(t *testing.T) {
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{
		Sources:   map[string]string{"App.java": ecbSource},
		MaxInline: -1,
	}))
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "max_inline") {
		t.Errorf("error body does not name the field: %s", w.Body.String())
	}
}

// TestCheckMaxInlineThreaded proves the field reaches the interpreter: on a
// summaries-disabled server the depth-6 misuse is invisible at the default
// bound and detected once the request raises max_inline past the chain.
func TestCheckMaxInlineThreaded(t *testing.T) {
	s := newTestServer(t, Options{Checker: core.Options{DisableSummaries: true}})
	sources := map[string]string{"Deep.java": deepChainDES}

	var shallow CheckResponse
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: sources, Rules: []string{"R8"}}))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	decodeResp(t, w, &shallow)
	if ids := checkViolationIDs(shallow); len(ids) != 0 {
		t.Fatalf("default max_inline detects the depth-6 misuse (%v); the cliff moved", ids)
	}

	var deep CheckResponse
	w = post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: sources, Rules: []string{"R8"}, MaxInline: 8}))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	decodeResp(t, w, &deep)
	if ids := checkViolationIDs(deep); len(ids) != 1 || ids[0] != "R8" {
		t.Fatalf("max_inline=8 violations = %v, want [R8]", ids)
	}
}

// TestCheckSummariesDefaultLiftsDepth pins the server default: with
// summaries on (no option set), the same depth-6 misuse is detected without
// any per-request override, and repeated requests hit the process-lifetime
// summary table.
func TestCheckSummariesDefaultLiftsDepth(t *testing.T) {
	s := newTestServer(t, Options{})
	sources := map[string]string{"Deep.java": deepChainDES}
	body := checkBody(t, CheckRequest{Sources: sources, Rules: []string{"R8"}})

	var resp CheckResponse
	w := post(t, s, "/v1/check", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	decodeResp(t, w, &resp)
	if ids := checkViolationIDs(resp); len(ids) != 1 || ids[0] != "R8" {
		t.Fatalf("summaries-on violations = %v, want [R8]", ids)
	}
	if hits := s.Metrics().Counter("summary.misses").Value(); hits < 1 {
		t.Errorf("summary.misses = %d after first request, want >= 1", hits)
	}
}
