package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// ecbSource is the canonical violating snippet: an ECB-mode Cipher with
// the default provider trips R5 and R7 deterministically.
const ecbSource = `import javax.crypto.Cipher;
class App {
  void f() throws Exception {
    Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding");
  }
}`

// gcmSource is the fixed counterpart of ecbSource.
const gcmSource = `import javax.crypto.Cipher;
class App {
  void f() throws Exception {
    Cipher c = Cipher.getInstance("AES/GCM/NoPadding");
  }
}`

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Checker.Metrics == nil {
		opts.Checker.Metrics = obs.NewRegistry()
	}
	return New(opts)
}

// post drives the server's handler directly (no network) and returns the
// recorded response.
func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// checkBody builds a /v1/check request body for the given sources.
func checkBody(t *testing.T, req CheckRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func decodeResp(t *testing.T, w *httptest.ResponseRecorder, into any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), into); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
}

func TestCheckFindsViolations(t *testing.T) {
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}}))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !bytes.HasSuffix(w.Body.Bytes(), []byte("\n")) {
		t.Error("response body is not newline-terminated")
	}
	var resp CheckResponse
	decodeResp(t, w, &resp)
	ids := map[string]bool{}
	for _, v := range resp.Violations {
		ids[v.Rule] = true
		if len(v.Objects) == 0 {
			t.Errorf("violation %s has no witness objects", v.Rule)
		}
	}
	if !ids["R7"] {
		t.Errorf("ECB snippet did not trip R7; got %v", ids)
	}
	if resp.Degraded || len(resp.Traces) != 0 {
		t.Errorf("unexpected degraded/traces in plain check: %+v", resp)
	}
}

func TestCheckWhyReturnsTraces(t *testing.T) {
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{
		Sources: map[string]string{"App.java": ecbSource}, Why: true,
	}))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	var resp CheckResponse
	decodeResp(t, w, &resp)
	if len(resp.Traces) == 0 {
		t.Fatal("why=true returned no traces")
	}
	if !strings.Contains(w.Body.String(), `"sink"`) {
		t.Error("traces carry no sink step")
	}
	if len(resp.Traces) != len(resp.Violations) {
		t.Errorf("traces = %d, violations = %d; want one trace per violation",
			len(resp.Traces), len(resp.Violations))
	}
}

func TestCheckRuleSubset(t *testing.T) {
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{
		Sources: map[string]string{"App.java": ecbSource}, Rules: []string{"R7"},
	}))
	var resp CheckResponse
	decodeResp(t, w, &resp)
	if len(resp.Violations) != 1 || resp.Violations[0].Rule != "R7" {
		t.Errorf("rules=[R7] returned %+v", resp.Violations)
	}
}

func TestCheckCleanSourceEmptyViolations(t *testing.T) {
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{
		Sources: map[string]string{"App.java": gcmSource}, Rules: []string{"R7"},
	}))
	// The violations field must be [] on the wire, not null: clients range
	// over it without a nil check.
	if !strings.Contains(w.Body.String(), `"violations":[]`) {
		t.Errorf("clean check body = %s, want explicit empty violations array", w.Body.String())
	}
}

func TestAnalyzeFindsSemanticChange(t *testing.T) {
	s := newTestServer(t, Options{})
	body, _ := json.Marshal(AnalyzeRequest{Changes: []ChangeSpec{{Old: ecbSource, New: gcmSource}}})
	w := post(t, s, "/v1/analyze", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	var resp AnalyzeResponse
	decodeResp(t, w, &resp)
	if len(resp.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(resp.Results))
	}
	r := resp.Results[0]
	if r.Error != nil {
		t.Fatalf("unexpected change error: %+v", r.Error)
	}
	if len(r.UsageChanges) == 0 {
		t.Fatal("ECB→GCM produced no usage changes")
	}
	uc := r.UsageChanges[0]
	if uc.Class != "Cipher" || uc.Label != "semantic change" {
		t.Errorf("usage change = %+v, want Cipher semantic change", uc)
	}
	if !strings.Contains(uc.Text, "AES/GCM/NoPadding") {
		t.Errorf("usage change text does not show the new transformation: %q", uc.Text)
	}
}

func TestAnalyzeBatchOrderAndIndexes(t *testing.T) {
	s := newTestServer(t, Options{})
	body, _ := json.Marshal(AnalyzeRequest{Changes: []ChangeSpec{
		{Old: ecbSource, New: gcmSource},
		{Old: gcmSource, New: gcmSource}, // no-op change
		{Old: ecbSource, New: gcmSource},
	}})
	w := post(t, s, "/v1/analyze", string(body))
	var resp AnalyzeResponse
	decodeResp(t, w, &resp)
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Index != i {
			t.Errorf("results[%d].Index = %d", i, r.Index)
		}
	}
	if len(resp.Results[1].UsageChanges) != 0 {
		t.Errorf("no-op change reported usage changes: %+v", resp.Results[1].UsageChanges)
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	s := newTestServer(t, Options{})
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz = %d", w.Code)
	}
	w := get(t, s, "/readyz")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ready"`) {
		t.Errorf("readyz = %d %s", w.Code, w.Body.String())
	}
}

func TestMetricsEndpointCountsRequests(t *testing.T) {
	s := newTestServer(t, Options{})
	post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}}))
	w := get(t, s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	var snap struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
	}
	decodeResp(t, w, &snap)
	if snap.Schema != "diffcode-metrics/v1" {
		t.Errorf("schema = %q", snap.Schema)
	}
	if snap.Counters["serve.check.requests"] != 1 {
		t.Errorf("serve.check.requests = %d, want 1", snap.Counters["serve.check.requests"])
	}
}

func TestTimeoutHeaderTightensDeadline(t *testing.T) {
	s := newTestServer(t, Options{RequestTimeout: time.Minute})
	req := httptest.NewRequest(http.MethodPost, "/v1/check",
		strings.NewReader(checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}})))
	req.Header.Set("X-Timeout-Ms", "30000")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
}

func TestDrainIdleServer(t *testing.T) {
	s := newTestServer(t, Options{DrainTimeout: time.Second})
	rep := s.Drain()
	if rep.Finished != 0 || rep.Dropped != 0 {
		t.Errorf("idle drain = %+v, want zero/zero", rep)
	}
	if !s.Draining() {
		t.Error("Draining() = false after Drain")
	}
	// Draining servers refuse API work but stay live for the orchestrator.
	if w := post(t, s, "/v1/check", "{}"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("check while draining = %d, want 503", w.Code)
	}
	if w := get(t, s, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", w.Code)
	}
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200", w.Code)
	}
}

func TestAdmissionShedsWhenSaturated(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(1, 1, reg)
	release, shed := a.acquire(context.Background())
	if shed != nil {
		t.Fatalf("first acquire shed: %+v", shed)
	}
	// Slot busy: a waiter whose context is already canceled sheds with
	// queue_wait instead of blocking forever.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, shed := a.acquire(canceled); shed == nil || shed.reason != "queue_wait" {
		t.Errorf("canceled waiter shed = %+v, want queue_wait", shed)
	}
	// Two concurrent waiters against maxQueue=1: the queue is full for the
	// second, which is shed immediately even though its context is live.
	blocked := make(chan struct{})
	go func() {
		rel, shed := a.acquire(context.Background())
		if shed == nil {
			<-blocked
			rel()
		}
	}()
	waitFor(t, func() bool { return a.waiting.Load() == 1 })
	_, overflow := a.acquire(context.Background())
	if overflow == nil || overflow.reason != "queue_full" {
		t.Fatalf("overflow waiter shed = %+v, want queue_full", overflow)
	}
	if overflow.retryAfter < time.Second {
		t.Errorf("retryAfter = %v, want >= 1s", overflow.retryAfter)
	}
	close(blocked)
	release()
}

func TestDegraderTripsAndCools(t *testing.T) {
	cur := time.Unix(1700000000, 0) // fake clock, advanced by hand
	reg := obs.NewRegistry()
	g := newDegrader(3, 2*time.Second, 5*time.Second, func() time.Time { return cur }, reg)

	g.noteShed()
	g.noteShed()
	if g.degraded() {
		t.Fatal("degraded below threshold")
	}
	g.noteShed()
	if !g.degraded() {
		t.Fatal("not degraded at threshold")
	}
	if reg.Counter("serve.degraded.entered").Value() != 1 {
		t.Errorf("degraded.entered = %d, want 1", reg.Counter("serve.degraded.entered").Value())
	}
	// A shed while degraded extends the cooldown without re-counting entry.
	cur = cur.Add(4 * time.Second)
	g.noteShed()
	g.noteShed()
	g.noteShed()
	if reg.Counter("serve.degraded.entered").Value() != 1 {
		t.Errorf("degraded.entered double-counted: %d", reg.Counter("serve.degraded.entered").Value())
	}
	// Past the cooldown the circuit closes.
	cur = cur.Add(6 * time.Second)
	if g.degraded() {
		t.Error("still degraded after cooldown")
	}
	if reg.Gauge("serve.degraded").Value() != 0 {
		t.Errorf("serve.degraded gauge = %d after cooldown", reg.Gauge("serve.degraded").Value())
	}
	// Old sheds aged out of the window: one fresh shed must not re-trip.
	g.noteShed()
	if g.degraded() {
		t.Error("single fresh shed re-tripped the degrader")
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
