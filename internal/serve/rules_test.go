package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/rulelint"
)

// kgSource trips any pack rule over KeyGenerator.init with a threshold
// above 32 bits.
const kgSource = `import javax.crypto.KeyGenerator;
class App {
  void f() throws Exception {
    KeyGenerator kg = KeyGenerator.getInstance("AES");
    kg.init(32);
  }
}`

const (
	packV1     = "P900 | v1 | KeyGenerator : init(X) ∧ X<64\n"
	packV2     = "P901 | v2 | KeyGenerator : init(X) ∧ X<512\n"
	packBroken = "R7 | shadow | Cipher : getInstance(X) ∧ X=AES\n"
)

func writePack(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// newRuleServer mirrors the CLI wiring: load+lint the packs, hand the
// merged set and the paths to the server.
func newRuleServer(t *testing.T, paths []string, lax bool) *Server {
	t.Helper()
	res, err := rulelint.Load(paths)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.HasErrors() && !lax {
		t.Fatalf("test pack does not lint:\n%s", res.Report.Render())
	}
	return newTestServer(t, Options{Rules: res.Active, RulePacks: paths, RulesLax: lax})
}

func checkIDs(t *testing.T, s *Server) (map[string]bool, int64) {
	t.Helper()
	w := post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: map[string]string{"App.java": kgSource}}))
	if w.Code != http.StatusOK {
		t.Fatalf("check status = %d, body %s", w.Code, w.Body.String())
	}
	var resp CheckResponse
	decodeResp(t, w, &resp)
	ids := map[string]bool{}
	for _, v := range resp.Violations {
		ids[v.Rule] = true
	}
	return ids, resp.RulesEpoch
}

func TestReloadSwapsAndBumpsEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pack.rules")
	writePack(t, path, packV1)
	s := newRuleServer(t, []string{path}, false)

	ids, epoch := checkIDs(t, s)
	if !ids["P900"] || ids["P901"] {
		t.Fatalf("initial set: got %v, want P900 only", ids)
	}
	if epoch != 1 {
		t.Fatalf("initial rules_epoch = %d, want 1", epoch)
	}

	writePack(t, path, packV2)
	w := post(t, s, "/v1/rules/reload", "")
	if w.Code != http.StatusOK {
		t.Fatalf("reload status = %d, body %s", w.Code, w.Body.String())
	}
	var out ReloadResult
	decodeResp(t, w, &out)
	if !out.OK || out.Epoch != 2 {
		t.Fatalf("reload result: %+v, want ok epoch 2", out)
	}

	ids, epoch = checkIDs(t, s)
	if ids["P900"] || !ids["P901"] {
		t.Fatalf("reloaded set: got %v, want P901 only", ids)
	}
	if epoch != 2 {
		t.Fatalf("reloaded rules_epoch = %d, want 2", epoch)
	}
}

func TestReloadFailureKeepsOldSet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pack.rules")
	writePack(t, path, packV1)
	s := newRuleServer(t, []string{path}, false)

	// A pack with an error finding (RL010 built-in collision): refused.
	writePack(t, path, packBroken)
	w := post(t, s, "/v1/rules/reload", "")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("broken reload status = %d, want 422 (body %s)", w.Code, w.Body.String())
	}
	var out ReloadResult
	decodeResp(t, w, &out)
	if out.OK || out.Report == nil || !out.Report.HasErrors() {
		t.Fatalf("broken reload result: %+v, want refused with report", out)
	}

	// An unreadable pack file: refused too.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	w = post(t, s, "/v1/rules/reload", "")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("missing-file reload status = %d, want 422", w.Code)
	}

	// Both failures kept the old generation live.
	ids, epoch := checkIDs(t, s)
	if !ids["P900"] || epoch != 1 {
		t.Fatalf("after failed reloads: ids %v epoch %d, want P900 at epoch 1", ids, epoch)
	}
}

func TestReloadLaxLoadsWhatCompiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pack.rules")
	writePack(t, path, packV1)
	s := newRuleServer(t, []string{path}, true)

	// Under -rules-lax an erroring pack still swaps: the built-in wins the
	// collision, the shadow rule is dropped, and the epoch bumps.
	writePack(t, path, packBroken+packV2)
	w := post(t, s, "/v1/rules/reload", "")
	if w.Code != http.StatusOK {
		t.Fatalf("lax reload status = %d, body %s", w.Code, w.Body.String())
	}
	ids, epoch := checkIDs(t, s)
	if ids["P900"] || !ids["P901"] || epoch != 2 {
		t.Fatalf("lax reload: ids %v epoch %d, want P901 at epoch 2", ids, epoch)
	}
}

func TestReloadWithoutPacks(t *testing.T) {
	s := newTestServer(t, Options{})
	w := post(t, s, "/v1/rules/reload", "")
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("no-pack reload status = %d, want 422", w.Code)
	}
	var out ReloadResult
	decodeResp(t, w, &out)
	if out.OK || !strings.Contains(out.Err, "no rule packs configured") {
		t.Fatalf("no-pack reload result: %+v", out)
	}
	// Without packs nothing mentions an epoch: the no-flag byte-compat
	// contract (golden_test.go pins the full bodies; this pins the field).
	cw := post(t, s, "/v1/check", checkBody(t, CheckRequest{Sources: map[string]string{"App.java": ecbSource}}))
	if strings.Contains(cw.Body.String(), "rules_epoch") {
		t.Fatalf("no-pack check response leaks rules_epoch: %s", cw.Body.String())
	}
}

func TestReloadMethodAndDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pack.rules")
	writePack(t, path, packV1)
	s := newRuleServer(t, []string{path}, false)
	if w := get(t, s, "/v1/rules/reload"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload status = %d, want 405", w.Code)
	}
}

func TestReadyzReportsEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pack.rules")
	writePack(t, path, packV1)
	s := newRuleServer(t, []string{path}, false)
	w := get(t, s, "/readyz")
	if w.Code != http.StatusOK {
		t.Fatalf("readyz status = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), `"rules_epoch":1`) {
		t.Fatalf("readyz body missing rules_epoch: %s", w.Body.String())
	}
}

// TestConcurrentReload hammers /v1/check from many goroutines while the
// rule set hot-swaps underneath them (run under -race in CI): every
// response must reflect exactly one generation — the epoch and the
// violation set always agree.
func TestConcurrentReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pack.rules")
	writePack(t, path, packV1)
	s := newRuleServer(t, []string{path}, false)

	body := checkBody(t, CheckRequest{Sources: map[string]string{"App.java": kgSource}})
	const checkers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < checkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Goroutine-safe check path: t.Errorf only (no Fatal off
				// the test goroutine).
				req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(body))
				w := httptest.NewRecorder()
				s.Handler().ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("check status = %d, body %s", w.Code, w.Body.String())
					return
				}
				var resp CheckResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					t.Errorf("decoding response %q: %v", w.Body.String(), err)
					return
				}
				ids := map[string]bool{}
				for _, v := range resp.Violations {
					ids[v.Rule] = true
				}
				odd := resp.RulesEpoch%2 == 1
				if odd && (!ids["P900"] || ids["P901"]) {
					t.Errorf("epoch %d (v1) saw %v", resp.RulesEpoch, ids)
				}
				if !odd && (ids["P900"] || !ids["P901"]) {
					t.Errorf("epoch %d (v2) saw %v", resp.RulesEpoch, ids)
				}
			}
		}()
	}

	const reloads = 6
	for i := 0; i < reloads; i++ {
		if i%2 == 0 {
			writePack(t, path, packV2)
		} else {
			writePack(t, path, packV1)
		}
		w := post(t, s, "/v1/rules/reload", "")
		if w.Code != http.StatusOK {
			t.Fatalf("reload %d status = %d, body %s", i, w.Code, w.Body.String())
		}
	}
	close(stop)
	wg.Wait()
	if got := s.RulesEpoch(); got != reloads+1 {
		t.Fatalf("final epoch = %d, want %d", got, reloads+1)
	}
}
