package serve

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// degrader is the circuit-style degraded-mode controller. Shedding is the
// signal: every admission rejection is noted, and once Threshold sheds
// land inside Window the server enters degraded mode for Cooldown —
// expensive request options (witness provenance, the -why of the CLIs) are
// disabled so each admitted request finishes faster and the queue drains.
// Further sheds while degraded extend the cooldown (the circuit stays open
// under sustained overload and closes Cooldown after the last trip).
// Degraded responses advertise the mode, so clients know their traces were
// withheld by policy rather than absent from the analysis.
type degrader struct {
	window    time.Duration
	cooldown  time.Duration
	threshold int
	now       func() time.Time
	reg       *obs.Registry

	mu    sync.Mutex
	sheds []time.Time // recent shed timestamps, pruned to window
	until time.Time   // degraded while now < until
}

func newDegrader(threshold int, window, cooldown time.Duration, now func() time.Time, reg *obs.Registry) *degrader {
	if now == nil {
		now = time.Now
	}
	return &degrader{window: window, cooldown: cooldown, threshold: threshold, now: now, reg: reg}
}

// noteShed records one admission rejection and trips degraded mode when
// the windowed shed count reaches the threshold.
func (g *degrader) noteShed() {
	if g.threshold <= 0 {
		return
	}
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sheds = append(g.sheds, now)
	cut := 0
	for cut < len(g.sheds) && now.Sub(g.sheds[cut]) > g.window {
		cut++
	}
	g.sheds = g.sheds[cut:]
	if len(g.sheds) >= g.threshold {
		if !g.active(now) {
			g.reg.Counter("serve.degraded.entered").Inc()
		}
		g.until = now.Add(g.cooldown)
		g.reg.Gauge("serve.degraded").Set(1)
	}
}

// degraded reports whether the server is currently in degraded mode.
func (g *degrader) degraded() bool {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	on := g.active(now)
	if !on {
		g.reg.Gauge("serve.degraded").Set(0)
	}
	return on
}

func (g *degrader) active(now time.Time) bool { return now.Before(g.until) }
