package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/change"
	"repro/internal/core"
	"repro/internal/cryptoapi"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/rules"
	"repro/internal/trace"
	"repro/internal/witness"
)

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

// CheckRequest is the /v1/check request body: a source bundle to analyze
// as one program.
type CheckRequest struct {
	// Sources maps file name → Java source.
	Sources map[string]string `json:"sources"`
	// Rules restricts the evaluated rule set to these IDs (default: all).
	Rules []string `json:"rules,omitempty"`
	// Context carries the Android facts rule R6 needs.
	Context *RuleContext `json:"context,omitempty"`
	// Why asks for witness traces per violation. Under degraded mode the
	// server may refuse and say so in the response.
	Why bool `json:"why,omitempty"`
	// BudgetSteps tightens the server's per-request step budget (it can
	// never loosen it).
	BudgetSteps int64 `json:"budget_steps,omitempty"`
	// TimeoutMs tightens the server's per-request deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// MaxInline overrides the call-inlining depth bound for this request
	// (0 or absent keeps the server's configured bound; negative is a
	// request error). With summaries on the bound only matters to the
	// legacy interpreter paths — cycle detection replaces the depth cliff.
	MaxInline int `json:"max_inline,omitempty"`
}

// RuleContext mirrors rules.Context on the wire.
type RuleContext struct {
	Android       bool `json:"android,omitempty"`
	MinSDKVersion int  `json:"min_sdk,omitempty"`
	HasLPRNG      bool `json:"lprng,omitempty"`
}

// CheckResponse is the /v1/check response body.
type CheckResponse struct {
	Violations []Violation `json:"violations"`
	// Traces carries the witness traces when the request asked why and the
	// server was not degraded.
	Traces []witness.Trace `json:"traces,omitempty"`
	// Degraded advertises that the server is in degraded mode; Disabled
	// lists the request options it refused ("why").
	Degraded bool     `json:"degraded,omitempty"`
	Disabled []string `json:"disabled,omitempty"`
	// TraceID identifies this request's trace when the server runs with
	// tracing on (look it up at /debug/traces/<id>); absent otherwise.
	TraceID string `json:"trace_id,omitempty"`
	// RulesEpoch is the generation of the rule set that evaluated this
	// request; it bumps on every successful hot reload. Absent when the
	// server runs without rule packs.
	RulesEpoch int64 `json:"rules_epoch,omitempty"`
}

// Violation is one matched rule on the wire.
type Violation struct {
	Rule        string   `json:"rule"`
	Description string   `json:"description"`
	Formula     string   `json:"formula"`
	Objects     []Object `json:"objects"`
}

// Object locates one witness object of a violation.
type Object struct {
	Label string `json:"label"`
	Line  int    `json:"line"`
}

// AnalyzeRequest is the /v1/analyze request body: a batch of code changes
// to abstract and diff (the DiffCode front-end as a service).
type AnalyzeRequest struct {
	Changes []ChangeSpec `json:"changes"`
	// Classes restricts extraction to these target classes (default: all).
	Classes   []string `json:"classes,omitempty"`
	TimeoutMs int64    `json:"timeout_ms,omitempty"`
}

// ChangeSpec is one old/new pair with optional provenance.
type ChangeSpec struct {
	Old     string `json:"old"`
	New     string `json:"new"`
	Project string `json:"project,omitempty"`
	Commit  string `json:"commit,omitempty"`
	File    string `json:"file,omitempty"`
	Message string `json:"message,omitempty"`
}

// AnalyzeResponse is the /v1/analyze response body. The batch is fault
// contained at change granularity: a change that panics or exhausts its
// budget carries an inline error while its siblings analyze normally.
type AnalyzeResponse struct {
	Results  []ChangeResult `json:"results"`
	Degraded bool           `json:"degraded,omitempty"`
	// TraceID identifies this request's trace when tracing is on.
	TraceID string `json:"trace_id,omitempty"`
}

// ChangeResult is the outcome for one change of the batch.
type ChangeResult struct {
	Index        int           `json:"index"`
	UsageChanges []UsageChange `json:"usage_changes,omitempty"`
	Error        *ErrorInfo    `json:"error,omitempty"`
}

// UsageChange is one semantic usage change on the wire.
type UsageChange struct {
	Class string `json:"class"`
	Label string `json:"label"`
	Text  string `json:"text"`
}

// ErrorBody is the uniform error envelope of every non-2xx response.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo describes one failure in ledger vocabulary: Category is the
// resilience taxonomy ("panic", "budget", "io", "canceled") plus the
// server-boundary categories "request", "shed", and "draining".
type ErrorInfo struct {
	Status        int    `json:"status"`
	Category      string `json:"category"`
	Message       string `json:"message"`
	RetryAfterSec int64  `json:"retry_after_sec,omitempty"`
	// TraceID identifies the failed request's trace when tracing is on —
	// failed traces are always retained, so the ID is always resolvable at
	// /debug/traces/<id> until it ages out of the ring.
	TraceID string `json:"trace_id,omitempty"`
}

// ---------------------------------------------------------------------------
// Request plumbing
// ---------------------------------------------------------------------------

// writeJSON writes v as a compact JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// writeError writes the uniform error envelope. When ctx carries a trace
// span the failure category annotates it (so tail-based retention keeps the
// trace) and the envelope names the trace; on an untraced ctx the envelope
// is byte-identical to the untraced build's.
func (s *Server) writeError(ctx context.Context, w http.ResponseWriter, status int, category, message string) {
	s.reg.Counter("serve.errors." + category).Inc()
	sp := trace.FromContext(ctx)
	sp.Annotate(category)
	writeJSON(w, status, ErrorBody{Error: ErrorInfo{
		Status: status, Category: category, Message: message, TraceID: sp.TraceID(),
	}})
}

// writeShed writes the 429 load-shed response with its Retry-After hint
// and feeds the degrader. A shed request's trace is annotated "shed" — the
// boundary category of the ledger taxonomy — and always retained.
func (s *Server) writeShed(ctx context.Context, w http.ResponseWriter, shed *shedInfo) {
	s.reg.Counter("serve.shed").Inc()
	s.reg.Counter("serve.shed." + shed.reason).Inc()
	s.deg.noteShed()
	sec := int64(shed.retryAfter / time.Second)
	if sec < 1 {
		sec = 1
	}
	sp := trace.FromContext(ctx)
	sp.Annotate("shed")
	w.Header().Set("Retry-After", strconv.FormatInt(sec, 10))
	writeJSON(w, http.StatusTooManyRequests, ErrorBody{Error: ErrorInfo{
		Status:        http.StatusTooManyRequests,
		Category:      "shed",
		Message:       "overloaded: " + shed.reason,
		RetryAfterSec: sec,
		TraceID:       sp.TraceID(),
	}})
}

// mapFailure converts a guarded analysis error into its HTTP surface,
// using the ledger taxonomy for the category.
func mapFailure(err error) (status int, category string) {
	switch resilience.Categorize(err) {
	case resilience.CatBudget:
		// The analysis ran out of time or steps: the gateway-timeout of a
		// one-process fleet.
		return http.StatusGatewayTimeout, "budget"
	case resilience.CatCanceled:
		// The client went away; the status is written to a dead connection
		// and matters only to the access log.
		return http.StatusRequestTimeout, "canceled"
	case resilience.CatPanic:
		return http.StatusUnprocessableEntity, "panic"
	default:
		return http.StatusUnprocessableEntity, "io"
	}
}

// api wraps an endpoint handler with the boundary the whole server shares:
// drain refusal, method check, body decode limit, per-request deadline,
// admission control, per-request tracing, and request/latency/failure
// telemetry.
func (s *Server) api(name string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("serve." + name + ".requests").Inc()
		if s.draining.Load() {
			s.writeError(r.Context(), w, http.StatusServiceUnavailable, "draining", "server is draining")
			return
		}
		if r.Method != http.MethodPost {
			s.writeError(r.Context(), w, http.StatusMethodNotAllowed, "request", "use POST")
			return
		}
		s.inflight.Add(1)
		s.done.Add(1)
		defer func() {
			s.inflight.Add(-1)
			s.done.Done()
		}()
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)

		// The request's deadline starts before admission: time spent queued
		// is time the analysis no longer has.
		timeout := s.opts.RequestTimeout
		if ms := requestTimeoutMs(r); ms > 0 && time.Duration(ms)*time.Millisecond < timeout {
			timeout = time.Duration(ms) * time.Millisecond
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		// Root span: opened after the cheap boundary rejections (draining,
		// method) so the ring holds analysis requests, and before admission
		// so the queue wait is attributable. The keep/drop decision runs at
		// request end, when outcome and latency are known (tail-based).
		root := s.tracer.Root(name)
		if root != nil {
			ctx = trace.NewContext(ctx, root)
			w.Header().Set("X-Trace-Id", root.TraceID())
			defer func() {
				root.End()
				s.traces.Offer(trace.Finish(root))
			}()
		}

		qsp := root.Child("queue")
		release, shed := s.adm.acquire(ctx)
		qsp.End()
		if shed != nil {
			s.writeShed(ctx, w, shed)
			return
		}
		defer release()
		start := time.Now()
		h(ctx, w, r)
		// The exemplar links this histogram's worst case to a trace ID; with
		// tracing off the label is empty and this is a plain Observe.
		s.reg.Histogram("serve."+name+".latency_us").ObserveExemplar(time.Since(start).Microseconds(), root.TraceID())
	}
}

// requestTimeoutMs peeks the timeout_ms field out of the body without
// consuming it, via the X-Timeout-Ms header or the query string (the JSON
// field is honored too, but only after decode — admission needs the
// deadline first, so clients that care about shedding accuracy set the
// header).
func requestTimeoutMs(r *http.Request) int64 {
	v := r.Header.Get("X-Timeout-Ms")
	if v == "" {
		v = r.URL.Query().Get("timeout_ms")
	}
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms < 0 {
		return 0
	}
	return ms
}

// decode reads and unmarshals the request body.
func decode(r *http.Request, into any) error {
	b, err := io.ReadAll(r.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, into)
}

// ---------------------------------------------------------------------------
// /v1/check
// ---------------------------------------------------------------------------

func (s *Server) handleCheck(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if err := decode(r, &req); err != nil {
		s.writeError(ctx, w, http.StatusBadRequest, "request", "decoding request body: "+err.Error())
		return
	}
	if len(req.Sources) == 0 {
		s.writeError(ctx, w, http.StatusUnprocessableEntity, "io", "no sources in request")
		return
	}
	if req.MaxInline < 0 {
		s.writeError(ctx, w, http.StatusUnprocessableEntity, "io",
			fmt.Sprintf("max_inline must be at least 0 (got %d)", req.MaxInline))
		return
	}
	// One atomic load pins the rule-set generation for the whole request:
	// a concurrent hot reload affects the next request, never this one.
	rstate := s.rstate.Load()
	ruleSet := rstate.set
	if len(req.Rules) > 0 {
		ruleSet = nil
		for _, id := range req.Rules {
			rl := rstate.lookup(id)
			if rl == nil {
				s.writeError(ctx, w, http.StatusUnprocessableEntity, "io", fmt.Sprintf("unknown rule %q", id))
				return
			}
			ruleSet = append(ruleSet, rl)
		}
	}
	if ms := req.TimeoutMs; ms > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	copts := s.opts.Checker
	if req.BudgetSteps > 0 && (copts.BudgetSteps == 0 || req.BudgetSteps < copts.BudgetSteps) {
		copts.BudgetSteps = req.BudgetSteps
	}
	if req.MaxInline > 0 {
		copts.Analysis.MaxInline = req.MaxInline
	}
	resp := CheckResponse{Violations: []Violation{}}
	why := req.Why
	if why && s.deg.degraded() {
		// Degradation ladder rung one: drop provenance, keep answering.
		why = false
		resp.Degraded = true
		resp.Disabled = append(resp.Disabled, "why")
		s.reg.Counter("serve.degraded.requests").Inc()
	}

	checker := core.NewChecker(ruleSet, copts)
	out, err := checker.CheckRequest(ctx, req.Sources, ruleContext(req.Context), why)
	if err != nil {
		status, category := mapFailure(err)
		s.reg.Counter("serve.check.failures").Inc()
		s.writeError(ctx, w, status, category, err.Error())
		return
	}
	for _, v := range out.Violations {
		wire := Violation{
			Rule:        v.Rule.ID,
			Description: v.Rule.Description,
			Formula:     v.Rule.Formula,
			Objects:     []Object{},
		}
		for _, o := range v.Objs {
			wire.Objects = append(wire.Objects, Object{Label: o.SiteLabel(), Line: o.Site.Line})
		}
		resp.Violations = append(resp.Violations, wire)
	}
	resp.Traces = out.Traces
	resp.TraceID = trace.FromContext(ctx).TraceID()
	resp.RulesEpoch = rstate.epoch
	writeJSON(w, http.StatusOK, resp)
}

func ruleContext(rc *RuleContext) rules.Context {
	if rc == nil {
		return rules.Context{}
	}
	return rules.Context{Android: rc.Android, MinSDKVersion: rc.MinSDKVersion, HasLPRNG: rc.HasLPRNG}
}

// ---------------------------------------------------------------------------
// /v1/analyze
// ---------------------------------------------------------------------------

func (s *Server) handleAnalyze(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decode(r, &req); err != nil {
		s.writeError(ctx, w, http.StatusBadRequest, "request", "decoding request body: "+err.Error())
		return
	}
	if len(req.Changes) == 0 {
		s.writeError(ctx, w, http.StatusUnprocessableEntity, "io", "no changes in request")
		return
	}
	classes := req.Classes
	if len(classes) == 0 {
		classes = cryptoapi.TargetClasses
	} else {
		for _, cls := range classes {
			if !cryptoapi.IsTarget(cls) {
				s.writeError(ctx, w, http.StatusUnprocessableEntity, "io", fmt.Sprintf("unknown target class %q", cls))
				return
			}
		}
	}
	if ms := req.TimeoutMs; ms > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	d := core.New(s.opts.Checker)
	resp := AnalyzeResponse{Results: make([]ChangeResult, 0, len(req.Changes)), Degraded: s.deg.degraded()}
	for i, spec := range req.Changes {
		res := ChangeResult{Index: i, UsageChanges: []UsageChange{}}
		// Each change gets its own span so a failed change annotates its
		// slot in the tree, not the whole request; the serial loop makes the
		// creation-order ordinals deterministic.
		cctx, csp := trace.Start(ctx, fmt.Sprintf("change[%d]", i))
		a, err := d.AnalyzeChangeCtx(cctx, mining.CodeChange{
			Old: spec.Old, New: spec.New,
			Meta: change.Meta{Project: spec.Project, Commit: spec.Commit, File: spec.File, Message: spec.Message},
		})
		csp.End()
		if err != nil {
			// Change-level fault containment: this change failed, the rest
			// of the batch still analyzes — unless the whole request's
			// budget is what tripped, which every later change would also
			// hit.
			status, category := mapFailure(err)
			res.Error = &ErrorInfo{Status: status, Category: category, Message: err.Error()}
			resp.Results = append(resp.Results, res)
			s.reg.Counter("serve.analyze.change_failures").Inc()
			if ctx.Err() != nil {
				// The whole request hit its wall: the root span carries the
				// category, so the trace is retained as a failure.
				trace.FromContext(ctx).Annotate(category)
				s.failRemaining(&resp, req.Changes, i+1, status, category)
				break
			}
			continue
		}
		for _, cls := range classes {
			for _, uc := range d.ExtractClass(a, cls) {
				if uc.IsSame() {
					continue
				}
				label := "semantic change"
				switch {
				case uc.IsAddOnly():
					label = "new usage added"
				case uc.IsRemoveOnly():
					label = "usage removed"
				}
				res.UsageChanges = append(res.UsageChanges, UsageChange{Class: cls, Label: label, Text: uc.String()})
			}
		}
		resp.Results = append(resp.Results, res)
	}
	resp.TraceID = trace.FromContext(ctx).TraceID()
	writeJSON(w, http.StatusOK, resp)
}

// failRemaining marks the unanalyzed tail of a batch whose request context
// expired; each carries the same budget/cancel category as the change that
// hit the wall.
func (s *Server) failRemaining(resp *AnalyzeResponse, specs []ChangeSpec, from, status int, category string) {
	for i := from; i < len(specs); i++ {
		resp.Results = append(resp.Results, ChangeResult{
			Index:        i,
			UsageChanges: []UsageChange{},
			Error:        &ErrorInfo{Status: status, Category: category, Message: "request budget exhausted before this change"},
		})
	}
}

// ---------------------------------------------------------------------------
// Health, readiness, metrics
// ---------------------------------------------------------------------------

type healthResponse struct {
	Status   string `json:"status"`
	Degraded bool   `json:"degraded,omitempty"`
	// RulesEpoch advertises the live rule-set generation so an operator
	// can confirm a hot reload landed fleet-wide. Absent without packs.
	RulesEpoch int64 `json:"rules_epoch,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness: the process is up and the handler runs — degraded or
	// draining, a live process must not be restarted by the orchestrator.
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	// Readiness: draining means "stop routing to me"; degraded still
	// serves (that is the point of degrading) but is advertised.
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ready", Degraded: s.deg.degraded(), RulesEpoch: s.RulesEpoch()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		b, err := obs.TakeSnapshot(s.reg, false).Marshal()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	case "prom":
		w.Header().Set("Content-Type", obs.PromContentType)
		obs.WriteProm(w, s.reg) //nolint:errcheck — a broken scrape conn is the scraper's problem
	default:
		s.writeError(r.Context(), w, http.StatusNotAcceptable, "request",
			fmt.Sprintf("unknown metrics format %q (want json or prom)", format))
	}
}

// ---------------------------------------------------------------------------
// Trace inspector (/debug/traces, registered only when tracing is on)
// ---------------------------------------------------------------------------

// TraceSummary is one retained trace in the /debug/traces list: the Record
// without its span tree.
type TraceSummary struct {
	TraceID     string `json:"trace_id"`
	Name        string `json:"name"`
	StartUnixUs int64  `json:"start_unix_us"`
	DurUs       int64  `json:"dur_us"`
	Category    string `json:"category,omitempty"`
	Retained    string `json:"retained"`
	Spans       int    `json:"spans"`
}

// TraceList is the /debug/traces response body, newest trace first.
type TraceList struct {
	Count  int            `json:"count"`
	Traces []TraceSummary `json:"traces"`
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	list := TraceList{Traces: []TraceSummary{}}
	for _, rec := range s.traces.List() {
		list.Traces = append(list.Traces, TraceSummary{
			TraceID:     rec.ID,
			Name:        rec.Name,
			StartUnixUs: rec.StartUnixUs,
			DurUs:       rec.DurUs,
			Category:    rec.Category,
			Retained:    rec.Retained,
			Spans:       rec.Spans,
		})
	}
	list.Count = len(list.Traces)
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleTraceDetail(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	rec := s.traces.Get(id)
	if rec == nil {
		s.writeError(r.Context(), w, http.StatusNotFound, "request", fmt.Sprintf("no retained trace %q", id))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, rec)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace %s %s %dµs", rec.ID, rec.Name, rec.DurUs)
		if rec.Category != "" {
			fmt.Fprintf(w, " [%s]", rec.Category)
		}
		fmt.Fprintf(w, " retained=%s\n\n%s", rec.Retained, rec.Root.Waterfall())
	default:
		s.writeError(r.Context(), w, http.StatusNotAcceptable, "request",
			fmt.Sprintf("unknown trace format %q (want json or text)", format))
	}
}
