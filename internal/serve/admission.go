package serve

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// shedInfo describes an admission rejection: why the request was shed and
// how long the client should back off before retrying (the Retry-After
// header and the retry_after_sec body field).
type shedInfo struct {
	reason     string
	retryAfter time.Duration
}

// admission is the server's front door: a fixed number of concurrency
// slots (sized off the analysis worker pool — more concurrent analyses
// than cores just thrash) plus a bounded wait queue with deadline-aware
// load shedding. A request is shed, never silently delayed to death, when
//
//   - the queue is full (reason "queue_full"),
//   - the predicted queue wait already exceeds the request's deadline
//     (reason "deadline" — the paper-trail version of "this request would
//     time out before a worker ever picked it up"), or
//   - the deadline expires while queued (reason "queue_wait" — the
//     prediction was too optimistic).
//
// The wait prediction is an EWMA of observed service times multiplied by
// the number of queue turns ahead of the new waiter; it is deliberately
// rough (shedding is advisory), but it turns overload into fast 429s with
// honest Retry-After hints instead of a convoy of slow 504s.
type admission struct {
	slots    chan struct{}
	waiting  atomic.Int64
	maxQueue int64
	svcUs    atomic.Int64 // EWMA of service time, microseconds
	reg      *obs.Registry
}

func newAdmission(maxConcurrent, maxQueue int, reg *obs.Registry) *admission {
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
		reg:      reg,
	}
}

// acquire admits the request (returning a release func the caller must
// invoke when the request finishes) or sheds it.
func (a *admission) acquire(ctx context.Context) (release func(), shed *shedInfo) {
	select {
	case a.slots <- struct{}{}:
		return a.grant(), nil
	default:
	}
	// Every slot is busy: the request must queue.
	w := a.waiting.Add(1)
	a.reg.Gauge("serve.queue.depth").Set(w)
	defer func() {
		a.reg.Gauge("serve.queue.depth").Set(a.waiting.Add(-1))
	}()
	if w > a.maxQueue {
		return nil, &shedInfo{reason: "queue_full", retryAfter: a.backoff(w)}
	}
	if dl, ok := ctx.Deadline(); ok {
		if est := a.waitEstimate(w); est > 0 && time.Now().Add(est).After(dl) {
			return nil, &shedInfo{reason: "deadline", retryAfter: a.backoff(w)}
		}
	}
	start := time.Now()
	select {
	case a.slots <- struct{}{}:
		a.reg.Histogram("serve.queue.wait_us").Observe(time.Since(start).Microseconds())
		return a.grant(), nil
	case <-ctx.Done():
		return nil, &shedInfo{reason: "queue_wait", retryAfter: a.backoff(w)}
	}
}

// grant records the admission and returns the release func, which frees
// the slot and feeds the observed service time into the wait predictor.
func (a *admission) grant() func() {
	start := time.Now()
	a.reg.Gauge("serve.inflight").Set(int64(len(a.slots)))
	return func() {
		observed := time.Since(start).Microseconds()
		old := a.svcUs.Load()
		if old == 0 {
			a.svcUs.CompareAndSwap(0, observed)
		} else {
			a.svcUs.Store((7*old + observed) / 8)
		}
		<-a.slots
		a.reg.Gauge("serve.inflight").Set(int64(len(a.slots)))
	}
}

// waitEstimate predicts how long the w-th waiter sits in the queue: every
// slot ahead of it must turn over about w/capacity times, each turn taking
// one smoothed service time. Zero until the first request completes.
func (a *admission) waitEstimate(w int64) time.Duration {
	svc := a.svcUs.Load()
	slots := int64(cap(a.slots))
	turns := (w + slots - 1) / slots
	return time.Duration(svc*turns) * time.Microsecond
}

// backoff converts the wait estimate into a Retry-After hint: whole
// seconds, at least one.
func (a *admission) backoff(w int64) time.Duration {
	est := a.waitEstimate(w)
	if est < time.Second {
		return time.Second
	}
	return est.Round(time.Second) + time.Second
}
