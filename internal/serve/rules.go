package serve

import (
	"net/http"

	"repro/internal/rulelint"
	"repro/internal/rules"
)

// Hot rule reload. The live rule set lives behind an atomic pointer: every
// request loads it once at entry and keeps that snapshot, so a swap
// mid-request can never mix epochs. Reloads re-run the full compile → lint
// → register pipeline over the configured pack files; a failed lint keeps
// the previous set live — a bad push degrades to a rejected reload, never
// to a checker running half a rule set.

// ruleState is one immutable generation of the active rule set.
type ruleState struct {
	set   []*rules.Rule
	byID  map[string]*rules.Rule
	epoch int64
}

func newRuleState(set []*rules.Rule, epoch int64) *ruleState {
	rs := &ruleState{set: set, epoch: epoch, byID: make(map[string]*rules.Rule, len(set))}
	for _, r := range set {
		rs.byID[r.ID] = r
	}
	return rs
}

// lookup resolves a request's rule-ID filter against the active set first,
// then the static registry — so pack rules are addressable by ID and the
// CL1–CL5 aliases keep resolving exactly as before packs existed.
func (rs *ruleState) lookup(id string) *rules.Rule {
	if r := rs.byID[id]; r != nil {
		return r
	}
	return rules.ByID(id)
}

// ReloadResult is the outcome of one reload attempt (and the JSON body of
// POST /v1/rules/reload).
type ReloadResult struct {
	OK bool `json:"ok"`
	// Epoch is the live epoch after the attempt: bumped on success,
	// unchanged on failure.
	Epoch int64 `json:"rules_epoch"`
	// Rules counts the active rule set on success.
	Rules int `json:"rules,omitempty"`
	// Report carries the lint findings of the attempt (also on success —
	// warnings load under protest).
	Report *rulelint.Report `json:"report,omitempty"`
	// Err describes an I/O or configuration failure.
	Err string `json:"error,omitempty"`
}

// ReloadRules re-reads the configured rule packs and atomically swaps in
// the freshly linted set, bumping the epoch. On any failure — unreadable
// file, or error-level findings without RulesLax — the previous set stays
// live and the epoch does not move.
func (s *Server) ReloadRules() ReloadResult {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	cur := s.rstate.Load()
	if len(s.opts.RulePacks) == 0 {
		return ReloadResult{Epoch: cur.epoch, Err: "no rule packs configured (-rules)"}
	}
	res, err := rulelint.Load(s.opts.RulePacks)
	if err != nil {
		s.reg.Counter("serve.rules.reload_failed").Inc()
		return ReloadResult{Epoch: cur.epoch, Err: err.Error()}
	}
	res.Observe(s.reg)
	if res.Report.HasErrors() && !s.opts.RulesLax {
		s.reg.Counter("serve.rules.reload_failed").Inc()
		return ReloadResult{Epoch: cur.epoch, Report: res.Report}
	}
	next := newRuleState(res.Active, cur.epoch+1)
	s.rstate.Store(next)
	s.reg.Counter("serve.rules.reloads").Inc()
	s.reg.Gauge("serve.rules.epoch").Set(next.epoch)
	return ReloadResult{OK: true, Epoch: next.epoch, Rules: len(next.set), Report: res.Report}
}

// RulesEpoch returns the live rule-set epoch (0 = no packs configured).
func (s *Server) RulesEpoch() int64 { return s.rstate.Load().epoch }

// handleRulesReload is POST /v1/rules/reload. It bypasses admission — a
// reload is a cheap operator action that must work while the analysis
// queue is saturated — but still refuses during drain.
func (s *Server) handleRulesReload(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("serve.rules_reload.requests").Inc()
	if s.draining.Load() {
		s.writeError(r.Context(), w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	if r.Method != http.MethodPost {
		s.writeError(r.Context(), w, http.StatusMethodNotAllowed, "request", "use POST")
		return
	}
	out := s.ReloadRules()
	status := http.StatusOK
	if !out.OK {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, out)
}
