// Package mining implements Step 1 of the pipeline (paper §2, §6.1):
// walking repository histories, selecting the commits that touch files
// using a target API class, and materializing each as an old/new program
// pair ready for analysis.
package mining

import (
	"strings"

	"repro/internal/change"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/obs"
)

// CodeChange is one mined code change: the two versions of a file plus
// provenance metadata.
type CodeChange struct {
	Meta change.Meta
	Old  string
	New  string
	// Kind is the generator's label when the change came from the synthetic
	// corpus (evaluation bookkeeping only).
	Kind corpus.CommitKind
}

// UsesClass reports whether the source text plausibly uses the given API
// class (a fast pre-filter before parsing, like the paper's fetch of
// "patches for classes that use the target API classes").
func UsesClass(src, class string) bool {
	idx := 0
	for {
		i := strings.Index(src[idx:], class)
		if i < 0 {
			return false
		}
		i += idx
		// Require a non-identifier boundary on both sides to avoid matching
		// identifiers that merely contain the class name.
		if (i == 0 || !identByte(src[i-1])) &&
			(i+len(class) >= len(src) || !identByte(src[i+len(class)])) {
			return true
		}
		idx = i + 1
	}
}

func identByte(b byte) bool {
	return b == '_' || b == '$' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// UsesAnyTarget reports whether the source uses at least one target class.
func UsesAnyTarget(src string) bool {
	for _, c := range cryptoapi.TargetClasses {
		if UsesClass(src, c) {
			return true
		}
	}
	return false
}

// Options filters the mined projects.
type Options struct {
	// MinCommits skips projects with shorter histories (paper §6.1 uses 30
	// to exclude toy projects).
	MinCommits int
	// KeepForks disables the common-prefix de-duplication of forked
	// repositories (paper §6.1: forks are excluded so the same fix is not
	// counted once per fork).
	KeepForks bool
	// Metrics, when non-nil, receives mining telemetry (projects and
	// commits scanned, changes mined, forks deduplicated).
	Metrics *obs.Registry
}

// historyFingerprint identifies a repository by the content of its first
// commit; a fork shares it with its upstream regardless of where the fork
// point lies (identifiers inside generated/mined code make accidental
// collisions between unrelated repositories vanishingly unlikely).
func historyFingerprint(p *corpus.Project) string {
	cm := p.Commits[0]
	return cm.File + "\x00" + cm.Old + "\x00" + cm.New
}

// dedupForks keeps, per history fingerprint, only the project with the
// longest history (the upstream; forks carry a prefix).
func dedupForks(projects []*corpus.Project) []*corpus.Project {
	best := map[string]*corpus.Project{}
	order := []string{}
	for _, p := range projects {
		if len(p.Commits) == 0 {
			continue
		}
		fp := historyFingerprint(p)
		cur, seen := best[fp]
		if !seen {
			best[fp] = p
			order = append(order, fp)
			continue
		}
		if len(p.Commits) > len(cur.Commits) {
			best[fp] = p
		}
	}
	out := make([]*corpus.Project, 0, len(order))
	for _, fp := range order {
		out = append(out, best[fp])
	}
	return out
}

// Collect walks the training projects of a corpus and returns all code
// changes whose old or new version uses a target API class. Forked
// repositories (common history prefix) are de-duplicated unless KeepForks
// is set.
func Collect(c *corpus.Corpus, opts Options) []CodeChange {
	reg := opts.Metrics
	projects := c.TrainingProjects()
	before := len(projects)
	if !opts.KeepForks {
		projects = dedupForks(projects)
	}
	reg.Counter("mining.projects_scanned").Add(int64(len(projects)))
	reg.Counter("mining.forks_deduped").Add(int64(before - len(projects)))
	var out []CodeChange
	for _, p := range projects {
		if len(p.Commits) < opts.MinCommits {
			reg.Counter("mining.projects_skipped_min_commits").Inc()
			continue
		}
		reg.Counter("mining.commits_scanned").Add(int64(len(p.Commits)))
		for _, cm := range p.Commits {
			if !UsesAnyTarget(cm.Old) && !UsesAnyTarget(cm.New) {
				continue
			}
			out = append(out, CodeChange{
				Meta: change.Meta{
					Project: p.Name,
					Commit:  cm.ID,
					File:    cm.File,
					Message: cm.Message,
				},
				Old:  cm.Old,
				New:  cm.New,
				Kind: cm.Kind,
			})
		}
	}
	reg.Counter("mining.changes_mined").Add(int64(len(out)))
	return out
}

// CollectForClass narrows Collect to changes touching one target class.
func CollectForClass(c *corpus.Corpus, class string, opts Options) []CodeChange {
	var out []CodeChange
	for _, cc := range Collect(c, opts) {
		if UsesClass(cc.Old, class) || UsesClass(cc.New, class) {
			out = append(out, cc)
		}
	}
	return out
}
