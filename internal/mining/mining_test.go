package mining

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/cryptoapi"
)

func TestUsesClass(t *testing.T) {
	cases := []struct {
		src, class string
		want       bool
	}{
		{`Cipher c = Cipher.getInstance("AES");`, "Cipher", true},
		{`MyCipher c;`, "Cipher", false},    // prefixed identifier
		{`CipherSuite s;`, "Cipher", false}, // suffixed identifier
		{`x = Cipher.ENCRYPT_MODE;`, "Cipher", true},
		{`// Cipher in a comment`, "Cipher", true}, // pre-filter is textual
		{``, "Cipher", false},
		{`Cipher`, "Cipher", true},
		{`aCipher Cipher bCipher`, "Cipher", true},
		{`new SecretKeySpec(b, "AES")`, "SecretKeySpec", true},
		{`SecretKeySpecial x;`, "SecretKeySpec", false},
	}
	for _, c := range cases {
		if got := UsesClass(c.src, c.class); got != c.want {
			t.Errorf("UsesClass(%q, %s) = %t, want %t", c.src, c.class, got, c.want)
		}
	}
}

func TestUsesAnyTarget(t *testing.T) {
	if !UsesAnyTarget("SecureRandom r = new SecureRandom();") {
		t.Error("SecureRandom not detected")
	}
	if UsesAnyTarget("int x = 1; // plain code") {
		t.Error("false positive on plain code")
	}
}

func TestCollect(t *testing.T) {
	c := corpus.Generate(corpus.Config{Seed: 3, Scale: 0.1, Projects: 15, ExtraProjects: 3})
	ccs := Collect(c, Options{})
	if len(ccs) == 0 {
		t.Fatal("nothing collected")
	}
	for _, cc := range ccs {
		if cc.Meta.Project == "" || cc.Meta.Commit == "" || cc.Meta.File == "" {
			t.Errorf("missing provenance: %+v", cc.Meta)
		}
		if !UsesAnyTarget(cc.Old) && !UsesAnyTarget(cc.New) {
			t.Errorf("%s: collected change not using any target class", cc.Meta.Commit)
		}
	}
	// Held-out projects contribute no changes.
	total := 0
	for _, p := range c.TrainingProjects() {
		total += len(p.Commits)
	}
	if len(ccs) > total {
		t.Errorf("collected %d > %d training commits", len(ccs), total)
	}
}

func TestCollectMinCommits(t *testing.T) {
	c := corpus.Generate(corpus.Config{Seed: 3, Scale: 0.1, Projects: 15, ExtraProjects: 0})
	all := Collect(c, Options{})
	strict := Collect(c, Options{MinCommits: 10_000})
	if len(strict) != 0 {
		t.Errorf("MinCommits filter ignored: %d changes", len(strict))
	}
	if len(all) == 0 {
		t.Error("baseline collection empty")
	}
}

func TestCollectForClass(t *testing.T) {
	c := corpus.Generate(corpus.Config{Seed: 4, Scale: 0.15, Projects: 25, ExtraProjects: 0})
	forCipher := CollectForClass(c, cryptoapi.Cipher, Options{})
	all := Collect(c, Options{})
	if len(forCipher) == 0 {
		t.Fatal("no Cipher changes at this scale")
	}
	if len(forCipher) >= len(all) {
		t.Errorf("class filter removed nothing: %d vs %d", len(forCipher), len(all))
	}
	for _, cc := range forCipher {
		if !UsesClass(cc.Old, cryptoapi.Cipher) && !UsesClass(cc.New, cryptoapi.Cipher) {
			t.Errorf("%s: not a Cipher change", cc.Meta.Commit)
		}
	}
}

func TestForkDeduplication(t *testing.T) {
	cfg := corpus.Config{Seed: 9, Scale: 0.2, Projects: 60, ExtraProjects: 0,
		ForkFraction: 0.5}
	c := corpus.Generate(cfg)
	var forks int
	for _, p := range c.Projects {
		if p.ForkOf != "" {
			forks++
		}
	}
	if forks == 0 {
		t.Fatal("no forks generated at ForkFraction 0.5")
	}
	deduped := Collect(c, Options{})
	withForks := Collect(c, Options{KeepForks: true})
	if len(withForks) <= len(deduped) {
		t.Errorf("fork dedup removed nothing: %d vs %d changes", len(withForks), len(deduped))
	}
	// No deduped change may come from a fork (the upstream has the longer
	// history and wins).
	forkNames := map[string]bool{}
	for _, p := range c.Projects {
		if p.ForkOf != "" {
			forkNames[p.Name] = true
		}
	}
	for _, cc := range deduped {
		if forkNames[cc.Meta.Project] {
			t.Errorf("change from fork %s survived dedup", cc.Meta.Project)
		}
	}
}
