package report

import (
	"sort"

	"repro/internal/absdom"
	"repro/internal/analysis"
	"repro/internal/rules"
)

// SortViolations returns the violations ordered by source location:
// (file, line, rule ID), with ties broken by allocation-site ID. Location
// is the first witnessing object's allocation site; its file comes from the
// object's recorded events (objects carry no file themselves). The input
// slice is not modified — CheckSources' stable rule-set ordering is part of
// the plain CLI surface, so only the location-first (-why) output path
// sorts.
func SortViolations(vs []rules.Violation, res *analysis.Result) []rules.Violation {
	out := make([]rules.Violation, len(vs))
	copy(out, vs)
	sort.SliceStable(out, func(i, j int) bool {
		fi, li, oi := violationLoc(out[i], res)
		fj, lj, oj := violationLoc(out[j], res)
		if fi != fj {
			return fi < fj
		}
		if li != lj {
			return li < lj
		}
		if out[i].Rule.ID != out[j].Rule.ID {
			return out[i].Rule.ID < out[j].Rule.ID
		}
		return oi < oj
	})
	return out
}

// violationLoc derives the sort key of a violation from its first witness.
func violationLoc(v rules.Violation, res *analysis.Result) (file string, line, objID int) {
	if len(v.Objs) == 0 {
		return "", 0, 0
	}
	o := v.Objs[0]
	return objFile(o, res), o.Site.Line, o.ID
}

// objFile recovers the source file of an abstract object from its events
// ("" when the object recorded none with a position).
func objFile(o *absdom.AObj, res *analysis.Result) string {
	for _, ev := range res.Uses[o] {
		if ev.File != "" {
			return ev.File
		}
	}
	return ""
}
