// Package report renders fixed-width text tables for the evaluation
// harness, mirroring the tables and figures of the paper's §6.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if w := utf8.RuneCountInString(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
		sb.WriteString(strings.Repeat("=", utf8.RuneCountInString(t.Title)) + "\n")
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			pad := widths[i] - utf8.RuneCountInString(c)
			if i == 0 {
				sb.WriteString(c + strings.Repeat(" ", pad))
			} else {
				sb.WriteString("  " + strings.Repeat(" ", pad) + c)
			}
		}
		sb.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for i, w := range widths {
			total += w
			if i > 0 {
				total += 2
			}
		}
		sb.WriteString(strings.Repeat("-", total) + "\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		sb.WriteString(n + "\n")
	}
	return sb.String()
}

// Pct formats n/d as a percentage with one decimal, "-" when d is zero.
func Pct(n, d int) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(d))
}

// Count formats "n (pct)" in the style of Figure 10's cells.
func Count(n, d int) string {
	return fmt.Sprintf("%d (%s)", n, Pct(n, d))
}
