package report

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/rules"
)

// TestSortViolationsByLocation pins the -why report order: violations come
// back sorted by (file, line, rule ID), and the input slice keeps the
// checker's rule-set order.
func TestSortViolationsByLocation(t *testing.T) {
	sources := map[string]string{
		// File names chosen so lexical file order disagrees with rule order.
		"a/Second.java": `
			import javax.crypto.spec.IvParameterSpec;
			class Second {
				void run() throws Exception {
					IvParameterSpec iv = new IvParameterSpec(new byte[]{1, 2, 3, 4});
				}
			}`,
		"b/First.java": `
			import javax.crypto.Cipher;
			class First {
				void run() throws Exception {
					Cipher c = Cipher.getInstance("DES");
				}
			}`,
	}
	res := analysis.Analyze(analysis.ParseProgram(sources), analysis.Options{Provenance: true})
	// R8 (DES, file b) precedes R9 (static IV, file a) in rule-set order;
	// location order must flip them.
	vs := rules.Check(res, rules.Context{}, []*rules.Rule{rules.R8, rules.R9})
	if len(vs) != 2 {
		t.Fatalf("want 2 violations, got %d", len(vs))
	}
	if vs[0].Rule.ID != "R8" || vs[1].Rule.ID != "R9" {
		t.Fatalf("rule-set order = %s, %s; want R8, R9", vs[0].Rule.ID, vs[1].Rule.ID)
	}
	sorted := SortViolations(vs, res)
	if sorted[0].Rule.ID != "R9" || sorted[1].Rule.ID != "R8" {
		t.Errorf("location order = %s, %s; want R9 (a/Second.java), R8 (b/First.java)",
			sorted[0].Rule.ID, sorted[1].Rule.ID)
	}
	// The input must be untouched — the plain CLI path depends on it.
	if vs[0].Rule.ID != "R8" || vs[1].Rule.ID != "R9" {
		t.Errorf("SortViolations mutated its input: %s, %s", vs[0].Rule.ID, vs[1].Rule.ID)
	}
}

// TestSortViolationsSameFileByLine checks the line tiebreak within a file
// and the rule-ID tiebreak on one line.
func TestSortViolationsSameFileByLine(t *testing.T) {
	sources := map[string]string{"T.java": `
		import javax.crypto.Cipher;
		import javax.crypto.spec.SecretKeySpec;
		class T {
			void run() throws Exception {
				SecretKeySpec ks = new SecretKeySpec(new byte[]{1, 2}, "AES");
				Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding");
			}
		}`}
	res := analysis.Analyze(analysis.ParseProgram(sources), analysis.Options{Provenance: true})
	vs := rules.Check(res, rules.Context{}, []*rules.Rule{rules.R7, rules.R10})
	if len(vs) != 2 {
		t.Fatalf("want 2 violations, got %d", len(vs))
	}
	sorted := SortViolations(vs, res)
	// SecretKeySpec allocates on line 6, the Cipher on line 7.
	if sorted[0].Rule.ID != "R10" || sorted[1].Rule.ID != "R7" {
		t.Errorf("line order = %s, %s; want R10 then R7", sorted[0].Rule.ID, sorted[1].Rule.ID)
	}
}
