package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := &Table{
		Title:  "Demo",
		Header: []string{"Name", "Count"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-much-longer-name", "12345")
	tbl.AddNote("note %d", 7)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, 2 rows, note.
	if len(lines) != 7 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" || !strings.HasPrefix(lines[1], "====") {
		t.Errorf("title block wrong:\n%s", out)
	}
	// Numeric column is right-aligned: both data rows end at the same col.
	if len(lines[4]) != len(lines[5]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
	if lines[6] != "note 7" {
		t.Errorf("note = %q", lines[6])
	}
}

func TestTableNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("x", "y")
	out := tbl.String()
	if strings.Contains(out, "--") {
		t.Errorf("separator emitted without header:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := &Table{Header: []string{"A"}}
	tbl.AddRow("1", "2", "3") // wider than header
	out := tbl.String()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cells dropped:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	cases := []struct {
		n, d int
		want string
	}{
		{1, 2, "50.0%"},
		{0, 10, "0.0%"},
		{10, 10, "100.0%"},
		{3, 0, "-"},
		{289, 305, "94.8%"}, // the paper's R3 cell
	}
	for _, c := range cases {
		if got := Pct(c.n, c.d); got != c.want {
			t.Errorf("Pct(%d, %d) = %q, want %q", c.n, c.d, got, c.want)
		}
	}
}

func TestCount(t *testing.T) {
	if got := Count(89, 257); got != "89 (34.6%)" { // the paper's R1 cell
		t.Errorf("Count = %q", got)
	}
	if got := Count(0, 0); got != "0 (-)" {
		t.Errorf("Count zero = %q", got)
	}
}

func TestUnicodeWidths(t *testing.T) {
	tbl := &Table{Header: []string{"Rule", "Formula"}}
	tbl.AddRow("R9", "IvParameterSpec : <init>(X) ∧ X≠⊤byte[]")
	tbl.AddRow("R1", "short")
	out := tbl.String()
	if !strings.Contains(out, "⊤byte[]") {
		t.Errorf("unicode cell mangled:\n%s", out)
	}
}
