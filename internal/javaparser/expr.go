package javaparser

import (
	"fmt"

	"repro/internal/javaast"
	"repro/internal/javatok"
)

// parseExpr parses a full expression (assignment level).
func (p *parser) parseExpr() javaast.Expr {
	// Lambda detection: "x ->" or "(a, b) ->" or "() ->".
	if lam := p.tryParseLambda(); lam != nil {
		return lam
	}
	left := p.parseCondExpr()
	switch p.cur().Kind {
	case javatok.Assign, javatok.PlusEq, javatok.MinusEq, javatok.StarEq,
		javatok.SlashEq, javatok.AndEq, javatok.OrEq, javatok.CaretEq,
		javatok.PercentEq, javatok.ShlEq, javatok.ShrEq, javatok.UshrEq:
		op := p.advance()
		right := p.parseExpr()
		return &javaast.Assign{Op: op.Text, L: left, R: right, P: op.Pos}
	}
	return left
}

// tryParseLambda detects and parses lambda expressions; returns nil when the
// upcoming tokens are not a lambda.
func (p *parser) tryParseLambda() javaast.Expr {
	pos := p.cur().Pos
	// Ident ->
	if p.cur().Kind == javatok.Ident && p.peek().Kind == javatok.Arrow {
		name := p.advance().Text
		p.advance()
		return p.finishLambda(pos, []string{name})
	}
	// ( [params] ) ->  — scan ahead for the arrow after a balanced paren run.
	if p.cur().Kind != javatok.LParen {
		return nil
	}
	depth := 0
	j := p.i
	for ; j < len(p.toks); j++ {
		k := p.toks[j].Kind
		if k == javatok.LParen {
			depth++
		} else if k == javatok.RParen {
			depth--
			if depth == 0 {
				break
			}
		} else if k == javatok.EOF || k == javatok.Semi || k == javatok.LBrace {
			return nil
		}
	}
	if j+1 >= len(p.toks) || p.toks[j+1].Kind != javatok.Arrow {
		return nil
	}
	// Commit: consume params (identifiers, possibly typed — types skipped).
	p.advance() // '('
	var params []string
	for p.cur().Kind != javatok.RParen && p.cur().Kind != javatok.EOF {
		p.acceptKw("final")
		// Typed parameter: Type Ident — speculative type skip.
		if p.cur().Kind == javatok.Ident && p.peek().Kind != javatok.Comma &&
			p.peek().Kind != javatok.RParen {
			m := p.mark()
			snap := p.snapshot(32)
			okType := func() (ok bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, isPE := r.(parseError); isPE {
							ok = false
							return
						}
						panic(r)
					}
				}()
				p.parseTypeRef()
				return p.cur().Kind == javatok.Ident
			}()
			if !okType {
				p.restore(m, snap)
			}
		} else if p.cur().Kind == javatok.Keyword && primitiveTypes[p.cur().Text] {
			p.parseTypeRef()
		}
		if p.cur().Kind == javatok.Ident {
			params = append(params, p.advance().Text)
		}
		if !p.accept(javatok.Comma) {
			break
		}
	}
	p.expect(javatok.RParen)
	p.expect(javatok.Arrow)
	return p.finishLambda(pos, params)
}

func (p *parser) finishLambda(pos javatok.Pos, params []string) javaast.Expr {
	lam := &javaast.Lambda{Params: params, P: pos}
	if p.cur().Kind == javatok.LBrace {
		lam.Body = p.parseBlock()
	} else {
		lam.Body = p.parseExpr()
	}
	return lam
}

func (p *parser) parseCondExpr() javaast.Expr {
	cond := p.parseBinaryExpr(0)
	if p.cur().Kind == javatok.Question {
		pos := p.advance().Pos
		t := p.parseExpr()
		p.expect(javatok.Colon)
		f := p.parseCondExpr()
		return &javaast.Cond{C: cond, T: t, F: f, P: pos}
	}
	return cond
}

// binary operator precedence, higher binds tighter.
var binPrec = map[javatok.Kind]int{
	javatok.OrOr:   1,
	javatok.AndAnd: 2,
	javatok.Or:     3,
	javatok.Caret:  4,
	javatok.And:    5,
	javatok.Eq:     6, javatok.Ne: 6,
	javatok.Lt: 7, javatok.Gt: 7, javatok.Le: 7, javatok.Ge: 7,
	javatok.Shl: 8, javatok.Shr: 8, javatok.Ushr: 8,
	javatok.Plus: 9, javatok.Minus: 9,
	javatok.Star: 10, javatok.Slash: 10, javatok.Percent: 10,
}

const relPrec = 7 // precedence tier of relational operators / instanceof

func (p *parser) parseBinaryExpr(minPrec int) javaast.Expr {
	left := p.parseUnary()
	for {
		if p.cur().Is("instanceof") && relPrec >= minPrec {
			pos := p.advance().Pos
			typ := p.parseTypeRef()
			// Java 16 pattern variable: "x instanceof T v" — accept & drop.
			if p.cur().Kind == javatok.Ident {
				p.advance()
			}
			left = &javaast.InstanceOf{X: left, Type: typ, P: pos}
			continue
		}
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return left
		}
		op := p.advance()
		right := p.parseBinaryExpr(prec + 1)
		left = &javaast.Binary{Op: op.Text, L: left, R: right, P: op.Pos}
	}
}

func (p *parser) parseUnary() javaast.Expr {
	t := p.cur()
	switch t.Kind {
	case javatok.Plus, javatok.Minus, javatok.Not, javatok.Tilde:
		p.advance()
		return &javaast.Unary{Op: t.Text, X: p.parseUnary(), P: t.Pos}
	case javatok.Inc, javatok.Dec:
		p.advance()
		return &javaast.Unary{Op: t.Text, X: p.parseUnary(), P: t.Pos}
	case javatok.LParen:
		if c := p.tryParseCast(); c != nil {
			return c
		}
	}
	return p.parsePostfix()
}

// tryParseCast speculatively parses "(Type) unary" casts, returning nil when
// the parenthesized run is an ordinary expression.
func (p *parser) tryParseCast() javaast.Expr {
	m := p.mark()
	snap := p.snapshot(64)
	pos := p.cur().Pos
	c := func() (c javaast.Expr) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(parseError); ok {
					c = nil
					return
				}
				panic(r)
			}
		}()
		p.expect(javatok.LParen)
		isPrimitive := p.cur().Kind == javatok.Keyword && primitiveTypes[p.cur().Text]
		typ := p.parseTypeRef()
		if p.cur().Kind != javatok.RParen {
			return nil
		}
		p.advance()
		// A cast must be followed by something that can start an operand.
		// For non-primitive casts, reject operators that make "(name) - x"
		// ambiguous (it is subtraction, not a cast).
		nt := p.cur()
		castable := false
		switch nt.Kind {
		case javatok.Ident, javatok.IntLit, javatok.LongLit, javatok.FloatLit,
			javatok.DoubleLit, javatok.CharLit, javatok.StringLit,
			javatok.LParen, javatok.Not, javatok.Tilde:
			castable = true
		case javatok.Keyword:
			castable = nt.Text == "this" || nt.Text == "new" ||
				nt.Text == "super" || nt.Text == "true" ||
				nt.Text == "false" || nt.Text == "null"
		case javatok.Plus, javatok.Minus:
			castable = isPrimitive
		}
		if !castable {
			return nil
		}
		return &javaast.Cast{Type: typ, X: p.parseUnary(), P: pos}
	}()
	if c == nil {
		p.restore(m, snap)
	}
	return c
}

func (p *parser) parsePostfix() javaast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case javatok.Dot:
			// .name, .name(args), .class, .this, .new Type(...)
			p.advance()
			switch {
			case p.cur().Is("class"):
				p.advance()
				x = &javaast.ClassLit{Type: &javaast.TypeRef{Name: javaast.ExprString(x)}, P: x.Pos()}
			case p.cur().Is("this"):
				p.advance()
				x = &javaast.This{P: x.Pos()}
			case p.cur().Is("new"):
				// Qualified inner-class creation: treat as unqualified new.
				x = p.parseNew()
			default:
				if p.cur().Kind == javatok.Lt {
					p.skipTypeParams() // explicit generic method call: x.<T>m()
				}
				name := p.expect(javatok.Ident).Text
				if p.cur().Kind == javatok.LParen {
					args := p.parseArgs()
					x = &javaast.Call{Recv: x, Name: name, Args: args, P: x.Pos()}
				} else {
					x = &javaast.FieldAccess{X: x, Name: name, P: x.Pos()}
				}
			}
		case javatok.LBracket:
			if p.peek().Kind == javatok.RBracket {
				// "Type[].class" style — consume dims and continue.
				p.advance()
				p.advance()
				continue
			}
			p.advance()
			idx := p.parseExpr()
			p.expect(javatok.RBracket)
			x = &javaast.Index{X: x, I: idx, P: x.Pos()}
		case javatok.Inc, javatok.Dec:
			op := p.advance()
			x = &javaast.Unary{Op: op.Text, X: x, Postfix: true, P: op.Pos}
		case javatok.ColonCln:
			p.advance()
			var name string
			if p.cur().Is("new") {
				p.advance()
				name = "new"
			} else {
				name = p.expect(javatok.Ident).Text
			}
			x = &javaast.MethodRef{Recv: x, Name: name, P: x.Pos()}
		default:
			return x
		}
	}
}

func (p *parser) parseArgs() []javaast.Expr {
	p.expect(javatok.LParen)
	var args []javaast.Expr
	for p.cur().Kind != javatok.RParen && p.cur().Kind != javatok.EOF {
		args = append(args, p.parseExpr())
		if !p.accept(javatok.Comma) {
			break
		}
	}
	p.expect(javatok.RParen)
	return args
}

func (p *parser) parsePrimary() javaast.Expr {
	t := p.cur()
	pos := t.Pos
	switch t.Kind {
	case javatok.IntLit:
		p.advance()
		return &javaast.Literal{Kind: javaast.IntLit, Value: t.Text, P: pos}
	case javatok.LongLit:
		p.advance()
		return &javaast.Literal{Kind: javaast.LongLit, Value: t.Text, P: pos}
	case javatok.FloatLit:
		p.advance()
		return &javaast.Literal{Kind: javaast.FloatLit, Value: t.Text, P: pos}
	case javatok.DoubleLit:
		p.advance()
		return &javaast.Literal{Kind: javaast.DoubleLit, Value: t.Text, P: pos}
	case javatok.CharLit:
		p.advance()
		return &javaast.Literal{Kind: javaast.CharLit, Value: t.Text, P: pos}
	case javatok.StringLit:
		p.advance()
		return &javaast.Literal{Kind: javaast.StringLit, Value: t.Text, P: pos}
	case javatok.LParen:
		p.advance()
		x := p.parseExpr()
		p.expect(javatok.RParen)
		return x
	case javatok.Ident:
		name := p.advance().Text
		if p.cur().Kind == javatok.LParen {
			return &javaast.Call{Name: name, Args: p.parseArgs(), P: pos}
		}
		return &javaast.Name{Ident: name, P: pos}
	case javatok.Keyword:
		switch t.Text {
		case "true", "false":
			p.advance()
			return &javaast.Literal{Kind: javaast.BoolLit, Value: t.Text, P: pos}
		case "null":
			p.advance()
			return &javaast.Literal{Kind: javaast.NullLit, Value: "null", P: pos}
		case "this":
			p.advance()
			if p.cur().Kind == javatok.LParen {
				return &javaast.Call{Recv: &javaast.This{P: pos}, Name: "<init>",
					Args: p.parseArgs(), P: pos}
			}
			return &javaast.This{P: pos}
		case "super":
			p.advance()
			if p.cur().Kind == javatok.LParen {
				return &javaast.Call{Recv: &javaast.Super{P: pos}, Name: "<init>",
					Args: p.parseArgs(), P: pos}
			}
			return &javaast.Super{P: pos}
		case "new":
			return p.parseNew()
		case "void":
			// void.class
			p.advance()
			if p.accept(javatok.Dot) {
				p.expectKw("class")
			}
			return &javaast.ClassLit{Type: &javaast.TypeRef{Name: "void", P: pos}, P: pos}
		default:
			if primitiveTypes[t.Text] {
				// int.class, int[].class
				typ := p.parseTypeRef()
				if p.accept(javatok.Dot) {
					p.expectKw("class")
				}
				return &javaast.ClassLit{Type: typ, P: pos}
			}
		}
	}
	p.fail(fmt.Sprintf("unexpected token %v in expression", t))
	return nil
}

func (p *parser) parseNew() javaast.Expr {
	pos := p.cur().Pos
	p.expectKw("new")
	typ := p.parseTypeRefNoDims()
	// Array creation.
	if p.cur().Kind == javatok.LBracket {
		na := &javaast.NewArray{Type: typ, P: pos}
		for p.cur().Kind == javatok.LBracket {
			p.advance()
			if p.cur().Kind == javatok.RBracket {
				p.advance()
				continue
			}
			na.Lens = append(na.Lens, p.parseExpr())
			p.expect(javatok.RBracket)
		}
		if p.cur().Kind == javatok.LBrace {
			init := p.parseArrayInit().(*javaast.ArrayInit)
			na.Elems = init.Elems
			na.HasInit = true
		}
		return na
	}
	n := &javaast.New{Type: typ, P: pos}
	if p.cur().Kind == javatok.LParen {
		n.Args = p.parseArgs()
	}
	if p.cur().Kind == javatok.LBrace {
		// Anonymous class body: parse members into a synthetic decl.
		body := &javaast.TypeDecl{Name: typ.Base() + "$anon", P: p.cur().Pos}
		p.expect(javatok.LBrace)
		for p.cur().Kind != javatok.RBrace && p.cur().Kind != javatok.EOF {
			start := p.i
			p.parseMember(body)
			if p.i == start {
				p.advance()
			}
		}
		p.accept(javatok.RBrace)
		n.Body = body
	}
	return n
}

// parseTypeRefNoDims parses a type reference without consuming trailing []
// pairs (array-new handles brackets itself).
func (p *parser) parseTypeRefNoDims() *javaast.TypeRef {
	t := &javaast.TypeRef{P: p.cur().Pos}
	cur := p.cur()
	if cur.Kind == javatok.Keyword && primitiveTypes[cur.Text] {
		t.Name = cur.Text
		p.advance()
		return t
	}
	if cur.Kind != javatok.Ident {
		p.fail(fmt.Sprintf("expected type after new, found %v", cur))
	}
	t.Name = p.parseQualifiedNameGeneric()
	return t
}
