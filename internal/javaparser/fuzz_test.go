package javaparser

import (
	"strings"
	"testing"
)

// fuzzSeeds is the seed corpus for FuzzParse: the Figure-2 running example
// (examples/quickstart), SNIPPETS.md-style crypto usage, and a spread of
// malformed, truncated, and adversarial inputs. The parser's contract is
// that its only panic is the internal parseError recovery protocol — which
// never escapes Parse — so fuzzing simply asserts Parse returns.
var fuzzSeeds = []string{
	// The paper's Figure 2 (old version).
	`class AESCipher {
    Cipher enc, dec;
    final String algorithm = "AES";

    protected void setKey(Secret key) {
        try {
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key);
        } catch (Exception e) {}
    }
}`,
	// The paper's Figure 2 (new version, CBC with IV).
	`class AESCipher {
    Cipher enc, dec;
    final String algorithm = "AES/CBC/PKCS5Padding";

    protected void setKeyAndIV(Secret key, String iv) {
        try {
            byte[] ivBytes = Hex.decodeHex(iv.toCharArray());
            IvParameterSpec ivSpec = new IvParameterSpec(ivBytes);
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
        } catch (Exception e) {}
    }
}`,
	// SNIPPETS.md-style hard-coded key and PBE usage.
	`public class KeyHelper {
    private static final byte[] SALT = { 0x01, 0x02, 0x03, 0x04 };
    SecretKey derive(char[] pw) throws Exception {
        PBEKeySpec spec = new PBEKeySpec(pw, SALT, 1000, 256);
        SecretKeyFactory f = SecretKeyFactory.getInstance("PBKDF2WithHmacSHA1");
        return f.generateSecret(spec);
    }
    void fill() { new SecureRandom().nextBytes(SALT); }
}`,
	// Control flow, generics, nesting, lambdas.
	`package a.b.c;
import java.util.*;
public final class Outer<T extends Comparable<T>> {
    interface Cb { void run(); }
    enum Mode { ECB, CBC }
    static int count = 0;
    void m(List<T> xs) {
        for (T x : xs) { if (x == null) continue; count++; }
        switch (count) { case 0: break; default: count--; }
        Cb cb = () -> System.out.println("done");
        do { count <<= 1; } while (count < 10);
    }
    class Inner { int f = count; }
}`,
	// Valid-ish fragments and pathologies.
	``,
	`class`,
	`class A {`,
	`class A { void m( } }`,
	`interface I { int f(); `,
	`class A { String s = "unterminated; }`,
	`class A { char c = 'A'; float f = 1.5e-3f; long l = 0xFFL; }`,
	`class A { /* unterminated comment`,
	`@interface Anno { String value() default "x"; }`,
	`class A { void m() { label: while (true) { break label; } } }`,
	"class \x00\xff { }",
	`;;;`,
	`class A { void m() { new int[]{1,2,}[0]++; } }`,
}

// FuzzParse asserts that the parser never escapes a panic other than its
// internal parseError recovery (which Parse itself recovers): for any
// input, Parse returns a Result with a non-nil compilation unit.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	// A couple of generated stress seeds: deep nesting and long token runs.
	f.Add("class D { void m() { " + strings.Repeat("if (x) { ", 60) + strings.Repeat("}", 60) + " } }")
	f.Add("class E { int x = " + strings.Repeat("(", 200) + "1" + strings.Repeat(")", 200) + "; }")
	f.Fuzz(func(t *testing.T, src string) {
		res := Parse(src) // a non-parseError panic fails the fuzz run
		if res.Unit == nil {
			t.Errorf("Parse returned nil unit for %q", src)
		}
	})
}
