package javaparser

import (
	"fmt"

	"repro/internal/javaast"
	"repro/internal/javatok"
)

// parseBlock parses { stmts } with per-statement error recovery.
func (p *parser) parseBlock() *javaast.Block {
	b := &javaast.Block{P: p.cur().Pos}
	p.expect(javatok.LBrace)
	for p.cur().Kind != javatok.RBrace && p.cur().Kind != javatok.EOF {
		start := p.i
		s := p.parseStmtRecover()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.i == start {
			p.advance()
		}
	}
	p.accept(javatok.RBrace)
	return b
}

// parseStmtRecover parses one statement, skipping to the next ';' or
// balanced '}' on error.
func (p *parser) parseStmtRecover() (s javaast.Stmt) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(parseError)
			if !ok {
				panic(r)
			}
			p.record(pe)
			p.skipToStmtBoundary()
			s = nil
		}
	}()
	stmts := p.parseStmt()
	if len(stmts) == 1 {
		return stmts[0]
	}
	if len(stmts) == 0 {
		return nil
	}
	// Multi-declarator local declaration: wrap in a synthetic block so the
	// statement slice shape is preserved for callers expecting one node.
	return &javaast.Block{Stmts: stmts, P: stmts[0].Pos()}
}

func (p *parser) skipToStmtBoundary() {
	depth := 0
	for {
		switch p.cur().Kind {
		case javatok.EOF:
			return
		case javatok.Semi:
			if depth == 0 {
				p.advance()
				return
			}
		case javatok.LBrace:
			depth++
		case javatok.RBrace:
			if depth == 0 {
				return
			}
			depth--
			if depth == 0 {
				p.advance()
				return
			}
		}
		p.advance()
	}
}

// parseStmt parses one statement. Local variable declarations with several
// declarators expand to several statements.
func (p *parser) parseStmt() []javaast.Stmt {
	pos := p.cur().Pos
	t := p.cur()
	switch {
	case t.Kind == javatok.LBrace:
		return []javaast.Stmt{p.parseBlock()}
	case t.Kind == javatok.Semi:
		p.advance()
		return []javaast.Stmt{&javaast.EmptyStmt{P: pos}}
	case t.Is("if"):
		return []javaast.Stmt{p.parseIf()}
	case t.Is("while"):
		return []javaast.Stmt{p.parseWhile()}
	case t.Is("do"):
		return []javaast.Stmt{p.parseDo()}
	case t.Is("for"):
		return []javaast.Stmt{p.parseFor()}
	case t.Is("return"):
		p.advance()
		var x javaast.Expr
		if p.cur().Kind != javatok.Semi {
			x = p.parseExpr()
		}
		p.accept(javatok.Semi)
		return []javaast.Stmt{&javaast.ReturnStmt{X: x, P: pos}}
	case t.Is("throw"):
		p.advance()
		x := p.parseExpr()
		p.accept(javatok.Semi)
		return []javaast.Stmt{&javaast.ThrowStmt{X: x, P: pos}}
	case t.Is("try"):
		return []javaast.Stmt{p.parseTry()}
	case t.Is("switch"):
		return []javaast.Stmt{p.parseSwitch()}
	case t.Is("break"):
		p.advance()
		label := ""
		if p.cur().Kind == javatok.Ident {
			label = p.advance().Text
		}
		p.accept(javatok.Semi)
		return []javaast.Stmt{&javaast.BreakStmt{Label: label, P: pos}}
	case t.Is("continue"):
		p.advance()
		label := ""
		if p.cur().Kind == javatok.Ident {
			label = p.advance().Text
		}
		p.accept(javatok.Semi)
		return []javaast.Stmt{&javaast.ContinueStmt{Label: label, P: pos}}
	case t.Is("synchronized"):
		p.advance()
		p.expect(javatok.LParen)
		lock := p.parseExpr()
		p.expect(javatok.RParen)
		return []javaast.Stmt{&javaast.SyncStmt{Lock: lock, Body: p.parseBlock(), P: pos}}
	case t.Is("assert"):
		p.advance()
		cond := p.parseExpr()
		var msg javaast.Expr
		if p.accept(javatok.Colon) {
			msg = p.parseExpr()
		}
		p.accept(javatok.Semi)
		return []javaast.Stmt{&javaast.AssertStmt{Cond: cond, Msg: msg, P: pos}}
	case t.Is("class") || t.Is("interface") || t.Is("enum"):
		// Local class: parse and drop (the analyzer does not track them).
		p.parseTypeDecl(nil)
		return nil
	case t.Is("final"):
		p.advance()
		return p.parseLocalDecl(pos)
	case t.Kind == javatok.Ident && p.peek().Kind == javatok.Colon &&
		p.at(2).Kind != javatok.Colon:
		label := p.advance().Text
		p.advance() // ':'
		inner := p.parseStmtRecover()
		return []javaast.Stmt{&javaast.LabeledStmt{Label: label, Stmt: inner, P: pos}}
	}

	// Local variable declaration vs expression statement: speculate.
	if p.looksLikeLocalDecl() {
		return p.parseLocalDecl(pos)
	}
	x := p.parseExpr()
	p.accept(javatok.Semi)
	return []javaast.Stmt{&javaast.ExprStmt{X: x, P: pos}}
}

// looksLikeLocalDecl reports whether the upcoming tokens parse as
// "Type Ident" — the start of a local declaration. Speculative; restores the
// cursor either way.
func (p *parser) looksLikeLocalDecl() bool {
	t := p.cur()
	if t.Kind == javatok.Keyword && primitiveTypes[t.Text] {
		return true
	}
	if t.Kind != javatok.Ident {
		return false
	}
	m := p.mark()
	snap := p.snapshot(64)
	ok := func() (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, isPE := r.(parseError); isPE {
					ok = false
					return
				}
				panic(r)
			}
		}()
		p.parseTypeRef()
		return p.cur().Kind == javatok.Ident
	}()
	p.restore(m, snap)
	return ok
}

func (p *parser) parseLocalDecl(pos javatok.Pos) []javaast.Stmt {
	typ := p.parseTypeRef()
	var out []javaast.Stmt
	for {
		name := p.expect(javatok.Ident).Text
		dt := *typ
		for p.cur().Kind == javatok.LBracket && p.peek().Kind == javatok.RBracket {
			p.advance()
			p.advance()
			dt.Dims++
		}
		d := &javaast.LocalVarDecl{Name: name, Type: &dt, P: pos}
		if p.accept(javatok.Assign) {
			d.Init = p.parseVarInit()
		}
		out = append(out, d)
		if !p.accept(javatok.Comma) {
			break
		}
	}
	p.accept(javatok.Semi)
	return out
}

// parseVarInit parses a variable initializer: an expression or an array
// initializer { ... }.
func (p *parser) parseVarInit() javaast.Expr {
	if p.cur().Kind == javatok.LBrace {
		return p.parseArrayInit()
	}
	return p.parseExpr()
}

func (p *parser) parseArrayInit() javaast.Expr {
	ai := &javaast.ArrayInit{P: p.cur().Pos}
	p.expect(javatok.LBrace)
	for p.cur().Kind != javatok.RBrace && p.cur().Kind != javatok.EOF {
		ai.Elems = append(ai.Elems, p.parseVarInit())
		if !p.accept(javatok.Comma) {
			break
		}
	}
	p.expect(javatok.RBrace)
	return ai
}

func (p *parser) parseIf() javaast.Stmt {
	pos := p.cur().Pos
	p.expectKw("if")
	p.expect(javatok.LParen)
	cond := p.parseExpr()
	p.expect(javatok.RParen)
	then := p.parseStmtRecover()
	var els javaast.Stmt
	if p.acceptKw("else") {
		els = p.parseStmtRecover()
	}
	return &javaast.IfStmt{Cond: cond, Then: then, Else: els, P: pos}
}

func (p *parser) parseWhile() javaast.Stmt {
	pos := p.cur().Pos
	p.expectKw("while")
	p.expect(javatok.LParen)
	cond := p.parseExpr()
	p.expect(javatok.RParen)
	return &javaast.WhileStmt{Cond: cond, Body: p.parseStmtRecover(), P: pos}
}

func (p *parser) parseDo() javaast.Stmt {
	pos := p.cur().Pos
	p.expectKw("do")
	body := p.parseStmtRecover()
	p.expectKw("while")
	p.expect(javatok.LParen)
	cond := p.parseExpr()
	p.expect(javatok.RParen)
	p.accept(javatok.Semi)
	return &javaast.DoStmt{Body: body, Cond: cond, P: pos}
}

func (p *parser) parseFor() javaast.Stmt {
	pos := p.cur().Pos
	p.expectKw("for")
	p.expect(javatok.LParen)

	// Enhanced for: [final] Type Ident : expr
	m := p.mark()
	snap := p.snapshot(64)
	if fe := p.tryParseForEach(pos); fe != nil {
		return fe
	}
	p.restore(m, snap)

	f := &javaast.ForStmt{P: pos}
	if p.cur().Kind != javatok.Semi {
		p.acceptKw("final")
		if p.looksLikeLocalDecl() {
			f.Init = p.parseLocalDecl(p.cur().Pos) // consumes ';'
		} else {
			f.Init = append(f.Init, &javaast.ExprStmt{X: p.parseExpr(), P: p.cur().Pos})
			for p.accept(javatok.Comma) {
				f.Init = append(f.Init, &javaast.ExprStmt{X: p.parseExpr(), P: p.cur().Pos})
			}
			p.expect(javatok.Semi)
		}
	} else {
		p.advance()
	}
	if p.cur().Kind != javatok.Semi {
		f.Cond = p.parseExpr()
	}
	p.expect(javatok.Semi)
	for p.cur().Kind != javatok.RParen && p.cur().Kind != javatok.EOF {
		f.Post = append(f.Post, p.parseExpr())
		if !p.accept(javatok.Comma) {
			break
		}
	}
	p.expect(javatok.RParen)
	f.Body = p.parseStmtRecover()
	return f
}

// tryParseForEach speculatively parses the header of an enhanced for loop,
// returning nil (without consuming input on failure is the caller's job via
// restore) when the header is not "Type Ident :".
func (p *parser) tryParseForEach(pos javatok.Pos) (fe javaast.Stmt) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(parseError); ok {
				fe = nil
				return
			}
			panic(r)
		}
	}()
	p.acceptKw("final")
	typ := p.parseTypeRef()
	if p.cur().Kind != javatok.Ident {
		return nil
	}
	name := p.advance().Text
	if !p.accept(javatok.Colon) {
		return nil
	}
	iter := p.parseExpr()
	p.expect(javatok.RParen)
	v := &javaast.LocalVarDecl{Name: name, Type: typ, P: pos}
	return &javaast.ForEachStmt{Var: v, Expr: iter, Body: p.parseStmtRecover(), P: pos}
}

func (p *parser) parseTry() javaast.Stmt {
	pos := p.cur().Pos
	p.expectKw("try")
	t := &javaast.TryStmt{P: pos}
	if p.cur().Kind == javatok.LParen {
		p.advance()
		for p.cur().Kind != javatok.RParen && p.cur().Kind != javatok.EOF {
			p.acceptKw("final")
			rpos := p.cur().Pos
			typ := p.parseTypeRef()
			name := p.expect(javatok.Ident).Text
			r := &javaast.LocalVarDecl{Name: name, Type: typ, P: rpos}
			if p.accept(javatok.Assign) {
				r.Init = p.parseExpr()
			}
			t.Resources = append(t.Resources, r)
			if !p.accept(javatok.Semi) {
				break
			}
		}
		p.expect(javatok.RParen)
	}
	t.Body = p.parseBlock()
	for p.cur().Is("catch") {
		c := &javaast.CatchClause{P: p.cur().Pos}
		p.advance()
		p.expect(javatok.LParen)
		p.acceptKw("final")
		prm := &javaast.Param{P: p.cur().Pos}
		prm.Type = p.parseTypeRef()
		for p.accept(javatok.Or) { // multi-catch: A | B e
			c.Types = append(c.Types, p.parseTypeRef().Name)
		}
		if p.cur().Kind == javatok.Ident {
			prm.Name = p.advance().Text
		}
		c.Param = prm
		p.expect(javatok.RParen)
		c.Body = p.parseBlock()
		t.Catches = append(t.Catches, c)
	}
	if p.acceptKw("finally") {
		t.Finally = p.parseBlock()
	}
	if t.Body == nil {
		p.fail("try without body")
	}
	return t
}

func (p *parser) parseSwitch() javaast.Stmt {
	pos := p.cur().Pos
	p.expectKw("switch")
	p.expect(javatok.LParen)
	tag := p.parseExpr()
	p.expect(javatok.RParen)
	s := &javaast.SwitchStmt{Tag: tag, P: pos}
	p.expect(javatok.LBrace)
	var cur *javaast.SwitchCase
	for p.cur().Kind != javatok.RBrace && p.cur().Kind != javatok.EOF {
		switch {
		case p.cur().Is("case"):
			cpos := p.cur().Pos
			p.advance()
			v := p.parseExpr()
			p.expect(javatok.Colon)
			if cur == nil || len(cur.Body) > 0 {
				cur = &javaast.SwitchCase{P: cpos}
				s.Cases = append(s.Cases, cur)
			}
			cur.Values = append(cur.Values, v)
		case p.cur().Is("default"):
			cpos := p.cur().Pos
			p.advance()
			p.expect(javatok.Colon)
			cur = &javaast.SwitchCase{P: cpos}
			s.Cases = append(s.Cases, cur)
		default:
			if cur == nil {
				p.fail(fmt.Sprintf("statement outside case in switch: %v", p.cur()))
			}
			start := p.i
			if st := p.parseStmtRecover(); st != nil {
				cur.Body = append(cur.Body, st)
			}
			if p.i == start {
				p.advance()
			}
		}
	}
	p.accept(javatok.RBrace)
	return s
}
