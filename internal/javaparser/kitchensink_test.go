package javaparser

import (
	"testing"

	"repro/internal/javaast"
)

// kitchenSink is a single file exercising a broad slice of Java syntax the
// parser claims to handle, modeled on real-world crypto utility classes.
const kitchenSink = `
package io.acme.security.util;

import java.security.MessageDigest;
import java.security.SecureRandom;
import java.util.*;
import static java.nio.charset.StandardCharsets.UTF_8;

/**
 * Javadoc with {@code inline tags} and <b>markup</b>.
 */
@SuppressWarnings({"unchecked", "rawtypes"})
public final class CryptoToolkit implements AutoCloseable, Comparable<CryptoToolkit> {

    public @interface Audited {
        String value() default "none";
        int level() default 1;
    }

    public enum Strength {
        LOW(64), MEDIUM(128) {
            @Override int effective() { return 127; }
        }, HIGH(256);

        private final int bits;
        Strength(int bits) { this.bits = bits; }
        int effective() { return bits; }
    }

    interface Source<T extends Comparable<T>> {
        T next() throws Exception;
        default boolean ready() { return true; }
    }

    private static final Map<String, byte[]> CACHE = new HashMap<>();
    private static final char[] HEX = "0123456789abcdef".toCharArray();
    private volatile long counter = 0xCAFE_BABEL;
    protected transient int[][] grid = new int[4][4];

    static {
        CACHE.put("empty", new byte[0]);
    }

    { counter += 1; }

    public CryptoToolkit() { this(new SecureRandom()); }

    public CryptoToolkit(SecureRandom rng) {
        assert rng != null : "rng required";
    }

    @Audited("digest")
    public byte[] digest(String alg, byte[]... chunks) throws Exception {
        MessageDigest md = MessageDigest.getInstance(alg == null ? "SHA-256" : alg);
        outer:
        for (int i = 0, n = chunks.length; i < n; i++) {
            byte[] chunk = chunks[i];
            if (chunk == null) continue outer;
            switch (chunk.length % 3) {
            case 0:
                md.update(chunk);
                break;
            case 1: {
                md.update(chunk, 0, chunk.length);
                break;
            }
            default:
                for (byte b : chunk) { md.update(new byte[]{ b }); }
            }
        }
        return md.digest();
    }

    public String hex(byte[] data) {
        StringBuilder sb = new StringBuilder(data.length << 1);
        int i = 0;
        do {
            int v = data[i] & 0xFF;
            sb.append(HEX[v >>> 4]).append(HEX[v & 0x0F]);
        } while (++i < data.length);
        return sb.toString();
    }

    public <T> List<T> shuffle(List<T> in, SecureRandom rng) {
        List<T> copy = new ArrayList<>(in);
        Collections.sort((List) copy, (a, b) -> a.hashCode() - b.hashCode());
        copy.removeIf(x -> x == null);
        copy.forEach(System.out::println);
        return copy;
    }

    public synchronized void close() {
        try (AutoCloseable res = () -> {}) {
            counter = ~counter;
        } catch (Exception ignored) {
        } finally {
            counter = 0L;
        }
    }

    @Override
    public int compareTo(CryptoToolkit other) {
        return (int) (this.counter - other.counter);
    }

    private static class Holder {
        static final CryptoToolkit INSTANCE = new CryptoToolkit();
    }

    public static CryptoToolkit instance() { return Holder.INSTANCE; }
}
`

func TestKitchenSinkParses(t *testing.T) {
	res := Parse(kitchenSink)
	for _, e := range res.Errors {
		t.Errorf("parse error: %v", e)
	}
	if len(res.Unit.Types) != 1 {
		t.Fatalf("types = %d", len(res.Unit.Types))
	}
	c := res.Unit.Types[0]
	if c.Name != "CryptoToolkit" {
		t.Fatalf("class = %q", c.Name)
	}
	// Nested: @interface Audited, enum Strength, interface Source, class Holder.
	if len(c.Nested) != 4 {
		names := make([]string, len(c.Nested))
		for i, n := range c.Nested {
			names[i] = n.Name
		}
		t.Errorf("nested types = %v, want 4", names)
	}
	byName := map[string]*javaast.TypeDecl{}
	for _, n := range c.Nested {
		byName[n.Name] = n
	}
	if a := byName["Audited"]; a == nil || a.Kind != javaast.InterfaceKind {
		t.Error("@interface Audited not parsed as annotation type")
	}
	if e := byName["Strength"]; e == nil || len(e.EnumConsts) != 3 {
		t.Errorf("enum Strength constants wrong: %+v", byName["Strength"])
	}
	// Member inventory.
	methods := map[string]bool{}
	ctors := 0
	for _, m := range c.Methods {
		if m.IsConstructor {
			ctors++
		}
		methods[m.Name] = true
	}
	for _, want := range []string{"digest", "hex", "shuffle", "close",
		"compareTo", "instance", "<static-init>", "<instance-init>"} {
		if !methods[want] {
			t.Errorf("missing method %s (have %v)", want, methods)
		}
	}
	if ctors != 2 {
		t.Errorf("constructors = %d, want 2", ctors)
	}
	if len(c.Fields) != 4 {
		t.Errorf("fields = %d, want 4", len(c.Fields))
	}
	// Structural spot checks inside digest().
	var labeledContinue, switchStmt, forEach, doWhile bool
	javaast.Walk(res.Unit, func(n javaast.Node) bool {
		switch x := n.(type) {
		case *javaast.ContinueStmt:
			if x.Label == "outer" {
				labeledContinue = true
			}
		case *javaast.SwitchStmt:
			switchStmt = true
		case *javaast.ForEachStmt:
			forEach = true
		case *javaast.DoStmt:
			doWhile = true
		}
		return true
	})
	if !labeledContinue || !switchStmt || !forEach || !doWhile {
		t.Errorf("missing constructs: continue-label=%t switch=%t foreach=%t do=%t",
			labeledContinue, switchStmt, forEach, doWhile)
	}
}

func TestKitchenSinkAnalyzable(t *testing.T) {
	// The kitchen-sink file must also survive the downstream walk without
	// panics (the corpus pipeline guarantee on arbitrary real code).
	res := Parse(kitchenSink)
	count := 0
	javaast.Walk(res.Unit, func(javaast.Node) bool { count++; return true })
	if count < 150 {
		t.Errorf("AST suspiciously small: %d nodes", count)
	}
}
