package javaparser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/javaast"
)

// genExpr builds a random expression over a printable subset of the AST
// (literals, names, field access, calls, indexing, unary and binary
// operators, ternaries). ExprString fully parenthesizes binaries, so the
// rendered form must reparse to a structurally identical expression.
func genExpr(rng *rand.Rand, depth int) javaast.Expr {
	names := []string{"key", "cipher", "spec", "buf", "mode"}
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &javaast.Literal{Kind: javaast.IntLit, Value: []string{"0", "1", "42", "1000"}[rng.Intn(4)]}
		case 1:
			return &javaast.Literal{Kind: javaast.StringLit, Value: []string{"AES", "AES/CBC", "SHA-256"}[rng.Intn(3)]}
		case 2:
			return &javaast.Literal{Kind: javaast.BoolLit, Value: []string{"true", "false"}[rng.Intn(2)]}
		default:
			return &javaast.Name{Ident: names[rng.Intn(len(names))]}
		}
	}
	switch rng.Intn(7) {
	case 0:
		ops := []string{"+", "-", "*", "/", "==", "!=", "<", ">", "&&", "||", "&", "|", "^"}
		return &javaast.Binary{Op: ops[rng.Intn(len(ops))],
			L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 1:
		ops := []string{"-", "!", "~"}
		return &javaast.Unary{Op: ops[rng.Intn(len(ops))], X: genExpr(rng, depth-1)}
	case 2:
		return &javaast.FieldAccess{X: &javaast.Name{Ident: names[rng.Intn(len(names))]},
			Name: "field"}
	case 3:
		nArgs := rng.Intn(3)
		args := make([]javaast.Expr, nArgs)
		for i := range args {
			args[i] = genExpr(rng, depth-1)
		}
		return &javaast.Call{Recv: &javaast.Name{Ident: names[rng.Intn(len(names))]},
			Name: "call", Args: args}
	case 4:
		return &javaast.Index{X: &javaast.Name{Ident: "buf"}, I: genExpr(rng, depth-1)}
	case 5:
		return &javaast.Cond{C: genExpr(rng, depth-1), T: genExpr(rng, depth-1),
			F: genExpr(rng, depth-1)}
	default:
		return genExpr(rng, 0)
	}
}

// TestQuickExprRoundTrip: rendering a random expression and reparsing it
// yields the same rendering (parser ∘ printer = identity on the printable
// subset).
func TestQuickExprRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 3)
		src := javaast.ExprString(e)
		res := Parse("class T { void m() { Object probe = " + src + "; } }")
		if len(res.Errors) > 0 {
			t.Logf("parse errors for %q: %v", src, res.Errors)
			return false
		}
		var got javaast.Expr
		javaast.Walk(res.Unit, func(n javaast.Node) bool {
			if d, ok := n.(*javaast.LocalVarDecl); ok && d.Name == "probe" {
				got = d.Init
			}
			return true
		})
		if got == nil {
			t.Logf("initializer lost for %q", src)
			return false
		}
		if rendered := javaast.ExprString(got); rendered != src {
			t.Logf("round trip: %q → %q", src, rendered)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickParserNeverPanics: random mutations of a valid file (deletions,
// duplications, splices) must never panic the parser.
func TestQuickParserNeverPanics(t *testing.T) {
	base := []byte(paperExample)
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		src := append([]byte{}, base...)
		for i := 0; i < 8; i++ {
			if len(src) < 2 {
				break
			}
			switch rng.Intn(3) {
			case 0: // delete a span
				at := rng.Intn(len(src) - 1)
				n := rng.Intn(20) + 1
				if at+n > len(src) {
					n = len(src) - at
				}
				src = append(src[:at], src[at+n:]...)
			case 1: // duplicate a span
				at := rng.Intn(len(src) - 1)
				n := rng.Intn(12) + 1
				if at+n > len(src) {
					n = len(src) - at
				}
				chunk := append([]byte{}, src[at:at+n]...)
				src = append(src[:at], append(chunk, src[at:]...)...)
			case 2: // splice a random token
				toks := []string{"{", "}", "(", ")", ";", "new", "class",
					"if", "0x", "\"", "¬", "<", ">>"}
				tok := toks[rng.Intn(len(toks))]
				at := rng.Intn(len(src))
				src = append(src[:at], append([]byte(tok), src[at:]...)...)
			}
		}
		Parse(string(src))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
