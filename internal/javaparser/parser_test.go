package javaparser

import (
	"strings"
	"testing"

	"repro/internal/javaast"
)

// mustParse parses src and fails the test on any recovered error.
func mustParse(t *testing.T, src string) *javaast.CompilationUnit {
	t.Helper()
	res := Parse(src)
	for _, e := range res.Errors {
		t.Errorf("unexpected parse error: %v", e)
	}
	return res.Unit
}

const paperExample = `
package com.example.crypto;

import javax.crypto.Cipher;
import javax.crypto.spec.IvParameterSpec;

class AESCipher {
    Cipher enc, dec;
    final String algorithm = "AES/CBC/PKCS5Padding";

    protected void setKeyAndIV(Secret key, String iv) {
        byte[] ivBytes;
        IvParameterSpec ivSpec;
        try {
            ivBytes = Hex.decodeHex(iv.toCharArray());
            ivSpec = new IvParameterSpec(ivBytes);
            enc = Cipher.getInstance(algorithm);
            enc.init(Cipher.ENCRYPT_MODE, key, ivSpec);
            dec = Cipher.getInstance(algorithm);
            dec.init(Cipher.DECRYPT_MODE, key, ivSpec);
        } catch (Exception e) {
            throw new RuntimeException(e);
        }
    }
}
`

func TestParsePaperExample(t *testing.T) {
	cu := mustParse(t, paperExample)
	if cu.Package != "com.example.crypto" {
		t.Errorf("package = %q", cu.Package)
	}
	if len(cu.Imports) != 2 || cu.Imports[0].Path != "javax.crypto.Cipher" {
		t.Errorf("imports = %+v", cu.Imports)
	}
	if len(cu.Types) != 1 {
		t.Fatalf("types = %d", len(cu.Types))
	}
	c := cu.Types[0]
	if c.Name != "AESCipher" || c.Kind != javaast.ClassKind {
		t.Errorf("class = %q kind=%d", c.Name, c.Kind)
	}
	// "Cipher enc, dec;" splits into two fields plus the algorithm field.
	if len(c.Fields) != 3 {
		t.Fatalf("fields = %d, want 3", len(c.Fields))
	}
	if c.Fields[0].Name != "enc" || c.Fields[1].Name != "dec" {
		t.Errorf("field names: %q, %q", c.Fields[0].Name, c.Fields[1].Name)
	}
	if c.Fields[2].Init == nil {
		t.Error("algorithm field has no initializer")
	}
	if got := c.Fields[2].Type.Name; got != "String" {
		t.Errorf("algorithm type = %q", got)
	}
	if len(c.Methods) != 1 {
		t.Fatalf("methods = %d", len(c.Methods))
	}
	m := c.Methods[0]
	if m.Name != "setKeyAndIV" || len(m.Params) != 2 {
		t.Errorf("method = %q params=%d", m.Name, len(m.Params))
	}
	if m.Params[0].Type.Name != "Secret" || m.Params[1].Name != "iv" {
		t.Errorf("params = %+v %+v", m.Params[0], m.Params[1])
	}
}

func TestParseConstructorAndOverloads(t *testing.T) {
	cu := mustParse(t, `
class KeyTool {
    private byte[] salt;
    KeyTool() { this(new byte[16]); }
    KeyTool(byte[] salt) { this.salt = salt; }
    static KeyTool of() { return new KeyTool(); }
}
`)
	c := cu.Types[0]
	var ctors, statics int
	for _, m := range c.Methods {
		if m.IsConstructor {
			ctors++
		}
		if m.IsStatic() {
			statics++
		}
	}
	if ctors != 2 {
		t.Errorf("constructors = %d, want 2", ctors)
	}
	if statics != 1 {
		t.Errorf("static methods = %d, want 1", statics)
	}
}

func TestParseGenerics(t *testing.T) {
	cu := mustParse(t, `
import java.util.Map;
class G<T extends Comparable<T>> {
    Map<String, java.util.List<byte[]>> cache;
    <U> U pick(Map<String, U> m, String k) { return m.get(k); }
    void shifts() { int x = 1 >> 2; int y = 8 >>> 1; x >>= 1; }
    void nested() { Map<String, Map<String, Integer>> mm = null; }
}
`)
	c := cu.Types[0]
	if len(c.Fields) != 1 || c.Fields[0].Name != "cache" {
		t.Fatalf("fields = %+v", c.Fields)
	}
	if got := c.Fields[0].Type.Name; got != "Map" {
		t.Errorf("erased type = %q, want Map", got)
	}
	if len(c.Methods) != 3 {
		t.Errorf("methods = %d, want 3", len(c.Methods))
	}
}

func TestParseControlFlow(t *testing.T) {
	cu := mustParse(t, `
class CF {
    int run(int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) { acc += i; }
        for (String s : names) { acc++; }
        while (acc > 100) acc /= 2;
        do { acc++; } while (acc < 10);
        switch (acc) {
        case 1:
        case 2: acc = 0; break;
        default: acc = -1;
        }
        if (acc == 0) return 1; else if (acc < 0) return -1;
        outer:
        for (;;) { break outer; }
        synchronized (this) { acc++; }
        assert acc != 3 : "bad";
        return acc;
    }
}
`)
	m := cu.Types[0].Methods[0]
	if m.Body == nil {
		t.Fatal("no body")
	}
	kinds := map[string]bool{}
	javaast.Walk(m.Body, func(n javaast.Node) bool {
		switch n.(type) {
		case *javaast.ForStmt:
			kinds["for"] = true
		case *javaast.ForEachStmt:
			kinds["foreach"] = true
		case *javaast.WhileStmt:
			kinds["while"] = true
		case *javaast.DoStmt:
			kinds["do"] = true
		case *javaast.SwitchStmt:
			kinds["switch"] = true
		case *javaast.IfStmt:
			kinds["if"] = true
		case *javaast.LabeledStmt:
			kinds["label"] = true
		case *javaast.SyncStmt:
			kinds["sync"] = true
		case *javaast.AssertStmt:
			kinds["assert"] = true
		}
		return true
	})
	for _, k := range []string{"for", "foreach", "while", "do", "switch", "if", "label", "sync", "assert"} {
		if !kinds[k] {
			t.Errorf("missing %s statement in AST", k)
		}
	}
}

func TestParseTryCatchFinally(t *testing.T) {
	cu := mustParse(t, `
class T {
    void go() {
        try (InputStream in = open(); OutputStream out = sink()) {
            in.read();
        } catch (IOException | RuntimeException e) {
            log(e);
        } catch (final Exception e) {
            rethrow(e);
        } finally {
            close();
        }
    }
}
`)
	var try *javaast.TryStmt
	javaast.Walk(cu, func(n javaast.Node) bool {
		if t, ok := n.(*javaast.TryStmt); ok {
			try = t
		}
		return true
	})
	if try == nil {
		t.Fatal("no try statement")
	}
	if len(try.Resources) != 2 {
		t.Errorf("resources = %d, want 2", len(try.Resources))
	}
	if len(try.Catches) != 2 {
		t.Errorf("catches = %d, want 2", len(try.Catches))
	}
	if len(try.Catches[0].Types) != 1 {
		t.Errorf("multi-catch types = %v", try.Catches[0].Types)
	}
	if try.Finally == nil {
		t.Error("missing finally")
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct{ src, want string }{
		{`a + b * c`, `(a + (b * c))`},
		{`(a + b) * c`, `((a + b) * c)`},
		{`a == b && c != d || e`, `(((a == b) && (c != d)) || e)`},
		{`x = y = z`, `x = y = z`},
		{`c ? t : f`, `(c ? t : f)`},
		{`(Cipher) obj`, `(Cipher) obj`},
		{`(int) x`, `(int) x`},
		{`(a) - b`, `(a - b)`}, // subtraction, not a cast
		{`(byte) - 1`, `(byte) -1`},
		{`x instanceof Cipher`, `x instanceof Cipher`},
		{`new int[4]`, `new int[4]`},
		{`new byte[]{1, 2}`, `new byte[]{1, 2}`},
		{`new javax.crypto.spec.IvParameterSpec(iv)`, `new javax.crypto.spec.IvParameterSpec(iv)`},
		{`arr[i+1]`, `arr[(i + 1)]`},
		{`a.b.c`, `a.b.c`},
		{`Cipher.getInstance("AES")`, `Cipher.getInstance("AES")`},
		{`obj.m(1, "s").n()`, `obj.m(1, "s").n()`},
		{`-x++`, `-x++`},
		{`!flag`, `!flag`},
		{`~bits`, `~bits`},
		{`String.class`, `String.class`},
		{`x -> x`, `(x) -> {...}`},
		{`() -> run()`, `() -> {...}`},
		{`(a, b) -> a`, `(a, b) -> {...}`},
		{`List::of`, `List::of`},
		{`1 << 3 | 1 >> 2`, `((1 << 3) | (1 >> 2))`},
		{`a >>> 2`, `(a >>> 2)`},
		{`"s" + 1 + 'c'`, `(("s" + 1) + 'c')`},
	}
	for _, c := range cases {
		res := Parse("class X { void m() { Object o = " + c.src + "; } }")
		if len(res.Errors) > 0 {
			t.Errorf("%s: parse errors %v", c.src, res.Errors)
			continue
		}
		var init javaast.Expr
		javaast.Walk(res.Unit, func(n javaast.Node) bool {
			if d, ok := n.(*javaast.LocalVarDecl); ok && d.Name == "o" {
				init = d.Init
			}
			return true
		})
		if init == nil {
			t.Errorf("%s: initializer not found", c.src)
			continue
		}
		if got := javaast.ExprString(init); got != c.want {
			t.Errorf("%s: got %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseEnum(t *testing.T) {
	cu := mustParse(t, `
public enum Mode {
    ECB, CBC("iv"), GCM {
        void x() {}
    };
    private final String tag;
    Mode() { this.tag = ""; }
    Mode(String t) { this.tag = t; }
}
`)
	e := cu.Types[0]
	if e.Kind != javaast.EnumKind {
		t.Fatalf("kind = %d", e.Kind)
	}
	if len(e.EnumConsts) != 3 {
		t.Errorf("enum constants = %v", e.EnumConsts)
	}
	if len(e.Methods) != 2 {
		t.Errorf("enum constructors = %d", len(e.Methods))
	}
}

func TestParseInterfaceAndNested(t *testing.T) {
	cu := mustParse(t, `
public interface Store extends AutoCloseable, Iterable<String> {
    int size();
    default boolean isEmpty() { return size() == 0; }
    class Holder {
        static final Store EMPTY = null;
    }
}
`)
	i := cu.Types[0]
	if i.Kind != javaast.InterfaceKind {
		t.Fatal("not an interface")
	}
	if len(i.Methods) != 2 {
		t.Errorf("methods = %d", len(i.Methods))
	}
	if len(i.Nested) != 1 || i.Nested[0].Name != "Holder" {
		t.Errorf("nested = %+v", i.Nested)
	}
	if i.Methods[0].Body != nil {
		t.Error("abstract method has body")
	}
	if i.Methods[1].Body == nil {
		t.Error("default method lost body")
	}
}

func TestParseAnnotationsSkipped(t *testing.T) {
	cu := mustParse(t, `
@SuppressWarnings("unchecked")
public class A {
    @Override
    @Deprecated
    public String toString() { return "a"; }
    @Inject private Cipher c;
    void m(@NotNull final String s) {}
}
`)
	c := cu.Types[0]
	if len(c.Methods) != 2 || len(c.Fields) != 1 {
		t.Errorf("methods=%d fields=%d", len(c.Methods), len(c.Fields))
	}
}

func TestParseAnonymousClass(t *testing.T) {
	cu := mustParse(t, `
class A {
    Runnable r = new Runnable() {
        public void run() { work(); }
    };
}
`)
	var anon *javaast.New
	javaast.Walk(cu, func(n javaast.Node) bool {
		if nn, ok := n.(*javaast.New); ok {
			anon = nn
		}
		return true
	})
	if anon == nil || anon.Body == nil {
		t.Fatal("anonymous class body not parsed")
	}
	if len(anon.Body.Methods) != 1 {
		t.Errorf("anon methods = %d", len(anon.Body.Methods))
	}
}

func TestParseStaticInit(t *testing.T) {
	cu := mustParse(t, `
class A {
    static { setup(); }
    { instanceInit(); }
}
`)
	c := cu.Types[0]
	if len(c.Methods) != 2 {
		t.Fatalf("methods = %d", len(c.Methods))
	}
	if c.Methods[0].Name != "<static-init>" {
		t.Errorf("first = %q", c.Methods[0].Name)
	}
	if c.Methods[1].Name != "<instance-init>" {
		t.Errorf("second = %q", c.Methods[1].Name)
	}
}

func TestErrorRecoveryMember(t *testing.T) {
	res := Parse(`
class A {
    void good1() { fine(); }
    void broken( { this is nonsense %%%
    void good2() { alsoFine(); }
}
class B { void ok() {} }
`)
	if len(res.Errors) == 0 {
		t.Fatal("expected recovered errors")
	}
	if len(res.Unit.Types) != 2 {
		t.Fatalf("types = %d, want 2 (recovery failed)", len(res.Unit.Types))
	}
	names := map[string]bool{}
	for _, m := range res.Unit.Types[0].Methods {
		names[m.Name] = true
	}
	if !names["good1"] {
		t.Error("lost good1")
	}
	if !names["good2"] {
		t.Error("lost good2 after broken member")
	}
}

func TestErrorRecoveryStatement(t *testing.T) {
	res := Parse(`
class A {
    void m() {
        int x = 1;
        %%% garbage ;
        int y = 2;
    }
}
`)
	if len(res.Errors) == 0 {
		t.Fatal("expected errors")
	}
	var names []string
	javaast.Walk(res.Unit, func(n javaast.Node) bool {
		if d, ok := n.(*javaast.LocalVarDecl); ok {
			names = append(names, d.Name)
		}
		return true
	})
	want := "x y"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("recovered decls = %q, want %q", got, want)
	}
}

func TestPartialSnippet(t *testing.T) {
	// A snippet without a class wrapper fails gracefully (no panic) and a
	// library file without main parses fully.
	res := Parse(`enc = Cipher.getInstance("AES");`)
	if res.Unit == nil {
		t.Fatal("nil unit")
	}
	res = Parse(`
package lib;
public class Util {
    public static byte[] digest(byte[] in) throws Exception {
        MessageDigest md = MessageDigest.getInstance("SHA-256");
        return md.digest(in);
    }
}
`)
	if len(res.Errors) != 0 {
		t.Errorf("library parse errors: %v", res.Errors)
	}
}

func TestVarargsAndArrays(t *testing.T) {
	cu := mustParse(t, `
class V {
    void log(String fmt, Object... args) {}
    int[] grid()[] { return null; }
    void m(int arr[], byte raw[][]) {}
}
`)
	c := cu.Types[0]
	if !c.Methods[0].Params[1].Variadic {
		t.Error("varargs not detected")
	}
	if c.Methods[0].Params[1].Type.Dims != 1 {
		t.Errorf("varargs dims = %d", c.Methods[0].Params[1].Type.Dims)
	}
	if c.Methods[1].ReturnType.Dims != 2 {
		t.Errorf("grid return dims = %d", c.Methods[1].ReturnType.Dims)
	}
	if c.Methods[2].Params[0].Type.Dims != 1 || c.Methods[2].Params[1].Type.Dims != 2 {
		t.Error("C-style array dims on params not handled")
	}
}

func TestParseNeverPanics(t *testing.T) {
	inputs := []string{
		"", "}", "{", "class", "class A", "class A {", "class A { void",
		"class A { int x = ; }", "@", "class A { void m() { if } }",
		"interface I { int x = }", "enum E { , }", "class A { A() : }",
		"class A { void m() { new ; } }",
		"class A { void m() { a.b.(); } }",
		"class A { void m() { ((((( } }",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			Parse(src)
		}()
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(paperExample)))
	for i := 0; i < b.N; i++ {
		Parse(paperExample)
	}
}
