// Package javaparser implements a recursive-descent parser for the Java
// subset consumed by the DiffCode analyzer. The parser is error-tolerant at
// member and statement granularity: a syntax error inside a method body skips
// to the next synchronization point and parsing continues, so partial
// programs and code snippets (the common case when mining commits, paper
// §5.1) still yield a usable AST for the parts that parse.
package javaparser

import (
	"fmt"
	"strings"

	"repro/internal/javaast"
	"repro/internal/javatok"
)

// Error describes one recovered syntax error.
type Error struct {
	Pos javatok.Pos
	Msg string
}

func (e Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Result is the outcome of parsing one compilation unit.
type Result struct {
	Unit   *javaast.CompilationUnit
	Errors []Error // recovered syntax errors, in source order
}

// Parse parses Java source text. It always returns a non-nil unit; syntax
// errors are recovered and reported in Result.Errors.
func Parse(src string) Result {
	p := &parser{toks: javatok.Tokenize(src)}
	unit := p.parseCompilationUnit()
	return Result{Unit: unit, Errors: p.errors}
}

// parseError is the panic payload used for error recovery.
type parseError struct {
	pos javatok.Pos
	msg string
}

type parser struct {
	toks   []javatok.Token
	i      int
	errors []Error
}

func (p *parser) cur() javatok.Token  { return p.toks[p.i] }
func (p *parser) peek() javatok.Token { return p.at(1) }

func (p *parser) at(n int) javatok.Token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.i+n]
}

func (p *parser) advance() javatok.Token {
	t := p.toks[p.i]
	if t.Kind != javatok.EOF {
		p.i++
	}
	return t
}

func (p *parser) accept(k javatok.Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool {
	if p.cur().Is(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k javatok.Kind) javatok.Token {
	if p.cur().Kind != k {
		p.fail(fmt.Sprintf("expected %v, found %v", k, p.cur()))
	}
	return p.advance()
}

func (p *parser) expectKw(kw string) {
	if !p.cur().Is(kw) {
		p.fail(fmt.Sprintf("expected %q, found %v", kw, p.cur()))
	}
	p.advance()
}

func (p *parser) fail(msg string) {
	panic(parseError{pos: p.cur().Pos, msg: msg})
}

func (p *parser) record(pe parseError) {
	p.errors = append(p.errors, Error{Pos: pe.pos, Msg: pe.msg})
}

// expectGt consumes a single '>' in a type-argument context, splitting shift
// tokens (>>, >>>) that the lexer produced for adjacent angle brackets.
func (p *parser) expectGt() {
	t := p.cur()
	switch t.Kind {
	case javatok.Gt:
		p.advance()
	case javatok.Shr:
		p.toks[p.i] = javatok.Token{Kind: javatok.Gt, Text: ">",
			Pos: javatok.Pos{Offset: t.Pos.Offset + 1, Line: t.Pos.Line, Col: t.Pos.Col + 1}}
	case javatok.Ushr:
		p.toks[p.i] = javatok.Token{Kind: javatok.Shr, Text: ">>",
			Pos: javatok.Pos{Offset: t.Pos.Offset + 1, Line: t.Pos.Line, Col: t.Pos.Col + 1}}
	case javatok.Ge:
		p.toks[p.i] = javatok.Token{Kind: javatok.Assign, Text: "=",
			Pos: javatok.Pos{Offset: t.Pos.Offset + 1, Line: t.Pos.Line, Col: t.Pos.Col + 1}}
	default:
		p.fail(fmt.Sprintf("expected '>', found %v", t))
	}
}

// mark/restore implement speculative parsing. Token-slice mutations performed
// by expectGt are idempotent re-interpretations and remain valid only along
// the committed path, so speculative attempts snapshot mutated tokens too.
type mark struct {
	i    int
	undo []savedTok
	errs int
}

type savedTok struct {
	idx int
	tok javatok.Token
}

func (p *parser) mark() mark {
	return mark{i: p.i, errs: len(p.errors)}
}

func (p *parser) restore(m mark, snapshot []javatok.Token) {
	// Restore any tokens between m.i and the current position from snapshot.
	for idx := m.i; idx <= p.i && idx < len(p.toks); idx++ {
		if idx-m.i < len(snapshot) {
			p.toks[idx] = snapshot[idx-m.i]
		}
	}
	p.i = m.i
	p.errors = p.errors[:m.errs]
}

// snapshot copies the next n tokens so a speculative parse can be undone.
func (p *parser) snapshot(n int) []javatok.Token {
	end := p.i + n
	if end > len(p.toks) {
		end = len(p.toks)
	}
	out := make([]javatok.Token, end-p.i)
	copy(out, p.toks[p.i:end])
	return out
}

// ---------------------------------------------------------------------------
// Compilation unit
// ---------------------------------------------------------------------------

// The return value is named so the recovery path below yields the partial
// unit instead of nil (Parse promises a non-nil unit for any input).
func (p *parser) parseCompilationUnit() (cu *javaast.CompilationUnit) {
	cu = &javaast.CompilationUnit{P: p.cur().Pos}
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(parseError); ok {
				p.record(pe)
				return
			}
			panic(r)
		}
	}()
	p.skipAnnotations()
	if p.cur().Is("package") {
		p.advance()
		cu.Package = p.parseQualifiedName()
		p.accept(javatok.Semi)
	}
	for p.cur().Is("import") {
		cu.Imports = append(cu.Imports, p.parseImport())
	}
	for p.cur().Kind != javatok.EOF {
		start := p.i
		t := p.parseTopLevelType()
		if t != nil {
			cu.Types = append(cu.Types, t)
		}
		if p.i == start {
			p.advance() // ensure progress on garbage
		}
	}
	return cu
}

func (p *parser) parseImport() *javaast.Import {
	im := &javaast.Import{P: p.cur().Pos}
	p.expectKw("import")
	im.Static = p.acceptKw("static")
	var parts []string
	parts = append(parts, p.expect(javatok.Ident).Text)
	for p.cur().Kind == javatok.Dot {
		p.advance()
		if p.cur().Kind == javatok.Star {
			p.advance()
			im.Wildcard = true
			break
		}
		parts = append(parts, p.expect(javatok.Ident).Text)
	}
	im.Path = strings.Join(parts, ".")
	p.accept(javatok.Semi)
	return im
}

func (p *parser) parseQualifiedName() string {
	var parts []string
	parts = append(parts, p.expect(javatok.Ident).Text)
	for p.cur().Kind == javatok.Dot && p.peek().Kind == javatok.Ident {
		p.advance()
		parts = append(parts, p.advance().Text)
	}
	return strings.Join(parts, ".")
}

// parseTopLevelType parses one type declaration, recovering from errors by
// skipping to a balanced position.
func (p *parser) parseTopLevelType() (decl *javaast.TypeDecl) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(parseError)
			if !ok {
				panic(r)
			}
			p.record(pe)
			p.skipToTopLevel()
			decl = nil
		}
	}()
	mods := p.parseModifiers()
	return p.parseTypeDecl(mods)
}

// skipToTopLevel advances past the current (possibly broken) declaration.
func (p *parser) skipToTopLevel() {
	depth := 0
	for {
		switch p.cur().Kind {
		case javatok.EOF:
			return
		case javatok.LBrace:
			depth++
		case javatok.RBrace:
			depth--
			if depth <= 0 {
				p.advance()
				return
			}
		case javatok.Keyword:
			if depth == 0 {
				switch p.cur().Text {
				case "class", "interface", "enum", "public", "final", "abstract":
					return
				}
			}
		}
		p.advance()
	}
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

var modifierWords = map[string]bool{
	"public": true, "protected": true, "private": true, "static": true,
	"final": true, "abstract": true, "native": true, "synchronized": true,
	"transient": true, "volatile": true, "strictfp": true, "default": true,
}

func (p *parser) parseModifiers() []string {
	var mods []string
	for {
		p.skipAnnotations()
		t := p.cur()
		if t.Kind == javatok.Keyword && modifierWords[t.Text] {
			// "default" opens a switch arm too, but no switch arm appears in
			// modifier position (declarations only).
			mods = append(mods, t.Text)
			p.advance()
			continue
		}
		return mods
	}
}

// skipAnnotations consumes @Name or @Name(...) sequences.
func (p *parser) skipAnnotations() {
	for p.cur().Kind == javatok.At {
		p.advance()
		if p.cur().Is("interface") { // @interface declaration: leave the
			p.i-- // '@' for parseTypeDecl to reject cleanly
			return
		}
		p.parseQualifiedName()
		if p.cur().Kind == javatok.LParen {
			p.skipBalanced(javatok.LParen, javatok.RParen)
		}
	}
}

// skipBalanced consumes a balanced open..close token run.
func (p *parser) skipBalanced(open, close javatok.Kind) {
	p.expect(open)
	depth := 1
	for depth > 0 {
		switch p.cur().Kind {
		case javatok.EOF:
			p.fail("unbalanced " + open.String())
		case open:
			depth++
		case close:
			depth--
		}
		p.advance()
	}
}

// skipTypeParams consumes <...> honoring nesting; used for generic
// declarations and type arguments (both are erased).
func (p *parser) skipTypeParams() {
	if p.cur().Kind != javatok.Lt {
		return
	}
	p.advance()
	depth := 1
	for depth > 0 {
		switch p.cur().Kind {
		case javatok.EOF, javatok.Semi, javatok.LBrace:
			p.fail("unbalanced type parameters")
		case javatok.Lt:
			p.advance()
			depth++
		case javatok.Gt:
			p.advance()
			depth--
		case javatok.Shr:
			p.expectGt()
			depth--
		case javatok.Ushr:
			p.expectGt()
			depth--
		default:
			p.advance()
		}
	}
}

func (p *parser) parseTypeDecl(mods []string) *javaast.TypeDecl {
	t := &javaast.TypeDecl{Modifiers: mods, P: p.cur().Pos}
	// Annotation type declaration: @interface Name { ... } — parsed as an
	// interface with its member bodies skipped (the analyzer never needs
	// annotation elements).
	if p.cur().Kind == javatok.At && p.peek().Is("interface") {
		p.advance()
		p.advance()
		t.Kind = javaast.InterfaceKind
		t.Name = p.expect(javatok.Ident).Text
		p.skipBalanced(javatok.LBrace, javatok.RBrace)
		return t
	}
	switch {
	case p.acceptKw("class"):
		t.Kind = javaast.ClassKind
	case p.acceptKw("interface"):
		t.Kind = javaast.InterfaceKind
	case p.acceptKw("enum"):
		t.Kind = javaast.EnumKind
	default:
		p.fail(fmt.Sprintf("expected type declaration, found %v", p.cur()))
	}
	t.Name = p.expect(javatok.Ident).Text
	p.skipTypeParams()
	if p.acceptKw("extends") {
		t.Extends = p.parseTypeRef().Name
		p.skipTypeParams()
		for p.accept(javatok.Comma) { // interface extending several
			t.Implements = append(t.Implements, p.parseTypeRef().Name)
			p.skipTypeParams()
		}
	}
	if p.acceptKw("implements") {
		t.Implements = append(t.Implements, p.parseTypeRef().Name)
		p.skipTypeParams()
		for p.accept(javatok.Comma) {
			t.Implements = append(t.Implements, p.parseTypeRef().Name)
			p.skipTypeParams()
		}
	}
	p.expect(javatok.LBrace)
	if t.Kind == javaast.EnumKind {
		p.parseEnumConstants(t)
	}
	for p.cur().Kind != javatok.RBrace && p.cur().Kind != javatok.EOF {
		start := p.i
		p.parseMember(t)
		if p.i == start {
			p.advance()
		}
	}
	p.accept(javatok.RBrace)
	return t
}

func (p *parser) parseEnumConstants(t *javaast.TypeDecl) {
	for p.cur().Kind == javatok.Ident || p.cur().Kind == javatok.At {
		p.skipAnnotations()
		if p.cur().Kind != javatok.Ident {
			break
		}
		t.EnumConsts = append(t.EnumConsts, p.advance().Text)
		if p.cur().Kind == javatok.LParen {
			p.skipBalanced(javatok.LParen, javatok.RParen)
		}
		if p.cur().Kind == javatok.LBrace {
			p.skipBalanced(javatok.LBrace, javatok.RBrace)
		}
		if !p.accept(javatok.Comma) {
			break
		}
	}
	p.accept(javatok.Semi)
}

// parseMember parses one class member, recovering from syntax errors by
// skipping to the next member boundary.
func (p *parser) parseMember(t *javaast.TypeDecl) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(parseError)
			if !ok {
				panic(r)
			}
			p.record(pe)
			p.skipToMemberBoundary()
		}
	}()
	if p.accept(javatok.Semi) {
		return
	}
	pos := p.cur().Pos
	mods := p.parseModifiers()

	// Initializer block (static or instance).
	if p.cur().Kind == javatok.LBrace {
		body := p.parseBlock()
		name := "<instance-init>"
		for _, m := range mods {
			if m == "static" {
				name = "<static-init>"
			}
		}
		t.Methods = append(t.Methods, &javaast.MethodDecl{
			Name: name, Modifiers: mods, Body: body, P: pos,
		})
		return
	}

	// Nested type (including nested @interface declarations).
	if p.cur().Is("class") || p.cur().Is("interface") || p.cur().Is("enum") ||
		(p.cur().Kind == javatok.At && p.peek().Is("interface")) {
		t.Nested = append(t.Nested, p.parseTypeDecl(mods))
		return
	}

	p.skipTypeParams() // generic method type parameters

	// Constructor: ClassName followed by '('.
	if p.cur().Kind == javatok.Ident && p.cur().Text == t.Name &&
		p.peek().Kind == javatok.LParen {
		m := &javaast.MethodDecl{Name: t.Name, Modifiers: mods,
			IsConstructor: true, P: pos}
		p.advance()
		m.Params = p.parseParams()
		p.parseThrows(m)
		if p.cur().Kind == javatok.LBrace {
			m.Body = p.parseBlock()
		} else {
			p.accept(javatok.Semi)
		}
		t.Methods = append(t.Methods, m)
		return
	}

	typ := p.parseTypeRefOrVoid()
	name := p.expect(javatok.Ident).Text

	if p.cur().Kind == javatok.LParen {
		m := &javaast.MethodDecl{Name: name, Modifiers: mods,
			ReturnType: typ, P: pos}
		m.Params = p.parseParams()
		// Trailing array dims on the method: int m()[] — rare, fold into
		// return type.
		for p.cur().Kind == javatok.LBracket && p.peek().Kind == javatok.RBracket {
			p.advance()
			p.advance()
			m.ReturnType.Dims++
		}
		p.parseThrows(m)
		if p.cur().Kind == javatok.LBrace {
			m.Body = p.parseBlock()
		} else {
			p.accept(javatok.Semi)
		}
		t.Methods = append(t.Methods, m)
		return
	}

	// Field declaration, possibly with several declarators.
	for {
		f := &javaast.FieldDecl{Name: name, Modifiers: mods, P: pos}
		ft := *typ
		for p.cur().Kind == javatok.LBracket && p.peek().Kind == javatok.RBracket {
			p.advance()
			p.advance()
			ft.Dims++
		}
		f.Type = &ft
		if p.accept(javatok.Assign) {
			f.Init = p.parseVarInit()
		}
		t.Fields = append(t.Fields, f)
		if !p.accept(javatok.Comma) {
			break
		}
		pos = p.cur().Pos
		name = p.expect(javatok.Ident).Text
	}
	p.accept(javatok.Semi)
}

// memberStartKeywords are sync points for member-level error recovery.
var memberStartKeywords = map[string]bool{
	"public": true, "private": true, "protected": true, "static": true,
	"final": true, "abstract": true, "void": true,
	"class": true, "interface": true, "enum": true,
}

func (p *parser) skipToMemberBoundary() {
	depth := 0
	for {
		t := p.cur()
		switch t.Kind {
		case javatok.EOF:
			return
		case javatok.LBrace:
			depth++
		case javatok.RBrace:
			if depth == 0 {
				return // let parseTypeDecl consume the class's closing brace
			}
			depth--
			if depth == 0 {
				p.advance()
				return
			}
		case javatok.Semi:
			if depth == 0 {
				p.advance()
				return
			}
		case javatok.Keyword:
			// A member-start keyword is a strong signal that the broken
			// member has ended. Tolerate one unbalanced '{' swallowed from
			// the broken member's would-be body.
			if depth <= 1 && memberStartKeywords[t.Text] {
				return
			}
		}
		p.advance()
	}
}

func (p *parser) parseThrows(m *javaast.MethodDecl) {
	if p.acceptKw("throws") {
		m.Throws = append(m.Throws, p.parseQualifiedName())
		for p.accept(javatok.Comma) {
			m.Throws = append(m.Throws, p.parseQualifiedName())
		}
	}
}

func (p *parser) parseParams() []*javaast.Param {
	p.expect(javatok.LParen)
	var params []*javaast.Param
	for p.cur().Kind != javatok.RParen && p.cur().Kind != javatok.EOF {
		p.skipAnnotations()
		p.acceptKw("final")
		p.skipAnnotations()
		prm := &javaast.Param{P: p.cur().Pos}
		prm.Type = p.parseTypeRef()
		if p.accept(javatok.Ellipsis) {
			prm.Variadic = true
			prm.Type.Dims++
		}
		prm.Name = p.expect(javatok.Ident).Text
		for p.cur().Kind == javatok.LBracket && p.peek().Kind == javatok.RBracket {
			p.advance()
			p.advance()
			prm.Type.Dims++
		}
		params = append(params, prm)
		if !p.accept(javatok.Comma) {
			break
		}
	}
	p.expect(javatok.RParen)
	return params
}

var primitiveTypes = map[string]bool{
	"boolean": true, "byte": true, "char": true, "short": true,
	"int": true, "long": true, "float": true, "double": true,
}

// parseTypeRefOrVoid parses a type reference or the void keyword.
func (p *parser) parseTypeRefOrVoid() *javaast.TypeRef {
	if p.cur().Is("void") {
		t := &javaast.TypeRef{Name: "void", P: p.cur().Pos}
		p.advance()
		return t
	}
	return p.parseTypeRef()
}

// parseTypeRef parses a (possibly qualified, possibly generic, possibly
// array) type reference. Generic arguments are skipped.
func (p *parser) parseTypeRef() *javaast.TypeRef {
	t := &javaast.TypeRef{P: p.cur().Pos}
	cur := p.cur()
	if cur.Kind == javatok.Keyword && primitiveTypes[cur.Text] {
		t.Name = cur.Text
		p.advance()
	} else if cur.Kind == javatok.Ident {
		t.Name = p.parseQualifiedNameGeneric()
	} else {
		p.fail(fmt.Sprintf("expected type, found %v", cur))
	}
	for p.cur().Kind == javatok.LBracket && p.peek().Kind == javatok.RBracket {
		p.advance()
		p.advance()
		t.Dims++
	}
	return t
}

// parseQualifiedNameGeneric parses a dotted name where each segment may carry
// type arguments (which are skipped): a.b.C<D>.E .
func (p *parser) parseQualifiedNameGeneric() string {
	var parts []string
	parts = append(parts, p.expect(javatok.Ident).Text)
	p.skipTypeParams()
	for p.cur().Kind == javatok.Dot && p.peek().Kind == javatok.Ident {
		p.advance()
		parts = append(parts, p.advance().Text)
		p.skipTypeParams()
	}
	return strings.Join(parts, ".")
}
