package textdiff

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDiffBasics(t *testing.T) {
	a := []string{"a", "b", "c"}
	b := []string{"a", "x", "c"}
	edits := Diff(a, b)
	var dels, ins, eqs int
	for _, e := range edits {
		switch e.Op {
		case Delete:
			dels++
		case Insert:
			ins++
		case Equal:
			eqs++
		}
	}
	if dels != 1 || ins != 1 || eqs != 2 {
		t.Errorf("edits = %+v", edits)
	}
}

func TestDiffEmpty(t *testing.T) {
	if got := Diff(nil, nil); len(got) != 0 {
		t.Errorf("empty diff = %v", got)
	}
	if got := Diff([]string{"a"}, nil); len(got) != 1 || got[0].Op != Delete {
		t.Errorf("delete-all diff = %v", got)
	}
	if got := Diff(nil, []string{"a"}); len(got) != 1 || got[0].Op != Insert {
		t.Errorf("insert-all diff = %v", got)
	}
}

func TestDiffIdentical(t *testing.T) {
	a := []string{"x", "y", "z"}
	for _, e := range Diff(a, a) {
		if e.Op != Equal {
			t.Fatalf("identical inputs produced %v", e)
		}
	}
}

// Property: applying the diff reconstructs both sides.
func TestQuickDiffReconstructs(t *testing.T) {
	gen := func(raw []byte) []string {
		var ls []string
		for _, b := range raw {
			ls = append(ls, strings.Repeat(string(rune('a'+b%5)), int(b%3)+1))
			if len(ls) >= 12 {
				break
			}
		}
		return ls
	}
	f := func(ra, rb []byte) bool {
		a, b := gen(ra), gen(rb)
		old, new := Apply(Diff(a, b))
		wantOld := ""
		for _, l := range a {
			wantOld += l + "\n"
		}
		wantNew := ""
		for _, l := range b {
			wantNew += l + "\n"
		}
		return old == wantOld && new == wantNew
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: diff is minimal-ish — number of non-equal edits is bounded by
// len(a)+len(b) and zero iff slices equal.
func TestQuickDiffChangeCount(t *testing.T) {
	f := func(ra, rb []byte) bool {
		a := []string{}
		for _, x := range ra {
			a = append(a, string(rune('a'+x%4)))
		}
		b := []string{}
		for _, x := range rb {
			b = append(b, string(rune('a'+x%4)))
		}
		changes := 0
		for _, e := range Diff(a, b) {
			if e.Op != Equal {
				changes++
			}
		}
		if changes > len(a)+len(b) {
			return false
		}
		equal := len(a) == len(b)
		if equal {
			for i := range a {
				if a[i] != b[i] {
					equal = false
					break
				}
			}
		}
		return !equal || changes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnified(t *testing.T) {
	old := "class A {\n  int x = 1;\n  int y = 2;\n}"
	new := "class A {\n  int x = 1;\n  int y = 3;\n}"
	out := Unified(old, new, -1)
	if !strings.Contains(out, "- ") || !strings.Contains(out, "+ ") {
		t.Errorf("unified output:\n%s", out)
	}
	if !strings.Contains(out, "-   int y = 2;") && !strings.Contains(out, "- int y = 2") {
		// Exact spacing: prefix is "- " plus the line text.
		if !strings.Contains(out, "int y = 2") {
			t.Errorf("missing deleted line:\n%s", out)
		}
	}
}

func TestUnifiedContextElision(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 30; i++ {
		sb.WriteString("line\n")
	}
	old := sb.String() + "CHANGED-OLD\n" + sb.String()
	new := sb.String() + "CHANGED-NEW\n" + sb.String()
	out := Unified(old, new, 2)
	if !strings.Contains(out, "...") {
		t.Errorf("long context not elided:\n%s", out)
	}
	if strings.Count(out, "line") > 10 {
		t.Errorf("too much context kept:\n%s", out)
	}
}

func TestLines(t *testing.T) {
	if got := Lines(""); got != nil {
		t.Errorf("Lines(\"\") = %v", got)
	}
	if got := Lines("a\nb\n"); len(got) != 2 {
		t.Errorf("trailing newline handling: %v", got)
	}
	if got := Lines("a"); len(got) != 1 || got[0] != "a" {
		t.Errorf("single line: %v", got)
	}
}
