// Package textdiff implements a line-level diff (Myers' O(ND) algorithm)
// used to render the concrete patches behind mined usage changes, in the
// unified "-/+" style of the paper's Figure 2(a).
package textdiff

import "strings"

// Op is one diff operation.
type Op int

// Diff operations.
const (
	Equal Op = iota
	Delete
	Insert
)

// Edit is one diffed line.
type Edit struct {
	Op   Op
	Line string
}

// Lines splits s into lines without trailing newlines.
func Lines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// Diff computes a minimal line diff from a to b using Myers' algorithm.
func Diff(a, b []string) []Edit {
	n, m := len(a), len(b)
	max := n + m
	if max == 0 {
		return nil
	}
	// trace of V arrays for backtracking.
	var trace [][]int
	v := make([]int, 2*max+1)
	offset := max
	var d int
loop:
	for d = 0; d <= max; d++ {
		vc := append([]int{}, v...)
		trace = append(trace, vc)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[offset+k-1] < v[offset+k+1]) {
				x = v[offset+k+1]
			} else {
				x = v[offset+k-1] + 1
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[offset+k] = x
			if x >= n && y >= m {
				break loop
			}
		}
	}
	// Backtrack.
	var edits []Edit
	x, y := n, m
	for depth := d; depth > 0 && (x > 0 || y > 0); depth-- {
		vprev := trace[depth]
		k := x - y
		var prevK int
		if k == -depth || (k != depth && vprev[offset+k-1] < vprev[offset+k+1]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vprev[offset+prevK]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			edits = append(edits, Edit{Equal, a[x-1]})
			x--
			y--
		}
		if depth > 0 {
			if x == prevX {
				edits = append(edits, Edit{Insert, b[y-1]})
				y--
			} else {
				edits = append(edits, Edit{Delete, a[x-1]})
				x--
			}
		}
	}
	for x > 0 && y > 0 {
		edits = append(edits, Edit{Equal, a[x-1]})
		x--
		y--
	}
	for x > 0 {
		edits = append(edits, Edit{Delete, a[x-1]})
		x--
	}
	for y > 0 {
		edits = append(edits, Edit{Insert, b[y-1]})
		y--
	}
	// Reverse.
	for i, j := 0, len(edits)-1; i < j; i, j = i+1, j-1 {
		edits[i], edits[j] = edits[j], edits[i]
	}
	return edits
}

// Unified renders a diff in "-/+" patch form, keeping ctx lines of context
// around changes (ctx < 0 keeps everything).
func Unified(old, new string, ctx int) string {
	edits := Diff(Lines(old), Lines(new))
	var sb strings.Builder
	if ctx < 0 {
		for _, e := range edits {
			sb.WriteString(prefix(e.Op) + e.Line + "\n")
		}
		return sb.String()
	}
	// Mark lines to keep: changes plus ctx of context.
	keep := make([]bool, len(edits))
	for i, e := range edits {
		if e.Op == Equal {
			continue
		}
		lo := i - ctx
		if lo < 0 {
			lo = 0
		}
		hi := i + ctx
		if hi >= len(edits) {
			hi = len(edits) - 1
		}
		for j := lo; j <= hi; j++ {
			keep[j] = true
		}
	}
	skipping := false
	for i, e := range edits {
		if !keep[i] {
			if !skipping {
				sb.WriteString("  ...\n")
				skipping = true
			}
			continue
		}
		skipping = false
		sb.WriteString(prefix(e.Op) + e.Line + "\n")
	}
	return sb.String()
}

func prefix(op Op) string {
	switch op {
	case Delete:
		return "- "
	case Insert:
		return "+ "
	default:
		return "  "
	}
}

// Apply reconstructs the new text from a diff (used to verify diffs in
// tests and to patch corpus snapshots).
func Apply(edits []Edit) (old, new string) {
	var ob, nb strings.Builder
	for _, e := range edits {
		switch e.Op {
		case Equal:
			ob.WriteString(e.Line + "\n")
			nb.WriteString(e.Line + "\n")
		case Delete:
			ob.WriteString(e.Line + "\n")
		case Insert:
			nb.WriteString(e.Line + "\n")
		}
	}
	return ob.String(), nb.String()
}
