package androidctx

import "testing"

const sampleManifest = `<?xml version="1.0" encoding="utf-8"?>
<manifest xmlns:android="http://schemas.android.com/apk/res/android"
    package="com.example.app">
    <uses-sdk android:minSdkVersion="16" android:targetSdkVersion="23" />
    <application android:label="Demo" />
</manifest>`

func TestParseManifest(t *testing.T) {
	sdk, ok := ParseManifest(sampleManifest)
	if !ok || sdk != 16 {
		t.Errorf("ParseManifest = %d, %t; want 16, true", sdk, ok)
	}
	// Manifest without uses-sdk is still recognized.
	sdk, ok = ParseManifest(`<manifest package="a.b"></manifest>`)
	if !ok || sdk != 0 {
		t.Errorf("bare manifest = %d, %t", sdk, ok)
	}
	if _, ok := ParseManifest("not xml at all"); ok {
		t.Error("garbage parsed as manifest")
	}
	if _, ok := ParseManifest(`<resources></resources>`); ok {
		t.Error("non-manifest XML accepted")
	}
}

func TestParseGradle(t *testing.T) {
	cases := []struct {
		src  string
		want int
		ok   bool
	}{
		{"android {\n  defaultConfig {\n    minSdkVersion 17\n  }\n}", 17, true},
		{"minSdkVersion = 21", 21, true},
		{"minSdk 19", 19, true},
		{"minSdkVersion 18 // raised for security", 18, true},
		{"compileSdkVersion 33", 0, false},
		{"", 0, false},
		{"minSdkVersion rootProject.minSdk", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseGradle(c.src)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseGradle(%q) = %d, %t; want %d, %t", c.src, got, ok, c.want, c.ok)
		}
	}
}

func TestHasPRNGFixes(t *testing.T) {
	if !HasPRNGFixes(map[string]string{"src/security/PRNGFixes.java": "public final class PRNGFixes {}"}) {
		t.Error("PRNGFixes.java not detected by name")
	}
	if !HasPRNGFixes(map[string]string{"src/App.java": "void init() { PRNGFixes.apply(); }"}) {
		t.Error("PRNGFixes.apply() call not detected")
	}
	if HasPRNGFixes(map[string]string{"src/App.java": "class App {}"}) {
		t.Error("false positive")
	}
	if HasPRNGFixes(map[string]string{"notes/PRNGFixes.txt": "class PRNGFixes"}) {
		t.Error("non-java file should not count")
	}
}

func TestDetect(t *testing.T) {
	files := map[string]string{
		"AndroidManifest.xml": sampleManifest,
		"src/App.java":        "class App {}",
	}
	ctx := Detect(files)
	if !ctx.Android || ctx.MinSDKVersion != 16 || ctx.HasLPRNG {
		t.Errorf("ctx = %+v", ctx)
	}

	files["src/PRNGFixes.java"] = "public final class PRNGFixes {}"
	ctx = Detect(files)
	if !ctx.HasLPRNG {
		t.Error("LPRNG fix not detected")
	}

	gradleOnly := map[string]string{"app/build.gradle": "minSdkVersion 21"}
	ctx = Detect(gradleOnly)
	if !ctx.Android || ctx.MinSDKVersion != 21 {
		t.Errorf("gradle-only ctx = %+v", ctx)
	}

	// Manifest SDK wins over Gradle.
	both := map[string]string{
		"AndroidManifest.xml": sampleManifest,
		"build.gradle":        "minSdkVersion 23",
	}
	if got := Detect(both); got.MinSDKVersion != 16 {
		t.Errorf("manifest precedence broken: %+v", got)
	}

	if got := Detect(map[string]string{"Main.java": "class Main {}"}); got.Android {
		t.Errorf("plain project detected as Android: %+v", got)
	}
}
