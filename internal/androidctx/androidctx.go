// Package androidctx derives the project context that rule R6 depends on
// (is this an Android app? what is its minSdkVersion? is the Linux-PRNG
// SecureRandom workaround installed?) from the project's own files:
// AndroidManifest.xml, Gradle build scripts, and the presence of the
// well-known PRNGFixes class from the Android security advisory.
package androidctx

import (
	"encoding/xml"
	"path"
	"strconv"
	"strings"

	"repro/internal/rules"
)

// manifest mirrors the subset of AndroidManifest.xml we need.
type manifest struct {
	XMLName xml.Name `xml:"manifest"`
	UsesSdk struct {
		MinSdkVersion    string `xml:"http://schemas.android.com/apk/res/android minSdkVersion,attr"`
		TargetSdkVersion string `xml:"http://schemas.android.com/apk/res/android targetSdkVersion,attr"`
	} `xml:"uses-sdk"`
}

// ParseManifest extracts the minSdkVersion from AndroidManifest.xml
// content. The boolean reports whether the content parsed as a manifest.
func ParseManifest(content string) (minSDK int, ok bool) {
	var m manifest
	if err := xml.Unmarshal([]byte(content), &m); err != nil {
		return 0, false
	}
	if v, err := strconv.Atoi(strings.TrimSpace(m.UsesSdk.MinSdkVersion)); err == nil {
		return v, true
	}
	// A manifest without uses-sdk is still an Android project.
	return 0, true
}

// ParseGradle scans a Gradle build script for a minSdkVersion setting,
// accepting both `minSdkVersion 16` and `minSdkVersion = 16` (and the
// newer `minSdk 16`).
func ParseGradle(content string) (minSDK int, ok bool) {
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		for _, key := range []string{"minSdkVersion", "minSdk"} {
			if !strings.HasPrefix(line, key) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(line, key))
			rest = strings.TrimSpace(strings.TrimPrefix(rest, "="))
			// Strip trailing comments.
			if i := strings.IndexAny(rest, " \t/"); i > 0 {
				rest = rest[:i]
			}
			if v, err := strconv.Atoi(rest); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// HasPRNGFixes reports whether the source tree contains the PRNGFixes
// workaround class (the LPRNG fix from the Android advisory), detected by
// its canonical class name or the apply() entry point it documents.
func HasPRNGFixes(files map[string]string) bool {
	for p, content := range files {
		base := path.Base(p)
		if base == "PRNGFixes.java" {
			return true
		}
		if strings.HasSuffix(base, ".java") &&
			(strings.Contains(content, "class PRNGFixes") ||
				strings.Contains(content, "PRNGFixes.apply()")) {
			return true
		}
	}
	return false
}

// Detect derives the rule context from a project's files. A project is
// Android when it carries an AndroidManifest.xml or a Gradle script with a
// minSdkVersion; the manifest takes precedence for the SDK level.
func Detect(files map[string]string) rules.Context {
	ctx := rules.Context{}
	var gradleSDK int
	for p, content := range files {
		switch {
		case path.Base(p) == "AndroidManifest.xml":
			if sdk, ok := ParseManifest(content); ok {
				ctx.Android = true
				if sdk > 0 {
					ctx.MinSDKVersion = sdk
				}
			}
		case strings.HasSuffix(p, ".gradle") || strings.HasSuffix(p, ".gradle.kts"):
			if sdk, ok := ParseGradle(content); ok {
				gradleSDK = sdk
			}
		}
	}
	if gradleSDK > 0 {
		ctx.Android = true
		if ctx.MinSDKVersion == 0 {
			ctx.MinSDKVersion = gradleSDK
		}
	}
	if ctx.Android {
		ctx.HasLPRNG = HasPRNGFixes(files)
	}
	return ctx
}
