// Package ruledsl implements a small compiler for the security-rule
// notation of the paper's Figure 9, turning textual rules such as
//
//	MessageDigest : getInstance(X) ∧ X=SHA-1
//	PBEKeySpec : <init>(_,_,X,_) ∧ X<1000
//	Cipher : getInstance(X) ∧ (X=AES ∨ X=AES/ECB)
//	(Cipher : getInstance(X) ∧ startsWith(X,AES/CBC)) ∧ ¬(Mac : getInstance(Z) ∧ startsWith(Z,Hmac))
//
// into executable rules.Rule values. The grammar:
//
//	rule      = clause { "∧" clause }
//	clause    = [ "¬" ] "(" simple ")" | simple
//	simple    = Class ":" formula
//	formula   = or
//	or        = and { "∨" and }
//	and       = unary { "∧" unary }
//	unary     = "¬" unary | "(" or ")" | atom
//	atom      = call | comparison | startsWith | contextFlag
//	call      = method [ "(" argpat { "," argpat } ")" ]
//	argpat    = "_" | Var | literal
//	comparison= Var ("=" | "≠" | "<" | "≤" | ">" | "≥") literal
//	startsWith= "startsWith" "(" Var "," literal ")"
//
// Variables are single-letter uppercase identifiers (X, Y, Z). ASCII
// fallbacks are accepted for the logical operators: "&&" or "and" for ∧,
// "||" or "or" for ∨, "!" or "not" for ¬, "!=" for ≠, "<=" for ≤ and ">="
// for ≥. Context flags are LPRNG, ANDROID, and MIN_SDK_VERSION (the last
// in comparisons).
package ruledsl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tEOF      tokKind = iota
	tIdent            // method/class names, literals like AES/CBC or SHA-1
	tVar              // single uppercase letter
	tWildcard         // _
	tLParen
	tRParen
	tComma
	tColon
	tAnd // ∧
	tOr  // ∨
	tNot // ¬
	tEq  // =
	tNe  // ≠
	tLt  // <
	tLe  // ≤
	tGt  // >
	tGe  // ≥
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.text != "" {
		return fmt.Sprintf("%q", t.text)
	}
	return [...]string{"EOF", "ident", "var", "_", "(", ")", ",", ":",
		"∧", "∨", "¬", "=", "≠", "<", "≤", ">", "≥"}[t.kind]
}

// lex tokenizes a rule string. Literal tokens are maximal runs of
// characters that are not whitespace, delimiters, or operators — this
// admits transformation strings (AES/CBC/PKCS5Padding), algorithm names
// with dashes (SHA-1), and the ⊤-notation (⊤byte[]).
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	emit := func(k tokKind, text string, pos int) {
		toks = append(toks, token{kind: k, text: text, pos: pos})
	}
	for i < len(src) {
		r, w := utf8.DecodeRuneInString(src[i:])
		start := i
		switch {
		case r == ' ' || r == '\t' || r == '\n':
			i += w
		case r == '(':
			emit(tLParen, "", start)
			i += w
		case r == ')':
			emit(tRParen, "", start)
			i += w
		case r == ',':
			emit(tComma, "", start)
			i += w
		case r == ':':
			i += w
			emit(tColon, "", start)
		case r == '∧':
			emit(tAnd, "", start)
			i += w
		case r == '∨':
			emit(tOr, "", start)
			i += w
		case r == '¬':
			emit(tNot, "", start)
			i += w
		case r == '!':
			if strings.HasPrefix(src[i:], "!=") {
				emit(tNe, "", start)
				i += 2
			} else {
				emit(tNot, "", start)
				i += w
			}
		case r == '&':
			if !strings.HasPrefix(src[i:], "&&") {
				return nil, perr(i, "single '&'")
			}
			emit(tAnd, "", start)
			i += 2
		case r == '|':
			if !strings.HasPrefix(src[i:], "||") {
				return nil, perr(i, "single '|'")
			}
			emit(tOr, "", start)
			i += 2
		case r == '=':
			emit(tEq, "", start)
			i += w
		case r == '≠':
			emit(tNe, "", start)
			i += w
		case r == '≤':
			emit(tLe, "", start)
			i += w
		case r == '≥':
			emit(tGe, "", start)
			i += w
		case r == '<':
			// "<=" or "<init>" or plain "<".
			if strings.HasPrefix(src[i:], "<=") {
				emit(tLe, "", start)
				i += 2
			} else if strings.HasPrefix(src[i:], "<init>") {
				emit(tIdent, "<init>", start)
				i += len("<init>")
			} else {
				emit(tLt, "", start)
				i += w
			}
		case r == '>':
			if strings.HasPrefix(src[i:], ">=") {
				emit(tGe, "", start)
				i += 2
			} else {
				emit(tGt, "", start)
				i += w
			}
		default:
			j := i
			for j < len(src) {
				r2, w2 := utf8.DecodeRuneInString(src[j:])
				if isLiteralRune(r2) {
					j += w2
					continue
				}
				break
			}
			if j == i {
				return nil, perr(i, "unexpected character %q", r)
			}
			text := src[i:j]
			i = j
			switch {
			case text == "_":
				emit(tWildcard, "", start)
			case text == "and":
				emit(tAnd, "", start)
			case text == "or":
				emit(tOr, "", start)
			case text == "not":
				emit(tNot, "", start)
			case isVarName(text):
				emit(tVar, text, start)
			default:
				emit(tIdent, text, start)
			}
		}
	}
	emit(tEOF, "", i)
	return toks, nil
}

// isLiteralRune admits the characters literals are made of: letters,
// digits, and the punctuation appearing in transformation strings, digest
// names, and ⊤-notation.
func isLiteralRune(r rune) bool {
	switch r {
	case '/', '-', '.', '[', ']', '_', '⊤', '\'':
		return true
	}
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// isVarName reports whether the token is a rule variable: one uppercase
// letter, optionally primed (X, Y, Z, X').
func isVarName(s string) bool {
	if len(s) == 0 {
		return false
	}
	if len(s) == 1 {
		return s[0] >= 'A' && s[0] <= 'Z'
	}
	return len(s) == 2 && s[0] >= 'A' && s[0] <= 'Z' && s[1] == '\''
}
