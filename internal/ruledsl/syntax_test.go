package ruledsl

import (
	"errors"
	"reflect"
	"testing"
)

// TestParseErrorRendering pins the rendered line:col form of parse
// errors — the contract rulelint diagnostics and CLI messages rely on.
func TestParseErrorRendering(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"Cipher : getInstance(X) ∧ X=", "line 1:29: expected literal, found EOF"},
		{"Cipher : getInstance(X) & X=AES", "line 1:25: single '&'"},
		{"Cipher : getInstance(X) | X=AES", "line 1:25: single '|'"},
		{"Cipher ; getInstance(X)", "line 1:8: unexpected character ';'"},
		{"Cipher : getInstance(X) X=AES", "line 1:25: trailing input starting at \"X\""},
		{"Cipher :\n  getInstance(X) ∧\n  X=$", "line 3:5: unexpected character '$'"},
	}
	for _, c := range cases {
		_, err := ParseSyntax(c.src)
		if err == nil {
			t.Errorf("ParseSyntax(%q): want error, got none", c.src)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("ParseSyntax(%q) error = %q, want %q", c.src, err.Error(), c.want)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("ParseSyntax(%q): error is not a *ParseError", c.src)
		}
		// The compile path wraps the same error with the rule id.
		_, err = Parse("T1", "test", c.src)
		if err == nil || err.Error() != "rule T1: "+c.want {
			t.Errorf("Parse(%q) error = %v, want %q", c.src, err, "rule T1: "+c.want)
		}
	}
}

func TestPosAt(t *testing.T) {
	src := "ab\ncd\ne"
	cases := []struct {
		off       int
		line, col int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, {3, 2, 1}, {5, 2, 3}, {6, 3, 1}, {7, 3, 2}, {99, 3, 2},
	}
	for _, c := range cases {
		got := PosAt(src, c.off)
		if got.Line != c.line || got.Col != c.col {
			t.Errorf("PosAt(%d) = %d:%d, want %d:%d", c.off, got.Line, got.Col, c.line, c.col)
		}
	}
}

func TestParseSyntaxShape(t *testing.T) {
	syn, err := ParseSyntax("(Cipher : getInstance(X) ∧ startsWith(X,AES)) ∧ ¬(Mac : init(_,1000) ∨ MIN_SDK_VERSION<19)")
	if err != nil {
		t.Fatal(err)
	}
	if len(syn.Clauses) != 2 {
		t.Fatalf("want 2 clauses, got %d", len(syn.Clauses))
	}
	c0 := syn.Clauses[0]
	if c0.Class != "Cipher" || c0.Negated || c0.Pos.Col != 2 {
		t.Errorf("clause 0 = %+v", c0)
	}
	and, ok := c0.Formula.(AndExpr)
	if !ok || len(and.Kids) != 2 {
		t.Fatalf("clause 0 formula = %#v", c0.Formula)
	}
	call, ok := and.Kids[0].(CallAtom)
	if !ok || call.Method != "getInstance" || !call.HasArgs || len(call.Args) != 1 {
		t.Fatalf("first atom = %#v", and.Kids[0])
	}
	if call.Args[0].Kind != ArgVar || call.Args[0].Name != "X" {
		t.Errorf("arg = %+v", call.Args[0])
	}
	sw, ok := and.Kids[1].(StartsAtom)
	if !ok || sw.Var != "X" || sw.Value != "AES" {
		t.Fatalf("second atom = %#v", and.Kids[1])
	}
	c1 := syn.Clauses[1]
	if c1.Class != "Mac" || !c1.Negated {
		t.Errorf("clause 1 = %+v", c1)
	}
	or, ok := c1.Formula.(OrExpr)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("clause 1 formula = %#v", c1.Formula)
	}
	initCall, ok := or.Kids[0].(CallAtom)
	if !ok || initCall.Method != "init" ||
		!reflect.DeepEqual([]ArgPatKind{initCall.Args[0].Kind, initCall.Args[1].Kind}, []ArgPatKind{ArgAny, ArgLit}) {
		t.Fatalf("init atom = %#v", or.Kids[0])
	}
	ctx, ok := or.Kids[1].(CtxAtom)
	if !ok || ctx.Name != "MIN_SDK_VERSION" || !ctx.HasOp || ctx.Op != OpLt || ctx.Num != 19 {
		t.Fatalf("ctx atom = %#v", or.Kids[1])
	}
}

func TestParsePackTolerant(t *testing.T) {
	pack := ParsePack("p.rules", `# header
T1 | first | Cipher : getInstance(X) ∧ X=DES
broken line without pipes
T2 | bad formula | Cipher : getInstance(X) ∧ X=
T1 | duplicate id | Mac : getInstance(X)
`)
	if len(pack.LineErrs) != 1 || pack.LineErrs[0].Line != 3 {
		t.Fatalf("LineErrs = %+v", pack.LineErrs)
	}
	if len(pack.Rules) != 3 {
		t.Fatalf("want 3 rules (duplicates kept), got %d", len(pack.Rules))
	}
	if pack.Rules[0].Err != nil || pack.Rules[0].Rule == nil || pack.Rules[0].Syntax == nil {
		t.Errorf("rule 0 should compile: %+v", pack.Rules[0])
	}
	if pack.Rules[0].Line != 2 {
		t.Errorf("rule 0 line = %d, want 2", pack.Rules[0].Line)
	}
	if pack.Rules[1].Err == nil {
		t.Error("rule 1 should fail to compile")
	}
	if pack.Rules[2].ID != "T1" || pack.Rules[2].Line != 5 {
		t.Errorf("rule 2 = %+v", pack.Rules[2])
	}
	if got := pack.Rules[0].FormulaCol; got != 14 {
		t.Errorf("rule 0 FormulaCol = %d, want 14", got)
	}
}
