package ruledsl

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/rules"
)

func analyze(t *testing.T, body string) *analysis.Result {
	t.Helper()
	src := "class T {\n  void run(Key key, char[] pw) throws Exception {\n" +
		body + "\n  }\n}\n"
	return analysis.AnalyzeSource(src, analysis.Options{})
}

func mustMatch(t *testing.T, ruleSrc, body string, ctx rules.Context, want bool) {
	t.Helper()
	r, err := Parse("T", "test rule", ruleSrc)
	if err != nil {
		t.Fatalf("parse %q: %v", ruleSrc, err)
	}
	got, _ := r.Matches(analyze(t, body), ctx)
	if got != want {
		t.Errorf("rule %q on %q: match = %t, want %t", ruleSrc, body, got, want)
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := lex(`Cipher : getInstance(X) ∧ X=AES/CBC`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{tIdent, tColon, tIdent, tLParen, tVar, tRParen, tAnd,
		tVar, tEq, tIdent, tEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %v", toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
	if toks[9].text != "AES/CBC" {
		t.Errorf("literal = %q", toks[9].text)
	}
}

func TestLexInitAndOperators(t *testing.T) {
	toks, err := lex(`PBEKeySpec : <init>(_,_,X,_) ∧ X<1000`)
	if err != nil {
		t.Fatal(err)
	}
	var sawInit, sawLt bool
	for _, tk := range toks {
		if tk.kind == tIdent && tk.text == "<init>" {
			sawInit = true
		}
		if tk.kind == tLt {
			sawLt = true
		}
	}
	if !sawInit || !sawLt {
		t.Errorf("missing <init> or '<': %v", toks)
	}
}

func TestLexASCIIFallbacks(t *testing.T) {
	uni, err := lex(`Cipher : getInstance(X) ∧ X≠BC ∨ ¬init`)
	if err != nil {
		t.Fatal(err)
	}
	ascii, err := lex(`Cipher : getInstance(X) && X!=BC || !init`)
	if err != nil {
		t.Fatal(err)
	}
	if len(uni) != len(ascii) {
		t.Fatalf("unicode/ascii token counts differ: %v vs %v", uni, ascii)
	}
	for i := range uni {
		if uni[i].kind != ascii[i].kind {
			t.Errorf("token %d: %v vs %v", i, uni[i], ascii[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Cipher",
		"Cipher :",
		"Cipher : X=",
		"Cipher : getInstance(X",
		"Cipher : getInstance(X) ∧",
		": getInstance(X)",
		"Cipher : (getInstance(X)",
		"Cipher : X",
		"Cipher : MIN_SDK_VERSION≥abc",
	}
	for _, src := range bad {
		if _, err := Parse("B", "", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSimpleEquality(t *testing.T) {
	rule := `MessageDigest : getInstance(X) ∧ X=SHA-1`
	mustMatch(t, rule, `MessageDigest md = MessageDigest.getInstance("SHA-1");`, rules.Context{}, true)
	mustMatch(t, rule, `MessageDigest md = MessageDigest.getInstance("SHA1");`, rules.Context{}, true) // normalized
	mustMatch(t, rule, `MessageDigest md = MessageDigest.getInstance("SHA-256");`, rules.Context{}, false)
}

func TestDisjunction(t *testing.T) {
	rule := `Cipher : getInstance(X) ∧ (X=AES ∨ X=AES/ECB/PKCS5Padding)`
	mustMatch(t, rule, `Cipher c = Cipher.getInstance("AES");`, rules.Context{}, true)
	mustMatch(t, rule, `Cipher c = Cipher.getInstance("AES/ECB/PKCS5Padding");`, rules.Context{}, true)
	mustMatch(t, rule, `Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");`, rules.Context{}, false)
}

func TestNumericComparison(t *testing.T) {
	rule := `PBEKeySpec : <init>(_,_,X,_) ∧ X<1000`
	mustMatch(t, rule, `PBEKeySpec s = new PBEKeySpec(pw, salt(), 100, 256);`, rules.Context{}, true)
	mustMatch(t, rule, `PBEKeySpec s = new PBEKeySpec(pw, salt(), 4096, 256);`, rules.Context{}, false)
	// Arity must match the pattern: the 3-arg constructor does not.
	mustMatch(t, rule, `PBEKeySpec s = new PBEKeySpec(pw, salt(), 100);`, rules.Context{}, false)
}

func TestTopLiteral(t *testing.T) {
	rule := `IvParameterSpec : <init>(X) ∧ X≠⊤byte[]`
	mustMatch(t, rule, `IvParameterSpec iv = new IvParameterSpec(new byte[]{1,2,3,4});`, rules.Context{}, true)
	mustMatch(t, rule, `IvParameterSpec iv = new IvParameterSpec(randomIV());`, rules.Context{}, false)
	eq := `IvParameterSpec : <init>(X) ∧ X=⊤byte[]`
	mustMatch(t, eq, `IvParameterSpec iv = new IvParameterSpec(randomIV());`, rules.Context{}, true)
}

func TestNegatedCall(t *testing.T) {
	rule := `SecureRandom : ¬getInstanceStrong`
	// Objects NOT created via getInstanceStrong match the negation.
	mustMatch(t, rule, `SecureRandom r = new SecureRandom();`, rules.Context{}, true)
	// The paper's R4 actually matches the *presence*; the bare formula as
	// written in Figure 9 describes the desired state. Presence matching:
	pres := `SecureRandom : getInstanceStrong`
	mustMatch(t, pres, `SecureRandom r = SecureRandom.getInstanceStrong();`, rules.Context{}, true)
	mustMatch(t, pres, `SecureRandom r = new SecureRandom();`, rules.Context{}, false)
}

func TestStartsWith(t *testing.T) {
	rule := `Cipher : getInstance(X) ∧ startsWith(X,AES/CBC)`
	mustMatch(t, rule, `Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");`, rules.Context{}, true)
	mustMatch(t, rule, `Cipher c = Cipher.getInstance("AES/GCM/NoPadding");`, rules.Context{}, false)
}

func TestCompositeRule(t *testing.T) {
	rule := `(Cipher : getInstance(X) ∧ startsWith(X,AES/CBC)) ∧ ` +
		`(Cipher : getInstance(Y) ∧ Y=RSA) ∧ ` +
		`¬(Mac : getInstance(Z) ∧ startsWith(Z,Hmac))`
	vulnerable := `
        Cipher data = Cipher.getInstance("AES/CBC/PKCS5Padding");
        Cipher keyex = Cipher.getInstance("RSA");`
	fixedBody := vulnerable + `
        Mac m = Mac.getInstance("HmacSHA256");`
	mustMatch(t, rule, vulnerable, rules.Context{}, true)
	mustMatch(t, rule, fixedBody, rules.Context{}, false)
	mustMatch(t, rule, `Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");`, rules.Context{}, false)
}

func TestContextRule(t *testing.T) {
	rule := `SecureRandom : <init>(_) ∨ <init>() ∧ ¬LPRNG ∧ MIN_SDK_VERSION≥16`
	// Simpler form used for the test: bare constructor + context.
	rule = `SecureRandom : <init> ∧ ¬LPRNG ∧ MIN_SDK_VERSION≥16`
	body := `SecureRandom r = new SecureRandom();`
	mustMatch(t, rule, body, rules.Context{Android: true, MinSDKVersion: 17}, true)
	mustMatch(t, rule, body, rules.Context{Android: true, MinSDKVersion: 17, HasLPRNG: true}, false)
	mustMatch(t, rule, body, rules.Context{Android: true, MinSDKVersion: 15}, false)
	mustMatch(t, rule, body, rules.Context{MinSDKVersion: 17}, false) // not Android
}

func TestVariableSharing(t *testing.T) {
	// The same variable in two positions must bind consistently.
	rule := `Cipher : getInstance(X) ∧ unwrap(_,X,_)`
	mustMatch(t, rule, `
        Cipher c = Cipher.getInstance("AES");
        c.unwrap(blob(), "AES", 3);`, rules.Context{}, true)
	mustMatch(t, rule, `
        Cipher c = Cipher.getInstance("AES");
        c.unwrap(blob(), "DES", 3);`, rules.Context{}, false)
}

// TestDSLAgreesWithRegistry compiles the Figure 9 formulas of the rules
// whose textual form matches their implementation exactly, and checks that
// the compiled rule and the hand-coded rule agree on a battery of programs.
func TestDSLAgreesWithRegistry(t *testing.T) {
	specs := []struct {
		id  string
		src string
	}{
		{"R1", `MessageDigest : getInstance(X) ∧ X=SHA-1`},
		{"R9", `IvParameterSpec : <init>(X) ∧ X≠⊤byte[]`},
		{"R12", `SecureRandom : setSeed(X) ∧ X≠⊤byte[]`},
		{"R13", `(Cipher : getInstance(X) ∧ startsWith(X,AES/CBC)) ∧ ` +
			`(Cipher : getInstance(Y) ∧ Y=RSA) ∧ ` +
			`¬(Mac : getInstance(Z) ∧ startsWith(Z,Hmac))`},
	}
	bodies := []string{
		`MessageDigest md = MessageDigest.getInstance("SHA-1");`,
		`MessageDigest md = MessageDigest.getInstance("SHA-256");`,
		`IvParameterSpec iv = new IvParameterSpec(new byte[]{1,2});`,
		`IvParameterSpec iv = new IvParameterSpec(rand());`,
		`SecureRandom r = new SecureRandom(); r.setSeed(new byte[]{1});`,
		`SecureRandom r = new SecureRandom(); r.setSeed(r.generateSeed(8));`,
		`Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding"); Cipher b = Cipher.getInstance("RSA");`,
		`Cipher a = Cipher.getInstance("AES/CBC/PKCS5Padding"); Cipher b = Cipher.getInstance("RSA"); Mac m = Mac.getInstance("HmacSHA1");`,
		`Cipher a = Cipher.getInstance("AES/GCM/NoPadding");`,
	}
	for _, spec := range specs {
		compiled, err := Parse(spec.id, "", spec.src)
		if err != nil {
			t.Fatalf("%s: %v", spec.id, err)
		}
		hand := rules.ByID(spec.id)
		for _, body := range bodies {
			res := analyze(t, body)
			want, _ := hand.Matches(res, rules.Context{})
			got, _ := compiled.Matches(res, rules.Context{})
			// R1's hand-coded form also catches MD5; restrict to SHA cases.
			if got != want {
				t.Errorf("%s disagrees on %q: dsl=%t hand=%t", spec.id, body, got, want)
			}
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("X", "", "not a rule at all :::")
}

func TestParseFile(t *testing.T) {
	content := `
# custom rules
NoMD2 | Avoid MD2 digests | MessageDigest : getInstance(X) ∧ X=MD2
NoRC4 | Avoid RC4 stream cipher | Cipher : getInstance(X) ∧ X=RC4
`
	rs, err := ParseFile(content)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].ID != "NoMD2" || rs[1].Description != "Avoid RC4 stream cipher" {
		t.Fatalf("rules = %+v", rs)
	}
	got, _ := rs[0].Matches(analyze(t, `MessageDigest md = MessageDigest.getInstance("MD2");`), rules.Context{})
	if !got {
		t.Error("file-loaded rule does not match")
	}
}

func TestParseFileErrors(t *testing.T) {
	bad := []string{
		"just one field",
		"id | desc only",
		"A | d | Cipher : getInstance(X | broken",
		"A | d | Cipher : getInstance(X)\nA | dup | Cipher : init",
		" | empty id | Cipher : init",
	}
	for _, content := range bad {
		if _, err := ParseFile(content); err == nil {
			t.Errorf("ParseFile(%q) succeeded, want error", content)
		}
	}
}

// TestParseNeverPanics feeds Parse the kind of garbage a user-supplied
// -rulefile can contain. Whatever happens internally, it must come back as
// an error — the checker CLI routes untrusted rule sources through here.
func TestParseNeverPanics(t *testing.T) {
	inputs := []string{
		"",
		":::",
		"Cipher :",
		": getInstance(X)",
		"Cipher : getInstance(",
		"Cipher : getInstance))",
		"Cipher : getInstance(X) ∧",
		"Cipher : ¬",
		"Cipher : X=",
		"Cipher : =X",
		"∧ ∨ ¬ ⊤",
		"Cipher : getInstance(X) ∧ X≥",
		"\x00\xff\xfe",
		"Cipher : getInstance(\"unterminated",
		"Cipher : getInstance(X) ∧ X=⊤byte[",
		"Cipher : f(((((((((((((((((((((((((((((((",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", src, r)
				}
			}()
			if _, err := Parse("X", "junk", src); err == nil {
				// Some junk may accidentally be grammatical; that is fine —
				// the requirement is only that failures are errors.
				t.Logf("Parse(%q) succeeded", src)
			}
		}()
	}
}
