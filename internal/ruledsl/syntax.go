package ruledsl

import "fmt"

// Pos locates a token within a rule source: the byte offset plus the
// 1-based line:col it renders as. Rule formulas are usually one line, so
// Line is almost always 1 and Col is the interesting coordinate; pack
// loaders translate formula-relative positions into pack-absolute ones.
type Pos struct {
	Offset int `json:"offset"`
	Line   int `json:"line"`
	Col    int `json:"col"`
}

// PosAt computes the 1-based line:col of a byte offset in src. Columns
// count runes, not bytes, so ∧/∨/¬ advance by one. Offsets past the end
// clamp to the position one past the last character.
func PosAt(src string, offset int) Pos {
	if offset > len(src) {
		offset = len(src)
	}
	line, col := 1, 1
	for _, r := range src[:offset] {
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return Pos{Offset: offset, Line: line, Col: col}
}

// ParseError is a lexer/parser error carrying the offending token's
// position. Parse fills Line/Col from the source so the rendered form is
// "line L:C: message" — position-accurate for editors and for rulelint
// diagnostics — instead of a bare byte offset.
type ParseError struct {
	Offset    int
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// perr builds a ParseError at a byte offset; Parse resolves Line/Col.
func perr(offset int, format string, args ...any) *ParseError {
	return &ParseError{Offset: offset, Msg: fmt.Sprintf(format, args...)}
}

// resolvePos fills the line:col of a ParseError (possibly wrapped) from
// the rule source it was produced over.
func resolvePos(err error, src string) {
	var pe *ParseError
	if asParseError(err, &pe) {
		p := PosAt(src, pe.Offset)
		pe.Line, pe.Col = p.Line, p.Col
	}
}

// asParseError is errors.As without the import cycle risk of bringing
// errors into every call site; kept trivial on purpose.
func asParseError(err error, target **ParseError) bool {
	for err != nil {
		if pe, ok := err.(*ParseError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// ---------------------------------------------------------------------------
// Exported, position-annotated syntax
// ---------------------------------------------------------------------------

// Syntax is the parsed form of one rule: its clause list with every atom
// position-annotated. It is the surface rulelint analyzes — the compiled
// rules.Rule only exposes opaque predicate closures.
type Syntax struct {
	Source  string
	Clauses []ClauseSyntax
}

// ClauseSyntax is one Class:formula conjunct.
type ClauseSyntax struct {
	Class   string
	Pos     Pos // position of the class identifier
	Negated bool
	Formula Formula
}

// Formula is a node of a clause formula tree.
type Formula interface{ formulaTag() }

// AndExpr is a conjunction of formulas.
type AndExpr struct{ Kids []Formula }

// OrExpr is a disjunction of formulas.
type OrExpr struct{ Kids []Formula }

// NotExpr is a negated formula.
type NotExpr struct{ Kid Formula }

// CallAtom matches a usage event by method name; Args constrain arity and
// argument values when HasArgs is set.
type CallAtom struct {
	Method  string
	Pos     Pos
	HasArgs bool
	Args    []ArgPattern
}

// ArgPatKind classifies one argument pattern.
type ArgPatKind int

// The three argument-pattern shapes.
const (
	ArgAny ArgPatKind = iota // _
	ArgVar                   // X — binds the argument's abstract value
	ArgLit                   // literal constant, e.g. AES or 1000
)

// ArgPattern is one argument pattern of a call atom.
type ArgPattern struct {
	Kind ArgPatKind
	Name string // variable name or literal text
	Pos  Pos
}

// CmpOp is a comparison operator of the rule language.
type CmpOp int

// The six comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	return [...]string{"=", "≠", "<", "≤", ">", "≥"}[op]
}

// IsOrdered reports whether the operator is a numeric ordering (<, ≤, >, ≥)
// rather than an (in)equality.
func (op CmpOp) IsOrdered() bool { return op >= OpLt }

// CmpAtom compares a bound variable against a literal.
type CmpAtom struct {
	Var   string
	Op    CmpOp
	Value string
	Pos   Pos
}

// StartsAtom is startsWith(Var, prefix).
type StartsAtom struct {
	Var   string
	Value string
	Pos   Pos
}

// CtxAtom tests project context: LPRNG, ANDROID, or a MIN_SDK_VERSION
// comparison (HasOp distinguishes the bare flags).
type CtxAtom struct {
	Name  string
	Op    CmpOp
	Num   int64
	HasOp bool
	Pos   Pos
}

func (AndExpr) formulaTag()    {}
func (OrExpr) formulaTag()     {}
func (NotExpr) formulaTag()    {}
func (CallAtom) formulaTag()   {}
func (CmpAtom) formulaTag()    {}
func (StartsAtom) formulaTag() {}
func (CtxAtom) formulaTag()    {}

// ParseSyntax parses a rule source into its exported syntax tree without
// compiling it. The same grammar as Parse; errors are *ParseError with
// line:col resolved.
func ParseSyntax(src string) (s *Syntax, err error) {
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("internal error parsing rule: %v", p)
		}
	}()
	toks, err := lex(src)
	if err != nil {
		resolvePos(err, src)
		return nil, err
	}
	clauses, err := parseRule(toks)
	if err != nil {
		resolvePos(err, src)
		return nil, err
	}
	s = &Syntax{Source: src}
	for _, c := range clauses {
		s.Clauses = append(s.Clauses, ClauseSyntax{
			Class:   c.class,
			Pos:     PosAt(src, c.classPos),
			Negated: c.negated,
			Formula: exportFormula(c.formula, src),
		})
	}
	return s, nil
}

func exportFormula(n node, src string) Formula {
	switch x := n.(type) {
	case andNode:
		e := AndExpr{Kids: make([]Formula, len(x.kids))}
		for i, k := range x.kids {
			e.Kids[i] = exportFormula(k, src)
		}
		return e
	case orNode:
		e := OrExpr{Kids: make([]Formula, len(x.kids))}
		for i, k := range x.kids {
			e.Kids[i] = exportFormula(k, src)
		}
		return e
	case notNode:
		return NotExpr{Kid: exportFormula(x.kid, src)}
	case callNode:
		e := CallAtom{Method: x.method, Pos: PosAt(src, x.pos), HasArgs: x.hasArgs}
		for _, a := range x.args {
			e.Args = append(e.Args, ArgPattern{Kind: ArgPatKind(a.kind), Name: a.name, Pos: PosAt(src, a.pos)})
		}
		return e
	case cmpNode:
		return CmpAtom{Var: x.varName, Op: cmpOpOf(x.op), Value: x.value, Pos: PosAt(src, x.pos)}
	case startsNode:
		return StartsAtom{Var: x.varName, Value: x.value, Pos: PosAt(src, x.pos)}
	case ctxNode:
		e := CtxAtom{Name: x.name, Num: x.num, Pos: PosAt(src, x.pos)}
		if x.op != 0 {
			e.Op, e.HasOp = cmpOpOf(x.op), true
		}
		return e
	}
	return nil
}

// cmpOpOf maps an operator token to its exported CmpOp.
func cmpOpOf(k tokKind) CmpOp {
	switch k {
	case tEq:
		return OpEq
	case tNe:
		return OpNe
	case tLt:
		return OpLt
	case tLe:
		return OpLe
	case tGt:
		return OpGt
	case tGe:
		return OpGe
	}
	return OpEq
}

// NormLiteral canonicalizes an algorithm-ish literal exactly the way rule
// evaluation does: upper-case with dashes removed. Exported for rulelint,
// whose satisfiability reasoning must agree with the evaluator.
func NormLiteral(s string) string { return norm(s) }

// IsTopLit reports whether the literal uses the ⊤-notation of Figure 3
// (⊤byte[], ⊤int, ...), which tests constancy rather than a value.
func IsTopLit(lit string) bool { return isTopLiteral(lit) }
