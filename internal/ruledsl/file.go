package ruledsl

import (
	"fmt"
	"strings"

	"repro/internal/rules"
)

// PackRule is one rule line of a pack: the raw fields, where they sit in
// the pack file, and the compiled/parsed forms. Rule and Syntax are nil
// when Err is set. FormulaCol is the 1-based column of the formula's
// first character on Line, letting diagnostics translate formula-relative
// positions into pack-absolute ones.
type PackRule struct {
	ID          string
	Description string
	Formula     string
	Line        int // 1-based line in the pack file
	FormulaCol  int
	Rule        *rules.Rule
	Syntax      *Syntax
	Err         error // parse/compile error, already line:col-resolved
}

// PackLineError is a structurally malformed pack line (wrong field count,
// empty id) that never reached the rule parser.
type PackLineError struct {
	Line int
	Msg  string
}

func (e PackLineError) Error() string {
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// Pack is the tolerant parse of one rules file: every line is accounted
// for, broken ones included, so rulelint can report all defects in one
// run instead of stopping at the first.
type Pack struct {
	Name     string // file name, used in diagnostics
	Source   string
	Rules    []PackRule
	LineErrs []PackLineError
}

// ParsePack parses a rule-pack file. The format is line-oriented:
//
//	# comment
//	R1 | Use SHA-256 instead of SHA-1 | MessageDigest : getInstance(X) ∧ X=SHA-1
//
// Blank lines and lines starting with '#' are ignored. Each rule line has
// three '|'-separated fields: id, description, formula. Unlike ParseFile,
// ParsePack never fails: malformed lines land in LineErrs, uncompilable
// formulas in PackRule.Err, and duplicate ids are kept (rulelint reports
// them as collisions).
func ParsePack(name, content string) *Pack {
	p := &Pack{Name: name, Source: content}
	for i, line := range strings.Split(content, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		parts := strings.SplitN(line, "|", 3)
		if len(parts) != 3 {
			p.LineErrs = append(p.LineErrs, PackLineError{
				Line: i + 1,
				Msg:  fmt.Sprintf("want 'id | description | formula', got %q", trimmed),
			})
			continue
		}
		id := strings.TrimSpace(parts[0])
		if id == "" {
			p.LineErrs = append(p.LineErrs, PackLineError{Line: i + 1, Msg: "empty rule id"})
			continue
		}
		formula := strings.TrimSpace(parts[2])
		// Column of the formula's first character: past both '|'s plus
		// whatever leading whitespace TrimSpace removed.
		col := len(parts[0]) + len(parts[1]) + 2 +
			(len(parts[2]) - len(strings.TrimLeft(parts[2], " \t"))) + 1
		pr := PackRule{
			ID:          id,
			Description: strings.TrimSpace(parts[1]),
			Formula:     formula,
			Line:        i + 1,
			FormulaCol:  col,
		}
		r, err := Parse(id, pr.Description, formula)
		if err != nil {
			pr.Err = err
		} else {
			pr.Rule = r
			// A formula that compiled always re-parses; a failure here
			// would be an internal inconsistency worth surfacing.
			syn, serr := ParseSyntax(formula)
			if serr != nil {
				pr.Err = serr
			} else {
				pr.Syntax = syn
			}
		}
		p.Rules = append(p.Rules, pr)
	}
	return p
}

// ParseFile compiles a rules file, failing on the first defect. It is the
// strict form of ParsePack: same format, but malformed lines, duplicate
// ids, and uncompilable formulas are immediate errors.
func ParseFile(content string) ([]*rules.Rule, error) {
	p := ParsePack("", content)
	var out []*rules.Rule
	seen := map[string]bool{}
	le := 0
	for _, pr := range p.Rules {
		// Interleave structural line errors back in line order.
		if le < len(p.LineErrs) && p.LineErrs[le].Line < pr.Line {
			return nil, p.LineErrs[le]
		}
		if seen[pr.ID] {
			return nil, fmt.Errorf("line %d: duplicate rule id %q", pr.Line, pr.ID)
		}
		seen[pr.ID] = true
		if pr.Err != nil {
			return nil, fmt.Errorf("line %d: %w", pr.Line, pr.Err)
		}
		out = append(out, pr.Rule)
	}
	if le < len(p.LineErrs) {
		return nil, p.LineErrs[le]
	}
	return out, nil
}
