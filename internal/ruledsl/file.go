package ruledsl

import (
	"fmt"
	"strings"

	"repro/internal/rules"
)

// ParseFile compiles a rules file. The format is line-oriented:
//
//	# comment
//	R1 | Use SHA-256 instead of SHA-1 | MessageDigest : getInstance(X) ∧ X=SHA-1
//
// Blank lines and lines starting with '#' are ignored. Each rule line has
// three '|'-separated fields: id, description, formula.
func ParseFile(content string) ([]*rules.Rule, error) {
	var out []*rules.Rule
	seen := map[string]bool{}
	for i, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "|", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("line %d: want 'id | description | formula', got %q", i+1, line)
		}
		id := strings.TrimSpace(parts[0])
		if id == "" {
			return nil, fmt.Errorf("line %d: empty rule id", i+1)
		}
		if seen[id] {
			return nil, fmt.Errorf("line %d: duplicate rule id %q", i+1, id)
		}
		seen[id] = true
		r, err := Parse(id, strings.TrimSpace(parts[1]), strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}
