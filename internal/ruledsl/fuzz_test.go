package ruledsl

import (
	"testing"

	"repro/rulepacks"
)

// FuzzRuleParse asserts the whole parse surface is total: for any input,
// ParsePack never fails (tolerant by contract — errors land in LineErrs
// and per-rule Err fields), and Parse/ParseSyntax return an error instead
// of panicking. The seed corpus starts from the shipped packs so every
// fuzz run covers the exact bytes we distribute, then adds formula-level
// and adversarial seeds.
func FuzzRuleParse(f *testing.F) {
	for name, content := range rulepacks.Files() {
		_ = name
		f.Add(content)
	}
	for _, seed := range []string{
		// Single well-formed lines, Unicode and ASCII-fallback syntax.
		`X1 | desc | Cipher : getInstance(X) ∧ (X=AES ∨ X=AES/ECB)`,
		`X2 | desc | Cipher : getInstance(X) /\ ~(X=DES \/ X=RC4)`,
		`X3 | desc | PBEKeySpec : <init>(_,X,_,_) ∧ X≠⊤byte[]`,
		`X4 | desc | KeyGenerator : init(X) ∧ X<128`,
		`X5 | desc | Cipher : startsWith(X, AES/CBC) ∧ getInstance(X)`,
		`X6 | desc | SecureRandom[android<4.4] : <init>()`,
		// Pack-structure pathologies.
		"",
		"# only a comment\n\n#another\n",
		"no pipes at all",
		"id | description only",
		"id | desc | ",
		"id | desc | Cipher :",
		"id | desc | : getInstance(X)",
		"a|b|c|d|e",
		" R7 | spaced | Cipher : getInstance(X) ∧ X=AES \n",
		// Formula-level pathologies.
		`B1 | x | Cipher : getInstance(X ∧ X=AES`,
		`B2 | x | Cipher : (((getInstance(X))))`,
		`B3 | x | Cipher : getInstance(X) ∧ X<notanumber`,
		`B4 | x | Cipher : getInstance(X) ∧ startsWith(X)`,
		`B5 | x | Nope : getInstance(X)`,
		`B6 | x | Cipher : ¬¬¬¬getInstance(X)`,
		"B7 | x | Cipher : getInstance(\x00\xff)",
		`B8 | x | Cipher : getInstance(X) ∧ X=⊤`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, content string) {
		pack := ParsePack("fuzz.rules", content) // any panic fails the run
		if pack == nil {
			t.Fatal("ParsePack returned nil")
		}
		for _, pr := range pack.Rules {
			// Tolerant-parse invariant: a pack rule either compiled or
			// carries its error — never neither.
			if pr.Rule == nil && pr.Err == nil {
				t.Errorf("pack rule %q: nil Rule and nil Err", pr.ID)
			}
			// Re-parse each formula through the strict entry points too.
			if _, err := ParseSyntax(pr.Formula); err == nil {
				if _, err := Parse(pr.ID, pr.Description, pr.Formula); err != nil {
					// Syntax-valid but uncompilable formulas are fine
					// (e.g. unknown classes); only panics are failures.
					_ = err
				}
			}
		}
	})
}
