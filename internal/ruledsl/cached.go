package ruledsl

import (
	"repro/internal/artifact"
	"repro/internal/rules"
)

// ParseFileCached is ParseFile through an artifact store: a rule file's
// compiled set is cached by content under KindRules, so re-checking with an
// unchanged -rulefile skips the DSL compiler. Compiled rules hold predicate
// closures, which no byte encoding can round-trip, so rule-set artifacts
// live in the store's object tier only (per-process); concurrent parses of
// the same content share one compile via per-key single-flight. Errors are
// never cached — a bad file re-parses (and re-reports) every time. A nil
// store is exactly ParseFile.
func ParseFileCached(content string, st *artifact.Store) ([]*rules.Rule, error) {
	if st == nil {
		return ParseFile(content)
	}
	k := artifact.NewKey(artifact.KindRules, content)
	v, err := st.Do(artifact.KindRules, k, func() (any, error) {
		if v, ok := st.Get(artifact.KindRules, k, nil); ok {
			return v, nil
		}
		rs, err := ParseFile(content)
		if err != nil {
			return nil, err
		}
		st.Put(artifact.KindRules, k, rs, nil)
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*rules.Rule), nil
}
