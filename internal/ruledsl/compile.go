package ruledsl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/absdom"
	"repro/internal/analysis"
	"repro/internal/rules"
)

// Parse compiles a textual rule into an executable rules.Rule. The id and
// description annotate the result; the source text is preserved as the
// rule's Formula. Parse never panics: rule sources reach this function from
// user-supplied files (cryptochecker -rulefile), so even an internal
// lexer/parser/compiler bug on pathological input is converted into an
// error. Only MustParse — reserved for the static rule tables — panics.
func Parse(id, description, src string) (r *rules.Rule, err error) {
	defer func() {
		if p := recover(); p != nil {
			r, err = nil, fmt.Errorf("rule %s: internal error compiling rule: %v", id, p)
		}
	}()
	toks, err := lex(src)
	if err != nil {
		resolvePos(err, src)
		return nil, fmt.Errorf("rule %s: %w", id, err)
	}
	clauses, err := parseRule(toks)
	if err != nil {
		resolvePos(err, src)
		return nil, fmt.Errorf("rule %s: %w", id, err)
	}
	r = &rules.Rule{ID: id, Description: description, Formula: src}
	for _, c := range clauses {
		c := c
		r.Clauses = append(r.Clauses, rules.Clause{
			Class:   c.class,
			Negated: c.negated,
			Pred:    compileFormula(c.formula),
		})
	}
	return r, nil
}

// MustParse is Parse for static rule tables; it panics on error.
func MustParse(id, description, src string) *rules.Rule {
	r, err := Parse(id, description, src)
	if err != nil {
		panic(err)
	}
	return r
}

// bindings maps rule variables to the abstract values they matched.
type bindings map[string]absdom.Value

func (b bindings) with(name string, v absdom.Value) bindings {
	nb := make(bindings, len(b)+1)
	for k, val := range b {
		nb[k] = val
	}
	nb[name] = v
	return nb
}

// compileFormula builds an object predicate that searches for a satisfying
// assignment of events to call atoms (continuation-passing backtracking;
// rule formulas are tiny, so this is cheap).
func compileFormula(f node) rules.ObjPred {
	return func(res *analysis.Result, obj *absdom.AObj, ctx rules.Context) bool {
		events := res.Uses[obj]
		return eval(f, events, ctx, bindings{}, func(bindings) bool { return true })
	}
}

func eval(n node, events []analysis.Event, ctx rules.Context, env bindings, k func(bindings) bool) bool {
	switch x := n.(type) {
	case andNode:
		return evalSeq(x.kids, events, ctx, env, k)
	case orNode:
		for _, kid := range x.kids {
			if eval(kid, events, ctx, env, k) {
				return true
			}
		}
		return false
	case notNode:
		// Negation is evaluated against the current environment; bindings
		// made inside do not escape.
		if eval(x.kid, events, ctx, env, func(bindings) bool { return true }) {
			return false
		}
		return k(env)
	case callNode:
		for _, ev := range events {
			if ev.Sig.Name != x.method {
				continue
			}
			if x.hasArgs && len(ev.Args) != len(x.args) {
				continue
			}
			env2, ok := matchArgs(x.args, ev.Args, env)
			if !ok {
				continue
			}
			if k(env2) {
				return true
			}
		}
		return false
	case cmpNode:
		v, bound := env[x.varName]
		if !bound {
			return false
		}
		if !compare(v, x.op, x.value) {
			return false
		}
		return k(env)
	case startsNode:
		v, bound := env[x.varName]
		if !bound {
			return false
		}
		if v.Kind != absdom.KStrConst ||
			!strings.HasPrefix(norm(v.Payload), norm(x.value)) {
			return false
		}
		return k(env)
	case ctxNode:
		ok := false
		switch x.name {
		case "LPRNG":
			ok = ctx.HasLPRNG
		case "ANDROID":
			ok = ctx.Android
		case "MIN_SDK_VERSION":
			ok = compareInts(int64(ctx.MinSDKVersion), x.op, x.num) && ctx.Android
		}
		if !ok {
			return false
		}
		return k(env)
	}
	return false
}

func evalSeq(kids []node, events []analysis.Event, ctx rules.Context, env bindings, k func(bindings) bool) bool {
	if len(kids) == 0 {
		return k(env)
	}
	return eval(kids[0], events, ctx, env, func(env2 bindings) bool {
		return evalSeq(kids[1:], events, ctx, env2, k)
	})
}

func matchArgs(pats []argPat, args []absdom.Value, env bindings) (bindings, bool) {
	for i, p := range pats {
		switch p.kind {
		case argAny:
		case argVar:
			if prev, bound := env[p.name]; bound {
				if !prev.Equal(args[i]) {
					return nil, false
				}
			} else {
				env = env.with(p.name, args[i])
			}
		case argLit:
			if !literalEq(args[i], p.name) {
				return nil, false
			}
		}
	}
	return env, true
}

// norm canonicalizes algorithm-ish literals for comparison: upper-case with
// dashes removed, so the paper's SHA-1PRNG matches the JCA's "SHA1PRNG" and
// SHA-1 matches both "SHA-1" and "SHA1".
func norm(s string) string {
	return strings.ReplaceAll(strings.ToUpper(s), "-", "")
}

// isTopLiteral recognizes the ⊤-notation literals of Figure 3.
func isTopLiteral(lit string) bool {
	return strings.HasPrefix(lit, "⊤")
}

// literalEq tests an abstract value against a literal token.
func literalEq(v absdom.Value, lit string) bool {
	if isTopLiteral(lit) {
		return v.IsTop()
	}
	switch v.Kind {
	case absdom.KStrConst, absdom.KIntConst, absdom.KBoolConst:
		return norm(v.Payload) == norm(lit)
	}
	return false
}

// compare implements variable comparisons. Equality uses literalEq;
// inequality against a ⊤-literal means "is a compile-time constant" (the
// X ≠ ⊤byte[] reading of rules R9–R12); inequality against a value literal
// holds unless the value is provably that constant (matching the paper's
// checker, which flags unknown values too); numeric comparisons require a
// provable integer constant.
func compare(v absdom.Value, op tokKind, lit string) bool {
	switch op {
	case tEq:
		return literalEq(v, lit)
	case tNe:
		if isTopLiteral(lit) {
			return v.IsConst()
		}
		return !literalEq(v, lit)
	case tLt, tLe, tGt, tGe:
		if v.Kind != absdom.KIntConst {
			return false
		}
		n, err := strconv.ParseInt(v.Payload, 0, 64)
		if err != nil {
			return false
		}
		m, err := strconv.ParseInt(lit, 0, 64)
		if err != nil {
			return false
		}
		return compareInts(n, op, m)
	}
	return false
}

func compareInts(n int64, op tokKind, m int64) bool {
	switch op {
	case tEq:
		return n == m
	case tNe:
		return n != m
	case tLt:
		return n < m
	case tLe:
		return n <= m
	case tGt:
		return n > m
	case tGe:
		return n >= m
	}
	return false
}
