package ruledsl

// Formula AST.
type node interface{ nodeTag() }

type orNode struct{ kids []node }
type andNode struct{ kids []node }
type notNode struct{ kid node }

// callNode matches an event by method name; args constrain arity and
// argument values when present.
type callNode struct {
	method  string
	args    []argPat
	hasArgs bool
	pos     int
}

// argPat is one argument pattern.
type argPat struct {
	kind argKind
	name string // variable name or literal text
	pos  int
}

type argKind int

const (
	argAny argKind = iota // _
	argVar                // X — binds the argument's abstract value
	argLit                // literal constant, e.g. AES or 1000
)

// cmpNode compares a bound variable against a literal.
type cmpNode struct {
	varName string
	op      tokKind // tEq, tNe, tLt, tLe, tGt, tGe
	value   string
	pos     int
}

// startsNode is startsWith(X, prefix).
type startsNode struct {
	varName string
	value   string
	pos     int
}

// ctxNode tests project context: LPRNG, ANDROID, or a MIN_SDK_VERSION
// comparison.
type ctxNode struct {
	name string
	op   tokKind // tEq etc.; 0 for bare flags
	num  int64
	pos  int
}

func (orNode) nodeTag()     {}
func (andNode) nodeTag()    {}
func (notNode) nodeTag()    {}
func (callNode) nodeTag()   {}
func (cmpNode) nodeTag()    {}
func (startsNode) nodeTag() {}
func (ctxNode) nodeTag()    {}

// clauseAST is one Class:formula conjunct of a (possibly composite) rule.
type clauseAST struct {
	class    string
	classPos int
	negated  bool
	formula  node
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokKind) (token, error) {
	if p.cur().kind != k {
		return token{}, perr(p.cur().pos, "expected %v, found %v", token{kind: k}, p.cur())
	}
	return p.next(), nil
}

// parseRule parses the top level: clause { ∧ clause }.
func parseRule(toks []token) ([]clauseAST, error) {
	p := &parser{toks: toks}
	var clauses []clauseAST
	for {
		c, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, c)
		if p.cur().kind != tAnd {
			break
		}
		p.next()
	}
	if p.cur().kind != tEOF {
		return nil, perr(p.cur().pos, "trailing input starting at %v", p.cur())
	}
	return clauses, nil
}

func (p *parser) parseClause() (clauseAST, error) {
	negated := false
	if p.cur().kind == tNot {
		p.next()
		negated = true
		if _, err := p.expect(tLParen); err != nil {
			return clauseAST{}, err
		}
		c, err := p.parseSimpleClause()
		if err != nil {
			return clauseAST{}, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return clauseAST{}, err
		}
		c.negated = true
		return c, nil
	}
	if p.cur().kind == tLParen {
		// Could be a parenthesized clause "(Class : ...)"; peek for the
		// class-colon shape.
		save := p.i
		p.next()
		if p.cur().kind == tIdent && p.toks[p.i+1].kind == tColon {
			c, err := p.parseSimpleClause()
			if err != nil {
				return clauseAST{}, err
			}
			if _, err := p.expect(tRParen); err != nil {
				return clauseAST{}, err
			}
			return c, nil
		}
		p.i = save
	}
	c, err := p.parseSimpleClause()
	c.negated = negated
	return c, err
}

func (p *parser) parseSimpleClause() (clauseAST, error) {
	cls, err := p.expect(tIdent)
	if err != nil {
		return clauseAST{}, err
	}
	if _, err := p.expect(tColon); err != nil {
		return clauseAST{}, err
	}
	f, err := p.parseOr()
	if err != nil {
		return clauseAST{}, err
	}
	return clauseAST{class: cls.text, classPos: cls.pos, formula: f}, nil
}

func (p *parser) parseOr() (node, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []node{first}
	for p.cur().kind == tOr {
		p.next()
		n, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, n)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return orNode{kids: kids}, nil
}

func (p *parser) parseAnd() (node, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []node{first}
	for p.cur().kind == tAnd {
		// The top-level rule conjunction also uses ∧; a following
		// "( Ident :" or "¬( Ident :" belongs to the next clause.
		if p.clauseFollows() {
			break
		}
		p.next()
		n, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, n)
	}
	if len(kids) == 1 {
		return first, nil
	}
	return andNode{kids: kids}, nil
}

// clauseFollows reports whether the ∧ at the cursor starts a new
// Class:formula clause rather than continuing the current formula.
func (p *parser) clauseFollows() bool {
	j := p.i + 1 // token after ∧
	if j >= len(p.toks) {
		return false
	}
	if p.toks[j].kind == tNot {
		j++
	}
	if j < len(p.toks) && p.toks[j].kind == tLParen {
		j++
	}
	return j+1 < len(p.toks) && p.toks[j].kind == tIdent && p.toks[j+1].kind == tColon
}

func (p *parser) parseUnary() (node, error) {
	switch p.cur().kind {
	case tNot:
		p.next()
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{kid: kid}, nil
	case tLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (node, error) {
	switch p.cur().kind {
	case tVar:
		v := p.next()
		op := p.cur().kind
		switch op {
		case tEq, tNe, tLt, tLe, tGt, tGe:
			p.next()
		default:
			return nil, perr(p.cur().pos, "expected comparison after variable %s", v.text)
		}
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return cmpNode{varName: v.text, op: op, value: val, pos: v.pos}, nil
	case tIdent:
		id := p.next()
		switch id.text {
		case "startsWith":
			if _, err := p.expect(tLParen); err != nil {
				return nil, err
			}
			v, err := p.expect(tVar)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tComma); err != nil {
				return nil, err
			}
			val, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			return startsNode{varName: v.text, value: val, pos: id.pos}, nil
		case "LPRNG", "ANDROID", "HAS_LPRNG":
			name := id.text
			if name == "HAS_LPRNG" {
				name = "LPRNG"
			}
			return ctxNode{name: name, pos: id.pos}, nil
		case "MIN_SDK_VERSION":
			op := p.cur().kind
			switch op {
			case tEq, tNe, tLt, tLe, tGt, tGe:
				p.next()
			default:
				return nil, perr(p.cur().pos, "expected comparison after MIN_SDK_VERSION")
			}
			val, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			var num int64
			for _, r := range val {
				if r < '0' || r > '9' {
					return nil, perr(id.pos, "MIN_SDK_VERSION compared to non-number %q", val)
				}
				num = num*10 + int64(r-'0')
			}
			return ctxNode{name: "MIN_SDK_VERSION", op: op, num: num, pos: id.pos}, nil
		}
		// Method call atom.
		call := callNode{method: id.text, pos: id.pos}
		if p.cur().kind == tLParen {
			p.next()
			call.hasArgs = true
			for p.cur().kind != tRParen {
				switch p.cur().kind {
				case tWildcard:
					call.args = append(call.args, argPat{kind: argAny, pos: p.next().pos})
				case tVar:
					t := p.next()
					call.args = append(call.args, argPat{kind: argVar, name: t.text, pos: t.pos})
				case tIdent:
					t := p.next()
					call.args = append(call.args, argPat{kind: argLit, name: t.text, pos: t.pos})
				default:
					return nil, perr(p.cur().pos, "bad argument pattern %v", p.cur())
				}
				if p.cur().kind == tComma {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
		}
		return call, nil
	}
	return nil, perr(p.cur().pos, "unexpected %v in formula", p.cur())
}

func (p *parser) parseLiteral() (string, error) {
	t := p.cur()
	if t.kind != tIdent && t.kind != tVar {
		return "", perr(t.pos, "expected literal, found %v", t)
	}
	p.next()
	return t.text, nil
}
