package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/trace"
)

// fakeTracer builds a tracer with a deterministic ID source and clock, both
// safe for concurrent use (spans are minted from worker goroutines).
func fakeTracer() *trace.Tracer {
	var seq atomic.Uint64
	var tick atomic.Int64
	return trace.NewTracer(
		func() uint64 { return seq.Add(1) },
		func() time.Time { return time.Unix(0, tick.Add(1)*1000) },
	)
}

// tracedPipelineFingerprint runs the full mining pipeline under a traced
// context and returns both the observable output (pipelineFingerprint's
// format) and the trace tree's structural fingerprint.
func tracedPipelineFingerprint(t *testing.T, c *corpus.Corpus, opts Options) (output, traceFP string) {
	t.Helper()
	root := fakeTracer().Root("run")
	ctx := trace.NewContext(context.Background(), root)
	var sb strings.Builder
	d := New(opts)
	analyzed := d.MineCorpusCtx(ctx, c)
	fmt.Fprintf(&sb, "analyzed=%d\n", len(analyzed))
	for i, a := range analyzed {
		if a == nil {
			fmt.Fprintf(&sb, "[%d] nil\n", i)
			continue
		}
		fmt.Fprintf(&sb, "[%d] %s@%s:%s kind=%v old=%s new=%s\n",
			i, a.Meta.Project, a.Meta.Commit, a.Meta.File, a.Kind,
			sortedKeys(a.UsesOld), sortedKeys(a.UsesNew))
	}
	for _, class := range cryptoapi.TargetClasses {
		r := d.RunClassCtx(ctx, analyzed, class)
		fmt.Fprintf(&sb, "%s stats=%+v\n", class, r.Stats)
		for _, uc := range r.Survivors {
			fmt.Fprintf(&sb, "  survivor [%s %s] %s\n", uc.Meta.Project, uc.Meta.Commit, uc.String())
		}
		if len(r.Survivors) > 1 {
			node := d.ClusterChangesCtx(ctx, r.Survivors)
			sb.WriteString(cluster.Render(node, func(i int) string {
				return r.Survivors[i].Meta.Commit
			}))
		}
	}
	fmt.Fprintf(&sb, "ledger=%d\n", d.Ledger().Len())
	root.End()
	return sb.String(), trace.Snapshot(root).Fingerprint()
}

// TestDeterminismTraceFingerprint pins the tracing PR's two central
// contracts at once: (1) observation-only — the traced pipeline's observable
// output is byte-identical to the untraced run at every worker count — and
// (2) structural determinism — the trace tree's fingerprint (names, ordinal
// child order, categories, attributes like the interpreter step counts) is
// identical at workers 1, 2, and 8, because the worker pool keys sibling
// order by task index, never by completion order.
func TestDeterminismTraceFingerprint(t *testing.T) {
	c := determinismCorpus()
	untraced := pipelineFingerprint(t, c, Options{Workers: 1})
	wantOut, wantFP := tracedPipelineFingerprint(t, c, Options{Workers: 1})
	if wantOut != untraced {
		t.Errorf("traced pipeline output differs from untraced at workers=1\ngot:\n%.800s\nwant:\n%.800s", wantOut, untraced)
	}
	for _, w := range []int{2, 8} {
		gotOut, gotFP := tracedPipelineFingerprint(t, c, Options{Workers: w})
		if gotOut != untraced {
			t.Errorf("workers=%d: traced pipeline output differs from untraced workers=1", w)
		}
		if gotFP != wantFP {
			t.Errorf("workers=%d: trace fingerprint %s differs from workers=1 fingerprint %s", w, gotFP, wantFP)
		}
	}
}

// TestDeterminismCheckTrace pins the same two contracts for the checking
// entry point (CheckSourcesCtx): identical violations and identical trace
// fingerprints at workers 1, 2, and 8.
func TestDeterminismCheckTrace(t *testing.T) {
	c := determinismCorpus()
	run := func(workers int) (string, string) {
		root := fakeTracer().Root("check-run")
		ctx := trace.NewContext(context.Background(), root)
		var sb strings.Builder
		checker := NewChecker(nil, Options{Workers: workers})
		for _, p := range c.Projects {
			fmt.Fprintf(&sb, "%s:\n", p.Name)
			for _, v := range checker.CheckSourcesCtx(ctx, p.Files, ContextOf(p)) {
				fmt.Fprintf(&sb, "  %s", v.Rule.ID)
				for _, o := range v.Objs {
					fmt.Fprintf(&sb, " %s@%d", o.SiteLabel(), o.Site.Line)
				}
				sb.WriteString("\n")
			}
		}
		root.End()
		return sb.String(), trace.Snapshot(root).Fingerprint()
	}
	untraced := checkerFingerprint(c, Options{Workers: 1})
	wantOut, wantFP := run(1)
	if wantOut != untraced {
		t.Errorf("traced checker output differs from untraced at workers=1")
	}
	if !strings.Contains(wantOut, "R") {
		t.Fatalf("no violations found; fingerprint exercises too little")
	}
	for _, w := range []int{2, 8} {
		gotOut, gotFP := run(w)
		if gotOut != untraced {
			t.Errorf("workers=%d: traced checker output differs from untraced workers=1", w)
		}
		if gotFP != wantFP {
			t.Errorf("workers=%d: check trace fingerprint %s differs from workers=1 fingerprint %s", w, gotFP, wantFP)
		}
	}
}
