package core

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/rules"
)

// TrendResult compares CryptoChecker findings at the beginning and the end
// of each training project's history. The paper's thesis predicts the
// direction: because security fixes outnumber regressions, rule violations
// must decrease as histories play out — the mined fixes are exactly the
// events the checker's rules encode.
type TrendResult struct {
	Projects        int
	InitialMatching map[string]int // rule ID → projects matching initially
	FinalMatching   map[string]int // rule ID → projects matching at HEAD
	Improved        int            // projects with strictly fewer matched rules
	Worsened        int            // projects with strictly more matched rules
}

// initialSnapshot reconstructs each file's content before its first commit
// (the project as initially written).
func initialSnapshot(p *corpus.Project) map[string]string {
	files := map[string]string{}
	for path, content := range p.Files {
		files[path] = content
	}
	seen := map[string]bool{}
	for _, cm := range p.Commits {
		if !seen[cm.File] {
			seen[cm.File] = true
			files[cm.File] = cm.Old
		}
	}
	return files
}

// Trend evaluates the rule set at both ends of every training project's
// history, in parallel.
func Trend(c *corpus.Corpus, opts Options) *TrendResult {
	opts = opts.withDefaults()
	all := rules.All()
	var projects []*corpus.Project
	for _, p := range c.TrainingProjects() {
		if p.ForkOf == "" {
			projects = append(projects, p)
		}
	}
	res := &TrendResult{
		Projects:        len(projects),
		InitialMatching: map[string]int{},
		FinalMatching:   map[string]int{},
	}
	type outcome struct {
		initial, final map[string]bool
	}
	outcomes := parallel.Map(opts.pool(), context.Background(), len(projects), func(i int) outcome {
		p := projects[i]
		ctx := ContextOf(p)
		match := func(files map[string]string) map[string]bool {
			r := analysis.Analyze(analysis.ParseProgram(files), opts.Analysis)
			hits := map[string]bool{}
			for _, rule := range all {
				if ok, _ := rule.Matches(r, ctx); ok {
					hits[rule.ID] = true
				}
			}
			return hits
		}
		return outcome{
			initial: match(initialSnapshot(p)),
			final:   match(p.Files),
		}
	})
	for _, o := range outcomes {
		for id := range o.initial {
			res.InitialMatching[id]++
		}
		for id := range o.final {
			res.FinalMatching[id]++
		}
		switch {
		case len(o.final) < len(o.initial):
			res.Improved++
		case len(o.final) > len(o.initial):
			res.Worsened++
		}
	}
	return res
}

// Table renders the trend comparison.
func (r *TrendResult) Table() *report.Table {
	t := &report.Table{
		Title:  fmt.Sprintf("History trend: rule violations at the first vs last commit (%d projects)", r.Projects),
		Header: []string{"Rule", "Initially matching", "Matching at HEAD", "Δ"},
	}
	for _, rule := range rules.All() {
		id := rule.ID
		ini, fin := r.InitialMatching[id], r.FinalMatching[id]
		t.AddRow(id, fmt.Sprint(ini), fmt.Sprint(fin), fmt.Sprintf("%+d", fin-ini))
	}
	t.AddNote("Projects with fewer matched rules at HEAD: %d; with more: %d.",
		r.Improved, r.Worsened)
	t.AddNote("The fix-dominance the pipeline mines (Figure 7) predicts Δ ≤ 0 overall.")
	return t
}
