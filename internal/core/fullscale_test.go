package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/rules"
)

// TestPaperScale runs the evaluation at the paper's full data-set size
// (461 + 58 projects, scale 1.0) and asserts every headline claim. Skipped
// under -short: the run analyzes ~13k code changes (~10s).
func TestPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run skipped in -short mode")
	}
	c := corpus.Generate(corpus.Default())
	if got := len(c.TrainingProjects()); got < 461 {
		t.Fatalf("training projects = %d, want >= 461", got)
	}
	e := NewEvaluation(c, Options{})
	if len(e.Analyzed) < 10_000 {
		t.Fatalf("analyzed changes = %d, want >= 10k at paper scale", len(e.Analyzed))
	}
	f10 := e.Figure10()
	h := e.ComputeHeadline(f10)
	if h.FilteredPct <= 99 {
		t.Errorf("filtered = %.2f%%, want > 99%%", h.FilteredPct)
	}
	if h.FixPct <= 80 {
		t.Errorf("fix share = %.1f%%, want > 80%%", h.FixPct)
	}
	if h.ViolatedPct <= 57 {
		t.Errorf("violated = %.1f%%, want > 57%%", h.ViolatedPct)
	}
	// Figure 8 must isolate the ECB cluster at full scale.
	f8 := e.Figure8()
	if len(f8.ECBCluster) < 3 {
		t.Errorf("ECB cluster size = %d, want >= 3 at paper scale", len(f8.ECBCluster))
	}
	// Elicitation recovers the headline rule families.
	elicited := e.ElicitRules()
	if len(elicited) < 5 {
		t.Errorf("elicited rules = %d, want >= 5", len(elicited))
	}
	for _, er := range elicited {
		if er.Direction != rules.SecurityFix {
			t.Errorf("non-fix cluster emitted: %+v", er)
		}
	}
	// Figure 10 per-rule shape at full scale.
	rate := map[string]float64{}
	for _, r := range f10.Rows {
		if r.Applicable > 0 {
			rate[r.Rule] = float64(r.Matching) / float64(r.Applicable)
		}
	}
	if rate["R3"] < 0.9 || rate["R5"] < 0.9 {
		t.Errorf("R3/R5 should match nearly all applicable projects: %.2f / %.2f",
			rate["R3"], rate["R5"])
	}
	if rate["R12"] > 0.05 || rate["R4"] > 0.05 {
		t.Errorf("R4/R12 should be rare: %.2f / %.2f", rate["R4"], rate["R12"])
	}
}
