package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/witness"
)

// TestDeterminismSummariesOnOff pins the acceptance contract of the summary
// layer: the whole observable mining pipeline — mined changes, filter stats,
// survivors, dendrograms, ledger — is byte-identical with summaries enabled
// (the default) and disabled, at workers 1, 2, and 8. Summaries change how
// often the interpreter executes a callee, never what an execution observes.
func TestDeterminismSummariesOnOff(t *testing.T) {
	c := determinismCorpus()
	want := pipelineFingerprint(t, c, Options{Workers: 1, DisableSummaries: true})
	if !strings.Contains(want, "survivor") {
		t.Fatalf("corpus produced no survivors; fingerprint exercises too little")
	}
	for _, w := range []int{1, 2, 8} {
		if got := pipelineFingerprint(t, c, Options{Workers: w}); got != want {
			t.Errorf("workers=%d: summaries-on pipeline fingerprint differs from summaries-off\ngot:\n%.800s\nwant:\n%.800s", w, got, want)
		}
		if got := pipelineFingerprint(t, c, Options{Workers: w, DisableSummaries: true}); got != want {
			t.Errorf("workers=%d: summaries-off pipeline fingerprint differs from workers=1", w)
		}
	}
}

// TestDeterminismSummariesWithArtifactCache runs the summaries-on pipeline
// cold and warm over one disk-backed store and requires identical
// fingerprints both times. The warm run varies the step budget so the
// per-change analysis artifacts miss (their option fingerprint includes the
// budget) while the budget-independent summary keys hit — proving persisted
// summaries replay across processes without changing a single byte of
// output.
func TestDeterminismSummariesWithArtifactCache(t *testing.T) {
	c := determinismCorpus()
	dir := t.TempDir()
	want := pipelineFingerprint(t, c, Options{Workers: 1, DisableSummaries: true})

	cold := pipelineFingerprint(t, c, Options{
		Workers:   1,
		Artifacts: artifact.New(artifact.Config{Dir: dir}),
	})
	if cold != want {
		t.Fatalf("cold summaries-on run differs from summaries-off baseline")
	}

	reg := obs.NewRegistry()
	warm := pipelineFingerprint(t, c, Options{
		Workers:     1,
		BudgetSteps: 1 << 40, // different analysis-artifact fingerprint, same summary keys
		Metrics:     reg,
		Artifacts:   artifact.New(artifact.Config{Dir: dir, Metrics: reg}),
	})
	if warm != want {
		t.Fatalf("warm summaries-on run differs from summaries-off baseline")
	}
	if hits := reg.Counter("summary.hits").Value(); hits < 1 {
		t.Errorf("summary.hits on warm run = %d, want >= 1 (persisted summaries must replay)", hits)
	}
}

// deepChainDES threads the weak algorithm constant through a six-deep helper
// chain — past the default MaxInline=4 cliff — before it reaches the
// Cipher.getInstance sink on the last line.
const deepChainDES = `class Deep {
    void entry() {
        h1("DES");
    }
    void h1(String a) { h2(a); }
    void h2(String a) { h3(a); }
    void h3(String a) { h4(a); }
    void h4(String a) { h5(a); }
    void h5(String a) { h6(a); }
    void h6(String a) {
        Cipher c = Cipher.getInstance(a);
    }
}
`

// TestSummaryDeepChainDetection pins the depth-cliff lift end to end at the
// checker boundary: the depth-6 DES misuse is invisible with summaries
// disabled (the sweep runs h6 with Top parameters) and detected with the
// default options, with a witness trace that runs from the string literal
// in entry to the getInstance sink in h6. The rendered trace is a golden;
// refresh with -update-golden.
func TestSummaryDeepChainDetection(t *testing.T) {
	sources := map[string]string{"Deep.java": deepChainDES}

	off := NewChecker([]*rules.Rule{rules.R8}, Options{DisableSummaries: true})
	if vs := off.CheckSources(sources, rules.Context{}); len(vs) != 0 {
		t.Fatalf("summaries-off detects the depth-6 misuse (violations=%d); the cliff moved", len(vs))
	}

	on := NewChecker([]*rules.Rule{rules.R8}, Options{})
	vs, traces := on.CheckSourcesWhy(sources, rules.Context{})
	if len(vs) != 1 {
		t.Fatalf("summaries-on violations = %d, want 1 (R8)", len(vs))
	}
	if vs[0].Rule.ID != "R8" {
		t.Fatalf("violated rule = %s, want R8", vs[0].Rule.ID)
	}
	if len(traces) == 0 {
		t.Fatal("no witness traces for the deep-chain violation")
	}
	for _, tr := range traces {
		if tr.Rule != "R8" {
			t.Errorf("trace rule = %s, want R8", tr.Rule)
		}
		if len(tr.Steps) == 0 {
			t.Fatal("empty trace")
		}
		sink := tr.Sink()
		if sink.Kind != "sink" || sink.Line != 11 {
			t.Errorf("sink = %+v, want the getInstance call on line 11", sink)
		}
		if first := tr.Steps[0]; !strings.Contains(first.What, "DES") {
			t.Errorf("trace origin %+v does not carry the DES literal", first)
		}
	}

	got := witness.Render(traces)
	path := filepath.Join("testdata", "witness", "deep_chain_R8.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden: %v (refresh with -update-golden)", err)
	}
	if got != string(want) {
		t.Errorf("deep-chain witness trace drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
