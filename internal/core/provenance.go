package core

import (
	"fmt"
	"strings"

	"repro/internal/change"
	"repro/internal/textdiff"
)

// Provenance returns the analyzed commits whose extraction for the change's
// class produced exactly this usage change (the pre-dedup view). This is
// the paper's inspection step: from a clustered abstract change back to the
// concrete commits and patches behind it.
func (e *Evaluation) Provenance(c change.UsageChange) []*AnalyzedChange {
	key := c.Key()
	var out []*AnalyzedChange
	for _, a := range e.Analyzed {
		if !a.UsesClass(c.Class) {
			continue
		}
		for _, uc := range e.DiffCode.ExtractClass(a, c.Class) {
			if uc.Key() == key {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// RenderProvenance shows the commits behind a usage change with their
// textual patches, in the style a reviewer would read on GitHub.
func (e *Evaluation) RenderProvenance(c change.UsageChange, ctxLines int) string {
	commits := e.Provenance(c)
	var sb strings.Builder
	fmt.Fprintf(&sb, "usage change (%s):\n%s", c.Class, indentText(c.String(), "  "))
	fmt.Fprintf(&sb, "found in %d commit(s):\n", len(commits))
	for _, a := range commits {
		fmt.Fprintf(&sb, "\ncommit %s (%s)\n", a.Meta.Commit, a.Meta.Project)
		fmt.Fprintf(&sb, "message: %s\nfile: %s\n", a.Meta.Message, a.Meta.File)
		sb.WriteString(textdiff.Unified(a.OldSrc, a.NewSrc, ctxLines))
	}
	return sb.String()
}

func indentText(s, prefix string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		sb.WriteString(prefix + line + "\n")
	}
	return sb.String()
}
