package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/cryptoapi"
	"repro/internal/witness"
)

// The determinism suite pins the PR's central contract: every result a user
// can observe — mined changes, filter stats, survivors, dendrograms, checker
// violations — is byte-identical at any -workers value. CI runs these under
// -race at -cpu=1,4 (the names all match -run 'Determinism').

func determinismCorpus() *corpus.Corpus {
	return corpus.Generate(corpus.Config{Seed: 7, Scale: 0.4, Projects: 20, ExtraProjects: 3})
}

// pipelineFingerprint runs the full mining pipeline under the given options
// and serializes everything observable about the result.
func pipelineFingerprint(t *testing.T, c *corpus.Corpus, opts Options) string {
	t.Helper()
	var sb strings.Builder
	d := New(opts)
	analyzed := d.MineCorpus(c)
	fmt.Fprintf(&sb, "analyzed=%d\n", len(analyzed))
	for i, a := range analyzed {
		if a == nil {
			fmt.Fprintf(&sb, "[%d] nil\n", i)
			continue
		}
		fmt.Fprintf(&sb, "[%d] %s@%s:%s kind=%v old=%s new=%s\n",
			i, a.Meta.Project, a.Meta.Commit, a.Meta.File, a.Kind,
			sortedKeys(a.UsesOld), sortedKeys(a.UsesNew))
	}
	for _, class := range cryptoapi.TargetClasses {
		r := d.RunClass(analyzed, class)
		fmt.Fprintf(&sb, "%s stats=%+v\n", class, r.Stats)
		for _, uc := range r.Survivors {
			fmt.Fprintf(&sb, "  survivor [%s %s] %s\n", uc.Meta.Project, uc.Meta.Commit, uc.String())
		}
		if len(r.Survivors) > 1 {
			root := d.ClusterChanges(r.Survivors)
			sb.WriteString(cluster.Render(root, func(i int) string {
				return r.Survivors[i].Meta.Commit
			}))
		}
	}
	fmt.Fprintf(&sb, "ledger=%d\n", d.Ledger().Len())
	return sb.String()
}

func sortedKeys(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// TestDeterminismMiningPipeline asserts MineCorpus + RunClass +
// ClusterChanges produce identical results at workers 1, 2, and 8.
func TestDeterminismMiningPipeline(t *testing.T) {
	c := determinismCorpus()
	want := pipelineFingerprint(t, c, Options{Workers: 1})
	if !strings.Contains(want, "survivor") {
		t.Fatalf("corpus produced no survivors; fingerprint exercises too little")
	}
	for _, w := range []int{2, 8} {
		if got := pipelineFingerprint(t, c, Options{Workers: w}); got != want {
			t.Errorf("workers=%d: pipeline fingerprint differs from workers=1\ngot:\n%.800s\nwant:\n%.800s", w, got, want)
		}
	}
}

// TestDeterminismDistCacheOnOff asserts the whole observable pipeline —
// survivors, dendrogram renderings, ledger — is byte-identical with the
// distance cache enabled and disabled, at every worker count. This is the
// acceptance contract of the -dist-cache flag: the cache changes how often
// kernels run, never what they return.
func TestDeterminismDistCacheOnOff(t *testing.T) {
	// Not determinismCorpus: that one leaves every class with at most one
	// survivor, so ClusterChanges would never run. This configuration gives
	// Cipher and SecretKeySpec multi-survivor classes, putting real
	// dendrograms (rendered into the fingerprint) on both sides of the
	// comparison.
	c := corpus.Generate(corpus.Config{Seed: 3, Scale: 0.5, Projects: 60, ExtraProjects: 3})
	want := pipelineFingerprint(t, c, Options{Workers: 1, DisableDistCache: true})
	if !strings.Contains(want, "survivor") {
		t.Fatalf("corpus produced no survivors; fingerprint exercises too little")
	}
	if !strings.Contains(want, "h=") {
		t.Fatalf("corpus produced no dendrogram; the cache on/off comparison exercises too little")
	}
	for _, w := range []int{1, 2, 8} {
		if got := pipelineFingerprint(t, c, Options{Workers: w}); got != want {
			t.Errorf("workers=%d: cached pipeline fingerprint differs from uncached\ngot:\n%.800s\nwant:\n%.800s", w, got, want)
		}
		if got := pipelineFingerprint(t, c, Options{Workers: w, DisableDistCache: true}); got != want {
			t.Errorf("workers=%d: uncached pipeline fingerprint differs from workers=1", w)
		}
	}
}

// TestDeterminismArtifactCacheOnOff pins the acceptance contract of the
// artifact store: the whole observable pipeline is byte-identical with no
// store, with a cold disk-backed store, and with a fully warm store over the
// same directory, at workers 1, 2, and 8. The cache changes how often the
// pipeline computes, never what it returns — a warm hit reconstructs exactly
// the extraction the live run would produce.
func TestDeterminismArtifactCacheOnOff(t *testing.T) {
	c := determinismCorpus()
	dir := t.TempDir()
	want := pipelineFingerprint(t, c, Options{Workers: 1})
	if !strings.Contains(want, "survivor") {
		t.Fatalf("corpus produced no survivors; fingerprint exercises too little")
	}
	for _, w := range []int{1, 2, 8} {
		cold := pipelineFingerprint(t, c, Options{Workers: w,
			Artifacts: artifact.New(artifact.Config{Dir: dir})})
		if cold != want {
			t.Errorf("workers=%d: cold-store fingerprint differs from storeless\ngot:\n%.800s\nwant:\n%.800s", w, cold, want)
		}
		// A fresh Store over the same directory: everything resolves from
		// disk artifacts written by the cold pass above.
		warm := pipelineFingerprint(t, c, Options{Workers: w,
			Artifacts: artifact.New(artifact.Config{Dir: dir})})
		if warm != want {
			t.Errorf("workers=%d: warm-store fingerprint differs from storeless\ngot:\n%.800s\nwant:\n%.800s", w, warm, want)
		}
	}
}

// shardFingerprint runs the sharded map-reduce pipeline (MineCorpusShards +
// per-shard RunClass + MergeClassResults) and serializes the same observable
// surface as pipelineFingerprint.
func shardFingerprint(t *testing.T, c *corpus.Corpus, opts Options, shards int) string {
	t.Helper()
	var sb strings.Builder
	d := New(opts)
	parts := d.MineCorpusShards(c, shards)
	var analyzed []*AnalyzedChange
	for _, sh := range parts {
		analyzed = append(analyzed, sh...)
	}
	fmt.Fprintf(&sb, "analyzed=%d\n", len(analyzed))
	for i, a := range analyzed {
		fmt.Fprintf(&sb, "[%d] %s@%s:%s kind=%v old=%s new=%s\n",
			i, a.Meta.Project, a.Meta.Commit, a.Meta.File, a.Kind,
			sortedKeys(a.UsesOld), sortedKeys(a.UsesNew))
	}
	for _, class := range cryptoapi.TargetClasses {
		results := make([]ClassPipelineResult, len(parts))
		for i, sh := range parts {
			results[i] = d.RunClass(sh, class)
		}
		r := MergeClassResults(class, results...)
		fmt.Fprintf(&sb, "%s stats=%+v\n", class, r.Stats)
		for _, uc := range r.Survivors {
			fmt.Fprintf(&sb, "  survivor [%s %s] %s\n", uc.Meta.Project, uc.Meta.Commit, uc.String())
		}
		if len(r.Survivors) > 1 {
			root := d.ClusterChanges(r.Survivors)
			sb.WriteString(cluster.Render(root, func(i int) string {
				return r.Survivors[i].Meta.Commit
			}))
		}
	}
	fmt.Fprintf(&sb, "ledger=%d\n", d.Ledger().Len())
	return sb.String()
}

// TestDeterminismShardEquivalence asserts the -shards map-reduce path is
// observationally identical to the monolithic pipeline: the flattened mined
// changes, the merged per-class stats, the survivor lists, and the
// dendrograms all match byte-for-byte at 1, 2, and 4 shards, and the shard
// count composes with the worker count.
func TestDeterminismShardEquivalence(t *testing.T) {
	// Seed 3 at scale 0.5: multi-survivor classes, so the merge has real
	// dedup work and real dendrograms on both sides (see
	// TestDeterminismDistCacheOnOff).
	c := corpus.Generate(corpus.Config{Seed: 3, Scale: 0.5, Projects: 60, ExtraProjects: 3})
	want := pipelineFingerprint(t, c, Options{Workers: 1})
	if !strings.Contains(want, "survivor") {
		t.Fatalf("corpus produced no survivors; fingerprint exercises too little")
	}
	for _, k := range []int{1, 2, 4} {
		for _, w := range []int{1, 4} {
			if got := shardFingerprint(t, c, Options{Workers: w}, k); got != want {
				t.Errorf("shards=%d workers=%d: sharded fingerprint differs from monolithic\ngot:\n%.800s\nwant:\n%.800s", k, w, got, want)
			}
		}
	}
	// Shards sharing one artifact directory — the map-reduce deployment
	// shape: each shard warms the store the next run reuses.
	dir := t.TempDir()
	for _, k := range []int{2, 4} {
		got := shardFingerprint(t, c, Options{Workers: 2,
			Artifacts: artifact.New(artifact.Config{Dir: dir})}, k)
		if got != want {
			t.Errorf("shards=%d (shared artifact dir): fingerprint differs from monolithic", k)
		}
	}
}

// checkerFingerprint runs CheckProject over every project under the given
// options and serializes the violations in report order.
func checkerFingerprint(c *corpus.Corpus, opts Options) string {
	var sb strings.Builder
	checker := NewChecker(nil, opts)
	for _, p := range c.Projects {
		fmt.Fprintf(&sb, "%s:\n", p.Name)
		for _, v := range checker.CheckProject(p) {
			fmt.Fprintf(&sb, "  %s", v.Rule.ID)
			for _, o := range v.Objs {
				fmt.Fprintf(&sb, " %s@%d", o.SiteLabel(), o.Site.Line)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// TestDeterminismCheckSources asserts the checker's violation list — rule
// order and witness order — is identical at workers 1, 2, and 8.
func TestDeterminismCheckSources(t *testing.T) {
	c := determinismCorpus()
	want := checkerFingerprint(c, Options{Workers: 1})
	if !strings.Contains(want, "R") {
		t.Fatalf("no violations found; fingerprint exercises too little")
	}
	for _, w := range []int{2, 8} {
		if got := checkerFingerprint(c, Options{Workers: w}); got != want {
			t.Errorf("workers=%d: checker fingerprint differs from workers=1", w)
		}
	}
}

// TestDeterminismProvenanceObservationOnly pins the -why invariant at the
// library level: enabling provenance tracking changes nothing about the
// violation list — same rules, same witnessing objects, same order — at
// every worker count. Provenance decorates abstract values; it never feeds
// back into the lattice, the joins, or the rule predicates.
func TestDeterminismProvenanceObservationOnly(t *testing.T) {
	c := determinismCorpus()
	want := checkerFingerprint(c, Options{Workers: 1})
	if !strings.Contains(want, "R") {
		t.Fatalf("no violations found; fingerprint exercises too little")
	}
	for _, w := range []int{1, 2, 8} {
		got := checkerFingerprint(c, Options{Workers: w, Analysis: analysis.Options{Provenance: true}})
		if got != want {
			t.Errorf("workers=%d: provenance-on checker fingerprint differs from provenance-off\ngot:\n%.800s\nwant:\n%.800s", w, got, want)
		}
	}
}

// whyFingerprint runs CheckSourcesWhy over every project and serializes the
// sorted violations plus every rendered witness trace.
func whyFingerprint(c *corpus.Corpus, opts Options) string {
	var sb strings.Builder
	checker := NewChecker(nil, opts)
	for _, p := range c.Projects {
		fmt.Fprintf(&sb, "%s:\n", p.Name)
		vs, traces := checker.CheckSourcesWhy(p.Files, ContextOf(p))
		for _, v := range vs {
			fmt.Fprintf(&sb, "  %s", v.Rule.ID)
			for _, o := range v.Objs {
				fmt.Fprintf(&sb, " %s@%d", o.SiteLabel(), o.Site.Line)
			}
			sb.WriteString("\n")
		}
		sb.WriteString(witness.Render(traces))
	}
	return sb.String()
}

// TestDeterminismWitnessTraces asserts the full -why surface — the
// location-sorted violation list and every rendered witness trace — is
// byte-identical at workers 1, 2, and 8, with the distance cache on and off.
func TestDeterminismWitnessTraces(t *testing.T) {
	c := determinismCorpus()
	want := whyFingerprint(c, Options{Workers: 1})
	if !strings.Contains(want, "sink:") {
		t.Fatalf("no witness traces produced; fingerprint exercises too little")
	}
	for _, w := range []int{1, 2, 8} {
		if got := whyFingerprint(c, Options{Workers: w}); got != want {
			t.Errorf("workers=%d: -why fingerprint differs from workers=1", w)
		}
		if got := whyFingerprint(c, Options{Workers: w, DisableDistCache: true}); got != want {
			t.Errorf("workers=%d (cache off): -why fingerprint differs from workers=1", w)
		}
	}
}
