package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/change"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// tickClock advances one millisecond per reading, making span durations
// deterministic: every span costs exactly two readings, i.e. 1ms.
type tickClock struct{ ticks atomic.Int64 }

func (c *tickClock) now() time.Time {
	return time.Unix(0, c.ticks.Add(1)*int64(time.Millisecond))
}

const obsOld = `
class A {
    void m(Key k) throws Exception {
        Cipher c = Cipher.getInstance("DES");
        c.init(Cipher.ENCRYPT_MODE, k);
    }
}
`

const obsNew = `
class A {
    void m(Key k) throws Exception {
        Cipher c = Cipher.getInstance("AES/CBC/PKCS5Padding");
        c.init(Cipher.ENCRYPT_MODE, k);
    }
}
`

// twoChanges is the fixed two-change workload of the golden tests.
func twoChanges() []mining.CodeChange {
	return []mining.CodeChange{
		{Meta: change.Meta{Project: "p", Commit: "c1", File: "A.java"}, Old: obsOld, New: obsNew},
		{Meta: change.Meta{Project: "p", Commit: "c2", File: "B.java"}, Old: obsOld, New: obsNew},
	}
}

// TestPipelineMetricsTwoChanges drives the instrumented pipeline over a
// fixed two-change run and asserts the stderr summary table verbatim
// (deterministic thanks to the tick clock and a single worker).
func TestPipelineMetricsTwoChanges(t *testing.T) {
	clock := &tickClock{}
	reg := obs.NewRegistryClock(clock.now)
	d := New(Options{Workers: 1, Metrics: reg})
	analyzed := d.AnalyzeAll(twoChanges())
	for i, a := range analyzed {
		if a == nil {
			t.Fatalf("change %d skipped unexpectedly", i)
		}
	}
	r := d.RunClass(analyzed, "Cipher")
	if len(r.Survivors) == 0 {
		t.Fatal("expected semantic Cipher survivors")
	}

	want := strings.Join([]string{
		"stage            runs      total       mean        p50        p90        max  slowest",
		"analyze             2        2ms        1ms    1.024ms    1.024ms        1ms  change p@c1:A.java",
		"extract             1        1ms        1ms    1.024ms    1.024ms        1ms  Cipher",
		"filter              1        1ms        1ms    1.024ms    1.024ms        1ms  Cipher",
		"parse               2        2ms        1ms    1.024ms    1.024ms        1ms  change p@c1:A.java",
		"counters",
		"  analysis.changes_analyzed                         2",
		"  analysis.runs                                     4",
		"  analysis.steps                                   32",
		"  extract.usage_changes                             2",
		"  filter.survivors                                  1",
		"  filter.usage_changes                              2",
		"  parse.bytes                                     602",
		"  parse.errors                                      0",
		"  parse.files                                       4",
		// The summary.* counters register eagerly when the table is built
		// (so a Prometheus scrape carries the series from the start); this
		// workload has no helper calls, so all four stay zero.
		"  summary.cycles                                    0",
		"  summary.hits                                      0",
		"  summary.instantiations                            0",
		"  summary.misses                                    0",
		"gauges",
		"  pipeline.workers                                  1",
		"distributions",
		"  analysis.steps_per_run                 n=4 sum=32 min=8 p50=8 p90=8 max=8",
		"",
	}, "\n")
	if got := reg.Summary(); got != want {
		t.Errorf("summary mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSnapshotCarriesStageAndFailureMetrics checks the acceptance shape of
// the -metrics artifact: per-stage span histograms, step counters, and
// ledger-derived failure counts all land in one snapshot.
func TestSnapshotCarriesStageAndFailureMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	d := New(Options{Workers: 2, Metrics: reg, BudgetSteps: 10})
	// Budget of 10 steps guarantees both changes exhaust and land in the
	// ledger rather than the result.
	analyzed := d.AnalyzeAll(twoChanges())
	for i, a := range analyzed {
		if a != nil {
			t.Fatalf("change %d survived a 10-step budget", i)
		}
	}
	obs.FoldLedger(reg, d.Ledger())
	s := obs.TakeSnapshot(reg, false)
	if s.Counters["failures.total"] != 2 ||
		s.Counters["failures.category."+string(resilience.CatBudget)] != 2 {
		t.Fatalf("failure counters missing: %v", s.Counters)
	}
	h, ok := s.Histograms["span.analyze.us"]
	if !ok || h.Count != 2 {
		t.Fatalf("span.analyze.us histogram missing or wrong: %+v", s.Histograms)
	}
	if s.Counters["analysis.steps"] == 0 {
		t.Fatal("analysis.steps not recorded")
	}
	if _, ok := s.Slowest["analyze"]; !ok {
		t.Fatalf("slowest-task attribution missing: %v", s.Slowest)
	}
}

// TestUninstrumentedPipelineUnchanged guards the no-op path: a nil registry
// must not alter results (the CLIs rely on byte-identical output when no
// observability flag is set).
func TestUninstrumentedPipelineUnchanged(t *testing.T) {
	plain := New(Options{Workers: 1})
	instr := New(Options{Workers: 1, Metrics: obs.NewRegistry()})
	a1 := plain.AnalyzeAll(twoChanges())
	a2 := instr.AnalyzeAll(twoChanges())
	r1 := plain.RunClass(a1, "Cipher")
	r2 := instr.RunClass(a2, "Cipher")
	if r1.Stats != r2.Stats || len(r1.Survivors) != len(r2.Survivors) {
		t.Fatalf("instrumentation changed results: %+v vs %+v", r1.Stats, r2.Stats)
	}
	for i := range r1.Survivors {
		if r1.Survivors[i].String() != r2.Survivors[i].String() {
			t.Fatalf("survivor %d differs", i)
		}
	}
}
